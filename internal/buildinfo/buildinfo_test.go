package buildinfo

import "testing"

func TestStringNonEmpty(t *testing.T) {
	if String() == "" {
		t.Fatal("String() must never be empty")
	}
}

func TestStringOverride(t *testing.T) {
	defer func(v string) { Version = v }(Version)
	Version = "v9.9-test"
	if got := String(); got != "v9.9-test" {
		t.Fatalf("String() with override = %q", got)
	}
}
