// Package buildinfo resolves the version string the daemons report in
// startup logs and /healthz, so harness transcripts identify exactly
// which build produced them.
package buildinfo

import "runtime/debug"

// Version is the release override, meant for
//
//	go build -ldflags "-X repro/internal/buildinfo.Version=v1.2.3"
//
// When left empty, String falls back to the VCS metadata the Go toolchain
// stamps into the binary, and to "dev" for plain `go run` / test builds.
var Version string

// String returns the best version identity available: the -X override,
// else the module version or VCS revision from debug.ReadBuildInfo, else
// "dev".
func String() string {
	if Version != "" {
		return Version
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		return rev + "-dirty"
	}
	return rev
}
