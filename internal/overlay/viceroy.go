package overlay

import (
	"encoding/binary"

	"repro/internal/ring"
)

// Viceroy is a butterfly-network overlay in the style of Malkhi, Naor and
// Ratajczak [32]: each ID independently selects a level ℓ ∈ {1..L},
// L ≈ log2 N, and links to
//
//   - an "up" node: the first level-(ℓ−1) ID clockwise of it,
//   - a "down-left" node: the first level-(ℓ+1) ID clockwise of it,
//   - a "down-right" node: the first level-(ℓ+1) ID clockwise of the point
//     half a level-width away (distance 1/2^ℓ),
//   - its same-level ring neighbors and its general ring neighbors.
//
// Degree is O(1). Routing proceeds up to level 1, descends the butterfly
// halving distance at each level, then finishes with a ring walk; total
// length is O(log N) w.h.p.
//
// Levels are drawn from the construction seed so that the topology is a
// deterministic function of (ring, seed), as required for P3 verification.
type Viceroy struct {
	r      *ring.Ring
	seed   int64
	levels int
	byLvl  []*ring.Ring       // byLvl[ℓ-1] holds the level-ℓ IDs
	lvl    map[ring.Point]int // ID → level
}

// NewViceroy builds a Viceroy graph over r with levels derived from seed.
func NewViceroy(r *ring.Ring, seed int64) Graph {
	n := r.Len()
	levels := log2Ceil(n)
	if levels < 1 {
		levels = 1
	}
	v := &Viceroy{
		r:      r,
		seed:   seed,
		levels: levels,
		byLvl:  make([]*ring.Ring, levels),
		lvl:    make(map[ring.Point]int, n),
	}
	perLvl := make([][]ring.Point, levels)
	for _, p := range r.Points() {
		l := v.levelOf(p)
		v.lvl[p] = l
		perLvl[l-1] = append(perLvl[l-1], p)
	}
	for i := range v.byLvl {
		v.byLvl[i] = ring.New(perLvl[i])
	}
	return v
}

// levelOf derives the level of p deterministically from (seed, p), uniform
// over 1..levels.
func (v *Viceroy) levelOf(p ring.Point) int {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(v.seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(p))
	return 1 + int(mix64(buf[:])%uint64(v.levels))
}

// mix64 is an FNV-1a hash with a splitmix64 finalizer. Viceroy levels only
// need uniformity, not cryptographic strength; using a local mixer keeps
// overlay dependency-free below ring.
func mix64(data []byte) uint64 {
	var h uint64 = 1469598103934665603
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (v *Viceroy) Name() string     { return "viceroy" }
func (v *Viceroy) Ring() *ring.Ring { return v.r }

// MaxHops: up phase ≤ L, down phase ≤ L, ring walk O(log N) w.h.p.
func (v *Viceroy) MaxHops() int { return 6*v.levels + 32 }

// Level returns the butterfly level of ID w (1-based).
func (v *Viceroy) Level(w ring.Point) int { return v.lvl[w] }

// lvlRing returns the ring of level-ℓ IDs, or nil if ℓ is out of range or
// the level is empty.
func (v *Viceroy) lvlRing(l int) *ring.Ring {
	if l < 1 || l > v.levels {
		return nil
	}
	lr := v.byLvl[l-1]
	if lr.Len() == 0 {
		return nil
	}
	return lr
}

// up returns w's up-link (first level-(ℓ−1) ID clockwise), or w itself if
// none exists.
func (v *Viceroy) up(w ring.Point) ring.Point {
	l := v.lvl[w]
	for t := l - 1; t >= 1; t-- {
		if lr := v.lvlRing(t); lr != nil {
			return lr.Successor(w)
		}
	}
	return w
}

// down returns w's down-left and down-right links at the first non-empty
// level below w's. ok is false at the bottom of the butterfly.
func (v *Viceroy) down(w ring.Point) (left, right ring.Point, ok bool) {
	l := v.lvl[w]
	half := ring.Point(1) << (64 - uint(l)) // 1/2^ℓ of the ring
	for t := l + 1; t <= v.levels; t++ {
		if lr := v.lvlRing(t); lr != nil {
			return lr.Successor(w), lr.Successor(w + half), true
		}
	}
	return 0, 0, false
}

// Neighbors returns S_w: ring neighbors, same-level ring neighbors, the up
// link, and the two down links (property P3 — each is the successor of a
// w-derived point on a public sub-ring, so any ID can verify membership by
// search).
func (v *Viceroy) Neighbors(w ring.Point) []ring.Point {
	s := make([]ring.Point, 0, 8)
	add := func(p ring.Point) {
		if p != w {
			s = appendUnique(s, p)
		}
	}
	add(v.r.StrictSuccessor(w))
	add(v.r.Predecessor(w))
	if lr := v.lvlRing(v.lvl[w]); lr != nil && lr.Len() > 1 {
		add(lr.StrictSuccessor(w))
		add(lr.Predecessor(w))
	}
	add(v.up(w))
	if dl, dr, ok := v.down(w); ok {
		add(dl)
		add(dr)
	}
	return s
}

// Route ascends to level 1, descends the butterfly choosing down-right
// whenever the remaining clockwise distance to the key exceeds the current
// level width, then closes the residual gap along the ring.
func (v *Viceroy) Route(src, key ring.Point) ([]ring.Point, bool) {
	return v.RouteInto(nil, src, key)
}

// RouteInto is Route into a reusable buffer; steady-state routes are
// allocation-free once dst has capacity.
func (v *Viceroy) RouteInto(dst []ring.Point, src, key ring.Point) ([]ring.Point, bool) {
	target := v.r.Successor(key)
	path := append(dst[:0], src)
	if src == target {
		return path, true
	}
	cur := src
	budget := v.MaxHops()
	// Up phase.
	for v.lvl[cur] > 1 && len(path) < budget {
		next := v.up(cur)
		if next == cur {
			break
		}
		cur = next
		path = append(path, cur)
	}
	// Down phase: at level ℓ the down-right link jumps ~1/2^ℓ clockwise;
	// take it iff the remaining distance warrants, mirroring butterfly
	// descent. All links are clockwise successors, so the distance to the
	// key shrinks monotonically unless rounding carries us past it — in
	// that case stop and let the bidirectional ring walk recover.
	for len(path) < budget {
		dl, dr, ok := v.down(cur)
		if !ok {
			break
		}
		before := cur.Dist(key)
		width := ring.Point(1) << (64 - uint(v.lvl[cur]))
		next := dl
		if before >= width {
			next = dr
		}
		if next != cur {
			cur = next
			path = append(path, cur)
		}
		if cur == target {
			return path, true
		}
		if cur.Dist(key) > before {
			break // passed the key
		}
	}
	return ringWalk(v.r, path, target, budget-len(path)+1)
}
