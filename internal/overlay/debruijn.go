package overlay

import (
	"fmt"
	"math/bits"

	"repro/internal/ring"
)

// DeBruijn is a continuous-discrete de Bruijn graph in the style of D2B
// [19] and the Naor–Wieder distance-halving network [39]: the continuous
// graph on [0,1) has edges z → (z+j)/d for digits j = 0..d-1 (prepending a
// base-d digit), and each ID w simulates the continuous points in the arc
// it owns. Expected degree is O(d); routes have length log_d N + O(1)
// prepend steps plus an O(1)-expected ring walk.
type DeBruijn struct {
	r       *ring.Ring
	base    int
	m       int // digits prepended per route: ceil(log_d N) + digitSlack
	maxHops int // cached MaxHops (log2Ceil does float math)
}

// digitSlack extends the prepend walk so the final virtual point lands
// within a d^-slack fraction of the target's owned arc w.h.p.
const digitSlack = 2

// NewDeBruijn builds a base-d continuous-discrete de Bruijn graph over r.
// base must be ≥ 2; base 2 corresponds to D2B / distance halving.
func NewDeBruijn(r *ring.Ring, base int) *DeBruijn {
	if base < 2 {
		panic(fmt.Sprintf("overlay: de Bruijn base must be >= 2, got %d", base))
	}
	n := r.Len()
	m := 1
	for v := 1; v < n && m < 64; m++ {
		v *= base
	}
	d := &DeBruijn{r: r, base: base, m: m + digitSlack}
	d.maxHops = d.m + 4*log2Ceil(n) + 16
	return d
}

func (d *DeBruijn) Name() string     { return "debruijn" }
func (d *DeBruijn) Ring() *ring.Ring { return d.r }

// MaxHops bounds a route by the prepend walk plus a generous ring-walk
// tail (the tail is O(1) expected, O(log N) w.h.p.).
func (d *DeBruijn) MaxHops() int { return d.maxHops }

// contraction maps z to (z+j)/d, the continuous de Bruijn edge that
// prepends digit j.
func contraction(z ring.Point, j, base int) ring.Point {
	// (z + j)/d on the ring: divide the 64-bit value and add j·(2^64/d).
	step := ^ring.Point(0)/ring.Point(base) + 1 // ≈ 2^64/d, exact for powers of two
	return z/ring.Point(base) + ring.Point(j)*step
}

// Neighbors returns S_w: the owners of the images of w's owned arc under
// each of the d contractions, plus ring successor and predecessor. By
// construction, for any continuous point z owned by w and any digit j, the
// owner of (z+j)/d appears in this set — which is exactly what Route hops
// across.
func (d *DeBruijn) Neighbors(w ring.Point) []ring.Point {
	s := make([]ring.Point, 0, 2*d.base+2)
	s = appendUnique(s, d.r.StrictSuccessor(w))
	s = appendUnique(s, d.r.Predecessor(w))
	a := d.r.Predecessor(w) // w owns (a, w]
	for j := 0; j < d.base; j++ {
		lo := contraction(a, j, d.base)
		hi := contraction(w, j, d.base)
		// Owners of every point in (lo, hi]: walk successors from lo to
		// suc(hi). The arc has length ≤ 1/(d·N)·const so this is O(1)
		// expected IDs.
		cur := d.r.StrictSuccessor(lo)
		stop := d.r.Successor(hi)
		for {
			if cur != w {
				s = appendUnique(s, cur)
			}
			if cur == stop {
				break
			}
			cur = d.r.StrictSuccessor(cur)
		}
	}
	return s
}

// maxDigits bounds the prepend walk length m (the construction caps m at
// 64 before adding digitSlack), sizing the stack buffer digitsInto fills.
const maxDigits = 64 + digitSlack

// digitsInto fills dst[:m] with the top m base-d digits of key, most
// significant first.
func (d *DeBruijn) digitsInto(key ring.Point, dst []int) {
	z := key
	for i := 0; i < d.m; i++ {
		// Top digit of z in base d: floor(z·d / 2^64).
		hi, lo := bits.Mul64(uint64(z), uint64(d.base))
		dst[i] = int(hi)
		z = ring.Point(lo)
	}
}

// Route walks the continuous de Bruijn edges toward key: it prepends the
// top m digits of key (least significant of the prefix first), resolving
// each virtual point to its owner, then finishes with a ring walk. This is
// the distance-halving route of [39] for d = 2: each prepend step halves
// the distance between the virtual point and the target prefix.
func (d *DeBruijn) Route(src, key ring.Point) ([]ring.Point, bool) {
	return d.RouteInto(nil, src, key)
}

// RouteInto is Route into a reusable buffer: the digit scratch lives on the
// stack and the path goes into dst, so steady-state routes are
// allocation-free.
func (d *DeBruijn) RouteInto(dst []ring.Point, src, key ring.Point) ([]ring.Point, bool) {
	target := d.r.Successor(key)
	dst = append(dst[:0], src)
	if src == target {
		return dst, true
	}
	var digitBuf [maxDigits]int
	digits := digitBuf[:d.m]
	d.digitsInto(key, digits)
	z := src
	cur := src
	for i := d.m - 1; i >= 0; i-- {
		z = contraction(z, digits[i], d.base)
		owner := d.r.Successor(z)
		if owner != cur {
			dst = append(dst, owner)
			cur = owner
		}
	}
	// The virtual point is now within d^-m of key's prefix; close the gap
	// along the ring.
	return ringWalk(d.r, dst, target, d.MaxHops()-len(dst)+1)
}
