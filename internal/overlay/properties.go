package overlay

import (
	"math/rand"

	"repro/internal/ring"
)

// Properties summarizes the empirical P1–P4 measurements of a graph under a
// sample of random searches; see Measure.
type Properties struct {
	N             int     // number of IDs
	Samples       int     // searches performed
	FailedRoutes  int     // routes that did not terminate (P1 violations)
	MeanHops      float64 // average route length D (P1)
	MaxHopsSeen   int     // longest observed route
	MaxLoad       float64 // max fraction of key space owned by one ID × N (P2; ≈1+δ'' when balanced)
	Congestion    float64 // max over IDs of traversal probability (P4)
	CongestionXN  float64 // Congestion × N / log^c-free view: Congestion·N, the paper's log^c n factor
	MeanDegree    float64 // average |S_w| over sampled IDs (P3 / state cost)
	MaxDegreeSeen int
}

// Measure runs `samples` searches from u.a.r. source IDs to u.a.r. keys and
// returns the empirical P1–P4 statistics. Degree statistics are measured on
// min(N, 512) sampled IDs.
func Measure(g Graph, samples int, rng *rand.Rand) Properties {
	r := g.Ring()
	n := r.Len()
	p := Properties{N: n, Samples: samples}
	traversed := make(map[ring.Point]int, n)
	totalHops := 0
	for i := 0; i < samples; i++ {
		src := r.At(rng.Intn(n))
		key := ring.Point(rng.Uint64())
		path, ok := g.Route(src, key)
		if !ok {
			p.FailedRoutes++
			continue
		}
		totalHops += len(path) - 1
		if len(path)-1 > p.MaxHopsSeen {
			p.MaxHopsSeen = len(path) - 1
		}
		for _, id := range path {
			traversed[id]++
		}
	}
	okRoutes := samples - p.FailedRoutes
	if okRoutes > 0 {
		p.MeanHops = float64(totalHops) / float64(okRoutes)
	}
	maxTrav := 0
	for _, c := range traversed {
		if c > maxTrav {
			maxTrav = c
		}
	}
	if okRoutes > 0 {
		p.Congestion = float64(maxTrav) / float64(okRoutes)
		p.CongestionXN = p.Congestion * float64(n)
	}
	// P2: max normalized load over all IDs.
	for _, id := range r.Points() {
		if l := r.OwnedArc(id) * float64(n); l > p.MaxLoad {
			p.MaxLoad = l
		}
	}
	// P3: degree sample.
	degSamples := n
	if degSamples > 512 {
		degSamples = 512
	}
	sumDeg := 0
	for i := 0; i < degSamples; i++ {
		d := len(g.Neighbors(r.At(rng.Intn(n))))
		sumDeg += d
		if d > p.MaxDegreeSeen {
			p.MaxDegreeSeen = d
		}
	}
	p.MeanDegree = float64(sumDeg) / float64(degSamples)
	return p
}

// UniformRing generates n u.a.r. IDs, the honest-placement assumption of
// §I-C.
func UniformRing(n int, rng *rand.Rand) *ring.Ring {
	pts := make([]ring.Point, n)
	for i := range pts {
		pts[i] = ring.Point(rng.Uint64())
	}
	return ring.New(pts)
}
