package overlay

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ring"
)

func testRing(n int, seed int64) *ring.Ring {
	return UniformRing(n, rand.New(rand.NewSource(seed)))
}

// allGraphs builds every construction over the same ring.
func allGraphs(r *ring.Ring) []Graph {
	var gs []Graph
	for _, b := range Builders() {
		gs = append(gs, b.Build(r, 42))
	}
	return gs
}

func TestRouteTerminatesAtSuccessor(t *testing.T) {
	r := testRing(1024, 1)
	rng := rand.New(rand.NewSource(2))
	for _, g := range allGraphs(r) {
		for i := 0; i < 500; i++ {
			src := r.At(rng.Intn(r.Len()))
			key := ring.Point(rng.Uint64())
			path, ok := g.Route(src, key)
			if !ok {
				t.Fatalf("%s: route %d failed to terminate", g.Name(), i)
			}
			if path[0] != src {
				t.Fatalf("%s: path must start at src", g.Name())
			}
			if got, want := path[len(path)-1], r.Successor(key); got != want {
				t.Fatalf("%s: route ended at %v, want suc(key)=%v", g.Name(), got, want)
			}
		}
	}
}

func TestRouteToOwnKeyIsTrivial(t *testing.T) {
	r := testRing(256, 3)
	for _, g := range allGraphs(r) {
		src := r.At(7)
		// A key owned by src: src itself.
		path, ok := g.Route(src, src)
		if !ok || len(path) != 1 || path[0] != src {
			t.Errorf("%s: route to own key should be [src], got %v ok=%v", g.Name(), path, ok)
		}
	}
}

func TestRouteHopsAreNeighborEdges(t *testing.T) {
	// Every hop u→v on a route must satisfy v ∈ Neighbors(u): the paper's
	// secure-routing lifts exactly these edges to group-to-group all-to-all
	// exchanges, so a route using a non-edge would be unroutable in G.
	r := testRing(512, 5)
	rng := rand.New(rand.NewSource(6))
	for _, g := range allGraphs(r) {
		for i := 0; i < 100; i++ {
			src := r.At(rng.Intn(r.Len()))
			key := ring.Point(rng.Uint64())
			path, ok := g.Route(src, key)
			if !ok {
				t.Fatalf("%s: route failed", g.Name())
			}
			for h := 0; h+1 < len(path); h++ {
				u, v := path[h], path[h+1]
				found := false
				for _, nb := range g.Neighbors(u) {
					if nb == v {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: hop %v→%v is not a graph edge", g.Name(), u, v)
				}
			}
		}
	}
}

func TestRouteLengthLogarithmic(t *testing.T) {
	// P1: D = O(log N). Check mean hops grows like log n, with generous
	// constants per construction.
	rng := rand.New(rand.NewSource(7))
	for _, size := range []int{256, 1024, 4096} {
		r := testRing(size, int64(size))
		logN := math.Log2(float64(size))
		for _, g := range allGraphs(r) {
			p := Measure(g, 300, rng)
			if p.FailedRoutes > 0 {
				t.Errorf("%s n=%d: %d failed routes", g.Name(), size, p.FailedRoutes)
			}
			if p.MeanHops > 6*logN {
				t.Errorf("%s n=%d: mean hops %.1f exceeds 6·log2 n = %.1f", g.Name(), size, p.MeanHops, 6*logN)
			}
		}
	}
}

func TestDegreeClasses(t *testing.T) {
	// P3: chord degree Θ(log n); de Bruijn and viceroy O(1) expected.
	r := testRing(4096, 11)
	rng := rand.New(rand.NewSource(12))
	logN := math.Log2(4096)
	for _, g := range allGraphs(r) {
		p := Measure(g, 50, rng)
		switch g.Name() {
		case "chord":
			if p.MeanDegree < logN/2 || p.MeanDegree > 3*logN {
				t.Errorf("chord degree %.1f not Θ(log n)=%.1f", p.MeanDegree, logN)
			}
		case "debruijn", "viceroy":
			if p.MeanDegree > 16 {
				t.Errorf("%s mean degree %.1f should be O(1)", g.Name(), p.MeanDegree)
			}
		}
	}
}

func TestCongestionBound(t *testing.T) {
	// P4: congestion C = O(log^c n / n) for a constant c. We check
	// C·n ≤ 2·log2(n)², i.e. c = 2 with constant 2 — ample for Chord and
	// de Bruijn and covering Viceroy's hot level-1 nodes.
	r := testRing(2048, 13)
	rng := rand.New(rand.NewSource(14))
	logN := math.Log2(2048)
	for _, g := range allGraphs(r) {
		p := Measure(g, 4000, rng)
		if p.CongestionXN > 2*logN*logN {
			t.Errorf("%s: congestion×n = %.1f exceeds 2·log²n = %.1f", g.Name(), p.CongestionXN, 2*logN*logN)
		}
	}
}

func TestLoadBalance(t *testing.T) {
	// P2: with u.a.r. IDs the max owned arc is O(log n / n); check
	// MaxLoad ≤ 3·ln n (balls-in-bins bound says ~ln n w.h.p.).
	r := testRing(4096, 15)
	rng := rand.New(rand.NewSource(16))
	g := NewChord(r)
	p := Measure(g, 10, rng)
	if p.MaxLoad > 3*math.Log(4096) {
		t.Errorf("max load %.2f exceeds 3·ln n", p.MaxLoad)
	}
}

func TestLemma5AdversarialSubsetPreservesProperties(t *testing.T) {
	// Lemma 5: properties survive when the adversary contributes an
	// arbitrary subset of its u.a.r. IDs. Adversary strategy here: draw 2βn
	// u.a.r. candidates, keep only those in [0, 1/2) (a worst-case-looking
	// clustered subset).
	rng := rand.New(rand.NewSource(17))
	const n = 2048
	const beta = 0.25
	good := make([]ring.Point, 0, n)
	for i := 0; i < int((1-beta)*n); i++ {
		good = append(good, ring.Point(rng.Uint64()))
	}
	for i := 0; i < int(2*beta*n); i++ {
		p := ring.Point(rng.Uint64())
		if p < ring.FromFloat(0.5) {
			good = append(good, p)
		}
	}
	r := ring.New(good)
	for _, g := range allGraphs(r) {
		p := Measure(g, 500, rng)
		if p.FailedRoutes > 0 {
			t.Errorf("%s: %d failed routes under adversarial subset", g.Name(), p.FailedRoutes)
		}
		logN := math.Log2(float64(r.Len()))
		if p.MeanHops > 6*logN {
			t.Errorf("%s: mean hops %.1f too large under adversarial subset", g.Name(), p.MeanHops)
		}
	}
}

func TestDeBruijnBase4(t *testing.T) {
	r := testRing(1024, 19)
	g := NewDeBruijn(r, 4)
	rng := rand.New(rand.NewSource(20))
	p := Measure(g, 300, rng)
	if p.FailedRoutes > 0 {
		t.Fatalf("base-4 de Bruijn: %d failed routes", p.FailedRoutes)
	}
	// Base-4 routes should be shorter than base-2 on the same ring.
	g2 := NewDeBruijn(r, 2)
	p2 := Measure(g2, 300, rng)
	if p.MeanHops >= p2.MeanHops {
		t.Errorf("base-4 mean hops %.1f should beat base-2 %.1f", p.MeanHops, p2.MeanHops)
	}
}

func TestDeBruijnRejectsBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewDeBruijn(base=1) should panic")
		}
	}()
	NewDeBruijn(testRing(16, 21), 1)
}

func TestViceroyLevelsPartitionIDs(t *testing.T) {
	r := testRing(1024, 22)
	v := NewViceroy(r, 42).(*Viceroy)
	count := 0
	for l := 1; l <= v.levels; l++ {
		if lr := v.lvlRing(l); lr != nil {
			count += lr.Len()
		}
	}
	if count != r.Len() {
		t.Errorf("levels hold %d IDs, want %d", count, r.Len())
	}
	for _, p := range r.Points()[:64] {
		if l := v.Level(p); l < 1 || l > v.levels {
			t.Errorf("Level(%v) = %d out of range", p, l)
		}
	}
}

func TestViceroyDeterministicInSeed(t *testing.T) {
	r := testRing(256, 23)
	v1 := NewViceroy(r, 7).(*Viceroy)
	v2 := NewViceroy(r, 7).(*Viceroy)
	v3 := NewViceroy(r, 8).(*Viceroy)
	same, diff := true, false
	for _, p := range r.Points() {
		if v1.Level(p) != v2.Level(p) {
			same = false
		}
		if v1.Level(p) != v3.Level(p) {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must give same levels")
	}
	if !diff {
		t.Error("different seeds should give different levels")
	}
}

func TestNeighborsExcludeSelf(t *testing.T) {
	r := testRing(512, 24)
	for _, g := range allGraphs(r) {
		for _, w := range r.Points()[:32] {
			for _, nb := range g.Neighbors(w) {
				if nb == w {
					t.Errorf("%s: Neighbors(%v) contains self", g.Name(), w)
				}
			}
		}
	}
}

func TestTinyRings(t *testing.T) {
	// Constructions must not break on degenerate sizes.
	for _, n := range []int{2, 3, 5} {
		r := testRing(n, int64(100+n))
		rng := rand.New(rand.NewSource(25))
		for _, g := range allGraphs(r) {
			for i := 0; i < 50; i++ {
				src := r.At(rng.Intn(r.Len()))
				key := ring.Point(rng.Uint64())
				if _, ok := g.Route(src, key); !ok {
					t.Errorf("%s n=%d: route failed", g.Name(), n)
				}
			}
		}
	}
}
