package overlay

import (
	"repro/internal/ring"
)

// Chord is the classic Θ(log N)-degree DHT of Stoica et al. [48], the
// paper's running example for property P3 (footnote 11): the neighbors of w
// are its ring successor and predecessor plus the successors of the points
// w + Δ(i) for exponentially increasing distances Δ(i) = 1/2^i.
//
// Neighbor tables for every ID are precomputed at construction into
// rank-indexed arenas (the ring is immutable once a Chord is built — epoch
// churn builds a fresh graph), so all queries after NewChord are pure reads:
// safe for concurrent searchers and allocation-free. The parallel neighbor
// rank table lets RouteInto walk greedy hops without a single ring search.
type Chord struct {
	r       *ring.Ring
	m       int // number of finger levels, ceil(log2 N) + fingerSlack
	maxHops int // cached MaxHops (log2Ceil does float math)
	// nbr[i] is the neighbor set of the i-th ring point, sorted by
	// descending clockwise progress from the point — so greedy routing
	// takes the first entry not overshooting the target instead of
	// scanning the whole set. nbrRank[i][k] is the ring rank of nbr[i][k].
	// Both are views into shared arenas.
	nbr     [][]ring.Point
	nbrRank [][]int32
}

// fingerSlack adds levels beyond log2 N so the densest finger reaches the
// immediate neighborhood even under adversarially uneven ID placement.
const fingerSlack = 2

// NewChord builds a Chord graph over the IDs on r. The ring must not be
// mutated afterwards (build a new graph instead).
func NewChord(r *ring.Ring) *Chord {
	c := &Chord{r: r, m: log2Ceil(r.Len()) + fingerSlack}
	c.maxHops = 4*log2Ceil(r.Len()) + 16
	n := r.Len()
	c.nbr = make([][]ring.Point, n)
	c.nbrRank = make([][]int32, n)
	if n == 0 {
		return c
	}
	pts := r.Points()
	// Worst case degree is m+2; ranks are appended in lock-step with points
	// so both arenas stay aligned.
	ptArena := make([]ring.Point, 0, n*(c.m+2))
	rkArena := make([]int32, 0, n*(c.m+2))
	for wi, w := range pts {
		start := len(ptArena)
		add := func(p ring.Point, rank int) {
			for _, q := range ptArena[start:] {
				if q == p {
					return
				}
			}
			ptArena = append(ptArena, p)
			rkArena = append(rkArena, int32(rank))
		}
		add(pts[(wi+1)%n], (wi+1)%n) // strict successor
		add(pts[(wi+n-1)%n], (wi+n-1)%n)
		for i := 1; i <= c.m; i++ {
			delta := ring.Point(1) << (64 - uint(i)) // 1/2^i of the ring
			fi := r.SuccessorIndex(w + delta)
			if pts[fi] != w {
				add(pts[fi], fi)
			}
		}
		set, rks := ptArena[start:], rkArena[start:]
		// Sort by descending clockwise progress from w (insertion sort: the
		// set is m+2 small). Progress values are distinct, so the greedy
		// route picks the same neighbor the full max-scan would.
		for i := 1; i < len(set); i++ {
			p, rk := set[i], rks[i]
			j := i
			for ; j > 0 && w.Dist(set[j-1]) < w.Dist(p); j-- {
				set[j], rks[j] = set[j-1], rks[j-1]
			}
			set[j], rks[j] = p, rk
		}
		c.nbr[wi] = ptArena[start:len(ptArena):len(ptArena)]
		c.nbrRank[wi] = rkArena[start:len(rkArena):len(rkArena)]
	}
	return c
}

func (c *Chord) Name() string     { return "chord" }
func (c *Chord) Ring() *ring.Ring { return c.r }

// MaxHops bounds routes at 4·log2 N + 16: greedy Chord routing halves the
// remaining distance every hop w.h.p., so this is generous.
func (c *Chord) MaxHops() int { return c.maxHops }

// neighborsOf computes S_w from scratch — the fallback for points that are
// not on the ring (the precomputed tables cover every ring ID).
func (c *Chord) neighborsOf(w ring.Point) []ring.Point {
	s := make([]ring.Point, 0, c.m+2)
	s = appendUnique(s, c.r.StrictSuccessor(w))
	s = appendUnique(s, c.r.Predecessor(w))
	for i := 1; i <= c.m; i++ {
		delta := ring.Point(1) << (64 - uint(i))
		f := c.r.Successor(w + delta)
		if f != w {
			s = appendUnique(s, f)
		}
	}
	return s
}

// Neighbors returns S_w: ring successor, ring predecessor, and the finger
// successors suc(w + 1/2^i) for i = 1..m. For ring IDs this is a
// precomputed-table read, ordered by descending clockwise progress from w;
// the caller must not modify the result.
func (c *Chord) Neighbors(w ring.Point) []ring.Point {
	if wi, ok := c.r.Index(w); ok {
		return c.nbr[wi]
	}
	return c.neighborsOf(w)
}

// Route performs greedy Chord routing: at each step, hop to the neighbor
// that makes the most clockwise progress toward the key's owner without
// overshooting it.
func (c *Chord) Route(src, key ring.Point) ([]ring.Point, bool) {
	return c.RouteInto(nil, src, key)
}

// RouteRanksInto is the RankRouter form of RouteInto: the same greedy walk
// emitting ring ranks. The neighbor tables carry ranks natively, so no
// conversion happens anywhere on the path.
func (c *Chord) RouteRanksInto(dst []int32, src, key ring.Point) ([]int32, bool, bool) {
	curi, onRing := c.r.Index(src)
	if !onRing {
		return dst, false, false
	}
	ranks, ok := c.RouteRanksBetween(dst, curi, c.r.SuccessorIndex(key))
	return ranks, ok, true
}

// RouteRanksBetween is the greedy walk between two ring IDs given by rank:
// no endpoint searches at all.
func (c *Chord) RouteRanksBetween(dst []int32, srcRank, targetRank int) ([]int32, bool) {
	pts := c.r.Points()
	curi, ti := srcRank, targetRank
	cur, target := pts[curi], pts[ti]
	dst = append(dst[:0], int32(curi))
	for hop := 0; hop < c.maxHops; hop++ {
		if curi == ti {
			return dst, true
		}
		goal := cur.Dist(target)
		nbrs, ranks := c.nbr[curi], c.nbrRank[curi]
		best := -1
		for k, nb := range nbrs {
			prog := cur.Dist(nb)
			if prog != 0 && prog <= goal {
				best = k
				break
			}
		}
		if best < 0 {
			return dst, false
		}
		cur = nbrs[best]
		curi = int(ranks[best])
		dst = append(dst, int32(curi))
	}
	return dst, curi == ti
}

// RouteInto is Route into a reusable buffer. Hops between ring IDs walk the
// precomputed neighbor/rank tables, so a route costs one successor search
// for the target plus one rank lookup for src — zero searches per hop and
// zero allocations once dst has capacity.
func (c *Chord) RouteInto(dst []ring.Point, src, key ring.Point) ([]ring.Point, bool) {
	target := c.r.Successor(key)
	dst = append(dst[:0], src)
	cur := src
	curi, onRing := c.r.Index(src)
	if !onRing {
		curi = -1
	}
	for hop := 0; hop < c.maxHops; hop++ {
		if cur == target {
			return dst, true
		}
		goal := cur.Dist(target)
		var nbrs []ring.Point
		var ranks []int32
		best := -1
		if curi >= 0 {
			nbrs, ranks = c.nbr[curi], c.nbrRank[curi]
			// The table is sorted by descending progress, so the first
			// entry not overshooting the target is the greedy maximum.
			for k, nb := range nbrs {
				prog := cur.Dist(nb)
				if prog != 0 && prog <= goal {
					best = k
					break
				}
			}
		} else {
			nbrs = c.neighborsOf(cur)
			var bestProg ring.Point
			for k, nb := range nbrs {
				prog := cur.Dist(nb)
				if prog != 0 && prog <= goal && prog > bestProg {
					best, bestProg = k, prog
				}
			}
		}
		if best < 0 {
			// No neighbor precedes the target: the strict successor is the
			// target itself (it is always a neighbor), so this is
			// unreachable on a consistent ring; fail defensively.
			return dst, false
		}
		cur = nbrs[best]
		if ranks != nil {
			curi = int(ranks[best])
		} else if i, ok := c.r.Index(cur); ok {
			curi = i
		} else {
			curi = -1
		}
		dst = append(dst, cur)
	}
	return dst, cur == target
}
