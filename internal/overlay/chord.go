package overlay

import (
	"repro/internal/ring"
)

// Chord is the classic Θ(log N)-degree DHT of Stoica et al. [48], the
// paper's running example for property P3 (footnote 11): the neighbors of w
// are its ring successor and predecessor plus the successors of the points
// w + Δ(i) for exponentially increasing distances Δ(i) = 1/2^i.
type Chord struct {
	r *ring.Ring
	m int // number of finger levels, ceil(log2 N) + fingerSlack
	// memo caches finger tables: the ring is treated as immutable once a
	// Chord is built (epoch churn builds a fresh graph), and the dynamic
	// construction re-resolves the same nodes' neighbor sets constantly.
	// Not safe for concurrent use.
	memo map[ring.Point][]ring.Point
}

// fingerSlack adds levels beyond log2 N so the densest finger reaches the
// immediate neighborhood even under adversarially uneven ID placement.
const fingerSlack = 2

// NewChord builds a Chord graph over the IDs on r. The ring must not be
// mutated afterwards (build a new graph instead).
func NewChord(r *ring.Ring) *Chord {
	return &Chord{r: r, m: log2Ceil(r.Len()) + fingerSlack, memo: make(map[ring.Point][]ring.Point)}
}

func (c *Chord) Name() string     { return "chord" }
func (c *Chord) Ring() *ring.Ring { return c.r }

// MaxHops bounds routes at 4·log2 N + 16: greedy Chord routing halves the
// remaining distance every hop w.h.p., so this is generous.
func (c *Chord) MaxHops() int { return 4*log2Ceil(c.r.Len()) + 16 }

// Neighbors returns S_w: ring successor, ring predecessor, and the finger
// successors suc(w + 1/2^i) for i = 1..m.
func (c *Chord) Neighbors(w ring.Point) []ring.Point {
	if s, ok := c.memo[w]; ok {
		return s
	}
	s := make([]ring.Point, 0, c.m+2)
	s = appendUnique(s, c.r.StrictSuccessor(w))
	s = appendUnique(s, c.r.Predecessor(w))
	for i := 1; i <= c.m; i++ {
		delta := ring.Point(1) << (64 - uint(i)) // 1/2^i of the ring
		f := c.r.Successor(w + delta)
		if f != w {
			s = appendUnique(s, f)
		}
	}
	c.memo[w] = s
	return s
}

// Route performs greedy Chord routing: at each step, hop to the neighbor
// that makes the most clockwise progress toward the key's owner without
// overshooting it.
func (c *Chord) Route(src, key ring.Point) ([]ring.Point, bool) {
	target := c.r.Successor(key)
	path := []ring.Point{src}
	cur := src
	for hop := 0; hop < c.MaxHops(); hop++ {
		if cur == target {
			return path, true
		}
		goal := cur.Dist(target)
		var best ring.Point
		var bestProg ring.Point
		for _, nb := range c.Neighbors(cur) {
			prog := cur.Dist(nb)
			if prog != 0 && prog <= goal && prog > bestProg {
				best, bestProg = nb, prog
			}
		}
		if bestProg == 0 {
			// No neighbor precedes the target: the strict successor is the
			// target itself (it is always a neighbor), so this is
			// unreachable on a consistent ring; fail defensively.
			return path, false
		}
		cur = best
		path = append(path, cur)
	}
	return path, cur == target
}
