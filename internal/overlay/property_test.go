package overlay

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ring"
)

// Property: for every construction, Route(src, key) is deterministic and
// ends at suc(key), regardless of the key drawn.
func TestRouteDeterministicProperty(t *testing.T) {
	r := testRing(512, 71)
	for _, g := range allGraphs(r) {
		g := g
		f := func(srcIdx uint16, key uint64) bool {
			src := r.At(int(srcIdx) % r.Len())
			p1, ok1 := g.Route(src, ring.Point(key))
			p2, ok2 := g.Route(src, ring.Point(key))
			if !ok1 || !ok2 || len(p1) != len(p2) {
				return false
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					return false
				}
			}
			return p1[len(p1)-1] == r.Successor(ring.Point(key))
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", g.Name(), err)
		}
	}
}

// Property: neighbor sets are symmetric-reachable — if v ∈ Neighbors(u),
// then u and v coexist on the ring (sanity) and v's set is computable
// (P3's verifiability: any ID can recompute any other's links).
func TestNeighborVerifiabilityProperty(t *testing.T) {
	r := testRing(256, 72)
	for _, g := range allGraphs(r) {
		for _, u := range r.Points()[:32] {
			for _, v := range g.Neighbors(u) {
				if !r.Contains(v) {
					t.Fatalf("%s: neighbor %v not on ring", g.Name(), v)
				}
				// Recompute from scratch: the set must be identical, which
				// is what lets a third party verify a claimed link.
				again := g.Neighbors(u)
				found := false
				for _, w := range again {
					if w == v {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: neighbor set not reproducible", g.Name())
				}
			}
		}
	}
}

// Property: route length is bounded by MaxHops for arbitrary adversarial
// (clustered) rings, not just uniform ones.
func TestRouteBoundOnClusteredRings(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	// Half the IDs crammed into 1/16 of the ring.
	pts := make([]ring.Point, 0, 512)
	for i := 0; i < 256; i++ {
		pts = append(pts, ring.Point(rng.Uint64()))
	}
	for i := 0; i < 256; i++ {
		pts = append(pts, ring.Point(rng.Uint64()>>4))
	}
	r := ring.New(pts)
	for _, g := range allGraphs(r) {
		for i := 0; i < 300; i++ {
			src := r.At(rng.Intn(r.Len()))
			path, ok := g.Route(src, ring.Point(rng.Uint64()))
			if !ok {
				t.Errorf("%s: route failed on clustered ring", g.Name())
				break
			}
			if len(path) > g.MaxHops()+1 {
				t.Errorf("%s: path %d exceeds MaxHops %d", g.Name(), len(path), g.MaxHops())
			}
		}
	}
}

// Property: UniformRing produces the requested number of distinct IDs.
func TestUniformRingCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 64
		r := UniformRing(n, rand.New(rand.NewSource(seed)))
		return r.Len() == n // collisions over 2^64 are negligible
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
