// Package overlay implements input graphs H satisfying the paper's
// properties P1–P4 (§I-C):
//
//   - P1 search functionality: Route returns the path of IDs traversed from
//     a source ID to suc(key), of length D = O(log N);
//   - P2 load balancing: a random ID owns at most a (1+δ”)/N fraction of
//     the key space;
//   - P3 linking rules: Neighbors(w) is the set S_w, computable (and
//     verifiable) by successor searches;
//   - P4 congestion: the max probability any ID is traversed by a random
//     search is C = O(log^c N / N).
//
// Three constructions are provided, covering the degree classes the paper's
// Corollary 1 draws on: Chord [48] (Θ(log N) degree), a continuous-discrete
// de Bruijn graph in the style of D2B [19] / the distance-halving network
// [39] (O(1) expected degree), and a Viceroy-style butterfly [32] (O(1)
// expected degree).
//
// Graphs are deterministic functions of the ID ring (and a construction
// seed where levels are needed), so the same ring always yields the same
// topology — a requirement for the paper's verification-by-search (P3).
package overlay

import (
	"math"

	"repro/internal/ring"
)

// Graph is an input graph H over a set of IDs.
//
// Graphs are immutable once built: all methods are safe for concurrent
// readers, which is what lets the epoch pipeline fan searches over a shared
// old graph across a worker pool without locks.
type Graph interface {
	// Name identifies the construction ("chord", "debruijn", "viceroy").
	Name() string
	// Ring returns the underlying ID set.
	Ring() *ring.Ring
	// Neighbors returns the neighbor set S_w of the ID w (property P3).
	// w must be an ID on the ring. The caller must not modify the result.
	Neighbors(w ring.Point) []ring.Point
	// Route returns the sequence of IDs traversed by a search initiated at
	// src for key, starting with src and ending with suc(key) (property
	// P1). ok is false if the route failed to terminate within the hop
	// bound (should not happen for honest rings).
	Route(src, key ring.Point) (path []ring.Point, ok bool)
	// RouteInto is Route writing into dst's backing array (reset to dst[:0]
	// before use, grown only if capacity is short) and returning the filled
	// slice — the allocation-free form the path-free search fast path loops
	// on with one reused buffer per worker. A nil dst is allowed.
	RouteInto(dst []ring.Point, src, key ring.Point) (path []ring.Point, ok bool)
	// MaxHops is the bound used by Route before declaring failure.
	MaxHops() int
}

// RankRouter is an optional Graph extension for constructions that can
// express a route as ring ranks instead of points. Rank routes let the
// group-graph search classify hops by direct index instead of re-deriving
// each hop's rank, which is the single hottest lookup of the dynamic
// construction. Semantics mirror RouteInto exactly: ranks[i] is the ring
// rank of the i-th routed ID.
type RankRouter interface {
	// RouteRanksInto routes src → suc(key) into dst's backing array.
	// handled reports whether the rank form applies (false when src is not
	// a ring ID — the caller must fall back to RouteInto); ok mirrors
	// RouteInto's termination flag.
	RouteRanksInto(dst []int32, src, key ring.Point) (ranks []int32, ok, handled bool)
	// RouteRanksBetween routes between two ring IDs given directly by rank
	// — the form callers with precomputed endpoints use (the epoch
	// pipeline knows every bootstrap leader's and repeat target's rank),
	// skipping both endpoint searches.
	RouteRanksBetween(dst []int32, srcRank, targetRank int) (ranks []int32, ok bool)
}

// Builder constructs a graph over a ring. seed parameterizes any
// construction randomness (e.g. Viceroy levels); chord and de Bruijn
// ignore it.
type Builder func(r *ring.Ring, seed int64) Graph

// Builders enumerates the available constructions by name, in a stable
// order, for experiment sweeps.
func Builders() []struct {
	Name  string
	Build Builder
} {
	return []struct {
		Name  string
		Build Builder
	}{
		{"chord", func(r *ring.Ring, _ int64) Graph { return NewChord(r) }},
		{"debruijn", func(r *ring.Ring, _ int64) Graph { return NewDeBruijn(r, 2) }},
		{"viceroy", NewViceroy},
	}
}

// log2Ceil returns ceil(log2(n)) with a floor of 1.
func log2Ceil(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// appendUnique appends p to s if not already present (neighbor sets are
// small, so linear scan beats a map).
func appendUnique(s []ring.Point, p ring.Point) []ring.Point {
	for _, q := range s {
		if q == p {
			return s
		}
	}
	return append(s, p)
}

// ringWalk extends path by walking along the ring from its last element
// until reaching target, or until budget hops are spent. It walks in
// whichever direction (successor or predecessor — both are P3 links in
// every construction here) is shorter, re-evaluated each hop. Returns the
// extended path and whether target was reached.
func ringWalk(r *ring.Ring, path []ring.Point, target ring.Point, budget int) ([]ring.Point, bool) {
	cur := path[len(path)-1]
	for i := 0; i < budget; i++ {
		if cur == target {
			return path, true
		}
		if cur.Dist(target) <= target.Dist(cur) {
			cur = r.StrictSuccessor(cur)
		} else {
			cur = r.Predecessor(cur)
		}
		path = append(path, cur)
	}
	return path, cur == target
}
