package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// The op log captures the puts that land between epoch boundaries, so a
// crash loses no acknowledged write: recovery is load-snapshot(E) +
// replay-oplog(E). Each log file belongs to exactly one snapshot epoch and
// is replaced when the next snapshot commits.
//
// Record framing is [u32 length][u32 crc32c(payload)][payload], payload =
// varint-framed key then value. A SIGKILL can tear at most the final
// record (appends are single write calls into the page cache), and a torn
// or corrupt tail fails either the length or the CRC check — ReadLog
// returns everything before it and reports how many bytes were discarded.
// Records are fsynced on Sync/Close, not per append: a kill loses nothing
// (the page cache survives the process), only a power cut can lose the
// unsynced tail, and then replay still stops at a clean record boundary.

// logMagic opens every op-log file, followed by the format version and the
// snapshot epoch the log extends.
var logMagic = [6]byte{'T', 'G', 'O', 'P', 'L', 'G'}

// Op is one logged write.
type Op struct {
	Key   string
	Value []byte
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxRecordLen bounds a single framed record; a length beyond it is
// treated as a torn/corrupt tail.
const maxRecordLen = 8 + maxKeyLen + maxValueLen

// Log is an append-only op log open for writing.
type Log struct {
	f     *os.File
	buf   []byte
	count int
}

// CreateLog creates (truncating) an op-log file for the given snapshot
// epoch and syncs the header so the file is identifiable even if the
// process dies before the first append.
func CreateLog(path string, epoch int) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	var hdr bytes.Buffer
	hdr.Write(logMagic[:])
	writeUint(&hdr, Version)
	writeUint(&hdr, uint64(epoch))
	if _, err := f.Write(hdr.Bytes()); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{f: f}, nil
}

// Append frames and writes one op as a single write call. The record is
// durable against process death immediately and against power loss after
// the next Sync/Close.
func (l *Log) Append(op Op) error {
	var payload bytes.Buffer
	writeString(&payload, op.Key)
	writeBytes(&payload, op.Value)
	l.buf = l.buf[:0]
	l.buf = binary.BigEndian.AppendUint32(l.buf, uint32(payload.Len()))
	l.buf = binary.BigEndian.AppendUint32(l.buf, crc32.Checksum(payload.Bytes(), crcTable))
	l.buf = append(l.buf, payload.Bytes()...)
	if _, err := l.f.Write(l.buf); err != nil {
		return err
	}
	l.count++
	return nil
}

// Count reports how many ops have been appended since the log was created.
func (l *Log) Count() int { return l.count }

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReadLog parses an op-log file. It returns the log's snapshot epoch, the
// ops up to the first torn or corrupt record, and the number of tail bytes
// discarded (0 for a clean log). Header corruption fails with ErrCorrupt;
// tail corruption does not — losing an unsynced final record is the
// expected crash shape, not a reason to reject the log.
func ReadLog(path string) (epoch int, ops []Op, discarded int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, 0, err
	}
	epoch, ops, discarded, derr := DecodeLog(data)
	if derr != nil {
		return 0, nil, 0, fmt.Errorf("%s: %w", path, derr)
	}
	return epoch, ops, discarded, nil
}

// DecodeLog parses op-log bytes; see ReadLog. It never panics on arbitrary
// input.
func DecodeLog(data []byte) (epoch int, ops []Op, discarded int, err error) {
	d := &decoder{data: data}
	var m [6]byte
	d.read(m[:])
	if d.err != nil || m != logMagic {
		return 0, nil, 0, fmt.Errorf("%w: bad op-log magic", ErrCorrupt)
	}
	if v := d.uint(); d.err != nil || v != Version {
		return 0, nil, 0, fmt.Errorf("%w: unsupported op-log version", ErrCorrupt)
	}
	e := d.uint()
	if d.err != nil {
		return 0, nil, 0, fmt.Errorf("%w: truncated op-log header", ErrCorrupt)
	}
	if e > maxEpoch {
		return 0, nil, 0, fmt.Errorf("%w: absurd op-log epoch %d", ErrCorrupt, e)
	}
	epoch = int(e)
	for d.remaining() > 0 {
		rest := d.remaining()
		if rest < 8 {
			return epoch, ops, rest, nil // torn frame header
		}
		length := binary.BigEndian.Uint32(d.data[d.off:])
		sum := binary.BigEndian.Uint32(d.data[d.off+4:])
		if length > maxRecordLen || int(length) > rest-8 {
			return epoch, ops, rest, nil // torn or garbage length
		}
		payload := d.data[d.off+8 : d.off+8+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			return epoch, ops, rest, nil // corrupt record
		}
		pd := &decoder{data: payload}
		key := pd.string(maxKeyLen)
		val := pd.bytes(maxValueLen)
		if pd.err != nil || pd.remaining() != 0 {
			return epoch, ops, rest, nil // framed but malformed payload
		}
		ops = append(ops, Op{Key: key, Value: val})
		d.off += 8 + int(length)
	}
	return epoch, ops, 0, nil
}
