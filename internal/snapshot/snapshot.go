// Package snapshot implements the durability layer behind tinygroups'
// WithDataDir: a versioned, checksummed binary snapshot of one committed
// epoch generation, an append-only op log for the puts that land between
// epoch boundaries, and a data-directory manager that writes snapshots
// atomically (temp file + fsync + rename) and loads the newest valid one,
// falling back past corrupt or torn files.
//
// The format leans on the repo's backbone invariant — determinism. A
// snapshot does not serialize derived state (overlay tables, rank indexes,
// membership maps, read-path randomness): all of it is a pure function of
// what is stored, so the loader rebuilds it and the restored system is
// byte-identical to the one that saved. The placement rng is captured as a
// single draw count (re-seed + fast-forward restores its exact state), and
// the saved generation fingerprint lets the loader verify the rebuild
// end-to-end before serving a byte.
//
// Decoders in this package are fuzzed: arbitrary input must never panic,
// only fail with an error wrapping ErrCorrupt.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is wrapped by every decode failure: truncated input, bad
// magic, checksum mismatch, or structurally impossible counts. Callers
// branch with errors.Is to distinguish corruption (fall back to an older
// snapshot) from I/O errors (surface them).
var ErrCorrupt = errors.New("snapshot: corrupt")

// ErrConfigMismatch is returned when a structurally valid snapshot was
// written by a system with different determinism-relevant configuration —
// loading it would silently serve a different universe, so it is a hard
// error, not a fallback.
var ErrConfigMismatch = errors.New("snapshot: config mismatch")

// magic opens every snapshot file; version is bumped on any format change.
var magic = [6]byte{'T', 'G', 'S', 'N', 'A', 'P'}

// Version is the current snapshot format version.
const Version = 1

// ConfigKey echoes every configuration setting that shapes the
// deterministic state trajectory. A snapshot loads only into a system whose
// ConfigKey is identical; anything absent here (worker counts, observers,
// queue sizes) is explicitly allowed to differ across a restart. Float
// fields are carried as IEEE 754 bits so the comparison is exact.
type ConfigKey struct {
	N              int
	Seed           int64
	BetaBits       uint64
	Overlay        string
	TwoGraphs      bool
	VerifyRequests bool
	Strategy       int
	SpamFactor     int
	DepartBits     uint64 // mid-epoch departure fraction
	DriftBits      uint64 // size-drift fraction
}

// Member is one group member: an ID-space point plus its corruption bit.
type Member struct {
	ID  uint64
	Bad bool
}

// Group is one group's durable state, keyed by its leader's ring rank.
type Group struct {
	Members  []Member
	Bad      bool
	Confused bool
}

// KV is one stored key/value pair. Snapshots carry keys sorted ascending so
// encoding is independent of map iteration order.
type KV struct {
	Key   string
	Value []byte
}

// Snapshot is the full durable state of one committed epoch boundary.
type Snapshot struct {
	Config   ConfigKey
	Epoch    int
	RNGCount uint64
	// MintWork is the difficulty serving at the boundary; RetargetWork the
	// retargeting controller's internal state (0 when retargeting is off).
	MintWork     float64
	RetargetWork float64
	// Fingerprint is the generation digest the saver computed; the loader
	// verifies the rebuilt generation against it before serving.
	Fingerprint string
	Ring        []uint64
	BadList     []uint64
	Graphs      [][]Group
	Keys        []KV
}

// Encode serializes s into the versioned, checksummed wire form.
func Encode(s *Snapshot) []byte {
	var b bytes.Buffer
	b.Write(magic[:])
	writeUint(&b, Version)
	writeUint(&b, uint64(s.Config.N))
	writeUint(&b, uint64(s.Config.Seed))
	writeUint(&b, s.Config.BetaBits)
	writeString(&b, s.Config.Overlay)
	writeBool(&b, s.Config.TwoGraphs)
	writeBool(&b, s.Config.VerifyRequests)
	writeUint(&b, uint64(s.Config.Strategy))
	writeUint(&b, uint64(s.Config.SpamFactor))
	writeUint(&b, s.Config.DepartBits)
	writeUint(&b, s.Config.DriftBits)

	writeUint(&b, uint64(s.Epoch))
	writeUint(&b, s.RNGCount)
	writeUint(&b, math.Float64bits(s.MintWork))
	writeUint(&b, math.Float64bits(s.RetargetWork))
	writeString(&b, s.Fingerprint)

	writeUint(&b, uint64(len(s.Ring)))
	for _, p := range s.Ring {
		writeUint(&b, p)
	}
	writeUint(&b, uint64(len(s.BadList)))
	for _, p := range s.BadList {
		writeUint(&b, p)
	}
	writeUint(&b, uint64(len(s.Graphs)))
	for _, g := range s.Graphs {
		writeUint(&b, uint64(len(g)))
		for _, grp := range g {
			writeBool(&b, grp.Bad)
			writeBool(&b, grp.Confused)
			writeUint(&b, uint64(len(grp.Members)))
			for _, m := range grp.Members {
				writeUint(&b, m.ID)
				writeBool(&b, m.Bad)
			}
		}
	}
	writeUint(&b, uint64(len(s.Keys)))
	for _, kv := range s.Keys {
		writeString(&b, kv.Key)
		writeBytes(&b, kv.Value)
	}
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes()
}

// Decode parses a snapshot, verifying magic, version and checksum. Any
// malformed input fails with an error wrapping ErrCorrupt; Decode never
// panics on arbitrary bytes.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+sha256.Size {
		return nil, fmt.Errorf("%w: %d bytes is shorter than header+checksum", ErrCorrupt, len(data))
	}
	body, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &decoder{data: body}
	var m [6]byte
	d.read(m[:])
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, m[:])
	}
	if v := d.uint(); v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	s := &Snapshot{}
	s.Config.N = int(d.uint())
	s.Config.Seed = int64(d.uint())
	s.Config.BetaBits = d.uint()
	s.Config.Overlay = d.string(maxNameLen)
	s.Config.TwoGraphs = d.bool()
	s.Config.VerifyRequests = d.bool()
	s.Config.Strategy = int(d.uint())
	s.Config.SpamFactor = int(d.uint())
	s.Config.DepartBits = d.uint()
	s.Config.DriftBits = d.uint()

	if e := d.uint(); e > maxEpoch {
		return nil, fmt.Errorf("%w: absurd epoch %d", ErrCorrupt, e)
	} else {
		s.Epoch = int(e)
	}
	s.RNGCount = d.uint()
	s.MintWork = math.Float64frombits(d.uint())
	s.RetargetWork = math.Float64frombits(d.uint())
	s.Fingerprint = d.string(maxNameLen)

	s.Ring = d.points()
	s.BadList = d.points()
	nGraphs := d.count(8) // 2 in practice; 8 is an absurdity bound
	for gi := uint64(0); gi < nGraphs && d.err == nil; gi++ {
		nGroups := d.count(8)
		g := make([]Group, 0, min(nGroups, uint64(d.remaining())))
		for i := uint64(0); i < nGroups && d.err == nil; i++ {
			var grp Group
			grp.Bad = d.bool()
			grp.Confused = d.bool()
			nm := d.count(2)
			grp.Members = make([]Member, 0, min(nm, uint64(d.remaining())))
			for j := uint64(0); j < nm && d.err == nil; j++ {
				grp.Members = append(grp.Members, Member{ID: d.uint(), Bad: d.bool()})
			}
			g = append(g, grp)
		}
		s.Graphs = append(s.Graphs, g)
	}
	nKeys := d.count(2)
	s.Keys = make([]KV, 0, min(nKeys, uint64(d.remaining())))
	for i := uint64(0); i < nKeys && d.err == nil; i++ {
		k := d.string(maxKeyLen)
		v := d.bytes(maxValueLen)
		s.Keys = append(s.Keys, KV{Key: k, Value: v})
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return s, nil
}

// Sanity bounds for variable-length fields; anything beyond them in a
// checksum-valid file is structural corruption, not data.
const (
	maxNameLen  = 256
	maxKeyLen   = 1 << 16
	maxValueLen = 1 << 24
	maxEpoch    = 1 << 40
)

// decoder is a bounds-checked cursor over the snapshot body. Every read
// records the first failure in err and returns zero values afterwards, so
// decode loops stay panic-free on arbitrary input.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, fmt.Sprintf(format, args...), d.off)
	}
}

func (d *decoder) read(dst []byte) {
	if d.err != nil {
		return
	}
	if d.remaining() < len(dst) {
		d.fail("need %d bytes, have %d", len(dst), d.remaining())
		return
	}
	copy(dst, d.data[d.off:])
	d.off += len(dst)
}

func (d *decoder) uint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return v
}

// count reads a length prefix and rejects values that could not possibly
// fit in the remaining bytes (each counted element costs at least one byte
// divided by the density factor — the allocation-bomb guard).
func (d *decoder) count(minBytesPer int) uint64 {
	v := d.uint()
	if d.err != nil {
		return 0
	}
	if minBytesPer < 1 {
		minBytesPer = 1
	}
	if v > uint64(d.remaining()*minBytesPer) {
		d.fail("count %d exceeds remaining input", v)
		return 0
	}
	return v
}

func (d *decoder) bool() bool {
	var b [1]byte
	d.read(b[:])
	if d.err != nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool byte %d", b[0])
		return false
	}
}

func (d *decoder) bytes(maxLen int) []byte {
	n := d.uint()
	if d.err != nil {
		return nil
	}
	if n > uint64(maxLen) || n > uint64(d.remaining()) {
		d.fail("byte field of %d exceeds bound", n)
		return nil
	}
	out := make([]byte, n)
	d.read(out)
	return out
}

func (d *decoder) string(maxLen int) string { return string(d.bytes(maxLen)) }

func (d *decoder) points() []uint64 {
	n := d.count(1)
	out := make([]uint64, 0, min(n, uint64(d.remaining())))
	for i := uint64(0); i < n && d.err == nil; i++ {
		out = append(out, d.uint())
	}
	return out
}

func writeUint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	b.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func writeBool(b *bytes.Buffer, v bool) {
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func writeBytes(b *bytes.Buffer, v []byte) {
	writeUint(b, uint64(len(v)))
	b.Write(v)
}

func writeString(b *bytes.Buffer, v string) {
	writeUint(b, uint64(len(v)))
	b.WriteString(v)
}
