package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleSnapshot is a small but structurally complete snapshot: two
// graphs, mixed flags, stored keys including an empty value.
func sampleSnapshot(epoch int) *Snapshot {
	return &Snapshot{
		Config: ConfigKey{
			N: 64, Seed: 1, BetaBits: 0x3FA999999999999A, Overlay: "chord",
			TwoGraphs: true, VerifyRequests: true, Strategy: 0, SpamFactor: 0,
		},
		Epoch:        epoch,
		RNGCount:     12345,
		MintWork:     16384,
		RetargetWork: 0,
		Fingerprint:  "feedface",
		Ring:         []uint64{1, 5, 9, 200},
		BadList:      []uint64{9},
		Graphs: [][]Group{
			{
				{Members: []Member{{ID: 1}, {ID: 9, Bad: true}}, Bad: true},
				{Members: []Member{{ID: 5}}, Confused: true},
			},
			{
				{Members: []Member{{ID: 200}}},
			},
		},
		Keys: []KV{
			{Key: "alpha", Value: []byte("one")},
			{Key: "empty", Value: []byte{}},
			{Key: "zeta", Value: []byte{0, 1, 2, 255}},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot(7)
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// Every truncation and every single-byte corruption of a valid snapshot
// must fail with ErrCorrupt — never panic, never decode silently wrong.
// This is the byte-level half of the crash matrix (the file-level half
// lives in TestDirFallsBack*).
func TestSnapshotDecodeRejectsAllTruncationsAndFlips(t *testing.T) {
	data := Encode(sampleSnapshot(3))
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation at %d: got %v, want ErrCorrupt", cut, err)
		}
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at %d: got %v, want ErrCorrupt", i, err)
		}
	}
	if _, err := Decode(append(data, 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("trailing byte accepted")
	}
}

func TestOplogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "oplog-test.tglog")
	lg, err := CreateLog(path, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{
		{Key: "a", Value: []byte("1")},
		{Key: "b", Value: nil},
		{Key: "c", Value: []byte{0, 255}},
	}
	for _, op := range want {
		if err := lg.Append(op); err != nil {
			t.Fatal(err)
		}
	}
	if lg.Count() != len(want) {
		t.Fatalf("count %d, want %d", lg.Count(), len(want))
	}
	if err := lg.Close(); err != nil {
		t.Fatal(err)
	}
	epoch, ops, discarded, err := ReadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 4 || discarded != 0 {
		t.Fatalf("epoch %d discarded %d", epoch, discarded)
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i, op := range ops {
		if op.Key != want[i].Key || string(op.Value) != string(want[i].Value) {
			t.Fatalf("op %d: %+v != %+v", i, op, want[i])
		}
	}
}

// A torn tail — the log truncated at any byte past the header — must
// replay every complete record before the tear and report the discarded
// bytes, never error and never panic.
func TestOplogTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.tglog")
	lg, err := CreateLog(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Op{
		{Key: "k1", Value: []byte("v1")},
		{Key: "k2", Value: []byte("v2")},
		{Key: "k3", Value: []byte("v3")},
	}
	var ends []int64
	for _, op := range recs {
		if err := lg.Append(op); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	lg.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	headerLen := int(ends[0]) - (int(ends[1]) - int(ends[0]))
	for cut := headerLen; cut <= len(full); cut++ {
		_, ops, discarded, err := DecodeLog(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		complete := 0
		lastEnd := int64(headerLen)
		for _, end := range ends {
			if int64(cut) >= end {
				complete++
				lastEnd = end
			}
		}
		if len(ops) != complete {
			t.Fatalf("cut %d: replayed %d ops, want %d", cut, len(ops), complete)
		}
		if want := cut - int(lastEnd); discarded != want {
			t.Fatalf("cut %d: discarded %d bytes, want %d", cut, discarded, want)
		}
	}
	// A corrupted (not torn) record likewise stops replay at the last good
	// record instead of erroring.
	mut := append([]byte(nil), full...)
	mut[ends[1]+5] ^= 0xFF
	_, ops, discarded, err := DecodeLog(mut)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || discarded == 0 {
		t.Fatalf("corrupt 3rd record: got %d ops, discarded %d", len(ops), discarded)
	}
	// Header corruption is a different story: the file is unidentifiable.
	mut = append([]byte(nil), full...)
	mut[0] ^= 0xFF
	if _, _, _, err := DecodeLog(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt header: got %v, want ErrCorrupt", err)
	}
}

func TestDirWriteLoadPrune(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e <= 3; e++ {
		if err := d.WriteSnapshot(sampleSnapshot(e)); err != nil {
			t.Fatal(err)
		}
		lg, err := CreateLog(d.LogPath(e), e)
		if err != nil {
			t.Fatal(err)
		}
		lg.Append(Op{Key: "k", Value: []byte{byte(e)}})
		lg.Close()
	}
	res, err := d.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Epoch != 3 || len(res.Ops) != 1 || res.Ops[0].Value[0] != 3 {
		t.Fatalf("loaded epoch %d with %d ops", res.Snapshot.Epoch, len(res.Ops))
	}
	if res.SkippedSnapshots != 0 || res.DiscardedLogBytes != 0 {
		t.Fatalf("clean load reported skips: %+v", res)
	}
	if err := d.Prune(2); err != nil {
		t.Fatal(err)
	}
	epochs, err := d.SnapshotEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0] != 3 || epochs[1] != 2 {
		t.Fatalf("after prune: %v", epochs)
	}
	// Op logs of pruned snapshots go with them.
	if _, err := os.Stat(d.LogPath(1)); !os.IsNotExist(err) {
		t.Fatal("pruned epoch's op log still present")
	}
	if _, err := os.Stat(d.LogPath(3)); err != nil {
		t.Fatal("retained epoch's op log removed")
	}
}

// File-level crash matrix: corrupt newest snapshot falls back to the one
// before it; all snapshots corrupt is ErrNoSnapshot; leftover temp files
// (a kill before rename) are reaped and never loaded.
func TestDirFallsBackPastCorruptSnapshots(t *testing.T) {
	path := t.TempDir()
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e <= 2; e++ {
		if err := d.WriteSnapshot(sampleSnapshot(e)); err != nil {
			t.Fatal(err)
		}
	}
	// Kill mid-temp-write: a partial temp file for epoch 3.
	if err := os.WriteFile(filepath.Join(path, "snap-000000000003.tgsnap.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest real snapshot.
	name := filepath.Join(path, "snap-000000000002.tgsnap")
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(name, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Reopen (reaps temp files) and load: epoch 1 is the newest valid.
	d, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(path, "snap-000000000003.tgsnap.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp file survived reopen")
	}
	res, err := d.LoadLatest()
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot.Epoch != 1 || res.SkippedSnapshots != 1 {
		t.Fatalf("fell back to epoch %d, skipped %d", res.Snapshot.Epoch, res.SkippedSnapshots)
	}
	// Truncate every snapshot: nothing valid remains.
	for e := 0; e <= 2; e++ {
		if err := os.WriteFile(d.snapPath(e), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("all corrupt: got %v, want ErrNoSnapshot", err)
	}
}

func TestLoadLatestEmptyDir(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadLatest(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("got %v, want ErrNoSnapshot", err)
	}
}
