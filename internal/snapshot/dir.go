package snapshot

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Dir manages a tinygroups data directory:
//
//	snap-<epoch>.tgsnap   one snapshot per committed epoch boundary
//	oplog-<epoch>.tglog   puts accepted since snapshot <epoch>
//	*.tmp                 in-flight atomic writes (ignored, reaped)
//
// Snapshots are written with the classic atomic protocol — temp file,
// fsync, rename into place, fsync the directory — so a crash at any stage
// leaves either the old set of snapshots or the old set plus one complete
// new file, never a half-written one under the final name. LoadLatest
// walks snapshots newest-first and skips anything that fails decode, so a
// corrupt newest file degrades to the previous boundary instead of
// refusing to boot.
type Dir struct {
	path string
}

// ErrNoSnapshot is returned by LoadLatest when the directory holds no
// valid snapshot — the caller should cold-boot.
var ErrNoSnapshot = errors.New("snapshot: no valid snapshot in data dir")

const (
	snapPrefix = "snap-"
	snapSuffix = ".tgsnap"
	logPrefix  = "oplog-"
	logSuffix  = ".tglog"
)

// Open prepares path as a data directory, creating it if needed and
// removing leftover temp files from interrupted writes.
func Open(path string) (*Dir, error) {
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(path, e.Name()))
		}
	}
	return &Dir{path: path}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

func (d *Dir) snapPath(epoch int) string {
	return filepath.Join(d.path, fmt.Sprintf("%s%012d%s", snapPrefix, epoch, snapSuffix))
}

// LogPath returns the op-log path for the given snapshot epoch.
func (d *Dir) LogPath(epoch int) string {
	return filepath.Join(d.path, fmt.Sprintf("%s%012d%s", logPrefix, epoch, logSuffix))
}

// WriteSnapshot atomically persists s under its epoch number: encode,
// write to a temp file, fsync, rename, fsync the directory.
func (d *Dir) WriteSnapshot(s *Snapshot) error {
	data := Encode(s)
	final := d.snapPath(s.Epoch)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return d.syncDir()
}

func (d *Dir) syncDir() error {
	df, err := os.Open(d.path)
	if err != nil {
		return err
	}
	err = df.Sync()
	cerr := df.Close()
	if err != nil {
		return err
	}
	return cerr
}

// SnapshotEpochs lists the epochs that have a snapshot file, descending.
func (d *Dir) SnapshotEpochs() ([]int, error) {
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return nil, err
	}
	var epochs []int
	for _, e := range entries {
		n := e.Name()
		if !strings.HasPrefix(n, snapPrefix) || !strings.HasSuffix(n, snapSuffix) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(n, snapPrefix), snapSuffix)
		ep, err := strconv.Atoi(num)
		if err != nil {
			continue
		}
		epochs = append(epochs, ep)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(epochs)))
	return epochs, nil
}

// LoadResult is what LoadLatest recovered: the newest valid snapshot, the
// replayable ops from its log, and bookkeeping about what was skipped.
type LoadResult struct {
	Snapshot *Snapshot
	Ops      []Op
	// SkippedSnapshots counts newer snapshot files that failed to decode
	// and were passed over; DiscardedLogBytes is the torn op-log tail.
	SkippedSnapshots  int
	DiscardedLogBytes int
}

// LoadLatest loads the newest valid snapshot and replays its op log,
// walking past corrupt or truncated snapshot files to older boundaries. A
// missing or header-corrupt op log yields zero ops (the snapshot alone is
// a consistent state); a torn log tail is discarded. Returns ErrNoSnapshot
// when nothing valid exists.
func (d *Dir) LoadLatest() (*LoadResult, error) {
	epochs, err := d.SnapshotEpochs()
	if err != nil {
		return nil, err
	}
	res := &LoadResult{}
	for _, ep := range epochs {
		data, err := os.ReadFile(d.snapPath(ep))
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, err
		}
		s, derr := Decode(data)
		if derr != nil {
			res.SkippedSnapshots++
			continue
		}
		res.Snapshot = s
		logEpoch, ops, discarded, lerr := ReadLog(d.LogPath(ep))
		if lerr == nil && logEpoch == ep {
			res.Ops = ops
			res.DiscardedLogBytes = discarded
		}
		return res, nil
	}
	return nil, ErrNoSnapshot
}

// Prune deletes all but the newest keep snapshots and any op logs not
// belonging to a retained snapshot. keep < 1 is treated as 1.
func (d *Dir) Prune(keep int) error {
	if keep < 1 {
		keep = 1
	}
	epochs, err := d.SnapshotEpochs()
	if err != nil {
		return err
	}
	retained := make(map[int]bool, keep)
	for i, ep := range epochs {
		if i < keep {
			retained[ep] = true
			continue
		}
		if err := os.Remove(d.snapPath(ep)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	entries, err := os.ReadDir(d.path)
	if err != nil {
		return err
	}
	for _, e := range entries {
		n := e.Name()
		if !strings.HasPrefix(n, logPrefix) || !strings.HasSuffix(n, logSuffix) {
			continue
		}
		ep, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(n, logPrefix), logSuffix))
		if err != nil || retained[ep] {
			continue
		}
		if err := os.Remove(filepath.Join(d.path, n)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	return nil
}
