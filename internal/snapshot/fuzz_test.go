package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"reflect"
	"testing"
)

// The decoders are the trust boundary of the durability layer: they parse
// whatever is on disk after a crash, a partial write, or operator error.
// These fuzz targets pin the contract — arbitrary bytes never panic, never
// hang, and fail only with an error wrapping ErrCorrupt; valid inputs
// round-trip exactly. Seed corpora live in testdata/fuzz; CI runs a short
// -fuzztime pass over both targets (see make fuzz-short).

func FuzzDecodeSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add(magic[:])
	f.Add(Encode(sampleSnapshot(0)))
	f.Add(Encode(sampleSnapshot(1<<20 - 1)))
	big := sampleSnapshot(2)
	big.Keys = append(big.Keys, KV{Key: string(make([]byte, 300)), Value: make([]byte, 1024)})
	f.Add(Encode(big))
	trunc := Encode(sampleSnapshot(3))
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed decode error: %v", err)
			}
			return
		}
		// A decodable input must re-encode to an equivalent snapshot (the
		// encoding is canonical, but sha256 trailers over distinct bodies
		// can't collide in a fuzz run — so compare decoded forms).
		re, err := Decode(Encode(s))
		if err != nil {
			t.Fatalf("re-decode of re-encoded snapshot failed: %v", err)
		}
		if !reflect.DeepEqual(s, re) {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}

func FuzzDecodeLog(f *testing.F) {
	f.Add([]byte{})
	f.Add(logMagic[:])
	var hdr bytes.Buffer
	hdr.Write(logMagic[:])
	writeUint(&hdr, Version)
	writeUint(&hdr, 7)
	f.Add(hdr.Bytes())
	withRec := append([]byte(nil), hdr.Bytes()...)
	withRec = append(withRec, encodeRecord(Op{Key: "k", Value: []byte("v")})...)
	f.Add(withRec)
	f.Add(withRec[:len(withRec)-3]) // torn tail
	f.Fuzz(func(t *testing.T, data []byte) {
		epoch, ops, discarded, err := DecodeLog(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("non-typed log decode error: %v", err)
			}
			return
		}
		if epoch < 0 || discarded < 0 || discarded > len(data) {
			t.Fatalf("impossible bookkeeping: epoch %d discarded %d", epoch, discarded)
		}
		// Replayable ops must round-trip through a rebuilt log.
		var rebuilt bytes.Buffer
		rebuilt.Write(logMagic[:])
		writeUint(&rebuilt, Version)
		writeUint(&rebuilt, uint64(epoch))
		for _, op := range ops {
			rebuilt.Write(encodeRecord(op))
		}
		e2, ops2, d2, err := DecodeLog(rebuilt.Bytes())
		if err != nil || e2 != epoch || d2 != 0 || len(ops2) != len(ops) {
			t.Fatalf("rebuilt log mismatch: %v epoch %d discarded %d ops %d", err, e2, d2, len(ops2))
		}
	})
}

// encodeRecord frames one op exactly as Log.Append does, for building
// in-memory logs without a file.
func encodeRecord(op Op) []byte {
	var payload bytes.Buffer
	writeString(&payload, op.Key)
	writeBytes(&payload, op.Value)
	out := binary.BigEndian.AppendUint32(nil, uint32(payload.Len()))
	out = binary.BigEndian.AppendUint32(out, crc32.Checksum(payload.Bytes(), crcTable))
	return append(out, payload.Bytes()...)
}
