package pow

import (
	"runtime"
	"sync"

	"repro/internal/ring"
)

// The solver half of the parallel PoW layer lives in miner.go (counter-mode
// σ stream, multi-candidate scanning, work-stealing SolveSharded); this file
// keeps the verification half.

// Claim pairs a minted ID with the pre-image backing it, for verification.
type Claim struct {
	ID    ring.Point
	Sigma []byte
}

// VerifyBatch checks many claims against one epoch string on a worker pool
// and returns the per-claim verdicts in input order. It serves the literal
// PoW layer (E6's validation rows, tests, and the /v1/verify endpoint); the
// epoch simulation itself stays on the statistical substitution of mint.go
// and models verification as accept/reject probabilities rather than
// literal hashing. Each claim's verdict is independent, so results never
// depend on scheduling. workers ≤ 0 means GOMAXPROCS.
func VerifyBatch(claims []Claim, r []byte, p Params, workers int) []bool {
	out := make([]bool, len(claims))
	if len(claims) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(claims) {
		workers = len(claims)
	}
	if workers <= 1 {
		for i, c := range claims {
			out[i] = Verify(c.ID, c.Sigma, r, p)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(claims) + workers - 1) / workers
	for lo := 0; lo < len(claims); lo += chunk {
		hi := lo + chunk
		if hi > len(claims) {
			hi = len(claims)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = Verify(claims[i].ID, claims[i].Sigma, r, p)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
