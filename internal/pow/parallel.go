package pow

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashes"
	"repro/internal/ring"
)

// sigmaOracle derives the σ tried at each global attempt index of a sharded
// solve. A dedicated domain-separation tag keeps this stream independent of
// the paper's five named oracles.
var sigmaOracle = hashes.NewFunc("sigma")

// ShardSigma returns the σ a sharded solve tries at global attempt index a:
// a fixed function of (seed, a) only, so the mapping from attempt index to
// candidate is identical no matter how the index space is sharded.
func ShardSigma(seed int64, a int64, length int) []byte {
	out := make([]byte, length)
	shardSigmaInto(out, seed, a)
	return out
}

// shardSigmaInto writes ShardSigma(seed, a, len(dst)) into dst without
// allocating, for the solver's per-attempt hot loop.
func shardSigmaInto(dst []byte, seed int64, a int64) {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(seed))
	binary.BigEndian.PutUint64(buf[8:16], uint64(a))
	n := 0
	for c := 0; n < len(dst); c++ {
		binary.BigEndian.PutUint64(buf[16:], uint64(c))
		d := sigmaOracle.Bytes(buf[:])
		n += copy(dst[n:], d[:])
	}
}

// SolveSharded searches for g(σ ⊕ r) ≤ τ like Solve, but fans the attempt
// space over a worker pool: worker w scans global attempt indices
// w+1, w+1+W, w+1+2W, … in ascending order. Because ShardSigma fixes the
// candidate at every index, the smallest solving index — and therefore the
// returned solution and its Attempts count — is bit-identical for every
// worker count and schedule. Workers abandon their shard as soon as a
// better (smaller) index has been found elsewhere, so wall-clock scales
// with cores while the result does not. workers ≤ 0 means GOMAXPROCS.
func SolveSharded(r []byte, p Params, seed int64, maxAttempts, workers int) (Solution, bool) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxAttempts {
		workers = maxAttempts
	}
	if workers < 1 {
		workers = 1
	}
	// bestIdx holds the smallest solving attempt index found so far;
	// maxAttempts+1 means "none yet".
	var bestIdx atomic.Int64
	bestIdx.Store(int64(maxAttempts) + 1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Reusable per-worker buffers keep the per-attempt loop free of
			// heap allocation; only the hash work remains.
			sigma := make([]byte, p.StringLen)
			xored := make([]byte, min(p.StringLen, len(r)))
			for a := int64(w) + 1; a <= int64(maxAttempts); a += int64(workers) {
				if a >= bestIdx.Load() {
					return // a smaller index already solved; nothing here can win
				}
				shardSigmaInto(sigma, seed, a)
				hashes.XORInto(xored, sigma, r)
				if hashes.G.Point(xored) <= p.Tau {
					for {
						cur := bestIdx.Load()
						if a >= cur || bestIdx.CompareAndSwap(cur, a) {
							break
						}
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	a := bestIdx.Load()
	if a > int64(maxAttempts) {
		return Solution{Attempts: maxAttempts}, false
	}
	sigma := ShardSigma(seed, a, p.StringLen)
	y := hashes.G.Point(hashes.XOR(sigma, r))
	return Solution{Sigma: sigma, Y: y, ID: hashes.F.OfPoint(y), Attempts: int(a)}, true
}

// Claim pairs a minted ID with the pre-image backing it, for verification.
type Claim struct {
	ID    ring.Point
	Sigma []byte
}

// VerifyBatch checks many claims against one epoch string on a worker pool
// and returns the per-claim verdicts in input order. It serves the literal
// PoW layer (E6's validation rows and tests); the epoch simulation itself
// stays on the statistical substitution of mint.go and models verification
// as accept/reject probabilities rather than literal hashing. Each claim's
// verdict is independent, so results never depend on scheduling.
// workers ≤ 0 means GOMAXPROCS.
func VerifyBatch(claims []Claim, r []byte, p Params, workers int) []bool {
	out := make([]bool, len(claims))
	if len(claims) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(claims) {
		workers = len(claims)
	}
	if workers <= 1 {
		for i, c := range claims {
			out[i] = Verify(c.ID, c.Sigma, r, p)
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(claims) + workers - 1) / workers
	for lo := 0; lo < len(claims); lo += chunk {
		hi := lo + chunk
		if hi > len(claims) {
			hi = len(claims)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = Verify(claims[i].ID, claims[i].Sigma, r, p)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
