// Package pow implements the paper's proof-of-work subsystem (§IV): ID
// generation by computational puzzles, ID verification and expiry, and the
// global-random-string lottery that defeats pre-computation attacks
// (Appendix VIII).
//
// Two layers are provided, per the DESIGN.md substitution table:
//
//   - a literal layer (this file): real SHA-256 puzzle solving and
//     verification, used by tests and small-scale runs to validate the
//     model;
//   - a statistical layer (mint.go): the exact binomial/Poisson solution
//     counts the Lemma 11 proof analyzes, used for large sweeps.
package pow

import (
	"encoding/binary"
	"math"
	"math/rand"

	"repro/internal/hashes"
	"repro/internal/ring"
)

// Params fixes the puzzle difficulty and string length.
type Params struct {
	// Tau is the success threshold: σ solves the puzzle against epoch
	// string r iff g(σ ⊕ r) ≤ Tau. The paper sets τ so that an honest ID
	// finds a solution in (1±ε)T/2 steps; with one attempt per step that is
	// Tau ≈ 2/T of the output space.
	Tau ring.Point
	// StringLen is the byte length of σ and r (the paper's ℓ·ln n bits).
	StringLen int
}

// DefaultParams returns a difficulty where one solution takes ~2^14
// attempts in expectation — small enough for tests, large enough to be a
// real puzzle.
func DefaultParams() Params {
	return Params{Tau: ^ring.Point(0) >> 14, StringLen: 32}
}

// TauForEpoch returns the threshold giving one expected solution per T/2
// attempts: τ = 2/T of the output space.
func TauForEpoch(T int) ring.Point {
	if T < 2 {
		T = 2
	}
	return ^ring.Point(0) / ring.Point(T) * 2
}

// Solution is a solved puzzle: the pre-image σ, the intermediate output
// y = g(σ⊕r), and the resulting ID f(y).
type Solution struct {
	Sigma    []byte
	Y        ring.Point
	ID       ring.Point
	Attempts int
}

// Solve searches for a σ with g(σ ⊕ r) ≤ τ, up to maxAttempts attempts.
// The returned ID is f(g(σ ⊕ r)) — the two-hash composition that forces
// IDs to be u.a.r. even for an adversary that cherry-picks inputs (§IV-A,
// "Why Use Two Hash Functions?").
func Solve(r []byte, p Params, rng *rand.Rand, maxAttempts int) (Solution, bool) {
	sigma := make([]byte, p.StringLen)
	xored := make([]byte, p.StringLen) // reused: the attempt loop allocates nothing
	for a := 1; a <= maxAttempts; a++ {
		rng.Read(sigma)
		y := hashes.G.Point(hashes.XORInto(xored, sigma, r))
		if y <= p.Tau {
			out := make([]byte, len(sigma))
			copy(out, sigma)
			return Solution{Sigma: out, Y: y, ID: hashes.F.OfPoint(y), Attempts: a}, true
		}
	}
	return Solution{Attempts: maxAttempts}, false
}

// Verify checks a claimed ID against its pre-image σ and the epoch string
// r: g(σ⊕r) ≤ τ and f(g(σ⊕r)) = id. An ID signed with an expired epoch
// string fails verification against the current one — this is exactly how
// the paper expires IDs. (The paper uses a zero-knowledge proof so σ is not
// revealed; the accept/reject behavior — all that the simulation observes —
// is identical.)
func Verify(id ring.Point, sigma, r []byte, p Params) bool {
	// Typical string lengths (ℓ·ln n ≈ 32 bytes) xor on the stack; longer
	// strings fall back to one transient buffer.
	var stack [64]byte
	buf := stack[:]
	if n := len(sigma); n > len(buf) {
		buf = make([]byte, n)
	}
	y := hashes.G.Point(hashes.XORInto(buf, sigma, r))
	return y <= p.Tau && hashes.F.OfPoint(y) == id
}

// TauForWork returns the threshold at which one solution takes `work`
// attempts in expectation: τ = 2^64 / work of the output space. It is the
// inverse of the difficulty knob the Retargeter turns — work doubles, τ
// halves. work < 2 means every attempt solves.
func TauForWork(work float64) ring.Point {
	if work < 2 {
		return ^ring.Point(0)
	}
	// 2^64/work ≤ 2^63 here, so the float→uint conversion is exact-range.
	return ring.Point(math.Ldexp(1, 64) / work)
}

// EpochString derives a fresh epoch string deterministically from a seed
// and epoch index (trusted-setup stand-in where the full lottery is not
// being exercised). Seed, epoch, and the block counter occupy separate
// fixed-width fields of the hash input, so no (epoch, counter) pair can
// collide with another.
func EpochString(seed int64, epoch int, length int) []byte {
	out := make([]byte, 0, length)
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(seed))
	binary.BigEndian.PutUint64(buf[8:16], uint64(epoch))
	for c := 0; len(out) < length; c++ {
		binary.BigEndian.PutUint64(buf[16:], uint64(c))
		d := hashes.H.Bytes(buf[:])
		out = append(out, d[:]...)
	}
	return out[:length]
}
