package pow

import (
	"context"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/hashes"
)

// This file is the mining engine behind SolveSharded: a counter-mode σ
// candidate stream (one base-block derivation amortized over MineChunk
// attempts, so steady-state cost approaches one g compression per attempt),
// a multi-candidate inner loop over stack arenas, and a work-stealing
// scheduler that fans the attempt space over chunked claims off an atomic
// cursor. The attempt-index → σ mapping stays a pure function of (seed, a),
// which is what keeps the smallest-solving-index result — and therefore
// Solution.Attempts — bit-identical at every worker count.

// MineChunk is the number of consecutive attempt indices that share one
// derived σ base block, and the granularity at which workers claim ranges
// of the attempt space. One claim costs one base derivation plus MineChunk
// g hashes, and the early-exit poll against the current best index runs
// once per claim instead of once per attempt.
const MineChunk = 256

// mineBatch is how many candidates the inner loop stages per pass over the
// stack arena before hashing them — the multi-buffer structure a SIMD
// SHA-256 implementation would consume directly.
const mineBatch = 8

// sigmaOracle derives the σ candidate stream of a sharded solve. A
// dedicated domain-separation tag keeps this stream independent of the
// paper's five named oracles.
var sigmaOracle = hashes.NewFunc("sigma")

// sigmaBaseInto fills dst with the base block shared by the MineChunk
// attempt indices of chunk c — the one derivation the counter mode
// amortizes. Multi-block extension covers string lengths beyond one
// digest, exactly like EpochString.
func sigmaBaseInto(dst []byte, seed, chunk int64) {
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(seed))
	binary.BigEndian.PutUint64(buf[8:16], uint64(chunk))
	n := 0
	for c := 0; n < len(dst); c++ {
		binary.BigEndian.PutUint64(buf[16:], uint64(c))
		d := sigmaOracle.Bytes(buf[:])
		n += copy(dst[n:], d[:])
	}
}

// counterBytes is the width of the embedded attempt counter.
const counterBytes = 8

// embedCounter overwrites the counter field of a σ candidate — the first 8
// bytes, little-endian, so the fastest-varying byte sits at offset 0 and
// short strings still see it. σ(seed, a) is therefore unique per attempt
// index for every StringLen ≥ 8: the counter disambiguates within a chunk,
// the base block across chunks.
func embedCounter(dst []byte, a int64) {
	var cnt [counterBytes]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(a))
	copy(dst, cnt[:])
}

// ShardSigma returns the σ a sharded solve tries at global attempt index a
// (a ≥ 1): a fixed function of (seed, a) only, so the mapping from attempt
// index to candidate is identical no matter how the index space is sharded
// or which worker scans it. The candidate is the chunk's base block with
// an embedded 8-byte attempt counter, which is what lets the solver derive
// one base per MineChunk attempts instead of one full hash per attempt.
func ShardSigma(seed int64, a int64, length int) []byte {
	out := make([]byte, length)
	shardSigmaInto(out, seed, a)
	return out
}

// shardSigmaInto writes ShardSigma(seed, a, len(dst)) into dst without
// allocating.
func shardSigmaInto(dst []byte, seed int64, a int64) {
	sigmaBaseInto(dst, seed, (a-1)/MineChunk)
	embedCounter(dst, a)
}

// arenaBytes bounds the xor width the stack-arena fast path handles; wider
// inputs (StringLen or epoch strings beyond 64 bytes) take the generic
// path. 64 covers every caller in this repository.
const arenaBytes = 64

// miner is one worker's solve state: reusable buffers sized once so the
// per-chunk scan performs no heap allocation — only the hash work remains.
type miner struct {
	p    Params
	r    []byte
	seed int64
	// n is the xor width min(StringLen, len(r)) — the prefix g actually
	// hashes, matching Verify's XORInto semantics.
	n    int
	fast bool

	// base holds the current chunk's σ base block; xbase its XOR with r,
	// into which only the counter field is rewritten per candidate.
	base  []byte
	xbase [arenaBytes]byte
	// arena stages mineBatch xored candidates per inner-loop pass.
	arena [mineBatch][arenaBytes]byte
	// slow-path scratch (n < counterBytes or n > arenaBytes only).
	sigma, xored []byte
}

// newMiner sizes a worker's buffers for one solve.
func newMiner(r []byte, p Params, seed int64) *miner {
	m := &miner{p: p, r: r, seed: seed, n: min(p.StringLen, len(r))}
	m.base = make([]byte, p.StringLen)
	m.fast = m.n >= counterBytes && m.n <= arenaBytes
	if !m.fast {
		m.sigma = make([]byte, p.StringLen)
		m.xored = make([]byte, m.n)
	}
	return m
}

// scan tries attempt indices lo..hi (inclusive, all within one chunk) and
// returns the smallest solving index, if any. It never polls shared state:
// the early-exit check against the best known index happens at claim
// boundaries in the scheduler, not per attempt.
func (m *miner) scan(lo, hi int64) (int64, bool) {
	if !m.fast {
		return m.scanSlow(lo, hi)
	}
	sigmaBaseInto(m.base, m.seed, (lo-1)/MineChunk)
	for i := 0; i < m.n; i++ {
		m.xbase[i] = m.base[i] ^ m.r[i]
	}
	for a := lo; a <= hi; {
		bs := int64(mineBatch)
		if rem := hi - a + 1; rem < bs {
			bs = rem
		}
		// Pass 1: stage bs candidates into the arena — xbase with only the
		// counter field rewritten (counter ⊕ r, since the arena holds σ⊕r).
		for k := int64(0); k < bs; k++ {
			buf := &m.arena[k]
			copy(buf[counterBytes:m.n], m.xbase[counterBytes:m.n])
			var cnt [counterBytes]byte
			binary.LittleEndian.PutUint64(cnt[:], uint64(a+k))
			for i := 0; i < counterBytes; i++ {
				buf[i] = cnt[i] ^ m.r[i]
			}
		}
		// Pass 2: hash the staged candidates back-to-back. With a
		// multi-buffer SHA-256 this pass becomes one SIMD call; scanning in
		// index order means the first hit is the smallest in the batch.
		for k := int64(0); k < bs; k++ {
			if hashes.G.Point(m.arena[k][:m.n]) <= m.p.Tau {
				return a + k, true
			}
		}
		a += bs
	}
	return 0, false
}

// scanSlow is the generic-width fallback: same chunk-amortized base
// derivation and boundary-only polling discipline, one candidate at a time.
func (m *miner) scanSlow(lo, hi int64) (int64, bool) {
	sigmaBaseInto(m.base, m.seed, (lo-1)/MineChunk)
	for a := lo; a <= hi; a++ {
		copy(m.sigma, m.base)
		embedCounter(m.sigma, a)
		hashes.XORInto(m.xored, m.sigma, m.r)
		if hashes.G.Point(m.xored) <= m.p.Tau {
			return a, true
		}
	}
	return 0, false
}

// SolveSharded searches for g(σ ⊕ r) ≤ τ like Solve, but fans the attempt
// space over a work-stealing worker pool: workers claim MineChunk-sized
// ranges of attempt indices off a shared atomic cursor, so a worker whose
// ranges miss keeps stealing whatever remains instead of idling behind a
// fixed stride. Because ShardSigma fixes the candidate at every index and
// the winner is the smallest solving index, the returned solution — Sigma,
// Y, ID and Attempts — is bit-identical for every worker count and
// schedule. Workers stop claiming as soon as a better (smaller) index has
// been found elsewhere, so wall-clock scales with cores while the result
// does not. workers ≤ 0 means GOMAXPROCS.
func SolveSharded(r []byte, p Params, seed int64, maxAttempts, workers int) (Solution, bool) {
	sol, ok, _ := SolveShardedContext(context.Background(), r, p, seed, maxAttempts, workers)
	return sol, ok
}

// SolveShardedContext is SolveSharded with cooperative cancellation: ctx is
// polled at chunk-claim boundaries, and on cancellation the solve returns
// ctx's error unless a solution had already been found (a solution found
// before the cancellation is observed is still returned, though under a
// cancelled context it may not be the smallest-index one). It serves the
// mint path, where a caller abandoning a request must release its solver
// goroutines promptly.
func SolveShardedContext(ctx context.Context, r []byte, p Params, seed int64, maxAttempts, workers int) (Solution, bool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxAttempts {
		workers = maxAttempts
	}
	if workers < 1 {
		workers = 1
	}
	// bestIdx holds the smallest solving attempt index found so far;
	// maxAttempts+1 means "none yet". Every index below the final value is
	// scanned by some claim: claims are monotone off the cursor, a claim is
	// only skipped when it starts at or beyond a current best, and bests
	// only decrease — so a skipped range can never contain a smaller
	// solution.
	var bestIdx atomic.Int64
	bestIdx.Store(int64(maxAttempts) + 1)
	// cursor hands out chunk claims: the next unclaimed attempt index is
	// cursor+1.
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := newMiner(r, p, seed)
			for {
				lo := cursor.Add(MineChunk) - MineChunk + 1
				if lo > int64(maxAttempts) {
					return
				}
				if ctx.Err() != nil {
					return
				}
				if lo >= bestIdx.Load() {
					return // a smaller index already solved; nothing here can win
				}
				hi := lo + MineChunk - 1
				if hi > int64(maxAttempts) {
					hi = int64(maxAttempts)
				}
				if a, found := m.scan(lo, hi); found {
					for {
						cur := bestIdx.Load()
						if a >= cur || bestIdx.CompareAndSwap(cur, a) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	a := bestIdx.Load()
	if a > int64(maxAttempts) {
		if err := ctx.Err(); err != nil {
			return Solution{}, false, err
		}
		return Solution{Attempts: maxAttempts}, false, nil
	}
	sigma := ShardSigma(seed, a, p.StringLen)
	y := hashes.G.Point(hashes.XOR(sigma, r))
	return Solution{Sigma: sigma, Y: y, ID: hashes.F.OfPoint(y), Attempts: int(a)}, true, nil
}
