package pow

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/hashes"
	"repro/internal/ring"
)

// TestSolveShardedWorkStealingDeterminism is the solver determinism gate:
// the work-stealing scheduler must return byte-identical solutions at the
// worker counts the acceptance criteria name.
func TestSolveShardedWorkStealingDeterminism(t *testing.T) {
	p := Params{Tau: ^ring.Point(0) >> 9, StringLen: 32}
	for seed := int64(1); seed <= 8; seed++ {
		r := EpochString(seed, 3, p.StringLen)
		ref, refOK := SolveSharded(r, p, seed, 1<<14, 1)
		for _, workers := range []int{2, 4, 16} {
			got, ok := SolveSharded(r, p, seed, 1<<14, workers)
			if ok != refOK {
				t.Fatalf("seed %d workers %d: ok=%v, want %v", seed, workers, ok, refOK)
			}
			if !ok {
				continue
			}
			if !bytes.Equal(got.Sigma, ref.Sigma) || got.Y != ref.Y || got.ID != ref.ID || got.Attempts != ref.Attempts {
				t.Fatalf("seed %d workers %d: solution diverged: got %+v want %+v",
					seed, workers, got, ref)
			}
		}
	}
}

// TestShardSigmaCounterMode pins the counter-mode structure of the σ
// stream: within a chunk consecutive candidates differ only in the 8-byte
// counter field, and crossing a chunk boundary swaps the base block.
func TestShardSigmaCounterMode(t *testing.T) {
	const length = 32
	seed := int64(7)

	// Same chunk: bytes past the counter are the shared base block.
	a, b := ShardSigma(seed, 10, length), ShardSigma(seed, 11, length)
	if bytes.Equal(a[:counterBytes], b[:counterBytes]) {
		t.Fatalf("counter fields did not change between attempts")
	}
	if !bytes.Equal(a[counterBytes:], b[counterBytes:]) {
		t.Fatalf("base block changed within one chunk")
	}

	// Chunk boundary: attempt MineChunk is the last of chunk 0, MineChunk+1
	// the first of chunk 1 — their tails must come from different bases.
	last, first := ShardSigma(seed, MineChunk, length), ShardSigma(seed, MineChunk+1, length)
	if bytes.Equal(last[counterBytes:], first[counterBytes:]) {
		t.Fatalf("base block did not rotate across the chunk boundary")
	}

	// The mapping stays a pure function of (seed, a).
	if !bytes.Equal(ShardSigma(seed, 10, length), a) {
		t.Fatalf("ShardSigma is not deterministic")
	}
}

// TestMinerScanMatchesShardSigma cross-checks the arena fast path and the
// generic fallback against the public per-index mapping: whatever index
// scan reports as solving must be the smallest solving index per
// ShardSigma + Verify semantics over the scanned range.
func TestMinerScanMatchesShardSigma(t *testing.T) {
	for _, stringLen := range []int{32, 100} { // 100 > arenaBytes forces scanSlow
		p := Params{Tau: ^ring.Point(0) >> 7, StringLen: stringLen}
		seed := int64(41)
		r := EpochString(seed, 1, stringLen)
		m := newMiner(r, p, seed)
		if (stringLen <= arenaBytes) != m.fast {
			t.Fatalf("StringLen %d: fast=%v, want %v", stringLen, m.fast, stringLen <= arenaBytes)
		}
		for chunk := int64(0); chunk < 4; chunk++ {
			lo, hi := chunk*MineChunk+1, (chunk+1)*MineChunk
			got, found := m.scan(lo, hi)
			want, wantFound := int64(0), false
			for a := lo; a <= hi && !wantFound; a++ {
				if solves(ShardSigma(seed, a, stringLen), r, p) {
					want, wantFound = a, true
				}
			}
			if found != wantFound || got != want {
				t.Fatalf("StringLen %d chunk %d: scan=(%d,%v), want (%d,%v)",
					stringLen, chunk, got, found, want, wantFound)
			}
		}
	}
}

// TestMinerScanAllocs gates the zero-allocation guarantee of the hot loop:
// once the miner's buffers exist, scanning a chunk must not touch the heap.
func TestMinerScanAllocs(t *testing.T) {
	p := Params{Tau: 0, StringLen: 32} // never solves: scan covers the full chunk
	seed := int64(5)
	r := EpochString(seed, 1, p.StringLen)
	m := newMiner(r, p, seed)
	lo := int64(1)
	if n := testing.AllocsPerRun(20, func() {
		m.scan(lo, lo+MineChunk-1)
		lo += MineChunk
	}); n != 0 {
		t.Fatalf("scan allocates %.1f times per chunk, want 0", n)
	}
}

// TestSolveShardedContextCancel: a pre-cancelled context returns its error
// without scanning the attempt space.
func TestSolveShardedContextCancel(t *testing.T) {
	p := Params{Tau: 0, StringLen: 32} // unsolvable, so only cancellation can stop early
	r := EpochString(1, 1, p.StringLen)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, ok, err := SolveShardedContext(ctx, r, p, 1, 1<<30, 4)
	if ok || err != context.Canceled {
		t.Fatalf("got ok=%v err=%v, want ok=false err=context.Canceled", ok, err)
	}
}

// TestEpochStringFieldPacking is the regression test for the old packed
// encoding (epoch<<20 | counter): epochs differing above bit 44 shifted
// their difference off the top of the uint64 and produced identical
// strings. Separate fixed-width fields cannot alias.
func TestEpochStringFieldPacking(t *testing.T) {
	seed := int64(99)
	if bytes.Equal(EpochString(seed, 1, 32), EpochString(seed, 1+(1<<44), 32)) {
		t.Fatalf("EpochString collides for epochs differing above bit 44")
	}
	// And the counter field can no longer bleed into the epoch field:
	// a multi-block string's second block (epoch e, counter 1) must differ
	// from another epoch's first block even when the old packed keys
	// matched (e<<20|1 vs (e+…)<<20|0 style overlaps).
	long := EpochString(seed, 2, 64)
	if bytes.Equal(long[:32], long[32:]) {
		t.Fatalf("consecutive blocks of one epoch string are identical")
	}
}

// solves is a test helper: does sigma solve the puzzle against r?
func solves(sigma, r []byte, p Params) bool {
	return hashes.G.Point(hashes.XOR(sigma, r)) <= p.Tau
}
