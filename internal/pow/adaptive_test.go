package pow

import (
	"testing"
	"time"

	"repro/internal/ring"
)

// observe runs the retargeter against a simulated solver of fixed power:
// at hashRate attempts/sec, a puzzle of the current work takes work/rate
// seconds in expectation. Returns the work trajectory.
func observe(rt *Retargeter, hashRate float64, steps int) []float64 {
	out := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		mean := time.Duration(rt.Work() / hashRate * float64(time.Second))
		out = append(out, rt.Observe(mean))
	}
	return out
}

// TestRetargeterConvergence: under a step-change in solve power the work
// factor converges to target·rate — the fixed point where puzzles take
// exactly the target duration — and tracks the change when power shifts.
func TestRetargeterConvergence(t *testing.T) {
	cfg := RetargetConfig{TargetSolve: 100 * time.Millisecond, MaxStep: 4}
	rt := NewRetargeter(1<<10, cfg)

	const rate1 = 1e6 // attempts/sec
	observe(rt, rate1, 20)
	want := cfg.TargetSolve.Seconds() * rate1 // 1e5
	if got := rt.Work(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("work after convergence = %g, want ≈ %g", got, want)
	}

	// Solver power quadruples (e.g. an attacker brings hardware): work must
	// follow to 4× within a few clamped steps.
	const rate2 = 4e6
	observe(rt, rate2, 20)
	want = cfg.TargetSolve.Seconds() * rate2
	if got := rt.Work(); got < want*0.99 || got > want*1.01 {
		t.Fatalf("work after power step = %g, want ≈ %g", got, want)
	}
}

// TestRetargeterStepClamp: one observation can move the work by at most the
// MaxStep factor in either direction, however extreme the measurement.
func TestRetargeterStepClamp(t *testing.T) {
	cfg := RetargetConfig{TargetSolve: time.Hour, MaxStep: 4, MaxWork: 1 << 50}
	rt := NewRetargeter(1<<20, cfg)
	if got := rt.Observe(time.Nanosecond); got != 1<<22 { // instant solve → raise, clamped to ×4
		t.Fatalf("up-step = %g, want %d", got, 1<<22)
	}
	rt2 := NewRetargeter(1<<20, RetargetConfig{TargetSolve: time.Nanosecond, MaxStep: 4})
	if got := rt2.Observe(time.Hour); got != 1<<18 { // glacial solve → lower, clamped to ÷4
		t.Fatalf("down-step = %g, want %d", got, 1<<18)
	}
}

// TestRetargeterWorkBounds: the absolute clamp wins over the step.
func TestRetargeterWorkBounds(t *testing.T) {
	cfg := RetargetConfig{TargetSolve: time.Second, MaxStep: 1 << 20, MinWork: 64, MaxWork: 4096}
	rt := NewRetargeter(1<<30, cfg) // initial above MaxWork → clamped at construction
	if got := rt.Work(); got != 4096 {
		t.Fatalf("initial work = %g, want 4096", got)
	}
	if got := rt.Observe(time.Nanosecond); got != 4096 { // push up: stays at ceiling
		t.Fatalf("work above ceiling = %g, want 4096", got)
	}
	for i := 0; i < 8; i++ {
		rt.Observe(100 * time.Hour) // push down hard
	}
	if got := rt.Work(); got != 64 {
		t.Fatalf("work below floor = %g, want 64", got)
	}
	// Degenerate observations leave the state untouched.
	if got := rt.Observe(0); got != 64 {
		t.Fatalf("zero observation moved work to %g", got)
	}
}

// TestRetargeterDeterminism: the trajectory is a pure function of the
// initial work and observation sequence.
func TestRetargeterDeterminism(t *testing.T) {
	cfg := RetargetConfig{TargetSolve: 50 * time.Millisecond, MaxStep: 3}
	a := NewRetargeter(1<<14, cfg)
	b := NewRetargeter(1<<14, cfg)
	obs := []time.Duration{time.Millisecond, time.Second, 20 * time.Millisecond, 80 * time.Millisecond, 50 * time.Millisecond}
	for _, o := range obs {
		wa, wb := a.Observe(o), b.Observe(o)
		if wa != wb {
			t.Fatalf("trajectories diverged: %g vs %g after %v", wa, wb, o)
		}
	}
}

// TestTauForWork pins the work→threshold mapping and its consistency with
// the epoch-sized variant.
func TestTauForWork(t *testing.T) {
	if got := TauForWork(1); got != ^ring.Point(0) {
		t.Fatalf("TauForWork(1) = %v, want max", got)
	}
	if got := TauForWork(2); got != 1<<63 {
		t.Fatalf("TauForWork(2) = %#x, want 1<<63", got)
	}
	if got := TauForWork(1 << 14); got != 1<<50 {
		t.Fatalf("TauForWork(2^14) = %#x, want 1<<50", got)
	}
	// TauForEpoch(T) targets T/2 expected attempts; TauForWork(T/2) must
	// land within rounding of it.
	te, tw := TauForEpoch(1<<15), TauForWork(1<<14)
	diff := int64(te - tw)
	if diff < 0 {
		diff = -diff
	}
	if diff > 1<<20 { // both ≈ 2^50; allow integer-division slack
		t.Fatalf("TauForEpoch(2^15)=%#x vs TauForWork(2^14)=%#x", te, tw)
	}
}
