package pow

import (
	"math/rand"
)

// PrecomputeResult compares the adversary's usable IDs per epoch with and
// without epoch-string rotation (§IV-B: the pre-computation attack).
type PrecomputeResult struct {
	Epochs int
	// UsableWithRotation[j] is the number of adversary IDs valid in epoch
	// j when IDs must be signed with the fresh epoch string: only the
	// solutions minted inside the paper's 3·(T/2)-step window survive.
	UsableWithRotation []int
	// UsableWithoutRotation[j] is the hoard size when the puzzle never
	// changes: every solution ever found stays valid.
	UsableWithoutRotation []int
}

// RunPrecompute simulates `epochs` epochs. Per epoch the adversary spends
// advPerEpoch attempts. With rotation, solutions expire when the string
// they were signed with rotates out (valid for the epoch they target
// only); without rotation they accumulate without bound — the attack the
// random strings exist to stop.
func RunPrecompute(epochs int, advPerEpoch int64, tau float64, rng *rand.Rand) PrecomputeResult {
	res := PrecomputeResult{
		Epochs:                epochs,
		UsableWithRotation:    make([]int, epochs),
		UsableWithoutRotation: make([]int, epochs),
	}
	hoard := 0
	for j := 0; j < epochs; j++ {
		minted := MintCount(advPerEpoch, tau, rng)
		// With rotation: Lemma 11's accounting lets the adversary apply at
		// most the compute of 1.5 epochs (last half of the previous plus
		// the current) toward IDs for epoch j; everything older is signed
		// by an expired string and fails verification.
		window := minted + MintCount(advPerEpoch/2, tau, rng)
		res.UsableWithRotation[j] = window
		// Without rotation: the hoard only grows.
		hoard += minted
		res.UsableWithoutRotation[j] = hoard
	}
	return res
}
