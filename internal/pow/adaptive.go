package pow

import (
	"math/rand"
)

// This file explores the paper's concluding open question — "Might there
// be a way to avoid the continual solving of puzzles? Is there an approach
// that would only utilize puzzle solving when malicious IDs are present?"
// — in the spirit of the authors' follow-up direction [22] ("Proof of Work
// Without All the Work").
//
// Model: each epoch opens its minting window at a cheap peacetime
// difficulty. The applicant stream is publicly observable (every new ID
// must announce itself to be admitted), so a minting flood *is* the attack
// signal. After a `Lag` fraction of the window, every verifier switches to
// the worst-case threshold; because Verify re-checks g(σ⊕r) ≤ τ at
// verification time, the flood's cheap solutions are retroactively
// worthless, and honest IDs re-solve at the hard threshold during the rest
// of the window (they hold the capacity — difficulty was lowered, their
// hardware was not).
//
// Consequences, which experiment E19 measures:
//   - honest work per epoch ≈ MinWork in peace, ≈ MaxWork under attack —
//     total honest spend scales with the *fraction of attacked epochs*;
//   - the adversary's admitted IDs stay ≤ β·(1−Lag)·n in loud epochs and
//     ≤ Stealth·n in quiet ones — the Lemma 11 bound is never exceeded;
//   - a grief-everything adversary merely restores the paper's constant
//     worst-case cost.
type AdaptiveConfig struct {
	// MinWork / MaxWork are the expected attempts per honest solution at
	// the peacetime and worst-case thresholds.
	MinWork, MaxWork float64
	// Lag is the fraction of the minting window that elapses before the
	// verifiers react to an anomalous applicant stream.
	Lag float64
	// Stealth caps the applicant excess the adversary can mint without
	// tripping the anomaly detector (as a fraction of n).
	Stealth float64
}

// DefaultAdaptiveConfig returns the controller used in experiment E19.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{MinWork: 1 << 6, MaxWork: 1 << 16, Lag: 0.125, Stealth: 0.01}
}

// AdaptiveEpoch records one epoch of the adaptive simulation.
type AdaptiveEpoch struct {
	Epoch       int
	Attack      bool    // the adversary minted loudly this epoch
	Work        float64 // expected honest attempts per ID this epoch
	BadFraction float64 // adversary IDs admitted / n
}

// AdaptiveResult is the full trajectory.
type AdaptiveResult struct {
	Epochs []AdaptiveEpoch
	// HonestWorkTotal vs FlatWorkTotal: adaptive spend against the paper's
	// always-worst-case baseline.
	HonestWorkTotal, FlatWorkTotal float64
	// PeakBadFraction is the worst per-epoch adversary admission.
	PeakBadFraction float64
}

// RunAdaptive simulates len(attackAt) epochs with n honest IDs and an
// adversary holding a β fraction of compute, attacking loudly exactly in
// the epochs marked true.
func RunAdaptive(cfg AdaptiveConfig, n int, beta float64, attackAt []bool, rng *rand.Rand) AdaptiveResult {
	res := AdaptiveResult{}
	for j, attack := range attackAt {
		var work, badFrac float64
		if attack {
			// Cheap solving for the Lag prefix (wasted once the bump
			// lands), worst-case solving for the remainder.
			work = cfg.MinWork*cfg.Lag + cfg.MaxWork*(1-cfg.Lag)
			// The adversary's post-bump window yields at most
			// β·(1−Lag)·n hard solutions (± sampling noise).
			attempts := int64(beta * float64(n) * (1 - cfg.Lag) * cfg.MaxWork)
			badFrac = float64(MintCount(attempts, 1/cfg.MaxWork, rng)) / float64(n)
		} else {
			work = cfg.MinWork
			// Stealth minting below the anomaly threshold.
			badFrac = cfg.Stealth * rng.Float64()
		}
		res.HonestWorkTotal += work * float64(n)
		res.FlatWorkTotal += cfg.MaxWork * float64(n)
		if badFrac > res.PeakBadFraction {
			res.PeakBadFraction = badFrac
		}
		res.Epochs = append(res.Epochs, AdaptiveEpoch{
			Epoch: j + 1, Attack: attack, Work: work, BadFraction: badFrac,
		})
	}
	return res
}
