package pow

import (
	"math/rand"
	"time"

	"repro/internal/ring"
)

// RetargetConfig tunes a Retargeter. The zero value is completed by
// defaults: 4× max step, work clamped to [2, 2^40].
type RetargetConfig struct {
	// TargetSolve is the solve time the controller steers toward.
	TargetSolve time.Duration
	// MaxStep bounds the per-observation work multiplier to
	// [1/MaxStep, MaxStep], so one noisy epoch cannot swing the difficulty
	// arbitrarily (the same clamp discipline as Bitcoin's retarget).
	// Must be > 1; 0 means 4.
	MaxStep float64
	// MinWork / MaxWork clamp the absolute difficulty, in expected attempts
	// per solution. 0 means 2 and 2^40 respectively.
	MinWork, MaxWork float64
}

func (c RetargetConfig) withDefaults() RetargetConfig {
	if c.MaxStep <= 1 {
		c.MaxStep = 4
	}
	if c.MinWork < 2 {
		c.MinWork = 2
	}
	if c.MaxWork <= c.MinWork {
		c.MaxWork = 1 << 40
	}
	return c
}

// Retargeter adjusts puzzle difficulty from observed solve times: each
// epoch's mean solve duration is compared against the target, and the
// expected-attempts work factor is scaled by the (clamped) ratio, so spam
// cost tracks the compute actually being thrown at the mint path. The
// trajectory is a pure function of the initial work and the observation
// sequence — no randomness, no wall-clock reads — so deterministic tests
// and replays hold. Not goroutine-safe; callers serialize observations
// (the daemon drives it from the epoch ticker under the write lock).
type Retargeter struct {
	cfg  RetargetConfig
	work float64
}

// NewRetargeter returns a controller starting at initialWork expected
// attempts per solution, clamped into the configured bounds.
func NewRetargeter(initialWork float64, cfg RetargetConfig) *Retargeter {
	cfg = cfg.withDefaults()
	rt := &Retargeter{cfg: cfg, work: clampWork(initialWork, cfg)}
	return rt
}

func clampWork(w float64, cfg RetargetConfig) float64 {
	if w < cfg.MinWork {
		return cfg.MinWork
	}
	if w > cfg.MaxWork {
		return cfg.MaxWork
	}
	return w
}

// Observe feeds one epoch's mean solve duration and returns the updated
// work factor. Solves faster than target raise the work (puzzles were too
// cheap for the available compute); slower solves lower it. Non-positive
// observations are ignored.
func (rt *Retargeter) Observe(meanSolve time.Duration) float64 {
	if meanSolve <= 0 || rt.cfg.TargetSolve <= 0 {
		return rt.work
	}
	ratio := float64(rt.cfg.TargetSolve) / float64(meanSolve)
	if ratio > rt.cfg.MaxStep {
		ratio = rt.cfg.MaxStep
	} else if ratio < 1/rt.cfg.MaxStep {
		ratio = 1 / rt.cfg.MaxStep
	}
	rt.work = clampWork(rt.work*ratio, rt.cfg)
	return rt.work
}

// Work returns the current difficulty in expected attempts per solution.
func (rt *Retargeter) Work() float64 { return rt.work }

// Tau returns the puzzle threshold realizing the current work factor.
func (rt *Retargeter) Tau() ring.Point { return TauForWork(rt.work) }

// This file explores the paper's concluding open question — "Might there
// be a way to avoid the continual solving of puzzles? Is there an approach
// that would only utilize puzzle solving when malicious IDs are present?"
// — in the spirit of the authors' follow-up direction [22] ("Proof of Work
// Without All the Work").
//
// Model: each epoch opens its minting window at a cheap peacetime
// difficulty. The applicant stream is publicly observable (every new ID
// must announce itself to be admitted), so a minting flood *is* the attack
// signal. After a `Lag` fraction of the window, every verifier switches to
// the worst-case threshold; because Verify re-checks g(σ⊕r) ≤ τ at
// verification time, the flood's cheap solutions are retroactively
// worthless, and honest IDs re-solve at the hard threshold during the rest
// of the window (they hold the capacity — difficulty was lowered, their
// hardware was not).
//
// Consequences, which experiment E19 measures:
//   - honest work per epoch ≈ MinWork in peace, ≈ MaxWork under attack —
//     total honest spend scales with the *fraction of attacked epochs*;
//   - the adversary's admitted IDs stay ≤ β·(1−Lag)·n in loud epochs and
//     ≤ Stealth·n in quiet ones — the Lemma 11 bound is never exceeded;
//   - a grief-everything adversary merely restores the paper's constant
//     worst-case cost.
type AdaptiveConfig struct {
	// MinWork / MaxWork are the expected attempts per honest solution at
	// the peacetime and worst-case thresholds.
	MinWork, MaxWork float64
	// Lag is the fraction of the minting window that elapses before the
	// verifiers react to an anomalous applicant stream.
	Lag float64
	// Stealth caps the applicant excess the adversary can mint without
	// tripping the anomaly detector (as a fraction of n).
	Stealth float64
}

// DefaultAdaptiveConfig returns the controller used in experiment E19.
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{MinWork: 1 << 6, MaxWork: 1 << 16, Lag: 0.125, Stealth: 0.01}
}

// AdaptiveEpoch records one epoch of the adaptive simulation.
type AdaptiveEpoch struct {
	Epoch       int
	Attack      bool    // the adversary minted loudly this epoch
	Work        float64 // expected honest attempts per ID this epoch
	BadFraction float64 // adversary IDs admitted / n
}

// AdaptiveResult is the full trajectory.
type AdaptiveResult struct {
	Epochs []AdaptiveEpoch
	// HonestWorkTotal vs FlatWorkTotal: adaptive spend against the paper's
	// always-worst-case baseline.
	HonestWorkTotal, FlatWorkTotal float64
	// PeakBadFraction is the worst per-epoch adversary admission.
	PeakBadFraction float64
}

// RunAdaptive simulates len(attackAt) epochs with n honest IDs and an
// adversary holding a β fraction of compute, attacking loudly exactly in
// the epochs marked true.
func RunAdaptive(cfg AdaptiveConfig, n int, beta float64, attackAt []bool, rng *rand.Rand) AdaptiveResult {
	res := AdaptiveResult{}
	for j, attack := range attackAt {
		var work, badFrac float64
		if attack {
			// Cheap solving for the Lag prefix (wasted once the bump
			// lands), worst-case solving for the remainder.
			work = cfg.MinWork*cfg.Lag + cfg.MaxWork*(1-cfg.Lag)
			// The adversary's post-bump window yields at most
			// β·(1−Lag)·n hard solutions (± sampling noise).
			attempts := int64(beta * float64(n) * (1 - cfg.Lag) * cfg.MaxWork)
			badFrac = float64(MintCount(attempts, 1/cfg.MaxWork, rng)) / float64(n)
		} else {
			work = cfg.MinWork
			// Stealth minting below the anomaly threshold.
			badFrac = cfg.Stealth * rng.Float64()
		}
		res.HonestWorkTotal += work * float64(n)
		res.FlatWorkTotal += cfg.MaxWork * float64(n)
		if badFrac > res.PeakBadFraction {
			res.PeakBadFraction = badFrac
		}
		res.Epochs = append(res.Epochs, AdaptiveEpoch{
			Epoch: j + 1, Attack: attack, Work: work, BadFraction: badFrac,
		})
	}
	return res
}
