package pow

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/overlay"
	"repro/internal/ring"
	"repro/internal/sim"
)

// LotteryString identifies one generated random string by its origin and
// sequence number, with the lottery output h(s ⊕ r_{i-1}) it hashes to.
// Outputs cannot be forged (any receiver recomputes the hash), so the
// simulation ships (identity, output) pairs instead of raw bits.
type LotteryString struct {
	Output float64 // h(s ⊕ r_{i-1}) ∈ (0,1); smaller is better
	Origin int     // node that generated it (N = the adversary)
	Seq    int
}

// LotteryConfig parameterizes one execution of the Appendix VIII protocol.
type LotteryConfig struct {
	// Steps is the number of Phase-1 hash attempts per good node (the
	// paper's T/2 − 2d'·ln n window at one attempt per step).
	Steps int64
	// AdvAttempts is the adversary's total attempts; the paper allows it to
	// compute over the whole epoch, i.e. up to β·n·T.
	AdvAttempts int64
	// C0 caps each bin counter at C0·ln n forwards (the paper's c₀).
	C0 float64
	// D0 sizes the solution set at D0·ln n strings (the paper's d₀).
	D0 float64
	// PropRounds is the number of rounds per propagation phase (the
	// paper's d'·ln n); it must cover the component's diameter.
	PropRounds int
	// Attack selects the adversary behavior: "none", or "split" — release
	// its best strings in the final Phase-2 round to only half the nodes,
	// the paper's critical disagreement scenario.
	Attack string
	// SilentFraction marks a u.a.r. fraction of positions as bad groups
	// that neither generate nor forward strings (the paper's Appendix VIII
	// addresses "the giant component of (1−1/polylog n)·n good IDs that
	// can reach each other"). Lemma 12's properties are then evaluated
	// over the giant component of the non-silent subgraph.
	SilentFraction float64
	// GroupSize scales sim messages into real messages (each group-graph
	// edge exchange is |G|² messages).
	GroupSize int
	Seed      int64
}

// DefaultLotteryConfig returns sensible defaults for n nodes and epoch
// length T (steps per node ≈ T/2).
func DefaultLotteryConfig(n int, T int64) LotteryConfig {
	ln := math.Log(float64(n) + 2)
	return LotteryConfig{
		Steps:       T / 2,
		AdvAttempts: int64(0.1 * float64(n) * float64(T)),
		C0:          3,
		D0:          2,
		PropRounds:  int(math.Ceil(2*ln)) + 4,
		Attack:      "none",
		GroupSize:   6,
		Seed:        1,
	}
}

// LotteryResult aggregates the Lemma 12 measurements.
type LotteryResult struct {
	N int
	// WinnersCovered is property (i): every good node's selected winner
	// si* appears in every good node's solution set.
	WinnersCovered bool
	// MissingPairs counts (w, u) pairs violating property (i).
	MissingPairs int
	// MaxSetSize / MeanSetSize are property (ii): |R| = O(ln n).
	MaxSetSize  int
	MeanSetSize float64
	// MaxStored bounds total per-node record storage across bins.
	MaxStored int
	// SimMessages is the number of group-to-group messages; RealMessages
	// multiplies by |G|² (property (iii): Õ(n·ln T)).
	SimMessages  int64
	RealMessages int64
	Rounds       int
	// DistinctWinners counts distinct si* values across good nodes
	// (diagnostic: the adversary's split attack raises this above 1).
	DistinctWinners int
	// ComponentSize is the number of good nodes in the giant component the
	// properties were evaluated over (= N when SilentFraction is 0).
	ComponentSize int
}

// binIndex returns j such that x ∈ B_j = [2^-j, 2^-(j-1)), clamped to
// [1, numBins].
func binIndex(x float64, numBins int) int {
	if x <= 0 {
		return numBins
	}
	j := int(math.Ceil(-math.Log2(x)))
	if j < 1 {
		j = 1
	}
	if j > numBins {
		j = numBins
	}
	return j
}

// lotteryNode is one good ID (standing for its group) running the
// bins-and-counters propagation protocol.
type lotteryNode struct {
	id        int
	neighbors []sim.NodeID
	numBins   int
	cap       int

	own LotteryString

	seen     map[LotteryString]bool
	binBest  []float64         // smallest output seen per bin
	counters []int             // forwards per bin
	records  [][]LotteryString // accepted record strings per bin

	best     LotteryString // smallest-output string seen so far
	haveBest bool
	p2End    int           // round index of the last Phase-2 round
	star     LotteryString // si*: selected at the end of Phase 2
	haveStar bool
	forwardQ []LotteryString
}

func (n *lotteryNode) accept(s LotteryString) (forward bool) {
	if n.seen[s] {
		return false
	}
	n.seen[s] = true
	if !n.haveBest || s.Output < n.best.Output {
		n.best, n.haveBest = s, true
	}
	j := binIndex(s.Output, n.numBins)
	// Record-breaking within its bin, and bin counter not exhausted.
	if (len(n.records[j-1]) == 0 || s.Output < n.binBest[j-1]) && n.counters[j-1] < n.cap {
		n.binBest[j-1] = s.Output
		n.counters[j-1]++
		n.records[j-1] = append(n.records[j-1], s)
		return true
	}
	return false
}

// Step implements sim.Node.
func (n *lotteryNode) Step(round int, inbox []sim.Message) []sim.Message {
	var out []sim.Message
	if round == 0 {
		// Phase 2 start: announce own Phase-1 minimum.
		n.accept(n.own)
		out = append(out, sim.Broadcast(n.own, n.neighbors)...)
	}
	for _, m := range inbox {
		s, ok := m.Payload.(LotteryString)
		if !ok {
			continue
		}
		if n.accept(s) {
			n.forwardQ = append(n.forwardQ, s)
		}
	}
	for _, s := range n.forwardQ {
		out = append(out, sim.Broadcast(s, n.neighbors)...)
	}
	n.forwardQ = n.forwardQ[:0]
	if round == n.p2End && !n.haveStar {
		n.star, n.haveStar = n.best, true
	}
	return out
}

// solutionSet applies the paper's end-of-Phase-3 rule: start from the
// deepest non-empty bin and collect record strings for decreasing j until
// d₀·ln n elements are gathered.
func (n *lotteryNode) solutionSet(target int) []LotteryString {
	var set []LotteryString
	for j := n.numBins; j >= 1 && len(set) < target; j-- {
		set = append(set, n.records[j-1]...)
	}
	return set
}

// advNode is the adversary: it injects its pre-computed strings at the
// scheduled round to the scheduled victims. It stands for all bad groups at
// once (they perfectly collude).
type advNode struct {
	strings []LotteryString
	release int
	victims []sim.NodeID
}

func (a *advNode) Step(round int, inbox []sim.Message) []sim.Message {
	if round != a.release || len(a.strings) == 0 {
		return nil
	}
	var out []sim.Message
	for _, s := range a.strings {
		out = append(out, sim.Broadcast(s, a.victims)...)
	}
	return out
}

// BuildAdjacency converts an overlay graph into the symmetric index-based
// adjacency the lottery runs on (links are bidirectional connections).
func BuildAdjacency(ov overlay.Graph) [][]sim.NodeID {
	r := ov.Ring()
	idx := make(map[ring.Point]int, r.Len())
	for i, p := range r.Points() {
		idx[p] = i
	}
	adj := make([][]sim.NodeID, r.Len())
	add := func(u, v int) {
		for _, x := range adj[u] {
			if x == sim.NodeID(v) {
				return
			}
		}
		adj[u] = append(adj[u], sim.NodeID(v))
	}
	for i, p := range r.Points() {
		for _, nb := range ov.Neighbors(p) {
			j := idx[nb]
			if j != i {
				add(i, j)
				add(j, i)
			}
		}
	}
	return adj
}

// RunLottery executes the string-generation-and-propagation protocol over
// the given good-component adjacency (adj[i] lists the neighbors of good
// node i) and returns the Lemma 12 measurements.
func RunLottery(cfg LotteryConfig, adj [][]sim.NodeID) LotteryResult {
	n := len(adj)
	rng := rand.New(rand.NewSource(cfg.Seed))
	ln := math.Log(float64(n) + 2)
	capPerBin := int(math.Ceil(cfg.C0 * ln))
	setTarget := int(math.Ceil(cfg.D0 * ln))
	numBins := int(math.Ceil(math.Log2(float64(n)*float64(cfg.Steps)+2))) + 6

	// Silent positions model bad groups that refuse to participate; the
	// protocol's guarantees are then scoped to the giant component of the
	// remaining nodes.
	silent := make([]bool, n)
	if cfg.SilentFraction > 0 {
		for i := range silent {
			silent[i] = rng.Float64() < cfg.SilentFraction
		}
	}

	nodes := make([]sim.Node, n, n+1)
	lns := make([]*lotteryNode, n)
	for i := 0; i < n; i++ {
		if silent[i] {
			nodes[i] = silentNode{}
			continue
		}
		l := &lotteryNode{
			id:        i,
			neighbors: adj[i],
			numBins:   numBins,
			cap:       capPerBin,
			seen:      make(map[LotteryString]bool),
			binBest:   make([]float64, numBins),
			counters:  make([]int, numBins),
			records:   make([][]LotteryString, numBins),
			p2End:     cfg.PropRounds - 1,
			// Phase-1 minimum of `Steps` u.a.r. outputs: inverse-CDF
			// sampling of the minimum of Steps uniforms.
			own: LotteryString{
				Output: 1 - math.Pow(1-rng.Float64(), 1/float64(cfg.Steps)),
				Origin: i,
			},
		}
		lns[i] = l
		nodes[i] = l
	}

	// Adversary strings: the k smallest order statistics of AdvAttempts
	// uniforms, sampled sequentially via exponential spacings.
	var advStrings []LotteryString
	if cfg.Attack != "none" && cfg.AdvAttempts > 0 {
		k := capPerBin // more would be absorbed by the counters anyway
		cum := 0.0
		for i := 0; i < k; i++ {
			cum += rng.ExpFloat64() / float64(cfg.AdvAttempts)
			if cum >= 1 {
				break
			}
			advStrings = append(advStrings, LotteryString{Output: cum, Origin: n, Seq: i})
		}
	}
	victims := make([]sim.NodeID, 0, n/2)
	for i := 0; i < n/2; i++ {
		victims = append(victims, sim.NodeID(i))
	}
	nodes = append(nodes, &advNode{
		strings: advStrings,
		release: cfg.PropRounds - 2, // arrives in the final Phase-2 round
		victims: victims,
	})

	nw := sim.New(nodes)
	totalRounds := 2 * cfg.PropRounds
	st := nw.Run(totalRounds)

	res := LotteryResult{N: n, Rounds: st.Rounds, SimMessages: st.Delivered}
	res.RealMessages = st.Delivered * int64(cfg.GroupSize) * int64(cfg.GroupSize)

	// Scope the Lemma 12 properties to the giant component of non-silent
	// nodes (identical to all nodes when SilentFraction is 0).
	comp := giantComponent(adj, silent)
	res.ComponentSize = len(comp)

	// Property (ii): solution-set and storage sizes.
	sets := make(map[int]map[LotteryString]bool, len(comp))
	sumSet := 0
	for _, i := range comp {
		l := lns[i]
		set := l.solutionSet(setTarget)
		m := make(map[LotteryString]bool, len(set))
		for _, s := range set {
			m[s] = true
		}
		sets[i] = m
		if len(set) > res.MaxSetSize {
			res.MaxSetSize = len(set)
		}
		sumSet += len(set)
		stored := 0
		for _, b := range l.records {
			stored += len(b)
		}
		if stored > res.MaxStored {
			res.MaxStored = stored
		}
	}
	if len(comp) > 0 {
		res.MeanSetSize = float64(sumSet) / float64(len(comp))
	}

	// Property (i): every component node's winner is in every component
	// node's solution set.
	res.WinnersCovered = true
	winners := map[LotteryString]bool{}
	for _, i := range comp {
		winners[lns[i].star] = true
	}
	res.DistinctWinners = len(winners)
	winnerList := make([]LotteryString, 0, len(winners))
	for s := range winners {
		winnerList = append(winnerList, s)
	}
	sort.Slice(winnerList, func(i, j int) bool { return winnerList[i].Output < winnerList[j].Output })
	for _, s := range winnerList {
		for _, i := range comp {
			if !sets[i][s] {
				res.WinnersCovered = false
				res.MissingPairs++
			}
		}
	}
	return res
}

// silentNode is a non-participating (bad) group: it never generates,
// accepts or forwards anything.
type silentNode struct{}

// Step implements sim.Node.
func (silentNode) Step(int, []sim.Message) []sim.Message { return nil }

// giantComponent returns the largest connected component of the subgraph
// induced by non-silent nodes, as a sorted index list.
func giantComponent(adj [][]sim.NodeID, silent []bool) []int {
	n := len(adj)
	seen := make([]bool, n)
	var best []int
	for s := 0; s < n; s++ {
		if seen[s] || silent[s] {
			continue
		}
		var comp []int
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, v := range adj[u] {
				if !seen[v] && !silent[v] {
					seen[v] = true
					queue = append(queue, int(v))
				}
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	sort.Ints(best)
	return best
}
