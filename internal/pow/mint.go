package pow

import (
	"math"
	"math/rand"

	"repro/internal/ring"
)

// MintCount samples the number of puzzle solutions found by an actor with
// `attempts` total hash attempts at per-attempt success probability tau.
// This is exactly the Binomial(attempts, tau) distribution that the
// Lemma 11 Chernoff bound is taken over; sampling it (instead of hashing
// `attempts` times) is the DESIGN.md substitution for large sweeps.
func MintCount(attempts int64, tau float64, rng *rand.Rand) int {
	if attempts <= 0 || tau <= 0 {
		return 0
	}
	if tau >= 1 {
		return int(attempts)
	}
	mean := float64(attempts) * tau
	variance := mean * (1 - tau)
	switch {
	case variance > 100:
		// Normal approximation with continuity correction.
		k := int(math.Round(rng.NormFloat64()*math.Sqrt(variance) + mean))
		if k < 0 {
			k = 0
		}
		if int64(k) > attempts {
			k = int(attempts)
		}
		return k
	case float64(attempts) > 1000 && tau < 0.05:
		return poisson(mean, rng)
	default:
		k := 0
		for i := int64(0); i < attempts; i++ {
			if rng.Float64() < tau {
				k++
			}
		}
		return k
	}
}

// poisson samples Poisson(λ) (Knuth's method for small λ, normal
// approximation above 500).
func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		k := int(math.Round(rng.NormFloat64()*math.Sqrt(lambda) + lambda))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MintIDs returns `count` u.a.r. IDs — by the two-hash-composition argument
// (Lemma 11), every puzzle solution yields an ID uniform in [0,1),
// regardless of who solved it.
func MintIDs(count int, rng *rand.Rand) []ring.Point {
	ids := make([]ring.Point, count)
	for i := range ids {
		ids[i] = ring.Point(rng.Uint64())
	}
	return ids
}

// EpochMint models one epoch of minting (§IV-A): every good participant
// computes for (1±ε)T/2 steps at unit power and keeps its first solution;
// the adversary spends βn power for `advSteps` steps and keeps everything.
type EpochMint struct {
	GoodIDs []ring.Point // one fresh ID per good participant that solved in time
	BadIDs  []ring.Point // all adversary solutions
	// GoodMissed counts good participants whose puzzle took longer than the
	// window (they sit out one epoch; the paper's (1±ε) slack).
	GoodMissed int
}

// RunEpochMint samples an epoch. nGood is the number of good participants,
// advPower the adversary's total hash attempts over its window, tau the
// per-attempt success probability, goodSteps the length of the honest
// solving window.
func RunEpochMint(nGood int, goodSteps int64, advPower int64, tau float64, rng *rand.Rand) EpochMint {
	var m EpochMint
	for i := 0; i < nGood; i++ {
		if MintCount(goodSteps, tau, rng) > 0 {
			m.GoodIDs = append(m.GoodIDs, ring.Point(rng.Uint64()))
		} else {
			m.GoodMissed++
		}
	}
	m.BadIDs = MintIDs(MintCount(advPower, tau, rng), rng)
	return m
}
