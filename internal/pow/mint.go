package pow

import (
	"math"
	"math/rand"

	"repro/internal/ring"
)

// MintCount samples the number of puzzle solutions found by an actor with
// `attempts` total hash attempts at per-attempt success probability tau.
// This is exactly the Binomial(attempts, tau) distribution that the
// Lemma 11 Chernoff bound is taken over; sampling it (instead of hashing
// `attempts` times) is the DESIGN.md substitution for large sweeps.
func MintCount(attempts int64, tau float64, rng *rand.Rand) int {
	if attempts <= 0 || tau <= 0 {
		return 0
	}
	if tau >= 1 {
		return int(attempts)
	}
	mean := float64(attempts) * tau
	variance := mean * (1 - tau)
	switch {
	case variance > 100:
		// Normal approximation with continuity correction.
		k := int(math.Round(rng.NormFloat64()*math.Sqrt(variance) + mean))
		if k < 0 {
			k = 0
		}
		if int64(k) > attempts {
			k = int(attempts)
		}
		return k
	case float64(attempts) > 1000 && tau < 0.05:
		return poisson(mean, rng)
	default:
		return binomial(attempts, tau, rng)
	}
}

// binomial samples Binomial(n, p) exactly in O(1 + n·p) expected time —
// inverse transform below mean 10, the BTRS transformed-rejection sampler
// of Hörmann (1993) above — replacing the former O(n) Bernoulli loop,
// which made small-attempts sweeps (E6/E11 grids) linear in hash attempts.
func binomial(n int64, p float64, rng *rand.Rand) int {
	if p > 0.5 {
		// Complement: keeps the working mean ≤ n/2 so both samplers stay in
		// their efficient regime.
		return int(n) - binomial(n, 1-p, rng)
	}
	nf := float64(n)
	if nf*p < 10 {
		// Inverse transform via the recursive pdf ratio
		// f(k+1)/f(k) = (n−k)/(k+1) · p/(1−p).
		s := p / (1 - p)
		a := (nf + 1) * s
		r := math.Exp(nf * math.Log1p(-p)) // (1-p)^n; mean < 10 keeps it ≥ e^-20
		u := rng.Float64()
		k := 0
		for u > r && int64(k) < n {
			u -= r
			k++
			r *= a/float64(k) - s
		}
		return k
	}
	return btrs(n, p, rng)
}

// btrs is Hörmann's BTRS rejection sampler for Binomial(n, p) with
// p ≤ 1/2 and n·p ≥ 10: a triangle-rectangle majorizing hat over the
// transformed binomial, with a squeeze that accepts ~86% of proposals
// without evaluating the density. Expected draws are O(1) regardless of n.
func btrs(n int64, p float64, rng *rand.Rand) int {
	nf := float64(n)
	spq := math.Sqrt(nf * p * (1 - p))
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b
	r := p / (1 - p)
	alpha := (2.83 + 5.1/b) * spq
	m := math.Floor((nf + 1) * p) // the mode
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		if us >= 0.07 && v <= vr {
			return int(kf) // squeeze acceptance
		}
		// Full acceptance test against the log-density ratio f(k)/f(m),
		// with Stirling-series tail corrections for the factorials.
		lhs := math.Log(v * alpha / (a/(us*us) + b))
		rhs := (m+0.5)*math.Log((m+1)/(r*(nf-m+1))) +
			(nf+1)*math.Log((nf-m+1)/(nf-kf+1)) +
			(kf+0.5)*math.Log(r*(nf-kf+1)/(kf+1)) +
			stirlingTail(m) + stirlingTail(nf-m) - stirlingTail(kf) - stirlingTail(nf-kf)
		if lhs <= rhs {
			return int(kf)
		}
	}
}

// stirlingTail returns the Stirling-series remainder
// ln(k!) − (k+½)ln(k+1) + (k+1) − ½ln(2π), tabulated for small k.
func stirlingTail(k float64) float64 {
	if k < 10 {
		return [10]float64{
			0.0810614667953272, 0.0413406959554092, 0.0276779256849983,
			0.02079067210376509, 0.0166446911898211, 0.0138761288230707,
			0.0118967099458917, 0.0104112652619720, 0.00925546218271273,
			0.00833056343336287,
		}[int(k)]
	}
	kp1 := k + 1
	kp1sq := kp1 * kp1
	return (1.0/12 - (1.0/360-1.0/1260/kp1sq)/kp1sq) / kp1
}

// poisson samples Poisson(λ) (Knuth's method for small λ, normal
// approximation above 500).
func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 500 {
		k := int(math.Round(rng.NormFloat64()*math.Sqrt(lambda) + lambda))
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// MintIDs returns `count` u.a.r. IDs — by the two-hash-composition argument
// (Lemma 11), every puzzle solution yields an ID uniform in [0,1),
// regardless of who solved it.
func MintIDs(count int, rng *rand.Rand) []ring.Point {
	ids := make([]ring.Point, count)
	for i := range ids {
		ids[i] = ring.Point(rng.Uint64())
	}
	return ids
}

// EpochMint models one epoch of minting (§IV-A): every good participant
// computes for (1±ε)T/2 steps at unit power and keeps its first solution;
// the adversary spends βn power for `advSteps` steps and keeps everything.
type EpochMint struct {
	GoodIDs []ring.Point // one fresh ID per good participant that solved in time
	BadIDs  []ring.Point // all adversary solutions
	// GoodMissed counts good participants whose puzzle took longer than the
	// window (they sit out one epoch; the paper's (1±ε) slack).
	GoodMissed int
}

// RunEpochMint samples an epoch. nGood is the number of good participants,
// advPower the adversary's total hash attempts over its window, tau the
// per-attempt success probability, goodSteps the length of the honest
// solving window.
func RunEpochMint(nGood int, goodSteps int64, advPower int64, tau float64, rng *rand.Rand) EpochMint {
	var m EpochMint
	for i := 0; i < nGood; i++ {
		if MintCount(goodSteps, tau, rng) > 0 {
			m.GoodIDs = append(m.GoodIDs, ring.Point(rng.Uint64()))
		} else {
			m.GoodMissed++
		}
	}
	m.BadIDs = MintIDs(MintCount(advPower, tau, rng), rng)
	return m
}
