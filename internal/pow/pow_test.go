package pow

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/ring"
)

func TestSolveFindsValidSolution(t *testing.T) {
	p := Params{Tau: ring.Point(^uint64(0) >> 8), StringLen: 16} // ~1/256 per attempt
	rng := rand.New(rand.NewSource(1))
	r := EpochString(7, 0, 16)
	sol, ok := Solve(r, p, rng, 100000)
	if !ok {
		t.Fatal("Solve failed at easy difficulty")
	}
	if sol.Y > p.Tau {
		t.Fatal("solution output exceeds threshold")
	}
	if !Verify(sol.ID, sol.Sigma, r, p) {
		t.Fatal("Verify rejected a genuine solution")
	}
}

func TestVerifyRejectsWrongEpochString(t *testing.T) {
	// ID expiry: a solution signed with epoch i's string must fail against
	// epoch i+1's string.
	p := Params{Tau: ring.Point(^uint64(0) >> 6), StringLen: 16}
	rng := rand.New(rand.NewSource(2))
	r0 := EpochString(7, 0, 16)
	r1 := EpochString(7, 1, 16)
	sol, ok := Solve(r0, p, rng, 100000)
	if !ok {
		t.Fatal("Solve failed")
	}
	if Verify(sol.ID, sol.Sigma, r1, p) {
		t.Fatal("Verify accepted an expired ID")
	}
}

func TestVerifyRejectsForgedID(t *testing.T) {
	p := Params{Tau: ring.Point(^uint64(0) >> 6), StringLen: 16}
	rng := rand.New(rand.NewSource(3))
	r := EpochString(7, 0, 16)
	sol, _ := Solve(r, p, rng, 100000)
	if Verify(sol.ID+1, sol.Sigma, r, p) {
		t.Fatal("Verify accepted a forged ID")
	}
}

func TestSolveAttemptDistribution(t *testing.T) {
	// Expected attempts ≈ 1/τ(fraction). With τ = 2^-6, mean ≈ 64.
	p := Params{Tau: ring.Point(^uint64(0) >> 6), StringLen: 16}
	rng := rand.New(rand.NewSource(4))
	r := EpochString(9, 0, 16)
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		sol, ok := Solve(r, p, rng, 1<<16)
		if !ok {
			t.Fatal("unexpected failure")
		}
		total += sol.Attempts
	}
	mean := float64(total) / trials
	if mean < 32 || mean > 128 {
		t.Errorf("mean attempts %.1f, want ≈64", mean)
	}
}

func TestTauForEpoch(t *testing.T) {
	tau := TauForEpoch(1 << 20)
	frac := float64(tau) / math.Pow(2, 64)
	want := 2.0 / (1 << 20)
	if math.Abs(frac-want)/want > 0.01 {
		t.Errorf("TauForEpoch fraction = %v, want %v", frac, want)
	}
}

func TestMintCountMatchesBinomialMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		attempts int64
		tau      float64
	}{
		{1000, 0.01},    // direct loop
		{100000, 1e-4},  // poisson branch
		{1 << 20, 0.01}, // normal branch
	}
	for _, c := range cases {
		const reps = 200
		sum := 0
		for i := 0; i < reps; i++ {
			sum += MintCount(c.attempts, c.tau, rng)
		}
		mean := float64(sum) / reps
		want := float64(c.attempts) * c.tau
		if math.Abs(mean-want) > 4*math.Sqrt(want) {
			t.Errorf("MintCount(%d, %v): mean %.1f, want ≈%.1f", c.attempts, c.tau, mean, want)
		}
	}
}

func TestMintCountEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if MintCount(0, 0.5, rng) != 0 {
		t.Error("0 attempts must mint 0")
	}
	if MintCount(100, 0, rng) != 0 {
		t.Error("tau=0 must mint 0")
	}
	if MintCount(100, 1, rng) != 100 {
		t.Error("tau=1 must mint every attempt")
	}
}

func TestLemma11AdversaryBoundedAndUniform(t *testing.T) {
	// Lemma 11: over (1±ε)T/2 steps the adversary mints ≤ (1+ε)βn u.a.r.
	// IDs. βn power × T/2 steps × τ=2/T ⇒ E = βn.
	rng := rand.New(rand.NewSource(7))
	const n, T = 4096, 1 << 16
	beta := 0.1
	tau := 2.0 / T
	advPower := int64(beta * float64(n) * float64(T) / 2)
	m := RunEpochMint(0, 0, advPower, tau, rng)
	want := beta * n
	if got := float64(len(m.BadIDs)); got > 1.25*want || got < 0.75*want {
		t.Errorf("adversary minted %v IDs, want ≈ βn = %v", got, want)
	}
	// Uniformity via chi-square over 16 buckets.
	counts := make([]int, 16)
	for _, id := range m.BadIDs {
		counts[id>>60]++
	}
	stat, uniform := metrics.ChiSquareUniform(counts)
	if !uniform {
		t.Errorf("adversary IDs not uniform: chi-square = %.1f", stat)
	}
}

func TestGoodMintersMostlySucceed(t *testing.T) {
	// An honest ID computes T/2 steps at τ = 2/T ⇒ success prob 1−e^{-1}
	// per epoch... wait, E[solutions] = 1, so ≈63% find one. The paper's τ
	// is set so (1±ε)T/2 steps are *required*; our window matches the mean.
	rng := rand.New(rand.NewSource(8))
	const T = 1 << 14
	m := RunEpochMint(2000, T/2, 0, 2.0/T, rng)
	rate := float64(len(m.GoodIDs)) / 2000
	if rate < 0.55 || rate > 0.72 {
		t.Errorf("good success rate %.2f, want ≈1−1/e", rate)
	}
	if len(m.GoodIDs)+m.GoodMissed != 2000 {
		t.Error("accounting mismatch")
	}
}

func TestBinIndex(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{0.6, 1},    // [1/2, 1)
		{0.3, 2},    // [1/4, 1/2)
		{0.25, 2},   // boundary: ceil(-log2(0.25)) = 2
		{0.24, 3},   //
		{1e-12, 40}, //
	}
	for _, c := range cases {
		if got := binIndex(c.x, 64); got != c.want {
			t.Errorf("binIndex(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if binIndex(1e-30, 10) != 10 {
		t.Error("binIndex must clamp to numBins")
	}
	if binIndex(0, 10) != 10 {
		t.Error("binIndex(0) must clamp to deepest bin")
	}
}

func TestLotteryNoAdversaryAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := overlay.UniformRing(256, rng)
	ov := overlay.NewChord(r)
	adj := BuildAdjacency(ov)
	cfg := DefaultLotteryConfig(256, 1<<16)
	cfg.Seed = 10
	res := RunLottery(cfg, adj)
	if !res.WinnersCovered {
		t.Fatalf("property (i) violated with no adversary: %d missing pairs", res.MissingPairs)
	}
	if res.DistinctWinners != 1 {
		t.Errorf("no adversary: all nodes should pick the same winner, got %d", res.DistinctWinners)
	}
	lnN := math.Log(256)
	if float64(res.MaxSetSize) > 4*lnN {
		t.Errorf("property (ii): max set size %d exceeds 4·ln n = %.1f", res.MaxSetSize, 4*lnN)
	}
}

func TestLotterySplitAttackStillCovered(t *testing.T) {
	// The adversary releases its best strings in the final Phase-2 round to
	// half the nodes. Winners may now differ across nodes, but property (i)
	// must hold: every node's winner reaches every solution set by the end
	// of Phase 3.
	rng := rand.New(rand.NewSource(11))
	r := overlay.UniformRing(256, rng)
	ov := overlay.NewChord(r)
	adj := BuildAdjacency(ov)
	cfg := DefaultLotteryConfig(256, 1<<16)
	cfg.Attack = "split"
	cfg.Seed = 12
	res := RunLottery(cfg, adj)
	if !res.WinnersCovered {
		t.Fatalf("Lemma 12 (i) violated under split attack: %d missing pairs", res.MissingPairs)
	}
	if res.DistinctWinners < 2 {
		t.Log("note: split attack did not induce distinct winners this seed")
	}
	lnN := math.Log(256)
	if float64(res.MaxStored) > 8*lnN*math.Log2(float64(256)*float64(cfg.Steps)) {
		t.Errorf("stored strings %d not O(ln n · ln(nT))", res.MaxStored)
	}
}

func TestLotteryMessageComplexity(t *testing.T) {
	// Property (iii): message complexity Õ(n ln T) — check sim messages
	// stay within n · polylog factors.
	rng := rand.New(rand.NewSource(13))
	r := overlay.UniformRing(512, rng)
	ov := overlay.NewChord(r)
	adj := BuildAdjacency(ov)
	cfg := DefaultLotteryConfig(512, 1<<16)
	cfg.Seed = 14
	res := RunLottery(cfg, adj)
	n := 512.0
	lnN := math.Log(n)
	bound := n * lnN * lnN * lnN * 4 // n·polylog(n, T) slack
	if float64(res.SimMessages) > bound {
		t.Errorf("sim messages %d exceed Õ(n ln T) bound %.0f", res.SimMessages, bound)
	}
	if res.RealMessages != res.SimMessages*36 {
		t.Errorf("real message scaling wrong: %d vs %d·6²", res.RealMessages, res.SimMessages)
	}
}

func TestPrecomputeRotationCapsHoard(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	res := RunPrecompute(10, 1<<16, 1.0/(1<<10), rng)
	// Without rotation the hoard must grow ≈ linearly; with rotation it
	// must stay ≈ flat.
	lastFlat := res.UsableWithRotation[9]
	firstFlat := res.UsableWithRotation[0]
	if lastFlat > 3*firstFlat+10 {
		t.Errorf("rotation failed to cap hoard: %v", res.UsableWithRotation)
	}
	if res.UsableWithoutRotation[9] < 5*res.UsableWithoutRotation[0] {
		t.Errorf("hoard without rotation should grow ~10×: %v", res.UsableWithoutRotation)
	}
}

func TestLotterySilentNodesGiantComponent(t *testing.T) {
	// Appendix VIII scopes the guarantees to the giant component of good
	// IDs; with 15% of positions held by silent bad groups, coverage must
	// still hold among the component.
	rng := rand.New(rand.NewSource(21))
	r := overlay.UniformRing(512, rng)
	ov := overlay.NewChord(r)
	adj := BuildAdjacency(ov)
	cfg := DefaultLotteryConfig(512, 1<<16)
	cfg.SilentFraction = 0.15
	cfg.Attack = "split"
	cfg.Seed = 22
	res := RunLottery(cfg, adj)
	if res.ComponentSize < 350 || res.ComponentSize > 460 {
		t.Errorf("giant component %d of 512 at 15%% silent — expected ≈435", res.ComponentSize)
	}
	if !res.WinnersCovered {
		t.Errorf("Lemma 12 (i) violated over the giant component: %d missing pairs", res.MissingPairs)
	}
	if res.MaxSetSize == 0 {
		t.Error("component produced empty solution sets")
	}
}

func TestLotteryFullComponentWhenNoSilent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := overlay.UniformRing(128, rng)
	ov := overlay.NewChord(r)
	adj := BuildAdjacency(ov)
	cfg := DefaultLotteryConfig(128, 1<<14)
	cfg.Seed = 24
	res := RunLottery(cfg, adj)
	if res.ComponentSize != 128 {
		t.Errorf("component = %d, want all 128 nodes", res.ComponentSize)
	}
}

func TestAdaptivePeaceIsCheap(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	rng := rand.New(rand.NewSource(31))
	attacks := make([]bool, 20) // all peace
	res := RunAdaptive(cfg, 4096, 0.10, attacks, rng)
	if res.HonestWorkTotal > res.FlatWorkTotal/100 {
		t.Errorf("peacetime adaptive work %.0f not ≪ flat %.0f", res.HonestWorkTotal, res.FlatWorkTotal)
	}
	if res.PeakBadFraction > cfg.Stealth {
		t.Errorf("stealth admission %.4f exceeded cap %.4f", res.PeakBadFraction, cfg.Stealth)
	}
}

func TestAdaptiveAttackNeverExceedsBeta(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	rng := rand.New(rand.NewSource(32))
	attacks := make([]bool, 20)
	for i := range attacks {
		attacks[i] = i%3 == 0
	}
	const beta = 0.10
	res := RunAdaptive(cfg, 4096, beta, attacks, rng)
	if res.PeakBadFraction > beta*1.1 {
		t.Errorf("adaptive admission %.4f exceeded the Lemma 11 bound β=%.2f", res.PeakBadFraction, beta)
	}
	// Work must track the attack pattern: attacked epochs near MaxWork,
	// quiet epochs at MinWork.
	for _, e := range res.Epochs {
		if e.Attack && e.Work < cfg.MaxWork/2 {
			t.Errorf("epoch %d attacked but work only %.0f", e.Epoch, e.Work)
		}
		if !e.Attack && e.Work != cfg.MinWork {
			t.Errorf("epoch %d quiet but work %.0f", e.Epoch, e.Work)
		}
	}
}

func TestAdaptiveGriefingDegeneratesToPaper(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	rng := rand.New(rand.NewSource(33))
	attacks := make([]bool, 10)
	for i := range attacks {
		attacks[i] = true // grief every epoch
	}
	res := RunAdaptive(cfg, 1024, 0.10, attacks, rng)
	ratio := res.HonestWorkTotal / res.FlatWorkTotal
	if ratio < 0.85 || ratio > 1.0 {
		t.Errorf("permanent griefing should cost ≈ the paper's constant scheme, ratio %.3f", ratio)
	}
}
