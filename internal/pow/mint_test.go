package pow

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestBinomialDistributionSanity checks the exact binomial sampler's first
// two moments against Binomial(n, p) across its regimes: inverse transform
// (mean < 10), BTRS (mean ≥ 10), and the complement path (p > 1/2). Bounds
// are ±5 standard errors — loose enough to be deterministic for a fixed
// seed, tight enough to catch any regime mis-routing or pdf-ratio slip.
func TestBinomialDistributionSanity(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{200, 0.01},  // inverse transform, mean 2
		{40, 0.2},    // inverse transform, mean 8
		{500, 0.02},  // BTRS boundary, mean 10
		{300, 0.25},  // BTRS, mean 75
		{100, 0.9},   // complement → inverse transform, mean 90
		{400, 0.75},  // complement → BTRS, mean 300
		{1500, 0.04}, // large n, small p (mean 60, variance 57.6)
	}
	const samples = 200000
	rng := rand.New(rand.NewSource(99))
	for _, c := range cases {
		mean := float64(c.n) * c.p
		variance := mean * (1 - c.p)
		var sum, sumSq float64
		for i := 0; i < samples; i++ {
			k := binomial(c.n, c.p, rng)
			if k < 0 || int64(k) > c.n {
				t.Fatalf("n=%d p=%v: sample %d out of support", c.n, c.p, k)
			}
			kf := float64(k)
			sum += kf
			sumSq += kf * kf
		}
		gotMean := sum / samples
		gotVar := sumSq/samples - gotMean*gotMean
		seMean := math.Sqrt(variance / samples)
		if math.Abs(gotMean-mean) > 5*seMean {
			t.Errorf("n=%d p=%v: mean %.3f, want %.3f ± %.3f", c.n, c.p, gotMean, mean, 5*seMean)
		}
		// Var(sample variance) ≈ (μ₄ − σ⁴)/N; bound loosely via 4σ²·kurtosis
		// margin — a 10%% drift at these sizes is > 20 standard errors.
		if math.Abs(gotVar-variance) > 0.1*variance+5*seMean {
			t.Errorf("n=%d p=%v: variance %.3f, want %.3f", c.n, c.p, gotVar, variance)
		}
	}
}

// TestMintCountRoutesToBinomial pins the branch structure: the regimes the
// old Bernoulli loop served now hit the exact sampler, and the degenerate
// inputs keep their closed forms.
func TestMintCountRoutesToBinomial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if got := MintCount(0, 0.5, rng); got != 0 {
		t.Errorf("0 attempts minted %d", got)
	}
	if got := MintCount(17, 1.0, rng); got != 17 {
		t.Errorf("tau=1 minted %d, want 17", got)
	}
	if got := MintCount(100, 0, rng); got != 0 {
		t.Errorf("tau=0 minted %d", got)
	}
	// Small-attempts sweep cell (the E6/E11 shape): support respected.
	for i := 0; i < 1000; i++ {
		if got := MintCount(50, 0.1, rng); got < 0 || got > 50 {
			t.Fatalf("MintCount out of support: %d", got)
		}
	}
}

// TestBinomialConstantTimeInAttempts guards the satellite's point: sampling
// cost tracks the mean, not the attempt count. The old Bernoulli loop drew
// one uniform per attempt — 10⁸ draws for this case — where the inverse
// transform draws one plus a handful of pdf-ratio steps.
func TestBinomialConstantTimeInAttempts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const trials = 2000
	start := time.Now()
	for i := 0; i < trials; i++ {
		binomial(1e8, 2e-8, rng) // mean 2: inverse transform
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("binomial(1e8, 2e-8) took %v for %d trials — linear in attempts?", elapsed, trials)
	}
}
