package pow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/ring"
)

// Property: Verify is complete (accepts everything Solve produces) and
// sound against σ tampering.
func TestVerifySoundnessProperty(t *testing.T) {
	p := Params{Tau: ring.Point(^uint64(0) >> 4), StringLen: 16} // easy: 1/16
	rng := rand.New(rand.NewSource(81))
	f := func(epochSeed int64, flipByte, flipBit uint8) bool {
		r := EpochString(epochSeed, 0, 16)
		sol, ok := Solve(r, p, rng, 1<<12)
		if !ok {
			return true // no solution found — nothing to check
		}
		if !Verify(sol.ID, sol.Sigma, r, p) {
			return false // completeness
		}
		// Tamper one bit of σ: must fail (either threshold or ID match).
		tampered := make([]byte, len(sol.Sigma))
		copy(tampered, sol.Sigma)
		tampered[int(flipByte)%len(tampered)] ^= 1 << (flipBit % 8)
		return !Verify(sol.ID, tampered, r, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the ID produced by Solve is f(g(σ⊕r)) — recomputable by anyone.
func TestSolveIDDerivationProperty(t *testing.T) {
	p := Params{Tau: ring.Point(^uint64(0) >> 4), StringLen: 16}
	rng := rand.New(rand.NewSource(82))
	r := EpochString(9, 3, 16)
	for i := 0; i < 50; i++ {
		sol, ok := Solve(r, p, rng, 1<<12)
		if !ok {
			continue
		}
		y := hashes.G.Point(hashes.XOR(sol.Sigma, r))
		if y != sol.Y || hashes.F.OfPoint(y) != sol.ID {
			t.Fatal("ID not recomputable from (σ, r)")
		}
	}
}

// Property: the lottery is deterministic in its seed.
func TestLotteryDeterministicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	r := overlay.UniformRing(128, rng)
	adj := BuildAdjacency(overlay.NewChord(r))
	cfg := DefaultLotteryConfig(128, 1<<14)
	cfg.Attack = "split"
	cfg.Seed = 84
	a := RunLottery(cfg, adj)
	b := RunLottery(cfg, adj)
	if a.SimMessages != b.SimMessages || a.MaxSetSize != b.MaxSetSize ||
		a.DistinctWinners != b.DistinctWinners || a.WinnersCovered != b.WinnersCovered {
		t.Errorf("lottery not deterministic: %+v vs %+v", a, b)
	}
}

// Property: MintCount never exceeds attempts and is deterministic per rng
// stream position.
func TestMintCountBoundsProperty(t *testing.T) {
	f := func(seed int64, attemptsRaw uint16, tauRaw uint8) bool {
		attempts := int64(attemptsRaw)
		tau := float64(tauRaw) / 255
		rng := rand.New(rand.NewSource(seed))
		k := MintCount(attempts, tau, rng)
		return k >= 0 && int64(k) <= attempts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: epoch strings differ across epochs and seeds (no reuse — the
// whole point of rotation).
func TestEpochStringUniqueProperty(t *testing.T) {
	seen := map[string]bool{}
	for seed := int64(0); seed < 8; seed++ {
		for ep := 0; ep < 8; ep++ {
			s := string(EpochString(seed, ep, 32))
			if seen[s] {
				t.Fatalf("epoch string reused at seed=%d epoch=%d", seed, ep)
			}
			seen[s] = true
		}
	}
}
