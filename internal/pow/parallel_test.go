package pow

import (
	"testing"

	"repro/internal/hashes"
	"repro/internal/ring"
)

func shardParams() Params {
	return Params{Tau: ^ring.Point(0) >> 8, StringLen: 32}
}

// TestSolveShardedDeterministicAcrossWorkers is the sharding contract: the
// winning attempt index is a function of (r, seed, params) only, never of
// the worker count or schedule.
func TestSolveShardedDeterministicAcrossWorkers(t *testing.T) {
	r := EpochString(7, 0, 32)
	p := shardParams()
	base, ok := SolveSharded(r, p, 11, 1<<12, 1)
	if !ok {
		t.Fatal("no solution at tau=2^-8 in 2^12 attempts (p_miss ≈ e^-16)")
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, ok := SolveSharded(r, p, 11, 1<<12, workers)
		if !ok {
			t.Fatalf("workers=%d: no solution", workers)
		}
		if got.Attempts != base.Attempts || got.ID != base.ID || got.Y != base.Y ||
			string(got.Sigma) != string(base.Sigma) {
			t.Errorf("workers=%d: solution diverged: attempts %d vs %d, id %v vs %v",
				workers, got.Attempts, base.Attempts, got.ID, base.ID)
		}
	}
}

// TestSolveShardedFindsSmallestIndex cross-checks against a sequential scan
// of the same deterministic nonce space.
func TestSolveShardedFindsSmallestIndex(t *testing.T) {
	r := EpochString(3, 1, 32)
	p := shardParams()
	const max = 1 << 12
	want := 0
	for a := int64(1); a <= max; a++ {
		sigma := ShardSigma(5, a, p.StringLen)
		if hashes.G.Point(hashes.XOR(sigma, r)) <= p.Tau {
			want = int(a)
			break
		}
	}
	if want == 0 {
		t.Fatal("sequential scan found nothing")
	}
	sol, ok := SolveSharded(r, p, 5, max, 4)
	if !ok || sol.Attempts != want {
		t.Fatalf("sharded found index %d (ok=%v), sequential scan found %d", sol.Attempts, ok, want)
	}
}

func TestSolveShardedSolutionVerifies(t *testing.T) {
	r := EpochString(13, 2, 32)
	p := shardParams()
	sol, ok := SolveSharded(r, p, 21, 1<<12, 8)
	if !ok {
		t.Fatal("no solution")
	}
	if !Verify(sol.ID, sol.Sigma, r, p) {
		t.Error("sharded solution failed Verify")
	}
	// An expired (different-epoch) string must reject it.
	if Verify(sol.ID, sol.Sigma, EpochString(13, 3, 32), p) {
		t.Error("solution verified against the wrong epoch string")
	}
}

func TestSolveShardedExhaustsWithoutSolution(t *testing.T) {
	r := EpochString(1, 0, 32)
	// Tau = 0 admits only y == 0: effectively unsolvable.
	p := Params{Tau: 0, StringLen: 32}
	sol, ok := SolveSharded(r, p, 1, 64, 4)
	if ok {
		t.Fatal("found a solution at tau=0")
	}
	if sol.Attempts != 64 {
		t.Errorf("reported %d attempts, want maxAttempts=64", sol.Attempts)
	}
}

func TestVerifyBatchMatchesVerify(t *testing.T) {
	r := EpochString(2, 0, 32)
	p := shardParams()
	var claims []Claim
	for a := int64(1); a <= 64; a++ {
		sigma := ShardSigma(9, a, p.StringLen)
		id := hashes.F.OfPoint(hashes.G.Point(hashes.XOR(sigma, r)))
		if a%3 == 0 {
			id++ // corrupt every third claim
		}
		claims = append(claims, Claim{ID: id, Sigma: sigma})
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got := VerifyBatch(claims, r, p, workers)
		if len(got) != len(claims) {
			t.Fatalf("workers=%d: %d verdicts for %d claims", workers, len(got), len(claims))
		}
		for i, c := range claims {
			if got[i] != Verify(c.ID, c.Sigma, r, p) {
				t.Errorf("workers=%d: claim %d verdict %v disagrees with Verify", workers, i, got[i])
			}
		}
	}
	if out := VerifyBatch(nil, r, p, 4); len(out) != 0 {
		t.Errorf("empty batch returned %d verdicts", len(out))
	}
}

func TestShardSigmaProperties(t *testing.T) {
	a := ShardSigma(1, 1, 32)
	b := ShardSigma(1, 1, 32)
	if string(a) != string(b) {
		t.Error("ShardSigma not deterministic")
	}
	if string(a) == string(ShardSigma(1, 2, 32)) {
		t.Error("adjacent attempt indices produced the same sigma")
	}
	if string(a) == string(ShardSigma(2, 1, 32)) {
		t.Error("different seeds produced the same sigma")
	}
	if got := len(ShardSigma(1, 1, 48)); got != 48 {
		t.Errorf("sigma length %d, want 48 (multi-block extension)", got)
	}
}
