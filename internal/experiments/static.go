package experiments

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/overlay"
)

// staticGraph builds the standard static experiment object: u.a.r.
// placement at the given β over a Chord overlay, tiny groups per defaults.
func staticGraph(n int, beta float64, rng *rand.Rand) *groups.Graph {
	pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	params := groups.DefaultParams()
	params.Beta = beta
	return groups.Build(ov, pl.BadSet(), params, hashes.H1)
}

// E1StaticSearch regenerates the Lemma 4 / Theorem 3 static series: search
// failure rate vs n at tiny group sizes, against the 1/log² n reference
// shape. Each (n, β) cell is an independent engine trial.
func E1StaticSearch(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ns := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	searches := 4000
	if o.Quick {
		ns = []int{1 << 10, 1 << 12}
		searches = 1000
	}
	betas := []float64{0.05, 0.10}
	type cell struct {
		n    int
		beta float64
	}
	var cells []cell
	for _, n := range ns {
		for _, beta := range betas {
			cells = append(cells, cell{n, beta})
		}
	}
	rows := meanCells(o, "e1", len(cells), 3, func(ci, _ int, rng *rand.Rand) []float64 {
		c := cells[ci]
		g := staticGraph(c.n, c.beta, rng)
		rob := g.MeasureRobustness(searches, rng)
		return []float64{float64(g.GroupSize()), rob.RedFraction, rob.SearchFailRate}
	})
	em.Header("n", "beta", "|G|", "redFrac", "searchFail", "1/ln^2(n)")
	for ci, c := range cells {
		ref := 1 / math.Pow(math.Log(float64(c.n)), 2)
		em.Row(itoa(c.n), f3(c.beta), itoa(int(math.Round(rows[ci][0]))), f4(rows[ci][1]),
			f4(rows[ci][2]), f4(ref))
	}
	em.Note("Expected shape: searchFail stays O(polylog⁻¹), decreasing or flat in n while |G| grows only with ln ln n.")
	em.Note("Paper claims success prob 1−O(1/log^{k−c} n) (Lemma 4).")
	return nil
}

// E2BadGroups regenerates the S2 probability table: fraction of bad groups
// vs the group-size multiplier d over ln ln n.
func E2BadGroups(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 14
	if o.Quick {
		n = 1 << 12
	}
	betas := []float64{0.05, 0.10, 0.15}
	mults := []float64{1, 2, 3, 4, 6}
	type cell struct {
		beta, mult float64
		size       int
	}
	lnln := math.Log(math.Log(float64(n)))
	var cells []cell
	for _, beta := range betas {
		for _, d := range mults {
			size := int(math.Round(d * lnln))
			if size < 2 {
				size = 2
			}
			cells = append(cells, cell{beta, d, size})
		}
	}
	rows := meanCells(o, "e2", len(cells), 1, func(ci, _ int, rng *rand.Rand) []float64 {
		c := cells[ci]
		pl := adversary.Place(adversary.Config{N: n, Beta: c.beta, Strategy: adversary.Uniform}, rng)
		ov := overlay.NewChord(pl.Ring())
		params := groups.DefaultParams()
		params.Beta = c.beta
		g := groups.BuildSized(ov, pl.BadSet(), params, hashes.H1, c.size)
		return []float64{g.BadFraction()}
	})
	em.Header("n", "beta", "mult", "|G|", "badFrac")
	for ci, c := range cells {
		em.Row(itoa(n), f3(c.beta), f1(c.mult), itoa(c.size), f4(rows[ci][0]))
	}
	em.Note("Expected shape: badFrac drops exponentially in |G| (Chernoff), reaching 1/polylog n by d ≈ 2–3.")
	return nil
}

// E3Costs regenerates the Corollary 1 cost table: tiny groups vs the
// Θ(log n) baseline on two input-graph degree classes. Each (n, overlay)
// pair is one engine trial producing both scheme rows.
func E3Costs(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	if o.Quick {
		ns = []int{1 << 12}
	}
	const beta = 0.05
	type cell struct {
		n       int
		builder int // index into overlay.Builders()
	}
	builders := overlay.Builders()
	var cells []cell
	for _, n := range ns {
		for bi, b := range builders {
			if b.Name == "viceroy" {
				continue // corollary needs one log-degree + one const-degree class
			}
			cells = append(cells, cell{n, bi})
		}
	}
	rows := engine.Map(o.cfg(), "e3", len(cells), func(ci int, rng *rand.Rand) [][]string {
		c := cells[ci]
		b := builders[c.builder]
		pl := adversary.Place(adversary.Config{N: c.n, Beta: beta, Strategy: adversary.Uniform}, rng)
		bad := pl.BadSet()
		params := groups.DefaultParams()
		params.Beta = beta
		ov := b.Build(pl.Ring(), rng.Int63())
		var out [][]string
		for _, scheme := range []string{"tiny", "log"} {
			var g *groups.Graph
			if scheme == "tiny" {
				g = groups.Build(ov, bad, params, hashes.H1)
			} else {
				g = baseline.BuildLogGroups(ov, bad, params, 2)
			}
			rob := g.MeasureRobustness(600, rng)
			costs := g.MeasureCosts(256, rng)
			out = append(out, []string{itoa(c.n), b.Name, scheme, itoa(g.GroupSize()),
				i64toa(costs.GroupCommMsgs), f1(rob.MeanMessages), f1(costs.MeanStatePerID)})
		}
		return out
	})
	em.Header("n", "overlay", "scheme", "|G|", "groupComm", "msgs/search", "state/ID")
	for _, trialRows := range rows {
		for _, r := range trialRows {
			em.Row(r...)
		}
	}
	em.Note("Expected shape: tiny wins every cost column by ≈(ln n / ln ln n)² ≈ 10–20×, growing with n.")
	em.Note("groupComm = |G|²; msgs/search = D·|G|² (secure routing); state = memberships + neighbor links.")
	return nil
}

// E8Knee regenerates the §I-D "can we do better?" series: search success
// vs group-size multiplier, exhibiting the knee at |G| ≈ ln ln n.
func E8Knee(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 14
	searches := 3000
	if o.Quick {
		n = 1 << 12
		searches = 800
	}
	const beta = 0.10
	mults := []float64{0.5, 0.75, 1, 1.5, 2, 3, 4}
	lnln := math.Log(math.Log(float64(n)))
	sizes := make([]int, len(mults))
	for i, d := range mults {
		size := int(math.Round(d * lnln))
		if size < 1 {
			size = 1
		}
		sizes[i] = size
	}
	rows := meanCells(o, "e8", len(mults), 2, func(ci, _ int, rng *rand.Rand) []float64 {
		pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
		ov := overlay.NewChord(pl.Ring())
		params := groups.DefaultParams()
		params.Beta = beta
		g := groups.BuildSized(ov, pl.BadSet(), params, hashes.H1, sizes[ci])
		rob := g.MeasureRobustness(searches, rng)
		return []float64{g.BadFraction(), rob.SearchFailRate}
	})
	em.Header("n", "mult", "|G|", "badFrac", "searchFail")
	for ci, d := range mults {
		em.Row(itoa(n), f3(d), itoa(sizes[ci]), f4(rows[ci][0]), f4(rows[ci][1]))
	}
	em.Note("Expected shape: below ≈1·ln ln n, searchFail explodes toward 1 (union bound fails);")
	em.Note("at 2–3·ln ln n it is already 1/polylog — the paper's 'pushing the limits' point.")
	return nil
}

// E9InputGraphs regenerates the P1–P4 verification table for all three
// constructions, including the Lemma 5 adversarial-subset variant. Each
// (n, mode) pair is one engine trial measuring all three overlays (rows
// are emitted in trial order once the fan-out completes).
func E9InputGraphs(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ns := []int{1 << 10, 1 << 12}
	samples := 2000
	if o.Quick {
		ns = []int{1 << 10}
		samples = 600
	}
	type cell struct {
		n    int
		mode string
	}
	var cells []cell
	for _, n := range ns {
		for _, mode := range []string{"uniform", "lemma5"} {
			cells = append(cells, cell{n, mode})
		}
	}
	em.Header("n", "overlay", "ids", "hops/log2n", "maxLoad", "cong*n", "meanDeg")
	engine.MapReduce(o.cfg(), "e9", len(cells), em,
		func(ci int, rng *rand.Rand) [][]string {
			c := cells[ci]
			r := overlay.UniformRing(c.n, rng)
			if c.mode == "lemma5" {
				pl := adversary.Place(adversary.Config{
					N: c.n, Beta: 0.25, Strategy: adversary.Clustered, Span: 0.5,
				}, rng)
				r = pl.Ring()
			}
			var out [][]string
			for _, b := range overlay.Builders() {
				g := b.Build(r, rng.Int63())
				p := overlay.Measure(g, samples, rng)
				logn := math.Log2(float64(r.Len()))
				out = append(out, []string{itoa(c.n), b.Name, c.mode, f3(p.MeanHops / logn),
					f3(p.MaxLoad), f1(p.CongestionXN), f1(p.MeanDegree)})
			}
			return out
		},
		func(em Emitter, _ int, trialRows [][]string) Emitter {
			for _, r := range trialRows {
				em.Row(r...)
			}
			return em
		})
	em.Note("Expected shape: hops/log2n ≈ O(1); maxLoad = O(ln n); cong·n = O(log^c n);")
	em.Note("chord degree Θ(log n), debruijn/viceroy O(1); all preserved under the Lemma 5 adversarial subset.")
	return nil
}
