package experiments

import (
	"math"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/metrics"
	"repro/internal/overlay"
)

// staticGraph builds the standard static experiment object: u.a.r.
// placement at the given β over a Chord overlay, tiny groups per defaults.
func staticGraph(n int, beta float64, rng *rand.Rand) *groups.Graph {
	pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	params := groups.DefaultParams()
	params.Beta = beta
	return groups.Build(ov, pl.BadSet(), params, hashes.H1)
}

// E1StaticSearch regenerates the Lemma 4 / Theorem 3 static series: search
// failure rate vs n at tiny group sizes, against the 1/log² n reference
// shape.
func E1StaticSearch(o Options) Result {
	ns := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16}
	searches := 4000
	if o.Quick {
		ns = []int{1 << 10, 1 << 12}
		searches = 1000
	}
	betas := []float64{0.05, 0.10}
	tab := &metrics.Table{Header: []string{"n", "beta", "|G|", "redFrac", "searchFail", "1/ln^2(n)"}}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, n := range ns {
		for _, beta := range betas {
			g := staticGraph(n, beta, rng)
			rob := g.MeasureRobustness(searches, rng)
			ref := 1 / math.Pow(math.Log(float64(n)), 2)
			tab.Append(itoa(n), f3(beta), itoa(g.GroupSize()), f4(rob.RedFraction),
				f4(rob.SearchFailRate), f4(ref))
		}
	}
	return Result{
		ID: "e1", Title: "Static search success (Lemma 4 / Thm 3)", Table: tab,
		Notes: []string{
			"Expected shape: searchFail stays O(polylog⁻¹), decreasing or flat in n while |G| grows only with ln ln n.",
			"Paper claims success prob 1−O(1/log^{k−c} n) (Lemma 4).",
		},
	}
}

// E2BadGroups regenerates the S2 probability table: fraction of bad groups
// vs the group-size multiplier d over ln ln n.
func E2BadGroups(o Options) Result {
	n := 1 << 14
	if o.Quick {
		n = 1 << 12
	}
	betas := []float64{0.05, 0.10, 0.15}
	mults := []float64{1, 2, 3, 4, 6}
	tab := &metrics.Table{Header: []string{"n", "beta", "mult", "|G|", "badFrac"}}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, beta := range betas {
		pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
		ov := overlay.NewChord(pl.Ring())
		params := groups.DefaultParams()
		params.Beta = beta
		lnln := math.Log(math.Log(float64(n)))
		for _, d := range mults {
			size := int(math.Round(d * lnln))
			if size < 2 {
				size = 2
			}
			g := groups.BuildSized(ov, pl.BadSet(), params, hashes.H1, size)
			tab.Append(itoa(n), f3(beta), f1(d), itoa(size), f4(g.BadFraction()))
		}
	}
	return Result{
		ID: "e2", Title: "Bad-group probability vs group size", Table: tab,
		Notes: []string{
			"Expected shape: badFrac drops exponentially in |G| (Chernoff), reaching 1/polylog n by d ≈ 2–3.",
		},
	}
}

// E3Costs regenerates the Corollary 1 cost table: tiny groups vs the
// Θ(log n) baseline on two input-graph degree classes.
func E3Costs(o Options) Result {
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	if o.Quick {
		ns = []int{1 << 12}
	}
	const beta = 0.05
	tab := &metrics.Table{Header: []string{"n", "overlay", "scheme", "|G|", "groupComm", "msgs/search", "state/ID"}}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, n := range ns {
		pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
		bad := pl.BadSet()
		params := groups.DefaultParams()
		params.Beta = beta
		for _, b := range overlay.Builders() {
			if b.Name == "viceroy" {
				continue // corollary needs one log-degree + one const-degree class
			}
			ov := b.Build(pl.Ring(), o.Seed)
			for _, scheme := range []string{"tiny", "log"} {
				var g *groups.Graph
				if scheme == "tiny" {
					g = groups.Build(ov, bad, params, hashes.H1)
				} else {
					g = baseline.BuildLogGroups(ov, bad, params, 2)
				}
				rob := g.MeasureRobustness(600, rng)
				costs := g.MeasureCosts(256, rng)
				tab.Append(itoa(n), b.Name, scheme, itoa(g.GroupSize()),
					i64toa(costs.GroupCommMsgs), f1(rob.MeanMessages), f1(costs.MeanStatePerID))
			}
		}
	}
	return Result{
		ID: "e3", Title: "Cost table (Corollary 1)", Table: tab,
		Notes: []string{
			"Expected shape: tiny wins every cost column by ≈(ln n / ln ln n)² ≈ 10–20×, growing with n.",
			"groupComm = |G|²; msgs/search = D·|G|² (secure routing); state = memberships + neighbor links.",
		},
	}
}

// E8Knee regenerates the §I-D "can we do better?" series: search success
// vs group-size multiplier, exhibiting the knee at |G| ≈ ln ln n.
func E8Knee(o Options) Result {
	n := 1 << 14
	searches := 3000
	if o.Quick {
		n = 1 << 12
		searches = 800
	}
	const beta = 0.10
	mults := []float64{0.5, 0.75, 1, 1.5, 2, 3, 4}
	tab := &metrics.Table{Header: []string{"n", "mult", "|G|", "badFrac", "searchFail"}}
	rng := rand.New(rand.NewSource(o.Seed))
	pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	params := groups.DefaultParams()
	params.Beta = beta
	lnln := math.Log(math.Log(float64(n)))
	for _, d := range mults {
		size := int(math.Round(d * lnln))
		if size < 1 {
			size = 1
		}
		g := groups.BuildSized(ov, pl.BadSet(), params, hashes.H1, size)
		rob := g.MeasureRobustness(searches, rng)
		tab.Append(itoa(n), f3(d), itoa(size), f4(g.BadFraction()), f4(rob.SearchFailRate))
	}
	return Result{
		ID: "e8", Title: "Group-size knee (§I-D)", Table: tab,
		Notes: []string{
			"Expected shape: below ≈1·ln ln n, searchFail explodes toward 1 (union bound fails);",
			"at 2–3·ln ln n it is already 1/polylog — the paper's 'pushing the limits' point.",
		},
	}
}

// E9InputGraphs regenerates the P1–P4 verification table for all three
// constructions, including the Lemma 5 adversarial-subset variant.
func E9InputGraphs(o Options) Result {
	ns := []int{1 << 10, 1 << 12}
	samples := 2000
	if o.Quick {
		ns = []int{1 << 10}
		samples = 600
	}
	tab := &metrics.Table{Header: []string{"n", "overlay", "ids", "hops/log2n", "maxLoad", "cong*n", "meanDeg"}}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, n := range ns {
		for _, mode := range []string{"uniform", "lemma5"} {
			var r = overlay.UniformRing(n, rng)
			if mode == "lemma5" {
				pl := adversary.Place(adversary.Config{
					N: n, Beta: 0.25, Strategy: adversary.Clustered, Span: 0.5,
				}, rng)
				r = pl.Ring()
			}
			for _, b := range overlay.Builders() {
				g := b.Build(r, o.Seed)
				p := overlay.Measure(g, samples, rng)
				logn := math.Log2(float64(r.Len()))
				tab.Append(itoa(n), b.Name, mode, f3(p.MeanHops/logn), f3(p.MaxLoad),
					f1(p.CongestionXN), f1(p.MeanDegree))
			}
		}
	}
	return Result{
		ID: "e9", Title: "Input-graph properties P1–P4 (+ Lemma 5)", Table: tab,
		Notes: []string{
			"Expected shape: hops/log2n ≈ O(1); maxLoad = O(ln n); cong·n = O(log^c n);",
			"chord degree Θ(log n), debruijn/viceroy O(1); all preserved under the Lemma 5 adversarial subset.",
		},
	}
}
