package experiments

import (
	"context"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/epoch"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/pow"
	"repro/internal/ring"
	"repro/internal/secroute"
)

// E14SecureRouting regenerates the §I secure-routing mechanism check: the
// protocol-level all-to-all + majority-filter transmission agrees with the
// graph-level blue-path criterion, and good groups with bad minorities
// deliver intact. Each (n, β) cell is an engine trial.
func E14SecureRouting(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ns := []int{512, 2048}
	trials := 1500
	if o.Quick {
		ns = []int{512}
		trials = 400
	}
	type cell struct {
		n    int
		beta float64
	}
	var cells []cell
	for _, n := range ns {
		for _, beta := range []float64{0.05, 0.15} {
			cells = append(cells, cell{n, beta})
		}
	}
	rows := engine.Map(o.cfg(), "e14", len(cells), func(ci int, rng *rand.Rand) []string {
		c := cells[ci]
		pl := adversary.Place(adversary.Config{N: c.n, Beta: c.beta, Strategy: adversary.Uniform}, rng)
		ov := overlay.NewChord(pl.Ring())
		params := groups.DefaultParams()
		params.Beta = c.beta
		g := groups.Build(ov, pl.BadSet(), params, hashes.H1)
		r := ov.Ring()
		delivered, agree, mixedIntact, mixedTotal := 0, 0, 0, 0
		var msgs int64
		for i := 0; i < trials; i++ {
			src := r.At(rng.Intn(r.Len()))
			key := ring.Point(rng.Uint64())
			proto := secroute.Route(g, src, key)
			score := g.Search(src, key)
			if proto.Delivered {
				delivered++
			}
			if proto.Delivered == score.OK {
				agree++
			}
			msgs += proto.Messages
			if proto.Delivered {
				// On delivered routes, every traversed mixed good group
				// must have filtered its bad minority out.
				for _, h := range proto.Hops {
					grp := g.Group(h.Leader)
					if grp.BadCount() > 0 && !grp.Bad {
						mixedTotal++
						if h.Intact {
							mixedIntact++
						}
					}
				}
			}
		}
		mi := 1.0
		if mixedTotal > 0 {
			mi = float64(mixedIntact) / float64(mixedTotal)
		}
		return []string{itoa(c.n), f3(c.beta), f4(float64(delivered) / float64(trials)),
			f4(float64(agree) / float64(trials)), f4(mi), f1(float64(msgs) / float64(trials))}
	})
	em.Header("n", "beta", "delivered", "scoreAgree", "mixedHopsIntact", "msgs/route")
	for _, r := range rows {
		em.Row(r...)
	}
	em.Note("Expected shape: scoreAgree = 1.0000 (protocol ≡ blue-path criterion); mixedHopsIntact = 1.0000")
	em.Note("on delivered routes (bad minorities filtered out); msgs/route ≈ D·|G|².")
	return nil
}

// E15Departures regenerates the §III churn-bound series: group survival
// under mid-epoch departures, against the ε'/2 guarantee. Each departure
// fraction is an engine trial.
func E15Departures(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 10
	if o.Quick {
		n = 512
	}
	fracs := []float64{0.10, 0.25, 0.40, 0.60, 0.80}
	rows := engine.Map(o.cfg(), "e15", len(fracs), func(fi int, rng *rand.Rand) []string {
		frac := fracs[fi]
		cfg := epoch.DefaultConfig(n)
		cfg.MidEpochDepartures = frac
		cfg.Seed = rng.Int63()
		s, err := epoch.New(cfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		st := s.RunEpoch()
		return []string{f3(frac), f3(cfg.Params.GoodDepartureBound()), itoa(st.DepartedMembers),
			itoa(st.MajoritiesLost), f4(st.RedFraction[0]), f4(st.SearchFailRate)}
	})
	em.Header("departFrac", "bound(ε'/2)", "departed", "majLost", "redFrac", "searchFail")
	for _, r := range rows {
		em.Row(r...)
	}
	em.Note("Expected shape: at departure rates well under the ε'/2 bound no group loses its majority; near")
	em.Note("the bound a few unlucky tiny groups locally exceed ε'/2 of their good members and flip; far above")
	em.Note("it the system collapses. The per-group guarantee itself is property-tested in internal/groups.")
	return nil
}

// E16Bootstrap regenerates the Appendix IX check: pooling
// O(log n / log log n) u.a.r. tiny groups yields a good-majority
// bootstrapping set w.h.p., while trusting a single tiny group fails with
// the bad-group probability. Each β is an engine trial (its pool-size
// sweep shares one constructed system).
func E16Bootstrap(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 12
	trials := 600
	if o.Quick {
		n = 1 << 10
		trials = 200
	}
	betas := []float64{0.10, 0.20}
	rows := engine.Map(o.cfg(), "e16", len(betas), func(bi int, rng *rand.Rand) [][]string {
		beta := betas[bi]
		cfg := epoch.DefaultConfig(n)
		cfg.Params.Beta = beta
		cfg.Seed = rng.Int63()
		s, err := epoch.New(cfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		g := s.Graphs()[0]
		var out [][]string
		for _, count := range []int{1, epoch.BootGroupCount(n), 2 * epoch.BootGroupCount(n)} {
			ok := 0
			pool := 0
			for i := 0; i < trials; i++ {
				set := epoch.AssembleBoot(g, count, rng)
				pool = len(set.Members)
				if set.GoodMajority {
					ok++
				}
			}
			out = append(out, []string{itoa(n), f3(beta), itoa(count), itoa(pool), f4(float64(ok) / float64(trials))})
		}
		return out
	})
	em.Header("n", "beta", "groups", "poolSize", "goodMajorityRate")
	for _, trialRows := range rows {
		for _, r := range trialRows {
			em.Row(r...)
		}
	}
	em.Note("Expected shape: a single tiny group gives a good majority only ~1−O(badness) of the time at")
	em.Note("high beta; pooling O(log n / log log n) groups pushes the rate to ≈1 (Chernoff over O(log n) IDs).")
	return nil
}

// E17OverlayAblation regenerates the design-choice ablation DESIGN.md
// calls out: route length vs degree across de Bruijn bases and Chord —
// the |G|²-per-hop cost makes D the multiplier tiny groups pay. All five
// constructions share one ring; each build+measure is an engine trial
// (rows are emitted in trial order once the fan-out completes).
func E17OverlayAblation(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 13
	samples := 1500
	if o.Quick {
		n = 1 << 11
		samples = 500
	}
	// One shared ring for every construction (Ring is concurrent-read safe).
	r := overlay.UniformRing(n, rand.New(rand.NewSource(engine.TrialSeed(o.Seed, "e17/ring", 0))))
	type entry struct {
		name string
		mk   func(rng *rand.Rand) overlay.Graph
	}
	entries := []entry{
		{"chord", func(*rand.Rand) overlay.Graph { return overlay.NewChord(r) }},
		{"debruijn-2", func(*rand.Rand) overlay.Graph { return overlay.NewDeBruijn(r, 2) }},
		{"debruijn-4", func(*rand.Rand) overlay.Graph { return overlay.NewDeBruijn(r, 4) }},
		{"debruijn-8", func(*rand.Rand) overlay.Graph { return overlay.NewDeBruijn(r, 8) }},
		{"viceroy", func(rng *rand.Rand) overlay.Graph { return overlay.NewViceroy(r, rng.Int63()) }},
	}
	em.Header("overlay", "meanHops", "meanDeg", "hops*deg", "cong*n")
	engine.MapReduce(o.cfg(), "e17", len(entries), em,
		func(ei int, rng *rand.Rand) []string {
			e := entries[ei]
			p := overlay.Measure(e.mk(rng), samples, rng)
			return []string{e.name, f1(p.MeanHops), f1(p.MeanDegree), f1(p.MeanHops * p.MeanDegree), f1(p.CongestionXN)}
		},
		func(em Emitter, _ int, row []string) Emitter {
			em.Row(row...)
			return em
		})
	em.Note("Expected shape: higher de Bruijn bases trade degree for shorter routes (hops ~ log_d n);")
	em.Note("chord buys short routes with Θ(log n) degree. Secure-routing cost scales with hops·|G|²,")
	em.Note("state with degree — the paper's Corollary 1 applies to any of these H.")
	return nil
}

// E18Quarantine regenerates the footnote-2 extension: groups expelling
// misbehaving members, and the hardening it buys against later departures.
// Each misbehavior probability is an engine trial.
func E18Quarantine(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 10
	if o.Quick {
		n = 512
	}
	const beta = 0.12
	pMiss := []float64{0.0, 0.25, 1.0}
	rows := engine.Map(o.cfg(), "e18", len(pMiss), func(pi int, rng *rand.Rand) []string {
		pMis := pMiss[pi]
		pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
		ov := overlay.NewChord(pl.Ring())
		params := groups.DefaultParams()
		params.Beta = beta
		g := groups.Build(ov, pl.BadSet(), params, hashes.H1)
		q := groups.NewQuarantine(g, 2)
		const sweeps = 4
		for i := 0; i < sweeps; i++ {
			q.Sweep(pMis, rng)
		}
		resident := g.ResidentBadInBlue()
		departed := map[ring.Point]bool{}
		for _, id := range pl.Good {
			if rng.Float64() < 0.30 {
				departed[id] = true
			}
		}
		rep := g.RemoveMembers(departed)
		return []string{f3(pMis), itoa(sweeps), itoa(q.Expelled), itoa(resident), itoa(rep.LostMajority)}
	})
	em.Header("pMisbehave", "sweeps", "expelled", "residentBad", "majLost@30%dep")
	for _, r := range rows {
		em.Row(r...)
	}
	em.Note("Expected shape: active misbehavers (pMis=1) are fully expelled from blue groups, which then")
	em.Note("survive heavy departures better; perfectly stealthy members (pMis=0) persist but do no routing")
	em.Note("damage. Red groups are never redeemed (their bad majority controls the expulsion vote).")
	return nil
}

// E19AdaptivePoW regenerates the conclusion's open question, modeled after
// [22]: puzzle work that tracks attack intensity. Each attack pattern is
// an engine trial.
func E19AdaptivePoW(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 12
	epochs := 24
	if o.Quick {
		n = 1 << 10
		epochs = 12
	}
	const beta = 0.10
	cfg := pow.DefaultAdaptiveConfig()
	patterns := []struct {
		name string
		mk   func(i int) bool
	}{
		{"never", func(int) bool { return false }},
		{"1-in-6", func(i int) bool { return i%6 == 0 }},
		{"1-in-2", func(i int) bool { return i%2 == 0 }},
		{"always", func(int) bool { return true }},
	}
	rows := engine.Map(o.cfg(), "e19", len(patterns), func(pi int, rng *rand.Rand) []string {
		p := patterns[pi]
		attacks := make([]bool, epochs)
		for i := range attacks {
			attacks[i] = p.mk(i)
		}
		res := pow.RunAdaptive(cfg, n, beta, attacks, rng)
		return []string{p.name, f4(res.HonestWorkTotal / res.FlatWorkTotal), f4(res.PeakBadFraction), f3(beta)}
	})
	em.Header("attackPattern", "honest/flatWork", "peakBadFrac", "betaBound")
	for _, r := range rows {
		em.Row(r...)
	}
	em.Note("Expected shape: honest spend scales with the attacked-epoch fraction (≈0 in peace, ≈1 under")
	em.Note("permanent griefing — the paper's constant scheme is the worst case), while admitted bad IDs")
	em.Note("never exceed the Lemma 11 β bound.")
	return nil
}

// E20SizeDrift regenerates the §III Θ(n)-size remark: robustness under a
// population oscillating by a constant factor each epoch. Each drift level
// is an engine trial (its epochs are causally chained inside).
func E20SizeDrift(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 10
	epochs := 6
	if o.Quick {
		n = 512
		epochs = 4
	}
	drifts := []float64{0, 0.25, 0.5}
	rows := engine.Map(o.cfg(), "e20", len(drifts), func(di int, rng *rand.Rand) [][]string {
		drift := drifts[di]
		cfg := epoch.DefaultConfig(n)
		cfg.SizeDrift = drift
		cfg.Seed = rng.Int63()
		s, err := epoch.New(cfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		var out [][]string
		for e := 0; e < epochs; e++ {
			st := s.RunEpoch()
			out = append(out, []string{f3(drift), itoa(st.Epoch), itoa(st.N), f4(st.RedFraction[0]), f4(st.SearchFailRate)})
		}
		return out
	})
	em.Header("drift", "epoch", "n", "redFrac", "searchFail")
	for _, trialRows := range rows {
		for _, r := range trialRows {
			em.Row(r...)
		}
	}
	em.Note("Expected shape: oscillating the population by up to ±50% per epoch leaves the red fraction and")
	em.Note("search failure flat — the construction only depends on n through ln ln n and the ε'/2 margin.")
	return nil
}
