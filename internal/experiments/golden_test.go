package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment tables")

// TestGoldenTables pins the seed-1 quick-mode tables of e1–e9 and e21
// byte-for-byte against checked-in goldens. This is the guard rail under
// the hot-path and API work: hashing, ring lookups, group construction,
// the sim runtime and the streaming-emission layer may change as much as
// they like, but they may not change a single output byte. e4 and e5 pin
// the *dynamic* (epoch-chained) tables, which have shifted silently under
// past refactors; e6 and e7 pin the identity layer (PoW minting and the
// string lottery) the adversarial workloads press on; e8 pins the
// group-size knee and e9 the input-graph properties the construction
// rests on; e21 pins the attack-suite outcome counts end to end through
// the serving state machine; e10–e14 pin the comparative baselines
// (cuckoo rule, pre-computation attack, spam state caps, in-group BA,
// secure routing) that the durable-snapshot work must not perturb.
// Regenerate deliberately with
// `go test ./internal/experiments -run Golden -update`
// and review the diff like any other result change.
func TestGoldenTables(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e21"} {
		t.Run(id, func(t *testing.T) {
			e, ok := Lookup(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			got := e.Run(Options{Quick: true, Seed: 1}).Table.String()
			path := filepath.Join("testdata", id+"_seed1_quick.golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden: %v (run with -update to create)", err)
			}
			if got != string(want) {
				t.Errorf("%s table deviates from golden %s.\n--- golden\n%s\n--- got\n%s\nIf the change is intentional, regenerate with -update and explain it in the PR.",
					id, path, want, got)
			}
		})
	}
}
