package experiments

import (
	"context"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/epoch"
)

// E4Dynamic regenerates the Theorem 3 dynamic series: per-epoch red
// fractions and search failure under full population turnover. Epochs are
// causally chained (each construction runs through the previous epoch's
// graphs), so the chain runs inline — one logical trial whose rows stream
// out as each epoch completes, with a cancellation poll between epochs.
// The trial seed derivation matches the engine.Map scheme exactly, so the
// table is byte-identical to the former batch form.
func E4Dynamic(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 10
	epochs := 8
	if o.Quick {
		n = 512
		epochs = 4
	}
	rng := rand.New(rand.NewSource(engine.TrialSeed(o.Seed, "e4", 0)))
	cfg := epoch.DefaultConfig(n)
	cfg.Params.Beta = 0.05
	cfg.Seed = rng.Int63()
	s, err := epoch.New(cfg)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	em.Header("epoch", "qfSingle", "qfDual", "redFrac1", "redFrac2", "searchFail")
	for e := 0; e < epochs; e++ {
		st, err := s.RunEpochContext(ctx)
		if err != nil {
			return err
		}
		em.Row(itoa(st.Epoch), f4(st.QfSingle), f4(st.QfDual),
			f4(st.RedFraction[0]), f4(st.RedFraction[1]), f4(st.SearchFailRate))
	}
	em.Note("Expected shape: qfDual ≈ qfSingle², and redFrac/searchFail stay flat across epochs (no drift).")
	return nil
}

// E5Ablation regenerates the §III two-graph-necessity comparison: the same
// run with one group graph accumulates error; with two it does not. The
// arms run sequentially so each arm's rows stream out epoch by epoch;
// their randomness is arm-indexed by construction (not draw order), so the
// table matches the former parallel-arm batch form byte for byte.
func E5Ablation(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 10
	epochs := 8
	if o.Quick {
		n = 512
		epochs = 5
	}
	// Both arms share one seed so the comparison is paired: the only
	// difference between the row series is TwoGraphs.
	sharedSeed := engine.TrialSeed(o.Seed, "e5/shared", 0)
	em.Header("graphs", "epoch", "qfEff", "redFrac", "searchFail")
	for _, twoGraphs := range []bool{true, false} {
		cfg := epoch.DefaultConfig(n)
		cfg.Params.Beta = 0.05
		cfg.TwoGraphs = twoGraphs
		cfg.Seed = sharedSeed
		s, err := epoch.New(cfg)
		if err != nil {
			panic(err)
		}
		label := "2"
		if !twoGraphs {
			label = "1"
		}
		for e := 0; e < epochs; e++ {
			st, err := s.RunEpochContext(ctx)
			if err != nil {
				s.Close()
				return err
			}
			qfEff := st.QfDual // the corruption probability per construction step
			em.Row(label, itoa(st.Epoch), f4(qfEff), f4(st.RedFraction[0]), f4(st.SearchFailRate))
		}
		s.Close()
	}
	em.Note("Expected shape: with 1 graph the per-step corruption qfEff equals qf and compounds — redFrac and")
	em.Note("searchFail drift upward epoch over epoch; with 2 graphs qfEff ≈ qf² and the series stays flat.")
	return nil
}

// E10Cuckoo regenerates the related-work anchor: the cuckoo rule's group
// size requirement ([47]: |G| ≈ 64 at n = 8192) vs this paper's tiny
// groups. Every cuckoo (|G|, β) cell and the tiny-groups arm are
// independent engine trials.
func E10Cuckoo(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 1 << 13
	events := 100000
	if o.Quick {
		n = 1 << 10
		events = 10000
	}
	type cell struct {
		g    int
		beta float64
	}
	var cells []cell
	for _, g := range []int{8, 16, 32, 64} {
		for _, beta := range []float64{0.002, 0.02} {
			cells = append(cells, cell{g, beta})
		}
	}
	// One batch holds every cuckoo cell plus the tiny-groups arm (the last
	// trial), so the expensive epoch simulation overlaps the cuckoo cells
	// instead of waiting for them behind a barrier.
	rows := engine.Map(o.cfg(), "e10", len(cells)+1, func(ci int, rng *rand.Rand) []string {
		if ci < len(cells) {
			c := cells[ci]
			res := baseline.RunCuckoo(baseline.CuckooConfig{
				N: n, Beta: c.beta, K: 4, GroupSize: c.g,
				Events: events, Targeted: true, Seed: rng.Int63(),
			})
			return []string{"cuckoo", itoa(n), itoa(c.g), f3(c.beta), itoa(res.SurvivedEvents),
				boolStr(res.Survived), f3(res.MaxBadFraction)}
		}
		// Our construction at the same scale: per-epoch full turnover is n
		// join/leave events; run 3 epochs (= 3n events) and report failure.
		ecfg := epoch.DefaultConfig(min(n, 2048)) // epoch sim cost cap
		ecfg.Params.Beta = 0.05
		ecfg.Seed = rng.Int63()
		s, err := epoch.New(ecfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		var worst float64
		epochs := 3
		for e := 0; e < epochs; e++ {
			st := s.RunEpoch()
			if st.RedFraction[0] > worst {
				worst = st.RedFraction[0]
			}
		}
		return []string{"tinygroups+pow", itoa(ecfg.N), itoa(s.Graphs()[0].GroupSize()), f3(0.05),
			itoa(epochs * ecfg.N), "true", f3(worst)}
	})
	em.Header("scheme", "n", "|G|", "beta", "events", "survived", "maxBadFrac")
	for _, r := range rows {
		em.Row(r...)
	}
	em.Note("Expected shape: cuckoo needs |G| ≈ 64 to survive at tiny β and dies quickly with small groups at")
	em.Note("moderate β; the PoW construction sustains |G| = Θ(log log n) at β = 0.05 (red fraction stays tiny).")
	return nil
}

// E12State regenerates the Lemma 10 state-bound table: spam accepted and
// membership state with verification on vs off — two independent trials.
func E12State(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n := 512
	if o.Quick {
		n = 256
	}
	arms := []bool{true, false}
	rows := engine.Map(o.cfg(), "e12", len(arms), func(ai int, rng *rand.Rand) []string {
		verify := arms[ai]
		cfg := epoch.DefaultConfig(n)
		cfg.Params.Beta = 0.10
		cfg.VerifyRequests = verify
		cfg.SpamFactor = 5
		cfg.Seed = rng.Int63()
		s, err := epoch.New(cfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		st := s.RunEpoch()
		nBad := int(cfg.Params.Beta * float64(n))
		return []string{boolStr(verify), itoa(cfg.SpamFactor), itoa(nBad * cfg.SpamFactor),
			itoa(st.SpamAccepted), f1(st.MeanMemberships), itoa(st.ErroneousRejects)}
	})
	em.Header("verify", "spam/bad", "spamSent", "spamAccepted", "memberships", "errRejects")
	for _, r := range rows {
		em.Row(r...)
	}
	em.Note("Expected shape: with verification, spamAccepted ≈ qf²·spamSent ≈ 0 and memberships stay")
	em.Note("O(log log n); without it every bogus request lands.")
	return nil
}
