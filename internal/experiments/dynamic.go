package experiments

import (
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/epoch"
	"repro/internal/metrics"
)

// E4Dynamic regenerates the Theorem 3 dynamic series: per-epoch red
// fractions and search failure under full population turnover. Epochs are
// causally chained (each construction runs through the previous epoch's
// graphs), so the whole chain is one engine trial.
func E4Dynamic(o Options) Result {
	n := 1 << 10
	epochs := 8
	if o.Quick {
		n = 512
		epochs = 4
	}
	rows := engine.Map(o.cfg(), "e4", 1, func(_ int, rng *rand.Rand) [][]string {
		cfg := epoch.DefaultConfig(n)
		cfg.Params.Beta = 0.05
		cfg.Seed = rng.Int63()
		s, err := epoch.New(cfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		var out [][]string
		for e := 0; e < epochs; e++ {
			st := s.RunEpoch()
			out = append(out, []string{itoa(st.Epoch), f4(st.QfSingle), f4(st.QfDual),
				f4(st.RedFraction[0]), f4(st.RedFraction[1]), f4(st.SearchFailRate)})
		}
		return out
	})
	tab := &metrics.Table{Header: []string{"epoch", "qfSingle", "qfDual", "redFrac1", "redFrac2", "searchFail"}}
	for _, r := range rows[0] {
		tab.Append(r...)
	}
	return Result{
		ID: "e4", Title: "Dynamic ε-robustness across epochs (Theorem 3)", Table: tab,
		Notes: []string{
			"Expected shape: qfDual ≈ qfSingle², and redFrac/searchFail stay flat across epochs (no drift).",
		},
	}
}

// E5Ablation regenerates the §III two-graph-necessity comparison: the same
// run with one group graph accumulates error; with two it does not. The
// two arms are independent engine trials.
func E5Ablation(o Options) Result {
	n := 1 << 10
	epochs := 8
	if o.Quick {
		n = 512
		epochs = 5
	}
	arms := []bool{true, false}
	// Both arms share one seed so the comparison is paired: the only
	// difference between the row series is TwoGraphs.
	sharedSeed := engine.TrialSeed(o.Seed, "e5/shared", 0)
	rows := engine.Map(o.cfg(), "e5", len(arms), func(ai int, _ *rand.Rand) [][]string {
		twoGraphs := arms[ai]
		cfg := epoch.DefaultConfig(n)
		cfg.Params.Beta = 0.05
		cfg.TwoGraphs = twoGraphs
		cfg.Seed = sharedSeed
		s, err := epoch.New(cfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		label := "2"
		if !twoGraphs {
			label = "1"
		}
		var out [][]string
		for e := 0; e < epochs; e++ {
			st := s.RunEpoch()
			qfEff := st.QfDual // the corruption probability per construction step
			out = append(out, []string{label, itoa(st.Epoch), f4(qfEff), f4(st.RedFraction[0]), f4(st.SearchFailRate)})
		}
		return out
	})
	tab := &metrics.Table{Header: []string{"graphs", "epoch", "qfEff", "redFrac", "searchFail"}}
	for _, arm := range rows {
		for _, r := range arm {
			tab.Append(r...)
		}
	}
	return Result{
		ID: "e5", Title: "Two-graph vs single-graph ablation", Table: tab,
		Notes: []string{
			"Expected shape: with 1 graph the per-step corruption qfEff equals qf and compounds — redFrac and",
			"searchFail drift upward epoch over epoch; with 2 graphs qfEff ≈ qf² and the series stays flat.",
		},
	}
}

// E10Cuckoo regenerates the related-work anchor: the cuckoo rule's group
// size requirement ([47]: |G| ≈ 64 at n = 8192) vs this paper's tiny
// groups. Every cuckoo (|G|, β) cell and the tiny-groups arm are
// independent engine trials.
func E10Cuckoo(o Options) Result {
	n := 1 << 13
	events := 100000
	if o.Quick {
		n = 1 << 10
		events = 10000
	}
	type cell struct {
		g    int
		beta float64
	}
	var cells []cell
	for _, g := range []int{8, 16, 32, 64} {
		for _, beta := range []float64{0.002, 0.02} {
			cells = append(cells, cell{g, beta})
		}
	}
	// One batch holds every cuckoo cell plus the tiny-groups arm (the last
	// trial), so the expensive epoch simulation overlaps the cuckoo cells
	// instead of waiting for them behind a barrier.
	rows := engine.Map(o.cfg(), "e10", len(cells)+1, func(ci int, rng *rand.Rand) []string {
		if ci < len(cells) {
			c := cells[ci]
			res := baseline.RunCuckoo(baseline.CuckooConfig{
				N: n, Beta: c.beta, K: 4, GroupSize: c.g,
				Events: events, Targeted: true, Seed: rng.Int63(),
			})
			return []string{"cuckoo", itoa(n), itoa(c.g), f3(c.beta), itoa(res.SurvivedEvents),
				boolStr(res.Survived), f3(res.MaxBadFraction)}
		}
		// Our construction at the same scale: per-epoch full turnover is n
		// join/leave events; run 3 epochs (= 3n events) and report failure.
		ecfg := epoch.DefaultConfig(min(n, 2048)) // epoch sim cost cap
		ecfg.Params.Beta = 0.05
		ecfg.Seed = rng.Int63()
		s, err := epoch.New(ecfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		var worst float64
		epochs := 3
		for e := 0; e < epochs; e++ {
			st := s.RunEpoch()
			if st.RedFraction[0] > worst {
				worst = st.RedFraction[0]
			}
		}
		return []string{"tinygroups+pow", itoa(ecfg.N), itoa(s.Graphs()[0].GroupSize()), f3(0.05),
			itoa(epochs * ecfg.N), "true", f3(worst)}
	})
	tab := &metrics.Table{Header: []string{"scheme", "n", "|G|", "beta", "events", "survived", "maxBadFrac"}}
	for _, r := range rows {
		tab.Append(r...)
	}
	return Result{
		ID: "e10", Title: "Cuckoo-rule baseline vs tiny groups", Table: tab,
		Notes: []string{
			"Expected shape: cuckoo needs |G| ≈ 64 to survive at tiny β and dies quickly with small groups at",
			"moderate β; the PoW construction sustains |G| = Θ(log log n) at β = 0.05 (red fraction stays tiny).",
		},
	}
}

// E12State regenerates the Lemma 10 state-bound table: spam accepted and
// membership state with verification on vs off — two independent trials.
func E12State(o Options) Result {
	n := 512
	if o.Quick {
		n = 256
	}
	arms := []bool{true, false}
	rows := engine.Map(o.cfg(), "e12", len(arms), func(ai int, rng *rand.Rand) []string {
		verify := arms[ai]
		cfg := epoch.DefaultConfig(n)
		cfg.Params.Beta = 0.10
		cfg.VerifyRequests = verify
		cfg.SpamFactor = 5
		cfg.Seed = rng.Int63()
		s, err := epoch.New(cfg)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		st := s.RunEpoch()
		nBad := int(cfg.Params.Beta * float64(n))
		return []string{boolStr(verify), itoa(cfg.SpamFactor), itoa(nBad * cfg.SpamFactor),
			itoa(st.SpamAccepted), f1(st.MeanMemberships), itoa(st.ErroneousRejects)}
	})
	tab := &metrics.Table{Header: []string{"verify", "spam/bad", "spamSent", "spamAccepted", "memberships", "errRejects"}}
	for _, r := range rows {
		tab.Append(r...)
	}
	return Result{
		ID: "e12", Title: "Verification caps state under spam (Lemma 10)", Table: tab,
		Notes: []string{
			"Expected shape: with verification, spamAccepted ≈ qf²·spamSent ≈ 0 and memberships stay",
			"O(log log n); without it every bogus request lands.",
		},
	}
}
