package experiments

import (
	"math"
	"math/rand"

	"repro/internal/ba"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/pow"
	"repro/internal/ring"
)

// E6PoW regenerates the Lemma 11 table: adversary solution counts vs the
// (1+ε)βn bound, uniformity of minted IDs, and a literal-puzzle validation
// of the statistical model.
func E6PoW(o Options) Result {
	ns := []int{1 << 12, 1 << 14}
	if o.Quick {
		ns = []int{1 << 12}
	}
	const T = 1 << 16
	tab := &metrics.Table{Header: []string{"n", "beta", "minted", "bound(1.1βn)", "withinBound", "chi2uniform"}}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, n := range ns {
		for _, beta := range []float64{0.05, 0.10, 0.20} {
			tau := 2.0 / T
			adv := int64(beta * float64(n) * T / 2)
			m := pow.RunEpochMint(0, 0, adv, tau, rng)
			minted := len(m.BadIDs)
			bound := 1.1 * beta * float64(n)
			counts := make([]int, 16)
			for _, id := range m.BadIDs {
				counts[id>>60]++
			}
			_, uniform := metrics.ChiSquareUniform(counts)
			tab.Append(itoa(n), f3(beta), itoa(minted), f1(bound),
				boolStr(float64(minted) <= bound), boolStr(uniform))
		}
	}
	// Literal-puzzle validation: solve with real hashing at τ = 2⁻¹⁰ and
	// compare mean attempts with 1/τ.
	p := pow.Params{Tau: ring.Point(^uint64(0) >> 10), StringLen: 32}
	lrng := rand.New(rand.NewSource(o.Seed + 1))
	r := pow.EpochString(o.Seed, 0, 32)
	total, trials := 0, 60
	for i := 0; i < trials; i++ {
		sol, ok := pow.Solve(r, p, lrng, 1<<16)
		if ok {
			total += sol.Attempts
		}
	}
	tab.Append("literal", "-", itoa(total/trials), f1(1024), boolStr(true), "-")
	return Result{
		ID: "e6", Title: "PoW minting bound and uniformity (Lemma 11)", Table: tab,
		Notes: []string{
			"Expected shape: minted ≤ (1+ε)βn for every β, IDs pass the chi-square uniformity test,",
			"and the literal puzzle's mean attempts match 1/τ (validating the binomial substitution).",
		},
	}
}

// E7Lottery regenerates the Lemma 12 table: winner coverage, solution-set
// size, and message complexity of the string-propagation protocol, with
// and without the split-release attack.
func E7Lottery(o Options) Result {
	ns := []int{256, 512, 1024}
	if o.Quick {
		ns = []int{256}
	}
	const T = 1 << 16
	tab := &metrics.Table{Header: []string{"n", "attack", "covered", "winners", "maxSet", "maxStored", "msgs", "msgs/(n·lnT)"}}
	for _, n := range ns {
		rng := rand.New(rand.NewSource(o.Seed))
		r := overlay.UniformRing(n, rng)
		ov := overlay.NewChord(r)
		adj := pow.BuildAdjacency(ov)
		for _, attack := range []string{"none", "split"} {
			cfg := pow.DefaultLotteryConfig(n, T)
			cfg.Attack = attack
			cfg.Seed = o.Seed + int64(n)
			res := pow.RunLottery(cfg, adj)
			norm := float64(res.SimMessages) / (float64(n) * math.Log(T))
			tab.Append(itoa(n), attack, boolStr(res.WinnersCovered), itoa(res.DistinctWinners),
				itoa(res.MaxSetSize), itoa(res.MaxStored), i64toa(res.SimMessages), f1(norm))
		}
	}
	return Result{
		ID: "e7", Title: "Global random-string lottery (Lemma 12)", Table: tab,
		Notes: []string{
			"Expected shape: covered = true always (property i); maxSet = O(ln n) (property ii);",
			"msgs/(n·lnT) bounded by a polylog constant (property iii). The split attack may raise",
			"the distinct-winner count above 1 but cannot break coverage.",
		},
	}
}

// E11Precompute regenerates the §IV-B motivation table: the adversary's
// usable IDs per epoch with and without string rotation.
func E11Precompute(o Options) Result {
	epochs := 10
	if o.Quick {
		epochs = 6
	}
	rng := rand.New(rand.NewSource(o.Seed))
	res := pow.RunPrecompute(epochs, 1<<16, 1.0/(1<<10), rng)
	tab := &metrics.Table{Header: []string{"epoch", "usable(rotation)", "usable(noRotation)"}}
	for j := 0; j < epochs; j++ {
		tab.Append(itoa(j+1), itoa(res.UsableWithRotation[j]), itoa(res.UsableWithoutRotation[j]))
	}
	return Result{
		ID: "e11", Title: "Pre-computation attack vs string rotation", Table: tab,
		Notes: []string{
			"Expected shape: with rotation the usable arsenal is flat (≈1.5× one epoch's mint);",
			"without it the hoard grows linearly and eventually swamps any β bound.",
		},
	}
}

// E13BA regenerates the Byzantine-agreement building-block table: agreement
// and validity rates at group-sized instances with worst-case equivocators.
func E13BA(o Options) Result {
	trials := 60
	if o.Quick {
		trials = 20
	}
	tab := &metrics.Table{Header: []string{"|G|", "t", "behavior", "agreed", "valid", "msgs/run"}}
	rng := rand.New(rand.NewSource(o.Seed))
	for _, n := range []int{8, 12, 16} {
		tFaults := (n - 1) / 4
		for _, beh := range []string{"equivocate", "silent"} {
			agreed, valid := 0, 0
			var msgs int64
			for tr := 0; tr < trials; tr++ {
				byz := map[int]bool{}
				for len(byz) < tFaults {
					byz[rng.Intn(n)] = true
				}
				// Half the trials are unanimous (validity checks), half mixed.
				prefs := make([]int, n)
				want := -1
				if tr%2 == 0 {
					v := tr / 2 % 2
					for i := range prefs {
						prefs[i] = v
					}
					want = v
				} else {
					for i := range prefs {
						prefs[i] = rng.Intn(2)
					}
				}
				res := ba.Run(n, tFaults, prefs, byz, beh)
				if res.Agreed {
					agreed++
					if want == -1 || res.Value == want {
						valid++
					}
				}
				msgs += res.Messages
			}
			tab.Append(itoa(n), itoa(tFaults), beh,
				f3(float64(agreed)/float64(trials)), f3(float64(valid)/float64(trials)),
				i64toa(msgs/int64(trials)))
		}
	}
	return Result{
		ID: "e13", Title: "Byzantine agreement inside groups", Table: tab,
		Notes: []string{
			"Expected shape: agreed = valid = 1.000 for every size and behavior (phase-king, n > 4t);",
			"msgs/run ≈ rounds·|G|² — the Θ(|G|²) group-communication cost of §I.",
		},
	}
}
