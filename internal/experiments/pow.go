package experiments

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/ba"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/overlay"
	"repro/internal/pow"
	"repro/internal/ring"
)

// E6PoW regenerates the Lemma 11 table: adversary solution counts vs the
// (1+ε)βn bound, uniformity of minted IDs, and a literal-puzzle validation
// of the statistical model. The statistical cells, the literal solves, and
// the sharded solve are all engine trials; the literal solutions are
// re-verified in a parallel batch (the epoch-admission hot path).
func E6PoW(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ns := []int{1 << 12, 1 << 14}
	if o.Quick {
		ns = []int{1 << 12}
	}
	const T = 1 << 16
	type cell struct {
		n    int
		beta float64
	}
	var cells []cell
	for _, n := range ns {
		for _, beta := range []float64{0.05, 0.10, 0.20} {
			cells = append(cells, cell{n, beta})
		}
	}
	statRows := engine.Map(o.cfg(), "e6/mint", len(cells), func(ci int, rng *rand.Rand) []string {
		c := cells[ci]
		tau := 2.0 / T
		adv := int64(c.beta * float64(c.n) * T / 2)
		m := pow.RunEpochMint(0, 0, adv, tau, rng)
		minted := len(m.BadIDs)
		bound := 1.1 * c.beta * float64(c.n)
		counts := make([]int, 16)
		for _, id := range m.BadIDs {
			counts[id>>60]++
		}
		_, uniform := metrics.ChiSquareUniform(counts)
		return []string{itoa(c.n), f3(c.beta), itoa(minted), f1(bound),
			boolStr(float64(minted) <= bound), boolStr(uniform)}
	})
	em.Header("n", "beta", "minted", "bound(1.1βn)", "withinBound", "chi2uniform")
	for _, r := range statRows {
		em.Row(r...)
	}

	// Literal-puzzle validation: solve with real hashing at τ = 2⁻¹⁰,
	// compare mean attempts with 1/τ, and batch-verify every solution.
	p := pow.Params{Tau: ring.Point(^uint64(0) >> 10), StringLen: 32}
	r := pow.EpochString(o.Seed, 0, 32)
	trials := 60
	sols := engine.Map(o.cfg(), "e6/solve", trials, func(_ int, rng *rand.Rand) pow.Solution {
		// On failure Solve reports Attempts = maxAttempts, which is the
		// right contribution to the mean.
		sol, _ := pow.Solve(r, p, rng, 1<<16)
		return sol
	})
	total := 0
	claims := make([]pow.Claim, 0, len(sols))
	for _, sol := range sols {
		total += sol.Attempts
		if sol.Sigma != nil {
			claims = append(claims, pow.Claim{ID: sol.ID, Sigma: sol.Sigma})
		}
	}
	allVerified := len(claims) > 0
	for _, ok := range pow.VerifyBatch(claims, r, p, o.cfg().Workers()) {
		allVerified = allVerified && ok
	}
	em.Row("literal", "-", itoa(total/trials), f1(1024), boolStr(allVerified), "-")

	// Sharded solve: one puzzle fanned over the worker pool; the winning
	// attempt index (and thus this row) is identical at every -parallel.
	shardSeed := engine.TrialSeed(o.Seed, "e6/sharded", 0)
	sol, ok := pow.SolveSharded(r, p, shardSeed, 1<<16, o.cfg().Workers())
	verified := ok && pow.Verify(sol.ID, sol.Sigma, r, p)
	em.Row("sharded", "-", itoa(sol.Attempts), f1(1024), boolStr(verified), "-")

	em.Note("Expected shape: minted ≤ (1+ε)βn for every β, IDs pass the chi-square uniformity test,")
	em.Note("and the literal puzzle's mean attempts match 1/τ (validating the binomial substitution).")
	em.Note("The sharded row solves one literal puzzle across the worker pool; its attempt index is")
	em.Note("deterministic regardless of parallelism, and every solution re-verifies in batch.")
	return nil
}

// E7Lottery regenerates the Lemma 12 table: winner coverage, solution-set
// size, and message complexity of the string-propagation protocol, with
// and without the split-release attack. Each n is one engine trial (the
// two attack arms share its overlay adjacency).
func E7Lottery(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ns := []int{256, 512, 1024}
	if o.Quick {
		ns = []int{256}
	}
	const T = 1 << 16
	rows := engine.Map(o.cfg(), "e7", len(ns), func(ni int, rng *rand.Rand) [][]string {
		n := ns[ni]
		r := overlay.UniformRing(n, rng)
		ov := overlay.NewChord(r)
		adj := pow.BuildAdjacency(ov)
		// One lottery seed for both arms: the attack rows differ only in
		// the adversary's behavior, not in the honest randomness.
		lotterySeed := rng.Int63()
		var out [][]string
		for _, attack := range []string{"none", "split"} {
			cfg := pow.DefaultLotteryConfig(n, T)
			cfg.Attack = attack
			cfg.Seed = lotterySeed
			res := pow.RunLottery(cfg, adj)
			norm := float64(res.SimMessages) / (float64(n) * math.Log(T))
			out = append(out, []string{itoa(n), attack, boolStr(res.WinnersCovered), itoa(res.DistinctWinners),
				itoa(res.MaxSetSize), itoa(res.MaxStored), i64toa(res.SimMessages), f1(norm)})
		}
		return out
	})
	em.Header("n", "attack", "covered", "winners", "maxSet", "maxStored", "msgs", "msgs/(n·lnT)")
	for _, trialRows := range rows {
		for _, r := range trialRows {
			em.Row(r...)
		}
	}
	em.Note("Expected shape: covered = true always (property i); maxSet = O(ln n) (property ii);")
	em.Note("msgs/(n·lnT) bounded by a polylog constant (property iii). The split attack may raise")
	em.Note("the distinct-winner count above 1 but cannot break coverage.")
	return nil
}

// E11Precompute regenerates the §IV-B motivation table: the adversary's
// usable IDs per epoch with and without string rotation. Epochs are
// causally chained, so the run is one engine trial.
func E11Precompute(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	epochs := 10
	if o.Quick {
		epochs = 6
	}
	rows := engine.Map(o.cfg(), "e11", 1, func(_ int, rng *rand.Rand) [][]string {
		res := pow.RunPrecompute(epochs, 1<<16, 1.0/(1<<10), rng)
		var out [][]string
		for j := 0; j < epochs; j++ {
			out = append(out, []string{itoa(j + 1), itoa(res.UsableWithRotation[j]), itoa(res.UsableWithoutRotation[j])})
		}
		return out
	})
	em.Header("epoch", "usable(rotation)", "usable(noRotation)")
	for _, r := range rows[0] {
		em.Row(r...)
	}
	em.Note("Expected shape: with rotation the usable arsenal is flat (≈1.5× one epoch's mint);")
	em.Note("without it the hoard grows linearly and eventually swamps any β bound.")
	return nil
}

// E13BA regenerates the Byzantine-agreement building-block table: agreement
// and validity rates at group-sized instances with worst-case equivocators.
// Each (|G|, behavior) cell is an engine trial; -trials multiplies the
// per-cell BA runs.
func E13BA(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	trials := 60
	if o.Quick {
		trials = 20
	}
	trials *= o.reps()
	type cell struct {
		n   int
		beh string
	}
	var cells []cell
	for _, n := range []int{8, 12, 16} {
		for _, beh := range []string{"equivocate", "silent"} {
			cells = append(cells, cell{n, beh})
		}
	}
	rows := engine.Map(o.cfg(), "e13", len(cells), func(ci int, rng *rand.Rand) []string {
		c := cells[ci]
		tFaults := (c.n - 1) / 4
		agreed, valid := 0, 0
		var msgs int64
		for tr := 0; tr < trials; tr++ {
			byz := map[int]bool{}
			for len(byz) < tFaults {
				byz[rng.Intn(c.n)] = true
			}
			// Half the trials are unanimous (validity checks), half mixed.
			prefs := make([]int, c.n)
			want := -1
			if tr%2 == 0 {
				v := tr / 2 % 2
				for i := range prefs {
					prefs[i] = v
				}
				want = v
			} else {
				for i := range prefs {
					prefs[i] = rng.Intn(2)
				}
			}
			res := ba.Run(c.n, tFaults, prefs, byz, c.beh)
			if res.Agreed {
				agreed++
				if want == -1 || res.Value == want {
					valid++
				}
			}
			msgs += res.Messages
		}
		return []string{itoa(c.n), itoa(tFaults), c.beh,
			f3(float64(agreed) / float64(trials)), f3(float64(valid) / float64(trials)),
			i64toa(msgs / int64(trials))}
	})
	em.Header("|G|", "t", "behavior", "agreed", "valid", "msgs/run")
	for _, r := range rows {
		em.Row(r...)
	}
	em.Note("Expected shape: agreed = valid = 1.000 for every size and behavior (phase-king, n > 4t);")
	em.Note("msgs/run ≈ rounds·|G|² — the Θ(|G|²) group-communication cost of §I.")
	return nil
}
