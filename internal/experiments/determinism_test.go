package experiments

import "testing"

// TestParallelDeterminism is the engine's core contract: every experiment
// produces a byte-identical table at -parallel 1 and -parallel 8 under the
// same root seed, because trial seeds are hash-derived and results are
// reduced in trial order.
func TestParallelDeterminism(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			seq := e.Run(Options{Quick: true, Seed: 5, Parallel: 1})
			par := e.Run(Options{Quick: true, Seed: 5, Parallel: 8})
			if got, want := par.Table.String(), seq.Table.String(); got != want {
				t.Errorf("parallel=8 table differs from parallel=1:\n--- parallel=1\n%s\n--- parallel=8\n%s", want, got)
			}
		})
	}
}

// TestTrialsDeterminism repeats the contract with per-cell repetitions on:
// averaged cells must also be schedule-independent.
func TestTrialsDeterminism(t *testing.T) {
	for _, id := range []string{"e1", "e2", "e8", "e13"} {
		e, ok := Lookup(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		seq := e.Run(Options{Quick: true, Seed: 9, Parallel: 1, Trials: 3})
		par := e.Run(Options{Quick: true, Seed: 9, Parallel: 8, Trials: 3})
		if seq.Table.String() != par.Table.String() {
			t.Errorf("%s: trials=3 table differs between parallel=1 and parallel=8", id)
		}
	}
}

// TestSeedChangesOutput guards against a degenerate TrialSeed (e.g. one
// ignoring the root seed): different seeds must produce different sampled
// tables somewhere.
func TestSeedChangesOutput(t *testing.T) {
	a := mustLookup("e1").Run(Options{Quick: true, Seed: 1})
	b := mustLookup("e1").Run(Options{Quick: true, Seed: 2})
	if a.Table.String() == b.Table.String() {
		t.Error("e1 tables identical under different root seeds")
	}
}
