// Package experiments regenerates every evaluation artifact of DESIGN.md §6:
// one table (or series) per analytic claim of the paper. Each experiment is
// a pure function of its Options, so CLI runs and benchmarks are
// reproducible bit-for-bit given a seed.
//
// Experiments are *streaming*: the canonical form is a StreamFunc that
// emits its header, rows and notes into an Emitter as they are produced —
// epoch-chained series (e4, e5) surface each epoch's row the moment it is
// measured, and a cancelled context aborts the remaining work between
// rows. Experiment.Run is the buffering adapter for callers that want the
// whole table at once (goldens, benchmarks, determinism checks).
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// Options tune an experiment run.
type Options struct {
	// Quick shrinks sweeps for use in tests and benchmarks.
	Quick bool
	// Seed drives all randomness: every trial's private seed is derived
	// from it by hashing (engine.TrialSeed).
	Seed int64
	// Parallel caps how many engine trials run concurrently; 0 means
	// GOMAXPROCS. It affects wall-clock only — tables are bit-identical at
	// every setting.
	Parallel int
	// Trials multiplies the independent repetitions behind each sampled
	// table cell (≤1 means a single repetition). It applies to the
	// rate-estimating experiments e1, e2, e8 (averaged cells) and e13
	// (more BA runs per cell); the remaining experiments report
	// single-construction measurements and ignore it.
	Trials int
}

// cfg returns the engine configuration for this run.
func (o Options) cfg() engine.Config {
	return engine.Config{Parallel: o.Parallel, RootSeed: o.Seed}
}

// reps returns the effective per-cell repetition count.
func (o Options) reps() int {
	if o.Trials > 1 {
		return o.Trials
	}
	return 1
}

// meanCells fans nCells×reps independent measurements over the engine and
// averages each cell's dims-dimensional vector across its repetitions.
// Trial (cell, rep) pairs are flattened so repetitions of different cells
// run concurrently; the returned slice is indexed by cell.
func meanCells(o Options, scope string, nCells, dims int, measure func(cell, rep int, rng *rand.Rand) []float64) [][]float64 {
	reps := o.reps()
	flat := engine.Map(o.cfg(), scope, nCells*reps, func(i int, rng *rand.Rand) []float64 {
		return measure(i/reps, i%reps, rng)
	})
	out := make([][]float64, nCells)
	for c := range out {
		mean := make([]float64, dims)
		for r := 0; r < reps; r++ {
			v := flat[c*reps+r]
			for d := 0; d < dims && d < len(v); d++ {
				mean[d] += v[d]
			}
		}
		for d := range mean {
			mean[d] /= float64(reps)
		}
		out[c] = mean
	}
	return out
}

// Emitter receives one experiment's output incrementally: one Header call,
// then Rows in table order, then interpretation Notes. Implementations
// must not retain the variadic slices past the call.
type Emitter interface {
	Header(cols ...string)
	Row(cells ...string)
	Note(text string)
}

// Collector is the buffering Emitter behind Experiment.Run: it gathers the
// stream into a metrics.Table plus notes.
type Collector struct {
	Table metrics.Table
	Notes []string
}

// Header sets the table header (copied; emitters may reuse the slice).
func (c *Collector) Header(cols ...string) { c.Table.Header = append([]string(nil), cols...) }

// Row appends one table row (copied; emitters may reuse the slice).
func (c *Collector) Row(cells ...string) { c.Table.Append(append([]string(nil), cells...)...) }

// Note records one interpretation note.
func (c *Collector) Note(text string) { c.Notes = append(c.Notes, text) }

// StreamFunc runs one experiment, emitting output as it is produced. It
// returns a non-nil error only when ctx is cancelled (the experiments
// themselves are infallible given validated Options); chained experiments
// poll ctx between rows, batch experiments before their trial fan-out.
type StreamFunc func(ctx context.Context, o Options, em Emitter) error

// Result is one regenerated table plus interpretation notes.
type Result struct {
	ID    string
	Title string
	Table *metrics.Table
	Notes []string
}

// Experiment is a named, runnable experiment. Stream is the canonical
// streaming form; Run is the buffered adapter.
type Experiment struct {
	ID     string
	Title  string
	Stream StreamFunc
}

// Run executes the experiment to completion and returns the buffered
// Result — the batch form the golden, determinism and benchmark harnesses
// compare.
func (e Experiment) Run(o Options) Result {
	var c Collector
	if err := e.Stream(context.Background(), o, &c); err != nil {
		panic("experiments: " + e.ID + ": " + err.Error()) // background context never cancels
	}
	return Result{ID: e.ID, Title: e.Title, Table: &c.Table, Notes: c.Notes}
}

// registry is the map-backed experiment index; order preserves
// registration order so All() lists DESIGN.md order for the built-ins.
var (
	registry = map[string]Experiment{}
	order    []string
)

// Register adds an experiment to the registry. Empty IDs, nil Stream
// functions and duplicate IDs are rejected — a duplicate registration is
// always a bug, not a request to shadow.
func Register(e Experiment) error {
	if e.ID == "" || e.Stream == nil {
		return fmt.Errorf("experiments: Register needs an ID and a Stream func (got ID %q)", e.ID)
	}
	if _, dup := registry[e.ID]; dup {
		return fmt.Errorf("experiments: duplicate experiment ID %q", e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
	return nil
}

// MustRegister is Register, panicking on rejection (init-time use).
func MustRegister(e Experiment) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// All lists every registered experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, len(order))
	for i, id := range order {
		out[i] = registry[id]
	}
	return out
}

// Lookup finds an experiment by ID in O(1).
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

func init() {
	for _, e := range []Experiment{
		{"e1", "Static search success (Lemma 4 / Thm 3)", E1StaticSearch},
		{"e2", "Bad-group probability vs group size (S2/Lemma 9 shape)", E2BadGroups},
		{"e3", "Cost table: tiny vs Θ(log n) groups (Corollary 1)", E3Costs},
		{"e4", "Dynamic ε-robustness across epochs (Theorem 3)", E4Dynamic},
		{"e5", "Two-graph vs single-graph ablation (§III intuition)", E5Ablation},
		{"e6", "PoW minting bound and uniformity (Lemma 11)", E6PoW},
		{"e7", "Global random-string lottery (Lemma 12)", E7Lottery},
		{"e8", "Group-size knee: o(log log n) fails (§I-D)", E8Knee},
		{"e9", "Input-graph properties P1–P4 (+ Lemma 5)", E9InputGraphs},
		{"e10", "Cuckoo-rule baseline vs tiny groups ([47] anchor)", E10Cuckoo},
		{"e11", "Pre-computation attack vs string rotation (§IV-B)", E11Precompute},
		{"e12", "Verification caps state under spam (Lemma 10)", E12State},
		{"e13", "Byzantine agreement inside groups (§I building block)", E13BA},
		{"e14", "Secure routing protocol: majority filtering (§I mechanism)", E14SecureRouting},
		{"e15", "Mid-epoch departures vs the ε'/2 bound (§III churn model)", E15Departures},
		{"e16", "Bootstrapping sets (Appendix IX)", E16Bootstrap},
		{"e17", "Overlay ablation: route length vs degree (design choice)", E17OverlayAblation},
		{"e18", "Quarantine of misbehaving members (footnote 2 extension)", E18Quarantine},
		{"e19", "Adaptive PoW: work only when attacked (conclusion / [22])", E19AdaptivePoW},
		{"e20", "System size Θ(n) oscillation (§III remark)", E20SizeDrift},
		{"e21", "Attack suite vs matched adversary placement (§IV pressure)", E21AttackSuite},
	} {
		MustRegister(e)
	}
}

func f3(x float64) string   { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string   { return fmt.Sprintf("%.4f", x) }
func f1(x float64) string   { return fmt.Sprintf("%.1f", x) }
func itoa(x int) string     { return fmt.Sprintf("%d", x) }
func boolStr(b bool) string { return strconv.FormatBool(b) }
func i64toa(x int64) string { return fmt.Sprintf("%d", x) }
