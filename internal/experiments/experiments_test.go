package experiments

import (
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// checks the structural contract: non-empty table, consistent column
// counts, notes present.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(Options{Quick: true, Seed: 1})
			if res.ID != e.ID {
				t.Errorf("result ID %q != experiment ID %q", res.ID, e.ID)
			}
			if res.Table == nil || len(res.Table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, row := range res.Table.Rows {
				if len(row) != len(res.Table.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(res.Table.Header))
				}
			}
			if len(res.Notes) == 0 {
				t.Error("experiment has no interpretation notes")
			}
			if !strings.Contains(res.Table.String(), res.Table.Header[0]) {
				t.Error("table failed to render")
			}
		})
	}
}

func TestLookupFindsAll(t *testing.T) {
	for _, e := range All() {
		got, ok := Lookup(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("Lookup(%q) failed", e.ID)
		}
	}
	if _, ok := Lookup("e99"); ok {
		t.Error("Lookup must reject unknown IDs")
	}
}

// TestE1ShapeHolds spot-checks the headline claim in quick mode: the static
// search failure rate is small at both sampled sizes.
func TestE1ShapeHolds(t *testing.T) {
	res := mustLookup("e1").Run(Options{Quick: true, Seed: 2})
	for _, row := range res.Table.Rows {
		fail, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad cell: %v", err)
		}
		if fail > 0.10 {
			t.Errorf("n=%s beta=%s: searchFail %s exceeds 0.10", row[0], row[1], row[4])
		}
	}
}

// TestE5AblationShape spot-checks the two-graph advantage: the final-epoch
// red fraction under one graph must exceed the two-graph one.
func TestE5AblationShape(t *testing.T) {
	res := mustLookup("e5").Run(Options{Quick: true, Seed: 3})
	var lastTwo, lastOne float64
	for _, row := range res.Table.Rows {
		v, _ := strconv.ParseFloat(row[3], 64)
		if row[0] == "2" {
			lastTwo = v
		} else {
			lastOne = v
		}
	}
	if lastOne < lastTwo {
		t.Errorf("ablation inverted: single-graph redFrac %.4f < two-graph %.4f", lastOne, lastTwo)
	}
}

// TestE13Perfect: agreement and validity must be exact.
func TestE13Perfect(t *testing.T) {
	res := mustLookup("e13").Run(Options{Quick: true, Seed: 4})
	for _, row := range res.Table.Rows {
		if row[3] != "1.000" || row[4] != "1.000" {
			t.Errorf("BA row %v: agreement/validity below 1", row)
		}
	}
}

// mustLookup fetches a registered experiment or fails the compile-time
// contract that the built-in IDs exist.
func mustLookup(id string) Experiment {
	e, ok := Lookup(id)
	if !ok {
		panic("unknown experiment " + id)
	}
	return e
}

// TestRegisterRejectsDuplicates: the map-backed registry must refuse a
// second registration of an existing ID, an empty ID, and a nil Stream.
func TestRegisterRejectsDuplicates(t *testing.T) {
	stream := func(context.Context, Options, Emitter) error { return nil }
	if err := Register(Experiment{ID: "e1", Title: "imposter", Stream: stream}); err == nil {
		t.Fatal("duplicate ID e1 accepted")
	}
	if err := Register(Experiment{Title: "anonymous", Stream: stream}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := Register(Experiment{ID: "eX"}); err == nil {
		t.Error("nil Stream accepted")
	}
	if got, _ := Lookup("e1"); got.Title == "imposter" {
		t.Error("rejected registration still replaced the original")
	}
}

// TestStreamEmissionOrder checks the streaming contract on a cheap
// experiment: exactly one header, then rows, then notes, matching the
// buffered Result byte for byte.
func TestStreamEmissionOrder(t *testing.T) {
	e := mustLookup("e13")
	var events []string
	var c Collector
	err := e.Stream(context.Background(), Options{Quick: true, Seed: 1}, &recordingEmitter{c: &c, events: &events})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[0] != "header" {
		t.Fatalf("stream did not open with a header: %v", events)
	}
	sawRow := false
	for i, ev := range events[1:] {
		switch ev {
		case "header":
			t.Fatalf("second header at event %d", i+1)
		case "row":
			if sawRow && events[i] == "note" {
				t.Fatalf("row after note at event %d", i+1)
			}
			sawRow = true
		}
	}
	want := e.Run(Options{Quick: true, Seed: 1})
	if c.Table.String() != want.Table.String() {
		t.Error("streamed table differs from buffered Run")
	}
}

// TestStreamCancellationStopsChainedExperiment cancels e4 after its first
// emitted row: the stream must stop with ctx.Err() before producing the
// full epoch series.
func TestStreamCancellationStopsChainedExperiment(t *testing.T) {
	e := mustLookup("e4")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows := 0
	em := &funcEmitter{onRow: func([]string) {
		rows++
		cancel()
	}}
	err := e.Stream(ctx, Options{Quick: true, Seed: 1}, em)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows != 1 {
		t.Errorf("stream emitted %d rows after cancellation, want 1", rows)
	}
}

// recordingEmitter forwards to a Collector while logging event kinds.
type recordingEmitter struct {
	c      *Collector
	events *[]string
}

func (r *recordingEmitter) Header(cols ...string) {
	*r.events = append(*r.events, "header")
	r.c.Header(cols...)
}
func (r *recordingEmitter) Row(cells ...string) {
	*r.events = append(*r.events, "row")
	r.c.Row(cells...)
}
func (r *recordingEmitter) Note(text string) {
	*r.events = append(*r.events, "note")
	r.c.Note(text)
}

// funcEmitter dispatches rows to a callback and drops the rest.
type funcEmitter struct{ onRow func([]string) }

func (f *funcEmitter) Header(...string) {}
func (f *funcEmitter) Row(cells ...string) {
	if f.onRow != nil {
		f.onRow(cells)
	}
}
func (f *funcEmitter) Note(string) {}
