package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes every experiment in quick mode and
// checks the structural contract: non-empty table, consistent column
// counts, notes present.
func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(Options{Quick: true, Seed: 1})
			if res.ID != e.ID {
				t.Errorf("result ID %q != experiment ID %q", res.ID, e.ID)
			}
			if res.Table == nil || len(res.Table.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for i, row := range res.Table.Rows {
				if len(row) != len(res.Table.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(res.Table.Header))
				}
			}
			if len(res.Notes) == 0 {
				t.Error("experiment has no interpretation notes")
			}
			if !strings.Contains(res.Table.String(), res.Table.Header[0]) {
				t.Error("table failed to render")
			}
		})
	}
}

func TestLookupFindsAll(t *testing.T) {
	for _, e := range All() {
		got, ok := Lookup(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("Lookup(%q) failed", e.ID)
		}
	}
	if _, ok := Lookup("e99"); ok {
		t.Error("Lookup must reject unknown IDs")
	}
}

// TestE1ShapeHolds spot-checks the headline claim in quick mode: the static
// search failure rate is small at both sampled sizes.
func TestE1ShapeHolds(t *testing.T) {
	res := E1StaticSearch(Options{Quick: true, Seed: 2})
	for _, row := range res.Table.Rows {
		fail, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatalf("bad cell: %v", err)
		}
		if fail > 0.10 {
			t.Errorf("n=%s beta=%s: searchFail %s exceeds 0.10", row[0], row[1], row[4])
		}
	}
}

// TestE5AblationShape spot-checks the two-graph advantage: the final-epoch
// red fraction under one graph must exceed the two-graph one.
func TestE5AblationShape(t *testing.T) {
	res := E5Ablation(Options{Quick: true, Seed: 3})
	var lastTwo, lastOne float64
	for _, row := range res.Table.Rows {
		v, _ := strconv.ParseFloat(row[3], 64)
		if row[0] == "2" {
			lastTwo = v
		} else {
			lastOne = v
		}
	}
	if lastOne < lastTwo {
		t.Errorf("ablation inverted: single-graph redFrac %.4f < two-graph %.4f", lastOne, lastTwo)
	}
}

// TestE13Perfect: agreement and validity must be exact.
func TestE13Perfect(t *testing.T) {
	res := E13BA(Options{Quick: true, Seed: 4})
	for _, row := range res.Table.Rows {
		if row[3] != "1.000" || row[4] != "1.000" {
			t.Errorf("BA row %v: agreement/validity below 1", row)
		}
	}
}
