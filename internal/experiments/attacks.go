package experiments

import (
	"context"
	"math/rand"

	"repro/internal/engine"
	"repro/tinygroups"
	"repro/tinygroups/loadgen"
)

// nearZeroVictim picks, from a fixed candidate set, the victim string whose
// hash point lies nearest ring point 0 — the point the NearKey placement
// concentrates the adversary's bad IDs around — so the targeted-churn
// workload and the adversary's ID placement press on the same arc. The scan
// is a pure function, so the chosen victim never changes between runs.
func nearZeroVictim() string {
	best, bestDist := "victim", ^uint64(0)
	for i := 0; i < 1<<10; i++ {
		s := "victim-" + itoa(i)
		p := uint64(tinygroups.KeyPoint(s))
		d := p
		if neg := -p; neg < d {
			d = neg
		}
		if d < bestDist {
			best, bestDist = s, d
		}
	}
	return best
}

// E21AttackSuite pins the adversarial workloads as a table: each of the
// three attack generators runs against a System whose adversary *placement*
// matches the attack — join-flood against the Uniform baseline,
// targeted-churn against NearKey placement on the same victim arc, and the
// eclipse read storm against a Clustered arc that contains the storm's.
// Outcome counts, not latencies, are the columns: the closed loop runs at
// concurrency 1 over the in-process System, so every count is a pure
// function of the seed and the e1–e20 golden machinery pins attack tables
// the same way it pins the analytic ones. Each pairing is one engine trial.
func E21AttackSuite(ctx context.Context, o Options, em Emitter) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	n, ops, advanceEvery := 1<<10, 600, 100
	if o.Quick {
		n, ops, advanceEvery = 512, 160, 40
	}
	const keys = 256
	pairs := []struct {
		gen      loadgen.Generator
		strategy tinygroups.Strategy
	}{
		{loadgen.JoinFlood(keys, advanceEvery, 16), tinygroups.Uniform},
		{loadgen.TargetedChurn(keys, advanceEvery, 8, nearZeroVictim()), tinygroups.NearKey},
		{loadgen.EclipseStorm(keys, advanceEvery, 8, 0.125), tinygroups.Clustered},
	}
	rows := engine.Map(o.cfg(), "e21", len(pairs), func(pi int, rng *rand.Rand) []string {
		p := pairs[pi]
		sys, err := tinygroups.New(n,
			tinygroups.WithSeed(rng.Int63()),
			tinygroups.WithStrategy(p.strategy),
			tinygroups.WithMintWork(1<<8), // smoke-scale solves for the join-flood mints
		)
		if err != nil {
			panic(err) // validated static options never fail
		}
		defer sys.Close()
		res, _ := loadgen.Run(ctx, loadgen.NewSystemTarget(sys), p.gen, loadgen.Config{
			Concurrency: 1, Ops: ops, Seed: rng.Int63(),
		})
		return []string{
			p.gen.Name(), p.strategy.String(), itoa(res.Ops), itoa(res.OK),
			itoa(res.Unreachable), itoa(res.NotFound), itoa(res.Errors),
			itoa(sys.Epoch()), f3(res.SuccessRate),
		}
	})
	// A cancelled ctx leaves partial counts in the trials — surface the
	// cancellation instead of emitting them.
	if err := ctx.Err(); err != nil {
		return err
	}
	em.Header("workload", "strategy", "ops", "ok", "unreach", "notFound", "errors", "epochs", "successRate")
	for _, r := range rows {
		em.Row(r...)
	}
	em.Note("Expected shape: success rates stay near 1 even though each attack workload is paired with the")
	em.Note("adversary placement it exploits — the Lemma 11 PoW gate prices the join flood, and majority")
	em.Note("filtering holds the targeted and clustered arcs. Counts are seed-pure (concurrency 1).")
	return nil
}
