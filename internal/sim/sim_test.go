package sim

import (
	"sync/atomic"
	"testing"
)

// echoNode forwards every received payload to node 0.
type echoNode struct{ received int64 }

func (e *echoNode) Step(round int, inbox []Message) []Message {
	atomic.AddInt64(&e.received, int64(len(inbox)))
	var out []Message
	for range inbox {
		out = append(out, Message{To: 0, Payload: "ack"})
	}
	return out
}

// seedNode sends one message to each other node in round 0.
type seedNode struct {
	n    int
	self NodeID
}

func (s *seedNode) Step(round int, inbox []Message) []Message {
	if round != 0 {
		return nil
	}
	var out []Message
	for i := 0; i < s.n; i++ {
		if NodeID(i) != s.self {
			out = append(out, Message{To: NodeID(i), Payload: "hi"})
		}
	}
	return out
}

func TestMessagesDeliveredNextRound(t *testing.T) {
	const n = 5
	nodes := make([]Node, n)
	nodes[0] = &seedNode{n: n, self: 0}
	echoes := make([]*echoNode, n)
	for i := 1; i < n; i++ {
		echoes[i] = &echoNode{}
		nodes[i] = echoes[i]
	}
	nw := New(nodes)
	st := nw.Run(1)
	// Delivered counts messages routed into next-round inboxes.
	if st.Delivered != n-1 {
		t.Fatalf("queued = %d, want %d", st.Delivered, n-1)
	}
	for i := 1; i < n; i++ {
		if echoes[i].received != 0 {
			t.Fatalf("node %d consumed a message in the sending round", i)
		}
	}
	st = nw.Run(1)
	// Echo nodes consumed their messages and queued n-1 acks to node 0.
	if st.Delivered != 2*(n-1) {
		t.Fatalf("cumulative delivered = %d, want %d", st.Delivered, 2*(n-1))
	}
	for i := 1; i < n; i++ {
		if echoes[i].received != 1 {
			t.Fatalf("node %d received %d, want 1", i, echoes[i].received)
		}
	}
}

func TestTopologyRestriction(t *testing.T) {
	const n = 4
	nodes := make([]Node, n)
	nodes[0] = &seedNode{n: n, self: 0}
	for i := 1; i < n; i++ {
		nodes[i] = &echoNode{}
	}
	nw := New(nodes)
	nw.SetTopology([][]NodeID{0: {1}, 1: {}, 2: {}, 3: {}})
	st := nw.Run(2)
	if st.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (only 0→1 allowed)", st.Delivered)
	}
	// Dropped: 0→2 and 0→3 in round 0, plus node 1's echo ack 1→0 in round 1.
	if st.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.Dropped)
	}
}

func TestOutOfRangeRecipientsDropped(t *testing.T) {
	nodes := []Node{&seedNode{n: 10, self: 0}, &echoNode{}}
	nw := New(nodes)
	st := nw.Run(2)
	// Round 0: 0→1 delivered, 0→{2..9} out of range. Round 1: echo ack 1→0.
	if st.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", st.Delivered)
	}
	if st.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", st.Dropped)
	}
}

// forgeNode tries to forge its From field.
type forgeNode struct{}

func (forgeNode) Step(round int, inbox []Message) []Message {
	if round == 0 {
		return []Message{{From: 99, To: 1, Payload: "forged"}}
	}
	return nil
}

// captureNode records sender IDs.
type captureNode struct{ froms []NodeID }

func (c *captureNode) Step(round int, inbox []Message) []Message {
	for _, m := range inbox {
		c.froms = append(c.froms, m.From)
	}
	return nil
}

func TestFromFieldCannotBeForged(t *testing.T) {
	cap := &captureNode{}
	nw := New([]Node{forgeNode{}, cap})
	nw.Run(2)
	if len(cap.froms) != 1 || cap.froms[0] != 0 {
		t.Fatalf("From = %v, want [0] (runtime must stamp the true sender)", cap.froms)
	}
}

// counterNode counts rounds it was stepped.
type counterNode struct{ steps int64 }

func (c *counterNode) Step(round int, inbox []Message) []Message {
	atomic.AddInt64(&c.steps, 1)
	return nil
}

func TestAllNodesSteppedEveryRound(t *testing.T) {
	const n, rounds = 32, 7
	nodes := make([]Node, n)
	counters := make([]*counterNode, n)
	for i := range nodes {
		counters[i] = &counterNode{}
		nodes[i] = counters[i]
	}
	nw := New(nodes)
	st := nw.Run(rounds)
	if st.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", st.Rounds, rounds)
	}
	for i, c := range counters {
		if c.steps != rounds {
			t.Fatalf("node %d stepped %d times, want %d", i, c.steps, rounds)
		}
	}
}

func TestBroadcastHelper(t *testing.T) {
	msgs := Broadcast("x", []NodeID{3, 1, 4})
	if len(msgs) != 3 || msgs[0].To != 3 || msgs[2].To != 4 {
		t.Fatalf("Broadcast built %v", msgs)
	}
}

// inboxOrderNode verifies the inbox is sorted by sender.
type inboxOrderNode struct{ bad bool }

func (n *inboxOrderNode) Step(round int, inbox []Message) []Message {
	for i := 1; i < len(inbox); i++ {
		if inbox[i].From < inbox[i-1].From {
			n.bad = true
		}
	}
	return nil
}

// sprayNode sends to node 0 from many sources.
type sprayNode struct{}

func (sprayNode) Step(round int, inbox []Message) []Message {
	if round == 0 {
		return []Message{{To: 0, Payload: "s"}}
	}
	return nil
}

func TestInboxSortedBySender(t *testing.T) {
	const n = 64
	target := &inboxOrderNode{}
	nodes := make([]Node, n)
	nodes[0] = target
	for i := 1; i < n; i++ {
		nodes[i] = sprayNode{}
	}
	nw := New(nodes)
	nw.Run(2)
	if target.bad {
		t.Fatal("inbox not sorted by sender")
	}
}
