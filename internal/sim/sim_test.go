package sim

import (
	"sync/atomic"
	"testing"
)

// echoNode forwards every received payload to node 0.
type echoNode struct{ received int64 }

func (e *echoNode) Step(round int, inbox []Message) []Message {
	atomic.AddInt64(&e.received, int64(len(inbox)))
	var out []Message
	for range inbox {
		out = append(out, Message{To: 0, Payload: "ack"})
	}
	return out
}

// seedNode sends one message to each other node in round 0.
type seedNode struct {
	n    int
	self NodeID
}

func (s *seedNode) Step(round int, inbox []Message) []Message {
	if round != 0 {
		return nil
	}
	var out []Message
	for i := 0; i < s.n; i++ {
		if NodeID(i) != s.self {
			out = append(out, Message{To: NodeID(i), Payload: "hi"})
		}
	}
	return out
}

func TestMessagesDeliveredNextRound(t *testing.T) {
	const n = 5
	nodes := make([]Node, n)
	nodes[0] = &seedNode{n: n, self: 0}
	echoes := make([]*echoNode, n)
	for i := 1; i < n; i++ {
		echoes[i] = &echoNode{}
		nodes[i] = echoes[i]
	}
	nw := New(nodes)
	st := nw.Run(1)
	// Delivered counts messages routed into next-round inboxes.
	if st.Delivered != n-1 {
		t.Fatalf("queued = %d, want %d", st.Delivered, n-1)
	}
	for i := 1; i < n; i++ {
		if echoes[i].received != 0 {
			t.Fatalf("node %d consumed a message in the sending round", i)
		}
	}
	st = nw.Run(1)
	// Echo nodes consumed their messages and queued n-1 acks to node 0.
	if st.Delivered != 2*(n-1) {
		t.Fatalf("cumulative delivered = %d, want %d", st.Delivered, 2*(n-1))
	}
	for i := 1; i < n; i++ {
		if echoes[i].received != 1 {
			t.Fatalf("node %d received %d, want 1", i, echoes[i].received)
		}
	}
}

func TestTopologyRestriction(t *testing.T) {
	const n = 4
	nodes := make([]Node, n)
	nodes[0] = &seedNode{n: n, self: 0}
	for i := 1; i < n; i++ {
		nodes[i] = &echoNode{}
	}
	nw := New(nodes)
	nw.SetTopology([][]NodeID{0: {1}, 1: {}, 2: {}, 3: {}})
	st := nw.Run(2)
	if st.Delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (only 0→1 allowed)", st.Delivered)
	}
	// Dropped: 0→2 and 0→3 in round 0, plus node 1's echo ack 1→0 in round 1.
	if st.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", st.Dropped)
	}
}

func TestOutOfRangeRecipientsDropped(t *testing.T) {
	nodes := []Node{&seedNode{n: 10, self: 0}, &echoNode{}}
	nw := New(nodes)
	st := nw.Run(2)
	// Round 0: 0→1 delivered, 0→{2..9} out of range. Round 1: echo ack 1→0.
	if st.Delivered != 2 {
		t.Fatalf("delivered = %d, want 2", st.Delivered)
	}
	if st.Dropped != 8 {
		t.Fatalf("dropped = %d, want 8", st.Dropped)
	}
}

// forgeNode tries to forge its From field.
type forgeNode struct{}

func (forgeNode) Step(round int, inbox []Message) []Message {
	if round == 0 {
		return []Message{{From: 99, To: 1, Payload: "forged"}}
	}
	return nil
}

// captureNode records sender IDs.
type captureNode struct{ froms []NodeID }

func (c *captureNode) Step(round int, inbox []Message) []Message {
	for _, m := range inbox {
		c.froms = append(c.froms, m.From)
	}
	return nil
}

func TestFromFieldCannotBeForged(t *testing.T) {
	cap := &captureNode{}
	nw := New([]Node{forgeNode{}, cap})
	nw.Run(2)
	if len(cap.froms) != 1 || cap.froms[0] != 0 {
		t.Fatalf("From = %v, want [0] (runtime must stamp the true sender)", cap.froms)
	}
}

// counterNode counts rounds it was stepped.
type counterNode struct{ steps int64 }

func (c *counterNode) Step(round int, inbox []Message) []Message {
	atomic.AddInt64(&c.steps, 1)
	return nil
}

func TestAllNodesSteppedEveryRound(t *testing.T) {
	const n, rounds = 32, 7
	nodes := make([]Node, n)
	counters := make([]*counterNode, n)
	for i := range nodes {
		counters[i] = &counterNode{}
		nodes[i] = counters[i]
	}
	nw := New(nodes)
	st := nw.Run(rounds)
	if st.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", st.Rounds, rounds)
	}
	for i, c := range counters {
		if c.steps != rounds {
			t.Fatalf("node %d stepped %d times, want %d", i, c.steps, rounds)
		}
	}
}

func TestBroadcastHelper(t *testing.T) {
	msgs := Broadcast("x", []NodeID{3, 1, 4})
	if len(msgs) != 3 || msgs[0].To != 3 || msgs[2].To != 4 {
		t.Fatalf("Broadcast built %v", msgs)
	}
}

// inboxOrderNode verifies the inbox is sorted by sender.
type inboxOrderNode struct{ bad bool }

func (n *inboxOrderNode) Step(round int, inbox []Message) []Message {
	for i := 1; i < len(inbox); i++ {
		if inbox[i].From < inbox[i-1].From {
			n.bad = true
		}
	}
	return nil
}

// sprayNode sends to node 0 from many sources.
type sprayNode struct{}

func (sprayNode) Step(round int, inbox []Message) []Message {
	if round == 0 {
		return []Message{{To: 0, Payload: "s"}}
	}
	return nil
}

func TestInboxSortedBySender(t *testing.T) {
	const n = 64
	target := &inboxOrderNode{}
	nodes := make([]Node, n)
	nodes[0] = target
	for i := 1; i < n; i++ {
		nodes[i] = sprayNode{}
	}
	nw := New(nodes)
	nw.Run(2)
	if target.bad {
		t.Fatal("inbox not sorted by sender")
	}
}

// burstNode sends several distinguishable messages to one target in round 0.
type burstNode struct {
	target NodeID
	count  int
}

func (b *burstNode) Step(round int, inbox []Message) []Message {
	if round != 0 {
		return nil
	}
	var out []Message
	for k := 0; k < b.count; k++ {
		out = append(out, Message{To: b.target, Payload: k})
	}
	return out
}

// recorderNode captures (sender, payload) pairs in delivery order.
type recorderNode struct{ got [][2]int }

func (r *recorderNode) Step(round int, inbox []Message) []Message {
	for _, m := range inbox {
		r.got = append(r.got, [2]int{int(m.From), m.Payload.(int)})
	}
	return nil
}

// TestSameSenderOrderDeterministic is the regression test for the
// inconsistent inbox comparator the runtime used to have: multiple messages
// from one sender tie-broke on unstable sort indices, so their relative
// order was unspecified. The contract now is (sender, send order), at every
// worker count.
func TestSameSenderOrderDeterministic(t *testing.T) {
	build := func() (*Network, *recorderNode) {
		rec := &recorderNode{}
		nodes := []Node{rec,
			&burstNode{target: 0, count: 5},
			&burstNode{target: 0, count: 3},
			&burstNode{target: 0, count: 4},
		}
		return New(nodes), rec
	}
	var want [][2]int
	for from := 1; from <= 3; from++ {
		for k := 0; k < []int{0, 5, 3, 4}[from]; k++ {
			want = append(want, [2]int{from, k})
		}
	}
	for _, workers := range []int{1, 2, 3, 8} {
		nw, rec := build()
		nw.SetWorkers(workers)
		nw.Run(2)
		if len(rec.got) != len(want) {
			t.Fatalf("workers=%d: received %d messages, want %d", workers, len(rec.got), len(want))
		}
		for i := range want {
			if rec.got[i] != want[i] {
				t.Fatalf("workers=%d: delivery[%d] = %v, want %v (inbox must be sorted by sender with per-sender send order preserved)",
					workers, i, rec.got[i], want[i])
			}
		}
	}
}

// trafficNode deterministically sprays messages derived from (self, round)
// so multi-round runs exercise routing, topology drops and ordering.
type trafficNode struct {
	self  NodeID
	n     int
	trace []int64
	out   []Message
}

func (tn *trafficNode) Step(round int, inbox []Message) []Message {
	var acc int64
	for _, m := range inbox {
		acc = acc*31 + int64(m.From) + int64(m.Payload.(int))
	}
	tn.trace = append(tn.trace, acc)
	tn.out = tn.out[:0]
	for k := 0; k < 3; k++ {
		to := NodeID((int(tn.self) + (round+1)*(k+1)) % (tn.n + 2)) // some land out of range/topology
		tn.out = append(tn.out, Message{To: to, Payload: int(tn.self)*100 + round + k})
	}
	return tn.out
}

// TestWorkerCountNeverChangesResults runs one deterministic traffic pattern
// at several pool sizes and demands identical per-node observation traces
// and stats — the sim-level version of the repo's -parallel 1 ≡ -parallel 8
// contract.
func TestWorkerCountNeverChangesResults(t *testing.T) {
	run := func(workers int) ([][]int64, Stats) {
		const n = 31
		nodes := make([]Node, n)
		tns := make([]*trafficNode, n)
		adj := make([][]NodeID, n)
		for i := range nodes {
			tns[i] = &trafficNode{self: NodeID(i), n: n}
			nodes[i] = tns[i]
			for d := 1; d <= 4; d++ {
				adj[i] = append(adj[i], NodeID((i+d)%n))
			}
		}
		nw := New(nodes)
		nw.SetTopology(adj)
		nw.SetWorkers(workers)
		st := nw.Run(9)
		traces := make([][]int64, n)
		for i, tn := range tns {
			traces[i] = tn.trace
		}
		return traces, st
	}
	wantTraces, wantStats := run(1)
	for _, workers := range []int{2, 4, 16} {
		traces, stats := run(workers)
		if stats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, wantStats)
		}
		for i := range traces {
			for j := range wantTraces[i] {
				if traces[i][j] != wantTraces[i][j] {
					t.Fatalf("workers=%d: node %d trace diverges at round %d", workers, i, j)
				}
			}
		}
	}
}

// TestSteadyStateRoundAllocationFree is the allocation-regression gate for
// the persistent runtime: once inbox/outbox buffers have warmed up, a round
// on a fixed topology must not allocate at all (single-worker path, which
// is what GOMAXPROCS=1 CI exercises).
func TestSteadyStateRoundAllocationFree(t *testing.T) {
	const n = 64
	nodes := make([]Node, n)
	adj := make([][]NodeID, n)
	for i := range nodes {
		l, r := NodeID((i+n-1)%n), NodeID((i+1)%n)
		nodes[i] = &benchStyleNode{left: l, right: r}
		adj[i] = []NodeID{l, r}
	}
	nw := New(nodes)
	nw.SetTopology(adj)
	nw.SetWorkers(1)
	nw.Run(4) // warm up buffers
	if allocs := testing.AllocsPerRun(50, func() { nw.Run(1) }); allocs != 0 {
		t.Errorf("steady-state round: %v allocs/op, want 0", allocs)
	}
}

// benchStyleNode mirrors the BenchmarkSimRound node: allocation-free Steps.
type benchStyleNode struct {
	left, right NodeID
	out         []Message
}

func (b *benchStyleNode) Step(round int, inbox []Message) []Message {
	b.out = b.out[:0]
	b.out = append(b.out,
		Message{To: b.left, Payload: "m"},
		Message{To: b.right, Payload: "m"})
	return b.out
}

// TestTopologyUnlistedSendersUnrestricted pins the adjacency-slice port of
// SetTopology to the original map semantics: senders beyond the passed
// adjacency stay unrestricted, listed senders (even with empty lists) are
// restricted, and SetTopology(nil) clears everything.
func TestTopologyUnlistedSendersUnrestricted(t *testing.T) {
	nodes := []Node{&recorderNode{}, &burstNode{target: 0, count: 1}, &burstNode{target: 0, count: 1}}
	nw := New(nodes)
	nw.SetTopology([][]NodeID{0: {}, 1: {}}) // node 2 unlisted → unrestricted
	st := nw.Run(2)
	if st.Delivered != 1 || st.Dropped != 1 {
		t.Fatalf("delivered/dropped = %d/%d, want 1/1 (only the unlisted sender passes)", st.Delivered, st.Dropped)
	}
	nw.SetTopology(nil)
	st = nw.Run(1)
	if st.Dropped != 1 {
		t.Fatalf("clearing topology changed drop accounting: %+v", st)
	}
}
