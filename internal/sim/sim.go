// Package sim is the message-passing runtime the protocol simulations
// execute on: a synchronous-round network of nodes whose per-round Step
// functions run concurrently on a goroutine worker pool ("share memory by
// communicating" — nodes interact only through messages).
//
// The model matches the paper's notion of steps: a message sent in round r
// is delivered at the start of round r+1. Byzantine nodes are ordinary
// nodes with arbitrary Step implementations; the adversary's global
// knowledge is modeled by letting Byzantine node constructors share state
// among themselves (the paper's single coordinating adversary).
//
// The runtime is allocation-free in steady state: the worker pool is
// started once per Run (not once per round), inboxes are double-buffered
// and reused round over round, and outbox routing is sharded by recipient
// across the same workers. Each recipient's inbox is filled by exactly one
// worker scanning senders in ascending order, so inboxes arrive sorted by
// (sender, send order) — a total, schedule-independent order that needs no
// post-hoc sort.
//
// Network faults — message drops, whole-round delays, and round-windowed
// partitions — are injected deterministically via SetFaults: every
// per-message fate is a pure function of (fault seed, round, sender,
// recipient, send index), so a faulty run is byte-identical at every
// worker count, exactly like a fault-free one.
package sim

import (
	"runtime"
	"slices"
	"sync/atomic"

	"repro/internal/engine"
)

// NodeID indexes a node in the network.
type NodeID int

// Message is one unit of communication. Payload types are protocol-defined;
// payloads must be treated as immutable once sent.
type Message struct {
	From, To NodeID
	Payload  any
}

// Node is a protocol participant. Step is called once per round with the
// messages delivered this round and returns the messages to deliver next
// round. The inbox is sorted by sender, with multiple messages from one
// sender appearing in the order that sender returned them — a deterministic
// total order at every worker count. Under fault injection (SetFaults)
// delayed redeliveries precede the round's on-time messages, ordered by
// (send round, sender, send order) — older traffic first, still a
// deterministic total order. Step implementations must not retain
// or mutate the inbox slice: its backing array is reused by a later round.
// The returned outbox is only read until that node's next Step, so nodes
// may reuse one backing slice across rounds.
type Node interface {
	Step(round int, inbox []Message) []Message
}

// Network executes nodes in synchronous rounds.
type Network struct {
	nodes []Node
	// adj restricts communication: a message from sender u < adjRestricted
	// is dropped unless its recipient appears in the sorted slice adj[u].
	// Senders at or beyond adjRestricted are unrestricted. This models
	// overlay-topology communication (good nodes only talk to neighbors).
	adj           [][]NodeID
	adjRestricted int
	// workers caps the Step worker pool; defaults to GOMAXPROCS.
	workers int

	inbox    [][]Message // current-round inboxes, buffers reused across rounds
	next     [][]Message // next-round inboxes under construction by routing
	outboxes [][]Message

	// faults, when non-nil, injects deterministic drops, delays and
	// partitions into routing; pending holds each recipient's delayed
	// messages awaiting their delivery round (single writer: the shard
	// owner of that recipient).
	faults  *faultState
	pending [][]pendingMsg

	curRound int // round number workers read during a phase
	stats    Stats
}

// Stats aggregates execution counters. Topology filtering and fault
// injection are accounted separately: Dropped counts messages the overlay
// was never going to carry (topology restriction, out-of-range recipients)
// while FaultDropped counts messages the fault layer destroyed — so a
// faulty run's loss is auditable against its fault configuration.
type Stats struct {
	Rounds    int
	Delivered int64 // messages delivered to nodes (incl. delayed redeliveries)
	Dropped   int64 // messages dropped by topology restriction / out-of-range
	// FaultDropped counts messages destroyed by injected faults (drop
	// draws and partition windows). Always zero without SetFaults.
	FaultDropped int64
	// Delayed counts messages deferred by the delay draw; each is counted
	// in Delivered again when its round comes up.
	Delayed int64
}

// routeTally is one routing worker's private counters, merged into Stats
// after the phase so the hot loop shares nothing.
type routeTally struct {
	delivered, dropped, faultDropped, delayed int64
}

// add folds one tally into the cumulative stats.
func (st *Stats) add(rc routeTally) {
	st.Delivered += rc.delivered
	st.Dropped += rc.dropped
	st.FaultDropped += rc.faultDropped
	st.Delayed += rc.delayed
}

// New creates a network over the given nodes with unrestricted topology.
func New(nodes []Node) *Network {
	return &Network{
		nodes:   nodes,
		workers: runtime.GOMAXPROCS(0),
		inbox:   make([][]Message, len(nodes)),
		next:    make([][]Message, len(nodes)),
	}
}

// SetWorkers caps the Step worker pool at w (minimum 1; values above the
// node count are clamped). The schedule never affects results, so this is a
// wall-clock knob only — and a test hook for exercising the pool.
func (nw *Network) SetWorkers(w int) {
	if w < 1 {
		w = 1
	}
	nw.workers = w
}

// SetTopology restricts node u to send only to the IDs in adj[u]; nodes
// beyond len(adj) stay unrestricted. Passing nil removes the restriction.
func (nw *Network) SetTopology(adj [][]NodeID) {
	if adj == nil {
		nw.adj = nil
		nw.adjRestricted = 0
		return
	}
	nw.adj = make([][]NodeID, len(adj))
	nw.adjRestricted = len(adj)
	for u, nbs := range adj {
		s := make([]NodeID, len(nbs))
		copy(s, nbs)
		slices.Sort(s)
		nw.adj[u] = s
	}
}

// allowed reports whether the topology permits a message from u to `to`.
func (nw *Network) allowed(u int, to NodeID) bool {
	if u >= nw.adjRestricted {
		return true
	}
	_, ok := slices.BinarySearch(nw.adj[u], to)
	return ok
}

// Len returns the number of nodes.
func (nw *Network) Len() int { return len(nw.nodes) }

// Stats returns the counters accumulated so far.
func (nw *Network) Stats() Stats { return nw.stats }

// routeShard routes every outbox message whose recipient falls in shard s
// of `shards` into the next-round inboxes, reusing their backing arrays.
// Senders are scanned in ascending order, so each inbox is filled already
// sorted by (sender, send order). Exactly one shard (s = 0) accounts for
// messages with out-of-range recipients, which belong to no shard.
//
// Every shard scans all outbox headers and skips foreign recipients: the
// cheap O(m) header scan is duplicated per worker so that the expensive
// parts — topology checks, fault draws and inbox appends — divide across
// workers while each inbox keeps a single writer (which is what makes the
// delivery order schedule-independent without a sort or merge step).
//
// Under fault injection the shard owner of a recipient also owns its
// delayed-message queue: due redeliveries are flushed into the inbox first
// (they are the oldest traffic), then the round's surviving on-time
// messages. Every fault fate is a pure function of the message coordinates
// (see faultState), so shard boundaries — and therefore worker counts —
// never leak into results.
func (nw *Network) routeShard(s, shards int, rc *routeTally) {
	n := len(nw.nodes)
	lo, hi := s*n/shards, (s+1)*n/shards
	fs := nw.faults
	round := nw.curRound
	for d := lo; d < hi; d++ {
		nw.next[d] = nw.next[d][:0]
		if fs == nil || len(nw.pending[d]) == 0 {
			continue
		}
		// Flush redeliveries due this round; keep the rest (in-place
		// filter — the queue stays in enqueue order).
		q := nw.pending[d][:0]
		for _, pm := range nw.pending[d] {
			if pm.at == round+1 {
				nw.next[d] = append(nw.next[d], pm.m)
				rc.delivered++
			} else {
				q = append(q, pm)
			}
		}
		nw.pending[d] = q
	}
	for u, out := range nw.outboxes {
		for k, m := range out {
			d := int(m.To)
			if d < 0 || d >= n {
				if s == 0 {
					rc.dropped++
				}
				continue
			}
			if d < lo || d >= hi {
				continue
			}
			if !nw.allowed(u, m.To) {
				rc.dropped++
				continue
			}
			m.From = NodeID(u) // senders cannot forge From
			if fs != nil {
				if fs.partitioned(round, m.From, m.To) {
					rc.faultDropped++
					continue
				}
				drop, delta := fs.fate(round, u, m.To, k)
				if drop {
					rc.faultDropped++
					continue
				}
				if delta > 0 {
					nw.pending[d] = append(nw.pending[d], pendingMsg{at: round + 1 + delta, m: m})
					rc.delayed++
					continue
				}
			}
			nw.next[d] = append(nw.next[d], m)
			rc.delivered++
		}
	}
}

// Run executes `rounds` synchronous rounds and returns the cumulative stats.
func (nw *Network) Run(rounds int) Stats {
	n := len(nw.nodes)
	if nw.outboxes == nil {
		nw.outboxes = make([][]Message, n)
	}
	if nw.next == nil { // networks predating double-buffering (zero value)
		nw.next = make([][]Message, n)
	}
	workers := nw.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return nw.runSerial(rounds)
	}
	return nw.runPool(rounds, workers)
}

// runSerial is the single-worker fast path: no goroutines, no atomics, and
// zero allocations per round in steady state. Kept out of runPool so its
// locals are not forced to the heap by the pool's closures.
func (nw *Network) runSerial(rounds int) Stats {
	var rc routeTally
	for r := 0; r < rounds; r++ {
		nw.curRound = nw.stats.Rounds
		for i, nd := range nw.nodes {
			nw.outboxes[i] = nd.Step(nw.curRound, nw.inbox[i])
		}
		nw.routeShard(0, 1, &rc)
		nw.inbox, nw.next = nw.next, nw.inbox
		nw.stats.Rounds++
	}
	nw.stats.add(rc)
	return nw.stats
}

// runPool executes rounds on an engine.Pool started once for the whole
// Run (the pool extraction of the runtime's original bespoke worker loop).
// Each round broadcasts two phases: Step (nodes claimed off a shared
// cursor) and Route (recipient shards claimed the same way). The pool's
// phase hand-off and wait order all cross-worker memory accesses.
func (nw *Network) runPool(rounds, workers int) Stats {
	n := len(nw.nodes)
	var (
		cursor  atomic.Int64
		tallies = make([]routeTally, workers)
	)
	pool := engine.NewPool(workers)
	defer pool.Close()
	stepPhase := func(w int) {
		round := nw.curRound
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				break
			}
			nw.outboxes[i] = nw.nodes[i].Step(round, nw.inbox[i])
		}
	}
	routePhase := func(w int) {
		for {
			s := int(cursor.Add(1)) - 1
			if s >= workers {
				break
			}
			nw.routeShard(s, workers, &tallies[w])
		}
	}
	for r := 0; r < rounds; r++ {
		nw.curRound = nw.stats.Rounds
		cursor.Store(0)
		pool.Run(stepPhase)
		cursor.Store(0)
		pool.Run(routePhase)
		nw.inbox, nw.next = nw.next, nw.inbox
		nw.stats.Rounds++
	}
	for w := 0; w < workers; w++ {
		nw.stats.add(tallies[w])
	}
	return nw.stats
}

// Broadcast builds a message list addressed to every ID in to.
func Broadcast(payload any, to []NodeID) []Message {
	out := make([]Message, len(to))
	for i, v := range to {
		out[i] = Message{To: v, Payload: payload}
	}
	return out
}
