// Package sim is the message-passing runtime the protocol simulations
// execute on: a synchronous-round network of nodes whose per-round Step
// functions run concurrently on a goroutine worker pool ("share memory by
// communicating" — nodes interact only through messages).
//
// The model matches the paper's notion of steps: a message sent in round r
// is delivered at the start of round r+1. Byzantine nodes are ordinary
// nodes with arbitrary Step implementations; the adversary's global
// knowledge is modeled by letting Byzantine node constructors share state
// among themselves (the paper's single coordinating adversary).
package sim

import (
	"runtime"
	"sort"
	"sync"
)

// NodeID indexes a node in the network.
type NodeID int

// Message is one unit of communication. Payload types are protocol-defined;
// payloads must be treated as immutable once sent.
type Message struct {
	From, To NodeID
	Payload  any
}

// Node is a protocol participant. Step is called once per round with the
// messages delivered this round (sorted by sender for determinism) and
// returns the messages to deliver next round. Step implementations must not
// retain or mutate the inbox slice.
type Node interface {
	Step(round int, inbox []Message) []Message
}

// Network executes nodes in synchronous rounds.
type Network struct {
	nodes []Node
	// adj restricts communication: if non-nil, a message from u is dropped
	// unless its recipient appears in adj[u]. This models overlay-topology
	// communication (good nodes only talk to neighbors).
	adj []map[NodeID]bool
	// workers caps the Step worker pool; defaults to GOMAXPROCS.
	workers int

	inbox [][]Message
	stats Stats
}

// Stats aggregates execution counters.
type Stats struct {
	Rounds    int
	Delivered int64 // messages delivered to nodes
	Dropped   int64 // messages dropped by topology restriction
}

// New creates a network over the given nodes with unrestricted topology.
func New(nodes []Node) *Network {
	return &Network{
		nodes:   nodes,
		workers: runtime.GOMAXPROCS(0),
		inbox:   make([][]Message, len(nodes)),
	}
}

// SetTopology restricts node u to send only to the IDs in adj[u].
// Passing nil removes the restriction.
func (nw *Network) SetTopology(adj [][]NodeID) {
	if adj == nil {
		nw.adj = nil
		return
	}
	nw.adj = make([]map[NodeID]bool, len(nw.nodes))
	for u, nbs := range adj {
		m := make(map[NodeID]bool, len(nbs))
		for _, v := range nbs {
			m[v] = true
		}
		nw.adj[u] = m
	}
}

// Len returns the number of nodes.
func (nw *Network) Len() int { return len(nw.nodes) }

// Stats returns the counters accumulated so far.
func (nw *Network) Stats() Stats { return nw.stats }

// Run executes `rounds` synchronous rounds and returns the cumulative stats.
func (nw *Network) Run(rounds int) Stats {
	n := len(nw.nodes)
	outboxes := make([][]Message, n)
	for r := 0; r < rounds; r++ {
		round := nw.stats.Rounds
		// Fan Step calls out over a bounded worker pool (Effective Go's
		// fixed-worker pattern).
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < nw.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					in := nw.inbox[i]
					sort.Slice(in, func(a, b int) bool {
						if in[a].From != in[b].From {
							return in[a].From < in[b].From
						}
						return a < b
					})
					outboxes[i] = nw.nodes[i].Step(round, in)
				}
			}()
		}
		for i := 0; i < n; i++ {
			work <- i
		}
		close(work)
		wg.Wait()

		// Route outboxes into next-round inboxes.
		for i := range nw.inbox {
			nw.inbox[i] = nil
		}
		for u, out := range outboxes {
			for _, m := range out {
				m.From = NodeID(u) // senders cannot forge From
				if m.To < 0 || int(m.To) >= n {
					nw.stats.Dropped++
					continue
				}
				if nw.adj != nil && nw.adj[u] != nil && !nw.adj[u][m.To] {
					nw.stats.Dropped++
					continue
				}
				nw.inbox[m.To] = append(nw.inbox[m.To], m)
				nw.stats.Delivered++
			}
			outboxes[u] = nil
		}
		nw.stats.Rounds++
	}
	return nw.stats
}

// Broadcast builds a message list addressed to every ID in to.
func Broadcast(payload any, to []NodeID) []Message {
	out := make([]Message, len(to))
	for i, v := range to {
		out[i] = Message{To: v, Payload: payload}
	}
	return out
}
