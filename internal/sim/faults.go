package sim

import (
	"slices"

	"repro/internal/engine"
)

// Faults configures deterministic network fault injection: message drops,
// round-shifted delayed redelivery, and round-windowed partitions. Every
// per-message fate is a pure function of (Seed, round, sender, recipient,
// send index) — never of scheduling — so a faulty run is byte-identical at
// every worker count, exactly like a fault-free one. The zero value (and a
// nil *Faults) injects nothing.
//
// Faults compose with the topology restriction: a message must first be
// permitted by the topology (otherwise it counts as Dropped), then survive
// the partition and drop draws (otherwise FaultDropped), then the delay
// draw (Delayed; redelivered whole rounds later). The two drop counters
// stay separate so fault runs remain auditable — topology filtering is the
// overlay working as designed, fault drops are the adversary's weather.
type Faults struct {
	// Seed roots the fault randomness stream. It is deliberately separate
	// from any node-level seed so the same protocol run can be replayed
	// under different weather (or the same weather over different
	// protocols) by varying one knob.
	Seed int64
	// Drop is the per-message drop probability in [0,1].
	Drop float64
	// Delay is the per-message delay probability in [0,1]. A delayed
	// message sent in round r is delivered at the start of round
	// r+1+δ with δ drawn uniformly from {1, …, MaxDelay} — a whole-round
	// shift, preserving the synchronous model.
	Delay float64
	// MaxDelay bounds the extra rounds a delayed message waits; values
	// below 1 are treated as 1.
	MaxDelay int
	// Partitions lists round-windowed network splits. Multiple windows may
	// overlap; a message crossing any active boundary is dropped.
	Partitions []Partition
}

// Partition isolates a node set for a window of rounds: while
// From ≤ round < Until, every message between an Isolate member and a
// non-member is dropped (in both directions) and counted as FaultDropped.
// Traffic within the isolated set, and within its complement, flows
// normally — the classic split-brain shape.
type Partition struct {
	From, Until int
	Isolate     []NodeID
}

// faultState is the network's compiled fault configuration.
type faultState struct {
	cfg  Faults
	base uint64 // hash-derived root of the per-message fate streams
	// isolated[p] is the sorted Isolate set of cfg.Partitions[p].
	isolated [][]NodeID
}

// SetFaults installs (or, with nil, removes) fault injection. The
// configuration is copied; pending delayed messages from a previous fault
// configuration are discarded.
func (nw *Network) SetFaults(f *Faults) {
	if f == nil {
		nw.faults = nil
		nw.pending = nil
		return
	}
	cfg := *f
	if cfg.MaxDelay < 1 {
		cfg.MaxDelay = 1
	}
	st := &faultState{
		cfg: cfg,
		// One TrialSeed hash roots the whole fault stream; per-message
		// fates then mix in their coordinates (see msgSeed).
		base:     uint64(engine.TrialSeed(cfg.Seed, "sim/faults", 0)),
		isolated: make([][]NodeID, len(cfg.Partitions)),
	}
	for p, part := range cfg.Partitions {
		s := make([]NodeID, len(part.Isolate))
		copy(s, part.Isolate)
		slices.Sort(s)
		st.isolated[p] = s
	}
	nw.faults = st
	nw.pending = make([][]pendingMsg, len(nw.nodes))
}

// pendingMsg is one delayed message waiting for its delivery round.
type pendingMsg struct {
	at int // round whose inbox receives the message
	m  Message
}

// mix64 is the splitmix64 finalizer — the avalanche step engine.Stream is
// built on, reused here to fold message coordinates into the fault stream.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// msgSeed derives the fate-stream seed of the k-th message of sender u's
// round-r outbox to recipient d: the TrialSeed-rooted base chained through
// one avalanche per coordinate. The composition is injective over the
// coordinate ranges any simulation reaches (each coordinate is absorbed in
// a separate full-width step), so distinct messages get independent
// streams while identical runs get identical fates — regardless of which
// worker routes the message.
func (fs *faultState) msgSeed(r int, u int, d NodeID, k int) int64 {
	s := mix64(fs.base ^ uint64(r)*0x9e3779b97f4a7c15)
	s = mix64(s ^ uint64(u)*0xbf58476d1ce4e5b9)
	s = mix64(s ^ uint64(d)*0x94d049bb133111eb)
	s = mix64(s ^ uint64(k)*0xd6e8feb86659fd93)
	return int64(s >> 1)
}

// partitioned reports whether an active partition window separates u from d
// in round r. Pure data lookup — no randomness.
func (fs *faultState) partitioned(r int, u NodeID, d NodeID) bool {
	for p, part := range fs.cfg.Partitions {
		if r < part.From || r >= part.Until {
			continue
		}
		_, uIn := slices.BinarySearch(fs.isolated[p], u)
		_, dIn := slices.BinarySearch(fs.isolated[p], d)
		if uIn != dIn {
			return true
		}
	}
	return false
}

// fate draws the k-th message's outcome: drop, deliver after delay δ > 0,
// or deliver on time (δ = 0). One engine.Stream per message, seeded from
// the message's coordinates.
func (fs *faultState) fate(r int, u int, d NodeID, k int) (drop bool, delta int) {
	if fs.cfg.Drop <= 0 && fs.cfg.Delay <= 0 {
		return false, 0
	}
	rng := engine.NewStream(fs.msgSeed(r, u, d, k))
	if fs.cfg.Drop > 0 && rng.Float64() < fs.cfg.Drop {
		return true, 0
	}
	if fs.cfg.Delay > 0 && rng.Float64() < fs.cfg.Delay {
		return false, 1 + rng.Intn(fs.cfg.MaxDelay)
	}
	return false, 0
}
