package sim

import (
	"testing"
)

// pairNode sends one message per round to a fixed peer and records what it
// receives — the minimal bidirectional traffic for fault accounting tests.
type pairNode struct {
	peer NodeID
	got  []int
	out  []Message
}

func (p *pairNode) Step(round int, inbox []Message) []Message {
	for _, m := range inbox {
		p.got = append(p.got, m.Payload.(int))
	}
	p.out = p.out[:0]
	p.out = append(p.out, Message{To: p.peer, Payload: round})
	return p.out
}

// TestFaultsZeroValueInjectsNothing pins the no-op contract: a zero Faults
// config changes no delivery and no counter.
func TestFaultsZeroValueInjectsNothing(t *testing.T) {
	build := func(f *Faults) Stats {
		a := &pairNode{peer: 1}
		b := &pairNode{peer: 0}
		nw := New([]Node{a, b})
		nw.SetFaults(f)
		return nw.Run(10)
	}
	clean := build(nil)
	zero := build(&Faults{Seed: 7})
	if clean != zero {
		t.Fatalf("zero-value faults changed stats: %+v vs %+v", clean, zero)
	}
	if zero.FaultDropped != 0 || zero.Delayed != 0 {
		t.Fatalf("zero-value faults produced fault counters: %+v", zero)
	}
}

// TestFaultDropRate checks the drop draw destroys roughly the configured
// fraction, counts it as FaultDropped (never Dropped), and conserves
// messages: sent = delivered + dropped.
func TestFaultDropRate(t *testing.T) {
	const n, rounds = 40, 50
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &pairNode{peer: NodeID((i + 1) % n)}
	}
	nw := New(nodes)
	nw.SetFaults(&Faults{Seed: 1, Drop: 0.3})
	st := nw.Run(rounds)
	sent := int64(n * rounds)
	if st.Delivered+st.FaultDropped != sent {
		t.Fatalf("delivered %d + fault-dropped %d != sent %d", st.Delivered, st.FaultDropped, sent)
	}
	if st.Dropped != 0 {
		t.Fatalf("fault drops leaked into the topology counter: %+v", st)
	}
	frac := float64(st.FaultDropped) / float64(sent)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("drop fraction %.3f, want ≈0.30", frac)
	}
}

// TestFaultDelayRedelivery checks a delayed message is really redelivered
// whole rounds later: with Delay 1 every message shifts by 1..MaxDelay
// extra rounds, nothing is lost over a long run, and redeliveries land
// before on-time traffic.
func TestFaultDelayRedelivery(t *testing.T) {
	a := &pairNode{peer: 1}
	b := &pairNode{peer: 0}
	nw := New([]Node{a, b})
	nw.SetFaults(&Faults{Seed: 3, Delay: 1, MaxDelay: 3})
	const rounds = 60
	st := nw.Run(rounds)
	if st.Delayed != int64(2*rounds) {
		t.Fatalf("delayed = %d, want %d (every message delays at Delay=1)", st.Delayed, 2*rounds)
	}
	// Each node received every payload 0..k for some prefix k bounded by
	// the tail still pending; payloads may arrive out of order across
	// rounds but none may be lost or duplicated.
	for name, node := range map[string]*pairNode{"a": a, "b": b} {
		seen := map[int]int{}
		for _, v := range node.got {
			seen[v]++
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("%s: payload %d delivered %d times", name, v, c)
			}
		}
		if len(seen) < rounds-4 { // MaxDelay+1 rounds may still be in flight
			t.Fatalf("%s: only %d/%d payloads arrived", name, len(seen), rounds)
		}
	}
}

// TestFaultPartitionWindow checks a partition window drops exactly the
// boundary-crossing traffic during its rounds and heals afterwards.
func TestFaultPartitionWindow(t *testing.T) {
	// 0↔1 and 2↔3 pairs; isolate {0,1} for rounds [2,5).
	nodes := []Node{
		&pairNode{peer: 1}, &pairNode{peer: 0},
		&pairNode{peer: 3}, &pairNode{peer: 2},
	}
	nw := New(nodes)
	nw.SetFaults(&Faults{Seed: 1, Partitions: []Partition{{From: 2, Until: 5, Isolate: []NodeID{0, 1}}}})
	st := nw.Run(10)
	// Intra-pair traffic never crosses the {0,1} boundary, so nothing drops.
	if st.FaultDropped != 0 {
		t.Fatalf("intra-side traffic dropped: %+v", st)
	}
	// Re-wire 0→2 (crosses the boundary) and re-run the window.
	cross := []Node{
		&pairNode{peer: 2}, &pairNode{peer: 0},
		&pairNode{peer: 0}, &pairNode{peer: 2},
	}
	nw = New(cross)
	nw.SetFaults(&Faults{Seed: 1, Partitions: []Partition{{From: 2, Until: 5, Isolate: []NodeID{0, 1}}}})
	st = nw.Run(10)
	// Crossing links: 0→2, 2→0 and 1→0 stays inside, 3→2 inside. During
	// rounds 2,3,4 the two crossing links each lose one message per round.
	if st.FaultDropped != 2*3 {
		t.Fatalf("fault-dropped = %d, want 6 (2 crossing links × 3 windowed rounds)", st.FaultDropped)
	}
	if st.Delivered != 4*10-6 {
		t.Fatalf("delivered = %d, want %d", st.Delivered, 4*10-6)
	}
}

// TestFaultyWorkerCountNeverChangesResults extends the repo's worker-count
// invariance gate to faulty runs: one deterministic traffic pattern under
// drops + delays + a partition window must produce identical per-node
// observation traces and stats at every pool size. This is the regression
// the fault layer's pure-function-of-coordinates design exists to pass.
func TestFaultyWorkerCountNeverChangesResults(t *testing.T) {
	run := func(workers int) ([][]int64, Stats) {
		const n = 31
		nodes := make([]Node, n)
		tns := make([]*trafficNode, n)
		adj := make([][]NodeID, n)
		for i := range nodes {
			tns[i] = &trafficNode{self: NodeID(i), n: n}
			nodes[i] = tns[i]
			for d := 1; d <= 4; d++ {
				adj[i] = append(adj[i], NodeID((i+d)%n))
			}
		}
		nw := New(nodes)
		nw.SetTopology(adj)
		nw.SetFaults(&Faults{
			Seed: 42, Drop: 0.15, Delay: 0.25, MaxDelay: 3,
			Partitions: []Partition{{From: 3, Until: 6, Isolate: []NodeID{0, 1, 2, 3, 4, 5, 6, 7}}},
		})
		nw.SetWorkers(workers)
		st := nw.Run(12)
		traces := make([][]int64, n)
		for i, tn := range tns {
			traces[i] = tn.trace
		}
		return traces, st
	}
	wantTraces, wantStats := run(1)
	if wantStats.FaultDropped == 0 || wantStats.Delayed == 0 {
		t.Fatalf("fault config injected nothing: %+v", wantStats)
	}
	for _, workers := range []int{2, 4, 16} {
		traces, stats := run(workers)
		if stats != wantStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, wantStats)
		}
		for i := range traces {
			if len(traces[i]) != len(wantTraces[i]) {
				t.Fatalf("workers=%d: node %d trace length diverges", workers, i)
			}
			for j := range wantTraces[i] {
				if traces[i][j] != wantTraces[i][j] {
					t.Fatalf("workers=%d: node %d trace diverges at round %d", workers, i, j)
				}
			}
		}
	}
}

// TestFaultFateIsPureFunctionOfCoordinates re-runs one faulty configuration
// twice and demands identical stats and traces — the reproducibility half
// of the determinism contract (the invariance test covers scheduling).
func TestFaultFateIsPureFunctionOfCoordinates(t *testing.T) {
	run := func() Stats {
		const n = 16
		nodes := make([]Node, n)
		for i := range nodes {
			nodes[i] = &pairNode{peer: NodeID((i + 5) % n)}
		}
		nw := New(nodes)
		nw.SetFaults(&Faults{Seed: 9, Drop: 0.2, Delay: 0.2, MaxDelay: 2})
		return nw.Run(30)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identical configs diverged: %+v vs %+v", a, b)
	}
	// And a different fault seed must change the weather.
	nodes := make([]Node, 16)
	for i := range nodes {
		nodes[i] = &pairNode{peer: NodeID((i + 5) % 16)}
	}
	nw := New(nodes)
	nw.SetFaults(&Faults{Seed: 10, Drop: 0.2, Delay: 0.2, MaxDelay: 2})
	if c := nw.Run(30); c == a {
		t.Fatalf("fault seeds 9 and 10 produced identical stats %+v — seed not wired", c)
	}
}
