// Package secroute implements secure routing as an actual message protocol
// — the mechanism §I of the paper only sketches: "For groups G1 and G2
// along a route, all members of G1 transmit messages to all members of G2.
// This all-to-all exchange, followed by majority filtering by each
// non-faulty ID in G2, guarantees correctness."
//
// Where internal/groups scores a search by whether its path touches a red
// group, this package transmits an actual value hop by hop, with Byzantine
// members corrupting every copy they relay, and each receiving member
// majority-filtering the copies it got. It demonstrates (and its tests and
// experiment E14 verify) the two directions of the paper's claim:
//
//   - along an all-blue path, the value arrives intact even though good
//     groups contain a minority of bad members;
//   - once a group with a bad majority is traversed, the value is lost or
//     forged — which is why red groups fail searches.
package secroute

import (
	"repro/internal/groups"
	"repro/internal/ring"
)

// HopReport describes the delivery state at one group along the route.
type HopReport struct {
	Leader ring.Point
	// GoodCopies / BadCopies count the value copies held by good members
	// after majority filtering at this hop (bad members hold whatever the
	// adversary likes; we track them for message accounting only).
	GoodCopies int
	// Intact reports whether every good member of this group holds the
	// original value after filtering.
	Intact bool
}

// Result is the outcome of routing one value.
type Result struct {
	Hops []HopReport
	// Delivered reports whether a strict majority of the final group's
	// members hold the original value — the condition for the group to
	// act on it (answer the query, store the data) despite its bad
	// members. A good minority inside a majority-bad final group may still
	// hold genuine copies, but the group as a unit is compromised.
	Delivered bool
	Messages  int64 // total member-to-member messages (the Θ(|G|²) per hop)
}

// Route transmits a value from the group of src toward the owner of key in
// g, simulating the per-member all-to-all exchange with majority
// filtering. Bad members always forward a forgery (the strongest
// value-corruption behavior; collusion is implicit since all forgeries
// agree). Only the genuine/forged state of each copy matters, so the
// payload itself is elided.
func Route(g *groups.Graph, src, key ring.Point) Result {
	path, ok := g.Overlay().Route(src, key)
	res := Result{}
	if !ok {
		return res
	}
	// holdings[i] = true if good member i of the current group holds the
	// original value (bad members never hold it honestly).
	cur := g.Group(src)
	if cur == nil {
		return res
	}
	holdings := make([]bool, cur.Size())
	for i, m := range cur.Members {
		holdings[i] = !m.Bad // originator's good members all start with the value
	}
	res.Hops = append(res.Hops, report(cur, holdings))

	for _, w := range path[1:] {
		next := g.Group(w)
		if next == nil {
			return res
		}
		res.Messages += int64(cur.Size()) * int64(next.Size())
		holdings = transferHop(cur, holdings, next)
		res.Hops = append(res.Hops, report(next, holdings))
		cur = next
	}
	final := res.Hops[len(res.Hops)-1]
	res.Delivered = 2*final.GoodCopies > cur.Size()
	return res
}

// transferHop performs one all-to-all exchange: every member of from sends
// its copy to every member of to; each good member of to keeps the
// majority value among the copies received. A good receiver ends up with
// the original value iff the original copies strictly outnumber the
// forgeries among from's members.
func transferHop(from *groups.Group, holdings []bool, to *groups.Group) []bool {
	genuine, forged := 0, 0
	for i, m := range from.Members {
		if m.Bad || !holdings[i] {
			forged++ // bad member or good member already poisoned
		} else {
			genuine++
		}
	}
	out := make([]bool, to.Size())
	if genuine > forged {
		for i, m := range to.Members {
			out[i] = !m.Bad
		}
	}
	// else: majority filtering fails — no good receiver recovers the value.
	return out
}

func intact(grp *groups.Group, holdings []bool) bool {
	for i, m := range grp.Members {
		if !m.Bad && !holdings[i] {
			return false
		}
	}
	return true
}

func report(grp *groups.Group, holdings []bool) HopReport {
	h := HopReport{Leader: grp.Leader, Intact: intact(grp, holdings)}
	for i, m := range grp.Members {
		if !m.Bad && holdings[i] {
			h.GoodCopies++
		}
	}
	return h
}
