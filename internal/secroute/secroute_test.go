package secroute

import (
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/ring"
)

func build(n int, beta float64, seed int64) *groups.Graph {
	rng := rand.New(rand.NewSource(seed))
	pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	params := groups.DefaultParams()
	params.Beta = beta
	return groups.Build(ov, pl.BadSet(), params, hashes.H1)
}

func TestDeliveryWithNoAdversary(t *testing.T) {
	g := build(512, 0, 1)
	rng := rand.New(rand.NewSource(2))
	r := g.Overlay().Ring()
	for i := 0; i < 200; i++ {
		src := r.At(rng.Intn(r.Len()))
		res := Route(g, src, ring.Point(rng.Uint64()))
		if !res.Delivered {
			t.Fatal("delivery must succeed with no adversary")
		}
		for _, h := range res.Hops {
			if !h.Intact {
				t.Fatal("every hop must be intact with no adversary")
			}
		}
	}
}

func TestDeliveryMatchesBluePathPrediction(t *testing.T) {
	// The protocol-level outcome must agree with the graph-level search
	// scoring: delivered ⟺ the overlay route avoids majority-bad groups.
	g := build(1024, 0.15, 3)
	rng := rand.New(rand.NewSource(4))
	r := g.Overlay().Ring()
	agree := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		src := r.At(rng.Intn(r.Len()))
		key := ring.Point(rng.Uint64())
		proto := Route(g, src, key)
		score := g.Search(src, key)
		if proto.Delivered == score.OK {
			agree++
		}
	}
	if agree != trials {
		t.Errorf("protocol and graph scoring disagree on %d/%d routes", trials-agree, trials)
	}
}

func TestMajorityFilteringInsideGoodGroups(t *testing.T) {
	// Good groups containing a bad *minority* must still deliver — the
	// heart of the paper's secure-routing claim.
	g := build(1024, 0.10, 5)
	rng := rand.New(rand.NewSource(6))
	r := g.Overlay().Ring()
	sawMixedGroupDelivery := false
	for i := 0; i < 400; i++ {
		src := r.At(rng.Intn(r.Len()))
		res := Route(g, src, ring.Point(rng.Uint64()))
		if !res.Delivered {
			continue
		}
		for hi, h := range res.Hops {
			grp := g.Group(h.Leader)
			if grp.BadCount() > 0 && !grp.Bad {
				sawMixedGroupDelivery = true
				if !h.Intact {
					t.Fatalf("hop %d: good group with bad minority lost the value", hi)
				}
			}
		}
	}
	if !sawMixedGroupDelivery {
		t.Error("test never exercised a mixed good group; raise beta or trials")
	}
}

func TestRedGroupBreaksChainPermanently(t *testing.T) {
	// Once a majority-bad group is traversed, no later hop can recover.
	g := build(512, 0.25, 7)
	rng := rand.New(rand.NewSource(8))
	r := g.Overlay().Ring()
	sawBreak := false
	for i := 0; i < 600 && !sawBreak; i++ {
		src := r.At(rng.Intn(r.Len()))
		res := Route(g, src, ring.Point(rng.Uint64()))
		if res.Delivered {
			continue
		}
		sawBreak = true
		broken := false
		for _, h := range res.Hops {
			if broken && h.GoodCopies > 0 {
				t.Fatal("value reappeared after a majority-bad hop")
			}
			if !h.Intact {
				broken = true
			}
		}
		if !broken {
			t.Fatal("undelivered route must contain a broken hop")
		}
	}
	if !sawBreak {
		t.Skip("no failed route at this seed; acceptable")
	}
}

func TestMessageAccountingQuadratic(t *testing.T) {
	g := build(256, 0, 9)
	rng := rand.New(rand.NewSource(10))
	r := g.Overlay().Ring()
	sz := int64(g.GroupSize())
	for i := 0; i < 50; i++ {
		src := r.At(rng.Intn(r.Len()))
		res := Route(g, src, ring.Point(rng.Uint64()))
		want := int64(len(res.Hops)-1) * sz * sz
		if res.Messages != want {
			t.Fatalf("messages = %d, want %d", res.Messages, want)
		}
	}
}

func TestSingleHopRoute(t *testing.T) {
	g := build(128, 0, 11)
	r := g.Overlay().Ring()
	src := r.At(0)
	res := Route(g, src, src) // src owns its own point
	if !res.Delivered || len(res.Hops) != 1 || res.Messages != 0 {
		t.Errorf("self-route: delivered=%v hops=%d msgs=%d", res.Delivered, len(res.Hops), res.Messages)
	}
}
