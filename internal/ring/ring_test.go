package ring

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundTrip(t *testing.T) {
	cases := []float64{0, 0.25, 0.5, 0.75, 0.999999, 1.0 / 3}
	for _, f := range cases {
		p := FromFloat(f)
		if got := p.Float(); math.Abs(got-f) > 1e-12 {
			t.Errorf("FromFloat(%v).Float() = %v", f, got)
		}
	}
}

func TestFromFloatReducesModuloOne(t *testing.T) {
	if FromFloat(1.25) != FromFloat(0.25) {
		t.Errorf("FromFloat(1.25) != FromFloat(0.25)")
	}
	if FromFloat(-0.25) != FromFloat(0.75) {
		t.Errorf("FromFloat(-0.25) = %v, want FromFloat(0.75) = %v", FromFloat(-0.25), FromFloat(0.75))
	}
}

func TestDistWraps(t *testing.T) {
	a, b := FromFloat(0.9), FromFloat(0.1)
	if d := a.Dist(b).Float(); math.Abs(d-0.2) > 1e-9 {
		t.Errorf("Dist(0.9, 0.1) = %v, want 0.2", d)
	}
	if d := b.Dist(a).Float(); math.Abs(d-0.8) > 1e-9 {
		t.Errorf("Dist(0.1, 0.9) = %v, want 0.8", d)
	}
}

func TestDistIdentity(t *testing.T) {
	p := FromFloat(0.42)
	if p.Dist(p) != 0 {
		t.Errorf("Dist(p,p) = %v, want 0", p.Dist(p))
	}
}

func TestBetween(t *testing.T) {
	p, q := FromFloat(0.2), FromFloat(0.6)
	if !Between(p, q, FromFloat(0.4)) {
		t.Error("0.4 should be in (0.2, 0.6]")
	}
	if !Between(p, q, q) {
		t.Error("arc is half-open: q should be in (p, q]")
	}
	if Between(p, q, p) {
		t.Error("arc is half-open: p should not be in (p, q]")
	}
	if Between(p, q, FromFloat(0.8)) {
		t.Error("0.8 should not be in (0.2, 0.6]")
	}
	// Wrapping arc.
	if !Between(q, p, FromFloat(0.9)) {
		t.Error("0.9 should be in wrapping arc (0.6, 0.2]")
	}
	if !Between(q, p, FromFloat(0.1)) {
		t.Error("0.1 should be in wrapping arc (0.6, 0.2]")
	}
}

func mustRing(fs ...float64) *Ring {
	pts := make([]Point, len(fs))
	for i, f := range fs {
		pts[i] = FromFloat(f)
	}
	return New(pts)
}

func TestSuccessorBasics(t *testing.T) {
	r := mustRing(0.1, 0.4, 0.7)
	cases := []struct{ x, want float64 }{
		{0.05, 0.1}, {0.1, 0.1}, {0.2, 0.4}, {0.4, 0.4},
		{0.5, 0.7}, {0.7, 0.7}, {0.8, 0.1}, {0.0, 0.1},
	}
	for _, c := range cases {
		got := r.Successor(FromFloat(c.x))
		if got != FromFloat(c.want) {
			t.Errorf("Successor(%v) = %v, want %v", c.x, got.Float(), c.want)
		}
	}
}

func TestStrictSuccessorAndPredecessor(t *testing.T) {
	r := mustRing(0.1, 0.4, 0.7)
	if got := r.StrictSuccessor(FromFloat(0.1)); got != FromFloat(0.4) {
		t.Errorf("StrictSuccessor(0.1) = %v, want 0.4", got.Float())
	}
	if got := r.StrictSuccessor(FromFloat(0.7)); got != FromFloat(0.1) {
		t.Errorf("StrictSuccessor(0.7) = %v, want 0.1 (wrap)", got.Float())
	}
	if got := r.Predecessor(FromFloat(0.1)); got != FromFloat(0.7) {
		t.Errorf("Predecessor(0.1) = %v, want 0.7 (wrap)", got.Float())
	}
	if got := r.Predecessor(FromFloat(0.5)); got != FromFloat(0.4) {
		t.Errorf("Predecessor(0.5) = %v, want 0.4", got.Float())
	}
}

func TestInsertRemoveContains(t *testing.T) {
	r := New(nil)
	p := FromFloat(0.3)
	if r.Contains(p) {
		t.Error("empty ring should not contain anything")
	}
	if !r.Insert(p) {
		t.Error("first Insert should return true")
	}
	if r.Insert(p) {
		t.Error("duplicate Insert should return false")
	}
	if !r.Contains(p) {
		t.Error("ring should contain inserted point")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
	if !r.Remove(p) {
		t.Error("Remove of present point should return true")
	}
	if r.Remove(p) {
		t.Error("Remove of absent point should return false")
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestNewDedupes(t *testing.T) {
	r := mustRing(0.5, 0.5, 0.5, 0.2)
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2 after dedupe", r.Len())
	}
}

func TestCloneIndependence(t *testing.T) {
	r := mustRing(0.1, 0.2)
	c := r.Clone()
	c.Insert(FromFloat(0.9))
	if r.Len() != 2 || c.Len() != 3 {
		t.Errorf("clone not independent: r.Len=%d c.Len=%d", r.Len(), c.Len())
	}
}

func TestOwnedArcSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point(rng.Uint64())
	}
	r := New(pts)
	sum := 0.0
	for _, p := range r.Points() {
		sum += r.OwnedArc(p)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum of owned arcs = %v, want 1", sum)
	}
}

func TestSuccessorOwnsArc(t *testing.T) {
	// For any key x, suc(x) must be the owner: x in (pred(suc), suc].
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 50)
	for i := range pts {
		pts[i] = Point(rng.Uint64())
	}
	r := New(pts)
	for trial := 0; trial < 1000; trial++ {
		x := Point(rng.Uint64())
		s := r.Successor(x)
		pred := r.Predecessor(s)
		if x != s && !Between(pred, s, x) {
			t.Fatalf("Successor(%v) = %v does not own the key", x, s)
		}
	}
}

func TestEmptyRingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Successor on empty ring should panic")
		}
	}()
	New(nil).Successor(0)
}

func TestMaxGap(t *testing.T) {
	r := mustRing(0.0, 0.5)
	if g := r.MaxGap(); math.Abs(g-0.5) > 1e-9 {
		t.Errorf("MaxGap = %v, want 0.5", g)
	}
	r2 := mustRing(0.0, 0.1)
	if g := r2.MaxGap(); math.Abs(g-0.9) > 1e-9 {
		t.Errorf("MaxGap = %v, want 0.9", g)
	}
}

func TestEstimateLogN(t *testing.T) {
	// With n u.a.r. points, ln(1/gap) should be ln n within a generous
	// constant factor for most points.
	const n = 1 << 12
	rng := rand.New(rand.NewSource(3))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point(rng.Uint64())
	}
	r := New(pts)
	want := math.Log(n)
	est := r.EstimateLogN(r.At(0))
	if est < want/3 || est > want*3 {
		t.Errorf("EstimateLogN = %v, want within 3x of %v", est, want)
	}
	ell := r.EstimateLogLogN(r.At(0))
	wantLL := math.Log(want)
	if ell < wantLL/3 || ell > wantLL*3 {
		t.Errorf("EstimateLogLogN = %v, want within 3x of %v", ell, wantLL)
	}
}

// Property: Successor is idempotent and returns a member of the ring.
func TestSuccessorPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 64)
	for i := range pts {
		pts[i] = Point(rng.Uint64())
	}
	r := New(pts)
	f := func(x uint64) bool {
		s := r.Successor(Point(x))
		return r.Contains(s) && r.Successor(s) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Dist satisfies the cyclic triangle identity
// Dist(a,b) + Dist(b,c) ≡ Dist(a,c) (mod 1).
func TestDistCyclicAdditivity(t *testing.T) {
	f := func(a, b, c uint64) bool {
		pa, pb, pc := Point(a), Point(b), Point(c)
		return pa.Dist(pb)+pb.Dist(pc) == pa.Dist(pc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Insert keeps the ring sorted and Contains agrees with a map.
func TestInsertMaintainsSortedInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	r := New(nil)
	seen := map[Point]bool{}
	for i := 0; i < 500; i++ {
		p := Point(rng.Uint64() % 1000) // force collisions
		added := r.Insert(p)
		if added == seen[p] {
			t.Fatalf("Insert(%v) returned %v but seen=%v", p, added, seen[p])
		}
		seen[p] = true
	}
	if !sort.SliceIsSorted(r.Points(), func(i, j int) bool { return r.At(i) < r.At(j) }) {
		t.Fatal("ring points not sorted after inserts")
	}
	if r.Len() != len(seen) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(seen))
	}
}

// TestSearchMatchesSortSearch cross-checks the interpolation-first search
// against the sort.Search specification (smallest i with pts[i] >= x) on
// uniform, clustered and degenerate point sets — the distributions the
// adversary's placement strategies produce.
func TestSearchMatchesSortSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rings := map[string]*Ring{}

	uniform := make([]Point, 4096)
	for i := range uniform {
		uniform[i] = Point(rng.Uint64())
	}
	rings["uniform"] = New(uniform)

	clustered := make([]Point, 2048)
	for i := range clustered {
		// All points inside a 2^-20 arc: worst case for interpolation.
		clustered[i] = Point(1<<44) + Point(rng.Uint64()>>20)
	}
	rings["clustered"] = New(clustered)

	mixed := append(append([]Point{}, uniform[:512]...), clustered[:512]...)
	rings["mixed"] = New(mixed)
	rings["single"] = New([]Point{Point(1 << 63)})
	rings["pair"] = New([]Point{0, ^Point(0)})

	for name, r := range rings {
		pts := r.Points()
		check := func(x Point) {
			want := sort.Search(len(pts), func(i int) bool { return pts[i] >= x })
			var got int
			if want == len(pts) {
				// search is internal; exercise it through SuccessorIndex,
				// which wraps len(pts) to 0.
				if gi := r.SuccessorIndex(x); gi != 0 {
					t.Fatalf("%s: SuccessorIndex(%v) = %d, want wrap to 0", name, x, gi)
				}
				return
			}
			got = r.SuccessorIndex(x)
			if got != want {
				t.Fatalf("%s: SuccessorIndex(%v) = %d, want %d", name, x, got, want)
			}
		}
		for i := 0; i < 4000; i++ {
			check(Point(rng.Uint64()))
		}
		for _, p := range pts { // exact hits and off-by-one probes
			check(p)
			check(p + 1)
			check(p - 1)
		}
		check(0)
		check(^Point(0))
	}
}

// TestSuccessorIndex pins the rank-returning successor variant to Successor.
func TestSuccessorIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := make([]Point, 257)
	for i := range pts {
		pts[i] = Point(rng.Uint64())
	}
	r := New(pts)
	for i := 0; i < 2000; i++ {
		x := Point(rng.Uint64())
		idx := r.SuccessorIndex(x)
		if r.At(idx) != r.Successor(x) {
			t.Fatalf("At(SuccessorIndex(%v)) = %v, Successor = %v", x, r.At(idx), r.Successor(x))
		}
	}
	// Exact membership is its own successor.
	for i := 0; i < r.Len(); i++ {
		if r.SuccessorIndex(r.At(i)) != i {
			t.Fatalf("point at rank %d is not its own successor", i)
		}
	}
}
