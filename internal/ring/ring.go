// Package ring implements the identifier space of the paper: the unit
// interval [0,1) viewed as a ring, where moving clockwise corresponds to
// moving from 0 towards 1 and wrapping around.
//
// Points are represented as 64-bit fixed-point fractions: the point
// p ∈ [0,1) is stored as the uint64 floor(p·2⁶⁴). All arithmetic is modular,
// so clockwise distance is plain wrapping subtraction. The paper notes that
// O(log n) bits of precision suffice; 64 bits comfortably exceed that for
// any simulable n.
package ring

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Point is a position in the ID space [0,1), in 64-bit fixed point.
// An ID is a Point that some participant owns; keys of resources are also
// Points. The zero value is the point 0.
type Point uint64

// FromFloat converts a float in [0,1) to a Point. Values outside [0,1) are
// reduced modulo 1.
func FromFloat(f float64) Point {
	f -= math.Floor(f)
	// 1<<64 is not representable; scale by 2^63 twice to avoid overflow at f≈1.
	p := f * (1 << 63)
	return Point(uint64(p) << 1)
}

// Float returns the point as a float64 in [0,1). It loses the low bits of
// precision and is intended for reporting, not for ring arithmetic.
func (p Point) Float() float64 {
	return float64(p) / (1 << 63) / 2
}

// Dist returns the clockwise distance from p to q as a fraction of the ring,
// i.e. the length of the arc swept moving clockwise from p until reaching q.
func (p Point) Dist(q Point) Point {
	return q - p // wrapping subtraction is exactly clockwise distance
}

// Between reports whether x lies in the clockwise half-open arc (p, q].
// This is the standard successor-ownership test: suc(k) owns exactly the
// keys k with Between(pred, suc, k).
func Between(p, q, x Point) bool {
	return p.Dist(x) != 0 && p.Dist(x) <= p.Dist(q)
}

// String formats the point as a fraction for debugging.
func (p Point) String() string {
	return fmt.Sprintf("%.6f", p.Float())
}

// Ring is a sorted set of Points supporting successor queries, the
// fundamental operation of every DHT-style input graph (property P1's
// "ID responsible for a key" is the key's successor).
//
// The zero value is an empty ring. Ring is not safe for concurrent mutation;
// concurrent readers are fine.
type Ring struct {
	pts []Point // sorted ascending, no duplicates
}

// New builds a ring from the given points (duplicates are dropped).
func New(pts []Point) *Ring {
	r := &Ring{pts: make([]Point, len(pts))}
	copy(r.pts, pts)
	sort.Slice(r.pts, func(i, j int) bool { return r.pts[i] < r.pts[j] })
	r.pts = dedupe(r.pts)
	return r
}

func dedupe(s []Point) []Point {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, p := range s[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// Len returns the number of points on the ring.
func (r *Ring) Len() int { return len(r.pts) }

// Points returns the sorted underlying points. The caller must not modify
// the returned slice.
func (r *Ring) Points() []Point { return r.pts }

// search returns the smallest index i with pts[i] >= x (possibly len(pts)).
// Successor lookups are the innermost loop of group construction and
// routing, so this is interpolation-first: IDs are u.a.r. in [0,1), which
// makes a point's rank track its value linearly and lets a few guesses
// land within a handful of slots (expected O(log log n) probes). The
// interpolation rounds are capped so clustered distributions (e.g. the
// adversary's NearKey placement) degrade to plain O(log n) binary search,
// never to linear scanning.
func (r *Ring) search(x Point) int {
	pts := r.pts
	n := len(pts)
	if n == 0 || x <= pts[0] {
		return 0
	}
	if x > pts[n-1] {
		return n
	}
	// Invariant: pts[lo] < x <= pts[hi].
	lo, hi := 0, n-1
	for iter := 0; iter < 4 && hi-lo > 8; iter++ {
		span := uint64(pts[hi] - pts[lo])
		frac := uint64(x - pts[lo])
		phi, plo := bits.Mul64(uint64(hi-lo), frac)
		q, _ := bits.Div64(phi, plo, span)
		mid := lo + int(q)
		if mid <= lo {
			mid = lo + 1
		} else if mid >= hi {
			mid = hi - 1
		}
		if pts[mid] >= x {
			hi = mid
		} else {
			lo = mid
		}
	}
	for hi-lo > 8 {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid] >= x {
			hi = mid
		} else {
			lo = mid
		}
	}
	for i := lo + 1; i < hi; i++ {
		if pts[i] >= x {
			return i
		}
	}
	return hi
}

// Successor returns suc(x): the first point encountered moving clockwise
// from x, where a point at exactly x is its own successor. Panics on an
// empty ring.
func (r *Ring) Successor(x Point) Point {
	return r.pts[r.SuccessorIndex(x)]
}

// SuccessorIndex returns the rank of suc(x): the index into Points() of the
// first point encountered moving clockwise from x (a point at exactly x is
// its own successor). Builders that need both the successor and its rank —
// e.g. group construction resolving d₂·ln ln n members per group — use this
// to avoid a second search. Panics on an empty ring.
func (r *Ring) SuccessorIndex(x Point) int {
	if len(r.pts) == 0 {
		panic("ring: SuccessorIndex on empty ring")
	}
	i := r.search(x)
	if i == len(r.pts) {
		i = 0 // wrap
	}
	return i
}

// StrictSuccessor returns the first point strictly clockwise of x.
func (r *Ring) StrictSuccessor(x Point) Point {
	if len(r.pts) == 0 {
		panic("ring: StrictSuccessor on empty ring")
	}
	i := sort.Search(len(r.pts), func(i int) bool { return r.pts[i] > x })
	if i == len(r.pts) {
		i = 0
	}
	return r.pts[i]
}

// Predecessor returns the first point strictly counter-clockwise of x.
func (r *Ring) Predecessor(x Point) Point {
	if len(r.pts) == 0 {
		panic("ring: Predecessor on empty ring")
	}
	i := r.search(x)
	if i == 0 {
		return r.pts[len(r.pts)-1]
	}
	return r.pts[i-1]
}

// Contains reports whether x is a point on the ring.
func (r *Ring) Contains(x Point) bool {
	i := r.search(x)
	return i < len(r.pts) && r.pts[i] == x
}

// Insert adds x to the ring if not already present, returning whether it
// was added.
func (r *Ring) Insert(x Point) bool {
	i := r.search(x)
	if i < len(r.pts) && r.pts[i] == x {
		return false
	}
	r.pts = append(r.pts, 0)
	copy(r.pts[i+1:], r.pts[i:])
	r.pts[i] = x
	return true
}

// Remove deletes x from the ring, returning whether it was present.
func (r *Ring) Remove(x Point) bool {
	i := r.search(x)
	if i == len(r.pts) || r.pts[i] != x {
		return false
	}
	r.pts = append(r.pts[:i], r.pts[i+1:]...)
	return true
}

// Clone returns an independent copy of the ring.
func (r *Ring) Clone() *Ring {
	pts := make([]Point, len(r.pts))
	copy(pts, r.pts)
	return &Ring{pts: pts}
}

// Index returns the rank of x on the ring and whether x is present.
func (r *Ring) Index(x Point) (int, bool) {
	i := r.search(x)
	if i < len(r.pts) && r.pts[i] == x {
		return i, true
	}
	return i, false
}

// At returns the i-th smallest point (0-based).
func (r *Ring) At(i int) Point { return r.pts[i] }

// OwnedArc returns the fraction of the key space owned by the point p on
// this ring: the clockwise arc from its predecessor to p (property P2's
// "fraction of key values" for which p is responsible). Returns 1 for a
// single-point ring.
func (r *Ring) OwnedArc(p Point) float64 {
	if len(r.pts) == 1 {
		return 1
	}
	pred := r.Predecessor(p)
	return pred.Dist(p).Float()
}

// MaxGap returns the largest clockwise gap between consecutive points as a
// fraction of the ring; used for the paper's ln ln n estimation technique
// and for load-balance (P2) checks.
func (r *Ring) MaxGap() float64 {
	if len(r.pts) < 2 {
		return 1
	}
	var maxGap Point
	for i := range r.pts {
		next := r.pts[(i+1)%len(r.pts)]
		if g := r.pts[i].Dist(next); g > maxGap {
			maxGap = g
		}
	}
	return maxGap.Float()
}

// EstimateLogN estimates ln(n) to within a constant factor from the distance
// between a point and its successor, following the standard technique the
// paper cites (§III-A and footnote 15): for u.a.r. IDs, the gap d(u, v)
// between adjacent IDs satisfies α”/n² ≤ d ≤ α'·ln n/n w.h.p., so
// ln(1/d) = Θ(ln n).
func (r *Ring) EstimateLogN(at Point) float64 {
	suc := r.StrictSuccessor(at)
	d := at.Dist(suc).Float()
	if d <= 0 {
		d = 1.0 / (1 << 62)
	}
	return math.Log(1 / d)
}

// EstimateLogLogN estimates ln ln n the same way: ln ln (1/d) = ln ln n + O(1).
func (r *Ring) EstimateLogLogN(at Point) float64 {
	l := r.EstimateLogN(at)
	if l < math.E {
		l = math.E
	}
	return math.Log(l)
}
