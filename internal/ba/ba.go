// Package ba implements synchronous Byzantine agreement inside a group —
// the building block the paper invokes (§I: "Computation is performed by
// all members of a group via protocols for Byzantine agreement [28]") so
// that each group simulates a reliable processor.
//
// The protocol is the classic phase-king algorithm: t+1 phases of two
// rounds each, tolerating t Byzantine members for group size n > 4t. With
// the paper's good-group guarantee — a bad fraction at most (1+δ)β for
// small β — the n > 4t condition holds inside every good group.
//
// Rounds execute on the sim.Network runtime; Byzantine members are modeled
// by the Equivocator node, which sends conflicting values to different
// receivers (worst-case collusion is captured by all equivocators sharing
// one coordinated strategy).
package ba

import (
	"repro/internal/sim"
)

// Payload types.
type proposal struct{ V int } // even-round broadcast of current preference
type kingMsg struct{ V int }  // odd-round king broadcast

// Honest is a phase-king participant. After Rounds(t) network rounds,
// Decision holds the agreed value.
//
// Schedule for phase k = 0..T:
//
//	round 2k:   apply phase k−1's king rule (king message is in the inbox),
//	            then broadcast the current preference;
//	round 2k+1: tally proposals; node k (the phase king) broadcasts its
//	            majority value.
//
// Round 2(T+1) applies the final king rule and decides.
type Honest struct {
	Self     sim.NodeID
	N        int // group size
	T        int // tolerated faults; needs N > 4T
	Pref     int // current preference (0 or 1); initially the input value
	Decision int // agreed value, -1 until decided

	all     []sim.NodeID
	lastMaj int // majority value tallied in the last odd round
	lastCnt int // its count
}

// NewHonest builds an honest member with input value pref.
func NewHonest(self, n, t, pref int) *Honest {
	h := &Honest{Self: sim.NodeID(self), N: n, T: t, Pref: pref, Decision: -1}
	h.all = make([]sim.NodeID, n)
	for i := range h.all {
		h.all[i] = sim.NodeID(i)
	}
	return h
}

// Rounds returns the number of synchronous rounds phase-king needs:
// 2 rounds per phase × (T+1) phases, plus the final decision round.
func Rounds(t int) int { return 2*(t+1) + 1 }

// Step implements sim.Node.
func (h *Honest) Step(round int, inbox []sim.Message) []sim.Message {
	phase := round / 2
	even := round%2 == 0
	if even {
		// Apply the previous phase's king rule (no-op in phase 0).
		if phase > 0 {
			kingID := sim.NodeID(phase - 1)
			kingV, kingSeen := -1, false
			for _, m := range inbox {
				if k, ok := m.Payload.(kingMsg); ok && m.From == kingID && (k.V == 0 || k.V == 1) {
					kingV, kingSeen = k.V, true
					break
				}
			}
			if h.lastCnt > h.N/2+h.T {
				h.Pref = h.lastMaj
			} else if kingSeen {
				h.Pref = kingV
			} else {
				h.Pref = h.lastMaj // silent king: keep majority
			}
		}
		if phase > h.T {
			if h.Decision == -1 {
				h.Decision = h.Pref
			}
			return nil
		}
		return sim.Broadcast(proposal{V: h.Pref}, h.all)
	}
	if phase > h.T {
		return nil
	}
	// Odd round: tally this phase's proposals.
	counts := [2]int{}
	for _, m := range inbox {
		if p, ok := m.Payload.(proposal); ok && (p.V == 0 || p.V == 1) {
			counts[p.V]++
		}
	}
	h.lastMaj, h.lastCnt = 0, counts[0]
	if counts[1] > counts[0] {
		h.lastMaj, h.lastCnt = 1, counts[1]
	}
	if int(h.Self) == phase {
		return sim.Broadcast(kingMsg{V: h.lastMaj}, h.all)
	}
	return nil
}

// Equivocator is a coordinated Byzantine member: in proposal rounds it
// tells the first half of the group 0 and the second half 1; as king it
// does the same, maximizing disagreement pressure.
type Equivocator struct {
	Self sim.NodeID
	N    int
}

// Step implements sim.Node.
func (e *Equivocator) Step(round int, inbox []sim.Message) []sim.Message {
	phase := round / 2
	out := make([]sim.Message, 0, e.N)
	mk := func(i int, payload any) sim.Message {
		return sim.Message{To: sim.NodeID(i), Payload: payload}
	}
	if round%2 == 0 {
		for i := 0; i < e.N; i++ {
			out = append(out, mk(i, proposal{V: i * 2 / e.N}))
		}
		return out
	}
	if int(e.Self) == phase {
		for i := 0; i < e.N; i++ {
			out = append(out, mk(i, kingMsg{V: (i*2/e.N + 1) % 2}))
		}
		return out
	}
	return nil
}

// Silent is a crashed Byzantine member: it never sends anything.
type Silent struct{}

// Step implements sim.Node.
func (Silent) Step(int, []sim.Message) []sim.Message { return nil }

// Result summarizes one agreement execution.
type Result struct {
	Decisions []int // per-honest-node decisions (order of construction)
	Agreed    bool  // all honest nodes decided the same value
	Value     int   // the agreed value if Agreed
	Rounds    int
	Messages  int64
}

// Run executes phase-king over a group of n members of which the indices in
// byzantine are faulty (using behavior beh: "equivocate" or "silent"), with
// honest inputs prefs. t is the fault bound the protocol is configured for.
func Run(n, t int, prefs []int, byzantine map[int]bool, beh string) Result {
	nodes := make([]sim.Node, n)
	var honests []*Honest
	for i := 0; i < n; i++ {
		if byzantine[i] {
			if beh == "silent" {
				nodes[i] = Silent{}
			} else {
				nodes[i] = &Equivocator{Self: sim.NodeID(i), N: n}
			}
			continue
		}
		h := NewHonest(i, n, t, prefs[i])
		honests = append(honests, h)
		nodes[i] = h
	}
	nw := sim.New(nodes)
	st := nw.Run(Rounds(t))
	res := Result{Rounds: st.Rounds, Messages: st.Delivered, Agreed: true}
	for _, h := range honests {
		res.Decisions = append(res.Decisions, h.Decision)
	}
	if len(res.Decisions) > 0 {
		res.Value = res.Decisions[0]
		for _, d := range res.Decisions {
			if d != res.Value {
				res.Agreed = false
			}
		}
	}
	return res
}
