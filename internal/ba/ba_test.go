package ba

import (
	"math/rand"
	"testing"
)

func unanimous(n, v int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = v
	}
	return p
}

func TestAgreementNoFaults(t *testing.T) {
	for _, v := range []int{0, 1} {
		res := Run(9, 2, unanimous(9, v), nil, "")
		if !res.Agreed {
			t.Fatalf("no-fault run must agree, decisions=%v", res.Decisions)
		}
		if res.Value != v {
			t.Fatalf("validity: all started with %d, decided %d", v, res.Value)
		}
	}
}

func TestValidityUnderEquivocators(t *testing.T) {
	// All honest nodes start with the same value; Byzantine members must
	// not be able to change the outcome (validity).
	const n, tFaults = 13, 3
	byz := map[int]bool{0: true, 5: true, 9: true}
	prefs := unanimous(n, 1)
	res := Run(n, tFaults, prefs, byz, "equivocate")
	if !res.Agreed {
		t.Fatalf("must agree, decisions=%v", res.Decisions)
	}
	if res.Value != 1 {
		t.Fatalf("validity violated: honest unanimous 1, decided %d", res.Value)
	}
}

func TestAgreementMixedInputsEquivocators(t *testing.T) {
	// Mixed inputs: any common decision is fine, agreement is mandatory.
	const n, tFaults = 13, 3
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		byz := map[int]bool{}
		for len(byz) < tFaults {
			byz[rng.Intn(n)] = true
		}
		prefs := make([]int, n)
		for i := range prefs {
			prefs[i] = rng.Intn(2)
		}
		res := Run(n, tFaults, prefs, byz, "equivocate")
		if !res.Agreed {
			t.Fatalf("trial %d: agreement violated, decisions=%v byz=%v", trial, res.Decisions, byz)
		}
		if res.Value != 0 && res.Value != 1 {
			t.Fatalf("trial %d: decided junk %d", trial, res.Value)
		}
	}
}

func TestAgreementSilentFaults(t *testing.T) {
	const n, tFaults = 9, 2
	byz := map[int]bool{1: true, 7: true}
	prefs := make([]int, n)
	for i := range prefs {
		prefs[i] = i % 2
	}
	res := Run(n, tFaults, prefs, byz, "silent")
	if !res.Agreed {
		t.Fatalf("silent faults: agreement violated, decisions=%v", res.Decisions)
	}
}

func TestByzantineKingPhaseSurvived(t *testing.T) {
	// Make low-index nodes (the early kings) Byzantine: the protocol must
	// still converge in a later honest-king phase.
	const n, tFaults = 13, 3
	byz := map[int]bool{0: true, 1: true, 2: true}
	prefs := make([]int, n)
	for i := range prefs {
		prefs[i] = i % 2
	}
	res := Run(n, tFaults, prefs, byz, "equivocate")
	if !res.Agreed {
		t.Fatalf("byzantine early kings: decisions=%v", res.Decisions)
	}
}

func TestRoundsFormula(t *testing.T) {
	if Rounds(0) != 3 || Rounds(3) != 9 {
		t.Errorf("Rounds: got %d and %d", Rounds(0), Rounds(3))
	}
}

func TestGroupSizedAgreementSweep(t *testing.T) {
	// Paper-typical group sizes (ln ln n scale) with t = ⌊(n−1)/4⌋ faults.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{5, 8, 12, 16} {
		tFaults := (n - 1) / 4
		for trial := 0; trial < 10; trial++ {
			byz := map[int]bool{}
			for len(byz) < tFaults {
				byz[rng.Intn(n)] = true
			}
			prefs := make([]int, n)
			for i := range prefs {
				prefs[i] = rng.Intn(2)
			}
			res := Run(n, tFaults, prefs, byz, "equivocate")
			if !res.Agreed {
				t.Fatalf("n=%d t=%d trial=%d: decisions=%v", n, tFaults, trial, res.Decisions)
			}
		}
	}
}

func TestMessageComplexityQuadratic(t *testing.T) {
	// Group communication is Θ(|G|²) per round (the cost the paper's §I
	// attributes to group operations); total ≈ rounds·n².
	res := Run(10, 2, unanimous(10, 0), nil, "")
	maxMsgs := int64(Rounds(2)) * 10 * 10
	if res.Messages > maxMsgs {
		t.Errorf("messages = %d, want ≤ %d", res.Messages, maxMsgs)
	}
	if res.Messages < int64(10*10) {
		t.Errorf("messages = %d suspiciously low", res.Messages)
	}
}
