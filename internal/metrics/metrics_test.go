package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.N() != 0 {
		t.Error("empty summary should be zero")
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		s.Add(x)
	}
	if s.N() != 5 || s.Mean() != 3 || s.Min() != 1 || s.Max() != 5 {
		t.Errorf("summary wrong: n=%d mean=%v min=%v max=%v", s.N(), s.Mean(), s.Min(), s.Max())
	}
	if math.Abs(s.Var()-2.5) > 1e-9 {
		t.Errorf("var = %v, want 2.5", s.Var())
	}
	if math.Abs(s.Std()-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("std wrong")
	}
}

func TestQuantile(t *testing.T) {
	var s Summary
	for i := 100; i >= 1; i-- { // reverse order: quantile must sort
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("q1 = %v", q)
	}
	if q := s.Quantile(0.5); math.Abs(q-50) > 2 {
		t.Errorf("median = %v", q)
	}
	var empty Summary
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile should be 0")
	}
}

func TestChiSquareAcceptsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 16)
	for i := 0; i < 16000; i++ {
		counts[rng.Intn(16)]++
	}
	stat, ok := ChiSquareUniform(counts)
	if !ok {
		t.Errorf("uniform sample rejected, stat=%v", stat)
	}
}

func TestChiSquareRejectsSkewed(t *testing.T) {
	counts := make([]int, 16)
	counts[0] = 1000
	for i := 1; i < 16; i++ {
		counts[i] = 100
	}
	if _, ok := ChiSquareUniform(counts); ok {
		t.Error("heavily skewed sample accepted")
	}
}

func TestChiSquareDegenerate(t *testing.T) {
	if _, ok := ChiSquareUniform(nil); !ok {
		t.Error("empty counts should pass trivially")
	}
	if _, ok := ChiSquareUniform([]int{0, 0, 0}); !ok {
		t.Error("all-zero counts should pass trivially")
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Header: []string{"n", "rate"}}
	tab.Append("1024", "0.01")
	tab.Append("65536", "0.001")
	out := tab.String()
	if !strings.Contains(out, "n") || !strings.Contains(out, "65536") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestSummaryMerge(t *testing.T) {
	// Merging per-worker summaries must equal one summary fed every value.
	var whole, a, b, empty Summary
	vals := []float64{5, 1, 3, 9, 2, 8, 4, 7, 6, 0}
	for i, v := range vals {
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	var merged Summary
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(&empty) // merging nothing changes nothing
	if merged.N() != whole.N() {
		t.Fatalf("N = %d, want %d", merged.N(), whole.N())
	}
	if merged.Mean() != whole.Mean() || merged.Var() != whole.Var() {
		t.Fatalf("mean/var = %v/%v, want %v/%v", merged.Mean(), merged.Var(), whole.Mean(), whole.Var())
	}
	if merged.Min() != 0 || merged.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 0/9", merged.Min(), merged.Max())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("quantile %v = %v, want %v", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	// An empty receiver adopts the other side's extremes.
	var fresh Summary
	fresh.Merge(&a)
	if fresh.Min() != a.Min() || fresh.Max() != a.Max() || fresh.N() != a.N() {
		t.Fatalf("empty-receiver merge broken: %v/%v/%d", fresh.Min(), fresh.Max(), fresh.N())
	}
}
