// Package metrics provides the small statistics toolkit the experiment
// harness uses: streaming summaries, quantiles, and a chi-square uniformity
// test (for Lemma 11's "IDs are u.a.r." claim).
package metrics

import (
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations.
type Summary struct {
	n        int
	sum, sq  float64
	min, max float64
	vals     []float64 // retained for quantiles
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	if s.n == 0 || x < s.min {
		s.min = x
	}
	if s.n == 0 || x > s.max {
		s.max = x
	}
	s.n++
	s.sum += x
	s.sq += x * x
	s.vals = append(s.vals, x)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Var returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	return (s.sq - float64(s.n)*m*m) / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min and Max return the extremes (0 when empty).
func (s *Summary) Min() float64 { return s.min }
func (s *Summary) Max() float64 { return s.max }

// Merge folds every observation of o into s, as if each had been Added
// directly — the reduction step for per-worker summaries (the load
// driver's latency recorders merge this way after the run).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	s.sq += o.sq
	s.vals = append(s.vals, o.vals...)
}

// Quantile returns the q-th empirical quantile, q ∈ [0,1], by nearest-rank.
func (s *Summary) Quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	sorted := make([]float64, len(s.vals))
	copy(sorted, s.vals)
	sort.Float64s(sorted)
	i := int(q * float64(len(sorted)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ChiSquareUniform computes the chi-square statistic of bucket counts
// against the uniform expectation, and reports whether it is below the
// critical value at significance ≈0.01 (using the normal approximation for
// k−1 degrees of freedom, valid for k ≥ 8).
func ChiSquareUniform(counts []int) (stat float64, uniform bool) {
	k := len(counts)
	if k < 2 {
		return 0, true
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, true
	}
	want := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - want
		stat += d * d / want
	}
	// Critical value ≈ df + 2.33·sqrt(2·df) (normal approx at p=0.01).
	df := float64(k - 1)
	crit := df + 2.33*math.Sqrt(2*df)
	return stat, stat <= crit
}

// Table is a tiny column-aligned table printer for experiment output.
type Table struct {
	Header []string
	Rows   [][]string
}

// Append adds a row.
func (t *Table) Append(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b []byte
	pad := func(s string, w int) {
		b = append(b, s...)
		for j := len(s); j < w+2; j++ {
			b = append(b, ' ')
		}
	}
	for i, h := range t.Header {
		pad(h, widths[i])
	}
	b = append(b, '\n')
	for i := range t.Header {
		for j := 0; j < widths[i]; j++ {
			b = append(b, '-')
		}
		b = append(b, ' ', ' ')
	}
	b = append(b, '\n')
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) {
				pad(c, widths[i])
			}
		}
		b = append(b, '\n')
	}
	return string(b)
}
