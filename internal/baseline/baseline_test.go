package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/overlay"
)

func TestLogGroupSize(t *testing.T) {
	if s := LogGroupSize(8192, 7); s < 60 || s > 66 {
		t.Errorf("LogGroupSize(8192, 7) = %d, want ≈63 ([47]'s 64)", s)
	}
	if s := LogGroupSize(2, 1); s < 4 {
		t.Errorf("size clamp broken: %d", s)
	}
}

func TestBuildLogGroupsSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pl := adversary.Place(adversary.Config{N: 1024, Beta: 0.1, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	g := BuildLogGroups(ov, pl.BadSet(), groups.DefaultParams(), 2)
	want := LogGroupSize(1024, 2)
	if g.GroupSize() != want {
		t.Errorf("group size %d, want %d", g.GroupSize(), want)
	}
	for _, grp := range g.Groups()[:16] {
		if grp.Size() != want {
			t.Errorf("group has %d members, want %d", grp.Size(), want)
		}
	}
}

func TestLogGroupsMoreRobustButCostlier(t *testing.T) {
	// The paper's trade-off: log-sized groups are at least as robust but
	// pay quadratically more per search than tiny groups.
	rng := rand.New(rand.NewSource(2))
	pl := adversary.Place(adversary.Config{N: 2048, Beta: 0.15, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	params := groups.DefaultParams()
	params.Beta = 0.15
	tiny := groups.Build(ov, pl.BadSet(), params, hashes.H1)
	logg := BuildLogGroups(ov, pl.BadSet(), params, 2)
	if logg.RedFraction() > tiny.RedFraction() {
		t.Errorf("log groups red fraction %.4f exceeds tiny groups %.4f",
			logg.RedFraction(), tiny.RedFraction())
	}
	rngT := rand.New(rand.NewSource(3))
	robT := tiny.MeasureRobustness(300, rngT)
	rngL := rand.New(rand.NewSource(3))
	robL := logg.MeasureRobustness(300, rngL)
	if robL.MeanMessages < 2*robT.MeanMessages {
		t.Errorf("log groups should cost ≫ tiny groups per search: %v vs %v",
			robL.MeanMessages, robT.MeanMessages)
	}
}

func TestCuckooSurvivesWithLargeGroups(t *testing.T) {
	// [47]'s positive finding, scaled down: big groups + tiny β survive a
	// long attack.
	res := RunCuckoo(CuckooConfig{
		N: 1024, Beta: 0.002, K: 4, GroupSize: 64,
		Events: 5000, Targeted: true, Seed: 3,
	})
	if !res.Survived {
		t.Errorf("|G|=64 at β=0.002 should survive 5000 events, died at %d", res.SurvivedEvents)
	}
}

func TestCuckooTinyGroupsDie(t *testing.T) {
	// The negative finding motivating the paper: tiny groups under the
	// cuckoo rule (no PoW) are quickly compromised by the join-leave
	// attack at a β the PoW construction tolerates easily.
	res := RunCuckoo(CuckooConfig{
		N: 1024, Beta: 0.05, K: 4, GroupSize: 8,
		Events: 20000, Targeted: true, Seed: 4,
	})
	if res.Survived {
		t.Errorf("|G|=8 at β=0.05 survived %d events; expected compromise", res.SurvivedEvents)
	}
}

func TestPlainJoinDiesUnderTargetedAttack(t *testing.T) {
	// K=0 disables eviction: the undefended random-join baseline must fall
	// to the join-leave ratchet at parameters where even the cuckoo rule
	// struggles (small groups, moderate β).
	plain := RunCuckoo(CuckooConfig{N: 512, Beta: 0.03, K: 0, GroupSize: 16, Events: 10000, Targeted: true, Seed: 5})
	if plain.Survived {
		t.Errorf("undefended join survived %d targeted events at |G|=16, β=0.03", plain.SurvivedEvents)
	}
}

func TestCuckooZeroBetaNeverDies(t *testing.T) {
	res := RunCuckoo(CuckooConfig{N: 256, Beta: 0, K: 4, GroupSize: 16, Events: 100, Seed: 6})
	if !res.Survived || res.MaxBadFraction != 0 {
		t.Errorf("no adversary: survived=%v maxBad=%v", res.Survived, res.MaxBadFraction)
	}
}

func TestCuckooPopulationConserved(t *testing.T) {
	// Each event is a leave+rejoin: total node count must stay N.
	cfg := CuckooConfig{N: 256, Beta: 0.05, K: 4, GroupSize: 16, Events: 500, Seed: 7}
	s := &cuckooSim{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		ringSet: nil,
	}
	_ = s
	res := RunCuckoo(cfg)
	_ = res // conservation is internal; exercised via survival runs
}

func TestGroupSizeSurvivalMonotone(t *testing.T) {
	// The [47] trade-off: survival time should (weakly) increase with
	// group size at fixed β.
	events := func(g int) int {
		r := RunCuckoo(CuckooConfig{N: 512, Beta: 0.04, K: 4, GroupSize: g, Events: 30000, Targeted: true, Seed: 8})
		return r.SurvivedEvents
	}
	small, large := events(8), events(64)
	if small > large {
		t.Errorf("survival not monotone in group size: |G|=8 → %d, |G|=64 → %d", small, large)
	}
	if math.Abs(float64(small-large)) == 0 && small == 30000 {
		t.Log("both survived the full run; weak check only")
	}
}
