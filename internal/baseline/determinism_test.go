package baseline

import "testing"

// TestCuckooSeedReproduces pins the seed contract: two runs with identical
// configs must produce identical results. (Regression: the churn-victim
// list was once rebuilt in map-iteration order, which Go randomizes.)
func TestCuckooSeedReproduces(t *testing.T) {
	cfg := CuckooConfig{
		N: 1 << 10, Beta: 0.02, K: 4, GroupSize: 16,
		Events: 5000, Targeted: true, Seed: 17,
	}
	a := RunCuckoo(cfg)
	for i := 0; i < 3; i++ {
		b := RunCuckoo(cfg)
		if a != b {
			t.Fatalf("run %d diverged under the same seed: %+v vs %+v", i, a, b)
		}
	}
}
