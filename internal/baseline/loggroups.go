// Package baseline implements the two comparison points the paper measures
// itself against:
//
//   - the classic Θ(log n)-sized group construction (the "enduring
//     requirement" of §I that the paper reduces exponentially), and
//   - the Awerbuch–Scheideler cuckoo rule [8]–[10] for maintaining good
//     majorities under join-leave attack, in the simulation style of Sen &
//     Freedman's Commensal Cuckoo study [47].
package baseline

import (
	"math"

	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/ring"
)

// LogGroupSize returns the classic group size c·ln n.
func LogGroupSize(n int, c float64) int {
	if n < 3 {
		n = 3
	}
	s := int(math.Round(c * math.Log(float64(n))))
	if s < 4 {
		s = 4
	}
	return s
}

// BuildLogGroups builds a group graph with Θ(log n)-sized groups — the
// prior-work construction all costs in Corollary 1 are compared against.
// c is the size multiplier (prior work uses c·ln n with c ≥ 1; [47]
// reports |G| = 64 needed at n = 8192, i.e. c ≈ 7).
func BuildLogGroups(ov overlay.Graph, badIDs map[ring.Point]bool, params groups.Params, c float64) *groups.Graph {
	return groups.BuildSized(ov, badIDs, params, hashes.H1, LogGroupSize(ov.Ring().Len(), c))
}
