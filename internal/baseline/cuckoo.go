package baseline

import (
	"math/rand"
	"sort"

	"repro/internal/ring"
)

// CuckooConfig parameterizes a cuckoo-rule join-leave-attack simulation in
// the style of [47] (Sen & Freedman) over the Awerbuch–Scheideler rule
// [8]–[10]: on every join, the joiner is placed at a u.a.r. point and all
// nodes in the k-region containing that point are evicted and re-placed at
// u.a.r. points.
type CuckooConfig struct {
	N    int     // total nodes (constant: each event is a leave+rejoin)
	Beta float64 // adversary node fraction
	// K is the cuckoo-region granularity: the ring is split into N/K
	// k-regions of size K/N each; K = 0 disables eviction (plain random
	// join — the undefended baseline).
	K int
	// GroupSize g sets the group regions: the ring is split into N/g
	// regions and a region is compromised when at least half its occupants
	// are adversarial (majority filtering broken).
	GroupSize int
	// Events is the number of adversarial leave+rejoin events to run.
	Events int
	// Targeted selects the attack: if true, the adversary always churns a
	// bad node *outside* the most-infected region (the classic join-leave
	// ratchet); otherwise it churns a u.a.r. bad node.
	Targeted bool
	Seed     int64
}

// CuckooResult reports the outcome.
type CuckooResult struct {
	Survived       bool // no region ever lost its good majority
	SurvivedEvents int  // events completed before first compromise (== Events if survived)
	MaxBadFraction float64
}

// cuckooSim holds the mutable simulation state.
type cuckooSim struct {
	cfg     CuckooConfig
	rng     *rand.Rand
	ringSet *ring.Ring
	bad     map[ring.Point]bool
	regions int
	regBad  []int // bad occupants per group region
	regTot  []int // occupants per group region
	touched []int // regions modified during the current event
}

func (s *cuckooSim) regionOf(p ring.Point) int {
	// Region index by top bits: idx = floor(p · regions / 2⁶⁴).
	return int(uint64(p) / (^uint64(0)/uint64(s.regions) + 1))
}

func (s *cuckooSim) place(p ring.Point, isBad bool) {
	for !s.ringSet.Insert(p) { // collision: nudge (probability ~0)
		p++
	}
	if isBad {
		s.bad[p] = true
	}
	r := s.regionOf(p)
	s.regTot[r]++
	if isBad {
		s.regBad[r]++
	}
	s.touched = append(s.touched, r)
}

func (s *cuckooSim) remove(p ring.Point) (wasBad bool) {
	wasBad = s.bad[p]
	delete(s.bad, p)
	s.ringSet.Remove(p)
	r := s.regionOf(p)
	s.regTot[r]--
	if wasBad {
		s.regBad[r]--
	}
	s.touched = append(s.touched, r)
	return wasBad
}

// kRegionMembers returns the occupants of the k-region containing x.
func (s *cuckooSim) kRegionMembers(x ring.Point) []ring.Point {
	if s.ringSet.Len() == 0 {
		return nil
	}
	kRegions := s.cfg.N / s.cfg.K
	if kRegions < 1 {
		kRegions = 1
	}
	width := ^uint64(0)/uint64(kRegions) + 1
	lo := ring.Point(uint64(x) / width * width)
	hi := lo + ring.Point(width-1)
	var out []ring.Point
	cur := s.ringSet.Successor(lo)
	for i := 0; i < s.ringSet.Len(); i++ {
		if cur < lo || cur > hi { // no wrap: regions are aligned intervals
			break
		}
		out = append(out, cur)
		next := s.ringSet.StrictSuccessor(cur)
		if next <= cur { // wrapped
			break
		}
		cur = next
	}
	return out
}

// join places a new node of the given badness per the cuckoo rule:
// u.a.r. position x, evict the k-region of x, re-place evictees u.a.r.
func (s *cuckooSim) join(isBad bool) {
	x := ring.Point(s.rng.Uint64())
	if s.cfg.K > 0 {
		for _, p := range s.kRegionMembers(x) {
			evictedBad := s.remove(p)
			s.place(ring.Point(s.rng.Uint64()), evictedBad)
		}
	}
	s.place(x, isBad)
}

// compromised reports whether any of the given group regions has lost its
// good majority, and the worst bad fraction among them. An empty region has
// no group to subvert ([47] treats occupancy separately) and is skipped.
func (s *cuckooSim) compromised(regions []int) (bool, float64) {
	worst := 0.0
	comp := false
	for _, r := range regions {
		if s.regTot[r] == 0 {
			continue
		}
		f := float64(s.regBad[r]) / float64(s.regTot[r])
		if f > worst {
			worst = f
		}
		if 2*s.regBad[r] >= s.regTot[r] {
			comp = true
		}
	}
	return comp, worst
}

// allRegions lists every region index (for the full bootstrap check).
func (s *cuckooSim) allRegions() []int {
	out := make([]int, s.regions)
	for i := range out {
		out[i] = i
	}
	return out
}

// RunCuckoo executes the join-leave attack and reports survival.
func RunCuckoo(cfg CuckooConfig) CuckooResult {
	if cfg.GroupSize < 1 {
		cfg.GroupSize = 8
	}
	s := &cuckooSim{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		ringSet: ring.New(nil),
		bad:     make(map[ring.Point]bool),
		regions: cfg.N / cfg.GroupSize,
	}
	if s.regions < 1 {
		s.regions = 1
	}
	s.regBad = make([]int, s.regions)
	s.regTot = make([]int, s.regions)

	// Initial population: place everyone by the join rule itself (an
	// honest bootstrap), adversary last.
	nBad := int(cfg.Beta * float64(cfg.N))
	for i := 0; i < cfg.N-nBad; i++ {
		s.join(false)
	}
	for i := 0; i < nBad; i++ {
		s.join(true)
	}

	res := CuckooResult{Survived: true, SurvivedEvents: cfg.Events}
	comp, worst := s.compromised(s.allRegions())
	res.MaxBadFraction = worst
	if comp {
		// Compromised at bootstrap (group size too small for this β).
		res.Survived = false
		res.SurvivedEvents = 0
		return res
	}

	// Map iteration order is randomized, so the churn-victim list must be
	// sorted for a seed to reproduce the same run.
	badList := make([]ring.Point, 0, nBad)
	for p := range s.bad {
		badList = append(badList, p)
	}
	sortPoints(badList)

	for e := 1; e <= cfg.Events; e++ {
		// Adversary churns one of its nodes.
		victim := s.pickChurnNode(badList)
		if victim == -1 {
			break
		}
		s.touched = s.touched[:0]
		s.remove(badList[victim])
		s.join(true)
		// The join may have relocated bad evictees; rebuild the bad list
		// (sorted — see above).
		badList = badList[:0]
		for p := range s.bad {
			badList = append(badList, p)
		}
		sortPoints(badList)
		comp, worst := s.compromised(s.touched)
		if worst > res.MaxBadFraction {
			res.MaxBadFraction = worst
		}
		if comp {
			res.Survived = false
			res.SurvivedEvents = e
			return res
		}
	}
	return res
}

func sortPoints(pts []ring.Point) {
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
}

// pickChurnNode selects which bad node departs: under the targeted attack,
// a bad node outside the currently most-infected region (preserving the
// beachhead); otherwise u.a.r.
func (s *cuckooSim) pickChurnNode(badList []ring.Point) int {
	if len(badList) == 0 {
		return -1
	}
	if !s.cfg.Targeted {
		return s.rng.Intn(len(badList))
	}
	best, bestFrac := -1, -1.0
	for r := 0; r < s.regions; r++ {
		if s.regTot[r] > 0 {
			if f := float64(s.regBad[r]) / float64(s.regTot[r]); f > bestFrac {
				bestFrac, best = f, r
			}
		}
	}
	for tries := 0; tries < 32; tries++ {
		i := s.rng.Intn(len(badList))
		if s.regionOf(badList[i]) != best {
			return i
		}
	}
	return s.rng.Intn(len(badList))
}
