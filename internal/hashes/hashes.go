// Package hashes provides the random-oracle hash families the paper assumes
// (§I-C, §IV-A): functions with domain and range [0,1) whose outputs are
// modeled as uniformly distributed on first query.
//
// The paper names five: h₁ and h₂ (group-membership points, §III-A), f and g
// (the two-hash-composition ID-generation scheme, §IV-A), and h (string
// outputs for the global-randomness lottery, Appendix VIII). We realize all
// of them as SHA-256 with domain-separation tags, which under the
// random-oracle assumption gives independent uniform functions. Range
// elements are ring.Point values (64-bit fixed point in [0,1)).
//
// Every oracle query funnels through one-shot sha256.Sum256 calls over
// stack-composed buffers, so the point APIs are allocation-free — they sit
// on the hot path of group construction (d₂·ln ln n queries per group) and
// PoW solving (one query per attempt).
package hashes

import (
	"crypto/sha256"
	"encoding/binary"
	"io"

	"repro/internal/ring"
)

// Func is a keyed random-oracle hash with range [0,1).
type Func struct {
	tag []byte
}

// Named oracle instances matching the paper's notation.
var (
	// H1 and H2 locate the members of a group: the i-th member of G_w is
	// suc(h₁(w,i)) in graph 1 and suc(h₂(w,i)) in graph 2 (§III-A).
	H1 = NewFunc("h1")
	H2 = NewFunc("h2")
	// F and G compose to mint IDs: the ID is f(g(σ ⊕ r)) when
	// g(σ ⊕ r) ≤ τ (§IV-A).
	F = NewFunc("f")
	G = NewFunc("g")
	// H scores lottery strings in the global-randomness protocol
	// (Appendix VIII).
	H = NewFunc("h")
)

// NewFunc returns an independent random-oracle function identified by tag.
// Distinct tags behave as independent oracles.
func NewFunc(tag string) Func {
	return Func{tag: []byte(tag)}
}

// oneShotMax bounds tag‖sep‖data compositions that hash via a stack buffer;
// longer inputs take the streaming path. It covers every caller in this
// repository (tags ≤ 8 bytes, data ≤ 64 bytes).
const oneShotMax = 96

// sum computes SHA-256(tag ‖ sep ‖ data) without heap allocation for
// inputs up to oneShotMax bytes. The byte layout is identical to the
// streaming fallback, so outputs never depend on which path ran.
func (f Func) sum(sep byte, data []byte) [sha256.Size]byte {
	if len(f.tag)+1+len(data) <= oneShotMax {
		var buf [oneShotMax]byte
		n := copy(buf[:], f.tag)
		buf[n] = sep
		n++
		n += copy(buf[n:], data)
		return sha256.Sum256(buf[:n])
	}
	h := sha256.New()
	h.Write(f.tag)
	h.Write([]byte{sep})
	h.Write(data)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Point hashes an arbitrary byte string to a point in [0,1).
func (f Func) Point(data []byte) ring.Point {
	s := f.sum(0, data)
	return ring.Point(binary.BigEndian.Uint64(s[:8]))
}

// PointString is Point for string keys. Output is bit-identical to
// Point([]byte(key)); short keys compose into the same stack buffer, so
// the call stays allocation-free without forcing a []byte conversion
// escape onto the caller — it sits on the key-lookup hot path of the
// public API.
func (f Func) PointString(key string) ring.Point {
	if len(f.tag)+1+len(key) <= oneShotMax {
		var buf [oneShotMax]byte
		n := copy(buf[:], f.tag)
		buf[n] = 0
		n++
		n += copy(buf[n:], key)
		s := sha256.Sum256(buf[:n])
		return ring.Point(binary.BigEndian.Uint64(s[:8]))
	}
	h := sha256.New()
	h.Write(f.tag)
	h.Write([]byte{0})
	io.WriteString(h, key)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return ring.Point(binary.BigEndian.Uint64(out[:8]))
}

// PointAt hashes a (point, index) pair, the paper's h(w, i) form used to
// derive the i-th member location of group G_w.
func (f Func) PointAt(w ring.Point, i int) ring.Point {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(w))
	binary.BigEndian.PutUint64(buf[8:], uint64(i))
	return f.Point(buf[:])
}

// PointsAt fills dst[:n] with the member points h(w,1) … h(w,n) — the batch
// form group construction uses to locate all d₂·ln ln n members of G_w in
// one pass. The tag‖sep‖w prefix is composed once and only the index field
// is rewritten per query; outputs are bit-identical to calling PointAt(w, i)
// for i = 1..n. dst is grown if its capacity is short; the filled slice is
// returned.
func (f Func) PointsAt(w ring.Point, n int, dst []ring.Point) []ring.Point {
	if cap(dst) < n {
		dst = make([]ring.Point, n)
	}
	dst = dst[:n]
	if len(f.tag)+17 > oneShotMax {
		for i := range dst {
			dst[i] = f.PointAt(w, i+1)
		}
		return dst
	}
	var buf [oneShotMax]byte
	p := copy(buf[:], f.tag)
	buf[p] = 0 // the Point domain separator
	p++
	binary.BigEndian.PutUint64(buf[p:], uint64(w))
	idx := buf[p+8 : p+16]
	msg := buf[:p+16]
	for i := range dst {
		binary.BigEndian.PutUint64(idx, uint64(i+1))
		s := sha256.Sum256(msg)
		dst[i] = ring.Point(binary.BigEndian.Uint64(s[:8]))
	}
	return dst
}

// OfPoint hashes a single point, the composition form f(g(·)) of §IV-A.
func (f Func) OfPoint(p ring.Point) ring.Point {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(p))
	return f.Point(buf[:])
}

// Bytes hashes data to a 32-byte digest (used where a full-width string is
// needed, e.g. lottery strings).
func (f Func) Bytes(data []byte) [32]byte {
	return f.sum(1, data)
}

// XOR returns a ⊕ b, the paper's σ ⊕ r operation on ℓ·ln n-bit strings.
func XOR(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	return XORInto(make([]byte, n), a, b)
}

// XORInto writes a ⊕ b into dst, truncating to the shortest of the three
// slices, and returns the written prefix of dst. It is the allocation-free
// form used by the PoW solve/verify hot loops; XOR is the allocating
// convenience wrapper.
func XORInto(dst, a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if len(dst) < n {
		n = len(dst)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = a[i] ^ b[i]
	}
	return dst
}
