// Package hashes provides the random-oracle hash families the paper assumes
// (§I-C, §IV-A): functions with domain and range [0,1) whose outputs are
// modeled as uniformly distributed on first query.
//
// The paper names five: h₁ and h₂ (group-membership points, §III-A), f and g
// (the two-hash-composition ID-generation scheme, §IV-A), and h (string
// outputs for the global-randomness lottery, Appendix VIII). We realize all
// of them as SHA-256 with domain-separation tags, which under the
// random-oracle assumption gives independent uniform functions. Range
// elements are ring.Point values (64-bit fixed point in [0,1)).
package hashes

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/ring"
)

// Func is a keyed random-oracle hash with range [0,1).
type Func struct {
	tag []byte
}

// Named oracle instances matching the paper's notation.
var (
	// H1 and H2 locate the members of a group: the i-th member of G_w is
	// suc(h₁(w,i)) in graph 1 and suc(h₂(w,i)) in graph 2 (§III-A).
	H1 = NewFunc("h1")
	H2 = NewFunc("h2")
	// F and G compose to mint IDs: the ID is f(g(σ ⊕ r)) when
	// g(σ ⊕ r) ≤ τ (§IV-A).
	F = NewFunc("f")
	G = NewFunc("g")
	// H scores lottery strings in the global-randomness protocol
	// (Appendix VIII).
	H = NewFunc("h")
)

// NewFunc returns an independent random-oracle function identified by tag.
// Distinct tags behave as independent oracles.
func NewFunc(tag string) Func {
	return Func{tag: []byte(tag)}
}

// Point hashes an arbitrary byte string to a point in [0,1).
func (f Func) Point(data []byte) ring.Point {
	h := sha256.New()
	h.Write(f.tag)
	h.Write([]byte{0})
	h.Write(data)
	var sum [sha256.Size]byte
	return ring.Point(binary.BigEndian.Uint64(h.Sum(sum[:0])))
}

// PointAt hashes a (point, index) pair, the paper's h(w, i) form used to
// derive the i-th member location of group G_w.
func (f Func) PointAt(w ring.Point, i int) ring.Point {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(w))
	binary.BigEndian.PutUint64(buf[8:], uint64(i))
	return f.Point(buf[:])
}

// OfPoint hashes a single point, the composition form f(g(·)) of §IV-A.
func (f Func) OfPoint(p ring.Point) ring.Point {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(p))
	return f.Point(buf[:])
}

// Bytes hashes data to a 32-byte digest (used where a full-width string is
// needed, e.g. lottery strings).
func (f Func) Bytes(data []byte) [32]byte {
	h := sha256.New()
	h.Write(f.tag)
	h.Write([]byte{1})
	h.Write(data)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// XOR returns a ⊕ b, the paper's σ ⊕ r operation on ℓ·ln n-bit strings.
func XOR(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] ^ b[i]
	}
	return out
}
