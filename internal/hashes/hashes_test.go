package hashes

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ring"
)

func TestDeterminism(t *testing.T) {
	p1 := H1.PointAt(ring.FromFloat(0.3), 5)
	p2 := H1.PointAt(ring.FromFloat(0.3), 5)
	if p1 != p2 {
		t.Error("same input must hash to same output")
	}
}

func TestDomainSeparation(t *testing.T) {
	w := ring.FromFloat(0.3)
	if H1.PointAt(w, 1) == H2.PointAt(w, 1) {
		t.Error("h1 and h2 should be independent oracles")
	}
	if F.OfPoint(w) == G.OfPoint(w) {
		t.Error("f and g should be independent oracles")
	}
}

func TestIndexSeparation(t *testing.T) {
	w := ring.FromFloat(0.3)
	if H1.PointAt(w, 1) == H1.PointAt(w, 2) {
		t.Error("distinct indices must give distinct points")
	}
}

func TestPointUniformity(t *testing.T) {
	// Random-oracle check: bucket 1<<14 hash outputs into 16 bins; each bin
	// should hold close to 1/16 of the mass (chi-square-ish tolerance).
	const n = 1 << 14
	const bins = 16
	var counts [bins]int
	for i := 0; i < n; i++ {
		p := H.PointAt(ring.Point(i), i)
		counts[p>>60]++ // top 4 bits select the bin
	}
	want := float64(n) / bins
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bin %d: count %d deviates too far from %v", b, c, want)
		}
	}
}

func TestBytesDiffersFromPointDomain(t *testing.T) {
	// Point and Bytes use distinct internal domain bytes; their outputs on
	// equal input must not be prefix-related by construction accident.
	d := []byte("x")
	b := F.Bytes(d)
	p := F.Point(d)
	var prefix [8]byte
	copy(prefix[:], b[:8])
	if ring.Point(uint64(prefix[0])<<56) == p {
		t.Skip("coincidence allowed; this is a smoke check only")
	}
}

func TestXOR(t *testing.T) {
	a := []byte{0xFF, 0x00, 0xAA}
	b := []byte{0x0F, 0xF0, 0xAA}
	got := XOR(a, b)
	want := []byte{0xF0, 0xF0, 0x00}
	if !bytes.Equal(got, want) {
		t.Errorf("XOR = %x, want %x", got, want)
	}
}

func TestXORTruncatesToShorter(t *testing.T) {
	got := XOR([]byte{1, 2, 3}, []byte{1})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("XOR length mismatch handling wrong: %v", got)
	}
}

// Property: XOR is self-inverse — XOR(XOR(a,b),b) == a.
func TestXORSelfInverse(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x := XOR(a[:], b[:])
		back := XOR(x, b[:])
		return bytes.Equal(back, a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: no collisions observed across a large sample of (w, i) inputs.
func TestNoEasyCollisions(t *testing.T) {
	seen := make(map[ring.Point]bool, 1<<12)
	for i := 0; i < 1<<12; i++ {
		p := H1.PointAt(ring.Point(i*2654435761), i)
		if seen[p] {
			t.Fatalf("collision at i=%d", i)
		}
		seen[p] = true
	}
}
