package hashes

import (
	"bytes"
	"crypto/sha256"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ring"
)

// sha256Compose computes SHA-256(tag ‖ sep ‖ data) the straightforward way,
// as the reference for both internal hashing paths.
func sha256Compose(tag []byte, sep byte, data []byte) [32]byte {
	buf := append(append(append([]byte{}, tag...), sep), data...)
	return sha256.Sum256(buf)
}

func TestDeterminism(t *testing.T) {
	p1 := H1.PointAt(ring.FromFloat(0.3), 5)
	p2 := H1.PointAt(ring.FromFloat(0.3), 5)
	if p1 != p2 {
		t.Error("same input must hash to same output")
	}
}

func TestDomainSeparation(t *testing.T) {
	w := ring.FromFloat(0.3)
	if H1.PointAt(w, 1) == H2.PointAt(w, 1) {
		t.Error("h1 and h2 should be independent oracles")
	}
	if F.OfPoint(w) == G.OfPoint(w) {
		t.Error("f and g should be independent oracles")
	}
}

func TestIndexSeparation(t *testing.T) {
	w := ring.FromFloat(0.3)
	if H1.PointAt(w, 1) == H1.PointAt(w, 2) {
		t.Error("distinct indices must give distinct points")
	}
}

func TestPointUniformity(t *testing.T) {
	// Random-oracle check: bucket 1<<14 hash outputs into 16 bins; each bin
	// should hold close to 1/16 of the mass (chi-square-ish tolerance).
	const n = 1 << 14
	const bins = 16
	var counts [bins]int
	for i := 0; i < n; i++ {
		p := H.PointAt(ring.Point(i), i)
		counts[p>>60]++ // top 4 bits select the bin
	}
	want := float64(n) / bins
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bin %d: count %d deviates too far from %v", b, c, want)
		}
	}
}

func TestBytesDiffersFromPointDomain(t *testing.T) {
	// Point and Bytes use distinct internal domain bytes; their outputs on
	// equal input must not be prefix-related by construction accident.
	d := []byte("x")
	b := F.Bytes(d)
	p := F.Point(d)
	var prefix [8]byte
	copy(prefix[:], b[:8])
	if ring.Point(uint64(prefix[0])<<56) == p {
		t.Skip("coincidence allowed; this is a smoke check only")
	}
}

func TestXOR(t *testing.T) {
	a := []byte{0xFF, 0x00, 0xAA}
	b := []byte{0x0F, 0xF0, 0xAA}
	got := XOR(a, b)
	want := []byte{0xF0, 0xF0, 0x00}
	if !bytes.Equal(got, want) {
		t.Errorf("XOR = %x, want %x", got, want)
	}
}

func TestXORTruncatesToShorter(t *testing.T) {
	got := XOR([]byte{1, 2, 3}, []byte{1})
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("XOR length mismatch handling wrong: %v", got)
	}
}

// Property: XOR is self-inverse — XOR(XOR(a,b),b) == a.
func TestXORSelfInverse(t *testing.T) {
	f := func(a, b [16]byte) bool {
		x := XOR(a[:], b[:])
		back := XOR(x, b[:])
		return bytes.Equal(back, a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORIntoMatchesXOR(t *testing.T) {
	a := []byte{0xFF, 0x00, 0xAA, 0x55}
	b := []byte{0x0F, 0xF0, 0xAA}
	dst := make([]byte, 8)
	got := XORInto(dst, a, b)
	if want := XOR(a, b); !bytes.Equal(got, want) {
		t.Errorf("XORInto = %x, want %x", got, want)
	}
	if len(got) != 3 {
		t.Errorf("XORInto len = %d, want 3 (shortest input)", len(got))
	}
}

func TestXORIntoTruncatesToDst(t *testing.T) {
	got := XORInto(make([]byte, 2), []byte{1, 2, 3}, []byte{4, 5, 6})
	if want := []byte{1 ^ 4, 2 ^ 5}; !bytes.Equal(got, want) {
		t.Errorf("XORInto = %x, want %x", got, want)
	}
}

func TestXORIntoAliasedDst(t *testing.T) {
	// The PoW solve loop reuses one buffer; writing into an operand must
	// still produce a ⊕ b.
	a := []byte{1, 2, 3}
	b := []byte{7, 7, 7}
	got := XORInto(a, a, b)
	if want := []byte{1 ^ 7, 2 ^ 7, 3 ^ 7}; !bytes.Equal(got, want) {
		t.Errorf("aliased XORInto = %x, want %x", got, want)
	}
}

func TestPointsAtMatchesPointAt(t *testing.T) {
	for _, f := range []Func{H1, H2, F} {
		w := ring.FromFloat(0.7182)
		got := f.PointsAt(w, 17, nil)
		if len(got) != 17 {
			t.Fatalf("PointsAt returned %d points, want 17", len(got))
		}
		for i, p := range got {
			if want := f.PointAt(w, i+1); p != want {
				t.Errorf("PointsAt[%d] = %v, want PointAt(w,%d) = %v", i, p, i+1, want)
			}
		}
	}
}

func TestPointsAtReusesDst(t *testing.T) {
	dst := make([]ring.Point, 8)
	got := H1.PointsAt(ring.Point(42), 5, dst)
	if &got[0] != &dst[0] {
		t.Error("PointsAt should fill the provided buffer when capacity suffices")
	}
}

func TestStreamingFallbackMatchesOneShot(t *testing.T) {
	// Inputs longer than the stack buffer take the streaming path; the two
	// paths must agree byte-for-byte on the layout tag ‖ sep ‖ data. Compare
	// a long input's digest against a direct sha256 of the composition.
	long := bytes.Repeat([]byte{0xAB}, oneShotMax+13)
	short := long[:8]
	// Same prefix relationships must hold across both paths: hashing is a
	// pure function of the composed bytes.
	if H1.Point(long) == H1.Point(short) {
		t.Error("long and short inputs collided, streaming path suspect")
	}
	if H1.Point(long) != H1.Point(long) {
		t.Error("streaming path nondeterministic")
	}
	got := H1.Bytes(long)
	want := sha256Compose([]byte("h1"), 1, long)
	if got != want {
		t.Errorf("streaming Bytes = %x, want %x", got[:8], want[:8])
	}
	gotShort := H1.Bytes(short)
	wantShort := sha256Compose([]byte("h1"), 1, short)
	if gotShort != wantShort {
		t.Errorf("one-shot Bytes = %x, want %x", gotShort[:8], wantShort[:8])
	}
}

// TestPointAPIsAllocationFree is the allocation-regression gate of the
// zero-allocation hot-path work: the oracle point APIs sit inside group
// construction and PoW attempt loops and must never heap-allocate.
func TestPointAPIsAllocationFree(t *testing.T) {
	data := []byte("0123456789abcdef0123456789abcdef")
	w := ring.FromFloat(0.25)
	dst := make([]ring.Point, 12)
	a, b, buf := make([]byte, 32), make([]byte, 32), make([]byte, 32)
	cases := []struct {
		name string
		fn   func()
	}{
		{"Point", func() { H1.Point(data) }},
		{"PointAt", func() { H1.PointAt(w, 3) }},
		{"OfPoint", func() { F.OfPoint(w) }},
		{"PointsAt", func() { H1.PointsAt(w, len(dst), dst) }},
		{"Bytes", func() { H.Bytes(data) }},
		{"XORInto", func() { XORInto(buf, a, b) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(200, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
	}
}

// Property: no collisions observed across a large sample of (w, i) inputs.
func TestNoEasyCollisions(t *testing.T) {
	seen := make(map[ring.Point]bool, 1<<12)
	for i := 0; i < 1<<12; i++ {
		p := H1.PointAt(ring.Point(i*2654435761), i)
		if seen[p] {
			t.Fatalf("collision at i=%d", i)
		}
		seen[p] = true
	}
}

// TestPointStringMatchesPoint pins the string fast path to the []byte
// form, on both the one-shot and streaming branches.
func TestPointStringMatchesPoint(t *testing.T) {
	long := strings.Repeat("k", 200)
	for _, key := range []string{"", "alice", "doc-0042", long} {
		if got, want := H1.PointString(key), H1.Point([]byte(key)); got != want {
			t.Errorf("PointString(%q) = %v, want %v", key, got, want)
		}
	}
}

// TestPointStringAllocFree gates the short-key path at 0 allocs/op.
func TestPointStringAllocFree(t *testing.T) {
	key := "user-profile-key"
	if allocs := testing.AllocsPerRun(200, func() { H1.PointString(key) }); allocs != 0 {
		t.Errorf("PointString allocates %.1f/op, want 0", allocs)
	}
}
