// Package adversary models the paper's Byzantine adversary (§I-C): a single
// coordinating entity controlling a β-fraction of the system's
// computational power. PoW (Lemma 11) constrains it to hold at most ≈βn
// IDs whose values are u.a.r. in [0,1); its remaining freedom is *which
// subset* of its u.a.r. IDs to inject (Lemma 5) and how its IDs behave.
//
// This package provides the ID-placement strategies. Behavioral attacks
// (search redirection, request spam, delayed string release,
// pre-computation) live with the protocols they attack, in
// internal/groups, internal/epoch and internal/pow.
package adversary

import (
	"math/rand"
	"sort"

	"repro/internal/ring"
)

// Placement is a concrete assignment of good and bad IDs on the ring.
type Placement struct {
	Good []ring.Point
	Bad  []ring.Point
}

// Ring returns a ring holding all IDs of the placement.
func (p Placement) Ring() *ring.Ring {
	all := make([]ring.Point, 0, len(p.Good)+len(p.Bad))
	all = append(all, p.Good...)
	all = append(all, p.Bad...)
	return ring.New(all)
}

// BadSet returns the bad IDs as a set.
func (p Placement) BadSet() map[ring.Point]bool {
	m := make(map[ring.Point]bool, len(p.Bad))
	for _, b := range p.Bad {
		m[b] = true
	}
	return m
}

// N returns the total number of IDs.
func (p Placement) N() int { return len(p.Good) + len(p.Bad) }

// Strategy selects how the adversary picks which of its u.a.r. IDs to
// inject (it cannot choose the values themselves — PoW forces uniformity).
type Strategy int

const (
	// Uniform injects all its u.a.r. IDs (the baseline attack).
	Uniform Strategy = iota
	// Clustered injects only IDs landing in a contiguous arc, concentrating
	// its presence there (the §III-B example: "maybe only bad IDs in
	// [0, ½) are added").
	Clustered
	// NearKey injects the IDs closest to a victim key, attacking the
	// groups responsible for one resource.
	NearKey
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Uniform:
		return "uniform"
	case Clustered:
		return "clustered"
	case NearKey:
		return "nearkey"
	}
	return "unknown"
}

// Config parameterizes placement generation.
type Config struct {
	N        int        // total IDs in the system
	Beta     float64    // adversary fraction: ⌊βN⌋ bad IDs are injected
	Strategy Strategy   //
	Span     float64    // Clustered: arc [0, Span) that bad IDs must land in
	Key      ring.Point // NearKey: the victim key
	// PoolFactor scales the u.a.r. pool the adversary selects its subset
	// from; the paper's model lets it discard IDs it mined but dislikes.
	// Defaults to 4 when zero (only relevant to Clustered/NearKey).
	PoolFactor int
}

// Place draws a placement: (1−β)N u.a.r. good IDs and ⌊βN⌋ bad IDs chosen
// per the strategy from a u.a.r. pool.
func Place(cfg Config, rng *rand.Rand) Placement {
	nBad := int(cfg.Beta * float64(cfg.N))
	nGood := cfg.N - nBad
	p := Placement{Good: make([]ring.Point, nGood)}
	for i := range p.Good {
		p.Good[i] = ring.Point(rng.Uint64())
	}
	pf := cfg.PoolFactor
	if pf <= 0 {
		pf = 4
	}
	switch cfg.Strategy {
	case Uniform:
		p.Bad = drawUniform(nBad, rng)
	case Clustered:
		span := cfg.Span
		if span <= 0 || span > 1 {
			span = 0.5
		}
		limit := ring.FromFloat(span)
		pool := drawUniform(pf*nBad, rng)
		for _, b := range pool {
			if b < limit && len(p.Bad) < nBad {
				p.Bad = append(p.Bad, b)
			}
		}
		// If the arc was too small to supply nBad IDs from the pool, the
		// adversary simply fields fewer IDs — strictly weaker, never
		// stronger, and faithful to the subset rule.
	case NearKey:
		pool := drawUniform(pf*nBad, rng)
		sort.Slice(pool, func(i, j int) bool {
			return cfg.Key.Dist(pool[i]) < cfg.Key.Dist(pool[j])
		})
		if len(pool) > nBad {
			pool = pool[:nBad]
		}
		p.Bad = pool
	}
	return p
}

func drawUniform(n int, rng *rand.Rand) []ring.Point {
	out := make([]ring.Point, n)
	for i := range out {
		out[i] = ring.Point(rng.Uint64())
	}
	return out
}
