package adversary

import (
	"math/rand"
	"testing"

	"repro/internal/ring"
)

func TestUniformPlacementCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Place(Config{N: 1000, Beta: 0.1, Strategy: Uniform}, rng)
	if len(p.Bad) != 100 {
		t.Errorf("bad = %d, want 100", len(p.Bad))
	}
	if len(p.Good) != 900 {
		t.Errorf("good = %d, want 900", len(p.Good))
	}
	if p.N() != 1000 {
		t.Errorf("N = %d, want 1000", p.N())
	}
}

func TestClusteredPlacementRespectsSpan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := Place(Config{N: 2000, Beta: 0.2, Strategy: Clustered, Span: 0.25}, rng)
	limit := ring.FromFloat(0.25)
	for _, b := range p.Bad {
		if b >= limit {
			t.Fatalf("clustered bad ID %v outside [0, 0.25)", b)
		}
	}
	if len(p.Bad) == 0 {
		t.Fatal("clustered placement produced no bad IDs")
	}
	if len(p.Bad) > 400 {
		t.Fatalf("bad = %d exceeds βN = 400", len(p.Bad))
	}
}

func TestNearKeyPlacementConcentrates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	key := ring.FromFloat(0.7)
	p := Place(Config{N: 2000, Beta: 0.1, Strategy: NearKey, Key: key}, rng)
	if len(p.Bad) != 200 {
		t.Fatalf("bad = %d, want 200", len(p.Bad))
	}
	// All bad IDs should be within the nearest quarter of the pool's span:
	// with a 4× pool, the 200 nearest of 800 u.a.r. IDs lie within ~0.25+slack
	// clockwise of the key.
	for _, b := range p.Bad {
		if key.Dist(b).Float() > 0.40 {
			t.Errorf("near-key bad ID at clockwise distance %v, want concentrated", key.Dist(b).Float())
		}
	}
}

func TestBadSetMatchesBadSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := Place(Config{N: 500, Beta: 0.1, Strategy: Uniform}, rng)
	set := p.BadSet()
	if len(set) != len(p.Bad) {
		t.Fatalf("BadSet size %d != len(Bad) %d", len(set), len(p.Bad))
	}
	for _, b := range p.Bad {
		if !set[b] {
			t.Fatalf("BadSet missing %v", b)
		}
	}
}

func TestRingHoldsAllIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Place(Config{N: 300, Beta: 0.1, Strategy: Uniform}, rng)
	r := p.Ring()
	if r.Len() != p.N() {
		t.Errorf("ring has %d IDs, want %d (collision chance is negligible)", r.Len(), p.N())
	}
	for _, g := range p.Good[:10] {
		if !r.Contains(g) {
			t.Errorf("ring missing good ID %v", g)
		}
	}
}

func TestZeroBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Place(Config{N: 100, Beta: 0, Strategy: Uniform}, rng)
	if len(p.Bad) != 0 || len(p.Good) != 100 {
		t.Errorf("beta=0: got %d bad, %d good", len(p.Bad), len(p.Good))
	}
}

func TestStrategyStrings(t *testing.T) {
	if Uniform.String() != "uniform" || Clustered.String() != "clustered" || NearKey.String() != "nearkey" {
		t.Error("strategy names wrong")
	}
	if Strategy(99).String() != "unknown" {
		t.Error("unknown strategy should say so")
	}
}

func TestPlacementUniformityOfBadIDs(t *testing.T) {
	// Lemma 11 forces bad IDs to be u.a.r.; Uniform placement must spread
	// them over the ring (bucket test, 8 bins).
	rng := rand.New(rand.NewSource(7))
	p := Place(Config{N: 16000, Beta: 0.25, Strategy: Uniform}, rng)
	var bins [8]int
	for _, b := range p.Bad {
		bins[b>>61]++
	}
	want := float64(len(p.Bad)) / 8
	for i, c := range bins {
		if float64(c) < want*0.8 || float64(c) > want*1.2 {
			t.Errorf("bin %d has %d bad IDs, want ≈%.0f", i, c, want)
		}
	}
}
