package serve

import (
	"context"
	"encoding/json"
	"testing"

	"repro/tinygroups"
)

// batchGate holds the dispatcher's first flush open so tests can stage a
// deterministic batch shape: whatever is enqueued while the gate is held
// coalesces into one batch after release.
type batchGate struct {
	gate    chan struct{}
	entered chan struct{}
	first   bool
}

func newBatchGate() *batchGate {
	return &batchGate{gate: make(chan struct{}), entered: make(chan struct{}, 1), first: true}
}

// config returns a Config whose first flush blocks until release. The
// hook runs on the dispatcher goroutine only, so first needs no lock.
func (g *batchGate) config() Config {
	return Config{hookBeforeBatch: func() {
		if g.first {
			g.first = false
			g.entered <- struct{}{}
			<-g.gate
		}
	}}
}

func (g *batchGate) release() { close(g.gate) }

// stagePuts pushes puts through the write queue with a deterministic
// shape: the first put flushes alone (held at the gate until the rest are
// queued), then the remainder coalesce into a single second batch in
// enqueue order. It returns the per-key results in key order.
//
// The pinned shape is what the coalescing-count assertions rely on. The
// results themselves no longer depend on it: every routed operation draws
// from a hash-derived (epoch, key) stream, so out[i] is what any other
// batching — or none — would produce.
func stagePuts(t *testing.T, s *Server, g *batchGate, keys []string) []tinygroups.BatchResult {
	t.Helper()
	reqs := make([]*request, len(keys))
	for i, k := range keys {
		reqs[i] = &request{kind: kindPut, key: k, value: []byte(k), done: make(chan tinygroups.BatchResult, 1)}
	}
	if err := s.enqueue(reqs[0]); err != nil {
		t.Fatalf("enqueue: %v", err)
	}
	<-g.entered
	for _, r := range reqs[1:] {
		if err := s.enqueue(r); err != nil {
			t.Fatalf("enqueue: %v", err)
		}
	}
	g.release()
	out := make([]tinygroups.BatchResult, len(keys))
	for i, r := range reqs {
		out[i] = <-r.done
	}
	return out
}

// TestBatchCoalescing checks the write queue actually coalesces: K puts
// staged behind a held dispatcher flush as exactly two batch calls (the
// held first single, then the K−1 others in one PutBatch), with every op
// accounted for.
func TestBatchCoalescing(t *testing.T) {
	g := newBatchGate()
	s := newTestServer(t, g.config())
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = "coalesce-" + string(rune('a'+i))
	}
	res := stagePuts(t, s, g, keys)
	for i, r := range res {
		if r.Err != nil && r.Err != tinygroups.ErrUnreachable {
			t.Fatalf("key %d: unexpected error %v", i, r.Err)
		}
	}
	if calls := s.m.putBatches.Load(); calls != 2 {
		t.Fatalf("put batch calls = %d, want 2 (1 held + 1 coalesced)", calls)
	}
	if ops := s.m.putBatchedOps.Load(); ops != int64(len(keys)) {
		t.Fatalf("batched ops = %d, want %d", ops, len(keys))
	}
}

// TestBatchWorkerCountInvariance is the serving-layer half of the
// determinism contract: the same key sequence, staged into the same batch
// shape, produces byte-identical results whether the underlying System
// fans routing across 1 worker or 4. This is what lets operators resize
// the pool without changing a single served byte.
func TestBatchWorkerCountInvariance(t *testing.T) {
	keys := make([]string, 24)
	for i := range keys {
		keys[i] = "inv-" + string(rune('a'+i))
	}
	marshal := func(res []tinygroups.BatchResult) string {
		type row struct {
			Owner string `json:"owner"`
			Hops  int    `json:"hops"`
			Msgs  int64  `json:"messages"`
			Err   string `json:"err,omitempty"`
		}
		rows := make([]row, len(res))
		for i, r := range res {
			rows[i] = row{Owner: pointHex(r.Info.Owner), Hops: r.Info.Hops, Msgs: r.Info.Messages}
			if r.Err != nil {
				rows[i].Err = r.Err.Error()
			}
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	var got [2]string
	for i, workers := range []int{1, 4} {
		g := newBatchGate()
		s := newTestServer(t, g.config(), tinygroups.WithWorkers(workers))
		got[i] = marshal(stagePuts(t, s, g, keys))
	}
	if got[0] != got[1] {
		t.Fatalf("batched put results differ across worker counts:\n 1: %s\n 4: %s", got[0], got[1])
	}
}

// TestExecBarrierAfterFlush checks an exclusive request staged behind
// queued puts acts as a barrier: the pending put batch flushes first, then
// the closure runs alone, observing every put already landed.
func TestExecBarrierAfterFlush(t *testing.T) {
	g := newBatchGate()
	s := newTestServer(t, g.config())
	first := &request{kind: kindPut, key: "barrier-first", value: []byte("v"), done: make(chan tinygroups.BatchResult, 1)}
	if err := s.enqueue(first); err != nil {
		t.Fatal(err)
	}
	<-g.entered
	puts := make([]*request, 8)
	for i := range puts {
		puts[i] = &request{
			kind: kindPut, key: "barrier-" + string(rune('a'+i)),
			value: []byte{byte(i)},
			done:  make(chan tinygroups.BatchResult, 1),
		}
		if err := s.enqueue(puts[i]); err != nil {
			t.Fatal(err)
		}
	}
	var opsAtExec int64
	execDone := make(chan struct{})
	if err := s.enqueue(&request{kind: kindExec, exec: func() {
		opsAtExec = s.m.putBatchedOps.Load()
		close(execDone)
	}}); err != nil {
		t.Fatal(err)
	}
	g.release()
	<-first.done
	<-execDone
	stored := ""
	for _, r := range puts {
		if br := <-r.done; br.Err == nil {
			stored = r.key
		}
	}
	if opsAtExec != int64(1+len(puts)) {
		t.Fatalf("exec ran before the pending puts flushed: saw %d batched ops, want %d", opsAtExec, 1+len(puts))
	}
	if s.m.putBatches.Load() != 2 {
		t.Fatalf("put batch calls = %d, want 2", s.m.putBatches.Load())
	}
	if stored == "" {
		t.Skip("every staged put routed through a red group at this seed")
	}
	// Get is a lock-free read now — no dispatcher trip needed to verify.
	if _, _, err := s.sys.Get(context.Background(), stored); err != nil {
		t.Fatalf("Get(%q) after batched put: %v", stored, err)
	}
}
