package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/tinygroups"
)

// maxBodyBytes bounds request bodies; the API carries keys and small
// values, so 1 MiB is generous.
const maxBodyBytes = 1 << 20

// errorResponse is the JSON error envelope of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// keyRequest is the body of /v1/lookup and /v1/put.
type keyRequest struct {
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"` // base64 in JSON, puts only
}

// computeRequest is the body of /v1/compute.
type computeRequest struct {
	Key   string `json:"key"`
	Input int    `json:"input"`
}

// lookupResponse reports one routed operation.
type lookupResponse struct {
	Key      string `json:"key"`
	Owner    string `json:"owner"` // suc(h(key)) as a hex point
	Hops     int    `json:"hops"`
	Messages int64  `json:"messages"`
}

// getResponse is lookupResponse plus the stored value.
type getResponse struct {
	lookupResponse
	Value []byte `json:"value"` // base64 in JSON
}

// computeResponse reports one group computation.
type computeResponse struct {
	Key      string `json:"key"`
	Group    string `json:"group"`
	Correct  bool   `json:"correct"`
	Agreed   bool   `json:"agreed"`
	Value    int    `json:"value"`
	Messages int64  `json:"messages"`
}

// healthResponse is the /healthz body. Version identifies the answering
// binary; Shard/Shards scope it within a cluster (0/1 standalone);
// Fingerprint digests the serving generation (System.Fingerprint), the
// equality the cluster determinism gate compares across shards;
// PendingEpoch reports a parked two-phase build awaiting flip.
type healthResponse struct {
	Status       string  `json:"status"`
	Version      string  `json:"version"`
	Epoch        int64   `json:"epoch"`
	N            int     `json:"n"`
	Shard        int     `json:"shard"`
	Shards       int     `json:"shards"`
	Fingerprint  string  `json:"fingerprint"`
	PendingEpoch bool    `json:"pending_epoch"`
	UptimeS      float64 `json:"uptime_s"`
	// Durable / Recovered / SnapshotEpoch report the durability layer:
	// whether a data dir is attached, whether this process restored its
	// state from disk rather than bootstrapping, and the epoch of the
	// newest on-disk snapshot (-1 when none).
	Durable       bool `json:"durable"`
	Recovered     bool `json:"recovered"`
	SnapshotEpoch int  `json:"snapshot_epoch"`
}

// routes builds the server's mux. Every endpoint speaks JSON; errors use
// the {"error","code"} envelope with the status mapping of statusOf.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lookup", s.handleLookup)
	mux.HandleFunc("/v1/put", s.handlePut)
	mux.HandleFunc("/v1/get", s.handleGet)
	mux.HandleFunc("/v1/compute", s.handleCompute)
	mux.HandleFunc("/v1/mint", s.handleMint)
	mux.HandleFunc("/v1/verify", s.handleVerify)
	mux.HandleFunc("/v1/lookup/batch", s.handleLookupBatch)
	mux.HandleFunc("/v1/put/batch", s.handlePutBatch)
	mux.HandleFunc("/v1/epoch/advance", s.handleAdvance)
	mux.HandleFunc("/v1/epoch/build", s.handleEpochBuild)
	mux.HandleFunc("/v1/epoch/flip", s.handleEpochFlip)
	mux.HandleFunc("/v1/epoch/abort", s.handleEpochAbort)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// statusOf maps the tinygroups error taxonomy (and the serve-layer queue
// errors) onto HTTP statuses and stable machine-readable codes.
func statusOf(err error) (status int, code string) {
	switch {
	case err == nil:
		return http.StatusOK, "ok"
	case errors.Is(err, tinygroups.ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, tinygroups.ErrUnreachable):
		return http.StatusBadGateway, "unreachable"
	case errors.Is(err, tinygroups.ErrBadConfig):
		return http.StatusBadRequest, "bad_config"
	case errors.Is(err, tinygroups.ErrMintFailed):
		return http.StatusInternalServerError, "mint_failed"
	case errors.Is(err, tinygroups.ErrClosed), errors.Is(err, errDraining):
		return http.StatusServiceUnavailable, "closed"
	case errors.Is(err, errQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, errWriteTimeout):
		return http.StatusGatewayTimeout, "write_timeout"
	case errors.Is(err, errWrongShard):
		return http.StatusMisdirectedRequest, "wrong_shard"
	case errors.Is(err, tinygroups.ErrNoPending):
		return http.StatusConflict, "no_pending"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "canceled"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// writeJSON writes v with the given status; encoding errors are ignored
// (the connection is gone).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes err through the statusOf mapping.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status, code := statusOf(err)
	if status >= 500 {
		s.m.errors5xx.Add(1)
	} else {
		s.m.errors4xx.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Code: code})
}

// badRequest writes a 400 with the bad_request code.
func (s *Server) badRequest(w http.ResponseWriter, msg string) {
	s.m.errors4xx.Add(1)
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg, Code: "bad_request"})
}

// methodCheck enforces the endpoint's method, answering 405 otherwise.
func (s *Server) methodCheck(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		s.m.errors4xx.Add(1)
		writeJSON(w, http.StatusMethodNotAllowed,
			errorResponse{Error: "use " + method, Code: "method_not_allowed"})
		return false
	}
	return true
}

// decodeBody parses the JSON request body into v, bounding its size.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// pointHex formats an ID-space point the way the CLI tables do.
func pointHex(p tinygroups.Point) string {
	return "0x" + strconv.FormatUint(uint64(p), 16)
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.lookups.Add(1)
	var req keyRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, "bad JSON body: "+err.Error())
		return
	}
	if req.Key == "" {
		s.badRequest(w, `missing "key"`)
		return
	}
	if !s.owns(tinygroups.KeyPoint(req.Key)) {
		s.m.wrongShard.Add(1)
		s.writeError(w, errWrongShard)
		return
	}
	// Reads bypass the write queue entirely: Lookup is lock-free against
	// the System's epoch snapshot, so it runs right here on the handler
	// goroutine — no dispatcher round-trip, no queue slot, no 429.
	info, err := s.sys.Lookup(r.Context(), req.Key)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, lookupResponse{
		Key: req.Key, Owner: pointHex(info.Owner),
		Hops: info.Hops, Messages: info.Messages,
	})
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.puts.Add(1)
	var req keyRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, "bad JSON body: "+err.Error())
		return
	}
	if req.Key == "" {
		s.badRequest(w, `missing "key"`)
		return
	}
	if !s.owns(tinygroups.KeyPoint(req.Key)) {
		s.m.wrongShard.Add(1)
		s.writeError(w, errWrongShard)
		return
	}
	br, err := s.doPut(req.Key, req.Value)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if br.Err != nil {
		s.writeError(w, br.Err)
		return
	}
	writeJSON(w, http.StatusOK, lookupResponse{
		Key: req.Key, Owner: pointHex(br.Info.Owner),
		Hops: br.Info.Hops, Messages: br.Info.Messages,
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodGet) {
		return
	}
	s.m.gets.Add(1)
	key := r.URL.Query().Get("key")
	if key == "" {
		s.badRequest(w, `missing "key" query parameter`)
		return
	}
	if !s.owns(tinygroups.KeyPoint(key)) {
		s.m.wrongShard.Add(1)
		s.writeError(w, errWrongShard)
		return
	}
	// Get is a lock-free read like Lookup: no dispatcher round-trip.
	v, info, err := s.sys.Get(r.Context(), key)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, getResponse{
		lookupResponse: lookupResponse{
			Key: key, Owner: pointHex(info.Owner),
			Hops: info.Hops, Messages: info.Messages,
		},
		Value: v,
	})
}

func (s *Server) handleCompute(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.computes.Add(1)
	var req computeRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, "bad JSON body: "+err.Error())
		return
	}
	if req.Key == "" {
		s.badRequest(w, `missing "key"`)
		return
	}
	var (
		res tinygroups.ComputeResult
		err error
	)
	ctx := r.Context()
	if eerr := s.doExec(func() { res, err = s.sys.Compute(ctx, req.Key, req.Input) }); eerr != nil {
		s.writeError(w, eerr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, computeResponse{
		Key: req.Key, Group: pointHex(res.Group),
		Correct: res.Correct, Agreed: res.Agreed,
		Value: res.Value, Messages: res.Messages,
	})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.advances.Add(1)
	st, err := s.advanceEpoch(r.Context())
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodGet) {
		return
	}
	s.m.health.Add(1)
	shards := s.cfg.ShardCount
	if shards < 1 {
		shards = 1
	}
	dur := s.sys.Durability()
	h := healthResponse{
		Status:        "ok",
		Version:       s.version(),
		Epoch:         s.epoch.Load(),
		N:             s.sys.N(),
		Shard:         s.cfg.ShardIndex,
		Shards:        shards,
		Fingerprint:   s.sys.Fingerprint(),
		PendingEpoch:  s.pending.Load(),
		UptimeS:       time.Since(s.start).Seconds(),
		Durable:       dur.Enabled,
		Recovered:     dur.Recovered,
		SnapshotEpoch: dur.SnapshotEpoch,
	}
	if s.draining() {
		h.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodGet) {
		return
	}
	snap := s.m.snapshot()
	snap.Epoch = s.epoch.Load()
	snap.UptimeS = time.Since(s.start).Seconds()
	snap.Mint.Work = s.sys.MintWork()
	dur := s.sys.Durability()
	snap.Durability.Enabled = dur.Enabled
	snap.Durability.Recovered = dur.Recovered
	snap.Durability.SnapshotEpoch = dur.SnapshotEpoch
	snap.Durability.SnapshotsWritten = dur.SnapshotsWritten
	snap.Durability.OplogAppends = dur.OplogAppends
	snap.Durability.ReplayedOps = dur.ReplayedOps
	snap.Durability.SkippedSnapshots = dur.SkippedSnapshots
	snap.Durability.DiscardedLogBytes = dur.DiscardedLogBytes
	snap.Durability.SnapshotFailures = dur.SnapshotFailures
	writeJSON(w, http.StatusOK, snap)
}
