package serve

import "sync/atomic"

// counters is the server's telemetry: request counts per endpoint, error
// counts by class, and the put-coalescing statistics of the write queue.
// All fields are atomic.Int64 — lock-free read handlers, the write
// dispatcher, and /metrics itself touch them concurrently from different
// goroutines — and /metrics serves a consistent snapshot (individual
// counters are exact; cross-counter skew of a few in-flight requests is
// fine).
type counters struct {
	lookups, puts, gets, computes, advances, health atomic.Int64
	mints, verifies                                 atomic.Int64
	errors4xx, errors5xx                            atomic.Int64
	queueRejects                                    atomic.Int64
	writeTimeouts                                   atomic.Int64
	epochsAdvanced                                  atomic.Int64

	// Cluster surface: batch endpoint calls (and the keys they carried),
	// the two-phase epoch endpoints, and keyed requests rejected with 421
	// because this shard does not own the key's ring range.
	lookupBatches, lookupBatchedOps      atomic.Int64
	putBatchCalls                        atomic.Int64
	epochBuilds, epochFlips, epochAborts atomic.Int64
	wrongShard                           atomic.Int64

	putBatches, putBatchedOps atomic.Int64
	// mintedIDs / verifiedClaims total the items behind the mint and verify
	// calls (one call can carry a batch).
	mintedIDs, verifiedClaims atomic.Int64
}

// MetricsSnapshot is the /metrics JSON document.
type MetricsSnapshot struct {
	Epoch   int64   `json:"epoch"`
	UptimeS float64 `json:"uptime_s"`

	Requests struct {
		Lookup      int64 `json:"lookup"`
		Put         int64 `json:"put"`
		Get         int64 `json:"get"`
		Compute     int64 `json:"compute"`
		Mint        int64 `json:"mint"`
		Verify      int64 `json:"verify"`
		Advance     int64 `json:"advance"`
		Health      int64 `json:"health"`
		LookupBatch int64 `json:"lookup_batch"`
		PutBatch    int64 `json:"put_batch"`
		EpochBuild  int64 `json:"epoch_build"`
		EpochFlip   int64 `json:"epoch_flip"`
		EpochAbort  int64 `json:"epoch_abort"`
	} `json:"requests"`

	// Mint reports the identity layer: IDs minted and claims verified
	// across all calls, plus the difficulty currently in force (expected
	// attempts per ID; moves only under retargeting).
	Mint struct {
		MintedIDs      int64   `json:"minted_ids"`
		VerifiedClaims int64   `json:"verified_claims"`
		Work           float64 `json:"work"`
	} `json:"mint"`

	Errors struct {
		Client int64 `json:"client_4xx"`
		Server int64 `json:"server_5xx"`
	} `json:"errors"`

	// Batch reports the coalescing effectiveness of the write queue:
	// ops/calls is the mean put-batch size the concurrent load achieved.
	// Reads never batch — they resolve lock-free per request — so only
	// puts appear here.
	Batch struct {
		PutCalls int64   `json:"put_calls"`
		PutOps   int64   `json:"put_ops"`
		MeanPut  float64 `json:"mean_put_batch"`
	} `json:"batch"`

	// QueueRejects counts write requests shed with 429 by the bounded
	// write queue; reads are never shed. WriteTimeouts counts accepted
	// writes whose handlers gave up with 504 before the dispatcher
	// confirmed them (the queued work still ran). WrongShard counts keyed
	// requests rejected with 421 because this shard does not own the
	// key's ring range — nonzero only in cluster mode, and on a healthy
	// cluster it stays zero (the router never misroutes).
	QueueRejects   int64 `json:"queue_rejects"`
	WriteTimeouts  int64 `json:"write_timeouts"`
	WrongShard     int64 `json:"wrong_shard"`
	EpochsAdvanced int64 `json:"epochs_advanced"`

	// Durability mirrors System.Durability: the snapshot/op-log layer's
	// state and counters. All zero (with SnapshotEpoch -1 conventionally
	// mapped to 0 by Enabled=false) when the daemon runs without -data-dir.
	Durability struct {
		Enabled           bool  `json:"enabled"`
		Recovered         bool  `json:"recovered"`
		SnapshotEpoch     int   `json:"snapshot_epoch"`
		SnapshotsWritten  int64 `json:"snapshots_written"`
		OplogAppends      int64 `json:"oplog_appends"`
		ReplayedOps       int64 `json:"replayed_ops"`
		SkippedSnapshots  int64 `json:"skipped_snapshots"`
		DiscardedLogBytes int64 `json:"discarded_log_bytes"`
		SnapshotFailures  int64 `json:"snapshot_failures"`
	} `json:"durability"`
}

// snapshot materializes the counters into the /metrics document.
func (c *counters) snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	s.Requests.Lookup = c.lookups.Load()
	s.Requests.Put = c.puts.Load()
	s.Requests.Get = c.gets.Load()
	s.Requests.Compute = c.computes.Load()
	s.Requests.Mint = c.mints.Load()
	s.Requests.Verify = c.verifies.Load()
	s.Requests.Advance = c.advances.Load()
	s.Requests.Health = c.health.Load()
	s.Requests.LookupBatch = c.lookupBatches.Load()
	s.Requests.PutBatch = c.putBatchCalls.Load()
	s.Requests.EpochBuild = c.epochBuilds.Load()
	s.Requests.EpochFlip = c.epochFlips.Load()
	s.Requests.EpochAbort = c.epochAborts.Load()
	s.Mint.MintedIDs = c.mintedIDs.Load()
	s.Mint.VerifiedClaims = c.verifiedClaims.Load()
	s.Errors.Client = c.errors4xx.Load()
	s.Errors.Server = c.errors5xx.Load()
	s.Batch.PutCalls = c.putBatches.Load()
	s.Batch.PutOps = c.putBatchedOps.Load()
	if s.Batch.PutCalls > 0 {
		s.Batch.MeanPut = float64(s.Batch.PutOps) / float64(s.Batch.PutCalls)
	}
	s.QueueRejects = c.queueRejects.Load()
	s.WriteTimeouts = c.writeTimeouts.Load()
	s.WrongShard = c.wrongShard.Load()
	s.EpochsAdvanced = c.epochsAdvanced.Load()
	return s
}
