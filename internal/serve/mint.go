package serve

import (
	"net/http"
	"strconv"
	"strings"

	"repro/tinygroups"
)

// The mint path serves the §IV identity layer over HTTP. Minting is pure
// computation against the lock-free epoch snapshot, so — like lookups and
// gets — it runs on the handler goroutine's solver fan-out and never
// enters the write queue: a storm of expensive mints cannot stall puts
// behind it, and an epoch advance never waits on an in-flight solve.

// maxMintCount caps IDs per /v1/mint call: each one is a full PoW solve,
// so the cap bounds the compute a single request can pin.
const maxMintCount = 64

// maxVerifyClaims caps claims per /v1/verify call.
const maxVerifyClaims = 4096

// mintRequest is the body of /v1/mint.
type mintRequest struct {
	Miner string `json:"miner"`
	Count int    `json:"count,omitempty"` // default 1
}

// mintedID is one solved puzzle in a mintResponse.
type mintedID struct {
	ID       string `json:"id"`    // hex point, the pointHex convention
	Sigma    []byte `json:"sigma"` // base64 in JSON; present to /v1/verify
	Attempts int    `json:"attempts"`
}

// mintResponse reports the minted IDs and the difficulty they were solved
// at.
type mintResponse struct {
	Epoch   int        `json:"epoch"`
	Work    float64    `json:"work"` // expected attempts per ID at current τ
	Results []mintedID `json:"results"`
}

// verifyClaim is one claimed identity in a /v1/verify body.
type verifyClaim struct {
	ID    string `json:"id"`
	Sigma []byte `json:"sigma"`
}

// verifyRequest is the body of /v1/verify.
type verifyRequest struct {
	Claims []verifyClaim `json:"claims"`
}

// verifyResponse carries per-claim verdicts in input order.
type verifyResponse struct {
	Epoch    int    `json:"epoch"`
	Verdicts []bool `json:"verdicts"`
	Valid    int    `json:"valid"`
}

// parsePointHex inverts pointHex: "0x"-prefixed hex → ID-space point.
func parsePointHex(s string) (tinygroups.Point, error) {
	v, err := strconv.ParseUint(strings.TrimPrefix(s, "0x"), 16, 64)
	return tinygroups.Point(v), err
}

func (s *Server) handleMint(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.mints.Add(1)
	var req mintRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, "bad JSON body: "+err.Error())
		return
	}
	if req.Miner == "" {
		s.badRequest(w, `missing "miner"`)
		return
	}
	if req.Count == 0 {
		req.Count = 1
	}
	if req.Count < 0 || req.Count > maxMintCount {
		s.badRequest(w, `"count" outside [1, `+strconv.Itoa(maxMintCount)+`]`)
		return
	}
	// Mint ownership follows the miner's ring point, so one miner's solve
	// load always lands on one shard and the router has a pure routing rule.
	if !s.owns(tinygroups.KeyPoint(req.Miner)) {
		s.m.wrongShard.Add(1)
		s.writeError(w, errWrongShard)
		return
	}
	results, err := s.sys.MintBatch(r.Context(), req.Miner, req.Count)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.m.mintedIDs.Add(int64(len(results)))
	resp := mintResponse{Work: s.sys.MintWork(), Results: make([]mintedID, len(results))}
	for i, res := range results {
		resp.Epoch = res.Epoch
		resp.Results[i] = mintedID{ID: pointHex(res.ID), Sigma: res.Sigma, Attempts: res.Attempts}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.verifies.Add(1)
	var req verifyRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Claims) == 0 {
		s.badRequest(w, `missing "claims"`)
		return
	}
	if len(req.Claims) > maxVerifyClaims {
		s.badRequest(w, "more than "+strconv.Itoa(maxVerifyClaims)+" claims")
		return
	}
	claims := make([]tinygroups.MintClaim, len(req.Claims))
	for i, c := range req.Claims {
		id, err := parsePointHex(c.ID)
		if err != nil {
			s.badRequest(w, "claim "+strconv.Itoa(i)+": bad id: "+err.Error())
			return
		}
		claims[i] = tinygroups.MintClaim{ID: id, Sigma: c.Sigma}
	}
	verdicts, err := s.sys.VerifyMints(r.Context(), claims)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.m.verifiedClaims.Add(int64(len(verdicts)))
	resp := verifyResponse{Epoch: s.sys.Epoch(), Verdicts: verdicts}
	for _, ok := range verdicts {
		if ok {
			resp.Valid++
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
