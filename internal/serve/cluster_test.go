package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/tinygroups"
	"repro/tinygroups/cluster"
)

// postJSONAny posts v and decodes the response into out regardless of
// status, returning the status code — for asserting typed error bodies.
func postJSONAny(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode
}

// shardKeys returns one key owned by each shard of a K-cluster, probing
// the deterministic key space.
func shardKeys(t *testing.T, shards int) []string {
	t.Helper()
	keys := make([]string, shards)
	found := 0
	for i := 0; found < shards && i < 10000; i++ {
		k := fmt.Sprintf("k%08d", i)
		s := cluster.OwnerOf(k, shards)
		if keys[s] == "" {
			keys[s] = k
			found++
		}
	}
	if found < shards {
		t.Fatalf("could not find a key for every one of %d shards", shards)
	}
	return keys
}

// TestWrongShardRejections pins the 421 guard: a 2-shard server answers
// only for its own ring range on every keyed endpoint.
func TestWrongShardRejections(t *testing.T) {
	s := newTestServer(t, Config{ShardIndex: 0, ShardCount: 2}, tinygroups.WithMintWork(64))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	keys := shardKeys(t, 2)
	owned, foreign := keys[0], keys[1]

	var lr lookupResponse
	if st := postJSON(t, ts.URL+"/v1/lookup", keyRequest{Key: owned}, &lr); st != http.StatusOK {
		t.Fatalf("owned lookup status %d", st)
	}
	var er errorResponse
	if st := postJSONAny(t, ts.URL+"/v1/lookup", keyRequest{Key: foreign}, &er); st != http.StatusMisdirectedRequest {
		t.Fatalf("foreign lookup status %d, want 421", st)
	}
	if er.Code != "wrong_shard" {
		t.Fatalf("foreign lookup code %q, want wrong_shard", er.Code)
	}
	if st := postJSONAny(t, ts.URL+"/v1/put", keyRequest{Key: foreign, Value: []byte("x")}, &er); st != http.StatusMisdirectedRequest || er.Code != "wrong_shard" {
		t.Fatalf("foreign put = (%d, %q), want (421, wrong_shard)", st, er.Code)
	}
	resp, err := http.Get(ts.URL + "/v1/get?key=" + foreign)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign get status %d, want 421", resp.StatusCode)
	}
	if st := postJSONAny(t, ts.URL+"/v1/mint", mintRequest{Miner: foreign}, &er); st != http.StatusMisdirectedRequest || er.Code != "wrong_shard" {
		t.Fatalf("foreign mint = (%d, %q), want (421, wrong_shard)", st, er.Code)
	}

	// The batch form rejects per item, not per request.
	var br batchResponse
	if st := postJSON(t, ts.URL+"/v1/lookup/batch", batchLookupRequest{Keys: []string{owned, foreign}}, &br); st != http.StatusOK {
		t.Fatalf("mixed batch status %d", st)
	}
	if br.Results[0].Code != "ok" || br.Results[1].Code != "wrong_shard" {
		t.Fatalf("mixed batch codes = %q, %q", br.Results[0].Code, br.Results[1].Code)
	}

	var ms MetricsSnapshot
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	// lookup + put + get + mint singles, plus the one foreign batch item.
	if ms.WrongShard != 5 {
		t.Fatalf("wrong_shard counter = %d, want 5", ms.WrongShard)
	}
}

// TestBatchEndpointsMatchSingles pins that the batch forms return, key by
// key in request order, exactly what the single-key endpoints return.
func TestBatchEndpointsMatchSingles(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	keys := []string{"alpha", "beta", "gamma", "delta"}
	pairs := make([]batchKV, len(keys))
	for i, k := range keys {
		pairs[i] = batchKV{Key: k, Value: []byte("v-" + k)}
	}
	var pb batchResponse
	if st := postJSON(t, ts.URL+"/v1/put/batch", batchPutRequest{Pairs: pairs}, &pb); st != http.StatusOK {
		t.Fatalf("put/batch status %d", st)
	}
	if len(pb.Results) != len(keys) {
		t.Fatalf("put/batch returned %d results", len(pb.Results))
	}

	var lb batchResponse
	if st := postJSON(t, ts.URL+"/v1/lookup/batch", batchLookupRequest{Keys: keys}, &lb); st != http.StatusOK {
		t.Fatalf("lookup/batch status %d", st)
	}
	for i, k := range keys {
		var single lookupResponse
		var serr errorResponse
		st := postJSON(t, ts.URL+"/v1/lookup", keyRequest{Key: k}, &single)
		it := lb.Results[i]
		if it.Key != k {
			t.Fatalf("result %d key %q, want %q (order must be preserved)", i, it.Key, k)
		}
		if st == http.StatusOK {
			if it.Code != "ok" || it.Owner != single.Owner || it.Hops != single.Hops || it.Messages != single.Messages {
				t.Fatalf("lookup/batch[%q] = %+v diverges from single %+v", k, it, single)
			}
		} else {
			postJSONAny(t, ts.URL+"/v1/lookup", keyRequest{Key: k}, &serr)
			if it.Code != serr.Code {
				t.Fatalf("lookup/batch[%q] code %q, single code %q", k, it.Code, serr.Code)
			}
		}
		// Stored values round-trip through the batch put.
		if it.Code == "ok" {
			resp, err := http.Get(ts.URL + "/v1/get?key=" + k)
			if err != nil {
				t.Fatal(err)
			}
			var gr getResponse
			if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if string(gr.Value) != "v-"+k {
				t.Fatalf("get(%q) = %q after batch put", k, gr.Value)
			}
		}
	}
}

// TestEpochBuildFlipAbort drives the two-phase endpoints end to end:
// build parks without flipping, flip advances, a bare flip 409s, and
// build→abort→advance replays the identical epoch a plain advance runs.
func TestEpochBuildFlipAbort(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	health := func() healthResponse {
		var h healthResponse
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return h
	}

	h0 := health()
	if h0.Epoch != 0 || h0.PendingEpoch || h0.Fingerprint == "" {
		t.Fatalf("fresh health = %+v", h0)
	}

	// A bare flip has nothing to commit.
	var er errorResponse
	if st := postJSONAny(t, ts.URL+"/v1/epoch/flip", struct{}{}, &er); st != http.StatusConflict || er.Code != "no_pending" {
		t.Fatalf("bare flip = (%d, %q), want (409, no_pending)", st, er.Code)
	}

	// Build parks: epoch and fingerprint unchanged, pending visible.
	var st tinygroups.Stats
	if code := postJSON(t, ts.URL+"/v1/epoch/build", struct{}{}, &st); code != http.StatusOK {
		t.Fatalf("build status %d", code)
	}
	if st.Epoch != 1 {
		t.Fatalf("build stats epoch %d, want 1", st.Epoch)
	}
	h1 := health()
	if h1.Epoch != 0 || !h1.PendingEpoch || h1.Fingerprint != h0.Fingerprint {
		t.Fatalf("post-build health = %+v; serving state must not change", h1)
	}

	// Flip commits.
	if code := postJSON(t, ts.URL+"/v1/epoch/flip", struct{}{}, &st); code != http.StatusOK {
		t.Fatalf("flip status %d", code)
	}
	h2 := health()
	if h2.Epoch != 1 || h2.PendingEpoch || h2.Fingerprint == h0.Fingerprint {
		t.Fatalf("post-flip health = %+v", h2)
	}

	// Build→abort leaves epoch 1 serving, and the replay invariant makes
	// the next one-shot advance land exactly where a never-aborted server
	// lands: compare against a fresh server advanced twice.
	if code := postJSON(t, ts.URL+"/v1/epoch/build", struct{}{}, &st); code != http.StatusOK {
		t.Fatalf("second build status %d", code)
	}
	var ab abortResponse
	if code := postJSON(t, ts.URL+"/v1/epoch/abort", struct{}{}, &ab); code != http.StatusOK || !ab.Aborted {
		t.Fatalf("abort = (%d, %+v)", code, ab)
	}
	h3 := health()
	if h3.Epoch != 1 || h3.PendingEpoch || h3.Fingerprint != h2.Fingerprint {
		t.Fatalf("post-abort health = %+v; must keep serving epoch 1", h3)
	}
	if code := postJSON(t, ts.URL+"/v1/epoch/advance", struct{}{}, &st); code != http.StatusOK {
		t.Fatalf("advance status %d", code)
	}

	ref := newTestServer(t, Config{})
	tsRef := httptest.NewServer(ref.Handler())
	defer tsRef.Close()
	for i := 0; i < 2; i++ {
		if code := postJSON(t, tsRef.URL+"/v1/epoch/advance", struct{}{}, &st); code != http.StatusOK {
			t.Fatalf("reference advance status %d", code)
		}
	}
	if got, want := health().Fingerprint, ref.sys.Fingerprint(); got != want {
		t.Fatal("epoch 2 fingerprint after build+abort+advance diverged from plain advances")
	}
}

// TestHealthVersionAndShard pins the build-identity satellite: /healthz
// reports the configured version and shard scope.
func TestHealthVersionAndShard(t *testing.T) {
	s := newTestServer(t, Config{Version: "test-v1.2", ShardIndex: 1, ShardCount: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var h healthResponse
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.Version != "test-v1.2" || h.Shard != 1 || h.Shards != 4 {
		t.Fatalf("health = %+v", h)
	}
}
