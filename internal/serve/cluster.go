package serve

import (
	"net/http"
	"strconv"

	"repro/tinygroups"
)

// This file is the serve-side cluster surface: the batch endpoints the
// router scatter-gathers across shards, and the two-phase epoch endpoints
// (build / flip / abort) its coordinated advance drives. Everything here
// also works on a standalone daemon — the batch endpoints are just the
// amortized form of /v1/lookup and /v1/put, and build+flip equals advance.

// maxBatchItems caps keys per batch call; a router splitting a client
// batch across K shards sends at most this many per shard.
const maxBatchItems = 4096

// batchLookupRequest is the body of /v1/lookup/batch.
type batchLookupRequest struct {
	Keys []string `json:"keys"`
}

// batchKV is one pair of a /v1/put/batch body.
type batchKV struct {
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"` // base64 in JSON
}

// batchPutRequest is the body of /v1/put/batch.
type batchPutRequest struct {
	Pairs []batchKV `json:"pairs"`
}

// batchItem is one key's outcome in a batch response, in request order.
// Code follows the statusOf taxonomy ("ok", "unreachable", "wrong_shard",
// ...); Owner/Hops/Messages carry the routing result when Code is "ok".
type batchItem struct {
	Key      string `json:"key"`
	Code     string `json:"code"`
	Owner    string `json:"owner,omitempty"`
	Hops     int    `json:"hops,omitempty"`
	Messages int64  `json:"messages,omitempty"`
	Error    string `json:"error,omitempty"`
}

// batchResponse carries per-key outcomes in request order.
type batchResponse struct {
	Results []batchItem `json:"results"`
}

// batchItemOf maps one BatchResult onto the wire shape.
func batchItemOf(key string, br tinygroups.BatchResult) batchItem {
	it := batchItem{Key: key}
	if br.Err != nil {
		_, it.Code = statusOf(br.Err)
		it.Error = br.Err.Error()
		return it
	}
	it.Code = "ok"
	it.Owner = pointHex(br.Info.Owner)
	it.Hops = br.Info.Hops
	it.Messages = br.Info.Messages
	return it
}

// splitOwned partitions keys into the owned subset (returned with its
// original indexes) and pre-fills out with wrong_shard items for the rest.
// On a standalone server every key is owned and out is untouched.
func (s *Server) splitOwned(keys []string, out []batchItem) (owned []string, idx []int) {
	if s.cfg.ShardCount <= 1 {
		return keys, nil
	}
	owned = make([]string, 0, len(keys))
	idx = make([]int, 0, len(keys))
	for i, k := range keys {
		if s.owns(tinygroups.KeyPoint(k)) {
			owned = append(owned, k)
			idx = append(idx, i)
			continue
		}
		s.m.wrongShard.Add(1)
		out[i] = batchItem{Key: k, Code: "wrong_shard", Error: errWrongShard.Error()}
	}
	return owned, idx
}

func (s *Server) handleLookupBatch(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.lookupBatches.Add(1)
	var req batchLookupRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Keys) == 0 {
		s.badRequest(w, `missing "keys"`)
		return
	}
	if len(req.Keys) > maxBatchItems {
		s.badRequest(w, "more than "+strconv.Itoa(maxBatchItems)+" keys")
		return
	}
	s.m.lookupBatchedOps.Add(int64(len(req.Keys)))
	out := make([]batchItem, len(req.Keys))
	owned, idx := s.splitOwned(req.Keys, out)
	// Like single lookups, the batch resolves lock-free on the handler
	// goroutine against one pinned snapshot — no queue slot, no 429.
	results, err := s.sys.LookupBatch(r.Context(), owned)
	if err != nil {
		s.writeError(w, err)
		return
	}
	for j, br := range results {
		i := j
		if idx != nil {
			i = idx[j]
		}
		out[i] = batchItemOf(owned[j], br)
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: out})
}

func (s *Server) handlePutBatch(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.putBatchCalls.Add(1)
	var req batchPutRequest
	if err := decodeBody(w, r, &req); err != nil {
		s.badRequest(w, "bad JSON body: "+err.Error())
		return
	}
	if len(req.Pairs) == 0 {
		s.badRequest(w, `missing "pairs"`)
		return
	}
	if len(req.Pairs) > maxBatchItems {
		s.badRequest(w, "more than "+strconv.Itoa(maxBatchItems)+" pairs")
		return
	}
	keys := make([]string, len(req.Pairs))
	for i, kv := range req.Pairs {
		keys[i] = kv.Key
	}
	out := make([]batchItem, len(req.Pairs))
	owned, idx := s.splitOwned(keys, out)
	pairs := make([]tinygroups.KV, len(owned))
	for j := range owned {
		i := j
		if idx != nil {
			i = idx[j]
		}
		pairs[j] = tinygroups.KV{Key: req.Pairs[i].Key, Value: req.Pairs[i].Value}
	}
	// The whole batch runs as one dispatcher turn: a single PutBatch call
	// under the writer mutex, serialized against every other write exactly
	// like coalesced single puts.
	var (
		results []tinygroups.BatchResult
		err     error
	)
	ctx := r.Context()
	if eerr := s.doExec(func() {
		results, err = s.sys.PutBatch(ctx, pairs)
		if err == nil {
			s.m.putBatches.Add(1)
			s.m.putBatchedOps.Add(int64(len(pairs)))
		}
	}); eerr != nil {
		s.writeError(w, eerr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	for j, br := range results {
		i := j
		if idx != nil {
			i = idx[j]
		}
		out[i] = batchItemOf(owned[j], br)
	}
	writeJSON(w, http.StatusOK, batchResponse{Results: out})
}

// abortResponse is the /v1/epoch/abort body.
type abortResponse struct {
	Aborted bool `json:"aborted"`
}

// handleEpochBuild is phase one of the coordinated advance: construct the
// upcoming generation off to the side and park it. Reads keep serving the
// current epoch; nothing flips until /v1/epoch/flip.
func (s *Server) handleEpochBuild(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.epochBuilds.Add(1)
	var (
		st  tinygroups.Stats
		err error
	)
	ctx := r.Context()
	if eerr := s.doExec(func() {
		st, err = s.sys.BuildEpoch(ctx)
		if err == nil {
			s.pending.Store(true)
		}
	}); eerr != nil {
		s.writeError(w, eerr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEpochFlip is phase two: commit the parked generation as the
// serving one. With nothing parked it answers a typed 409 ("no_pending").
func (s *Server) handleEpochFlip(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.epochFlips.Add(1)
	var (
		st  tinygroups.Stats
		err error
	)
	if eerr := s.doExec(func() {
		st, err = s.sys.CommitEpoch()
		if err == nil {
			s.pending.Store(false)
			s.epoch.Store(int64(st.Epoch))
			s.m.epochsAdvanced.Add(1)
		}
	}); eerr != nil {
		s.writeError(w, eerr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleEpochAbort discards a parked build, rewinding the construction
// randomness so the retried round replays identically. Aborting with
// nothing parked reports aborted=false, not an error — the router aborts
// every shard after a partial phase-1 failure without tracking which
// shards got as far as building.
func (s *Server) handleEpochAbort(w http.ResponseWriter, r *http.Request) {
	if !s.methodCheck(w, r, http.MethodPost) {
		return
	}
	s.m.epochAborts.Add(1)
	var (
		aborted bool
		err     error
	)
	if eerr := s.doExec(func() {
		aborted, err = s.sys.AbortEpoch()
		if err == nil {
			s.pending.Store(false)
		}
	}); eerr != nil {
		s.writeError(w, eerr)
		return
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, abortResponse{Aborted: aborted})
}
