package serve

import (
	"context"

	"repro/tinygroups"
)

// reqKind discriminates queued requests: batchable lookups and puts, and
// exclusive closures that need the dispatcher goroutine to themselves.
type reqKind uint8

const (
	kindLookup reqKind = iota
	kindPut
	kindExec
)

// request is one unit of queued work. Batchable requests carry a key (and,
// for puts, a value) plus a buffered reply channel; exclusive requests
// carry the closure to run.
type request struct {
	kind  reqKind
	key   string
	value []byte
	done  chan tinygroups.BatchResult
	exec  func()
}

// dispatch is the server's system loop: it owns every call into the
// tinygroups.System. Each iteration takes one request off the queue, then
// greedily coalesces whatever else is already queued — up to MaxBatch per
// kind, stopping at an exclusive request — and flushes the collected
// lookups and puts as one LookupBatch and one PutBatch call. The batch
// calls fan across the System's worker pool internally, so coalescing is
// what turns N concurrent HTTP lookups into one pool-amortized sweep.
//
// An exclusive request (Get, Compute, AdvanceEpoch) acts as a barrier: the
// pending batches flush first, then the closure runs alone. After Shutdown
// closes the queue, the loop drains every remaining request before
// exiting, so no waiter is ever abandoned.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	looks := make([]*request, 0, s.cfg.MaxBatch)
	puts := make([]*request, 0, s.cfg.MaxBatch)
	for {
		r, ok := <-s.reqs
		if !ok {
			return
		}
		looks, puts = looks[:0], puts[:0]
		var exec *request
		if r.kind == kindExec {
			exec = r
		} else {
			looks, puts = appendPending(r, looks, puts)
			exec = s.collect(&looks, &puts)
		}
		s.flush(looks, puts)
		if exec != nil {
			exec.exec()
		}
	}
}

// collect drains requests already sitting in the queue without blocking,
// appending batchable ones until a batch fills or an exclusive request
// arrives (returned to the caller to run after the flush).
func (s *Server) collect(looks, puts *[]*request) *request {
	for len(*looks) < s.cfg.MaxBatch && len(*puts) < s.cfg.MaxBatch {
		select {
		case r, ok := <-s.reqs:
			if !ok {
				return nil
			}
			if r.kind == kindExec {
				return r
			}
			*looks, *puts = appendPending(r, *looks, *puts)
		default:
			return nil
		}
	}
	return nil
}

func appendPending(r *request, looks, puts []*request) ([]*request, []*request) {
	if r.kind == kindLookup {
		return append(looks, r), puts
	}
	return looks, append(puts, r)
}

// flush issues the coalesced batch calls and replies to every waiter. The
// batch context is Background on purpose: requests already accepted are
// served to completion even during shutdown drain.
func (s *Server) flush(looks, puts []*request) {
	if len(looks) > 0 {
		if h := s.cfg.hookBeforeBatch; h != nil {
			h()
		}
		keys := make([]string, len(looks))
		for i, r := range looks {
			keys[i] = r.key
		}
		res, err := s.sys.LookupBatch(context.Background(), keys)
		s.m.lookupBatches.Add(1)
		s.m.lookupBatchedOps.Add(int64(len(looks)))
		reply(looks, res, err)
	}
	if len(puts) > 0 {
		if h := s.cfg.hookBeforeBatch; h != nil {
			h()
		}
		pairs := make([]tinygroups.KV, len(puts))
		for i, r := range puts {
			pairs[i] = tinygroups.KV{Key: r.key, Value: r.value}
		}
		res, err := s.sys.PutBatch(context.Background(), pairs)
		s.m.putBatches.Add(1)
		s.m.putBatchedOps.Add(int64(len(puts)))
		reply(puts, res, err)
	}
}

// reply fans the batch results back to the waiting handlers; a call-level
// error (ErrClosed — impossible while the dispatcher runs — or a context
// error) is delivered to every request of the batch.
func reply(reqs []*request, res []tinygroups.BatchResult, err error) {
	for i, r := range reqs {
		if err != nil {
			r.done <- tinygroups.BatchResult{Err: err}
			continue
		}
		r.done <- res[i]
	}
}
