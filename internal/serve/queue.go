package serve

import (
	"context"

	"repro/tinygroups"
)

// reqKind discriminates queued requests: batchable puts, and exclusive
// closures that need the write dispatcher to themselves.
type reqKind uint8

const (
	kindPut reqKind = iota
	kindExec
)

// request is one unit of queued write work. Puts carry a key and value
// plus a buffered reply channel; exclusive requests carry the closure to
// run.
type request struct {
	kind  reqKind
	key   string
	value []byte
	done  chan tinygroups.BatchResult
	exec  func()
}

// dispatch is the server's write loop: every serialized System operation —
// puts, computes, epoch advances — funnels through this one goroutine, so
// writers never contend on the System's writer mutex. Reads never come
// here: lookup and get handlers resolve lock-free against the System's
// epoch snapshot on their own goroutines. Each iteration takes one request
// off the queue, then greedily coalesces whatever puts are already queued
// — up to MaxBatch, stopping at an exclusive request — and flushes them as
// one PutBatch call, which fans the routing across reader goroutines
// internally.
//
// An exclusive request (Compute, AdvanceEpoch) acts as a barrier: the
// pending puts flush first, then the closure runs alone. After Shutdown
// closes the queue, the loop drains every remaining request before
// exiting, so no waiter is ever abandoned.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	puts := make([]*request, 0, s.cfg.MaxBatch)
	for {
		r, ok := <-s.reqs
		if !ok {
			return
		}
		puts = puts[:0]
		var exec *request
		if r.kind == kindExec {
			exec = r
		} else {
			puts = append(puts, r)
			exec = s.collect(&puts)
		}
		s.flush(puts)
		if exec != nil {
			exec.exec()
		}
	}
}

// collect drains requests already sitting in the queue without blocking,
// appending puts until a batch fills or an exclusive request arrives
// (returned to the caller to run after the flush).
func (s *Server) collect(puts *[]*request) *request {
	for len(*puts) < s.cfg.MaxBatch {
		select {
		case r, ok := <-s.reqs:
			if !ok {
				return nil
			}
			if r.kind == kindExec {
				return r
			}
			*puts = append(*puts, r)
		default:
			return nil
		}
	}
	return nil
}

// flush issues the coalesced PutBatch call and replies to every waiter.
// The batch context is Background on purpose: requests already accepted
// are served to completion even during shutdown drain.
func (s *Server) flush(puts []*request) {
	if len(puts) == 0 {
		return
	}
	if h := s.cfg.hookBeforeBatch; h != nil {
		h()
	}
	pairs := make([]tinygroups.KV, len(puts))
	for i, r := range puts {
		pairs[i] = tinygroups.KV{Key: r.key, Value: r.value}
	}
	res, err := s.sys.PutBatch(context.Background(), pairs)
	s.m.putBatches.Add(1)
	s.m.putBatchedOps.Add(int64(len(puts)))
	reply(puts, res, err)
}

// reply fans the batch results back to the waiting handlers; a call-level
// error (ErrClosed — impossible while the dispatcher runs — or a context
// error) is delivered to every request of the batch.
func reply(reqs []*request, res []tinygroups.BatchResult, err error) {
	for i, r := range reqs {
		if err != nil {
			r.done <- tinygroups.BatchResult{Err: err}
			continue
		}
		r.done <- res[i]
	}
}
