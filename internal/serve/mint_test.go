package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/tinygroups"
)

// postJSON posts v and decodes the response into out (when non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestMintVerifyRoundTrip: mint over HTTP, verify the claims over HTTP,
// then advance the epoch and confirm the claims expired.
func TestMintVerifyRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{}, tinygroups.WithMintWork(1<<8))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var minted mintResponse
	if st := postJSON(t, ts.URL+"/v1/mint", mintRequest{Miner: "alice", Count: 3}, &minted); st != http.StatusOK {
		t.Fatalf("mint: status %d", st)
	}
	if len(minted.Results) != 3 || minted.Work != 1<<8 {
		t.Fatalf("mint response %+v: want 3 results at work 256", minted)
	}

	req := verifyRequest{}
	for _, m := range minted.Results {
		req.Claims = append(req.Claims, verifyClaim{ID: m.ID, Sigma: m.Sigma})
	}
	// One forged claim rides along: valid σ, wrong ID.
	req.Claims = append(req.Claims, verifyClaim{ID: "0xdeadbeef", Sigma: minted.Results[0].Sigma})
	var verdicts verifyResponse
	if st := postJSON(t, ts.URL+"/v1/verify", req, &verdicts); st != http.StatusOK {
		t.Fatalf("verify: status %d", st)
	}
	if verdicts.Valid != 3 || !verdicts.Verdicts[0] || verdicts.Verdicts[3] {
		t.Fatalf("verdicts %+v: want first three true, forged claim false", verdicts)
	}

	if st := postJSON(t, ts.URL+"/v1/epoch/advance", struct{}{}, nil); st != http.StatusOK {
		t.Fatalf("advance: status %d", st)
	}
	if st := postJSON(t, ts.URL+"/v1/verify", verifyRequest{Claims: req.Claims[:3]}, &verdicts); st != http.StatusOK {
		t.Fatalf("verify after advance: status %d", st)
	}
	if verdicts.Valid != 0 {
		t.Fatalf("%d claims still valid after the epoch string rotated", verdicts.Valid)
	}

	// The metrics surface saw it all.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests.Mint != 1 || m.Requests.Verify != 2 || m.Mint.MintedIDs != 3 || m.Mint.VerifiedClaims != 7 || m.Mint.Work != 1<<8 {
		t.Fatalf("metrics %+v: mint accounting off", m)
	}
}

// TestMintVerifyBadInput: the new endpoints share the 4xx envelope
// discipline of the rest of the surface.
func TestMintVerifyBadInput(t *testing.T) {
	s := newTestServer(t, Config{}, tinygroups.WithMintWork(1<<8))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		path string
		body any
	}{
		{"mint missing miner", "/v1/mint", mintRequest{}},
		{"mint count too large", "/v1/mint", mintRequest{Miner: "a", Count: maxMintCount + 1}},
		{"mint negative count", "/v1/mint", mintRequest{Miner: "a", Count: -1}},
		{"verify no claims", "/v1/verify", verifyRequest{}},
		{"verify bad id", "/v1/verify", verifyRequest{Claims: []verifyClaim{{ID: "zzz"}}}},
	}
	for _, c := range cases {
		if st := postJSON(t, ts.URL+c.path, c.body, nil); st != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, st)
		}
	}
	for _, path := range []string{"/v1/mint", "/v1/verify"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}
