// Package serve implements the HTTP/JSON serving layer behind the
// tinygroupsd daemon: request handlers over a tinygroups.System, a bounded
// write queue that coalesces concurrent puts into amortized PutBatch
// calls, a background epoch ticker, and graceful drain-then-close
// shutdown.
//
// The server mirrors the System's one-writer/many-readers contract.
// Reads — /v1/lookup and /v1/get — call the System directly from their
// handler goroutines: Lookup and Get are lock-free against the
// atomically-swapped epoch snapshot, so reads scale with serving
// goroutines, never queue behind writes, and keep flat latency through a
// live epoch advance. Writes — /v1/put, /v1/compute, /v1/epoch/advance —
// funnel through a single dispatcher goroutine over a bounded queue: the
// dispatcher coalesces adjacent puts into one PutBatch call and runs
// exclusive operations (Compute, AdvanceEpoch) between batches, so
// writers never contend on the System's writer mutex. Queue-full 429s
// therefore apply to writes only; reads are never shed.
//
// Shutdown follows the drain-then-close contract: the epoch ticker is
// cancelled first (an in-flight epoch aborts cooperatively between
// construction batches via RunEpochContext), the embedded http.Server
// stops accepting and waits for in-flight handlers, the queue is closed
// and drained — every enqueued request still receives a real response —
// and only then is the System closed.
package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/tinygroups"
	"repro/tinygroups/cluster"
)

// Config tunes a Server. The zero value is usable: defaults are applied by
// New.
type Config struct {
	// MaxBatch bounds how many queued puts are coalesced into a single
	// PutBatch call. Default 256.
	MaxBatch int
	// QueueCap bounds the write queue; a full queue fails fast with
	// 429 Too Many Requests instead of building unbounded backlog.
	// Reads never consume queue slots and are never shed. Default 1024.
	QueueCap int
	// EpochEvery, when positive, starts a background ticker that advances
	// the epoch at that period. Ticks are closed-loop (a tick waits for
	// the previous advance to finish) and the in-flight advance is
	// cancelled cooperatively on Shutdown.
	EpochEvery time.Duration
	// WriteTimeout, when positive, bounds how long an accepted write may
	// wait on the dispatcher before its handler gives up with a typed
	// 504 (code "write_timeout"). The queued work itself is not revoked —
	// the dispatcher still executes it when its turn comes, standard
	// gateway-timeout semantics ("not confirmed in time", not "not
	// done") — but the client gets a deterministic fast failure instead
	// of a stall behind a saturated queue. Zero disables the bound.
	WriteTimeout time.Duration
	// Logf, when non-nil, receives one line per lifecycle event (start,
	// epoch advance, shutdown). Requests are not logged.
	Logf func(format string, args ...any)

	// ShardIndex/ShardCount scope this server to one contiguous ring range
	// of a cluster: with ShardCount > 1 the keyed endpoints answer only for
	// keys whose ring point this shard owns (cluster.ShardOf) and reject
	// the rest with a typed 421 ("wrong_shard") — the guard that catches a
	// misrouted request before it silently serves from the wrong store.
	// ShardCount <= 1 is the standalone daemon: every key is owned.
	ShardIndex int
	ShardCount int
	// Version, when non-empty, is the build identity reported by the
	// startup log line and the /healthz payload, so multi-process harness
	// logs identify which binary answered.
	Version string

	// hookBeforeBatch, when non-nil, runs on the dispatcher goroutine
	// immediately before each put-batch flush. Tests use it to hold a
	// batch open while they stage concurrent requests; it must be set
	// before New (the dispatcher starts there).
	hookBeforeBatch func()
}

// errors returned by the write path, mapped to HTTP statuses by the
// handlers.
var (
	errQueueFull    = errors.New("serve: request queue full")
	errDraining     = errors.New("serve: server draining")
	errWriteTimeout = errors.New("serve: write not confirmed within the write timeout")
	errWrongShard   = errors.New("serve: key not owned by this shard")
)

// Server serves a tinygroups.System over HTTP/JSON. Create one with New,
// run it with Serve or ListenAndServe (or mount Handler on any server),
// and stop it with Shutdown.
type Server struct {
	sys *tinygroups.System
	cfg Config
	mux *http.ServeMux
	hs  *http.Server

	// mu guards closed against enqueue: every sender holds the read lock
	// across its channel send, so once Shutdown flips closed under the
	// write lock no send can race the subsequent close(reqs).
	mu     sync.RWMutex
	closed bool

	reqs           chan *request
	dispatcherDone chan struct{}
	// closeOnce guards the final sys.Close so a Shutdown retried after a
	// context expiry still closes the System exactly once.
	closeOnce sync.Once
	closeErr  error

	tickCancel context.CancelFunc
	tickerDone chan struct{}

	// epoch mirrors the last epoch counter the server observed, so
	// /healthz and /metrics keep answering after Shutdown closes the
	// System. While the System is live they could equally read
	// sys.Epoch() — it is lock-free.
	epoch atomic.Int64
	// pending mirrors whether a two-phase build is parked awaiting flip.
	// It is the serve-layer shadow of System.HasPendingEpoch, kept here so
	// /healthz never blocks on the writer mutex while a build is running.
	pending atomic.Bool
	start   time.Time
	m       counters
}

// New wraps sys in a Server. The Server takes ownership of sys: Shutdown
// closes it. The dispatcher goroutine starts immediately; HTTP serving
// starts with Serve/ListenAndServe.
func New(sys *tinygroups.System, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 256
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1024
	}
	s := &Server{
		sys:            sys,
		cfg:            cfg,
		reqs:           make(chan *request, cfg.QueueCap),
		dispatcherDone: make(chan struct{}),
		start:          time.Now(),
	}
	s.epoch.Store(int64(sys.Epoch()))
	s.mux = s.routes()
	s.hs = &http.Server{Handler: s.mux}
	go s.dispatch()
	if cfg.EpochEvery > 0 {
		ctx, cancel := context.WithCancel(context.Background())
		s.tickCancel = cancel
		s.tickerDone = make(chan struct{})
		go s.tick(ctx)
	}
	return s
}

// Handler returns the server's HTTP handler, for mounting on an external
// http.Server or an httptest.Server. Callers that bypass Serve are still
// expected to call Shutdown to drain the queue and close the System.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown. It returns nil after a
// clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	err := s.hs.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Shutdown. It returns nil
// after a clean Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if s.cfg.ShardCount > 1 {
		s.logf("tinygroupsd: %s listening on %s (shard %d/%d)",
			s.version(), l.Addr(), s.cfg.ShardIndex, s.cfg.ShardCount)
	} else {
		s.logf("tinygroupsd: %s listening on %s", s.version(), l.Addr())
	}
	return s.Serve(l)
}

// version is the build identity for logs and /healthz, "dev" by default.
func (s *Server) version() string {
	if s.cfg.Version != "" {
		return s.cfg.Version
	}
	return "dev"
}

// owns reports whether this server's shard owns ring point p. Standalone
// servers (ShardCount <= 1) own every point.
func (s *Server) owns(p tinygroups.Point) bool {
	return s.cfg.ShardCount <= 1 || cluster.ShardOf(p, s.cfg.ShardCount) == s.cfg.ShardIndex
}

// Shutdown drains and stops the server: the epoch ticker is cancelled (an
// in-flight advance aborts cooperatively), the HTTP listener stops
// accepting and in-flight handlers complete, every queued request is
// answered, and the System is closed. ctx bounds the wait; on expiry the
// remaining work is abandoned and ctx.Err() returned. Shutdown is
// idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	// Stop feeding the queue new epoch work first, and cancel the advance
	// that may be mid-construction — RunEpochContext aborts between
	// per-ID batches, so the dispatcher frees up quickly.
	if s.tickCancel != nil {
		s.tickCancel()
		select {
		case <-s.tickerDone:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// Let in-flight HTTP handlers finish while the dispatcher is still
	// serving; new connections are refused by the http layer.
	s.hs.SetKeepAlivesEnabled(false)
	if err := s.hs.Shutdown(ctx); err != nil {
		return err
	}
	// Refuse new enqueues, then close the queue: the mu dance guarantees
	// no sender can race the close, and the dispatcher drains everything
	// already queued before exiting — each request gets a real reply.
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.reqs)
	}
	select {
	case <-s.dispatcherDone:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.closeOnce.Do(func() {
		s.logf("tinygroupsd: drained, closing system")
		s.closeErr = s.sys.Close()
	})
	return s.closeErr
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// enqueue places r on the bounded write queue, failing fast with
// errQueueFull when it is saturated and errDraining once Shutdown has
// begun. Reads never call this: they resolve lock-free against the
// System's epoch snapshot without consuming a queue slot.
func (s *Server) enqueue(r *request) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return errDraining
	}
	select {
	case s.reqs <- r:
		return nil
	default:
		s.m.queueRejects.Add(1)
		return errQueueFull
	}
}

// doPut enqueues one put and waits — bounded by WriteTimeout when set —
// for the dispatcher's reply. On timeout the handler answers 504 while
// the queued put still executes when its turn comes (its reply channel is
// buffered, so the dispatcher never blocks on an abandoned waiter).
func (s *Server) doPut(key string, value []byte) (tinygroups.BatchResult, error) {
	r := &request{kind: kindPut, key: key, value: value, done: make(chan tinygroups.BatchResult, 1)}
	if err := s.enqueue(r); err != nil {
		return tinygroups.BatchResult{}, err
	}
	if d := s.cfg.WriteTimeout; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case br := <-r.done:
			return br, nil
		case <-timer.C:
			s.m.writeTimeouts.Add(1)
			return tinygroups.BatchResult{}, errWriteTimeout
		}
	}
	return <-r.done, nil
}

// doExec runs fn on the dispatcher goroutine, serialized against every
// other write, and waits — bounded by WriteTimeout when set — for it to
// finish. fn runs even during shutdown drain, so callers always get an
// answer; a caller that times out must not read fn's results (the closure
// still runs later, unobserved).
func (s *Server) doExec(fn func()) error {
	done := make(chan struct{})
	r := &request{kind: kindExec, exec: func() { fn(); close(done) }}
	if err := s.enqueue(r); err != nil {
		return err
	}
	if d := s.cfg.WriteTimeout; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-done:
			return nil
		case <-timer.C:
			s.m.writeTimeouts.Add(1)
			return errWriteTimeout
		}
	}
	<-done
	return nil
}

// advanceEpoch runs one epoch turnover on the dispatcher and mirrors the
// new epoch counter. It returns the construction stats or the typed error.
func (s *Server) advanceEpoch(ctx context.Context) (tinygroups.Stats, error) {
	var (
		st  tinygroups.Stats
		err error
	)
	if eerr := s.doExec(func() {
		st, err = s.sys.AdvanceEpoch(ctx)
		if err == nil {
			// A one-shot advance commits any parked two-phase build.
			s.pending.Store(false)
			s.epoch.Store(int64(st.Epoch))
			s.m.epochsAdvanced.Add(1)
		}
	}); eerr != nil {
		return tinygroups.Stats{}, eerr
	}
	return st, err
}

// tick drives the background epoch ticker: one closed-loop AdvanceEpoch
// per period, cancelled cooperatively when ctx ends.
func (s *Server) tick(ctx context.Context) {
	defer close(s.tickerDone)
	t := time.NewTicker(s.cfg.EpochEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st, err := s.advanceEpoch(ctx)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				s.logf("tinygroupsd: epoch advance failed: %v", err)
				continue
			}
			// Mint difficulty can move at each advance under retargeting;
			// the ticker line is where operators watch it drift.
			s.logf("tinygroupsd: epoch %d built (n=%d, qf=%.4f, mint-work=%.0f)",
				st.Epoch, st.N, st.QfSingle, s.sys.MintWork())
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
