package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/tinygroups"
)

// newTestServer builds a small deterministic system wrapped in a Server
// and registers cleanup. Extra system options stack after the defaults.
func newTestServer(t *testing.T, cfg Config, opts ...tinygroups.Option) *Server {
	t.Helper()
	sys, err := tinygroups.New(256, append([]tinygroups.Option{tinygroups.WithSeed(1)}, opts...)...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := New(sys, cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s
}

func TestStatusOf(t *testing.T) {
	cases := []struct {
		err        error
		wantStatus int
		wantCode   string
	}{
		{nil, http.StatusOK, "ok"},
		{tinygroups.ErrNotFound, http.StatusNotFound, "not_found"},
		{fmt.Errorf("wrapped: %w", tinygroups.ErrNotFound), http.StatusNotFound, "not_found"},
		{tinygroups.ErrUnreachable, http.StatusBadGateway, "unreachable"},
		{tinygroups.ErrBadConfig, http.StatusBadRequest, "bad_config"},
		{fmt.Errorf("wrapped: %w", tinygroups.ErrBadConfig), http.StatusBadRequest, "bad_config"},
		{tinygroups.ErrClosed, http.StatusServiceUnavailable, "closed"},
		{errDraining, http.StatusServiceUnavailable, "closed"},
		{errQueueFull, http.StatusTooManyRequests, "queue_full"},
		{errWriteTimeout, http.StatusGatewayTimeout, "write_timeout"},
		{fmt.Errorf("wrapped: %w", errWriteTimeout), http.StatusGatewayTimeout, "write_timeout"},
		{context.Canceled, http.StatusGatewayTimeout, "canceled"},
		{context.DeadlineExceeded, http.StatusGatewayTimeout, "canceled"},
		{fmt.Errorf("boom"), http.StatusInternalServerError, "internal"},
	}
	for _, c := range cases {
		status, code := statusOf(c.err)
		if status != c.wantStatus || code != c.wantCode {
			t.Errorf("statusOf(%v) = (%d, %q), want (%d, %q)",
				c.err, status, code, c.wantStatus, c.wantCode)
		}
	}
}

// TestHandlersBadInput table-tests the HTTP surface's input validation:
// every malformed request maps to a 4xx with a stable machine-readable
// code, never a 5xx or a hang.
func TestHandlersBadInput(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"lookup wrong method", http.MethodGet, "/v1/lookup", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"lookup bad json", http.MethodPost, "/v1/lookup", "{", http.StatusBadRequest, "bad_request"},
		{"lookup missing key", http.MethodPost, "/v1/lookup", "{}", http.StatusBadRequest, "bad_request"},
		{"lookup unknown field", http.MethodPost, "/v1/lookup", `{"nope":1}`, http.StatusBadRequest, "bad_request"},
		{"put wrong method", http.MethodGet, "/v1/put", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"put missing key", http.MethodPost, "/v1/put", `{"value":"AA=="}`, http.StatusBadRequest, "bad_request"},
		{"get wrong method", http.MethodPost, "/v1/get?key=x", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"get missing key", http.MethodGet, "/v1/get", "", http.StatusBadRequest, "bad_request"},
		{"compute wrong method", http.MethodGet, "/v1/compute", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"compute missing key", http.MethodPost, "/v1/compute", `{"input":1}`, http.StatusBadRequest, "bad_request"},
		{"advance wrong method", http.MethodGet, "/v1/epoch/advance", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"healthz wrong method", http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed, "method_not_allowed"},
		{"metrics wrong method", http.MethodPost, "/metrics", "", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status = %d, want %d", resp.StatusCode, c.wantStatus)
			}
			var e errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("decode error body: %v", err)
			}
			if e.Code != c.wantCode {
				t.Fatalf("code = %q, want %q", e.Code, c.wantCode)
			}
		})
	}
}

// TestPutGetRoundTrip exercises the happy path end to end: a put whose
// route succeeds, the matching get, and the typed 404 for a key never
// stored.
func TestPutGetRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A few keys route through red groups at any seed (the conceded ε), so
	// scan until one put lands.
	var stored string
	for i := 0; i < 32 && stored == ""; i++ {
		key := fmt.Sprintf("round-%d", i)
		body, _ := json.Marshal(map[string]any{"key": key, "value": []byte("payload")})
		resp, err := http.Post(ts.URL+"/v1/put", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			stored = key
		case http.StatusBadGateway: // unreachable — try the next key
		default:
			t.Fatalf("put %q: unexpected status %d", key, resp.StatusCode)
		}
	}
	if stored == "" {
		t.Fatal("no put landed in 32 attempts — search failure rate implausibly high")
	}

	resp, err := http.Get(ts.URL + "/v1/get?key=" + stored)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %q: status %d, want 200", stored, resp.StatusCode)
	}
	var got getResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if string(got.Value) != "payload" {
		t.Fatalf("get %q: value %q, want %q", stored, got.Value, "payload")
	}

	// A reachable key that was never stored is the typed 404.
	found404 := false
	for i := 0; i < 32 && !found404; i++ {
		resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/get?key=missing-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		var e errorResponse
		if resp.StatusCode == http.StatusNotFound {
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if e.Code != "not_found" {
				t.Fatalf("404 code = %q, want not_found", e.Code)
			}
			found404 = true
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if !found404 {
		t.Fatal("no missing key returned 404 in 32 attempts")
	}
}

// TestComputeAndAdvance exercises the two exclusive endpoints: a group
// computation and an explicit epoch turnover, checking the epoch counter
// moves and /healthz mirrors it.
func TestComputeAndAdvance(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var cres computeResponse
	for i := 0; i < 32; i++ {
		body, _ := json.Marshal(map[string]any{"key": fmt.Sprintf("job-%d", i), "input": 1})
		resp, err := http.Post(ts.URL+"/v1/compute", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&cres); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			break
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if cres.Group == "" {
		t.Fatal("no compute landed in 32 attempts")
	}

	resp, err := http.Post(ts.URL+"/v1/epoch/advance", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d, want 200", resp.StatusCode)
	}
	var st tinygroups.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 {
		t.Fatalf("advance: epoch %d, want 1", st.Epoch)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Epoch != 1 || h.N != 256 {
		t.Fatalf("healthz = %+v, want status ok / epoch 1 / n 256", h)
	}
}

// TestEpochTicker checks the background ticker advances epochs on its own
// and that Shutdown stops it cleanly.
func TestEpochTicker(t *testing.T) {
	sys, err := tinygroups.New(64, tinygroups.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys, Config{EpochEvery: 5 * time.Millisecond})
	deadline := time.Now().Add(10 * time.Second)
	for s.m.epochsAdvanced.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker advanced no epoch within 10s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if s.epoch.Load() == 0 {
		t.Fatal("epoch mirror never updated")
	}
}

// TestQueueFull checks the bounded write queue fails fast: with the
// dispatcher held and a capacity-1 queue, the third concurrent put gets
// 429 — while reads, which never consume queue slots, keep succeeding.
func TestQueueFull(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	s := newTestServer(t, Config{
		QueueCap: 1,
		hookBeforeBatch: func() {
			entered <- struct{}{}
			<-gate
		},
	})

	// First put: taken by the dispatcher, held at the flush hook.
	r1 := &request{kind: kindPut, key: "a", done: make(chan tinygroups.BatchResult, 1)}
	if err := s.enqueue(r1); err != nil {
		t.Fatalf("enqueue 1: %v", err)
	}
	<-entered
	// Second put: sits in the capacity-1 queue.
	r2 := &request{kind: kindPut, key: "b", done: make(chan tinygroups.BatchResult, 1)}
	if err := s.enqueue(r2); err != nil {
		t.Fatalf("enqueue 2: %v", err)
	}
	// Third put: queue full.
	r3 := &request{kind: kindPut, key: "c", done: make(chan tinygroups.BatchResult, 1)}
	if err := s.enqueue(r3); err != errQueueFull {
		t.Fatalf("enqueue 3: err = %v, want errQueueFull", err)
	}
	if got, code := statusOf(errQueueFull); got != http.StatusTooManyRequests || code != "queue_full" {
		t.Fatalf("statusOf(errQueueFull) = (%d, %q)", got, code)
	}
	// Reads bypass the queue entirely: a lookup succeeds even with the
	// write queue saturated and the dispatcher wedged.
	if _, err := s.sys.Lookup(context.Background(), "read-during-full"); err != nil && err != tinygroups.ErrUnreachable {
		t.Fatalf("lookup with saturated write queue: %v", err)
	}
	close(gate)
	<-r1.done
	<-r2.done
	if s.m.queueRejects.Load() != 1 {
		t.Fatalf("queueRejects = %d, want 1", s.m.queueRejects.Load())
	}
}

// TestWriteTimeout wedges the dispatcher mid-batch and checks an accepted
// put gives up with the typed 504 after WriteTimeout — while reads, which
// never touch the queue, keep answering — and that the abandoned put still
// executes once the dispatcher frees up (gateway-timeout semantics: the
// work is late, not revoked).
func TestWriteTimeout(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var once bool
	s := newTestServer(t, Config{
		WriteTimeout: 20 * time.Millisecond,
		hookBeforeBatch: func() {
			if !once { // hold only the first flush; cleanup must drain free
				once = true
				entered <- struct{}{}
				<-gate
			}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{"key": "late-write", "value": []byte("v")})
	resp, err := http.Post(ts.URL+"/v1/put", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	<-entered // the dispatcher did take the put before wedging
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("put status = %d, want 504", resp.StatusCode)
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "write_timeout" {
		t.Fatalf("code = %q, want write_timeout", e.Code)
	}
	if got := s.m.writeTimeouts.Load(); got != 1 {
		t.Fatalf("writeTimeouts = %d, want 1", got)
	}

	// Reads never queue behind the wedged dispatcher.
	if _, err := s.sys.Lookup(context.Background(), "read-during-wedge"); err != nil && err != tinygroups.ErrUnreachable {
		t.Fatalf("lookup during wedged dispatcher: %v", err)
	}

	// Release the dispatcher: the timed-out put still runs — its value is
	// readable afterwards (unless the key routes unreachable, the conceded ε).
	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for s.m.putBatches.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned put never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	if v, _, err := s.sys.Get(context.Background(), "late-write"); err == nil && string(v) != "v" {
		t.Fatalf("abandoned put stored %q, want %q", v, "v")
	}
}

// TestReadsSurviveCancelledAdvance cancels an epoch advance mid-flight and
// checks the degradation contract: the advance reports the cancellation,
// the epoch snapshot never flips, reads keep serving the pinned snapshot,
// and a later advance succeeds normally.
func TestReadsSurviveCancelledAdvance(t *testing.T) {
	s := newTestServer(t, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // RunEpochContext aborts cooperatively between batches
	if _, err := s.advanceEpoch(ctx); err == nil {
		t.Fatal("cancelled advance reported success")
	}
	if got := s.sys.Epoch(); got != 0 {
		t.Fatalf("epoch = %d after cancelled advance, want 0 (snapshot must not flip)", got)
	}
	if got := s.epoch.Load(); got != 0 {
		t.Fatalf("epoch mirror = %d after cancelled advance, want 0", got)
	}

	// Reads still serve the pinned snapshot.
	if _, err := s.sys.Lookup(context.Background(), "read-after-abort"); err != nil && err != tinygroups.ErrUnreachable {
		t.Fatalf("lookup after aborted advance: %v", err)
	}

	// The system is not wedged: the next advance completes.
	st, err := s.advanceEpoch(context.Background())
	if err != nil {
		t.Fatalf("advance after aborted advance: %v", err)
	}
	if st.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", st.Epoch)
	}
}

// TestShutdownDrainsInflight stages puts behind a held dispatcher, begins
// Shutdown while they are queued, and checks every one of them still
// receives a real routed response before the System closes — the
// drain-then-close contract.
func TestShutdownDrainsInflight(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var once bool
	sys, err := tinygroups.New(256, tinygroups.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys, Config{
		hookBeforeBatch: func() {
			if !once { // hold only the first flush; the drain must run free
				once = true
				entered <- struct{}{}
				<-gate
			}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const inflight = 6
	type reply struct {
		status int
		err    error
	}
	replies := make(chan reply, inflight)
	post := func(key string) {
		body, _ := json.Marshal(map[string]string{"key": key})
		resp, err := http.Post(ts.URL+"/v1/put", "application/json", bytes.NewReader(body))
		if err != nil {
			replies <- reply{err: err}
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		replies <- reply{status: resp.StatusCode}
	}

	// One put reaches the dispatcher and is held at the flush hook...
	go post("drain-0")
	<-entered
	// ...then more arrive and stack up in the queue behind it.
	for i := 1; i < inflight; i++ {
		go post(fmt.Sprintf("drain-%d", i))
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.m.puts.Load() < inflight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests arrived", s.m.puts.Load(), inflight)
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown begins while the queue is full of unanswered requests.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Give Shutdown a moment to flip the draining flag, then release the
	// dispatcher so the drain can run.
	for !s.draining() {
		time.Sleep(time.Millisecond)
	}
	close(gate)

	for i := 0; i < inflight; i++ {
		r := <-replies
		if r.err != nil {
			t.Fatalf("in-flight request got transport error %v — dropped instead of drained", r.err)
		}
		if r.status != http.StatusOK && r.status != http.StatusBadGateway {
			t.Fatalf("in-flight request got status %d, want 200 or 502", r.status)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// After the drain the server refuses work: a late put hits the closed
	// write queue, and a late lookup hits the closed System (ErrClosed) —
	// both map to 503 "closed".
	for _, path := range []string{"/v1/put", "/v1/lookup"} {
		body, _ := json.Marshal(map[string]string{"key": "late"})
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		status := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if status != http.StatusServiceUnavailable {
			t.Fatalf("post-shutdown %s: status %d, want 503", path, status)
		}
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown healthz: status %d, want 503", hresp.StatusCode)
	}
}
