package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func newTest(t *testing.T, n int, beta float64) *System {
	t.Helper()
	cfg := DefaultConfig(n)
	cfg.Beta = beta
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{N: 2}); err == nil {
		t.Error("tiny N accepted")
	}
	cfg := DefaultConfig(256)
	cfg.Beta = 0.6
	if _, err := New(cfg); err == nil {
		t.Error("beta ≥ 1/2 accepted")
	}
	cfg = DefaultConfig(256)
	cfg.Overlay = "nosuch"
	if _, err := New(cfg); err == nil {
		t.Error("unknown overlay accepted")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newTest(t, 512, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		if _, err := s.Put(key, val); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
		got, _, err := s.Get(key)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get(%s) = %q, want %q", key, got, val)
		}
	}
}

func TestGetNotFound(t *testing.T) {
	s := newTest(t, 256, 0)
	_, _, err := s.Get("missing")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newTest(t, 256, 0)
	if _, err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get("k")
	got[0] = 'X'
	again, _, _ := s.Get("k")
	if string(again) != "abc" {
		t.Error("Get must return a copy, not the stored slice")
	}
}

func TestLookupDeterministicOwner(t *testing.T) {
	s := newTest(t, 512, 0)
	i1, err := s.Lookup("alpha")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := s.Lookup("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if i1.Owner != i2.Owner {
		t.Error("same key must resolve to the same owner within an epoch")
	}
	if i1.Messages <= 0 || i1.Hops <= 0 {
		t.Error("lookup cost missing")
	}
}

func TestMostLookupsSucceedUnderAttack(t *testing.T) {
	s := newTest(t, 1024, 0.08)
	fails := 0
	const total = 300
	for i := 0; i < total; i++ {
		if _, err := s.Lookup(fmt.Sprintf("k%d", i)); err != nil {
			fails++
		}
	}
	if float64(fails)/total > 0.10 {
		t.Errorf("%d/%d lookups failed at β=0.08 — ε-robustness shape violated", fails, total)
	}
}

func TestComputeOnGoodGroups(t *testing.T) {
	s := newTest(t, 512, 0.05)
	correct, total := 0, 0
	for i := 0; i < 40; i++ {
		res, err := s.Compute(fmt.Sprintf("job-%d", i), i%2)
		if err != nil {
			continue // unreachable job: part of the conceded ε
		}
		total++
		if res.Correct {
			correct++
		}
		if res.Messages <= 0 {
			t.Error("compute cost missing")
		}
	}
	if total == 0 {
		t.Fatal("all jobs unreachable")
	}
	if float64(correct)/float64(total) < 0.9 {
		t.Errorf("only %d/%d jobs computed correctly at β=0.05", correct, total)
	}
}

func TestAdvanceEpochKeepsStore(t *testing.T) {
	s := newTest(t, 256, 0.05)
	if _, err := s.Put("persistent", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st := s.AdvanceEpoch()
	if st.Epoch != 1 || s.Epoch() != 1 {
		t.Errorf("epoch bookkeeping wrong: %d / %d", st.Epoch, s.Epoch())
	}
	got, _, err := s.Get("persistent")
	if err != nil {
		// Re-homing may land on a red group; retry once after another epoch.
		s.AdvanceEpoch()
		got, _, err = s.Get("persistent")
	}
	if err != nil {
		t.Fatalf("value lost across epochs: %v", err)
	}
	if string(got) != "v" {
		t.Errorf("value corrupted: %q", got)
	}
}

func TestGroupSizeIsTiny(t *testing.T) {
	s := newTest(t, 4096, 0.05)
	gs := s.GroupSize()
	if gs < 4 || gs > 16 {
		t.Errorf("group size %d not in the Θ(log log n) range for n=4096", gs)
	}
}

func TestRobustnessReport(t *testing.T) {
	s := newTest(t, 512, 0.05)
	rob := s.Robustness(200)
	if rob.Samples != 200 || rob.N != 512 {
		t.Error("metadata wrong")
	}
	if rob.SearchFailRate > 0.15 {
		t.Errorf("fail rate %.3f too high at β=0.05", rob.SearchFailRate)
	}
}
