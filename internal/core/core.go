// Package core is the top-level facade of the library: an ε-robust
// decentralized system in the sense of the paper's Theorem 3, assembled
// from the input-graph, group-graph, dynamic-epoch, PoW and BA substrates.
//
// A System exposes the three things the paper's introduction motivates:
//
//   - a robust key→owner Lookup (secure routing through tiny groups),
//   - a replicated Put/Get store over it (the "decentralized storage and
//     retrieval" application of §I-A),
//   - Compute, which runs Byzantine agreement inside the group responsible
//     for a job so that each group "simulates a reliable processor".
//
// Epochs advance with AdvanceEpoch, which turns the whole population over
// through the two-group-graph construction of §III backed by PoW-minted
// IDs (§IV).
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/epoch"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/ring"
)

// keyHash maps application keys into the ID space (the "globally-known hash
// function" applied to resource names, Appendix VI).
var keyHash = hashes.NewFunc("core.key")

// Config parameterizes a System.
type Config struct {
	// N is the system size (number of IDs; constant across epochs).
	N int
	// Beta is the adversary's computational-power fraction (< 1/2,
	// realistically ≤ 0.15 for tiny groups at simulable n).
	Beta float64
	// Overlay selects the input graph: "chord" (default), "debruijn" or
	// "viceroy".
	Overlay string
	// Strategy is the adversary's ID-injection strategy.
	Strategy adversary.Strategy
	// Seed makes the run deterministic.
	Seed int64
}

// DefaultConfig returns a ready-to-run configuration. Beta defaults to
// 0.05 — the paper's "sufficiently small" β for which the dynamic
// construction is stable at Θ(log log n) group sizes (see epoch.DefaultConfig).
func DefaultConfig(n int) Config {
	return Config{N: n, Beta: 0.05, Overlay: "chord", Strategy: adversary.Uniform, Seed: 1}
}

// System is a running ε-robust deployment.
type System struct {
	cfg Config
	dyn *epoch.System
	rng *rand.Rand
	// store replicates values at the group of each key's owner. Values
	// survive churn (they are re-homed when the ring turns over, exactly
	// like resources in a DHT).
	store map[string][]byte
}

// New builds a System with trusted initialization (Appendix X) and the
// paper's two-group-graph dynamics.
func New(cfg Config) (*System, error) {
	if cfg.N < 8 {
		return nil, fmt.Errorf("core: N = %d too small", cfg.N)
	}
	if cfg.Overlay == "" {
		cfg.Overlay = "chord"
	}
	ecfg := epoch.DefaultConfig(cfg.N)
	ecfg.Params.Beta = cfg.Beta
	ecfg.Overlay = cfg.Overlay
	ecfg.Strategy = cfg.Strategy
	ecfg.Seed = cfg.Seed
	if err := ecfg.Params.Validate(); err != nil {
		return nil, err
	}
	dyn, err := epoch.New(ecfg)
	if err != nil {
		return nil, err
	}
	return &System{
		cfg:   cfg,
		dyn:   dyn,
		rng:   rand.New(rand.NewSource(cfg.Seed + 0x5eed)),
		store: make(map[string][]byte),
	}, nil
}

// N returns the system size.
func (s *System) N() int { return s.cfg.N }

// Epoch returns the current epoch index.
func (s *System) Epoch() int { return s.dyn.Epoch() }

// GroupSize returns the tiny-group size Θ(log log n) in force.
func (s *System) GroupSize() int { return s.dyn.Graphs()[0].GroupSize() }

// Graph returns the primary group graph (read-only use).
func (s *System) Graph() *groups.Graph { return s.dyn.Graphs()[0] }

// KeyPoint returns the ID-space point a key hashes to.
func KeyPoint(key string) ring.Point { return keyHash.Point([]byte(key)) }

// LookupInfo describes one routed lookup.
type LookupInfo struct {
	Owner    ring.Point // suc(h(key)): the ID responsible for the key
	Hops     int        // groups traversed
	Messages int64      // secure-routing message cost (all-to-all per hop)
}

// ErrUnreachable is returned when a lookup's search path traverses a red
// group — the ε-fraction Theorem 3 concedes.
var ErrUnreachable = errors.New("core: key unreachable (search path hit a red group)")

// ErrNotFound is returned by Get for keys never stored.
var ErrNotFound = errors.New("core: key not found")

// Lookup routes from a u.a.r. ID to the owner of key through the group
// graph. It fails with ErrUnreachable when the search path traverses a red
// group.
func (s *System) Lookup(key string) (LookupInfo, error) {
	g := s.dyn.Graphs()[0]
	r := g.Overlay().Ring()
	src := r.At(s.rng.Intn(r.Len()))
	res := g.Search(src, KeyPoint(key))
	info := LookupInfo{Hops: len(res.Path), Messages: res.Messages}
	if !res.OK {
		return info, ErrUnreachable
	}
	info.Owner = res.Path[len(res.Path)-1]
	return info, nil
}

// Put stores a value under key at the owner group (replicated across its
// members). It fails if the owner cannot be reached securely.
func (s *System) Put(key string, value []byte) (LookupInfo, error) {
	info, err := s.Lookup(key)
	if err != nil {
		return info, err
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.store[key] = v
	return info, nil
}

// Get retrieves a value. It fails with ErrUnreachable if the route is
// insecure, or with ErrNotFound if the key was never stored.
func (s *System) Get(key string) ([]byte, LookupInfo, error) {
	info, err := s.Lookup(key)
	if err != nil {
		return nil, info, err
	}
	v, ok := s.store[key]
	if !ok {
		return nil, info, ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, info, nil
}

// ComputeResult reports one group-simulated computation (BA execution).
type ComputeResult struct {
	Group    ring.Point // leader of the executing group
	Correct  bool       // the group was good and agreement held on the input
	Agreed   bool       // honest members agreed (vacuous in a bad group)
	Value    int
	Messages int64
}

// Compute runs the job identified by jobKey on the group responsible for
// it: the members execute phase-king Byzantine agreement on the job's
// input bit. A good group always computes correctly (the paper's "reliable
// processor"); a bad group may not.
func (s *System) Compute(jobKey string, input int) (ComputeResult, error) {
	info, err := s.Lookup(jobKey)
	if err != nil {
		return ComputeResult{}, err
	}
	g := s.dyn.Graphs()[0]
	grp := g.Group(info.Owner)
	if grp == nil {
		return ComputeResult{}, fmt.Errorf("core: owner %v leads no group", info.Owner)
	}
	n := grp.Size()
	tFaults := (n - 1) / 4
	byz := map[int]bool{}
	for i, m := range grp.Members {
		if m.Bad {
			byz[i] = true
		}
	}
	prefs := make([]int, n)
	for i := range prefs {
		prefs[i] = input
	}
	res := ba.Run(n, tFaults, prefs, byz, "equivocate")
	out := ComputeResult{
		Group:    info.Owner,
		Agreed:   res.Agreed,
		Value:    res.Value,
		Messages: res.Messages + info.Messages,
	}
	// Correct = the group is good (bad ≤ t) and honest members agreed on
	// the submitted input.
	out.Correct = !grp.Red() && len(byz) <= tFaults && res.Agreed && res.Value == input
	return out, nil
}

// AdvanceEpoch turns the population over through the §III two-graph
// construction and returns the epoch's construction statistics. Stored
// values persist (they re-home to the new owners).
func (s *System) AdvanceEpoch() epoch.Stats { return s.dyn.RunEpoch() }

// Robustness measures Theorem 3's two bullets on the current graphs.
func (s *System) Robustness(samples int) groups.Robustness {
	return s.dyn.Graphs()[0].MeasureRobustness(samples, s.rng)
}
