package groups

import (
	"math/rand"

	"repro/internal/ring"
)

// Quarantine implements the paper's footnote 2: "Members may agree to
// ignore an ID if it misbehaves too often, hence reducing spamming."
//
// During group operations, members of a group with a good majority can
// compare results and agree (via BA) that a member misbehaved; after
// Threshold strikes the member is expelled from that group. Only blue
// groups can expel — a red group's bad majority controls any vote, so
// quarantine never redeems red groups; its value is hardening blue groups
// (fewer resident bad members → more slack against later departures, less
// spam amplification).
type Quarantine struct {
	g         *Graph
	Threshold int
	strikes   map[strikeKey]int
	// Expelled counts members removed so far.
	Expelled int
}

type strikeKey struct {
	leader ring.Point
	member ring.Point
}

// NewQuarantine wraps g with a strike tracker. threshold is the number of
// detected misbehaviors that triggers expulsion (≥ 1).
func NewQuarantine(g *Graph, threshold int) *Quarantine {
	if threshold < 1 {
		threshold = 1
	}
	return &Quarantine{g: g, Threshold: threshold, strikes: make(map[strikeKey]int)}
}

// Observe simulates one group operation in G_leader. Each bad member
// independently misbehaves with probability pMis (the adversary trades
// damage now against exposure); a blue group detects each misbehavior and
// issues a strike, expelling members that reach the threshold. Returns the
// number of members expelled by this operation.
func (q *Quarantine) Observe(leader ring.Point, pMis float64, rng *rand.Rand) int {
	grp := q.g.Group(leader)
	if grp == nil || grp.Red() {
		return 0 // no good majority to agree on expulsion
	}
	expelled := 0
	kept := grp.Members[:0]
	for _, m := range grp.Members {
		if m.Bad && rng.Float64() < pMis {
			k := strikeKey{leader, m.ID}
			q.strikes[k]++
			if q.strikes[k] >= q.Threshold {
				expelled++
				delete(q.strikes, k)
				continue // drop the member
			}
		}
		kept = append(kept, m)
	}
	if expelled > 0 {
		grp.Members = kept
		q.Expelled += expelled
		// Expulsion only removes bad members from a blue group, so the
		// majority rule cannot flip it bad; the size floor can, if the
		// group shrinks too far — reclassify to stay honest.
		q.g.classify(grp)
	}
	return expelled
}

// Sweep runs one Observe over every group, returning total expulsions.
func (q *Quarantine) Sweep(pMis float64, rng *rand.Rand) int {
	total := 0
	for _, w := range q.g.Overlay().Ring().Points() {
		total += q.Observe(w, pMis, rng)
	}
	return total
}

// ResidentBadInBlue returns the number of bad members still resident in
// blue groups — the quantity quarantine drives down.
func (g *Graph) ResidentBadInBlue() int {
	count := 0
	for _, grp := range g.byRank {
		if grp.Red() {
			continue
		}
		count += grp.BadCount()
	}
	return count
}
