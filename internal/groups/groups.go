// Package groups implements the paper's group graph G (§II): for every ID w
// in the input graph H there is a group G_w of Θ(log log n) IDs led by w.
// Groups are blue (good with correct neighbor sets) or red (bad or
// confused); searches proceed along overlay routes lifted to groups, with
// all-to-all exchange between consecutive groups, and a search fails
// exactly when its search path traverses a red group.
package groups

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/ring"
)

// Params fixes the group-size and classification constants of §I-C.
type Params struct {
	// D1, D2 bound the group size: d1·ln ln n ≤ |G| ≤ d2·ln ln n. Groups
	// are built with d2·ln ln n solicitations; a group that ends up below
	// d1·ln ln n members is bad by definition (i).
	D1, D2 float64
	// MinSize clamps the group size from below so small-n simulations stay
	// meaningful (ln ln n < 3 for n < 10⁹).
	MinSize int
	// Beta is the adversary's ID fraction; Delta the slack of definition
	// (ii): a group is bad when its bad members exceed (1+Delta)·Beta·|G|.
	Beta, Delta float64
	// MajorityRule switches classification to the operational secure-routing
	// criterion: bad iff bad members ≥ half (majority filtering broken).
	// Definition (ii) with tiny groups only bites at astronomically large
	// n; the majority rule is what search correctness actually needs, so
	// experiments default to it. Set false for the strict paper definition.
	MajorityRule bool
}

// DefaultParams returns the parameter defaults used across experiments
// (DESIGN.md §8).
func DefaultParams() Params {
	return Params{D1: 2, D2: 3, MinSize: 6, Beta: 0.10, Delta: 0.25, MajorityRule: true}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.D1 <= 0 || p.D2 < p.D1 {
		return fmt.Errorf("groups: need 0 < D1 ≤ D2, got D1=%v D2=%v", p.D1, p.D2)
	}
	if p.Beta < 0 || p.Beta >= 0.5 {
		return fmt.Errorf("groups: need 0 ≤ Beta < 1/2, got %v", p.Beta)
	}
	if (1+p.Delta)*p.Beta >= 0.5 {
		return fmt.Errorf("groups: (1+Delta)·Beta = %v must stay below 1/2 for a good majority", (1+p.Delta)*p.Beta)
	}
	return nil
}

// SizeFor returns the target group size d2·ln ln n (clamped to MinSize).
func (p Params) SizeFor(n int) int {
	if n < 3 {
		n = 3
	}
	s := int(math.Round(p.D2 * math.Log(math.Log(float64(n)))))
	if s < p.MinSize {
		s = p.MinSize
	}
	return s
}

// MinSizeFor returns the lower size bound d1·ln ln n (clamped proportionally).
func (p Params) MinSizeFor(n int) int {
	if n < 3 {
		n = 3
	}
	s := int(math.Round(p.D1 * math.Log(math.Log(float64(n)))))
	min := int(float64(p.MinSize) * p.D1 / p.D2)
	if s < min {
		s = min
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Member is one ID inside a group.
type Member struct {
	ID  ring.Point
	Bad bool
}

// Group is G_w: the leader w plus its solicited members.
type Group struct {
	Leader   ring.Point
	Members  []Member
	Bad      bool // definition (i) or (ii) violated (or majority rule)
	Confused bool // neighbor set incorrectly established (§III-B)
}

// Red reports whether the group is red: bad or confused (§II terminology).
func (g *Group) Red() bool { return g.Bad || g.Confused }

// Size returns the number of members.
func (g *Group) Size() int { return len(g.Members) }

// BadCount returns the number of Byzantine members.
func (g *Group) BadCount() int {
	c := 0
	for _, m := range g.Members {
		if m.Bad {
			c++
		}
	}
	return c
}

// Graph is the group graph G over an input graph H.
type Graph struct {
	ov     overlay.Graph
	params Params
	hash   hashes.Func
	badIDs map[ring.Point]bool
	// byRank indexes groups by their leader's rank on the ring — leaders
	// are exactly the ring's points, so a leader resolves to its group by
	// rank instead of hashing a map[ring.Point]*Group per search hop.
	byRank []*Group
	// pts/idxStart/idxShift form a radix bucket index over the (immutable
	// post-build) leader set: bucket b holds the first rank whose point's
	// top bits reach b. With u.a.r. IDs a lookup costs ~1 probe; see rankOf.
	pts      []ring.Point
	idxStart []int32
	idxShift uint
	// memberOf indexes which groups each ID belongs to (state accounting,
	// Lemma 10).
	memberOf map[ring.Point][]ring.Point
	size     int // target group size used at build time
	// rr is the overlay's rank-route extension, if it has one — the search
	// fast path classifies rank routes without any per-hop rank lookup.
	rr overlay.RankRouter
}

// buildRankIndex precomputes the radix bucket index over the leader points.
func (g *Graph) buildRankIndex() {
	g.rr, _ = g.ov.(overlay.RankRouter)
	pts := g.ov.Ring().Points()
	g.pts = pts
	n := len(pts)
	if n == 0 {
		return
	}
	k := bits.Len(uint(n - 1)) // buckets = 2^k ≥ n, so density ≤ 1
	buckets := 1 << k
	g.idxShift = uint(64 - k)
	start := make([]int32, buckets+1)
	b := 0
	for i, p := range pts {
		pb := int(uint64(p) >> g.idxShift)
		for b <= pb {
			start[b] = int32(i)
			b++
		}
	}
	for ; b <= buckets; b++ {
		start[b] = int32(n)
	}
	g.idxStart = start
}

// rankOf returns the rank of leader p, or ok=false if p leads no group.
// Expected cost is one bucket probe plus ~1 comparison (u.a.r. leaders);
// a clustered bucket falls back to the ring's O(log n) search after a
// bounded scan, so adversarial placements cannot degrade it past that.
func (g *Graph) rankOf(p ring.Point) (int, bool) {
	if g.idxStart == nil {
		return 0, false
	}
	i := int(g.idxStart[uint64(p)>>g.idxShift])
	pts := g.pts
	for scan := 0; scan < 16; scan++ {
		if i >= len(pts) || pts[i] > p {
			return 0, false
		}
		if pts[i] == p {
			return i, true
		}
		i++
	}
	return g.ov.Ring().Index(p)
}

// Build constructs the group graph over ov. The i-th member of G_w is
// suc(h(w,i)) for i = 1..d2·ln ln n (§III-A's membership rule, applied
// statically). badIDs marks the adversary's IDs; classification follows
// params. In the static case neighbor sets of good groups are correct by
// construction, so no group starts confused.
func Build(ov overlay.Graph, badIDs map[ring.Point]bool, params Params, h hashes.Func) *Graph {
	return BuildSized(ov, badIDs, params, h, params.SizeFor(ov.Ring().Len()))
}

// BuildSized is Build with an explicit group size — used by the Θ(log n)
// baseline construction and by group-size sweeps (experiment E8).
//
// The construction is a two-pass, arena-backed pipeline: pass 1 batch-hashes
// every member point (hashes.PointsAt) and resolves it to a ring rank
// (ring.SuccessorIndex), counting per-ID memberships; pass 2 carves all
// groups, member lists and membership-index lists out of three shared
// arenas. Group contents are bit-identical to the naive per-member loop —
// only the allocation pattern changes (O(1) allocations instead of one per
// group and per membership-list growth).
func BuildSized(ov overlay.Graph, badIDs map[ring.Point]bool, params Params, h hashes.Func, size int) *Graph {
	r := ov.Ring()
	n := r.Len()
	g := &Graph{
		ov:       ov,
		params:   params,
		hash:     h,
		badIDs:   badIDs,
		byRank:   make([]*Group, n),
		memberOf: make(map[ring.Point][]ring.Point, n),
		size:     size,
	}
	if n == 0 {
		return g
	}
	g.buildRankIndex()
	pts := r.Points()

	badRank := make([]bool, n)
	for id := range badIDs {
		if i, ok := r.Index(id); ok {
			badRank[i] = true
		}
	}

	// Pass 1: member ranks and per-ID membership counts.
	total := n * size
	ranks := make([]int32, total)
	counts := make([]int32, n)
	ptBuf := make([]ring.Point, size)
	for wi := range pts {
		h.PointsAt(pts[wi], size, ptBuf)
		row := ranks[wi*size : (wi+1)*size]
		for i, p := range ptBuf {
			mi := int32(r.SuccessorIndex(p))
			row[i] = mi
			counts[mi]++
		}
	}

	// Pass 2a: groups and member lists from shared arenas.
	groupArena := make([]Group, n)
	memberArena := make([]Member, total)
	for wi := range pts {
		ms := memberArena[wi*size : (wi+1)*size : (wi+1)*size]
		for i, mi := range ranks[wi*size : (wi+1)*size] {
			ms[i] = Member{ID: pts[mi], Bad: badRank[mi]}
		}
		grp := &groupArena[wi]
		grp.Leader = pts[wi]
		grp.Members = ms
		g.classify(grp)
		g.byRank[wi] = grp
	}

	// Pass 2b: membership index with exact-size lists from one arena, filled
	// in ascending leader order (the order the naive loop appended in).
	leaderArena := make([]ring.Point, total)
	off := make([]int32, n+1)
	for i, c := range counts {
		off[i+1] = off[i] + c
	}
	fill := make([]int32, n)
	for wi := range pts {
		for _, mi := range ranks[wi*size : (wi+1)*size] {
			leaderArena[off[mi]+fill[mi]] = pts[wi]
			fill[mi]++
		}
	}
	for mi, c := range counts {
		if c == 0 {
			continue
		}
		g.memberOf[pts[mi]] = leaderArena[off[mi]:off[mi+1]:off[mi+1]]
	}
	return g
}

// classify applies the bad-group criterion of params to grp. The size
// floor is d1/d2 of the solicited size (the paper solicits d2·ln ln n
// members and requires at least d1·ln ln n, definition (i)); expressing it
// relative to the built size keeps size sweeps (E8) meaningful.
func (g *Graph) classify(grp *Group) {
	sz := grp.Size()
	bad := grp.BadCount()
	floor := int(math.Ceil(float64(g.size) * g.params.D1 / g.params.D2))
	if floor < 1 {
		floor = 1
	}
	if sz < floor {
		grp.Bad = true
		return
	}
	if g.params.MajorityRule {
		grp.Bad = 2*bad >= sz
	} else {
		grp.Bad = float64(bad) > (1+g.params.Delta)*g.params.Beta*float64(sz)
	}
}

// Overlay returns the underlying input graph.
func (g *Graph) Overlay() overlay.Graph { return g.ov }

// Params returns the build parameters.
func (g *Graph) Params() Params { return g.params }

// GroupSize returns the target group size used at build time.
func (g *Graph) GroupSize() int { return g.size }

// Group returns G_w, or nil if w leads no group.
func (g *Graph) Group(w ring.Point) *Group {
	i, ok := g.rankOf(w)
	if !ok {
		return nil
	}
	return g.byRank[i]
}

// GroupAt returns the group led by the ring's i-th point — the search hot
// path's lookup when the rank is already known.
func (g *Graph) GroupAt(i int) *Group { return g.byRank[i] }

// Groups iterates over all groups in ring order of their leaders.
func (g *Graph) Groups() []*Group {
	out := make([]*Group, 0, len(g.byRank))
	for _, grp := range g.byRank {
		if grp != nil {
			out = append(out, grp)
		}
	}
	return out
}

// N returns the number of groups.
func (g *Graph) N() int { return len(g.byRank) }

// IsBad reports whether the ID id is Byzantine.
func (g *Graph) IsBad(id ring.Point) bool { return g.badIDs[id] }

// MemberOf returns the leaders of all groups containing id.
func (g *Graph) MemberOf(id ring.Point) []ring.Point { return g.memberOf[id] }

// SetConfused marks G_w as confused (used by the dynamic construction when
// a neighbor request fails, §III-B).
func (g *Graph) SetConfused(w ring.Point, confused bool) {
	if grp := g.Group(w); grp != nil {
		grp.Confused = confused
	}
}

// RedFraction returns the fraction of red groups — the empirical p_f of S2.
func (g *Graph) RedFraction() float64 {
	red := 0
	for _, grp := range g.byRank {
		if grp.Red() {
			red++
		}
	}
	return float64(red) / float64(len(g.byRank))
}

// BadFraction returns the fraction of bad (not merely confused) groups.
func (g *Graph) BadFraction() float64 {
	bad := 0
	for _, grp := range g.byRank {
		if grp.Bad {
			bad++
		}
	}
	return float64(bad) / float64(len(g.byRank))
}
