package groups

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/ring"
)

func buildTest(n int, beta float64, seed int64) (*Graph, adversary.Placement) {
	rng := rand.New(rand.NewSource(seed))
	pl := adversary.Place(adversary.Config{N: n, Beta: beta, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	params := DefaultParams()
	params.Beta = beta
	g := Build(ov, pl.BadSet(), params, hashes.H1)
	return g, pl
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	bad := DefaultParams()
	bad.Beta = 0.5
	if bad.Validate() == nil {
		t.Error("Beta=0.5 should fail validation")
	}
	bad2 := DefaultParams()
	bad2.D1, bad2.D2 = 3, 2
	if bad2.Validate() == nil {
		t.Error("D1 > D2 should fail validation")
	}
	bad3 := DefaultParams()
	bad3.Beta, bad3.Delta = 0.4, 0.3
	if bad3.Validate() == nil {
		t.Error("(1+Delta)Beta ≥ 1/2 should fail validation")
	}
}

func TestSizeForGrowsDoublyLogarithmically(t *testing.T) {
	p := DefaultParams()
	s1 := p.SizeFor(1 << 10)
	s2 := p.SizeFor(1 << 20)
	if s2 < s1 {
		t.Errorf("size must be monotone: %d then %d", s1, s2)
	}
	// ln ln is nearly flat: doubling the exponent should add at most a few.
	if s2-s1 > 4 {
		t.Errorf("size grew too fast: %d → %d", s1, s2)
	}
	if p.SizeFor(100) < p.MinSize {
		t.Errorf("size below MinSize clamp")
	}
	if p.MinSizeFor(1<<20) > p.SizeFor(1<<20) {
		t.Errorf("MinSizeFor exceeds SizeFor")
	}
}

func TestEveryIDLeadsAGroup(t *testing.T) {
	g, pl := buildTest(512, 0.1, 1)
	if g.N() != pl.N() {
		t.Fatalf("groups = %d, want %d", g.N(), pl.N())
	}
	for _, w := range g.Overlay().Ring().Points() {
		grp := g.Group(w)
		if grp == nil {
			t.Fatalf("ID %v leads no group", w)
		}
		if grp.Leader != w {
			t.Fatalf("leader mismatch")
		}
		if grp.Size() != g.GroupSize() {
			t.Fatalf("group size %d, want %d", grp.Size(), g.GroupSize())
		}
	}
}

func TestMembershipFollowsHashRule(t *testing.T) {
	g, _ := buildTest(256, 0.1, 2)
	r := g.Overlay().Ring()
	w := r.At(17)
	grp := g.Group(w)
	for i, m := range grp.Members {
		want := r.Successor(hashes.H1.PointAt(w, i+1))
		if m.ID != want {
			t.Fatalf("member %d = %v, want suc(h1(w,%d)) = %v", i, m.ID, i+1, want)
		}
	}
}

func TestMemberBadFlagsMatchPlacement(t *testing.T) {
	g, pl := buildTest(256, 0.2, 3)
	bad := pl.BadSet()
	for _, grp := range g.Groups() {
		for _, m := range grp.Members {
			if m.Bad != bad[m.ID] {
				t.Fatalf("member %v bad flag %v, want %v", m.ID, m.Bad, bad[m.ID])
			}
		}
	}
}

func TestMemberOfIndexConsistent(t *testing.T) {
	g, _ := buildTest(256, 0.1, 4)
	// Forward check: every membership is indexed.
	for _, grp := range g.Groups() {
		for _, m := range grp.Members {
			found := false
			for _, l := range g.MemberOf(m.ID) {
				if l == grp.Leader {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("memberOf index missing %v ∈ G_%v", m.ID, grp.Leader)
			}
		}
	}
}

func TestMajorityClassification(t *testing.T) {
	p := DefaultParams()
	g := &Graph{params: p, ov: overlay.NewChord(ring.New([]ring.Point{1, 2, 3}))}
	mk := func(badCount, size int) *Group {
		grp := &Group{Leader: 1}
		for i := 0; i < size; i++ {
			grp.Members = append(grp.Members, Member{ID: ring.Point(i), Bad: i < badCount})
		}
		return grp
	}
	grp := mk(3, 6) // exactly half bad → majority filtering broken → bad
	g.classify(grp)
	if !grp.Bad {
		t.Error("half-bad group must be classified bad under majority rule")
	}
	grp2 := mk(2, 6)
	g.classify(grp2)
	if grp2.Bad {
		t.Error("2/6 bad should be good under majority rule")
	}
}

func TestStrictClassification(t *testing.T) {
	p := DefaultParams()
	p.MajorityRule = false
	p.Beta, p.Delta = 0.1, 0.25
	g := &Graph{params: p, ov: overlay.NewChord(overlay.UniformRing(1024, rand.New(rand.NewSource(5))))}
	grp := &Group{Leader: 1}
	for i := 0; i < 8; i++ {
		grp.Members = append(grp.Members, Member{ID: ring.Point(i), Bad: i < 2})
	}
	g.classify(grp)
	// 2 bad of 8 = 0.25 > (1.25)(0.1) = 0.125 → bad under the strict rule.
	if !grp.Bad {
		t.Error("strict rule should flag 2/8 bad at beta=0.1")
	}
	grp.Members = grp.Members[:0]
	for i := 0; i < 8; i++ {
		grp.Members = append(grp.Members, Member{ID: ring.Point(i), Bad: i < 1})
	}
	g.classify(grp)
	if grp.Bad {
		t.Error("1/8 bad = 0.125 ≤ threshold → good")
	}
}

func TestUndersizedGroupIsBad(t *testing.T) {
	g, _ := buildTest(256, 0.0, 6)
	grp := &Group{Leader: 1, Members: []Member{{ID: 2}, {ID: 3}}}
	g.classify(grp)
	if !grp.Bad {
		t.Error("group below d1·ln ln n must be bad (definition (i))")
	}
}

func TestNoAdversaryMeansNoRedGroups(t *testing.T) {
	g, _ := buildTest(512, 0.0, 7)
	if f := g.RedFraction(); f != 0 {
		t.Errorf("red fraction %v with no adversary, want 0", f)
	}
	rng := rand.New(rand.NewSource(8))
	rob := g.MeasureRobustness(500, rng)
	if rob.SearchFailRate != 0 {
		t.Errorf("fail rate %v with no adversary, want 0", rob.SearchFailRate)
	}
}

func TestRedFractionSmallAtModestBeta(t *testing.T) {
	// Lemma 9 shape: with β = 0.05 and majority classification, the red
	// fraction should be well below 1/log²n at n = 4096.
	g, _ := buildTest(4096, 0.05, 9)
	bound := 1 / math.Pow(math.Log(4096), 1.5)
	if f := g.RedFraction(); f > bound {
		t.Errorf("red fraction %v exceeds 1/log^1.5 n = %v", f, bound)
	}
}

func TestSearchFailsExactlyOnRedGroups(t *testing.T) {
	g, _ := buildTest(512, 0.15, 10)
	rng := rand.New(rand.NewSource(11))
	r := g.Overlay().Ring()
	for i := 0; i < 300; i++ {
		src := r.At(rng.Intn(r.Len()))
		key := ring.Point(rng.Uint64())
		res := g.Search(src, key)
		if res.OK {
			if res.FailedAt != -1 {
				t.Fatal("OK search must have FailedAt = -1")
			}
			for _, w := range res.Path {
				if g.Group(w).Red() {
					t.Fatal("successful search traversed a red group")
				}
			}
			if got, want := res.Path[len(res.Path)-1], r.Successor(key); got != want {
				t.Fatalf("search ended at %v, want %v", got, want)
			}
		} else {
			if res.FailedAt < 0 || res.FailedAt >= len(res.Path) {
				t.Fatalf("failed search FailedAt=%d out of range", res.FailedAt)
			}
			last := res.Path[len(res.Path)-1]
			if !g.Group(last).Red() {
				t.Fatal("failed search must end at its first red group")
			}
			for _, w := range res.Path[:len(res.Path)-1] {
				if g.Group(w).Red() {
					t.Fatal("search path contains a red group before FailedAt")
				}
			}
		}
	}
}

func TestSearchMessageAccounting(t *testing.T) {
	g, _ := buildTest(256, 0.0, 12)
	rng := rand.New(rand.NewSource(13))
	r := g.Overlay().Ring()
	sz := int64(g.GroupSize())
	for i := 0; i < 100; i++ {
		src := r.At(rng.Intn(r.Len()))
		key := ring.Point(rng.Uint64())
		res := g.Search(src, key)
		if !res.OK {
			t.Fatal("search must succeed with no adversary")
		}
		want := int64(len(res.Path)-1) * sz * sz
		if res.Messages != want {
			t.Fatalf("messages = %d, want %d (uniform group size)", res.Messages, want)
		}
	}
}

func TestConfusedGroupFailsSearches(t *testing.T) {
	g, _ := buildTest(256, 0.0, 14)
	r := g.Overlay().Ring()
	// Confuse one group and search directly for its leader's key space.
	victim := r.At(100)
	g.SetConfused(victim, true)
	if !g.Group(victim).Red() {
		t.Fatal("confused group must be red")
	}
	res := g.Search(victim, 0)
	if res.OK {
		t.Error("search initiated at a confused group must fail")
	}
	g.SetConfused(victim, false)
	if g.Group(victim).Red() {
		t.Fatal("unconfusing must clear red status")
	}
}

func TestMeasureRobustnessAggregates(t *testing.T) {
	g, _ := buildTest(1024, 0.1, 15)
	rng := rand.New(rand.NewSource(16))
	rob := g.MeasureRobustness(400, rng)
	if rob.Samples != 400 || rob.N != 1024 {
		t.Error("metadata wrong")
	}
	if rob.SearchFailRate < 0 || rob.SearchFailRate > 1 {
		t.Error("fail rate out of range")
	}
	if rob.MeanMessages <= 0 {
		t.Error("message accounting missing")
	}
	if rob.MeanRouteLen <= 1 {
		t.Error("route length suspicious")
	}
}

func TestMeasureCosts(t *testing.T) {
	g, _ := buildTest(1024, 0.05, 17)
	rng := rand.New(rand.NewSource(18))
	c := g.MeasureCosts(200, rng)
	sz := g.GroupSize()
	if c.GroupCommMsgs != int64(sz*sz) {
		t.Errorf("group comm = %d, want |G|² = %d", c.GroupCommMsgs, sz*sz)
	}
	if c.MeanStatePerID <= 0 || c.MaxStatePerID < int(c.MeanStatePerID) {
		t.Error("state accounting inconsistent")
	}
	// Lemma 10 shape: expected membership is O(log log n) groups of size
	// O(log log n) plus neighbor links; state should be well below that of
	// a log-sized-group design (≈ log²n + deg·log n).
	logn := math.Log2(1024)
	if c.MeanStatePerID > logn*logn+logn*float64(sz) {
		t.Errorf("state %v looks too large for tiny groups", c.MeanStatePerID)
	}
}

func TestGroupsStableOrder(t *testing.T) {
	g, _ := buildTest(128, 0.1, 19)
	a := g.Groups()
	b := g.Groups()
	for i := range a {
		if a[i].Leader != b[i].Leader {
			t.Fatal("Groups() must iterate in stable ring order")
		}
	}
}
