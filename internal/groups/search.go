package groups

import (
	"math/rand"

	"repro/internal/ring"
)

// SearchResult describes one search in the group graph.
type SearchResult struct {
	// Path is the search path: the prefix of the lifted overlay route up to
	// and including the first red group (§II: responsibility is defined on
	// search paths because the adversary controls routing after the first
	// red group).
	Path []ring.Point
	// OK is true iff the search traversed only blue groups and the overlay
	// route terminated (the search succeeded).
	OK bool
	// FailedAt is the index into Path of the first red group, or -1.
	FailedAt int
	// Messages counts the secure-routing cost actually incurred: |G_a|·|G_b|
	// per traversed group-graph edge (all-to-all exchange), accumulated
	// until success or first failure.
	Messages int64
}

// Search runs a search initiated by the group G_src for key. It lifts the
// overlay route src → suc(key) to groups and walks it, charging all-to-all
// messages per hop, until it either completes (all blue) or hits the first
// red group.
func (g *Graph) Search(src, key ring.Point) SearchResult {
	route, ok := g.ov.Route(src, key)
	res := SearchResult{FailedAt: -1}
	if !ok {
		// The overlay itself failed to route (cannot happen on an honest
		// ring; treated as failure).
		res.Path = route
		return res
	}
	var prev *Group
	for i, w := range route {
		var grp *Group
		if wi, isLeader := g.rankOf(w); isLeader {
			grp = g.byRank[wi]
		}
		if grp == nil {
			// Route passed through an ID with no group (cannot happen when
			// every ID leads a group); treat as red.
			res.Path = append(res.Path, w)
			res.FailedAt = i
			return res
		}
		res.Path = append(res.Path, w)
		if prev != nil {
			res.Messages += int64(prev.Size()) * int64(grp.Size())
		}
		if grp.Red() {
			res.FailedAt = i
			return res
		}
		prev = grp
	}
	res.OK = true
	return res
}

// Robustness aggregates the ε-robustness measurements of Theorem 3.
type Robustness struct {
	N              int
	GroupSize      int
	RedFraction    float64 // fraction of red groups (1 − first bullet of Thm 3)
	SearchFailRate float64 // fraction of failed searches (1 − second bullet)
	MeanRouteLen   float64 // groups traversed per successful search
	MeanMessages   float64 // messages per search (secure-routing cost)
	Samples        int
}

// MeasureRobustness runs `samples` searches from u.a.r. *good-led* groups to
// u.a.r. keys and reports failure rates and costs. Searches initiated at
// red groups are counted as failures attributed to the initiating ID (the
// paper's second bullet: all but an ε-fraction of IDs can search).
func (g *Graph) MeasureRobustness(samples int, rng *rand.Rand) Robustness {
	r := g.ov.Ring()
	n := r.Len()
	rob := Robustness{N: n, GroupSize: g.size, RedFraction: g.RedFraction(), Samples: samples}
	fails := 0
	var totalMsgs int64
	totalLen := 0
	okCount := 0
	for i := 0; i < samples; i++ {
		src := r.At(rng.Intn(n))
		key := ring.Point(rng.Uint64())
		res := g.Search(src, key)
		totalMsgs += res.Messages
		if !res.OK {
			fails++
			continue
		}
		okCount++
		totalLen += len(res.Path)
	}
	rob.SearchFailRate = float64(fails) / float64(samples)
	rob.MeanMessages = float64(totalMsgs) / float64(samples)
	if okCount > 0 {
		rob.MeanRouteLen = float64(totalLen) / float64(okCount)
	}
	return rob
}

// Costs quantifies Corollary 1 for this graph.
type Costs struct {
	GroupSize         int
	GroupCommMsgs     int64   // |G|² per intra-group operation
	RoutingMsgsPerHop float64 // mean |G_a|·|G_b| over group-graph edges
	MeanStatePerID    float64 // Lemma 10 state: members of own groups + neighbor-group members
	MaxStatePerID     int
}

// MeasureCosts samples per-ID state and per-edge routing cost.
// State of an ID u = Σ over groups containing u of |G| (membership state)
// + Σ over the neighbor groups of u's own group of |G| (link state).
func (g *Graph) MeasureCosts(sampleIDs int, rng *rand.Rand) Costs {
	r := g.ov.Ring()
	n := r.Len()
	c := Costs{GroupSize: g.size, GroupCommMsgs: int64(g.size) * int64(g.size)}
	if sampleIDs > n {
		sampleIDs = n
	}
	totalState := 0
	var hopCost int64
	hops := 0
	for i := 0; i < sampleIDs; i++ {
		ui := rng.Intn(n)
		u := r.At(ui)
		state := 0
		for _, leader := range g.memberOf[u] {
			state += g.Group(leader).Size()
		}
		uSize := g.byRank[ui].Size()
		for _, nb := range g.ov.Neighbors(u) {
			if grp := g.Group(nb); grp != nil {
				state += grp.Size()
				hopCost += int64(uSize) * int64(grp.Size())
				hops++
			}
		}
		totalState += state
		if state > c.MaxStatePerID {
			c.MaxStatePerID = state
		}
	}
	c.MeanStatePerID = float64(totalState) / float64(sampleIDs)
	if hops > 0 {
		c.RoutingMsgsPerHop = float64(hopCost) / float64(hops)
	}
	return c
}
