package groups

import (
	"math/rand"

	"repro/internal/ring"
)

// SearchResult describes one search in the group graph.
type SearchResult struct {
	// Path is the search path: the prefix of the lifted overlay route up to
	// and including the first red group (§II: responsibility is defined on
	// search paths because the adversary controls routing after the first
	// red group).
	Path []ring.Point
	// OK is true iff the search traversed only blue groups and the overlay
	// route terminated (the search succeeded).
	OK bool
	// FailedAt is the index into Path of the first red group, or -1.
	FailedAt int
	// Messages counts the secure-routing cost actually incurred: |G_a|·|G_b|
	// per traversed group-graph edge (all-to-all exchange), accumulated
	// until success or first failure.
	Messages int64
}

// Search runs a search initiated by the group G_src for key. It lifts the
// overlay route src → suc(key) to groups and walks it, charging all-to-all
// messages per hop, until it either completes (all blue) or hits the first
// red group.
func (g *Graph) Search(src, key ring.Point) SearchResult {
	route, ok := g.ov.Route(src, key)
	res := SearchResult{FailedAt: -1}
	if !ok {
		// The overlay itself failed to route (cannot happen on an honest
		// ring; treated as failure).
		res.Path = route
		return res
	}
	var prev *Group
	for i, w := range route {
		var grp *Group
		if wi, isLeader := g.rankOf(w); isLeader {
			grp = g.byRank[wi]
		}
		if grp == nil {
			// Route passed through an ID with no group (cannot happen when
			// every ID leads a group); treat as red.
			res.Path = append(res.Path, w)
			res.FailedAt = i
			return res
		}
		res.Path = append(res.Path, w)
		if prev != nil {
			res.Messages += int64(prev.Size()) * int64(grp.Size())
		}
		if grp.Red() {
			res.FailedAt = i
			return res
		}
		prev = grp
	}
	res.OK = true
	return res
}

// Outcome is the path-free result of a search: everything SearchResult
// reports except the path itself, which no construction-side caller reads.
// It is the return shape of the 0 allocs/op fast path the epoch pipeline's
// dual-search inner loop runs on.
type Outcome struct {
	// OK is true iff the search traversed only blue groups and the overlay
	// route terminated.
	OK bool
	// FailedAt is the hop index of the first red group, or -1.
	FailedAt int
	// Hops is the number of groups traversed: the full route length on
	// success, the prefix up to and including the first red group on
	// failure (|Path| of the equivalent SearchResult).
	Hops int
	// LastRank is the ring rank of the route's terminal ID suc(key) when
	// the overlay route terminated and the rank was available for free
	// (rank-routed overlays), else -1. Callers that need suc(key) anyway —
	// the epoch pipeline resolves every member point's owner — read it
	// instead of paying a second successor search.
	LastRank int
	// Messages counts the secure-routing cost actually incurred, exactly as
	// SearchResult.Messages.
	Messages int64
}

// SearchScratch holds the reusable buffers of the path-free search fast
// path. One scratch serves any number of sequential searches across any
// graphs; concurrent searchers need one scratch each (the epoch pipeline
// keeps one per worker). The zero value is ready to use.
type SearchScratch struct {
	route []ring.Point
	ranks []int32
}

// classifyRanks walks a rank route, accumulating message cost until
// success or the first red group — the rank twin of Search's loop, minus
// the per-hop rank lookup (ranks index byRank directly).
func (g *Graph) classifyRanks(ranks []int32, ok bool) Outcome {
	res := Outcome{FailedAt: -1, LastRank: -1}
	if !ok {
		res.Hops = len(ranks)
		return res
	}
	if len(ranks) > 0 {
		res.LastRank = int(ranks[len(ranks)-1])
	}
	var prev *Group
	for i, ri := range ranks {
		grp := g.byRank[ri]
		res.Hops++
		if prev != nil {
			res.Messages += int64(prev.Size()) * int64(grp.Size())
		}
		if grp.Red() {
			res.FailedAt = i
			return res
		}
		prev = grp
	}
	res.OK = true
	return res
}

// classifyRoute is classifyRanks for a point route (overlays without the
// rank extension), resolving each hop through the radix rank index.
func (g *Graph) classifyRoute(route []ring.Point, ok bool) Outcome {
	res := Outcome{FailedAt: -1, LastRank: -1}
	if !ok {
		// The overlay itself failed to route (cannot happen on an honest
		// ring; treated as failure). Search reports Path = route here, so
		// Hops mirrors the full attempted route.
		res.Hops = len(route)
		return res
	}
	var prev *Group
	for i, w := range route {
		var grp *Group
		wi, isLeader := g.rankOf(w)
		if isLeader {
			grp = g.byRank[wi]
		}
		res.Hops++
		if grp == nil {
			res.FailedAt = i
			return res
		}
		if prev != nil {
			res.Messages += int64(prev.Size()) * int64(grp.Size())
		}
		if grp.Red() {
			res.FailedAt = i
			return res
		}
		if i == len(route)-1 {
			res.LastRank = wi
		}
		prev = grp
	}
	res.OK = true
	return res
}

// SearchOutcome is Search without materializing the path: same traversal,
// same classification, same message accounting, but the route lives in the
// scratch buffer (as ranks, on rank-routed overlays) and only the Outcome
// summary escapes — 0 allocs/op in steady state. A nil scratch uses a
// transient buffer.
func (g *Graph) SearchOutcome(src, key ring.Point, sc *SearchScratch) Outcome {
	if sc == nil {
		sc = &SearchScratch{}
	}
	if g.rr != nil {
		if ranks, ok, handled := g.rr.RouteRanksInto(sc.ranks, src, key); handled {
			sc.ranks = ranks[:0]
			return g.classifyRanks(ranks, ok)
		}
	}
	route, ok := g.ov.RouteInto(sc.route, src, key)
	sc.route = route[:0]
	return g.classifyRoute(route, ok)
}

// SearchOutcomeDual runs the §III-A dual search — the same (src, key)
// search in two group graphs built over one shared overlay — walking the
// overlay route once and classifying it against both graphs in a single
// pass. The two graphs of an epoch generation always share their input
// graph (New builds both from one overlay), which makes every hop's group
// rank common to both; computing the route twice was nearly half the old
// sequential RunEpoch's cost. Falls back to two independent searches if the
// graphs do not share an overlay. Results are identical to calling
// SearchOutcome on each graph separately.
func (g *Graph) SearchOutcomeDual(g2 *Graph, src, key ring.Point, sc *SearchScratch) (Outcome, Outcome) {
	if g2 == nil {
		o := g.SearchOutcome(src, key, sc)
		return o, o
	}
	if g2.ov != g.ov {
		return g.SearchOutcome(src, key, sc), g2.SearchOutcome(src, key, sc)
	}
	if sc == nil {
		sc = &SearchScratch{}
	}
	if g.rr != nil {
		if ranks, ok, handled := g.rr.RouteRanksInto(sc.ranks, src, key); handled {
			sc.ranks = ranks[:0]
			if !ok {
				o := Outcome{FailedAt: -1, LastRank: -1, Hops: len(ranks)}
				return o, o
			}
			return g.classifyRanksDual(g2, ranks)
		}
	}
	route, ok := g.ov.RouteInto(sc.route, src, key)
	sc.route = route[:0]
	return g.classifyRoute(route, ok), g2.classifyRoute(route, ok)
}

// SearchOutcomeDualFrom is SearchOutcomeDual with the source given as its
// ring rank — the form the epoch pipeline uses for bootstrap leaders,
// whose ranks it precomputes with the blue list. g2 may be nil (single
// search; both outcomes equal).
func (g *Graph) SearchOutcomeDualFrom(g2 *Graph, srcRank int, key ring.Point, sc *SearchScratch) (Outcome, Outcome) {
	return g.SearchOutcomeDualTo(g2, srcRank, -1, key, sc)
}

// SearchOutcomeDualTo is SearchOutcomeDualFrom with the target's ring rank
// precomputed as well (targetRank = rank of suc(key); pass -1 to resolve
// it from key). Callers that verify a location they just searched — the
// epoch's neighbor verification re-targets the suc it located one step
// earlier — skip the second successor search this way. On overlays without
// the rank extension it falls back to the point route for key.
func (g *Graph) SearchOutcomeDualTo(g2 *Graph, srcRank, targetRank int, key ring.Point, sc *SearchScratch) (Outcome, Outcome) {
	if g.rr == nil || (g2 != nil && g2.ov != g.ov) {
		src := g.pts[srcRank]
		if g2 == nil {
			o := g.SearchOutcome(src, key, sc)
			return o, o
		}
		return g.SearchOutcomeDual(g2, src, key, sc)
	}
	if sc == nil {
		sc = &SearchScratch{}
	}
	ti := targetRank
	if ti < 0 {
		ti = g.ov.Ring().SuccessorIndex(key)
	}
	ranks, ok := g.rr.RouteRanksBetween(sc.ranks, srcRank, ti)
	sc.ranks = ranks[:0]
	if g2 == nil {
		o := g.classifyRanks(ranks, ok)
		return o, o
	}
	if !ok {
		o := Outcome{FailedAt: -1, LastRank: -1, Hops: len(ranks)}
		return o, o
	}
	return g.classifyRanksDual(g2, ranks)
}

// classifyRanksDual classifies one terminated rank route against two
// graphs in a single pass, stopping early once both have failed.
func (g *Graph) classifyRanksDual(g2 *Graph, ranks []int32) (Outcome, Outcome) {
	last := -1
	if len(ranks) > 0 {
		last = int(ranks[len(ranks)-1])
	}
	o1 := Outcome{FailedAt: -1, LastRank: last}
	o2 := Outcome{FailedAt: -1, LastRank: last}
	var prev1, prev2 *Group
	alive1, alive2 := true, true
	for i, ri := range ranks {
		if alive1 {
			grp := g.byRank[ri]
			o1.Hops++
			if prev1 != nil {
				o1.Messages += int64(prev1.Size()) * int64(grp.Size())
			}
			if grp.Red() {
				o1.FailedAt = i
				alive1 = false
			}
			prev1 = grp
		}
		if alive2 {
			grp := g2.byRank[ri]
			o2.Hops++
			if prev2 != nil {
				o2.Messages += int64(prev2.Size()) * int64(grp.Size())
			}
			if grp.Red() {
				o2.FailedAt = i
				alive2 = false
			}
			prev2 = grp
		}
		if !alive1 && !alive2 {
			break
		}
	}
	o1.OK = alive1
	o2.OK = alive2
	return o1, o2
}

// Robustness aggregates the ε-robustness measurements of Theorem 3.
type Robustness struct {
	N              int
	GroupSize      int
	RedFraction    float64 // fraction of red groups (1 − first bullet of Thm 3)
	SearchFailRate float64 // fraction of failed searches (1 − second bullet)
	MeanRouteLen   float64 // groups traversed per successful search
	MeanMessages   float64 // messages per search (secure-routing cost)
	Samples        int
}

// MeasureRobustness runs `samples` searches from u.a.r. *good-led* groups to
// u.a.r. keys and reports failure rates and costs. Searches initiated at
// red groups are counted as failures attributed to the initiating ID (the
// paper's second bullet: all but an ε-fraction of IDs can search).
func (g *Graph) MeasureRobustness(samples int, rng *rand.Rand) Robustness {
	r := g.ov.Ring()
	n := r.Len()
	rob := Robustness{N: n, GroupSize: g.size, RedFraction: g.RedFraction(), Samples: samples}
	fails := 0
	var totalMsgs int64
	totalLen := 0
	okCount := 0
	var sc SearchScratch
	for i := 0; i < samples; i++ {
		src := r.At(rng.Intn(n))
		key := ring.Point(rng.Uint64())
		res := g.SearchOutcome(src, key, &sc)
		totalMsgs += res.Messages
		if !res.OK {
			fails++
			continue
		}
		okCount++
		totalLen += res.Hops
	}
	rob.SearchFailRate = float64(fails) / float64(samples)
	rob.MeanMessages = float64(totalMsgs) / float64(samples)
	if okCount > 0 {
		rob.MeanRouteLen = float64(totalLen) / float64(okCount)
	}
	return rob
}

// Costs quantifies Corollary 1 for this graph.
type Costs struct {
	GroupSize         int
	GroupCommMsgs     int64   // |G|² per intra-group operation
	RoutingMsgsPerHop float64 // mean |G_a|·|G_b| over group-graph edges
	MeanStatePerID    float64 // Lemma 10 state: members of own groups + neighbor-group members
	MaxStatePerID     int
}

// MeasureCosts samples per-ID state and per-edge routing cost.
// State of an ID u = Σ over groups containing u of |G| (membership state)
// + Σ over the neighbor groups of u's own group of |G| (link state).
func (g *Graph) MeasureCosts(sampleIDs int, rng *rand.Rand) Costs {
	r := g.ov.Ring()
	n := r.Len()
	c := Costs{GroupSize: g.size, GroupCommMsgs: int64(g.size) * int64(g.size)}
	if sampleIDs > n {
		sampleIDs = n
	}
	totalState := 0
	var hopCost int64
	hops := 0
	for i := 0; i < sampleIDs; i++ {
		ui := rng.Intn(n)
		u := r.At(ui)
		state := 0
		for _, leader := range g.memberOf[u] {
			state += g.Group(leader).Size()
		}
		uSize := g.byRank[ui].Size()
		for _, nb := range g.ov.Neighbors(u) {
			if grp := g.Group(nb); grp != nil {
				state += grp.Size()
				hopCost += int64(uSize) * int64(grp.Size())
				hops++
			}
		}
		totalState += state
		if state > c.MaxStatePerID {
			c.MaxStatePerID = state
		}
	}
	c.MeanStatePerID = float64(totalState) / float64(sampleIDs)
	if hops > 0 {
		c.RoutingMsgsPerHop = float64(hopCost) / float64(hops)
	}
	return c
}
