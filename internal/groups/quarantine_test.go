package groups

import (
	"math/rand"
	"repro/internal/ring"
	"testing"
)

func TestQuarantineExpelsActiveMisbehavers(t *testing.T) {
	g, _ := buildTest(512, 0.10, 91)
	q := NewQuarantine(g, 2)
	rng := rand.New(rand.NewSource(92))
	before := g.ResidentBadInBlue()
	if before == 0 {
		t.Skip("no resident bad members at this seed")
	}
	// Bad members misbehaving on every operation are expelled after
	// Threshold sweeps.
	for i := 0; i < 4; i++ {
		q.Sweep(1.0, rng)
	}
	after := g.ResidentBadInBlue()
	if after != 0 {
		t.Errorf("always-misbehaving members not fully expelled: %d → %d", before, after)
	}
	if q.Expelled == 0 {
		t.Error("no expulsions recorded")
	}
}

func TestQuarantineStealthyMembersSurvive(t *testing.T) {
	g, _ := buildTest(512, 0.10, 93)
	q := NewQuarantine(g, 2)
	rng := rand.New(rand.NewSource(94))
	before := g.ResidentBadInBlue()
	for i := 0; i < 4; i++ {
		q.Sweep(0.0, rng) // perfectly stealthy adversary
	}
	if g.ResidentBadInBlue() != before || q.Expelled != 0 {
		t.Error("stealthy (never-misbehaving) members must not be expelled")
	}
}

func TestQuarantineCannotRedeemRedGroups(t *testing.T) {
	g, _ := buildTest(256, 0.30, 95)
	var redCount int
	for _, grp := range g.Groups() {
		if grp.Red() {
			redCount++
		}
	}
	if redCount == 0 {
		t.Skip("no red groups at this seed")
	}
	q := NewQuarantine(g, 1)
	rng := rand.New(rand.NewSource(96))
	for i := 0; i < 3; i++ {
		q.Sweep(1.0, rng)
	}
	after := 0
	for _, grp := range g.Groups() {
		if grp.Red() {
			after++
		}
	}
	if after < redCount {
		t.Errorf("quarantine redeemed red groups: %d → %d", redCount, after)
	}
}

func TestQuarantineNeverFlipsBlueToBadByMajority(t *testing.T) {
	g, _ := buildTest(512, 0.15, 97)
	blueBefore := map[uint64]bool{}
	for _, grp := range g.Groups() {
		if !grp.Red() {
			blueBefore[uint64(grp.Leader)] = true
		}
	}
	q := NewQuarantine(g, 1)
	rng := rand.New(rand.NewSource(98))
	q.Sweep(1.0, rng)
	for _, grp := range g.Groups() {
		if blueBefore[uint64(grp.Leader)] && grp.Bad && 2*grp.BadCount() < grp.Size() {
			t.Fatal("expulsion flipped a blue group bad without majority loss")
		}
	}
}

func TestQuarantineHardensAgainstDepartures(t *testing.T) {
	// The measurable benefit: purging resident bad members gives blue
	// groups more slack against later good-member departures.
	run := func(quarantine bool) int {
		g, pl := buildTest(1024, 0.12, 99)
		if quarantine {
			q := NewQuarantine(g, 1)
			rng := rand.New(rand.NewSource(100))
			for i := 0; i < 2; i++ {
				q.Sweep(1.0, rng)
			}
		}
		rng := rand.New(rand.NewSource(101))
		departed := map[uint64]bool{}
		dep := map[ringPoint]bool{}
		for _, id := range pl.Good {
			if rng.Float64() < 0.30 {
				departed[uint64(id)] = true
				dep[id] = true
			}
		}
		rep := g.RemoveMembers(dep)
		return rep.LostMajority
	}
	with := run(true)
	without := run(false)
	if with > without {
		t.Errorf("quarantine should reduce majority losses under departures: with=%d without=%d", with, without)
	}
}

type ringPoint = ring.Point
