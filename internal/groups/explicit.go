package groups

import (
	"repro/internal/overlay"
	"repro/internal/ring"
)

// BuildExplicit constructs a group graph from externally assembled
// memberships — the dynamic case (§III), where the members of each new
// group were located by (possibly failing) searches in the old group
// graphs rather than read off the ground-truth ring.
//
// members maps each leader (every ID of ov's ring must appear) to its
// member list; confused marks groups whose neighbor establishment failed
// (Lemma 8). Missing or short member lists yield bad groups via the size
// criterion (definition (i)).
func BuildExplicit(ov overlay.Graph, badIDs map[ring.Point]bool, params Params,
	members map[ring.Point][]Member, confused map[ring.Point]bool) *Graph {

	r := ov.Ring()
	g := &Graph{
		ov:       ov,
		params:   params,
		badIDs:   badIDs,
		groups:   make(map[ring.Point]*Group, r.Len()),
		memberOf: make(map[ring.Point][]ring.Point, r.Len()),
		size:     params.SizeFor(r.Len()),
	}
	for _, w := range r.Points() {
		grp := &Group{Leader: w, Members: members[w], Confused: confused[w]}
		g.classify(grp)
		g.groups[w] = grp
		for _, m := range grp.Members {
			g.memberOf[m.ID] = append(g.memberOf[m.ID], w)
		}
	}
	return g
}

// BlueLeaders returns the leaders of all blue (non-red) groups, the
// candidate bootstrap groups for joins (§III-A assumes a joining ID knows a
// good bootstrapping group).
func (g *Graph) BlueLeaders() []ring.Point {
	var out []ring.Point
	for _, w := range g.ov.Ring().Points() {
		if grp := g.groups[w]; grp != nil && !grp.Red() {
			out = append(out, w)
		}
	}
	return out
}
