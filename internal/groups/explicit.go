package groups

import (
	"repro/internal/overlay"
	"repro/internal/ring"
)

// BuildExplicit constructs a group graph from externally assembled
// memberships — the dynamic case (§III), where the members of each new
// group were located by (possibly failing) searches in the old group
// graphs rather than read off the ground-truth ring.
//
// members maps each leader (every ID of ov's ring must appear) to its
// member list; confused marks groups whose neighbor establishment failed
// (Lemma 8). Missing or short member lists yield bad groups via the size
// criterion (definition (i)).
func BuildExplicit(ov overlay.Graph, badIDs map[ring.Point]bool, params Params,
	members map[ring.Point][]Member, confused map[ring.Point]bool) *Graph {

	r := ov.Ring()
	n := r.Len()
	g := &Graph{
		ov:       ov,
		params:   params,
		badIDs:   badIDs,
		byRank:   make([]*Group, n),
		memberOf: make(map[ring.Point][]ring.Point, n),
		size:     params.SizeFor(n),
	}
	g.buildRankIndex()
	groupArena := make([]Group, n)
	for wi, w := range r.Points() {
		grp := &groupArena[wi]
		grp.Leader = w
		grp.Members = members[w]
		grp.Confused = confused[w]
		g.classify(grp)
		g.byRank[wi] = grp
		for _, m := range grp.Members {
			g.memberOf[m.ID] = append(g.memberOf[m.ID], w)
		}
	}
	return g
}

// BlueLeaders returns the leaders of all blue (non-red) groups, the
// candidate bootstrap groups for joins (§III-A assumes a joining ID knows a
// good bootstrapping group).
func (g *Graph) BlueLeaders() []ring.Point {
	var out []ring.Point
	for _, grp := range g.byRank {
		if grp != nil && !grp.Red() {
			out = append(out, grp.Leader)
		}
	}
	return out
}
