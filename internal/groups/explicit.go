package groups

import (
	"repro/internal/overlay"
	"repro/internal/ring"
)

// BuildExplicitRanked constructs a group graph from externally assembled
// memberships — the dynamic case (§III), where the members of each new
// group were located by (possibly failing) searches in the old group
// graphs rather than read off the ground-truth ring.
//
// members and confused are indexed by ring rank: members[i] is the member
// list of the group led by the i-th point of ov's ring and confused[i]
// marks its neighbor establishment as failed (Lemma 8). This is the form
// the epoch pipeline produces directly from its rank-indexed arenas; the
// map-keyed BuildExplicit is a thin adapter over it. Short member lists
// yield bad groups via the size criterion (definition (i)). The member
// slices are retained by the graph, not copied; confused may be nil.
func BuildExplicitRanked(ov overlay.Graph, badIDs map[ring.Point]bool, params Params,
	members [][]Member, confused []bool) *Graph {

	r := ov.Ring()
	n := r.Len()
	g := &Graph{
		ov:       ov,
		params:   params,
		badIDs:   badIDs,
		byRank:   make([]*Group, n),
		memberOf: make(map[ring.Point][]ring.Point, n),
		size:     params.SizeFor(n),
	}
	g.buildRankIndex()
	groupArena := make([]Group, n)
	for wi, w := range r.Points() {
		grp := &groupArena[wi]
		grp.Leader = w
		if wi < len(members) {
			grp.Members = members[wi]
		}
		if wi < len(confused) {
			grp.Confused = confused[wi]
		}
		g.classify(grp)
		g.byRank[wi] = grp
		for _, m := range grp.Members {
			g.memberOf[m.ID] = append(g.memberOf[m.ID], w)
		}
	}
	return g
}

// BuildExplicit is BuildExplicitRanked for map-keyed memberships: members
// maps each leader (every ID of ov's ring must appear) to its member list;
// confused marks groups whose neighbor establishment failed.
func BuildExplicit(ov overlay.Graph, badIDs map[ring.Point]bool, params Params,
	members map[ring.Point][]Member, confused map[ring.Point]bool) *Graph {

	r := ov.Ring()
	n := r.Len()
	ranked := make([][]Member, n)
	var conf []bool
	for wi, w := range r.Points() {
		ranked[wi] = members[w]
		if confused[w] {
			if conf == nil {
				conf = make([]bool, n)
			}
			conf[wi] = true
		}
	}
	return BuildExplicitRanked(ov, badIDs, params, ranked, conf)
}

// BlueLeaders returns the leaders of all blue (non-red) groups, the
// candidate bootstrap groups for joins (§III-A assumes a joining ID knows a
// good bootstrapping group).
func (g *Graph) BlueLeaders() []ring.Point {
	var out []ring.Point
	for _, grp := range g.byRank {
		if grp != nil && !grp.Red() {
			out = append(out, grp.Leader)
		}
	}
	return out
}
