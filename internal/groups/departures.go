package groups

import "repro/internal/ring"

// GoodDepartureBound returns ε'/2 = (1 − 2(1+δ)β)/2, the paper's §III
// bound on the fraction of good IDs that may depart any single group per
// epoch while provably preserving its good majority.
func (p Params) GoodDepartureBound() float64 {
	return (1 - 2*(1+p.Delta)*p.Beta) / 2
}

// DepartureReport summarizes one round of mid-epoch departures.
type DepartureReport struct {
	Departed     int // member slots vacated across all groups
	LostMajority int // groups that began good but lost their good majority
	Undersized   int // groups that fell below half their original size
}

// RemoveMembers applies mid-epoch departures: every member whose ID is in
// departed leaves all groups it belongs to. Groups are reclassified under
// the paper's revised dynamic definition (§III): a group that began good
// stays good iff it retains a good majority; a group that began bad stays
// bad. Groups shrunk below half their built size also turn bad (they can
// no longer guarantee the d₁·ln ln n floor).
func (g *Graph) RemoveMembers(departed map[ring.Point]bool) DepartureReport {
	var rep DepartureReport
	for _, grp := range g.byRank {
		kept := grp.Members[:0]
		removed := 0
		for _, m := range grp.Members {
			if departed[m.ID] {
				removed++
				continue
			}
			kept = append(kept, m)
		}
		if removed == 0 {
			continue
		}
		grp.Members = kept
		rep.Departed += removed
		if grp.Bad {
			continue // began bad: stays bad
		}
		sz := grp.Size()
		bad := grp.BadCount()
		if 2*bad >= sz && sz > 0 {
			grp.Bad = true
			rep.LostMajority++
			continue
		}
		if 2*sz < g.size || sz == 0 {
			grp.Bad = true
			rep.Undersized++
		}
	}
	// Rebuild the membership index.
	for id := range g.memberOf {
		if departed[id] {
			delete(g.memberOf, id)
		}
	}
	return rep
}
