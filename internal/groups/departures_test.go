package groups

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ring"
)

func TestGoodDepartureBoundArithmetic(t *testing.T) {
	p := DefaultParams() // beta 0.10, delta 0.25
	want := (1 - 2*1.25*0.10) / 2
	if math.Abs(p.GoodDepartureBound()-want) > 1e-12 {
		t.Errorf("bound = %v, want %v", p.GoodDepartureBound(), want)
	}
}

// Property (the paper's §III claim, checked by arithmetic over random
// group compositions): a group beginning with bad ≤ (1+δ)β·s keeps a good
// majority after losing up to ε'/2 of its good members.
func TestDepartureBoundPreservesMajorityProperty(t *testing.T) {
	p := DefaultParams()
	bound := p.GoodDepartureBound()
	f := func(sizeSeed, badSeed uint8) bool {
		s := 4 + int(sizeSeed)%60
		maxBad := int((1 + p.Delta) * p.Beta * float64(s))
		b := int(badSeed) % (maxBad + 1)
		good := s - b
		departing := int(math.Floor(bound * float64(good)))
		remainingGood := good - departing
		return remainingGood > b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRemoveMembersUniform(t *testing.T) {
	g, pl := buildTest(512, 0.05, 31)
	rng := rand.New(rand.NewSource(32))
	// Depart 20% of good IDs u.a.r. — far below the erosion level that
	// threatens majorities at size 6 with ≤2 bad members.
	departed := map[ring.Point]bool{}
	for _, id := range pl.Good {
		if rng.Float64() < 0.20 {
			departed[id] = true
		}
	}
	// Capture per-group pre-departure composition: the ε'/2 guarantee
	// (§III) applies to groups meeting the strict (1+δ)β criterion whose
	// own good departures stay within the bound.
	type before struct{ good, bad, goodDeparting int }
	pre := map[ring.Point]before{}
	params := g.Params()
	for _, grp := range g.Groups() {
		b := before{}
		for _, m := range grp.Members {
			if m.Bad {
				b.bad++
			} else {
				b.good++
				if departed[m.ID] {
					b.goodDeparting++
				}
			}
		}
		pre[grp.Leader] = b
	}
	beforeRed := g.RedFraction()
	rep := g.RemoveMembers(departed)
	if rep.Departed == 0 {
		t.Fatal("no members departed")
	}
	bound := params.GoodDepartureBound()
	for _, grp := range g.Groups() {
		b := pre[grp.Leader]
		strictGood := float64(b.bad) <= (1+params.Delta)*params.Beta*float64(b.good+b.bad)
		within := float64(b.goodDeparting) <= bound*float64(b.good)
		if strictGood && within && grp.Size() > 0 {
			if 2*grp.BadCount() >= grp.Size() {
				t.Fatalf("group %v lost majority despite strict composition and bounded departures", grp.Leader)
			}
		}
	}
	if g.RedFraction() < beforeRed {
		t.Error("red fraction cannot decrease on departures")
	}
	// memberOf index must not reference departed IDs.
	for id := range departed {
		if len(g.MemberOf(id)) != 0 {
			t.Fatal("departed ID still indexed")
		}
	}
	// No group may retain a departed member.
	for _, grp := range g.Groups() {
		for _, m := range grp.Members {
			if departed[m.ID] {
				t.Fatal("departed member still present")
			}
		}
	}
}

func TestRemoveMembersMassDeparture(t *testing.T) {
	// Departing (almost) all good IDs must flip groups bad via majority
	// loss or undersize.
	g, pl := buildTest(256, 0.10, 33)
	departed := map[ring.Point]bool{}
	for _, id := range pl.Good {
		departed[id] = true
	}
	rep := g.RemoveMembers(departed)
	if rep.LostMajority+rep.Undersized == 0 {
		t.Fatal("mass departure flipped no groups")
	}
	if g.RedFraction() < 0.9 {
		t.Errorf("red fraction %.2f after all good IDs departed", g.RedFraction())
	}
}

func TestRemoveMembersBeganBadStaysBad(t *testing.T) {
	g, _ := buildTest(256, 0.3, 34)
	var badLeader ring.Point
	found := false
	for _, grp := range g.Groups() {
		if grp.Bad {
			badLeader, found = grp.Leader, true
			break
		}
	}
	if !found {
		t.Skip("no bad group at this seed")
	}
	// Departing every bad member cannot redeem a group that began bad.
	departed := map[ring.Point]bool{}
	for _, m := range g.Group(badLeader).Members {
		if m.Bad {
			departed[m.ID] = true
		}
	}
	g.RemoveMembers(departed)
	if !g.Group(badLeader).Bad {
		t.Error("began-bad group was redeemed by departures")
	}
}

func TestRemoveMembersNoopOnEmptySet(t *testing.T) {
	g, _ := buildTest(128, 0.05, 35)
	before := g.RedFraction()
	rep := g.RemoveMembers(map[ring.Point]bool{})
	if rep.Departed != 0 || g.RedFraction() != before {
		t.Error("empty departure set must be a no-op")
	}
}
