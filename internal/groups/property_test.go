package groups

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ring"
)

// Property: classification is monotone — adding a bad member to a group
// never turns a bad group good, and removing a bad member never turns a
// good group bad (fixed size semantics checked by construction).
func TestClassificationMonotoneProperty(t *testing.T) {
	g, _ := buildTest(256, 0.1, 51)
	f := func(sizeSeed, badSeed uint8) bool {
		size := 4 + int(sizeSeed)%16
		bad := int(badSeed) % (size + 1)
		mk := func(badCount int) *Group {
			grp := &Group{Leader: 1}
			for i := 0; i < size; i++ {
				grp.Members = append(grp.Members, Member{ID: ring.Point(i), Bad: i < badCount})
			}
			return grp
		}
		cur := mk(bad)
		g.classify(cur)
		if bad < size {
			more := mk(bad + 1)
			g.classify(more)
			if cur.Bad && !more.Bad {
				return false // extra bad member un-badged the group
			}
		}
		if bad > 0 {
			fewer := mk(bad - 1)
			g.classify(fewer)
			if !cur.Bad && fewer.Bad {
				return false // removing a bad member badged the group
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a search path is always a prefix of the overlay route, and
// message cost is the sum of |G_a|·|G_b| over its hops.
func TestSearchPathPrefixProperty(t *testing.T) {
	g, _ := buildTest(512, 0.15, 52)
	r := g.Overlay().Ring()
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 300; i++ {
		src := r.At(rng.Intn(r.Len()))
		key := ring.Point(rng.Uint64())
		res := g.Search(src, key)
		route, ok := g.Overlay().Route(src, key)
		if !ok {
			t.Fatal("overlay route failed")
		}
		if len(res.Path) > len(route) {
			t.Fatal("search path longer than overlay route")
		}
		var wantMsgs int64
		for h, w := range res.Path {
			if route[h] != w {
				t.Fatal("search path diverged from overlay route")
			}
			if h > 0 {
				wantMsgs += int64(g.Group(route[h-1]).Size()) * int64(g.Group(w).Size())
			}
		}
		if res.Messages != wantMsgs {
			t.Fatalf("messages %d, want %d", res.Messages, wantMsgs)
		}
	}
}

// Property: RedFraction and BadFraction are consistent — red ⊇ bad, and
// both lie in [0,1].
func TestFractionConsistencyProperty(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g, _ := buildTest(256, 0.05+float64(seed)*0.03, 60+seed)
		red, bad := g.RedFraction(), g.BadFraction()
		if bad > red {
			t.Fatalf("seed %d: bad %v > red %v", seed, bad, red)
		}
		if red < 0 || red > 1 {
			t.Fatalf("seed %d: red fraction out of range", seed)
		}
		// Confuse a group: red must not decrease, bad must not change.
		victim := g.Overlay().Ring().At(0)
		g.SetConfused(victim, true)
		if g.RedFraction() < red {
			t.Fatal("confusing a group decreased red fraction")
		}
		if g.BadFraction() != bad {
			t.Fatal("confusion changed bad fraction")
		}
	}
}

// Property: group membership determinism — rebuilding over the same ring
// with the same hash yields identical groups.
func TestBuildDeterministicProperty(t *testing.T) {
	g1, pl := buildTest(256, 0.1, 54)
	ov := g1.Overlay()
	params := g1.Params()
	g2 := Build(ov, pl.BadSet(), params, g1.hash)
	for _, w := range ov.Ring().Points() {
		a, b := g1.Group(w), g2.Group(w)
		if a.Bad != b.Bad || a.Size() != b.Size() {
			t.Fatalf("rebuild differs at %v", w)
		}
		for i := range a.Members {
			if a.Members[i] != b.Members[i] {
				t.Fatalf("member %d differs at %v", i, w)
			}
		}
	}
}
