// Package engine is the parallel deterministic experiment runner: it fans
// independent trials (closures) across a bounded goroutine pool and returns
// their results in trial order, with each trial's randomness derived from a
// root seed by hashing — so a run's output is bit-identical at every
// parallelism level, from -parallel 1 to saturating the machine.
//
// The determinism contract has three legs:
//
//  1. per-trial seeds are SHA-256(rootSeed ‖ scope ‖ trialIdx), never a
//     shared rand.Rand consumed in scheduling order;
//  2. trials communicate only through their return value, never through
//     shared mutable state;
//  3. results are reduced in trial-index order, never completion order.
//
// Anything built on Map therefore parallelizes for free without changing a
// single output byte, which is what lets CI assert -parallel 1 ≡ -parallel 8.
package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"math/rand"
	"runtime"
	"sync"
)

// Config controls how a batch of trials executes.
type Config struct {
	// Parallel caps the number of trials in flight; 0 (or negative) means
	// GOMAXPROCS. It affects wall-clock only, never results.
	Parallel int
	// RootSeed drives every derived trial seed.
	RootSeed int64
}

// Workers returns the effective worker count.
func (c Config) Workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// trialSeedOneShotMax bounds the rootSeed ‖ scope ‖ trial compositions that
// hash via a stack buffer; longer scopes take the streaming path. Every
// scope in this repository is far below the 48-byte budget.
const trialSeedOneShotMax = 64

// TrialSeed derives the deterministic seed of one trial as
// SHA-256(rootSeed ‖ scope ‖ trial) truncated to 63 bits. The scope string
// (conventionally "experimentID" or "experimentID/stage") keeps distinct
// trial batches on disjoint randomness streams even under one root seed.
//
// Short scopes hash through a one-shot sha256.Sum256 over a stack buffer, so
// the call is allocation-free — it sits on the per-ID hot path of the epoch
// pipeline, which derives one stream per new ID per epoch. The byte layout
// is identical to the streaming fallback, so outputs never depend on which
// path ran.
func TrialSeed(rootSeed int64, scope string, trial int) int64 {
	if 16+len(scope) <= trialSeedOneShotMax {
		var buf [trialSeedOneShotMax]byte
		binary.BigEndian.PutUint64(buf[:8], uint64(rootSeed))
		n := 8 + copy(buf[8:], scope)
		binary.BigEndian.PutUint64(buf[n:], uint64(trial))
		sum := sha256.Sum256(buf[:n+8])
		return int64(binary.BigEndian.Uint64(sum[:8]) &^ (1 << 63))
	}
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(rootSeed))
	h.Write(buf[:])
	h.Write([]byte(scope))
	binary.BigEndian.PutUint64(buf[:], uint64(trial))
	h.Write(buf[:])
	var sum [sha256.Size]byte
	return int64(binary.BigEndian.Uint64(h.Sum(sum[:0])[:8]) &^ (1 << 63))
}

// Map runs fn for trials 0..n-1 on the worker pool and returns the results
// in trial order. Each invocation receives a private rand.Rand seeded with
// TrialSeed(cfg.RootSeed, scope, trial); fn must not touch shared mutable
// state. The output is bit-identical for every Parallel setting.
func Map[T any](cfg Config, scope string, n int, fn func(trial int, rng *rand.Rand) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	run := func(i int) {
		out[i] = fn(i, rand.New(rand.NewSource(TrialSeed(cfg.RootSeed, scope, i))))
	}
	w := cfg.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			run(i)
		}
		return out
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				run(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}

// MapReduce fans fn over n trials like Map, then folds the ordered results
// into init through reduce — the trial-as-closure + result-reducer
// contract in one call. reduce runs on the caller's goroutine, in trial
// order.
func MapReduce[T, R any](cfg Config, scope string, n int, init R, fn func(trial int, rng *rand.Rand) T, reduce func(acc R, trial int, v T) R) R {
	acc := init
	for i, v := range Map(cfg, scope, n, fn) {
		acc = reduce(acc, i, v)
	}
	return acc
}
