package engine

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestPoolForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		const n = 1000
		hits := make([]int32, n)
		p.ForEach(n, func(_, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		p.Close()
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestPoolRunExecutesOncePerSlot(t *testing.T) {
	// Run hands out exactly `workers` executions per phase. A fast worker
	// may claim more than one slot (and a slow one none), but worker indices
	// passed to fn stay within range and the total is exact.
	p := NewPool(4)
	defer p.Close()
	var total atomic.Int32
	for phase := 0; phase < 3; phase++ {
		p.Run(func(w int) {
			if w < 0 || w >= 4 {
				t.Errorf("worker index %d out of range", w)
			}
			total.Add(1)
		})
	}
	if total.Load() != 12 {
		t.Fatalf("ran %d slots, want 12", total.Load())
	}
}

func TestPoolCloseIdempotentAndSerialNoop(t *testing.T) {
	p := NewPool(1)
	p.ForEach(10, func(_, _ int) {})
	p.Close()
	p.Close() // second Close must not panic

	q := NewPool(3)
	q.Close() // never went parallel: no workers to stop
	q.Close()
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if w := NewPool(0).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
}

func TestStreamDeterministicAndSeedSensitive(t *testing.T) {
	a, b := NewStream(42), NewStream(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("equal seeds diverged")
		}
	}
	c, d := NewStream(1), NewStream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds collided %d/100 draws", same)
	}
}

func TestStreamUniformity(t *testing.T) {
	// Coarse sanity: mean of Float64 ≈ 1/2, Intn(k) hits every residue about
	// equally. Tolerances are loose — this guards against gross bit-plumbing
	// mistakes, not statistical quality (splitmix64 passes BigCrush).
	s := NewStream(7)
	const n = 100000
	sum := 0.0
	var buckets [8]int
	for i := 0; i < n; i++ {
		sum += s.Float64()
		buckets[s.Intn(8)]++
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %.4f, want ≈0.5", mean)
	}
	for b, c := range buckets {
		if c < n/8-n/80 || c > n/8+n/80 {
			t.Errorf("Intn bucket %d count %d, want ≈%d", b, c, n/8)
		}
	}
}

func TestStreamIntnBounds(t *testing.T) {
	s := NewStream(9)
	for i := 0; i < 10000; i++ {
		if v := s.Intn(3); v < 0 || v > 2 {
			t.Fatalf("Intn(3) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	s.Intn(0)
}

func TestTrialSeedOneShotMatchesStreaming(t *testing.T) {
	// The one-shot fast path must be byte-identical to the streaming layout:
	// a scope long enough to overflow the stack buffer exercises the
	// fallback; the prefix property ties the two together via a scope at the
	// boundary. Also pin two known values so the derivation can never drift
	// silently (doing so would reseed every experiment).
	long := make([]byte, 100)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	if TrialSeed(1, string(long), 2) == TrialSeed(1, string(long[:99]), 2) {
		t.Fatal("long scopes must still separate streams")
	}
	if TrialSeed(5, "e4", 0) != TrialSeed(5, "e4", 0) {
		t.Fatal("TrialSeed not deterministic")
	}
	if TrialSeed(5, "e4", 0) == TrialSeed(5, "e4", 1) {
		t.Fatal("trial index must separate streams")
	}
}

func TestTrialSeedAllocFree(t *testing.T) {
	if allocs := testing.AllocsPerRun(100, func() {
		TrialSeed(1, "epoch/id", 12345)
	}); allocs != 0 {
		t.Errorf("TrialSeed allocates %.1f/op, want 0", allocs)
	}
}
