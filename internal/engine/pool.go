package engine

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent fixed-size worker pool: goroutines are started once
// (lazily, on the first parallel Run) and reused across every subsequent
// phase, so callers that fan out work repeatedly — the sim runtime's
// per-round phases, the epoch pipeline's per-ID construction — pay the
// goroutine start-up cost once per pool, not once per batch.
//
// The pool broadcasts *phases*: Run hands the same closure to every worker
// and returns when all of them have finished. Work distribution inside a
// phase is the caller's business (ForEach provides the common shared-cursor
// loop). Nothing about the schedule may leak into results: pool users must
// write to disjoint (e.g. index-addressed) locations or reduce over
// order-independent accumulators, the same contract engine.Map enforces.
//
// A Pool with one worker never starts goroutines: Run and ForEach execute
// inline, which keeps single-worker determinism checks byte-for-byte
// comparable with parallel runs and keeps the serial path allocation-free.
type Pool struct {
	workers int
	tasks   chan func(worker int)
	// wg lives in its own allocation so worker goroutines can reference it
	// (and the channel) without keeping the Pool itself reachable — that is
	// what lets the finalizer below reclaim the workers of a pool the owner
	// forgot to Close.
	wg        *sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// NewPool returns a pool of the given size; workers <= 0 means GOMAXPROCS.
// No goroutines are started until the first Run that needs them.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) start() {
	p.tasks = make(chan func(int))
	p.wg = &sync.WaitGroup{}
	tasks, wg := p.tasks, p.wg
	for w := 0; w < p.workers; w++ {
		go func(w int) {
			for fn := range tasks {
				fn(w)
				wg.Done()
			}
		}(w)
	}
	// Safety net for pools that are dropped without Close: the workers
	// reference only tasks and wg, so the Pool itself becomes unreachable
	// and the finalizer shuts them down.
	runtime.SetFinalizer(p, (*Pool).Close)
}

// Run broadcasts one phase: every worker executes fn(worker) once, and Run
// returns when all have finished. fn must partition its own work by worker
// index or a shared atomic cursor. With one worker, fn runs inline.
// Run must not be called concurrently with itself or with Close.
func (p *Pool) Run(fn func(worker int)) {
	if p.workers <= 1 {
		fn(0)
		return
	}
	p.startOnce.Do(p.start)
	p.wg.Add(p.workers)
	for i := 0; i < p.workers; i++ {
		p.tasks <- fn
	}
	p.wg.Wait()
}

// ForEach executes fn(worker, i) for every i in [0, n), claiming indices off
// a shared cursor so uneven items balance across workers. Which worker runs
// which index is schedule-dependent; everything else — given fn meets the
// disjoint-writes contract — is not.
func (p *Pool) ForEach(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var cursor atomic.Int64
	p.Run(func(w int) {
		for {
			i := int(cursor.Add(1)) - 1
			if i >= n {
				return
			}
			fn(w, i)
		}
	})
}

// Close shuts the workers down. Idempotent; the pool must not be used
// afterwards. Closing a pool that never went parallel is a no-op.
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		if p.tasks != nil {
			runtime.SetFinalizer(p, nil)
			close(p.tasks)
		}
	})
}

// Stream is a tiny deterministic PRNG (splitmix64) used for the per-ID
// randomness streams of the epoch pipeline. Unlike rand.New(rand.NewSource),
// constructing one is free — a single word of state on the stack, no heap
// allocation, no 607-word lagged-Fibonacci warm-up — which matters when a
// stream is derived per new ID per epoch. It is not a substitute for
// math/rand in the engine.Map contract (trials keep receiving *rand.Rand);
// it is the cheap substream primitive beneath it.
//
// The zero value is a valid stream seeded with 0; NewStream seeds one from a
// TrialSeed-derived value.
type Stream struct {
	state uint64
}

// NewStream returns a stream seeded with seed (conventionally a TrialSeed).
func NewStream(seed int64) Stream {
	return Stream{state: uint64(seed)}
}

// Uint64 returns the next 64 uniform bits (splitmix64 step).
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniform value in [0, n) (Lemire multiply–shift with
// rejection, so the result is exactly uniform). n must be positive.
func (s *Stream) Uint64n(n uint64) uint64 {
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). n must be positive.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("engine: Stream.Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
