package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTrialSeedIndependence(t *testing.T) {
	seen := map[int64]string{}
	for _, root := range []int64{1, 2} {
		for _, scope := range []string{"e1", "e2", "e1/sub"} {
			for trial := 0; trial < 50; trial++ {
				s := TrialSeed(root, scope, trial)
				if s < 0 {
					t.Fatalf("negative seed %d", s)
				}
				key := fmt.Sprintf("(%d,%s,%d)", root, scope, trial)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision between %s and %s", prev, key)
				}
				seen[s] = key
			}
		}
	}
}

func TestTrialSeedStable(t *testing.T) {
	a := TrialSeed(42, "exp", 7)
	b := TrialSeed(42, "exp", 7)
	if a != b {
		t.Errorf("TrialSeed not stable: %d vs %d", a, b)
	}
}

func TestMapOrderAndDeterminism(t *testing.T) {
	fn := func(trial int, rng *rand.Rand) [2]int64 {
		return [2]int64{int64(trial), rng.Int63()}
	}
	seq := Map(Config{Parallel: 1, RootSeed: 3}, "s", 40, fn)
	for i, v := range seq {
		if v[0] != int64(i) {
			t.Fatalf("result %d landed at index %d", v[0], i)
		}
	}
	for _, parallel := range []int{2, 8, 64} {
		par := Map(Config{Parallel: parallel, RootSeed: 3}, "s", 40, fn)
		for i := range seq {
			if par[i] != seq[i] {
				t.Errorf("parallel=%d: trial %d diverged: %v vs %v", parallel, i, par[i], seq[i])
			}
		}
	}
}

func TestMapScopesAreDisjointStreams(t *testing.T) {
	fn := func(_ int, rng *rand.Rand) int64 { return rng.Int63() }
	a := Map(Config{RootSeed: 1}, "alpha", 10, fn)
	b := Map(Config{RootSeed: 1}, "beta", 10, fn)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/10 trials drew identical values across scopes", same)
	}
}

func TestMapHonorsParallelCap(t *testing.T) {
	var inFlight, peak atomic.Int64
	Map(Config{Parallel: 3, RootSeed: 1}, "cap", 24, func(int, *rand.Rand) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return 0
	})
	if got := peak.Load(); got > 3 {
		t.Errorf("observed %d trials in flight, cap is 3", got)
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(Config{}, "z", 0, func(int, *rand.Rand) int { return 1 }); len(got) != 0 {
		t.Errorf("n=0 returned %d results", len(got))
	}
	got := Map(Config{Parallel: 8}, "z", 1, func(i int, _ *rand.Rand) int { return i + 10 })
	if len(got) != 1 || got[0] != 10 {
		t.Errorf("n=1 returned %v", got)
	}
}

func TestMapReduceOrdered(t *testing.T) {
	got := MapReduce(Config{Parallel: 4, RootSeed: 1}, "r", 10, []int{-1},
		func(trial int, _ *rand.Rand) int { return trial },
		func(acc []int, _ int, v int) []int { return append(acc, v) })
	if len(got) != 11 || got[0] != -1 {
		t.Fatalf("init accumulator not threaded through: %v", got)
	}
	for i, v := range got[1:] {
		if v != i {
			t.Fatalf("reduce saw trial %d at position %d", v, i)
		}
	}
}

// TestMapNoSharedRandState hammers Map from several goroutines at once to
// give the race detector something to chew on.
func TestMapNoSharedRandState(t *testing.T) {
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			Map(Config{Parallel: 4, RootSeed: int64(k)}, "hammer", 32, func(_ int, rng *rand.Rand) float64 {
				s := 0.0
				for i := 0; i < 100; i++ {
					s += rng.Float64()
				}
				return s
			})
		}(k)
	}
	wg.Wait()
}

func TestWorkersDefault(t *testing.T) {
	if w := (Config{}).Workers(); w < 1 {
		t.Errorf("default workers %d", w)
	}
	if w := (Config{Parallel: 5}).Workers(); w != 5 {
		t.Errorf("explicit workers %d, want 5", w)
	}
	if w := (Config{Parallel: -1}).Workers(); w < 1 {
		t.Errorf("negative parallel gave %d workers", w)
	}
}
