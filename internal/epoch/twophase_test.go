package epoch

import (
	"context"
	"sync/atomic"
	"testing"
)

// twoPhaseConfig is a small-but-nontrivial config for the build/commit
// split tests: spam and departures on, so every construction phase that
// draws randomness runs.
func twoPhaseConfig() Config {
	cfg := DefaultConfig(256)
	cfg.SpamFactor = 1
	cfg.MidEpochDepartures = 0.02
	return cfg
}

// TestBuildCommitMatchesRunEpoch pins the two-phase split against the
// one-shot path: Build+Commit must produce the identical Stats, epoch
// counter, and generation fingerprint as RunEpoch, epoch after epoch.
func TestBuildCommitMatchesRunEpoch(t *testing.T) {
	one, err := New(twoPhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer one.Close()
	two, err := New(twoPhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer two.Close()

	for e := 1; e <= 4; e++ {
		stOne := one.RunEpoch()

		stBuild, err := two.BuildEpochContext(context.Background())
		if err != nil {
			t.Fatalf("epoch %d: build: %v", e, err)
		}
		if !two.HasPending() {
			t.Fatalf("epoch %d: no pending generation after build", e)
		}
		if two.Epoch() != e-1 {
			t.Fatalf("epoch %d: build advanced the epoch to %d", e, two.Epoch())
		}
		stCommit, ok := two.CommitEpoch()
		if !ok {
			t.Fatalf("epoch %d: commit reported no pending build", e)
		}
		if stBuild != stCommit {
			t.Fatalf("epoch %d: build stats %+v != commit stats %+v", e, stBuild, stCommit)
		}
		if stOne != stCommit {
			t.Fatalf("epoch %d: one-shot stats %+v != two-phase stats %+v", e, stOne, stCommit)
		}
		if got, want := graphFingerprint(two.Graphs()), graphFingerprint(one.Graphs()); got != want {
			t.Fatalf("epoch %d: two-phase generation fingerprint diverged from RunEpoch", e)
		}
	}
}

// TestBuildIdempotentWhilePending pins that a second build with a build
// already parked recomputes nothing and returns the parked Stats.
func TestBuildIdempotentWhilePending(t *testing.T) {
	s, err := New(twoPhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	first, err := s.BuildEpochContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mark := s.rsrc.n
	second, err := s.BuildEpochContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatalf("idempotent build returned different stats: %+v vs %+v", first, second)
	}
	if s.rsrc.n != mark {
		t.Fatalf("idempotent build consumed %d rng draws", s.rsrc.n-mark)
	}
}

// TestCommitWithoutPending pins the no-op contract of a bare commit.
func TestCommitWithoutPending(t *testing.T) {
	s, err := New(twoPhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, ok := s.CommitEpoch(); ok {
		t.Fatal("CommitEpoch reported ok with no pending build")
	}
	if s.Epoch() != 0 {
		t.Fatalf("bare commit advanced the epoch to %d", s.Epoch())
	}
	if s.AbortPending() {
		t.Fatal("AbortPending reported a discarded build with none pending")
	}
}

// TestAbortPendingReplaysIdentical is the cluster-lockstep property: a
// system that builds, aborts, and rebuilds must commit the byte-identical
// generation a never-aborted system commits, because AbortPending rewinds
// the placement rng to its pre-build state.
func TestAbortPendingReplaysIdentical(t *testing.T) {
	plain, err := New(twoPhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	aborted, err := New(twoPhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer aborted.Close()

	stPlain := plain.RunEpoch()

	mark := aborted.rsrc.n
	if _, err := aborted.BuildEpochContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if aborted.rsrc.n == mark {
		t.Fatal("test vacuous: build consumed no rng draws")
	}
	if !aborted.AbortPending() {
		t.Fatal("AbortPending found nothing to discard")
	}
	if aborted.HasPending() {
		t.Fatal("build still pending after abort")
	}
	if aborted.rsrc.n != mark {
		t.Fatalf("abort rewound to %d draws, want %d", aborted.rsrc.n, mark)
	}
	stReplay, err := aborted.BuildEpochContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stReplay != stPlain {
		t.Fatalf("replayed build stats %+v != never-aborted stats %+v", stReplay, stPlain)
	}
	if _, ok := aborted.CommitEpoch(); !ok {
		t.Fatal("commit after replay found nothing pending")
	}
	if got, want := graphFingerprint(aborted.Graphs()), graphFingerprint(plain.Graphs()); got != want {
		t.Fatal("replayed generation fingerprint diverged from never-aborted build")
	}
}

// errAfterCtx is a context whose Err flips to Canceled after a fixed
// number of Err() polls — a deterministic way to cancel an epoch build
// mid-construction (after placement has drawn from the system rng but
// before the build completes), which a real timer cannot do reproducibly.
type errAfterCtx struct {
	context.Context
	polls int32
	after int32
}

func (c *errAfterCtx) Done() <-chan struct{} {
	// Non-nil so RunEpochContext takes the chunked, poll-between-batches
	// path rather than the uncancellable fast path.
	return make(chan struct{})
}

func (c *errAfterCtx) Err() error {
	if atomic.AddInt32(&c.polls, 1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestMidBuildAbortReplaysIdentical pins the rewind across a build that
// dies partway: placement already consumed rng draws when the context
// cancels, the abort rewinds them, and the retried epoch replays the
// identical generation a never-cancelled system builds.
func TestMidBuildAbortReplaysIdentical(t *testing.T) {
	plain, err := New(twoPhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	cancelled, err := New(twoPhaseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cancelled.Close()

	stPlain := plain.RunEpoch()

	// Survive a handful of polls (placement happens before the first
	// mid-build poll), then cancel.
	mark := cancelled.rsrc.n
	ctx := &errAfterCtx{Context: context.Background(), after: 3}
	if _, err := cancelled.BuildEpochContext(ctx); err == nil {
		t.Fatal("mid-build cancellation did not surface an error")
	}
	if cancelled.HasPending() {
		t.Fatal("cancelled build left a pending generation")
	}
	if cancelled.rsrc.n != mark {
		t.Fatalf("abort left rng at %d draws, want the pre-build mark %d", cancelled.rsrc.n, mark)
	}

	st, err := cancelled.RunEpochContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st != stPlain {
		t.Fatalf("post-abort stats %+v != never-cancelled stats %+v", st, stPlain)
	}
	if got, want := graphFingerprint(cancelled.Graphs()), graphFingerprint(plain.Graphs()); got != want {
		t.Fatal("post-abort generation fingerprint diverged from never-cancelled build")
	}
}
