package epoch

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/groups"
	"repro/internal/ring"
)

// This file is the durability seam of the epoch layer: Persist extracts
// everything a byte-identical restart needs, Restore rebuilds a System from
// it without re-running a single construction search.
//
// The extract is small because the system is deterministic by design. The
// only mutable randomness is the placement rng, and it runs on a
// countingSource — re-seeding from the root seed and fast-forwarding
// RNGCount draws reproduces its exact state (the same mechanism the
// two-phase abort path uses to rewind). Everything else is the serving
// generation itself: the ring, the adversary's ID list in minting order
// (badOldID indexes into it, so order is load-bearing), and the group
// graphs' member lists and classification flags. Group flags must be
// persisted rather than recomputed: mid-epoch departures reclassify groups
// under the §III revised rules (began-bad-stays-bad, half-size floor),
// which classify() alone cannot reproduce from the member lists.

// PersistedGroup is one group's durable state, keyed by its leader's ring
// rank (the leader itself is the ring point at that rank).
type PersistedGroup struct {
	Members  []groups.Member
	Bad      bool
	Confused bool
}

// PersistedState is everything a System needs to resume at an epoch
// boundary: the epoch counter, the placement-rng advance count, the serving
// ring, the adversary's IDs in minting order, and both group graphs by
// rank. It captures committed state only — a pending two-phase build is
// deliberately excluded (a crashed build is replayed identically on demand,
// exactly like an aborted one).
type PersistedState struct {
	Epoch    int
	RNGCount uint64
	Ring     []ring.Point
	BadList  []ring.Point
	// Graphs holds one entry per live group graph (two in the paper's
	// protocol, one in the single-graph ablation), each indexed by ring
	// rank.
	Graphs [][]PersistedGroup
}

// RNGCount returns the number of placement-rng draws since New — together
// with the root seed, the rng's complete state.
func (s *System) RNGCount() uint64 { return s.rsrc.n }

// Persist extracts the serving generation as a PersistedState. It must not
// run concurrently with RunEpoch/CommitEpoch (the caller's single-writer
// discipline); the returned slices alias the system's immutable generation
// data and must be treated as read-only.
func (s *System) Persist() PersistedState {
	st := PersistedState{
		Epoch:    s.epoch,
		RNGCount: s.rsrc.n,
		Ring:     s.ids.Points(),
		BadList:  s.badList,
	}
	for _, g := range s.g {
		if g == nil {
			continue
		}
		pg := make([]PersistedGroup, g.N())
		for i := range pg {
			grp := g.GroupAt(i)
			pg[i] = PersistedGroup{Members: grp.Members, Bad: grp.Bad, Confused: grp.Confused}
		}
		st.Graphs = append(st.Graphs, pg)
	}
	return st
}

// Restore rebuilds a System from a PersistedState under cfg, byte-identical
// to the System that was persisted: reads answer identically and every
// future RunEpoch draws the same placements the uncrashed run would have.
// cfg must carry the same determinism-relevant settings the persisted run
// used (seed, sizes, protocol switches) — Restore validates only structural
// consistency; semantic config matching is the caller's contract (the
// snapshot format stores a config echo for exactly that check).
func Restore(cfg Config, st PersistedState) (*System, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	wantGraphs := 1
	if cfg.TwoGraphs {
		wantGraphs = 2
	}
	if len(st.Graphs) != wantGraphs {
		return nil, fmt.Errorf("epoch: restore: %d graphs persisted, config needs %d", len(st.Graphs), wantGraphs)
	}
	if len(st.Ring) < 8 {
		return nil, fmt.Errorf("epoch: restore: ring of %d points too small", len(st.Ring))
	}
	s := &System{cfg: cfg, epoch: st.Epoch}
	s.rsrc = &countingSource{}
	s.rewind(st.RNGCount)
	s.ids = ring.New(st.Ring)
	if s.ids.Len() != len(st.Ring) {
		return nil, fmt.Errorf("epoch: restore: ring points not unique (%d -> %d)", len(st.Ring), s.ids.Len())
	}
	s.badList = st.BadList
	s.bad = make(map[ring.Point]bool, len(st.BadList))
	for _, b := range st.BadList {
		s.bad[b] = true
	}
	ov, err := s.buildOverlay(s.ids)
	if err != nil {
		return nil, err
	}
	for l, pg := range st.Graphs {
		if len(pg) != s.ids.Len() {
			return nil, fmt.Errorf("epoch: restore: graph %d has %d groups for %d ring points", l, len(pg), s.ids.Len())
		}
		members := make([][]groups.Member, len(pg))
		confused := make([]bool, len(pg))
		for i := range pg {
			members[i] = pg[i].Members
			confused[i] = pg[i].Confused
		}
		g := groups.BuildExplicitRanked(ov, s.bad, cfg.Params, members, confused)
		// classify() recomputed Bad from the member lists; overwrite it with
		// the persisted flag — departures reclassify under rules classify
		// cannot reproduce (see the file comment).
		for i := range pg {
			g.GroupAt(i).Bad = pg[i].Bad
		}
		s.g[l] = g
	}
	s.pool = engine.NewPool(cfg.Workers)
	s.scratch = make([]workerScratch, s.pool.Workers())
	s.indexGeneration()
	s.refreshBlue()
	s.gen.Store(&Generation{Epoch: s.epoch, Ring: s.ids, Graphs: s.g})
	return s, nil
}
