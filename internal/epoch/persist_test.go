package epoch

import (
	"reflect"
	"testing"
)

// The Persist/Restore seam must be exact: a restored System is
// indistinguishable from the one that persisted — same serving generation
// and, because the rng state round-trips as a draw count, the same future.
// Running both forward must yield deep-equal persisted states again, at
// any worker count.
func TestPersistRestoreContinuesIdentically(t *testing.T) {
	cfg := DefaultConfig(128)
	cfg.Seed = 11
	cfg.MidEpochDepartures = 0.05 // exercises the reclassified-flags path
	orig, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	for e := 0; e < 3; e++ {
		orig.RunEpoch()
	}
	st := orig.Persist()
	if st.Epoch != 3 || st.RNGCount == 0 {
		t.Fatalf("unexpected persisted header: epoch %d rng %d", st.Epoch, st.RNGCount)
	}
	for _, workers := range []int{1, 4} {
		rcfg := cfg
		rcfg.Workers = workers
		restored, err := Restore(rcfg, st)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if got := restored.Persist(); !reflect.DeepEqual(got, st) {
			t.Fatalf("workers %d: restored state differs before any epoch", workers)
		}
		// The restored system's next epoch must be the epoch the original
		// builds next — byte-identical groups, flags and rng advance.
		restored.RunEpoch()
		if workers == 1 {
			orig.RunEpoch()
		}
		if got, want := restored.Persist(), orig.Persist(); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers %d: epoch %d diverges after restore", workers, got.Epoch)
		}
		restored.Close()
	}
}

func TestRestoreRejectsStructuralMismatch(t *testing.T) {
	cfg := DefaultConfig(64)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Persist()

	bad := st
	bad.Graphs = st.Graphs[:1]
	if _, err := Restore(cfg, bad); err == nil {
		t.Fatal("graph-count mismatch accepted")
	}
	bad = st
	bad.Ring = st.Ring[:4]
	if _, err := Restore(cfg, bad); err == nil {
		t.Fatal("tiny ring accepted")
	}
	single := cfg
	single.TwoGraphs = false
	if _, err := Restore(single, st); err == nil {
		t.Fatal("two persisted graphs accepted under single-graph config")
	}
}
