package epoch

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestRunEpochContextMatchesRunEpoch pins the chunked cancellable path to
// the unchunked fast path: a context that can be cancelled but never is
// must produce byte-identical Stats and graphs, epoch over epoch.
func TestRunEpochContextMatchesRunEpoch(t *testing.T) {
	mk := func() *System {
		cfg := DefaultConfig(512)
		cfg.Seed = 51
		cfg.SpamFactor = 2
		cfg.MidEpochDepartures = 0.05
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain, chunked := mk(), mk()
	defer plain.Close()
	defer chunked.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for e := 0; e < 2; e++ {
		want := plain.RunEpoch()
		got, err := chunked.RunEpochContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("epoch %d: chunked Stats diverged:\n got %+v\nwant %+v", e+1, got, want)
		}
		if graphFingerprint(chunked.Graphs()) != graphFingerprint(plain.Graphs()) {
			t.Errorf("epoch %d: chunked graph fingerprint diverged", e+1)
		}
	}
}

// TestRunEpochContextCancelled: a cancelled context aborts without
// swapping generations or polluting tallies, and the system stays usable.
func TestRunEpochContextCancelled(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Seed = 53
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.RunEpochContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Epoch() != 0 {
		t.Fatalf("aborted epoch advanced the counter to %d", s.Epoch())
	}
	st := s.RunEpoch() // the abort must not poison the next epoch
	if st.Epoch != 1 || st.Searches == 0 {
		t.Errorf("post-abort epoch malformed: %+v", st)
	}
}
