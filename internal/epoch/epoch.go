// Package epoch implements the paper's dynamic construction (§III): time is
// divided into epochs; during epoch j the system holds two old group graphs
// G₁^{j−1}, G₂^{j−1} and builds two new ones G₁^j, G₂^j for the IDs that
// will be active in epoch j+1.
//
// Every step of the construction — locating a group member suc(h_ℓ(w,i)),
// locating a neighbor, or verifying either kind of request — is performed
// by searching in *both* old graphs; a step is corrupted only when both
// searches fail (probability q_f², the crux of Lemma 9's error
// non-accumulation). Setting Config.TwoGraphs to false gives the naive
// single-graph protocol the paper argues against, used as the E5 ablation.
package epoch

import (
	"fmt"
	"math/rand"

	"repro/internal/adversary"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/ring"
)

// Config parameterizes a dynamic system.
type Config struct {
	N       int           // system size (constant under churn, §III model)
	Params  groups.Params //
	Overlay string        // input-graph construction: "chord", "debruijn", "viceroy"
	// TwoGraphs selects the paper's two-group-graph protocol; false runs
	// the naive single-graph ablation.
	TwoGraphs bool
	// Strategy is the adversary's ID-subset strategy for each epoch's βn
	// freshly minted bad IDs.
	Strategy adversary.Strategy
	// VerifyRequests enables the §III-A request-verification step
	// (disabling it exposes the state-blowup spam attack of Lemma 10/E12).
	VerifyRequests bool
	// SpamFactor: bogus group-membership requests per bad ID per epoch.
	SpamFactor int
	// MidEpochDepartures is the fraction of good IDs that go offline
	// during each epoch after construction (0 = none). The §III model
	// guarantees good groups survive as long as no group loses more than
	// an ε'/2 = (1−2(1+δ)β)/2 fraction of its good members.
	MidEpochDepartures float64
	// SizeDrift exercises the paper's "system size is Θ(n)" remark (§III):
	// each epoch the population alternates between N·(1−drift) and
	// N·(1+drift). Zero keeps the size constant (the default model).
	SizeDrift float64
	Seed      int64
}

// DefaultConfig returns a paper-faithful configuration. Beta defaults to
// 0.05: the paper requires β "sufficiently small", and at simulable n the
// dynamic construction's error-feedback loop (confusion ∝ q_f²·|L_w|,
// Lemma 8) converges comfortably at 0.05 with |G| = Θ(log log n) but needs
// larger group-size constants beyond β ≈ 0.1 — exactly the knee experiment
// E8 exhibits.
func DefaultConfig(n int) Config {
	params := groups.DefaultParams()
	params.Beta = 0.05
	// Dynamic stability needs a larger d₂ than the static case: the
	// confusion feedback of Lemma 8 (red' ≈ p_bad + Θ(|L_w|)·q_f²) only
	// converges when p_bad is small against the Θ(log n)-sized confusion
	// surface |L_w|. Empirically (stability probes over seeds and sizes),
	// |G| = 8 is stable at n ≈ 10³ but marginal by n ≈ 4·10³; d₂ = 4.5
	// (|G| = 8–11 across simulable n — still far below the Θ(log n) ≈
	// 14–64 of prior work) holds a comfortable margin through n = 4096.
	// The E5/E8/E20 experiments map the divergence boundary.
	params.D2 = 4.5
	params.MinSize = 8
	return Config{
		N:              n,
		Params:         params,
		Overlay:        "chord",
		TwoGraphs:      true,
		Strategy:       adversary.Uniform,
		VerifyRequests: true,
		Seed:           1,
	}
}

// Stats reports one epoch's construction outcome.
type Stats struct {
	Epoch int
	// N is the population size of the generation built this epoch (differs
	// from Config.N only under SizeDrift).
	N int
	// QfSingle / QfDual are the measured failure probabilities of a single
	// old-graph search and of the both-graphs-fail event (≈ q_f and q_f²).
	QfSingle, QfDual float64
	// RedFraction is the red-group fraction of each new graph (p_f of S2).
	RedFraction [2]float64
	// SearchFailRate is the post-construction failure rate of searches in
	// the new graphs (Theorem 3's second bullet, complemented).
	SearchFailRate float64
	// ForcedBadMembers counts member slots the adversary captured because
	// both location searches failed.
	ForcedBadMembers int
	// ErroneousRejects counts good IDs that wrongly rejected a valid
	// membership/neighbor request (both verification searches failed).
	ErroneousRejects int
	// SpamAccepted counts bogus requests that slipped past verification
	// (or all of them when verification is off).
	SpamAccepted int
	// MeanMemberships is the mean number of groups a good serving ID
	// belongs to across the new graphs (Lemma 10: O(log log n)).
	MeanMemberships float64
	// DepartedMembers / MajoritiesLost report the mid-epoch departure
	// erosion (zero unless Config.MidEpochDepartures > 0).
	DepartedMembers int
	MajoritiesLost  int
	// SearchMessages is the total secure-routing message cost of all
	// construction searches this epoch.
	SearchMessages int64
	Searches       int64
}

// System is a running dynamic deployment.
type System struct {
	cfg   Config
	rng   *rand.Rand
	epoch int

	ids *ring.Ring          // current generation's ID set (the "old" ring)
	bad map[ring.Point]bool //
	// badList mirrors bad in the adversary's deterministic minting order,
	// so randomBadOldID is a pure function of the rng stream (selecting the
	// k-th element of a map range would depend on Go's randomized map
	// iteration order).
	badList []ring.Point
	g       [2]*groups.Graph // the two old group graphs (g[1] nil if !TwoGraphs)
	blue    []ring.Point     // bootstrap candidates: blue in every old graph
}

// New creates a system in its trusted-initialization state (Appendix X):
// the two epoch-0 graphs are built directly with ground-truth memberships.
func New(cfg Config) (*System, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.N < 8 {
		return nil, fmt.Errorf("epoch: N = %d too small", cfg.N)
	}
	s := &System{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	pl := adversary.Place(adversary.Config{N: cfg.N, Beta: cfg.Params.Beta, Strategy: cfg.Strategy}, s.rng)
	s.ids = pl.Ring()
	s.bad = pl.BadSet()
	s.badList = pl.Bad
	ov, err := s.buildOverlay(s.ids)
	if err != nil {
		return nil, err
	}
	s.g[0] = groups.Build(ov, s.bad, cfg.Params, hashes.H1)
	if cfg.TwoGraphs {
		s.g[1] = groups.Build(ov, s.bad, cfg.Params, hashes.H2)
	}
	s.refreshBlue()
	return s, nil
}

func (s *System) buildOverlay(r *ring.Ring) (overlay.Graph, error) {
	for _, b := range overlay.Builders() {
		if b.Name == s.cfg.Overlay {
			return b.Build(r, s.cfg.Seed), nil
		}
	}
	return nil, fmt.Errorf("epoch: unknown overlay %q", s.cfg.Overlay)
}

// refreshBlue recomputes the bootstrap-candidate list: leaders blue in
// every live old graph.
func (s *System) refreshBlue() {
	s.blue = s.blue[:0]
	for _, w := range s.ids.Points() {
		ok := !s.g[0].Group(w).Red()
		if ok && s.g[1] != nil {
			ok = !s.g[1].Group(w).Red()
		}
		if ok {
			s.blue = append(s.blue, w)
		}
	}
}

// Epoch returns the current epoch index.
func (s *System) Epoch() int { return s.epoch }

// Graphs returns the current old group graphs (the second is nil in
// single-graph mode).
func (s *System) Graphs() [2]*groups.Graph { return s.g }

// Ring returns the current generation's ID set.
func (s *System) Ring() *ring.Ring { return s.ids }

// searchOutcome runs the §III-A dual search for point p from bootstrap
// leader boot and reports whether each old-graph search succeeded, plus
// message cost.
func (s *System) searchOutcome(boot, p ring.Point, st *Stats) (ok1, ok2 bool) {
	r1 := s.g[0].Search(boot, p)
	st.SearchMessages += r1.Messages
	st.Searches++
	ok1 = r1.OK
	if s.g[1] == nil {
		return ok1, ok1
	}
	r2 := s.g[1].Search(boot, p)
	st.SearchMessages += r2.Messages
	st.Searches++
	return ok1, r2.OK
}

// dualFails updates the q_f tallies and reports whether the step was
// corrupted (all searches failed).
func (s *System) dualFails(boot, p ring.Point, st *Stats, singles, duals *int) bool {
	ok1, ok2 := s.searchOutcome(boot, p, st)
	if !ok1 {
		*singles++
	}
	if !ok1 && !ok2 {
		*duals++
		return true
	}
	return false
}

// randomBoot returns a bootstrap leader: a u.a.r. blue group (the paper's
// assumption that joiners know a good bootstrapping group; Appendix IX).
func (s *System) randomBoot() ring.Point {
	if len(s.blue) == 0 {
		// Degenerate: no blue groups — fall back to any leader.
		return s.ids.At(s.rng.Intn(s.ids.Len()))
	}
	return s.blue[s.rng.Intn(len(s.blue))]
}

// randomBadOldID returns a u.a.r. bad ID from the old generation (the
// adversary's worst-case substitute when it fully controls a lookup).
func (s *System) randomBadOldID() (ring.Point, bool) {
	if len(s.badList) == 0 {
		return 0, false
	}
	return s.badList[s.rng.Intn(len(s.badList))], true
}

// RunEpoch advances the system one epoch: the whole population turns over
// (n departures matched by n PoW-minted joins), the new group graphs are
// built through the old ones, and the generations swap.
func (s *System) RunEpoch() Stats {
	st := Stats{Epoch: s.epoch + 1}
	// New generation of IDs: good participants re-mint; the adversary
	// mints βn u.a.r. IDs and injects per its strategy (Lemma 11 bounds).
	// Under SizeDrift the population swings by a constant factor (§III's
	// Θ(n) remark).
	newN := s.cfg.N
	if s.cfg.SizeDrift > 0 {
		if s.epoch%2 == 0 {
			newN = int(float64(s.cfg.N) * (1 - s.cfg.SizeDrift))
		} else {
			newN = int(float64(s.cfg.N) * (1 + s.cfg.SizeDrift))
		}
	}
	st.N = newN
	pl := adversary.Place(adversary.Config{
		N: newN, Beta: s.cfg.Params.Beta, Strategy: s.cfg.Strategy,
	}, s.rng)
	newRing := pl.Ring()
	newBad := pl.BadSet()
	newOv, err := s.buildOverlay(newRing)
	if err != nil {
		panic(err) // config was validated in New
	}

	size := s.cfg.Params.SizeFor(newRing.Len())
	nGraphs := 1
	if s.cfg.TwoGraphs {
		nGraphs = 2
	}
	hashFns := [2]hashes.Func{hashes.H1, hashes.H2}
	members := [2]map[ring.Point][]groups.Member{
		make(map[ring.Point][]groups.Member, newRing.Len()),
		make(map[ring.Point][]groups.Member, newRing.Len()),
	}
	confused := [2]map[ring.Point]bool{
		make(map[ring.Point]bool),
		make(map[ring.Point]bool),
	}
	singles, duals := 0, 0
	ptBuf := make([]ring.Point, size) // reused batch buffer for member points

	for _, w := range newRing.Points() {
		boot := s.randomBoot()
		for l := 0; l < nGraphs; l++ {
			// Group-membership requests (§III-A): all d₂·ln ln n member
			// points of G_w are derived in one batch-hash pass.
			mlist := make([]groups.Member, 0, size)
			for _, p := range hashFns[l].PointsAt(w, size, ptBuf) {
				if s.dualFails(boot, p, &st, &singles, &duals) {
					// Both location searches failed: the adversary answers.
					if id, ok := s.randomBadOldID(); ok {
						mlist = append(mlist, groups.Member{ID: id, Bad: true})
						st.ForcedBadMembers++
					}
					continue
				}
				u := s.ids.Successor(p)
				if !s.bad[u] && s.cfg.VerifyRequests {
					// u verifies the request by its own dual search; if all
					// of u's searches fail, it erroneously rejects.
					if s.dualFails(u, p, &st, &singles, &duals) {
						st.ErroneousRejects++
						continue
					}
				}
				mlist = append(mlist, groups.Member{ID: u, Bad: s.bad[u]})
			}
			members[l][w] = mlist

			// Neighbor requests (§III-A): locate every element of L_w and
			// have it verify; a failure on either side leaves G_w confused
			// (Lemma 8).
			for _, u := range newOv.Neighbors(w) {
				if s.dualFails(boot, u, &st, &singles, &duals) {
					confused[l][w] = true
					continue
				}
				if newBad[u] || !s.cfg.VerifyRequests {
					continue
				}
				// u's verification searches run in the old graphs from u's
				// bootstrap position (u is a new ID; its searches go
				// through its own bootstrap group while the new graphs are
				// under construction).
				if s.dualFails(s.randomBoot(), u, &st, &singles, &duals) {
					st.ErroneousRejects++
					confused[l][w] = true
				}
			}
		}
	}

	// Spam attack (Lemma 10 / E12): each bad new ID issues bogus
	// membership requests to random good old IDs; the target's dual
	// verification search catches them unless both searches fail.
	if s.cfg.SpamFactor > 0 {
		goodOld := make([]ring.Point, 0, s.ids.Len())
		for _, id := range s.ids.Points() {
			if !s.bad[id] {
				goodOld = append(goodOld, id)
			}
		}
		for range pl.Bad {
			for k := 0; k < s.cfg.SpamFactor; k++ {
				u := goodOld[s.rng.Intn(len(goodOld))]
				if !s.cfg.VerifyRequests {
					st.SpamAccepted++
					continue
				}
				// A bogus request never hashes to u, so u accepts only if
				// both of its verification searches fail.
				p := ring.Point(s.rng.Uint64())
				if s.dualFails(u, p, &st, &singles, &duals) {
					st.SpamAccepted++
				}
			}
		}
	}

	// Assemble the new graphs and classify.
	var newG [2]*groups.Graph
	newG[0] = groups.BuildExplicit(newOv, newBad, s.cfg.Params, members[0], confused[0])
	if s.cfg.TwoGraphs {
		newG[1] = groups.BuildExplicit(newOv, newBad, s.cfg.Params, members[1], confused[1])
	}

	// Mid-epoch departures (§III churn model): a fraction of the serving
	// generation's good IDs goes offline, eroding the groups they serve in.
	if s.cfg.MidEpochDepartures > 0 {
		departed := map[ring.Point]bool{}
		for _, id := range s.ids.Points() {
			if !s.bad[id] && s.rng.Float64() < s.cfg.MidEpochDepartures {
				departed[id] = true
			}
		}
		for l := 0; l < nGraphs; l++ {
			rep := newG[l].RemoveMembers(departed)
			st.DepartedMembers += rep.Departed
			st.MajoritiesLost += rep.LostMajority + rep.Undersized
		}
	}

	st.RedFraction[0] = newG[0].RedFraction()
	if s.cfg.TwoGraphs {
		st.RedFraction[1] = newG[1].RedFraction()
	}

	if st.Searches > 0 {
		st.QfSingle = float64(singles) / float64(st.Searches)
		denom := st.Searches
		if s.cfg.TwoGraphs {
			denom = st.Searches / 2
		}
		st.QfDual = float64(duals) / float64(denom)
	}

	// Lemma 10: membership state of the serving (old) generation.
	totalMemberships := 0
	goodServing := 0
	for _, id := range s.ids.Points() {
		if s.bad[id] {
			continue
		}
		goodServing++
		totalMemberships += len(newG[0].MemberOf(id))
	}
	if goodServing > 0 {
		st.MeanMemberships = float64(totalMemberships) / float64(goodServing)
	}

	// Post-construction robustness of the new generation.
	probe := newG[0].MeasureRobustness(512, s.rng)
	st.SearchFailRate = probe.SearchFailRate
	if s.cfg.TwoGraphs {
		probe2 := newG[1].MeasureRobustness(512, s.rng)
		st.SearchFailRate = (st.SearchFailRate + probe2.SearchFailRate) / 2
	}

	// Swap generations.
	s.ids = newRing
	s.bad = newBad
	s.badList = pl.Bad
	s.g = newG
	s.refreshBlue()
	s.epoch++
	return st
}
