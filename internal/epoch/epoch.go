// Package epoch implements the paper's dynamic construction (§III): time is
// divided into epochs; during epoch j the system holds two old group graphs
// G₁^{j−1}, G₂^{j−1} and builds two new ones G₁^j, G₂^j for the IDs that
// will be active in epoch j+1.
//
// Every step of the construction — locating a group member suc(h_ℓ(w,i)),
// locating a neighbor, or verifying either kind of request — is performed
// by searching in *both* old graphs; a step is corrupted only when both
// searches fail (probability q_f², the crux of Lemma 9's error
// non-accumulation). Setting Config.TwoGraphs to false gives the naive
// single-graph protocol the paper argues against, used as the E5 ablation.
//
// # Parallel construction
//
// The per-ID work of an epoch — member-point location, request
// verification, neighbor establishment for one new ID w — touches only the
// two *immutable* old graphs and the new overlay, so the construction is
// embarrassingly parallel per new ID. RunEpoch exploits that: every new ID
// draws its randomness from a private stream derived by hashing
// (epoch seed, rank of w), exactly the engine.TrialSeed scheme the
// experiment runner uses per trial, and the per-ID tasks fan across a
// persistent worker pool writing into rank-indexed arenas. Randomness never
// depends on scheduling and tallies are integer sums, so Stats and the
// resulting graphs are bit-identical at every Config.Workers setting.
package epoch

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/ring"
)

// Config parameterizes a dynamic system.
type Config struct {
	N       int           // system size (constant under churn, §III model)
	Params  groups.Params //
	Overlay string        // input-graph construction: "chord", "debruijn", "viceroy"
	// TwoGraphs selects the paper's two-group-graph protocol; false runs
	// the naive single-graph ablation.
	TwoGraphs bool
	// Strategy is the adversary's ID-subset strategy for each epoch's βn
	// freshly minted bad IDs.
	Strategy adversary.Strategy
	// VerifyRequests enables the §III-A request-verification step
	// (disabling it exposes the state-blowup spam attack of Lemma 10/E12).
	VerifyRequests bool
	// SpamFactor: bogus group-membership requests per bad ID per epoch.
	SpamFactor int
	// MidEpochDepartures is the fraction of good IDs that go offline
	// during each epoch after construction (0 = none). The §III model
	// guarantees good groups survive as long as no group loses more than
	// an ε'/2 = (1−2(1+δ)β)/2 fraction of its good members.
	MidEpochDepartures float64
	// SizeDrift exercises the paper's "system size is Θ(n)" remark (§III):
	// each epoch the population alternates between N·(1−drift) and
	// N·(1+drift). Zero keeps the size constant (the default model).
	SizeDrift float64
	// Workers caps the construction worker pool; 0 means GOMAXPROCS. It
	// affects wall-clock only: per-ID randomness streams make every result
	// identical at every setting.
	Workers int
	Seed    int64
}

// DefaultConfig returns a paper-faithful configuration. Beta defaults to
// 0.05: the paper requires β "sufficiently small", and at simulable n the
// dynamic construction's error-feedback loop (confusion ∝ q_f²·|L_w|,
// Lemma 8) converges comfortably at 0.05 with |G| = Θ(log log n) but needs
// larger group-size constants beyond β ≈ 0.1 — exactly the knee experiment
// E8 exhibits.
func DefaultConfig(n int) Config {
	params := groups.DefaultParams()
	params.Beta = 0.05
	// Dynamic stability needs a larger d₂ than the static case: the
	// confusion feedback of Lemma 8 (red' ≈ p_bad + Θ(|L_w|)·q_f²) only
	// converges when p_bad is small against the Θ(log n)-sized confusion
	// surface |L_w|. Empirically (stability probes over seeds and sizes),
	// |G| = 8 is stable at n ≈ 10³ but marginal by n ≈ 4·10³; d₂ = 4.5
	// (|G| = 8–11 across simulable n — still far below the Θ(log n) ≈
	// 14–64 of prior work) holds a comfortable margin through n = 4096.
	// The E5/E8/E20 experiments map the divergence boundary.
	params.D2 = 4.5
	params.MinSize = 8
	return Config{
		N:              n,
		Params:         params,
		Overlay:        "chord",
		TwoGraphs:      true,
		Strategy:       adversary.Uniform,
		VerifyRequests: true,
		Seed:           1,
	}
}

// Stats reports one epoch's construction outcome.
type Stats struct {
	Epoch int
	// N is the population size of the generation built this epoch (differs
	// from Config.N only under SizeDrift).
	N int
	// QfSingle / QfDual are the measured failure probabilities of a single
	// old-graph search and of the both-graphs-fail event (≈ q_f and q_f²).
	QfSingle, QfDual float64
	// RedFraction is the red-group fraction of each new graph (p_f of S2).
	RedFraction [2]float64
	// SearchFailRate is the post-construction failure rate of searches in
	// the new graphs (Theorem 3's second bullet, complemented).
	SearchFailRate float64
	// ForcedBadMembers counts member slots the adversary captured because
	// both location searches failed.
	ForcedBadMembers int
	// ErroneousRejects counts good IDs that wrongly rejected a valid
	// membership/neighbor request (both verification searches failed).
	ErroneousRejects int
	// SpamAccepted counts bogus requests that slipped past verification
	// (or all of them when verification is off).
	SpamAccepted int
	// MeanMemberships is the mean number of groups a good serving ID
	// belongs to across the new graphs (Lemma 10: O(log log n)).
	MeanMemberships float64
	// DepartedMembers / MajoritiesLost report the mid-epoch departure
	// erosion (zero unless Config.MidEpochDepartures > 0).
	DepartedMembers int
	MajoritiesLost  int
	// SearchMessages is the total secure-routing message cost of all
	// construction searches this epoch.
	SearchMessages int64
	Searches       int64
}

// tally accumulates one worker's integer counters for a parallel phase.
// Integer sums commute, so merging per-worker tallies in worker order gives
// the same totals as the sequential loop regardless of which worker ran
// which ID.
type tally struct {
	searches  int64
	messages  int64
	singles   int
	duals     int
	forcedBad int
	errReject int
	spamAcc   int
}

func (t *tally) add(o *tally) {
	t.searches += o.searches
	t.messages += o.messages
	t.singles += o.singles
	t.duals += o.duals
	t.forcedBad += o.forcedBad
	t.errReject += o.errReject
	t.spamAcc += o.spamAcc
}

// workerScratch is one worker's private reusable state. The trailing pad
// keeps adjacent workers' hot tallies off a shared cache line.
type workerScratch struct {
	sc    groups.SearchScratch
	ptBuf []ring.Point
	t     tally
	_     [64]byte
}

// Generation is an immutable view of one serving generation: the epoch
// index, the ID ring, and the two group graphs built for it (Graphs[1] is
// nil in single-graph mode). Once published it is never mutated — the next
// RunEpoch builds a complete replacement off to the side and swaps the
// generation pointer in one atomic store — so any number of goroutines may
// search a Generation's graphs concurrently (with private SearchScratch
// buffers) while the next epoch is under construction, and a holder keeps
// a consistent pre-swap view for as long as it pins the pointer.
type Generation struct {
	Epoch  int
	Ring   *ring.Ring
	Graphs [2]*groups.Graph
}

// countingSource wraps the stdlib rand source, counting state advances so
// the system can rewind its placement rng to a recorded mark: a fresh
// source re-seeded with the root seed and advanced the same number of
// steps is in the identical state. Both Int63 and Uint64 advance the
// underlying generator exactly once, so the count alone captures the
// state. This is what makes an aborted epoch build replayable — see
// System.rewind.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 { c.n++; return c.src.Int63() }

func (c *countingSource) Uint64() uint64 { c.n++; return c.src.Uint64() }

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// pendingGen is a fully-built next generation awaiting CommitEpoch — the
// off-to-the-side state of the two-phase advance. Everything in it is
// immutable once built; committing only swaps pointers.
type pendingGen struct {
	stats   Stats
	ring    *ring.Ring
	bad     map[ring.Point]bool
	badList []ring.Point
	g       [2]*groups.Graph
	// rngMark is the placement-rng advance count recorded before this
	// build's first draw; AbortPending rewinds to it.
	rngMark uint64
}

// System is a running dynamic deployment.
type System struct {
	cfg   Config
	rng   *rand.Rand
	rsrc  *countingSource
	epoch int

	// pending holds a generation built by BuildEpochContext and not yet
	// committed (nil otherwise). Owned by the same single-writer discipline
	// as the rest of the construction state.
	pending *pendingGen

	// gen is the atomically-published serving generation: written only by
	// RunEpochContext at the swap (and once at New), read lock-free by any
	// goroutine through Generation(). It always mirrors (epoch, ids, g).
	gen atomic.Pointer[Generation]

	ids *ring.Ring          // current generation's ID set (the "old" ring)
	bad map[ring.Point]bool //
	// badList mirrors bad in the adversary's deterministic minting order,
	// so bad-ID substitution is a pure function of the per-ID stream.
	badList []ring.Point
	// goodList holds the old generation's good IDs in ring order, goodRank
	// their ring ranks. Both are precomputed at generation swap (alongside
	// badRank) so the spam phase never rebuilds them from a full ring scan.
	goodList []ring.Point
	goodRank []int32
	// badRank mirrors bad, indexed by ring rank — the branch-free form the
	// per-member inner loop reads.
	badRank []bool
	g       [2]*groups.Graph // the two old group graphs (g[1] nil if !TwoGraphs)
	blue    []ring.Point     // bootstrap candidates: blue in every old graph
	// blueRank mirrors blue as ring ranks — bootstrap leaders enter the
	// dual search as precomputed ranks, skipping the per-route src lookup.
	blueRank []int32

	pool    *engine.Pool    // persistent construction pool, one per System
	scratch []workerScratch // one entry per pool worker, reused across epochs

	// Rank-indexed construction buffers. The outer index slices are reused
	// across epochs; memberArena is allocated fresh each epoch because the
	// generation's graphs retain views into it (see sizeArenas).
	memberArena []groups.Member
	members     [2][][]groups.Member
	confused    [2][]bool
	departFlag  []bool
}

// New creates a system in its trusted-initialization state (Appendix X):
// the two epoch-0 graphs are built directly with ground-truth memberships.
// Call Close when done with the system to release its worker pool.
func New(cfg Config) (*System, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.N < 8 {
		return nil, fmt.Errorf("epoch: N = %d too small", cfg.N)
	}
	s := &System{cfg: cfg}
	s.rsrc = &countingSource{src: rand.NewSource(cfg.Seed).(rand.Source64)}
	s.rng = rand.New(s.rsrc)
	s.pool = engine.NewPool(cfg.Workers)
	s.scratch = make([]workerScratch, s.pool.Workers())
	pl := adversary.Place(adversary.Config{N: cfg.N, Beta: cfg.Params.Beta, Strategy: cfg.Strategy}, s.rng)
	s.ids = pl.Ring()
	s.bad = pl.BadSet()
	s.badList = pl.Bad
	ov, err := s.buildOverlay(s.ids)
	if err != nil {
		return nil, err
	}
	s.g[0] = groups.Build(ov, s.bad, cfg.Params, hashes.H1)
	if cfg.TwoGraphs {
		s.g[1] = groups.Build(ov, s.bad, cfg.Params, hashes.H2)
	}
	s.indexGeneration()
	s.refreshBlue()
	s.gen.Store(&Generation{Epoch: 0, Ring: s.ids, Graphs: s.g})
	return s, nil
}

// Close releases the system's worker pool. The system must not be used
// afterwards. Goroutines are only ever started when the effective pool
// size exceeds one (Config.Workers > 1, or Workers <= 0 with GOMAXPROCS
// > 1) — Close is a no-op otherwise — and a finalizer reclaims forgotten
// pools; still, long-lived processes that churn through many Systems
// should close them promptly.
func (s *System) Close() {
	if s.pool != nil {
		s.pool.Close()
	}
}

func (s *System) buildOverlay(r *ring.Ring) (overlay.Graph, error) {
	for _, b := range overlay.Builders() {
		if b.Name == s.cfg.Overlay {
			return b.Build(r, s.cfg.Seed), nil
		}
	}
	return nil, fmt.Errorf("epoch: unknown overlay %q", s.cfg.Overlay)
}

// indexGeneration recomputes the rank-indexed views of the serving
// generation — goodList and badRank — at generation swap, so per-epoch
// phases read precomputed slices instead of rescanning the ring.
func (s *System) indexGeneration() {
	pts := s.ids.Points()
	if cap(s.badRank) < len(pts) {
		s.badRank = make([]bool, len(pts))
	}
	s.badRank = s.badRank[:len(pts)]
	s.goodList = s.goodList[:0]
	s.goodRank = s.goodRank[:0]
	for i, p := range pts {
		b := s.bad[p]
		s.badRank[i] = b
		if !b {
			s.goodList = append(s.goodList, p)
			s.goodRank = append(s.goodRank, int32(i))
		}
	}
}

// refreshBlue recomputes the bootstrap-candidate list: leaders blue in
// every live old graph.
func (s *System) refreshBlue() {
	s.blue = s.blue[:0]
	s.blueRank = s.blueRank[:0]
	for i, w := range s.ids.Points() {
		ok := !s.g[0].GroupAt(i).Red()
		if ok && s.g[1] != nil {
			ok = !s.g[1].GroupAt(i).Red()
		}
		if ok {
			s.blue = append(s.blue, w)
			s.blueRank = append(s.blueRank, int32(i))
		}
	}
}

// Epoch returns the current epoch index.
func (s *System) Epoch() int { return s.epoch }

// Generation returns the atomically-published serving generation. It is
// safe to call from any goroutine at any time — including while RunEpoch
// is mid-construction on another goroutine — and the returned value is
// immutable: holders see a consistent (epoch, ring, graphs) triple until
// they re-load, no matter how many swaps happen underneath.
func (s *System) Generation() *Generation { return s.gen.Load() }

// Graphs returns the current old group graphs (the second is nil in
// single-graph mode).
func (s *System) Graphs() [2]*groups.Graph { return s.g }

// Ring returns the current generation's ID set.
func (s *System) Ring() *ring.Ring { return s.ids }

// BadCount returns the number of Byzantine IDs in the serving generation
// (the adversary's PoW-minted ≈βn share, Lemma 11).
func (s *System) BadCount() int { return len(s.badList) }

// Pool returns the system's persistent construction worker pool so callers
// can fan their own read-only work — batch lookups against the immutable
// serving graphs, say — across the same workers instead of maintaining a
// second pool. The pool is owned by the System: callers must not Close it
// and must not use it concurrently with RunEpoch.
func (s *System) Pool() *engine.Pool { return s.pool }

// tallyDual folds one dual-search outcome pair into the worker's tallies
// and reports whether the step was corrupted (all searches failed).
// lastRank is the old-ring rank of suc(p) when the route surfaced it for
// free, else -1. In single-graph mode only the first outcome counts.
func (s *System) tallyDual(o1, o2 groups.Outcome, wk *workerScratch) (corrupted bool, lastRank int) {
	if s.g[1] == nil {
		wk.t.messages += o1.Messages
		wk.t.searches++
		if !o1.OK {
			wk.t.singles++
			wk.t.duals++
			return true, o1.LastRank
		}
		return false, o1.LastRank
	}
	wk.t.messages += o1.Messages + o2.Messages
	wk.t.searches += 2
	lastRank = o1.LastRank
	if lastRank < 0 {
		lastRank = o2.LastRank
	}
	if !o1.OK {
		wk.t.singles++
		if !o2.OK {
			wk.t.duals++
			return true, lastRank
		}
	}
	return false, lastRank
}

// dualSearchFrom runs the §III-A dual search for point p from the ring ID
// of rank srcRank — one overlay-route walk classified against both old
// graphs — updating the worker's tallies.
func (s *System) dualSearchFrom(srcRank int, p ring.Point, wk *workerScratch) (corrupted bool, lastRank int) {
	o1, o2 := s.g[0].SearchOutcomeDualFrom(s.g[1], srcRank, p, &wk.sc)
	return s.tallyDual(o1, o2, wk)
}

// dualSearchTo is dualSearchFrom with the target's rank already known
// (targetRank = rank of suc(p), or -1 to resolve it from p).
func (s *System) dualSearchTo(srcRank, targetRank int, p ring.Point, wk *workerScratch) (corrupted bool, lastRank int) {
	o1, o2 := s.g[0].SearchOutcomeDualTo(s.g[1], srcRank, targetRank, p, &wk.sc)
	return s.tallyDual(o1, o2, wk)
}

// dualFailsSelf is dualFails for the degenerate verification search a
// member-point target u runs for a point p it owns: the overlay route from
// u to suc(p) = u is the single group G_u, so the dual search reduces to
// red checks on G_u — no route walk, no messages. ui is u's old-ring rank.
// Outcome and tallies are exactly those of dualFails(u, p, wk).
func (s *System) dualFailsSelf(ui int, wk *workerScratch) bool {
	red1 := s.g[0].GroupAt(ui).Red()
	if s.g[1] == nil {
		wk.t.searches++
		if red1 {
			wk.t.singles++
			wk.t.duals++
			return true
		}
		return false
	}
	wk.t.searches += 2
	if red1 {
		wk.t.singles++
		if s.g[1].GroupAt(ui).Red() {
			wk.t.duals++
			return true
		}
	}
	return false
}

// bootRankFrom returns the ring rank of a bootstrap leader drawn from rng:
// a u.a.r. blue group (the paper's assumption that joiners know a good
// bootstrapping group; Appendix IX).
func (s *System) bootRankFrom(rng *engine.Stream) int {
	if len(s.blueRank) == 0 {
		// Degenerate: no blue groups — fall back to any leader.
		return rng.Intn(s.ids.Len())
	}
	return int(s.blueRank[rng.Intn(len(s.blueRank))])
}

// badOldID returns a rng-drawn u.a.r. bad ID from the old generation (the
// adversary's worst-case substitute when it fully controls a lookup).
func (s *System) badOldID(rng *engine.Stream) (ring.Point, bool) {
	if len(s.badList) == 0 {
		return 0, false
	}
	return s.badList[rng.Intn(len(s.badList))], true
}

// hashFns pairs the two member-location oracles with the graph index.
var hashFns = [2]hashes.Func{hashes.H1, hashes.H2}

// buildID performs the whole §III-A construction for the new ID of rank wi
// — member-point location, request verification and neighbor establishment
// in every new graph — reading only immutable old-generation state and
// writing only rank-wi slots, so any worker may run any ID. Its randomness
// comes exclusively from the per-ID stream.
func (s *System) buildID(wk *workerScratch, wi int, w ring.Point, epochSeed int64,
	newBad map[ring.Point]bool, newOv overlay.Graph, size, nGraphs int) {

	rng := engine.NewStream(engine.TrialSeed(epochSeed, "id", wi))
	boot := s.bootRankFrom(&rng)
	n := len(s.members[0])
	if cap(wk.ptBuf) < size {
		wk.ptBuf = make([]ring.Point, size)
	}
	for l := 0; l < nGraphs; l++ {
		// Group-membership requests (§III-A): all d₂·ln ln n member points
		// of G_w are derived in one batch-hash pass and appended into the
		// rank-wi slot of the shared member arena.
		mlist := s.memberArena[(l*n+wi)*size : (l*n+wi)*size : (l*n+wi+1)*size]
		for _, p := range hashFns[l].PointsAt(w, size, wk.ptBuf) {
			fail, ui := s.dualSearchFrom(boot, p, wk)
			if fail {
				// Both location searches failed: the adversary answers.
				if id, ok := s.badOldID(&rng); ok {
					mlist = append(mlist, groups.Member{ID: id, Bad: true})
					wk.t.forcedBad++
				}
				continue
			}
			if ui < 0 {
				ui = s.ids.SuccessorIndex(p)
			}
			u, uBad := s.ids.At(ui), s.badRank[ui]
			if !uBad && s.cfg.VerifyRequests {
				// u verifies the request by its own dual search; if all of
				// u's searches fail, it erroneously rejects. u owns p, so
				// its search routes terminate immediately at G_u.
				if s.dualFailsSelf(ui, wk) {
					wk.t.errReject++
					continue
				}
			}
			mlist = append(mlist, groups.Member{ID: u, Bad: uBad})
		}
		s.members[l][wi] = mlist

		// Neighbor requests (§III-A): locate every element of L_w and have
		// it verify; a failure on either side leaves G_w confused (Lemma 8).
		for _, u := range newOv.Neighbors(w) {
			fail, sucRank := s.dualSearchFrom(boot, u, wk)
			if fail {
				s.confused[l][wi] = true
				continue
			}
			if newBad[u] || !s.cfg.VerifyRequests {
				continue
			}
			// u's verification searches run in the old graphs from u's own
			// bootstrap position (u is a new ID; its searches go through
			// its own bootstrap group while the new graphs are under
			// construction). The location search above already resolved
			// suc(u)'s rank, so the verification route reuses it.
			if vfail, _ := s.dualSearchTo(s.bootRankFrom(&rng), sucRank, u, wk); vfail {
				wk.t.errReject++
				s.confused[l][wi] = true
			}
		}
	}
}

// RunEpoch advances the system one epoch: the whole population turns over
// (n departures matched by n PoW-minted joins), the new group graphs are
// built through the old ones, and the generations swap.
//
// Construction fans out over the system's worker pool; see the package
// comment for why results are independent of the worker count.
func (s *System) RunEpoch() Stats {
	st, err := s.RunEpochContext(context.Background())
	if err != nil {
		panic("epoch: " + err.Error()) // background context never cancels
	}
	return st
}

// ctxBatch is the per-ID construction batch size between cancellation
// polls of RunEpochContext. It only shapes how often ctx is checked —
// per-ID randomness is hash-derived, so batching never changes results.
const ctxBatch = 256

// yieldStride is how many per-ID construction tasks a worker runs between
// cooperative runtime.Gosched calls. Per-ID builds cost single-digit
// microseconds, so a stride of 64 yields every few hundred microseconds —
// frequent enough that concurrent snapshot readers sharing a processor see
// sub-millisecond scheduling delay during a live AdvanceEpoch, cheap enough
// (one scheduler call per stride) to vanish in the construction cost.
const yieldStride = 64

// RunEpochContext is RunEpoch with cooperative cancellation: ctx is polled
// between per-ID construction batches and between the epoch's phases. On
// cancellation it returns ctx.Err(), per-worker tallies are discarded, the
// generation swap never happens, and the placement rng rewinds to its
// pre-build state — the system keeps serving the old generation, remains
// fully usable, and a retried epoch replays the identical generation the
// aborted build was constructing. That replay property is what keeps the
// shards of a cluster in lockstep through failed coordinated advances.
//
// A context that cannot be cancelled (Done() == nil, e.g.
// context.Background()) takes the unchunked fast path: one pool broadcast
// per phase, byte-identical to RunEpoch.
//
// A generation left pending by BuildEpochContext is committed first — the
// sequence (BuildEpochContext; RunEpochContext) is not meaningful and the
// pending build must not be silently discarded.
func (s *System) RunEpochContext(ctx context.Context) (Stats, error) {
	if s.pending != nil {
		st, _ := s.CommitEpoch()
		return st, nil
	}
	if _, err := s.BuildEpochContext(ctx); err != nil {
		return Stats{}, err
	}
	st, _ := s.CommitEpoch()
	return st, nil
}

// BuildEpochContext is phase one of the two-phase epoch advance: it runs
// the entire §III construction of the next generation off to the side —
// placement, per-ID build, spam, departures, classification — and parks
// the result as the system's pending generation WITHOUT swapping. Readers
// of Generation() keep seeing the current epoch until CommitEpoch flips
// the pointer. Calling it again while a build is pending is idempotent:
// the pending build's Stats are returned and nothing is recomputed.
//
// On cancellation the build aborts exactly like RunEpochContext — tallies
// discarded, rng rewound, nothing pending — so a retry replays the
// identical generation.
func (s *System) BuildEpochContext(ctx context.Context) (Stats, error) {
	if s.pending != nil {
		return s.pending.stats, nil
	}
	if err := ctx.Err(); err != nil {
		return Stats{}, err
	}
	p, err := s.buildGeneration(ctx)
	if err != nil {
		return Stats{}, err
	}
	s.pending = p
	return p.stats, nil
}

// CommitEpoch is phase two of the two-phase advance: it swaps the pending
// generation in as the serving one — an O(1) pointer flip, exactly the
// swap RunEpoch performs — and reports its Stats. ok is false (and nothing
// changes) when no build is pending.
func (s *System) CommitEpoch() (st Stats, ok bool) {
	p := s.pending
	if p == nil {
		return Stats{}, false
	}
	s.pending = nil
	// The writer-private construction state updates in place, then the
	// immutable serving view is published in one atomic store. Readers
	// pinned to the old Generation keep a consistent view — nothing it
	// references is ever touched again.
	s.ids = p.ring
	s.bad = p.bad
	s.badList = p.badList
	s.g = p.g
	s.indexGeneration()
	s.refreshBlue()
	s.epoch++
	s.gen.Store(&Generation{Epoch: s.epoch, Ring: s.ids, Graphs: s.g})
	return p.stats, true
}

// AbortPending discards a pending build and rewinds the placement rng to
// its pre-build state, so the next build replays the identical generation
// the discarded one held. It reports whether there was a build to discard.
// This is the shard-local half of the cluster's coordinated abort: every
// shard that aborts is byte-identical to one that never built.
func (s *System) AbortPending() bool {
	p := s.pending
	if p == nil {
		return false
	}
	s.pending = nil
	s.rewind(p.rngMark)
	return true
}

// HasPending reports whether a built-but-uncommitted generation is parked.
func (s *System) HasPending() bool { return s.pending != nil }

// rewind restores the placement rng to the state it had after exactly n
// source advances from the root seed: re-seed, fast-forward, republish.
// O(n) in total draws since New — abort paths only.
func (s *System) rewind(n uint64) {
	fresh := rand.NewSource(s.cfg.Seed).(rand.Source64)
	for i := uint64(0); i < n; i++ {
		fresh.Uint64()
	}
	s.rsrc.src = fresh
	s.rsrc.n = n
	s.rng = rand.New(s.rsrc)
}

// buildGeneration runs the whole construction of the next generation and
// returns it as an uncommitted pendingGen. See RunEpochContext for the
// cancellation contract.
func (s *System) buildGeneration(ctx context.Context) (*pendingGen, error) {
	rngMark := s.rsrc.n
	st := Stats{Epoch: s.epoch + 1}
	epochSeed := engine.TrialSeed(s.cfg.Seed, "epoch", st.Epoch)
	// New generation of IDs: good participants re-mint; the adversary
	// mints βn u.a.r. IDs and injects per its strategy (Lemma 11 bounds).
	// Under SizeDrift the population swings by a constant factor (§III's
	// Θ(n) remark).
	newN := s.cfg.N
	if s.cfg.SizeDrift > 0 {
		if s.epoch%2 == 0 {
			newN = int(float64(s.cfg.N) * (1 - s.cfg.SizeDrift))
		} else {
			newN = int(float64(s.cfg.N) * (1 + s.cfg.SizeDrift))
		}
	}
	st.N = newN
	pl := adversary.Place(adversary.Config{
		N: newN, Beta: s.cfg.Params.Beta, Strategy: s.cfg.Strategy,
	}, s.rng)
	newRing := pl.Ring()
	newBad := pl.BadSet()
	newOv, err := s.buildOverlay(newRing)
	if err != nil {
		panic(err) // config was validated in New
	}

	n := newRing.Len()
	size := s.cfg.Params.SizeFor(n)
	nGraphs := 1
	if s.cfg.TwoGraphs {
		nGraphs = 2
	}
	s.sizeArenas(n, size, nGraphs)

	// Phase 1 — per-ID construction, fanned across the pool. Each task
	// reads only immutable old-generation state (ring, graphs, blue list,
	// bad lists — all frozen until the swap below) and writes only its own
	// rank's arena slots plus its worker's tally. Under a cancellable
	// context the fan-out proceeds in ctxBatch-sized rank ranges with a
	// poll between batches; the split is invisible to results.
	newPts := newRing.Points()
	build := func(worker, wi int) {
		// Yield every yieldStride IDs: the construction is CPU-bound for
		// tens of milliseconds, and on small GOMAXPROCS a lock-free reader
		// sharing the processor would otherwise wait for the runtime's
		// coarse (~10ms) async preemption. The yield point is
		// schedule-only — results never depend on it.
		if wi%yieldStride == yieldStride-1 {
			runtime.Gosched()
		}
		s.buildID(&s.scratch[worker], wi, newPts[wi], epochSeed, newBad, newOv, size, nGraphs)
	}
	if ctx.Done() == nil {
		s.pool.ForEach(n, build)
	} else {
		for lo := 0; lo < n; lo += ctxBatch {
			if err := ctx.Err(); err != nil {
				return s.abortBuild(rngMark, err)
			}
			hi := min(lo+ctxBatch, n)
			s.pool.ForEach(hi-lo, func(worker, i int) { build(worker, lo+i) })
		}
		if err := ctx.Err(); err != nil {
			return s.abortBuild(rngMark, err)
		}
	}

	// Phase 2 — spam attack (Lemma 10 / E12): each bad new ID issues bogus
	// membership requests to random good old IDs; the target's dual
	// verification search catches them unless both searches fail. One
	// substream per spamming ID keeps the phase schedule-independent.
	if s.cfg.SpamFactor > 0 && len(s.goodList) > 0 {
		s.pool.ForEach(len(pl.Bad), func(worker, bi int) {
			if bi%yieldStride == yieldStride-1 {
				runtime.Gosched()
			}
			wk := &s.scratch[worker]
			rng := engine.NewStream(engine.TrialSeed(epochSeed, "spam", bi))
			for k := 0; k < s.cfg.SpamFactor; k++ {
				ui := int(s.goodRank[rng.Intn(len(s.goodRank))])
				if !s.cfg.VerifyRequests {
					wk.t.spamAcc++
					continue
				}
				// A bogus request never hashes to u, so u accepts only if
				// both of its verification searches fail.
				p := ring.Point(rng.Uint64())
				if fail, _ := s.dualSearchFrom(ui, p, wk); fail {
					wk.t.spamAcc++
				}
			}
		})
	}

	if err := ctx.Err(); err != nil {
		return s.abortBuild(rngMark, err)
	}

	// Merge per-worker tallies (integer sums: order-free).
	var tot tally
	for i := range s.scratch {
		tot.add(&s.scratch[i].t)
		s.scratch[i].t = tally{}
	}
	st.ForcedBadMembers = tot.forcedBad
	st.ErroneousRejects = tot.errReject
	st.SpamAccepted = tot.spamAcc
	st.SearchMessages = tot.messages
	st.Searches = tot.searches

	// Assemble the new graphs and classify.
	var newG [2]*groups.Graph
	newG[0] = groups.BuildExplicitRanked(newOv, newBad, s.cfg.Params, s.members[0], s.confused[0])
	if s.cfg.TwoGraphs {
		newG[1] = groups.BuildExplicitRanked(newOv, newBad, s.cfg.Params, s.members[1], s.confused[1])
	}

	// Phase 3 — mid-epoch departures (§III churn model): a fraction of the
	// serving generation's good IDs goes offline, eroding the groups they
	// serve in. One hash-derived Bernoulli draw per serving ID, flagged in
	// parallel by rank, keeps the draw independent of both loop order and
	// worker count.
	if s.cfg.MidEpochDepartures > 0 {
		oldPts := s.ids.Points()
		if cap(s.departFlag) < len(oldPts) {
			s.departFlag = make([]bool, len(oldPts))
		}
		s.departFlag = s.departFlag[:len(oldPts)]
		frac := s.cfg.MidEpochDepartures
		s.pool.ForEach(len(oldPts), func(_, i int) {
			rng := engine.NewStream(engine.TrialSeed(epochSeed, "depart", i))
			s.departFlag[i] = !s.badRank[i] && rng.Float64() < frac
		})
		departed := map[ring.Point]bool{}
		for i, d := range s.departFlag {
			if d {
				departed[oldPts[i]] = true
			}
		}
		for l := 0; l < nGraphs; l++ {
			rep := newG[l].RemoveMembers(departed)
			st.DepartedMembers += rep.Departed
			st.MajoritiesLost += rep.LostMajority + rep.Undersized
		}
	}

	st.RedFraction[0] = newG[0].RedFraction()
	if s.cfg.TwoGraphs {
		st.RedFraction[1] = newG[1].RedFraction()
	}

	if st.Searches > 0 {
		st.QfSingle = float64(tot.singles) / float64(st.Searches)
		denom := st.Searches
		if s.cfg.TwoGraphs {
			denom = st.Searches / 2
		}
		st.QfDual = float64(tot.duals) / float64(denom)
	}

	// Lemma 10: membership state of the serving (old) generation.
	totalMemberships := 0
	for _, id := range s.goodList {
		totalMemberships += len(newG[0].MemberOf(id))
	}
	if len(s.goodList) > 0 {
		st.MeanMemberships = float64(totalMemberships) / float64(len(s.goodList))
	}

	// Post-construction robustness of the new generation. Last abort
	// point: past here the generations swap and the epoch must commit.
	if err := ctx.Err(); err != nil {
		return s.abortBuild(rngMark, err)
	}
	probe := newG[0].MeasureRobustness(512, s.rng)
	st.SearchFailRate = probe.SearchFailRate
	if s.cfg.TwoGraphs {
		probe2 := newG[1].MeasureRobustness(512, s.rng)
		st.SearchFailRate = (st.SearchFailRate + probe2.SearchFailRate) / 2
	}

	// The generation is complete; park it for CommitEpoch. Nothing the
	// serving view references has been touched — the swap is the commit.
	return &pendingGen{
		stats:   st,
		ring:    newRing,
		bad:     newBad,
		badList: pl.Bad,
		g:       newG,
		rngMark: rngMark,
	}, nil
}

// abortBuild discards a partial build: per-worker tallies are zeroed so
// the next construction starts clean (the arenas are re-sized per epoch
// anyway, and nothing was swapped), and the placement rng rewinds to its
// pre-build mark so a retried build replays the identical generation —
// the property the cluster's coordinated two-phase advance leans on to
// keep shards byte-identical after a failed round.
func (s *System) abortBuild(mark uint64, err error) (*pendingGen, error) {
	for i := range s.scratch {
		s.scratch[i].t = tally{}
	}
	s.rewind(mark)
	return nil, err
}

// sizeArenas (re)shapes the rank-indexed construction arenas for a
// generation of n groups of `size` solicited members each. The outer index
// slices (members, confused, departFlag) carry only headers/flags and are
// reused across epochs; memberArena is NOT — the graphs built from it
// retain views into it for their whole generation, so each epoch gets a
// fresh slab (one allocation, amortized O(1) per member) and the old slab
// stays alive exactly as long as the graphs that reference it.
func (s *System) sizeArenas(n, size, nGraphs int) {
	s.memberArena = make([]groups.Member, nGraphs*n*size)
	for l := 0; l < nGraphs; l++ {
		if cap(s.members[l]) < n {
			s.members[l] = make([][]groups.Member, n)
		}
		s.members[l] = s.members[l][:n]
		if cap(s.confused[l]) < n {
			s.confused[l] = make([]bool, n)
		}
		s.confused[l] = s.confused[l][:n]
		for i := range s.members[l] {
			s.members[l][i] = nil
			s.confused[l][i] = false
		}
	}
}
