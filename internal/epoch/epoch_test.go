package epoch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adversary"
)

func TestNewValidatesConfig(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Params.Beta = 0.6
	if _, err := New(cfg); err == nil {
		t.Error("invalid beta must be rejected")
	}
	cfg = DefaultConfig(4)
	if _, err := New(cfg); err == nil {
		t.Error("tiny N must be rejected")
	}
	cfg = DefaultConfig(512)
	cfg.Overlay = "nosuch"
	if _, err := New(cfg); err == nil {
		t.Error("unknown overlay must be rejected")
	}
}

func TestTrustedInitBuildsBothGraphs(t *testing.T) {
	cfg := DefaultConfig(512)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graphs()
	if g[0] == nil || g[1] == nil {
		t.Fatal("two-graph mode must build both graphs")
	}
	if g[0].N() != 512 || g[1].N() != 512 {
		t.Errorf("graph sizes %d/%d, want 512", g[0].N(), g[1].N())
	}
	// The two graphs use different hash functions, so memberships differ.
	w := s.Ring().At(0)
	m1, m2 := g[0].Group(w).Members, g[1].Group(w).Members
	same := len(m1) == len(m2)
	if same {
		for i := range m1 {
			if m1[i].ID != m2[i].ID {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("h1 and h2 graphs have identical memberships — dual redundancy is void")
	}
}

func TestSingleGraphMode(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.TwoGraphs = false
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Graphs()[1] != nil {
		t.Fatal("single-graph mode must not build graph 2")
	}
	st := s.RunEpoch()
	if st.Epoch != 1 {
		t.Errorf("epoch = %d, want 1", st.Epoch)
	}
}

func TestEpochTurnsOverPopulation(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.Seed = 7
	s, _ := New(cfg)
	before := s.Ring().Points()
	beforeSet := map[uint64]bool{}
	for _, p := range before {
		beforeSet[uint64(p)] = true
	}
	s.RunEpoch()
	after := s.Ring().Points()
	overlap := 0
	for _, p := range after {
		if beforeSet[uint64(p)] {
			overlap++
		}
	}
	if overlap > 2 {
		t.Errorf("population overlap %d after full turnover, want ≈0", overlap)
	}
	if s.Epoch() != 1 {
		t.Errorf("epoch counter = %d", s.Epoch())
	}
}

func TestEpochStatsSane(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.Params.Beta = 0.05
	cfg.Seed = 11
	s, _ := New(cfg)
	st := s.RunEpoch()
	if st.Searches == 0 || st.SearchMessages == 0 {
		t.Error("construction must perform searches")
	}
	if st.QfSingle < 0 || st.QfSingle > 1 || st.QfDual > st.QfSingle {
		t.Errorf("qf accounting wrong: single=%v dual=%v", st.QfSingle, st.QfDual)
	}
	if st.RedFraction[0] < 0 || st.RedFraction[0] > 1 {
		t.Error("red fraction out of range")
	}
	if st.MeanMemberships <= 0 {
		t.Error("serving IDs must hold memberships")
	}
}

func TestRobustnessMaintainedOverEpochs(t *testing.T) {
	// Theorem 3 shape at small scale: with two graphs and β=0.05, red
	// fractions and search failure stay low across epochs (no drift).
	cfg := DefaultConfig(512)
	cfg.Params.Beta = 0.05
	cfg.Seed = 13
	s, _ := New(cfg)
	var last Stats
	for e := 0; e < 4; e++ {
		last = s.RunEpoch()
		if last.RedFraction[0] > 0.05 {
			t.Fatalf("epoch %d: red fraction %.3f too high", e+1, last.RedFraction[0])
		}
		if last.SearchFailRate > 0.15 {
			t.Fatalf("epoch %d: search fail rate %.3f too high", e+1, last.SearchFailRate)
		}
	}
	// Lemma 10 shape: memberships are O(log log n) — mean should be near
	// the group size (each serving ID joins ≈|G| groups per graph... the
	// mean equals exactly size since every slot is one membership).
	if last.MeanMemberships > 4*math.Log(math.Log(512))*cfg.Params.D2*2 {
		t.Errorf("mean memberships %.1f not O(log log n)", last.MeanMemberships)
	}
}

func TestVerificationBlocksSpam(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.Params.Beta = 0.10
	cfg.SpamFactor = 5
	cfg.Seed = 17
	s, _ := New(cfg)
	st := s.RunEpoch()
	nBad := int(cfg.Params.Beta * float64(cfg.N))
	spamSent := nBad * cfg.SpamFactor
	if st.SpamAccepted > spamSent/10 {
		t.Errorf("verification on: %d/%d spam accepted", st.SpamAccepted, spamSent)
	}

	cfg.VerifyRequests = false
	cfg.Seed = 17
	s2, _ := New(cfg)
	st2 := s2.RunEpoch()
	if st2.SpamAccepted != spamSent {
		t.Errorf("verification off: %d spam accepted, want all %d", st2.SpamAccepted, spamSent)
	}
}

func TestClusteredAdversaryStillBounded(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Params.Beta = 0.05
	cfg.Strategy = adversary.Clustered
	cfg.Seed = 19
	s, _ := New(cfg)
	st := s.RunEpoch()
	if st.RedFraction[0] > 0.08 {
		t.Errorf("clustered adversary pushed red fraction to %.3f", st.RedFraction[0])
	}
}

func TestDeBruijnOverlayEpochs(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.Overlay = "debruijn"
	cfg.Params.Beta = 0.05
	cfg.Seed = 23
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.RunEpoch()
	if st.SearchFailRate > 0.2 {
		t.Errorf("debruijn overlay: fail rate %.3f", st.SearchFailRate)
	}
}

func TestBootGroupCountScaling(t *testing.T) {
	// O(log n / log log n): grows slowly, e.g. ≈4 at n=1024, ≈5 at n=65536.
	c1 := BootGroupCount(1 << 10)
	c2 := BootGroupCount(1 << 16)
	if c1 < 2 || c2 < c1 || c2 > 3*c1 {
		t.Errorf("BootGroupCount scaling: %d then %d", c1, c2)
	}
	if BootGroupCount(8) != 2 {
		t.Errorf("small-n clamp broken")
	}
}

func TestAssembleBootGoodMajorityWHP(t *testing.T) {
	// Appendix IX: pooling O(log n / log log n) u.a.r. tiny groups yields a
	// good majority w.h.p. — far more reliably than trusting one group.
	cfg := DefaultConfig(2048)
	cfg.Params.Beta = 0.10
	cfg.Seed = 41
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.Graphs()[0]
	rng := rand.New(rand.NewSource(42))
	const trials = 400
	ok := 0
	for i := 0; i < trials; i++ {
		set := AssembleBoot(g, 0, rng)
		if set.GoodMajority {
			ok++
		}
		if len(set.Members) < g.GroupSize() {
			t.Fatal("boot set too small")
		}
	}
	if rate := float64(ok) / trials; rate < 0.99 {
		t.Errorf("boot good-majority rate %.3f, want ≈1", rate)
	}
}

func TestAssembleBootExplicitCount(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Seed = 43
	s, _ := New(cfg)
	rng := rand.New(rand.NewSource(44))
	set := AssembleBoot(s.Graphs()[0], 3, rng)
	if set.GroupsUsed != 3 {
		t.Errorf("GroupsUsed = %d, want 3", set.GroupsUsed)
	}
	if len(set.Members) != 3*s.Graphs()[0].GroupSize() {
		t.Errorf("pool size %d, want %d", len(set.Members), 3*s.Graphs()[0].GroupSize())
	}
}

func TestMidEpochDeparturesConfig(t *testing.T) {
	cfg := DefaultConfig(256)
	cfg.MidEpochDepartures = 0.15
	cfg.Seed = 45
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := s.RunEpoch()
	if st.DepartedMembers == 0 {
		t.Error("mid-epoch departures did not erode any group")
	}
	if st.SearchFailRate > 0.15 {
		t.Errorf("15%% departures should be survivable, fail rate %.3f", st.SearchFailRate)
	}
}
