package epoch

import (
	"math"
	"math/rand"

	"repro/internal/groups"
)

// BootGroupCount returns the number of u.a.r. groups a joiner contacts to
// assemble its bootstrapping set (Appendix IX): O(log n / log log n)
// groups of size O(log log n) pool to O(log n) IDs, which hold a good
// majority w.h.p.
func BootGroupCount(n int) int {
	if n < 16 {
		return 2
	}
	ln := math.Log(float64(n))
	c := int(math.Ceil(ln / math.Log(ln)))
	if c < 2 {
		c = 2
	}
	return c
}

// BootSet is an assembled bootstrapping collection.
type BootSet struct {
	Members      []groups.Member // pooled members of the contacted groups
	GoodMajority bool            // strict majority of the pool is good
	GroupsUsed   int
}

// AssembleBoot contacts `count` u.a.r. groups of g and pools their members
// (count ≤ 0 uses BootGroupCount). The paper argues the pooled O(log n)
// IDs contain a good majority w.h.p. even though individual tiny groups
// may be bad — this is what lets a joiner without any trusted contact
// acquire a reliable Gboot.
func AssembleBoot(g *groups.Graph, count int, rng *rand.Rand) BootSet {
	r := g.Overlay().Ring()
	n := r.Len()
	if count <= 0 {
		count = BootGroupCount(n)
	}
	set := BootSet{GroupsUsed: count}
	good := 0
	for i := 0; i < count; i++ {
		grp := g.Group(r.At(rng.Intn(n)))
		for _, m := range grp.Members {
			set.Members = append(set.Members, m)
			if !m.Bad {
				good++
			}
		}
	}
	set.GoodMajority = 2*good > len(set.Members)
	return set
}
