package epoch

import (
	"crypto/sha256"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/adversary"
	"repro/internal/engine"
	"repro/internal/groups"
	"repro/internal/ring"
)

// graphFingerprint hashes everything observable about a generation's
// graphs: leaders, member lists (IDs and badness), and classifications.
// Byte-identical fingerprints mean byte-identical graphs.
func graphFingerprint(gs [2]*groups.Graph) [32]byte {
	h := sha256.New()
	var buf [8]byte
	for _, g := range gs {
		if g == nil {
			continue
		}
		for i := 0; i < g.N(); i++ {
			grp := g.GroupAt(i)
			binary.BigEndian.PutUint64(buf[:], uint64(grp.Leader))
			h.Write(buf[:])
			flags := byte(0)
			if grp.Bad {
				flags |= 1
			}
			if grp.Confused {
				flags |= 2
			}
			h.Write([]byte{flags})
			for _, m := range grp.Members {
				binary.BigEndian.PutUint64(buf[:], uint64(m.ID))
				h.Write(buf[:])
				if m.Bad {
					h.Write([]byte{1})
				} else {
					h.Write([]byte{0})
				}
			}
		}
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// TestRunEpochWorkerCountInvariance is the pipeline's core contract: Stats
// and the resulting graph classifications are byte-identical at every
// worker count, under every phase the epoch runs (spam, departures,
// verification on).
func TestRunEpochWorkerCountInvariance(t *testing.T) {
	run := func(workers int) ([]Stats, [][32]byte) {
		cfg := DefaultConfig(256)
		cfg.Seed = 31
		cfg.SpamFactor = 3
		cfg.MidEpochDepartures = 0.05
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var stats []Stats
		var prints [][32]byte
		for e := 0; e < 2; e++ {
			stats = append(stats, s.RunEpoch())
			prints = append(prints, graphFingerprint(s.Graphs()))
		}
		return stats, prints
	}
	refStats, refPrints := run(1)
	for _, workers := range []int{2, 4, 16} {
		stats, prints := run(workers)
		if !reflect.DeepEqual(stats, refStats) {
			t.Errorf("workers=%d: Stats diverged from workers=1:\n got %+v\nwant %+v", workers, stats, refStats)
		}
		for e := range prints {
			if prints[e] != refPrints[e] {
				t.Errorf("workers=%d: epoch %d graph fingerprint diverged", workers, e+1)
			}
		}
	}
}

// TestRunEpochWorkerCountInvarianceSingleGraph covers the E5 ablation arm
// (one graph, different search accounting) at several worker counts.
func TestRunEpochWorkerCountInvarianceSingleGraph(t *testing.T) {
	run := func(workers int) Stats {
		cfg := DefaultConfig(256)
		cfg.Seed = 33
		cfg.TwoGraphs = false
		cfg.Workers = workers
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		return s.RunEpoch()
	}
	ref := run(1)
	for _, workers := range []int{4, 16} {
		if st := run(workers); !reflect.DeepEqual(st, ref) {
			t.Errorf("workers=%d: Stats diverged: %+v vs %+v", workers, st, ref)
		}
	}
}

// TestSearchOutcomeAllocFree gates the dual-search inner loop at zero
// allocations per operation once the scratch is warm.
func TestSearchOutcomeAllocFree(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Seed = 35
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := s.Graphs()
	var sc groups.SearchScratch
	r := s.Ring()
	// Warm the scratch buffers.
	g[0].SearchOutcome(r.At(0), 12345, &sc)
	g[0].SearchOutcomeDual(g[1], r.At(1), 99999, &sc)
	i := 0
	if allocs := testing.AllocsPerRun(200, func() {
		i++
		g[0].SearchOutcome(r.At(i%r.Len()), ring_(i*7919), &sc)
	}); allocs != 0 {
		t.Errorf("SearchOutcome allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		i++
		g[0].SearchOutcomeDual(g[1], r.At(i%r.Len()), ring_(i*104729), &sc)
	}); allocs != 0 {
		t.Errorf("SearchOutcomeDual allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		i++
		g[0].SearchOutcomeDualFrom(g[1], i%r.Len(), ring_(i*31337), &sc)
	}); allocs != 0 {
		t.Errorf("SearchOutcomeDualFrom allocates %.1f/op, want 0", allocs)
	}
}

// TestPerIDEpochStepAllocFree gates the steady-state per-ID construction
// step — the unit the pool fans out — at zero allocations: per-ID RNG
// stream, batched member hashing, dual searches and arena writes all run
// on reused worker-local state.
func TestPerIDEpochStepAllocFree(t *testing.T) {
	cfg := DefaultConfig(512)
	cfg.Seed = 37
	cfg.Workers = 1
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.RunEpoch() // reach steady state (arenas sized, scratch warm)

	// Stage the next epoch's inputs exactly as RunEpoch would.
	epochSeed := engine.TrialSeed(cfg.Seed, "epoch", s.Epoch()+1)
	pl := adversary.Place(adversary.Config{
		N: cfg.N, Beta: cfg.Params.Beta, Strategy: cfg.Strategy,
	}, s.rng)
	newRing := pl.Ring()
	newBad := pl.BadSet()
	newOv, err := s.buildOverlay(newRing)
	if err != nil {
		t.Fatal(err)
	}
	size := cfg.Params.SizeFor(newRing.Len())
	s.sizeArenas(newRing.Len(), size, 2)
	pts := newRing.Points()
	wk := &s.scratch[0]
	s.buildID(wk, 3, pts[3], epochSeed, newBad, newOv, size, 2) // warm ptBuf
	i := 0
	if allocs := testing.AllocsPerRun(100, func() {
		i++
		wi := i % len(pts)
		s.buildID(wk, wi, pts[wi], epochSeed, newBad, newOv, size, 2)
	}); allocs != 0 {
		t.Errorf("per-ID epoch step allocates %.1f/op, want 0", allocs)
	}
}

// ring_ maps an int to a spread-out ring point for test key generation.
func ring_(i int) ring.Point { return ring.Point(uint64(i) * 0x9e3779b97f4a7c15) }
