// Computegrid: the open computing platform of §I-A — n jobs run on groups
// acting as simulated reliable processors. Each job executes Byzantine
// agreement (phase-king) among the members of the group responsible for
// it; all but an ε-fraction of jobs compute correctly.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"repro/tinygroups"
)

func main() {
	const n = 1024
	const jobs = 200
	ctx := context.Background()

	fmt.Printf("compute grid: n = %d IDs, %d jobs, group BA per job\n\n", n, jobs)
	fmt.Printf("%-6s %-9s %-9s %-13s %-12s\n", "beta", "correct", "wrong", "unreachable", "msgs/job")

	for _, beta := range []float64{0.0, 0.05, 0.10, 0.15} {
		sys, err := tinygroups.New(n,
			tinygroups.WithBeta(beta),
			tinygroups.WithSeed(7),
		)
		if err != nil {
			log.Fatal(err)
		}
		correct, wrong, unreachable := 0, 0, 0
		var msgs int64
		for i := 0; i < jobs; i++ {
			res, err := sys.Compute(ctx, fmt.Sprintf("job-%04d", i), i%2)
			if errors.Is(err, tinygroups.ErrUnreachable) {
				unreachable++
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			msgs += res.Messages
			if res.Correct {
				correct++
			} else {
				wrong++
			}
		}
		done := jobs - unreachable
		per := int64(0)
		if done > 0 {
			per = msgs / int64(done)
		}
		fmt.Printf("%-6.2f %-9d %-9d %-13d %-12d\n", beta, correct, wrong, unreachable, per)
		sys.Close()
	}
	fmt.Println("\nexpected: correct-job fraction stays 1−o(1) for β well below 1/4·(group size slack);")
	fmt.Println("msgs/job ≈ rounds·|G|² + route cost — quadratic in the tiny |G|, not in log n.")
}
