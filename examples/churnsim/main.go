// Churnsim: the §III dynamics end to end — run many epochs of full
// population turnover under the two-group-graph construction and watch the
// error probability stay flat, then run the same system with a single
// group graph and watch it drift (the ablation the paper's §III argues
// from).
package main

import (
	"fmt"
	"log"

	"repro/internal/epoch"
)

func main() {
	const n = 1024
	const epochs = 10

	for _, twoGraphs := range []bool{true, false} {
		mode := "two group graphs (paper §III)"
		if !twoGraphs {
			mode = "single group graph (naive ablation)"
		}
		fmt.Printf("== %s, n = %d, β = 0.05\n", mode, n)
		fmt.Printf("%-7s %-10s %-10s %-10s %-11s\n", "epoch", "qfSingle", "qfStep", "redFrac", "searchFail")

		cfg := epoch.DefaultConfig(n)
		cfg.Params.Beta = 0.05
		cfg.TwoGraphs = twoGraphs
		cfg.Seed = 99
		sys, err := epoch.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
		for e := 0; e < epochs; e++ {
			st := sys.RunEpoch()
			fmt.Printf("%-7d %-10.4f %-10.4f %-10.4f %-11.4f\n",
				st.Epoch, st.QfSingle, st.QfDual, st.RedFraction[0], st.SearchFailRate)
		}
		fmt.Println()
	}
	fmt.Println("expected: the two-graph series is flat (corruption per step ≈ qf²); the")
	fmt.Println("single-graph series compounds — redFrac and searchFail climb epoch over epoch.")
}
