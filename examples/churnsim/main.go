// Churnsim: the §III dynamics end to end — run many epochs of full
// population turnover under the two-group-graph construction and watch the
// error probability stay flat, then run the same system with a single
// group graph and watch it drift (the ablation the paper's §III argues
// from). Per-epoch rows are printed by an Observer hook streaming the
// construction statistics, the same channel a production deployment would
// feed its metrics pipeline from.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/tinygroups"
)

// statsPrinter streams each epoch's construction stats as a table row.
type statsPrinter struct{}

func (statsPrinter) ObserveSearch(tinygroups.SearchEvent) {}

func (statsPrinter) ObserveEpoch(e tinygroups.EpochEvent) {
	st := e.Stats
	fmt.Printf("%-7d %-10.4f %-10.4f %-10.4f %-11.4f\n",
		st.Epoch, st.QfSingle, st.QfDual, st.RedFraction[0], st.SearchFailRate)
}

func (statsPrinter) ObserveMint(e tinygroups.MintEvent) {
	if e.Epoch == 1 {
		fmt.Printf("        (each epoch re-mints %d IDs via PoW; the adversary gets %d)\n",
			e.Minted, e.Bad)
	}
}

func main() {
	const n = 1024
	const epochs = 10
	ctx := context.Background()

	for _, twoGraphs := range []bool{true, false} {
		mode := "two group graphs (paper §III)"
		opts := []tinygroups.Option{
			tinygroups.WithBeta(0.05),
			tinygroups.WithSeed(99),
			tinygroups.WithObserver(statsPrinter{}),
		}
		if !twoGraphs {
			mode = "single group graph (naive ablation)"
			opts = append(opts, tinygroups.WithSingleGraph())
		}
		fmt.Printf("== %s, n = %d, β = 0.05\n", mode, n)
		fmt.Printf("%-7s %-10s %-10s %-10s %-11s\n", "epoch", "qfSingle", "qfStep", "redFrac", "searchFail")

		sys, err := tinygroups.New(n, opts...)
		if err != nil {
			log.Fatal(err)
		}
		for e := 0; e < epochs; e++ {
			if _, err := sys.AdvanceEpoch(ctx); err != nil {
				log.Fatal(err)
			}
		}
		sys.Close()
		fmt.Println()
	}
	fmt.Println("expected: the two-graph series is flat (corruption per step ≈ qf²); the")
	fmt.Println("single-graph series compounds — redFrac and searchFail climb epoch over epoch.")
}
