// Quickstart: build an ε-robust system with tiny Θ(log log n) groups
// through the public tinygroups API, store and retrieve values through
// secure routing, and compare the group size against the classic Θ(log n)
// requirement.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"

	"repro/tinygroups"
)

func main() {
	const n = 4096
	const beta = 0.05 // the adversary holds 5% of the computational power

	sys, err := tinygroups.New(n,
		tinygroups.WithBeta(beta),
		tinygroups.WithSeed(1),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()

	fmt.Printf("system: n = %d IDs, adversary β = %.2f\n", sys.N(), beta)
	fmt.Printf("tiny group size  |G| = %d  (Θ(log log n): ln ln n = %.2f)\n",
		sys.GroupSize(), math.Log(math.Log(n)))
	fmt.Printf("classic size     |G| ≈ %.0f  (Θ(log n): 2·ln n)\n\n", 2*math.Log(n))

	// Store and retrieve through secure routing. ErrUnreachable marks the
	// ε-fraction of keys Theorem 3 concedes.
	for _, kv := range [][2]string{
		{"alice", "likes distributed systems"},
		{"bob", "runs a relay"},
		{"carol", "hoards CPU cycles"},
	} {
		info, err := sys.Put(ctx, kv[0], []byte(kv[1]))
		if errors.Is(err, tinygroups.ErrUnreachable) {
			fmt.Printf("put %-6s → unreachable (part of the ε the paper concedes)\n", kv[0])
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("put %-6s → owner %v, %d group hops, %d messages\n",
			kv[0], info.Owner, info.Hops, info.Messages)
	}
	if v, _, err := sys.Get(ctx, "alice"); err == nil {
		fmt.Printf("get alice  → %q\n\n", v)
	}

	// Measure Theorem 3's two bullets.
	rob, err := sys.Robustness(2000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("red groups:      %.4f of all groups (Thm 3 bullet 1: O(1/polylog n))\n", rob.RedFraction)
	fmt.Printf("failed searches: %.4f of 2000      (Thm 3 bullet 2)\n", rob.SearchFailRate)
	fmt.Printf("mean search cost: %.0f messages over %.1f groups\n", rob.MeanMessages, rob.MeanRouteLen)

	// One epoch of full churn via the two-group-graph construction.
	st, err := sys.AdvanceEpoch(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter one epoch of full turnover (n joins, n departures):\n")
	fmt.Printf("  dual-search failure q_f² = %.5f (single q_f = %.5f)\n", st.QfDual, st.QfSingle)
	fmt.Printf("  new-graph red fraction   = %.4f\n", st.RedFraction[0])
	fmt.Printf("  search failure           = %.4f\n", st.SearchFailRate)
}
