// Robuststore: the decentralized storage application of §I-A — store a
// corpus of keys, subject the system to different adversary ID-placement
// strategies, and measure what fraction of the corpus stays retrievable
// (the ε-robustness guarantee: all but an o(1) fraction). The corpus is
// written and probed with the batch operations, which fan the routed
// searches across the system's worker pool.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/tinygroups"
)

func main() {
	const n = 2048
	const keys = 500
	ctx := context.Background()

	fmt.Printf("robust store: n = %d IDs, %d keys, varying adversary strategy\n\n", n, keys)
	fmt.Printf("%-10s %-6s %-10s %-10s %-12s\n", "strategy", "beta", "stored", "retrieved", "unreachable")

	corpus := make([]tinygroups.KV, keys)
	lookups := make([]string, keys)
	for i := range corpus {
		k := fmt.Sprintf("doc-%04d", i)
		corpus[i] = tinygroups.KV{Key: k, Value: []byte(k)}
		lookups[i] = k
	}

	for _, strat := range []tinygroups.Strategy{tinygroups.Uniform, tinygroups.Clustered, tinygroups.NearKey} {
		for _, beta := range []float64{0.05, 0.10} {
			sys, err := tinygroups.New(n,
				tinygroups.WithBeta(beta),
				tinygroups.WithStrategy(strat),
				tinygroups.WithSeed(42),
			)
			if err != nil {
				log.Fatal(err)
			}
			puts, err := sys.PutBatch(ctx, corpus)
			if err != nil {
				log.Fatal(err)
			}
			stored := 0
			for _, r := range puts {
				if r.Err == nil {
					stored++
				}
			}
			gets, err := sys.LookupBatch(ctx, lookups)
			if err != nil {
				log.Fatal(err)
			}
			retrieved, unreachable := 0, 0
			for _, r := range gets {
				if r.Err == nil {
					retrieved++
				} else {
					unreachable++
				}
			}
			fmt.Printf("%-10s %-6.2f %-10d %-10d %-12d\n", strat, beta, stored, retrieved, unreachable)
			sys.Close()
		}
	}
	fmt.Println("\nexpected: retrieval misses stay an o(1) fraction for every placement strategy —")
	fmt.Println("the PoW u.a.r.-ID guarantee (Lemma 11) denies the adversary any useful concentration.")
}
