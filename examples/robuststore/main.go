// Robuststore: the decentralized storage application of §I-A — store a
// corpus of keys, subject the system to different adversary ID-placement
// strategies, and measure what fraction of the corpus stays retrievable
// (the ε-robustness guarantee: all but an o(1) fraction).
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/core"
)

func main() {
	const n = 2048
	const keys = 500

	fmt.Printf("robust store: n = %d IDs, %d keys, varying adversary strategy\n\n", n, keys)
	fmt.Printf("%-10s %-6s %-10s %-10s %-12s\n", "strategy", "beta", "stored", "retrieved", "unreachable")

	for _, strat := range []adversary.Strategy{adversary.Uniform, adversary.Clustered, adversary.NearKey} {
		for _, beta := range []float64{0.05, 0.10} {
			cfg := core.DefaultConfig(n)
			cfg.Beta = beta
			cfg.Strategy = strat
			cfg.Seed = 42
			sys, err := core.New(cfg)
			if err != nil {
				log.Fatal(err)
			}
			stored := 0
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("doc-%04d", i)
				if _, err := sys.Put(k, []byte(k)); err == nil {
					stored++
				}
			}
			retrieved, unreachable := 0, 0
			for i := 0; i < keys; i++ {
				k := fmt.Sprintf("doc-%04d", i)
				if _, _, err := sys.Get(k); err == nil {
					retrieved++
				} else {
					unreachable++
				}
			}
			fmt.Printf("%-10s %-6.2f %-10d %-10d %-12d\n", strat, beta, stored, retrieved, unreachable)
		}
	}
	fmt.Println("\nexpected: retrieval misses stay an o(1) fraction for every placement strategy —")
	fmt.Println("the PoW u.a.r.-ID guarantee (Lemma 11) denies the adversary any useful concentration.")
}
