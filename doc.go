// Package repro reproduces "Tiny Groups Tackle Byzantine Adversaries"
// (Jaiyeola, Patron, Saia, Young, Zhou — IPDPS 2018, arXiv:1705.10387):
// attack-resistant distributed systems built from groups of size
// Θ(log log n) instead of the classic Θ(log n), secured by proof-of-work.
//
// The public surface is the tinygroups package (the assembled ε-robust
// system: functional options, context-aware operations, typed errors,
// observer hooks, batch operations) and tinygroups/scenario (the
// streaming runner over every evaluation table); their exported API is
// pinned in API.txt and guarded in CI. The substrates live in
// internal/{ring,hashes,overlay,groups,adversary,epoch,pow,sim,ba,
// baseline}; internal/experiments implements the e1..e20 experiments on
// the parallel deterministic runner in internal/engine; bench_test.go in
// this directory exposes one benchmark per experiment.
package repro
