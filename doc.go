// Package repro reproduces "Tiny Groups Tackle Byzantine Adversaries"
// (Jaiyeola, Patron, Saia, Young, Zhou — IPDPS 2018, arXiv:1705.10387):
// attack-resistant distributed systems built from groups of size
// Θ(log log n) instead of the classic Θ(log n), secured by proof-of-work.
//
// The public surface is internal/core (the assembled ε-robust system);
// the substrates live in internal/{ring,hashes,overlay,groups,adversary,
// epoch,pow,sim,ba,baseline}; internal/experiments regenerates every
// evaluation table (see DESIGN.md §6 and EXPERIMENTS.md) on the parallel
// deterministic runner in internal/engine; bench_test.go in this directory
// exposes one benchmark per experiment.
package repro
