package repro

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/tinygroups"
)

// Integration tests exercise the full stack — ring → hashes → overlay →
// groups → epoch/pow → tinygroups — through the public API only, across
// every overlay construction and adversary strategy.

func TestIntegrationAllOverlays(t *testing.T) {
	ctx := context.Background()
	for _, ov := range []string{"chord", "debruijn", "viceroy"} {
		ov := ov
		t.Run(ov, func(t *testing.T) {
			sys, err := tinygroups.New(512,
				tinygroups.WithOverlay(ov),
				tinygroups.WithSeed(101),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			// Store, churn one epoch, retrieve.
			stored := 0
			for i := 0; i < 60; i++ {
				if _, err := sys.Put(ctx, fmt.Sprintf("k%d", i), []byte{byte(i)}); err == nil {
					stored++
				}
			}
			if stored < 54 {
				t.Fatalf("only %d/60 puts succeeded on %s", stored, ov)
			}
			st, err := sys.AdvanceEpoch(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.SearchFailRate > 0.15 {
				t.Fatalf("%s: post-epoch fail rate %.3f", ov, st.SearchFailRate)
			}
			got := 0
			for i := 0; i < 60; i++ {
				if v, _, err := sys.Get(ctx, fmt.Sprintf("k%d", i)); err == nil && len(v) == 1 && v[0] == byte(i) {
					got++
				}
			}
			if got < 50 {
				t.Fatalf("%s: only %d/60 values retrievable after churn", ov, got)
			}
		})
	}
}

func TestIntegrationAllStrategies(t *testing.T) {
	ctx := context.Background()
	for _, strat := range []tinygroups.Strategy{tinygroups.Uniform, tinygroups.Clustered, tinygroups.NearKey} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			sys, err := tinygroups.New(512,
				tinygroups.WithStrategy(strat),
				tinygroups.WithSeed(103),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			rob, err := sys.Robustness(400)
			if err != nil {
				t.Fatal(err)
			}
			if rob.SearchFailRate > 0.12 {
				t.Errorf("%s: fail rate %.3f exceeds ε budget", strat, rob.SearchFailRate)
			}
			st, err := sys.AdvanceEpoch(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.RedFraction[0] > 0.05 {
				t.Errorf("%s: post-epoch red fraction %.3f", strat, st.RedFraction[0])
			}
		})
	}
}

func TestIntegrationMultiEpochStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-epoch run")
	}
	ctx := context.Background()
	sys, err := tinygroups.New(512, tinygroups.WithSeed(104))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for e := 0; e < 6; e++ {
		st, err := sys.AdvanceEpoch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.RedFraction[0] > 0.05 || st.SearchFailRate > 0.15 {
			t.Fatalf("epoch %d: red=%.3f fail=%.3f — drift detected", st.Epoch, st.RedFraction[0], st.SearchFailRate)
		}
	}
	if sys.Epoch() != 6 {
		t.Errorf("epoch counter %d, want 6", sys.Epoch())
	}
}

func TestIntegrationComputePipeline(t *testing.T) {
	ctx := context.Background()
	sys, err := tinygroups.New(512, tinygroups.WithSeed(105))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	correct, total := 0, 0
	for i := 0; i < 50; i++ {
		res, err := sys.Compute(ctx, fmt.Sprintf("job%d", i), i%2)
		if errors.Is(err, tinygroups.ErrUnreachable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Correct {
			correct++
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.85 {
		t.Errorf("compute pipeline: %d/%d correct", correct, total)
	}
}

func TestIntegrationErosionRegimes(t *testing.T) {
	// The §III departure bound is load-bearing: moderate erosion (well
	// within ε'/2 per group on average) stays stable across epochs, while
	// heavy erosion poisons the graphs the *next* generation is built
	// through — no self-recovery, exactly why the paper assumes the bound
	// holds every epoch.
	ctx := context.Background()
	run := func(frac float64, epochs int) []float64 {
		sys, err := tinygroups.New(512,
			tinygroups.WithMidEpochDepartures(frac),
			tinygroups.WithSeed(106),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		var rates []float64
		for e := 0; e < epochs; e++ {
			st, err := sys.AdvanceEpoch(ctx)
			if err != nil {
				t.Fatal(err)
			}
			rates = append(rates, st.SearchFailRate)
		}
		return rates
	}
	mild := run(0.10, 3)
	for e, r := range mild {
		if r > 0.15 {
			t.Errorf("10%% erosion should be stable: epoch %d fail rate %.3f", e+1, r)
		}
	}
	heavy := run(0.30, 2)
	if heavy[1] < heavy[0] {
		t.Errorf("heavy erosion should compound into the next construction: %.3f then %.3f",
			heavy[0], heavy[1])
	}
}

// TestIntegrationBatchPipeline drives the batch surface end to end across
// an epoch: batched puts, churn, batched lookups.
func TestIntegrationBatchPipeline(t *testing.T) {
	ctx := context.Background()
	sys, err := tinygroups.New(512, tinygroups.WithSeed(107))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pairs := make([]tinygroups.KV, 80)
	keys := make([]string, len(pairs))
	for i := range pairs {
		keys[i] = fmt.Sprintf("batch-%02d", i)
		pairs[i] = tinygroups.KV{Key: keys[i], Value: []byte{byte(i)}}
	}
	puts, err := sys.PutBatch(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	stored := 0
	for _, r := range puts {
		if r.Err == nil {
			stored++
		}
	}
	if stored < 72 {
		t.Fatalf("only %d/80 batched puts landed", stored)
	}
	if _, err := sys.AdvanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := sys.LookupBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	reachable := 0
	for _, r := range res {
		if r.Err == nil {
			reachable++
		}
	}
	if reachable < 72 {
		t.Fatalf("only %d/80 keys reachable after churn", reachable)
	}
}
