package repro

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/epoch"
)

// Integration tests exercise the full stack — ring → hashes → overlay →
// groups → epoch/pow → core — through the public core API, across every
// overlay construction and adversary strategy.

func TestIntegrationAllOverlays(t *testing.T) {
	for _, ov := range []string{"chord", "debruijn", "viceroy"} {
		ov := ov
		t.Run(ov, func(t *testing.T) {
			cfg := core.DefaultConfig(512)
			cfg.Overlay = ov
			cfg.Seed = 101
			sys, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Store, churn one epoch, retrieve.
			stored := 0
			for i := 0; i < 60; i++ {
				if _, err := sys.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err == nil {
					stored++
				}
			}
			if stored < 54 {
				t.Fatalf("only %d/60 puts succeeded on %s", stored, ov)
			}
			st := sys.AdvanceEpoch()
			if st.SearchFailRate > 0.15 {
				t.Fatalf("%s: post-epoch fail rate %.3f", ov, st.SearchFailRate)
			}
			got := 0
			for i := 0; i < 60; i++ {
				if v, _, err := sys.Get(fmt.Sprintf("k%d", i)); err == nil && len(v) == 1 && v[0] == byte(i) {
					got++
				}
			}
			if got < 50 {
				t.Fatalf("%s: only %d/60 values retrievable after churn", ov, got)
			}
		})
	}
}

func TestIntegrationAllStrategies(t *testing.T) {
	for _, strat := range []adversary.Strategy{adversary.Uniform, adversary.Clustered, adversary.NearKey} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			cfg := core.DefaultConfig(512)
			cfg.Strategy = strat
			cfg.Seed = 103
			sys, err := core.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rob := sys.Robustness(400)
			if rob.SearchFailRate > 0.12 {
				t.Errorf("%s: fail rate %.3f exceeds ε budget", strat, rob.SearchFailRate)
			}
			st := sys.AdvanceEpoch()
			if st.RedFraction[0] > 0.05 {
				t.Errorf("%s: post-epoch red fraction %.3f", strat, st.RedFraction[0])
			}
		})
	}
}

func TestIntegrationMultiEpochStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-epoch run")
	}
	cfg := core.DefaultConfig(512)
	cfg.Seed = 104
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 6; e++ {
		st := sys.AdvanceEpoch()
		if st.RedFraction[0] > 0.05 || st.SearchFailRate > 0.15 {
			t.Fatalf("epoch %d: red=%.3f fail=%.3f — drift detected", st.Epoch, st.RedFraction[0], st.SearchFailRate)
		}
	}
	if sys.Epoch() != 6 {
		t.Errorf("epoch counter %d, want 6", sys.Epoch())
	}
}

func TestIntegrationComputePipeline(t *testing.T) {
	cfg := core.DefaultConfig(512)
	cfg.Seed = 105
	sys, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	for i := 0; i < 50; i++ {
		res, err := sys.Compute(fmt.Sprintf("job%d", i), i%2)
		if errors.Is(err, core.ErrUnreachable) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		total++
		if res.Correct {
			correct++
		}
	}
	if total == 0 || float64(correct)/float64(total) < 0.85 {
		t.Errorf("compute pipeline: %d/%d correct", correct, total)
	}
}

func TestIntegrationErosionRegimes(t *testing.T) {
	// The §III departure bound is load-bearing: moderate erosion (well
	// within ε'/2 per group on average) stays stable across epochs, while
	// heavy erosion poisons the graphs the *next* generation is built
	// through — no self-recovery, exactly why the paper assumes the bound
	// holds every epoch.
	run := func(frac float64, epochs int) []float64 {
		cfg := epoch.DefaultConfig(512)
		cfg.MidEpochDepartures = frac
		cfg.Seed = 106
		s, err := epoch.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		var rates []float64
		for e := 0; e < epochs; e++ {
			rates = append(rates, s.RunEpoch().SearchFailRate)
		}
		return rates
	}
	mild := run(0.10, 3)
	for e, r := range mild {
		if r > 0.15 {
			t.Errorf("10%% erosion should be stable: epoch %d fail rate %.3f", e+1, r)
		}
	}
	heavy := run(0.30, 2)
	if heavy[1] < heavy[0] {
		t.Errorf("heavy erosion should compound into the next construction: %.3f then %.3f",
			heavy[0], heavy[1])
	}
}
