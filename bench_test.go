package repro

import (
	"context"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/adversary"
	"repro/internal/ba"
	"repro/internal/baseline"
	"repro/internal/engine"
	"repro/internal/epoch"
	"repro/internal/experiments"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/overlay"
	"repro/internal/pow"
	"repro/internal/ring"
	"repro/internal/secroute"
	"repro/internal/sim"
	"repro/tinygroups"
)

// ---------------------------------------------------------------------------
// One benchmark per experiment (DESIGN.md §6). Each regenerates its table in
// quick mode; per-experiment metrics of interest are also reported as
// custom benchmark metrics so `go test -bench` output doubles as the
// reproduction record.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) experiments.Result {
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var res experiments.Result
	for i := 0; i < b.N; i++ {
		res = e.Run(experiments.Options{Quick: true, Seed: 1})
	}
	return res
}

func cell(b *testing.B, res experiments.Result, row, col int) float64 {
	v, err := strconv.ParseFloat(res.Table.Rows[row][col], 64)
	if err != nil {
		b.Fatalf("cell (%d,%d) not numeric: %v", row, col, err)
	}
	return v
}

func BenchmarkE1StaticSearch(b *testing.B) {
	res := benchExperiment(b, "e1")
	b.ReportMetric(cell(b, res, 0, 4), "searchFail@n1k,b05")
	b.ReportMetric(cell(b, res, len(res.Table.Rows)-1, 4), "searchFail@max,b10")
}

func BenchmarkE2BadGroups(b *testing.B) {
	res := benchExperiment(b, "e2")
	b.ReportMetric(cell(b, res, 1, 4), "badFrac@2lnln,b05")
}

func BenchmarkE3Costs(b *testing.B) {
	res := benchExperiment(b, "e3")
	// rows alternate tiny/log per overlay; ratio of msgs/search is the
	// Corollary 1 improvement factor.
	tiny := cell(b, res, 0, 5)
	logg := cell(b, res, 1, 5)
	b.ReportMetric(logg/tiny, "logVsTinyMsgRatio")
}

func BenchmarkE4Dynamic(b *testing.B) {
	res := benchExperiment(b, "e4")
	last := len(res.Table.Rows) - 1
	b.ReportMetric(cell(b, res, last, 5), "searchFail@lastEpoch")
}

func BenchmarkE5Ablation(b *testing.B) {
	res := benchExperiment(b, "e5")
	var lastTwo, lastOne float64
	for i, row := range res.Table.Rows {
		if row[0] == "2" {
			lastTwo = cell(b, res, i, 3)
		} else {
			lastOne = cell(b, res, i, 3)
		}
	}
	b.ReportMetric(lastTwo, "redFrac@2graphs")
	b.ReportMetric(lastOne, "redFrac@1graph")
}

func BenchmarkE6PoW(b *testing.B) {
	res := benchExperiment(b, "e6")
	b.ReportMetric(cell(b, res, 0, 2), "minted@b05")
}

func BenchmarkE7Strings(b *testing.B) {
	res := benchExperiment(b, "e7")
	b.ReportMetric(cell(b, res, 0, 4), "maxSolutionSet")
}

func BenchmarkE8Knee(b *testing.B) {
	res := benchExperiment(b, "e8")
	b.ReportMetric(cell(b, res, 0, 4), "searchFail@halfLnln")
	b.ReportMetric(cell(b, res, len(res.Table.Rows)-1, 4), "searchFail@4lnln")
}

func BenchmarkE9InputGraphs(b *testing.B) {
	res := benchExperiment(b, "e9")
	b.ReportMetric(cell(b, res, 0, 3), "chordHopsOverLog2n")
}

func BenchmarkE10Cuckoo(b *testing.B) {
	res := benchExperiment(b, "e10")
	b.ReportMetric(cell(b, res, 0, 4), "cuckooSurvived@g8")
}

func BenchmarkE11Precompute(b *testing.B) {
	res := benchExperiment(b, "e11")
	last := len(res.Table.Rows) - 1
	rot := cell(b, res, last, 1)
	no := cell(b, res, last, 2)
	b.ReportMetric(no/rot, "hoardGrowthRatio")
}

func BenchmarkE12State(b *testing.B) {
	res := benchExperiment(b, "e12")
	b.ReportMetric(cell(b, res, 0, 3), "spamAccepted@verify")
	b.ReportMetric(cell(b, res, 1, 3), "spamAccepted@noVerify")
}

func BenchmarkE13BA(b *testing.B) {
	res := benchExperiment(b, "e13")
	b.ReportMetric(cell(b, res, 0, 3), "agreementRate")
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the hot substrates (testing.B in the conventional
// per-op style).
// ---------------------------------------------------------------------------

func benchRing(n int, seed int64) *ring.Ring {
	return overlay.UniformRing(n, rand.New(rand.NewSource(seed)))
}

func BenchmarkRingSuccessor(b *testing.B) {
	r := benchRing(1<<16, 1)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Successor(ring.Point(rng.Uint64()))
	}
}

func BenchmarkHashPointAt(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hashes.H1.PointAt(ring.Point(i), i&7)
	}
}

func BenchmarkHashPoint(b *testing.B) {
	data := []byte("0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hashes.H1.Point(data)
	}
}

func BenchmarkHashOfPoint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hashes.F.OfPoint(ring.Point(i))
	}
}

func BenchmarkHashPointsAt(b *testing.B) {
	dst := make([]ring.Point, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hashes.H1.PointsAt(ring.Point(i), len(dst), dst)
	}
}

func BenchmarkXORInto(b *testing.B) {
	x := make([]byte, 32)
	y := make([]byte, 32)
	dst := make([]byte, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hashes.XORInto(dst, x, y)
	}
}

// benchRingNode sends one allocation-free message to each ring neighbor per
// round, so BenchmarkSimRound isolates the runtime's own per-round overhead.
type benchRingNode struct {
	left, right sim.NodeID
	out         []sim.Message
}

func (n *benchRingNode) Step(round int, inbox []sim.Message) []sim.Message {
	n.out = n.out[:0]
	n.out = append(n.out,
		sim.Message{To: n.left, Payload: "m"},
		sim.Message{To: n.right, Payload: "m"})
	return n.out
}

// BenchmarkSimRound measures one steady-state synchronous round on a fixed
// 256-node ring topology (512 messages routed per round).
func BenchmarkSimRound(b *testing.B) {
	const n = 256
	nodes := make([]sim.Node, n)
	adj := make([][]sim.NodeID, n)
	for i := range nodes {
		l, r := sim.NodeID((i+n-1)%n), sim.NodeID((i+1)%n)
		nodes[i] = &benchRingNode{left: l, right: r}
		adj[i] = []sim.NodeID{l, r}
	}
	nw := sim.New(nodes)
	nw.SetTopology(adj)
	b.ReportAllocs()
	b.ResetTimer()
	nw.Run(b.N)
}

// BenchmarkGroupsBuild measures group-graph construction alone (overlay
// built once outside the loop), the hot path of every epoch.
func BenchmarkGroupsBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pl := adversary.Place(adversary.Config{N: 1 << 12, Beta: 0.05, Strategy: adversary.Uniform}, rng)
	params := groups.DefaultParams()
	params.Beta = 0.05
	ov := overlay.NewChord(pl.Ring())
	bad := pl.BadSet()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups.Build(ov, bad, params, hashes.H1)
	}
}

func BenchmarkChordRoute(b *testing.B) {
	r := benchRing(1<<14, 3)
	g := overlay.NewChord(r)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := r.At(rng.Intn(r.Len()))
		g.Route(src, ring.Point(rng.Uint64()))
	}
}

func BenchmarkDeBruijnRoute(b *testing.B) {
	r := benchRing(1<<14, 5)
	g := overlay.NewDeBruijn(r, 2)
	rng := rand.New(rand.NewSource(6))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := r.At(rng.Intn(r.Len()))
		g.Route(src, ring.Point(rng.Uint64()))
	}
}

func BenchmarkViceroyRoute(b *testing.B) {
	r := benchRing(1<<14, 7)
	g := overlay.NewViceroy(r, 7)
	rng := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := r.At(rng.Intn(r.Len()))
		g.Route(src, ring.Point(rng.Uint64()))
	}
}

func BenchmarkGroupGraphBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pl := adversary.Place(adversary.Config{N: 1 << 12, Beta: 0.05, Strategy: adversary.Uniform}, rng)
	params := groups.DefaultParams()
	params.Beta = 0.05
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ov := overlay.NewChord(pl.Ring())
		groups.Build(ov, pl.BadSet(), params, hashes.H1)
	}
}

func BenchmarkGroupSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	pl := adversary.Place(adversary.Config{N: 1 << 12, Beta: 0.05, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	params := groups.DefaultParams()
	params.Beta = 0.05
	g := groups.Build(ov, pl.BadSet(), params, hashes.H1)
	r := ov.Ring()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := r.At(rng.Intn(r.Len()))
		g.Search(src, ring.Point(rng.Uint64()))
	}
}

func BenchmarkPoWSolve(b *testing.B) {
	p := pow.Params{Tau: ring.Point(^uint64(0) >> 8), StringLen: 32}
	rng := rand.New(rand.NewSource(11))
	rstr := pow.EpochString(1, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pow.Solve(rstr, p, rng, 1<<20)
	}
}

func BenchmarkPoWSolveSharded(b *testing.B) {
	p := pow.Params{Tau: ring.Point(^uint64(0) >> 10), StringLen: 32}
	rstr := pow.EpochString(1, 0, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pow.SolveSharded(rstr, p, int64(i+1), 1<<20, 0)
	}
}

// BenchmarkSolveSharded is the mining-engine trajectory benchmark recorded
// in BENCH_hotpaths.json and compared in BENCH_pow.json: one explicit
// worker, so ns/op tracks the per-attempt hash cost rather than scheduling,
// with throughput surfaced as hashes/s.
func BenchmarkSolveSharded(b *testing.B) {
	p := pow.Params{Tau: ring.Point(^uint64(0) >> 10), StringLen: 32}
	rstr := pow.EpochString(1, 0, 32)
	attempts := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, ok := pow.SolveSharded(rstr, p, int64(i+1), 1<<20, 1)
		if !ok {
			b.Fatal("solve failed")
		}
		attempts += int64(sol.Attempts)
	}
	b.ReportMetric(float64(attempts)/b.Elapsed().Seconds(), "hashes/s")
}

func BenchmarkPoWVerifyBatch(b *testing.B) {
	p := pow.Params{Tau: ring.Point(^uint64(0) >> 4), StringLen: 32}
	rstr := pow.EpochString(1, 0, 32)
	claims := make([]pow.Claim, 256)
	for i := range claims {
		sol, ok := pow.SolveSharded(rstr, p, int64(i+1), 1<<16, 0)
		if !ok {
			b.Fatal("setup solve failed")
		}
		claims[i] = pow.Claim{ID: sol.ID, Sigma: sol.Sigma}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pow.VerifyBatch(claims, rstr, p, 0)
	}
}

func BenchmarkEngineMapOverhead(b *testing.B) {
	cfg := engine.Config{RootSeed: 1}
	for i := 0; i < b.N; i++ {
		engine.Map(cfg, "bench", 64, func(_ int, rng *rand.Rand) float64 {
			return rng.Float64()
		})
	}
}

func BenchmarkMintCount(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < b.N; i++ {
		pow.MintCount(1<<20, 1e-4, rng)
	}
}

func BenchmarkPhaseKingAgreement(b *testing.B) {
	prefs := make([]int, 12)
	for i := range prefs {
		prefs[i] = i % 2
	}
	byz := map[int]bool{3: true, 8: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba.Run(12, 2, prefs, byz, "equivocate")
	}
}

func BenchmarkCuckooEvent(b *testing.B) {
	// Parameters that survive the attack (per E10), so all b.N events run.
	res := baseline.RunCuckoo(baseline.CuckooConfig{
		N: 1 << 10, Beta: 0.002, K: 4, GroupSize: 64,
		Events: b.N, Targeted: true, Seed: 13,
	})
	if !res.Survived && b.N > 1000 {
		b.Fatalf("cuckoo died at event %d; per-event timing invalid", res.SurvivedEvents)
	}
}

func BenchmarkE14SecureRouting(b *testing.B) {
	res := benchExperiment(b, "e14")
	b.ReportMetric(cell(b, res, 0, 3), "scoreAgreement")
}

func BenchmarkE15Departures(b *testing.B) {
	res := benchExperiment(b, "e15")
	b.ReportMetric(cell(b, res, 0, 3), "majLost@10pct")
	b.ReportMetric(cell(b, res, len(res.Table.Rows)-1, 3), "majLost@80pct")
}

func BenchmarkE16Bootstrap(b *testing.B) {
	res := benchExperiment(b, "e16")
	b.ReportMetric(cell(b, res, 1, 4), "goodMajorityRate")
}

func BenchmarkE17OverlayAblation(b *testing.B) {
	res := benchExperiment(b, "e17")
	b.ReportMetric(cell(b, res, 0, 1), "chordHops")
	b.ReportMetric(cell(b, res, 1, 1), "debruijn2Hops")
}

func BenchmarkSecureRouteProtocol(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	pl := adversary.Place(adversary.Config{N: 1 << 12, Beta: 0.05, Strategy: adversary.Uniform}, rng)
	ov := overlay.NewChord(pl.Ring())
	params := groups.DefaultParams()
	params.Beta = 0.05
	g := groups.Build(ov, pl.BadSet(), params, hashes.H1)
	r := ov.Ring()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := r.At(rng.Intn(r.Len()))
		secroute.Route(g, src, ring.Point(rng.Uint64()))
	}
}

func BenchmarkEpochConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := epoch.DefaultConfig(512)
		cfg.Seed = int64(i + 1)
		s, err := epoch.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.RunEpoch()
		s.Close()
	}
}

// BenchmarkRunEpoch measures one steady-state epoch (n = 1024, defaults)
// at a single worker — the sequential-pipeline number BENCH_epoch.json
// tracks. The pre-pipeline sequential implementation measured
// 83.6 ms/op and 1,036,614 allocs/op on the same workload.
func BenchmarkRunEpoch(b *testing.B) {
	cfg := epoch.DefaultConfig(1024)
	cfg.Seed = 1
	cfg.Workers = 1
	s, err := epoch.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunEpoch()
	}
}

// BenchmarkRunEpochParallel is BenchmarkRunEpoch on the default worker
// pool (GOMAXPROCS) — results are byte-identical to the 1-worker run; only
// wall-clock moves.
func BenchmarkRunEpochParallel(b *testing.B) {
	cfg := epoch.DefaultConfig(1024)
	cfg.Seed = 1
	s, err := epoch.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunEpoch()
	}
}

// BenchmarkEpochSweep measures the E4-shaped workload end to end: trusted
// initialization plus a three-epoch dynamic chain at n = 512, including
// graph construction and generation swaps.
func BenchmarkEpochSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := epoch.DefaultConfig(512)
		cfg.Seed = int64(i + 1)
		s, err := epoch.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for e := 0; e < 3; e++ {
			s.RunEpoch()
		}
		s.Close()
	}
}

func BenchmarkLotteryRound(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	r := overlay.UniformRing(256, rng)
	ov := overlay.NewChord(r)
	adj := pow.BuildAdjacency(ov)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := pow.DefaultLotteryConfig(256, 1<<14)
		cfg.Seed = int64(i + 1)
		pow.RunLottery(cfg, adj)
	}
}

func BenchmarkE18Quarantine(b *testing.B) {
	res := benchExperiment(b, "e18")
	b.ReportMetric(cell(b, res, 2, 3), "residentBad@pMis1")
	b.ReportMetric(cell(b, res, 0, 3), "residentBad@stealth")
}

func BenchmarkE19AdaptivePoW(b *testing.B) {
	res := benchExperiment(b, "e19")
	b.ReportMetric(cell(b, res, 0, 1), "workRatio@peace")
	b.ReportMetric(cell(b, res, 3, 1), "workRatio@griefing")
}

func BenchmarkE20SizeDrift(b *testing.B) {
	res := benchExperiment(b, "e20")
	b.ReportMetric(cell(b, res, len(res.Table.Rows)-1, 4), "searchFail@50pctDrift")
}

// BenchmarkLookupParallel measures the lock-free snapshot read path under
// contention: every P runs Lookups concurrently against one System, each
// drawing a pooled scratch and resolving against the atomically-loaded
// epoch generation. Scaling with -cpu is the tentpole claim — reads share
// no locks, so throughput should track GOMAXPROCS.
func BenchmarkLookupParallel(b *testing.B) {
	sys, err := tinygroups.New(4096, tinygroups.WithBeta(0.05), tinygroups.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = "par-" + strconv.Itoa(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			_, _ = sys.Lookup(ctx, keys[i%len(keys)])
			i++
		}
	})
}
