# Local targets mirror .github/workflows/ci.yml exactly: `make ci` is the
# same gate CI applies.

GO ?= go

# The hot-path micro-benchmarks recorded in BENCH_hotpaths.json: the oracle
# hash APIs, ring successor lookups, overlay routing, group build/search and
# the sim round loop — the three paths every experiment funnels through.
HOTPATH_BENCH = BenchmarkRingSuccessor|BenchmarkHashPoint|BenchmarkHashOfPoint|BenchmarkHashPointsAt|BenchmarkXORInto|BenchmarkChordRoute|BenchmarkSimRound|BenchmarkGroupsBuild|BenchmarkGroupSearch|BenchmarkSecureRouteProtocol|BenchmarkLookupParallel|BenchmarkSolveSharded

# The epoch-pipeline benchmarks recorded in BENCH_epoch.json: steady-state
# RunEpoch at one worker, the same on the default pool, and the E4-shaped
# init + 3-epoch sweep.
EPOCH_BENCH = BenchmarkRunEpoch|BenchmarkRunEpochParallel|BenchmarkEpochSweep

# The packages whose exported surface is pinned in API.txt and guarded in
# CI (make apicheck), and whose exported symbols must all carry doc
# comments (make doclint). Everything under internal/ is explicitly
# unstable.
API_PKGS = ./tinygroups ./tinygroups/scenario ./tinygroups/loadgen ./tinygroups/cluster

# The daemon/loadgen pair used by serve-smoke and bench-service. Override
# SERVE_PORT if 8477 is taken locally.
SERVE_PORT ?= 8477
SERVE_ADDR = 127.0.0.1:$(SERVE_PORT)

# The separate port chaos-smoke tortures its daemon on, so a concurrent
# serve-smoke/bench run on SERVE_PORT is never collateral damage.
CHAOS_PORT ?= 8479
CHAOS_ADDR = 127.0.0.1:$(CHAOS_PORT)

# cluster-smoke's port block: the router plus its two shard daemons.
CLUSTER_PORT ?= 8480
CLUSTER_ROUTER_ADDR = 127.0.0.1:$(CLUSTER_PORT)
CLUSTER_SHARD0_ADDR = 127.0.0.1:$(shell expr $(CLUSTER_PORT) + 1)
CLUSTER_SHARD1_ADDR = 127.0.0.1:$(shell expr $(CLUSTER_PORT) + 2)

# snapshot-smoke's own port, clear of the other smokes.
SNAPSHOT_PORT ?= 8482
SNAPSHOT_ADDR = 127.0.0.1:$(SNAPSHOT_PORT)

.PHONY: build test cover bench bench-json bench-service bench-faults bench-pow bench-cluster bench-snapshot lint doclint api apicheck smoke-examples serve-smoke chaos-smoke cluster-smoke snapshot-smoke fuzz-short ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

# cover reruns the test suite with coverage accounting and prints the
# per-package and total percentages. CI uploads coverage.out as an
# artifact and surfaces the total in the job summary; there is no
# hard threshold — the number is informational, the tests are the gate.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1

# fuzz-short runs each snapshot/op-log decoder fuzz target briefly (the
# committed seed corpora plus a few seconds of mutation) — the CI-sized
# slice of the "decoders never panic" guarantee. Longer local runs:
# go test -fuzz FuzzDecodeSnapshot -fuzztime 5m ./internal/snapshot
fuzz-short:
	$(GO) test -fuzz FuzzDecodeSnapshot -fuzztime 5s -run '^$$' ./internal/snapshot
	$(GO) test -fuzz FuzzDecodeLog -fuzztime 5s -run '^$$' ./internal/snapshot

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-json reruns the hot-path and epoch-pipeline benchmarks with
# allocation reporting and records them as BENCH_hotpaths.json /
# BENCH_epoch.json — the repo's perf trajectory. Compare against the
# committed files (git diff BENCH_*.json) before merging perf-sensitive
# changes.
bench-json:
	$(GO) test -run=NONE -bench '$(HOTPATH_BENCH)' -benchmem -benchtime=200ms . \
		| $(GO) run ./cmd/benchjson > BENCH_hotpaths.json
	@echo "wrote BENCH_hotpaths.json"
	$(GO) test -run=NONE -bench '$(EPOCH_BENCH)' -benchmem -benchtime=200ms . \
		| $(GO) run ./cmd/benchjson > BENCH_epoch.json
	@echo "wrote BENCH_epoch.json"

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

# doclint fails when any exported symbol of the stable packages lacks a
# doc comment — the guard that keeps the godoc pass from regressing.
doclint:
	$(GO) run ./cmd/doclint $(API_PKGS)

# api regenerates the checked-in export listing of the stable packages.
# Run it (and review the diff) whenever the public surface changes.
api:
	@{ for p in $(API_PKGS); do echo "# $$p"; $(GO) doc -short "$$p"; echo; done; } > API.txt
	@echo "wrote API.txt"

# apicheck fails when the exported surface drifted from API.txt — the CI
# guard that makes every public-API change an explicit, reviewed diff.
apicheck:
	@{ for p in $(API_PKGS); do echo "# $$p"; $(GO) doc -short "$$p"; echo; done; } > API.txt.tmp; \
	if ! diff -u API.txt API.txt.tmp; then \
		rm -f API.txt.tmp; \
		echo "public API surface drifted — run 'make api' and commit the diff" >&2; exit 1; \
	fi; \
	rm -f API.txt.tmp

# smoke-examples builds and runs every example binary against the public
# API (output discarded; a non-zero exit fails the gate).
smoke-examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; $(GO) run "./$$d" > /dev/null; \
	done

# serve-smoke gates the daemon's full lifecycle: boot, answer /healthz,
# serve real traffic from loadgen, then drain cleanly on SIGTERM (the
# daemon's exit status is the assertion — a botched drain exits non-zero).
serve-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/tinygroupsd" ./cmd/tinygroupsd; \
	$(GO) build -o "$$tmp/loadgen" ./cmd/loadgen; \
	"$$tmp/tinygroupsd" -addr $(SERVE_ADDR) -n 512 -epoch-interval 250ms & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	"$$tmp/loadgen" -addr http://$(SERVE_ADDR) -ops 64 -concurrency 2 -keys 64 -advance-every 32 -out - > /dev/null; \
	kill -TERM $$pid; \
	wait $$pid; \
	echo "serve-smoke: clean daemon exit"

# bench-service records the serving layer's measured service level
# (throughput + latency quantiles per workload) as the committed
# BENCH_service.json — the service-side sibling of bench-json. Compare
# against the committed file before merging serving-path changes;
# latencies are machine-sensitive, so judge shape, not nanoseconds.
bench-service:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/tinygroupsd" ./cmd/tinygroupsd; \
	$(GO) build -o "$$tmp/loadgen" ./cmd/loadgen; \
	"$$tmp/tinygroupsd" -addr $(SERVE_ADDR) -n 2048 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	"$$tmp/loadgen" -addr http://$(SERVE_ADDR) -ops 2000 -concurrency 4 -keys 512 -out BENCH_service.json; \
	kill -TERM $$pid; \
	wait $$pid; \
	echo "wrote BENCH_service.json"

# chaos-smoke gates crash recovery: cmd/chaos boots the daemon, drives the
# three adversarial workloads, SIGKILLs it mid-epoch, restarts it, and
# requires the friendly tail to come back at >= 99% lookup success plus a
# clean final drain — the kill/restart drill of ARCHITECTURE.md's fault
# model. A wedged phase trips the harness watchdog, which SIGQUITs the
# daemon for a goroutine dump before failing.
chaos-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/tinygroupsd" ./cmd/tinygroupsd; \
	$(GO) build -o "$$tmp/chaos" ./cmd/chaos; \
	"$$tmp/chaos" -daemon "$$tmp/tinygroupsd" -addr $(CHAOS_ADDR) -n 512 -ops 300

# bench-faults records the serving layer's measured service level under the
# adversarial workloads (join-flood, targeted-churn, eclipse-storm) as the
# committed BENCH_faults.json — the attack-side sibling of bench-service.
# The success-rate and by-status columns are the headline: they read out
# how much of the offered adversarial load the system still answered.
bench-faults:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/tinygroupsd" ./cmd/tinygroupsd; \
	$(GO) build -o "$$tmp/loadgen" ./cmd/loadgen; \
	"$$tmp/tinygroupsd" -addr $(SERVE_ADDR) -n 2048 -mint-work 256 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	"$$tmp/loadgen" -addr http://$(SERVE_ADDR) -ops 2000 -concurrency 4 -keys 512 \
		-workloads join-flood,targeted-churn,eclipse-storm -advance-every 250 \
		-retries 3 -out BENCH_faults.json; \
	kill -TERM $$pid; \
	wait $$pid; \
	echo "wrote BENCH_faults.json"

# cluster-smoke gates cluster mode end to end with the real binaries: two
# shard daemons (-shard-index/-shard-count) and a tinygroupsrouter boot,
# loadgen drives a sweep — including the scatter-gathered bulk-read
# workload and coordinated two-phase epoch advances — through the router,
# and all three processes drain cleanly on SIGTERM (each exit status is an
# assertion).
cluster-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/tinygroupsd" ./cmd/tinygroupsd; \
	$(GO) build -o "$$tmp/tinygroupsrouter" ./cmd/tinygroupsrouter; \
	$(GO) build -o "$$tmp/loadgen" ./cmd/loadgen; \
	"$$tmp/tinygroupsd" -addr $(CLUSTER_SHARD0_ADDR) -n 512 -shard-index 0 -shard-count 2 & s0=$$!; \
	"$$tmp/tinygroupsd" -addr $(CLUSTER_SHARD1_ADDR) -n 512 -shard-index 1 -shard-count 2 & s1=$$!; \
	"$$tmp/tinygroupsrouter" -addr $(CLUSTER_ROUTER_ADDR) \
		-shards http://$(CLUSTER_SHARD0_ADDR),http://$(CLUSTER_SHARD1_ADDR) & rp=$$!; \
	trap 'kill $$rp $$s0 $$s1 2>/dev/null || true; rm -rf "$$tmp"' EXIT; \
	"$$tmp/loadgen" -addr http://$(CLUSTER_ROUTER_ADDR) -ops 64 -concurrency 2 -keys 64 \
		-workloads uniform,readwrite-mix,churn-heavy,bulk-read -advance-every 32 -out - > /dev/null; \
	kill -TERM $$rp $$s0 $$s1; \
	wait $$rp; wait $$s0; wait $$s1; \
	echo "cluster-smoke: clean router + 2-shard exit"

# bench-cluster records cluster-mode serving — the same sweep through a
# router at K=1 and K=2 — as the committed BENCH_cluster.json. The K=1
# row is the single-shard baseline; the K=2 row shows what the partition
# costs (an extra proxy hop per keyed op) and buys (two write queues, a
# scatter-gathered batch plane). Latencies are machine-sensitive; judge
# shape, not nanoseconds.
bench-cluster:
	$(GO) run ./cmd/benchcluster -sizes 1,2 -n 1024 -ops 2000 -concurrency 4 -keys 512 -out BENCH_cluster.json
	@echo "wrote BENCH_cluster.json"

# snapshot-smoke gates durability end to end with the real binaries: boot
# tinygroupsd with a data dir, drive epochs and puts over HTTP, SIGKILL it,
# restart on the same dir, and require recovered=true with the pre-kill
# epoch fingerprint and every acknowledged key served back from disk.
snapshot-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o "$$tmp/tinygroupsd" ./cmd/tinygroupsd; \
	$(GO) build -o "$$tmp/snapshotsmoke" ./cmd/snapshotsmoke; \
	"$$tmp/snapshotsmoke" -daemon "$$tmp/tinygroupsd" -addr $(SNAPSHOT_ADDR)

# bench-snapshot records what the durability layer buys at boot — cold
# bootstrap to epoch E vs restore-from-snapshot of the identical state —
# as the committed BENCH_snapshot.json. The restore must verify against
# the saved fingerprint and must be faster (speedup > 1 is enforced).
bench-snapshot:
	$(GO) run ./cmd/benchsnapshot -out BENCH_snapshot.json
	@echo "wrote BENCH_snapshot.json"

# bench-pow records the PoW mining engine's measured throughput — raw
# hashes/sec (legacy derive-per-attempt stream vs the counter-mode engine),
# full solves/sec at the reference difficulty, and in-process mint latency
# quantiles — as the committed BENCH_pow.json. The baseline block pins the
# pre-engine BenchmarkPoWSolveSharded reading next to a live re-measurement
# of the same workload, so the speedup stays an explicit number.
bench-pow:
	$(GO) run ./cmd/benchpow -out BENCH_pow.json
	@echo "wrote BENCH_pow.json"

ci: build lint doclint apicheck test fuzz-short smoke-examples serve-smoke chaos-smoke cluster-smoke snapshot-smoke bench bench-faults bench-pow bench-cluster bench-snapshot
