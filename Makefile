# Local targets mirror .github/workflows/ci.yml exactly: `make ci` is the
# same gate CI applies.

GO ?= go

# The hot-path micro-benchmarks recorded in BENCH_hotpaths.json: the oracle
# hash APIs, ring successor lookups, overlay routing, group build/search and
# the sim round loop — the three paths every experiment funnels through.
HOTPATH_BENCH = BenchmarkRingSuccessor|BenchmarkHashPoint|BenchmarkHashOfPoint|BenchmarkHashPointsAt|BenchmarkXORInto|BenchmarkChordRoute|BenchmarkSimRound|BenchmarkGroupsBuild|BenchmarkGroupSearch|BenchmarkSecureRouteProtocol

.PHONY: build test bench bench-json lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-json reruns the hot-path benchmarks with allocation reporting and
# records them as BENCH_hotpaths.json — the repo's perf trajectory. Compare
# against the committed file (git diff BENCH_hotpaths.json) before merging
# perf-sensitive changes.
bench-json:
	$(GO) test -run=NONE -bench '$(HOTPATH_BENCH)' -benchmem -benchtime=200ms . \
		| $(GO) run ./cmd/benchjson > BENCH_hotpaths.json
	@echo "wrote BENCH_hotpaths.json"

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

ci: build lint test bench
