# Local targets mirror .github/workflows/ci.yml exactly: `make ci` is the
# same gate CI applies.

GO ?= go

# The hot-path micro-benchmarks recorded in BENCH_hotpaths.json: the oracle
# hash APIs, ring successor lookups, overlay routing, group build/search and
# the sim round loop — the three paths every experiment funnels through.
HOTPATH_BENCH = BenchmarkRingSuccessor|BenchmarkHashPoint|BenchmarkHashOfPoint|BenchmarkHashPointsAt|BenchmarkXORInto|BenchmarkChordRoute|BenchmarkSimRound|BenchmarkGroupsBuild|BenchmarkGroupSearch|BenchmarkSecureRouteProtocol

# The epoch-pipeline benchmarks recorded in BENCH_epoch.json: steady-state
# RunEpoch at one worker, the same on the default pool, and the E4-shaped
# init + 3-epoch sweep.
EPOCH_BENCH = BenchmarkRunEpoch|BenchmarkRunEpochParallel|BenchmarkEpochSweep

# The packages whose exported surface is pinned in API.txt and guarded in
# CI (make apicheck). Everything under internal/ is explicitly unstable.
API_PKGS = ./tinygroups ./tinygroups/scenario

.PHONY: build test bench bench-json lint api apicheck smoke-examples ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-json reruns the hot-path and epoch-pipeline benchmarks with
# allocation reporting and records them as BENCH_hotpaths.json /
# BENCH_epoch.json — the repo's perf trajectory. Compare against the
# committed files (git diff BENCH_*.json) before merging perf-sensitive
# changes.
bench-json:
	$(GO) test -run=NONE -bench '$(HOTPATH_BENCH)' -benchmem -benchtime=200ms . \
		| $(GO) run ./cmd/benchjson > BENCH_hotpaths.json
	@echo "wrote BENCH_hotpaths.json"
	$(GO) test -run=NONE -bench '$(EPOCH_BENCH)' -benchmem -benchtime=200ms . \
		| $(GO) run ./cmd/benchjson > BENCH_epoch.json
	@echo "wrote BENCH_epoch.json"

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

# api regenerates the checked-in export listing of the stable packages.
# Run it (and review the diff) whenever the public surface changes.
api:
	@{ for p in $(API_PKGS); do echo "# $$p"; $(GO) doc -short "$$p"; echo; done; } > API.txt
	@echo "wrote API.txt"

# apicheck fails when the exported surface drifted from API.txt — the CI
# guard that makes every public-API change an explicit, reviewed diff.
apicheck:
	@{ for p in $(API_PKGS); do echo "# $$p"; $(GO) doc -short "$$p"; echo; done; } > API.txt.tmp; \
	if ! diff -u API.txt API.txt.tmp; then \
		rm -f API.txt.tmp; \
		echo "public API surface drifted — run 'make api' and commit the diff" >&2; exit 1; \
	fi; \
	rm -f API.txt.tmp

# smoke-examples builds and runs every example binary against the public
# API (output discarded; a non-zero exit fails the gate).
smoke-examples:
	@set -e; for d in examples/*/; do \
		echo "== $$d"; $(GO) run "./$$d" > /dev/null; \
	done

ci: build lint apicheck test smoke-examples bench
