# Local targets mirror .github/workflows/ci.yml exactly: `make ci` is the
# same gate CI applies.

GO ?= go

.PHONY: build test bench lint ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

ci: build lint test bench
