package tinygroups

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	disk "repro/internal/snapshot"
)

// copyDir snapshots a data directory's current on-disk bytes — the state a
// SIGKILL at that instant would leave behind (appends are plain writes, so
// the page cache, and hence these copies, hold everything).
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// replies captures everything a reader can observe about a System's state
// for a fixed probe set: the generation fingerprint and the full reply —
// value, routing info, error — of Get, Lookup and LookupBatch per key.
type replies struct {
	fp      string
	epoch   int
	lookup  map[string]string
	get     map[string]string
	batch   []string
	durKeys int
}

func observe(t *testing.T, s *System, probes []string) replies {
	t.Helper()
	ctx := context.Background()
	r := replies{fp: s.Fingerprint(), epoch: s.Epoch(), lookup: map[string]string{}, get: map[string]string{}}
	for _, k := range probes {
		info, err := s.Lookup(ctx, k)
		r.lookup[k] = fmt.Sprintf("%+v/%v", info, err)
		v, info, err := s.Get(ctx, k)
		r.get[k] = fmt.Sprintf("%q/%+v/%v", v, info, err)
	}
	out, err := s.LookupBatch(ctx, probes)
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range out {
		r.batch = append(r.batch, fmt.Sprintf("%+v/%v", br.Info, br.Err))
	}
	return r
}

// TestRestoreEquivalence is the PR's acceptance gate: a System restored
// from disk must report a byte-identical epoch fingerprint and
// byte-identical Lookup/Get/LookupBatch replies vs the System that saved
// it — across three epoch boundaries, with puts landing between epochs
// (op-log replay), restored at workers 1 and 4 regardless of the saver's
// worker count.
func TestRestoreEquivalence(t *testing.T) {
	const n = 96
	const epochs = 3
	dir := t.TempDir()
	saver, err := New(n, WithSeed(7), WithDataDir(dir), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	defer saver.Close()
	if saver.Durability().Recovered {
		t.Fatal("fresh data dir reported a recovery")
	}

	var probes []string
	for i := 0; i < 12; i++ {
		probes = append(probes, fmt.Sprintf("probe-%d", i))
	}
	ctx := context.Background()
	want := make([]replies, 0, epochs)
	dirs := make([]string, 0, epochs)
	for e := 1; e <= epochs; e++ {
		if _, err := saver.AdvanceEpoch(ctx); err != nil {
			t.Fatal(err)
		}
		// Puts after the boundary live only in the op log until the next
		// snapshot — restore must replay them.
		for i := 0; i < 4; i++ {
			key := fmt.Sprintf("probe-%d", (e-1)*4+i)
			if _, err := saver.Put(ctx, key, []byte(fmt.Sprintf("v%d-%d", e, i))); err != nil && !errors.Is(err, ErrUnreachable) {
				t.Fatal(err)
			}
		}
		w := observe(t, saver, probes)
		w.durKeys = int(saver.Durability().OplogAppends)
		want = append(want, w)
		dirs = append(dirs, copyDir(t, dir))
	}

	for ei, ddir := range dirs {
		for _, workers := range []int{1, 4} {
			// Private copy per restore: recovery checkpoints and the
			// continuity advance below write into the data dir.
			restored, err := New(n, WithSeed(7), WithDataDir(copyDir(t, ddir)), WithWorkers(workers))
			if err != nil {
				t.Fatalf("epoch %d workers %d: %v", ei+1, workers, err)
			}
			info := restored.Durability()
			if !info.Recovered {
				t.Fatalf("epoch %d workers %d: not recovered from disk", ei+1, workers)
			}
			got := observe(t, restored, probes)
			got.durKeys = want[ei].durKeys
			if !reflect.DeepEqual(got, want[ei]) {
				t.Fatalf("epoch %d workers %d: restored replies diverge:\n got %+v\nwant %+v", ei+1, workers, got, want[ei])
			}
			// And the restored system's future matches the saver's: its next
			// boundary is the fingerprint the saver reached at e+1.
			if ei+1 < len(want) {
				if _, err := restored.AdvanceEpoch(ctx); err != nil {
					t.Fatal(err)
				}
				if fp := restored.Fingerprint(); fp != want[ei+1].fp {
					t.Fatalf("epoch %d workers %d: post-restore advance diverges from saver's epoch %d", ei+1, workers, ei+2)
				}
			}
			restored.Close()
		}
	}
}

// A crash-copy taken mid-interval replays the op log; the recovery
// checkpoint folds it into a rewritten snapshot so a second crash in the
// same interval still recovers everything without unbounded log growth.
func TestRecoveryCheckpointFoldsOplog(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, err := New(64, WithSeed(3), WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdvanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	stored := 0
	for i := 0; i < 8; i++ {
		if _, err := s.Put(ctx, fmt.Sprintf("k%d", i), []byte{byte(i)}); err == nil {
			stored++
		}
	}
	// Abandon without Close: the op log was never fsynced, but its bytes
	// are on the page cache — a SIGKILL keeps them.
	crash := copyDir(t, dir)
	r1, err := New(64, WithSeed(3), WithDataDir(crash))
	if err != nil {
		t.Fatal(err)
	}
	d := r1.Durability()
	if !d.Recovered || int(d.ReplayedOps) != stored {
		t.Fatalf("first recovery: %+v (want %d replayed)", d, stored)
	}
	r1.Close()
	// Second recovery from the checkpointed dir: zero ops to replay, same
	// keys present.
	r2, err := New(64, WithSeed(3), WithDataDir(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	d = r2.Durability()
	if !d.Recovered || d.ReplayedOps != 0 {
		t.Fatalf("second recovery: %+v (want 0 replayed)", d)
	}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := r2.Get(ctx, k); err != nil && !errors.Is(err, ErrUnreachable) && !errors.Is(err, ErrNotFound) {
			t.Fatalf("get %s: %v", k, err)
		}
	}
}

// Crash matrix at the tinygroups layer: a torn op-log tail and a corrupt
// newest snapshot must both recover to the newest valid state.
func TestRecoveryCrashMatrix(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, err := New(64, WithSeed(5), WithDataDir(dir), WithSnapshotKeep(5))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for e := 0; e < 2; e++ {
		if _, err := s.AdvanceEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}
	fpAt2 := s.Fingerprint()
	if _, err := s.Put(ctx, "tail", []byte("torn")); err != nil && !errors.Is(err, ErrUnreachable) {
		t.Fatal(err)
	}

	t.Run("torn op-log tail", func(t *testing.T) {
		crash := copyDir(t, dir)
		logPath := filepath.Join(crash, "oplog-000000000002.tglog")
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(logPath, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
		r, err := New(64, WithSeed(5), WithDataDir(crash), WithSnapshotKeep(5))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		d := r.Durability()
		if !d.Recovered || d.DiscardedLogBytes == 0 {
			t.Fatalf("torn tail not surfaced: %+v", d)
		}
		if r.Fingerprint() != fpAt2 {
			t.Fatal("torn-tail recovery lost the epoch-2 generation")
		}
		// The torn put is gone — exactly the unacknowledged-write semantics.
		if _, _, err := r.Get(ctx, "tail"); err == nil {
			t.Fatal("torn put survived")
		}
	})

	t.Run("corrupt newest snapshot", func(t *testing.T) {
		crash := copyDir(t, dir)
		name := filepath.Join(crash, "snap-000000000002.tgsnap")
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/3] ^= 0xFF
		if err := os.WriteFile(name, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := New(64, WithSeed(5), WithDataDir(crash), WithSnapshotKeep(5))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		d := r.Durability()
		if !d.Recovered || d.SkippedSnapshots != 1 || d.SnapshotEpoch > 1 {
			t.Fatalf("no fallback to epoch 1: %+v", d)
		}
		if r.Epoch() != 1 {
			t.Fatalf("recovered epoch %d, want 1", r.Epoch())
		}
	})

	t.Run("all snapshots corrupt cold-boots", func(t *testing.T) {
		crash := copyDir(t, dir)
		entries, _ := os.ReadDir(crash)
		for _, e := range entries {
			if filepath.Ext(e.Name()) == ".tgsnap" {
				if err := os.WriteFile(filepath.Join(crash, e.Name()), []byte("junk"), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		r, err := New(64, WithSeed(5), WithDataDir(crash), WithSnapshotKeep(5))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if r.Durability().Recovered {
			t.Fatal("recovered from junk")
		}
		if r.Epoch() != 0 {
			t.Fatalf("cold boot at epoch %d", r.Epoch())
		}
	})
}

// Changing a determinism-relevant option against an existing data dir must
// fail loudly, never silently serve a different universe.
func TestRecoveryRejectsConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := New(64, WithSeed(5), WithDataDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := New(64, WithSeed(6), WithDataDir(dir)); !errors.Is(err, disk.ErrConfigMismatch) {
		t.Fatalf("seed change: got %v, want ErrConfigMismatch", err)
	}
	if _, err := New(64, WithSeed(5), WithBeta(0.1), WithDataDir(dir)); !errors.Is(err, disk.ErrConfigMismatch) {
		t.Fatalf("beta change: got %v, want ErrConfigMismatch", err)
	}
	// Worker count is explicitly NOT part of the config key.
	r, err := New(64, WithSeed(5), WithDataDir(dir), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Durability().Recovered {
		t.Fatal("worker-count change blocked recovery")
	}
	r.Close()
}

// SaveSnapshot is the on-demand checkpoint; retention prunes old epochs.
func TestSaveSnapshotAndRetention(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	s, err := New(64, WithSeed(9), WithDataDir(dir), WithSnapshotKeep(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for e := 0; e < 4; e++ {
		if _, err := s.AdvanceEpoch(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	snaps := 0
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tgsnap" {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("retention kept %d snapshots, want 2", snaps)
	}
	d := s.Durability()
	if d.SnapshotEpoch != 4 || d.SnapshotsWritten != 6 { // boot + 4 boundaries + explicit save
		t.Fatalf("unexpected durability counters: %+v", d)
	}
	// Durability off: SaveSnapshot is a config error.
	plain, err := New(64, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.SaveSnapshot(); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig", err)
	}
	if plain.Durability().Enabled {
		t.Fatal("durability reported enabled without a data dir")
	}
}
