//go:build race

package tinygroups

// raceEnabled reports whether this test binary was built with the race
// detector. Alloc-count gates skip under it: sync.Pool intentionally drops
// items in race mode to widen interleavings, so pooled paths that are
// allocation-free in normal builds are not in race builds.
const raceEnabled = true
