package tinygroups

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// This file is the public two-phase epoch advance: the shard-local half of
// a cluster's coordinated flip. AdvanceEpoch remains the one-shot form —
// BuildEpoch + CommitEpoch split the same construction at its natural seam
// so an external coordinator can build every shard's upcoming generation
// first and flip them together only once every build succeeded.
//
// The protocol invariant that keeps a cluster deterministic: a shard that
// builds and then aborts is byte-identical to a shard that never built.
// AbortEpoch rewinds the construction rng to its pre-build state, so a
// retried round replays the identical generation on every shard no matter
// which shards built, aborted, or failed in earlier rounds.

// BuildEpoch is phase one of the two-phase epoch advance: it runs the
// entire §III construction of the upcoming generation off to the side and
// parks the result, WITHOUT flipping the read snapshot — reads keep
// resolving against the current epoch until CommitEpoch. Calling it again
// while a build is pending is idempotent: the pending build's Stats return
// and nothing is recomputed.
//
// ctx is polled between construction batches; on cancellation the build
// aborts cleanly (nothing pending, snapshot untouched, rng rewound) and
// the error wraps ctx.Err().
func (s *System) BuildEpoch(ctx context.Context) (Stats, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return Stats{}, ErrClosed
	}
	est, err := s.dyn.BuildEpochContext(ctx)
	if err != nil {
		return Stats{}, fmt.Errorf("tinygroups: epoch %d build aborted: %w", s.dyn.Epoch()+1, err)
	}
	return statsFrom(est), nil
}

// CommitEpoch is phase two: it flips the pending generation in as the
// serving one — an O(1) snapshot swap, exactly the flip AdvanceEpoch
// performs — and returns its construction Stats. It fails with
// ErrNoPending when no BuildEpoch result is parked.
func (s *System) CommitEpoch() (Stats, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return Stats{}, ErrClosed
	}
	est, ok := s.dyn.CommitEpoch()
	if !ok {
		return Stats{}, ErrNoPending
	}
	return s.publishLocked(est), nil
}

// AbortEpoch discards a pending BuildEpoch result and rewinds the
// construction randomness to its pre-build state, so the next build
// replays the identical generation the discarded one held. It reports
// whether there was a pending build to discard; aborting with nothing
// pending is a no-op, not an error.
func (s *System) AbortEpoch() (aborted bool, err error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return false, ErrClosed
	}
	return s.dyn.AbortPending(), nil
}

// HasPendingEpoch reports whether a built-but-uncommitted generation is
// parked (BuildEpoch succeeded and neither CommitEpoch nor AbortEpoch has
// run).
func (s *System) HasPendingEpoch() bool {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.dyn.HasPending()
}

// Fingerprint returns a hex-encoded digest of the serving generation:
// epoch index, the full ID ring, and both group graphs (leaders, group
// flags, members with their corruption bits). Two Systems serve
// byte-identical state if and only if their fingerprints match — the
// equality the cluster determinism gate checks across shards and against
// the single-process system. It reads the epoch snapshot lock-free.
func (s *System) Fingerprint() string {
	snap := s.snap.Load()
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(snap.gen.Epoch))
	h.Write(buf[:])
	r := snap.gen.Ring
	for i := 0; i < r.Len(); i++ {
		binary.BigEndian.PutUint64(buf[:], uint64(r.At(i)))
		h.Write(buf[:])
	}
	for _, g := range snap.gen.Graphs {
		if g == nil {
			continue
		}
		for i := 0; i < g.N(); i++ {
			grp := g.GroupAt(i)
			binary.BigEndian.PutUint64(buf[:], uint64(grp.Leader))
			h.Write(buf[:])
			flags := byte(0)
			if grp.Bad {
				flags |= 1
			}
			if grp.Confused {
				flags |= 2
			}
			h.Write([]byte{flags})
			for _, m := range grp.Members {
				binary.BigEndian.PutUint64(buf[:], uint64(m.ID))
				h.Write(buf[:])
				if m.Bad {
					h.Write([]byte{1})
				} else {
					h.Write([]byte{0})
				}
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
