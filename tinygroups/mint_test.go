package tinygroups

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func newMintSystem(t *testing.T, opts ...Option) *System {
	t.Helper()
	sys, err := New(64, append([]Option{WithSeed(7), WithMintWork(1 << 8)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// TestMintDeterministicAcrossWorkers: with retargeting off, a minted ID is
// a pure function of (seed, epoch, miner) at every worker count.
func TestMintDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	var ref MintResult
	for i, workers := range []int{1, 2, 4, 16} {
		sys := newMintSystem(t, WithWorkers(workers))
		got, err := sys.Mint(ctx, "alice")
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if i == 0 {
			ref = got
			continue
		}
		if got.ID != ref.ID || !bytes.Equal(got.Sigma, ref.Sigma) || got.Attempts != ref.Attempts || got.Epoch != ref.Epoch {
			t.Fatalf("workers %d: mint diverged: %+v vs %+v", workers, got, ref)
		}
	}
}

// TestMintBatchDistinctAndStable: batch items are distinct independent
// solves, and the batch equals the per-index stream of a fresh system.
func TestMintBatchDistinctAndStable(t *testing.T) {
	ctx := context.Background()
	sys := newMintSystem(t)
	batch, err := sys.MintBatch(ctx, "bob", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 4 {
		t.Fatalf("got %d results, want 4", len(batch))
	}
	seen := map[Point]bool{}
	for _, r := range batch {
		if seen[r.ID] {
			t.Fatalf("duplicate minted ID %v in batch", r.ID)
		}
		seen[r.ID] = true
	}
	again, err := newMintSystem(t).MintBatch(ctx, "bob", 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := range batch {
		if batch[k].ID != again[k].ID || !bytes.Equal(batch[k].Sigma, again[k].Sigma) {
			t.Fatalf("batch item %d not stable across systems", k)
		}
	}
}

// TestMintVerifyAndExpiry: a fresh mint verifies; after an epoch advance
// the rotated string must reject it — the paper's ID expiry.
func TestMintVerifyAndExpiry(t *testing.T) {
	ctx := context.Background()
	sys := newMintSystem(t)
	res, err := sys.Mint(ctx, "carol")
	if err != nil {
		t.Fatal(err)
	}
	claims := []MintClaim{
		{ID: res.ID, Sigma: res.Sigma},
		{ID: res.ID + 1, Sigma: res.Sigma}, // forged ID
	}
	verdicts, err := sys.VerifyMints(ctx, claims)
	if err != nil {
		t.Fatal(err)
	}
	if !verdicts[0] || verdicts[1] {
		t.Fatalf("verdicts = %v, want [true false]", verdicts)
	}
	if _, err := sys.AdvanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	verdicts, err = sys.VerifyMints(ctx, claims[:1])
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0] {
		t.Fatalf("claim from epoch %d still verifies after the string rotated", res.Epoch)
	}
}

// TestMintErrors covers the failure surface: bad count, closed system,
// cancelled context.
func TestMintErrors(t *testing.T) {
	ctx := context.Background()
	sys := newMintSystem(t)
	if _, err := sys.MintBatch(ctx, "dave", 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("count 0: got %v, want ErrBadConfig", err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := sys.Mint(cancelled, "dave"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled mint: got %v", err)
	}
	sys.Close()
	if _, err := sys.Mint(ctx, "dave"); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed mint: got %v, want ErrClosed", err)
	}
	if _, err := sys.VerifyMints(ctx, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed verify: got %v, want ErrClosed", err)
	}
}

// TestMintRetargetWiring exercises the deterministic edges of the epoch
// retarget: an unreachably long target steps the work down by exactly the
// 4× clamp, an instant target steps it up, and without retargeting the
// work never moves.
func TestMintRetargetWiring(t *testing.T) {
	ctx := context.Background()

	down := newMintSystem(t, WithMintRetarget(time.Nanosecond))
	if _, err := down.Mint(ctx, "erin"); err != nil {
		t.Fatal(err)
	}
	if _, err := down.AdvanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	// Any real solve takes far longer than 1ns, so the ratio clamps at
	// 1/MaxStep: work = 256/4 exactly.
	if got := down.MintWork(); got != 64 {
		t.Fatalf("retargeted work = %g, want 64", got)
	}

	up := newMintSystem(t, WithMintRetarget(time.Hour))
	if _, err := up.Mint(ctx, "erin"); err != nil {
		t.Fatal(err)
	}
	if _, err := up.AdvanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	if got := up.MintWork(); got != 1024 {
		t.Fatalf("retargeted work = %g, want 1024", got)
	}

	fixed := newMintSystem(t)
	if _, err := fixed.Mint(ctx, "erin"); err != nil {
		t.Fatal(err)
	}
	if _, err := fixed.AdvanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	if got := fixed.MintWork(); got != 256 {
		t.Fatalf("fixed work moved to %g", got)
	}
}
