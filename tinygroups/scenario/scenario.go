// Package scenario is the public, streaming face of the reproduction's
// experiment harness: every evaluation table of the paper (e1..e20) is a
// registered Scenario that emits its header, rows and interpretation
// notes *as they are produced* — epoch-chained scenarios surface each
// epoch's row the moment it is measured, and cancelling the context stops
// the remaining work between rows.
//
//	reg := scenario.Default()
//	err := reg.Run(ctx, "e4", scenario.Options{Quick: true, Seed: 1},
//		scenario.HandlerFuncs{OnRow: func(cells []string) { fmt.Println(cells) }})
//
// Registries are map-backed and reject duplicate IDs at Register, so a
// scenario ID is a stable handle. Render is the buffered convenience for
// callers that want the aligned table written to an io.Writer.
package scenario

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// Options tune a scenario run. The zero value runs the full sweep with
// seed 0 at GOMAXPROCS parallelism.
type Options struct {
	// Quick shrinks sweeps for smoke runs and tests.
	Quick bool
	// Seed drives all randomness; every trial's private seed is derived
	// from it by hashing, so tables are reproducible bit for bit.
	Seed int64
	// Parallel caps concurrent trials (0 = GOMAXPROCS); it affects
	// wall-clock only, never results.
	Parallel int
	// Trials multiplies the repetitions behind sampled table cells.
	Trials int
}

// Handler receives a scenario's output incrementally: one Header call,
// then Rows in order, then Notes. Implementations must not retain the
// slices passed to them.
type Handler interface {
	Header(cols ...string)
	Row(cells ...string)
	Note(text string)
}

// HandlerFuncs adapts plain functions to Handler; nil fields drop their
// events.
type HandlerFuncs struct {
	OnHeader func(cols []string)
	OnRow    func(cells []string)
	OnNote   func(text string)
}

// Header implements Handler.
func (h HandlerFuncs) Header(cols ...string) {
	if h.OnHeader != nil {
		h.OnHeader(cols)
	}
}

// Row implements Handler.
func (h HandlerFuncs) Row(cells ...string) {
	if h.OnRow != nil {
		h.OnRow(cells)
	}
}

// Note implements Handler.
func (h HandlerFuncs) Note(text string) {
	if h.OnNote != nil {
		h.OnNote(text)
	}
}

// StreamFunc produces one scenario's output. It returns a non-nil error
// only when ctx is cancelled.
type StreamFunc func(ctx context.Context, o Options, h Handler) error

// Scenario is one registered, runnable scenario.
type Scenario struct {
	ID     string
	Title  string
	Stream StreamFunc
}

// ErrUnknownScenario is returned by Run/Render for IDs never registered.
var ErrUnknownScenario = errors.New("scenario: unknown scenario ID")

// Registry is a map-backed scenario index preserving registration order.
// The zero value is an empty, usable registry.
type Registry struct {
	m     map[string]Scenario
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: map[string]Scenario{}}
}

// Register adds a scenario, rejecting empty IDs, nil Stream functions and
// duplicate IDs.
func (r *Registry) Register(s Scenario) error {
	if s.ID == "" || s.Stream == nil {
		return fmt.Errorf("scenario: Register needs an ID and a Stream func (got ID %q)", s.ID)
	}
	if r.m == nil {
		r.m = map[string]Scenario{}
	}
	if _, dup := r.m[s.ID]; dup {
		return fmt.Errorf("scenario: duplicate scenario ID %q", s.ID)
	}
	r.m[s.ID] = s
	r.order = append(r.order, s.ID)
	return nil
}

// List returns every scenario in registration order.
func (r *Registry) List() []Scenario {
	out := make([]Scenario, len(r.order))
	for i, id := range r.order {
		out[i] = r.m[id]
	}
	return out
}

// Lookup finds a scenario by ID in O(1).
func (r *Registry) Lookup(id string) (Scenario, bool) {
	s, ok := r.m[id]
	return s, ok
}

// Run streams the scenario's output into h. It fails with
// ErrUnknownScenario for unregistered IDs and with ctx.Err() when the
// context cancels mid-stream.
func (r *Registry) Run(ctx context.Context, id string, o Options, h Handler) error {
	s, ok := r.m[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownScenario, id)
	}
	return s.Stream(ctx, o, h)
}

// Render runs the scenario to completion and writes the column-aligned
// table followed by its notes to w — the buffered convenience over Run.
func (r *Registry) Render(ctx context.Context, id string, o Options, w io.Writer) error {
	var tab metrics.Table
	var notes []string
	err := r.Run(ctx, id, o, HandlerFuncs{
		OnHeader: func(cols []string) { tab.Header = append([]string(nil), cols...) },
		OnRow:    func(cells []string) { tab.Append(append([]string(nil), cells...)...) },
		OnNote:   func(text string) { notes = append(notes, text) },
	})
	if err != nil {
		return err
	}
	if _, err := io.WriteString(w, tab.String()); err != nil {
		return err
	}
	for _, n := range notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Default returns a registry holding every experiment of the paper
// reproduction (e1..e20), in DESIGN.md order, adapted to the streaming
// Scenario interface.
func Default() *Registry {
	reg := NewRegistry()
	for _, e := range experiments.All() {
		e := e
		if err := reg.Register(Scenario{
			ID:    e.ID,
			Title: e.Title,
			Stream: func(ctx context.Context, o Options, h Handler) error {
				return e.Stream(ctx, experiments.Options{
					Quick: o.Quick, Seed: o.Seed, Parallel: o.Parallel, Trials: o.Trials,
				}, h)
			},
		}); err != nil {
			panic(err) // the built-in registry is statically duplicate-free
		}
	}
	return reg
}
