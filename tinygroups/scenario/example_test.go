package scenario_test

import (
	"context"
	"fmt"

	"repro/tinygroups/scenario"
)

// ExampleRegistry_Run registers a custom scenario and streams its output
// through a handler — the same interface the built-in e1..e21 use.
func ExampleRegistry_Run() {
	reg := scenario.NewRegistry()
	err := reg.Register(scenario.Scenario{
		ID:    "demo",
		Title: "a two-row demo table",
		Stream: func(ctx context.Context, o scenario.Options, h scenario.Handler) error {
			h.Header("x", "x^2")
			for x := 1; x <= 2; x++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				h.Row(fmt.Sprint(x), fmt.Sprint(x*x))
			}
			h.Note("rows stream as they are produced")
			return nil
		},
	})
	if err != nil {
		panic(err)
	}

	err = reg.Run(context.Background(), "demo", scenario.Options{},
		scenario.HandlerFuncs{
			OnRow:  func(cells []string) { fmt.Println("row:", cells) },
			OnNote: func(text string) { fmt.Println("note:", text) },
		})
	fmt.Println("err:", err)
	// Output:
	// row: [1 1]
	// row: [2 4]
	// note: rows stream as they are produced
	// err: <nil>
}

// ExampleDefault shows the built-in registry holding every experiment of
// the paper reproduction.
func ExampleDefault() {
	reg := scenario.Default()
	list := reg.List()
	fmt.Println("scenarios:", len(list))
	fmt.Println("first:", list[0].ID)
	_, ok := reg.Lookup("e4")
	fmt.Println("e4 registered:", ok)
	// Output:
	// scenarios: 21
	// first: e1
	// e4 registered: true
}
