package scenario

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestDefaultRegistryHasAllExperiments(t *testing.T) {
	reg := Default()
	list := reg.List()
	if len(list) != 21 {
		t.Fatalf("default registry has %d scenarios, want 21", len(list))
	}
	if list[0].ID != "e1" || list[20].ID != "e21" {
		t.Errorf("registration order broken: first %s, last %s", list[0].ID, list[19].ID)
	}
	for _, s := range list {
		got, ok := reg.Lookup(s.ID)
		if !ok || got.ID != s.ID || got.Title == "" {
			t.Errorf("Lookup(%q) failed", s.ID)
		}
	}
}

func TestRegisterRejectsDuplicatesAndEmpty(t *testing.T) {
	reg := NewRegistry()
	stream := func(context.Context, Options, Handler) error { return nil }
	if err := reg.Register(Scenario{ID: "x", Title: "t", Stream: stream}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Scenario{ID: "x", Title: "again", Stream: stream}); err == nil {
		t.Error("duplicate ID accepted")
	}
	if err := reg.Register(Scenario{Stream: stream}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := reg.Register(Scenario{ID: "y"}); err == nil {
		t.Error("nil Stream accepted")
	}
}

func TestRunUnknownScenario(t *testing.T) {
	err := Default().Run(context.Background(), "e99", Options{}, HandlerFuncs{})
	if !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("err = %v, want ErrUnknownScenario", err)
	}
}

// TestRunStreamsRows drives a cheap real scenario end to end through the
// public streaming surface.
func TestRunStreamsRows(t *testing.T) {
	var header []string
	rows, notes := 0, 0
	err := Default().Run(context.Background(), "e13", Options{Quick: true, Seed: 1}, HandlerFuncs{
		OnHeader: func(cols []string) { header = append([]string(nil), cols...) },
		OnRow:    func([]string) { rows++ },
		OnNote:   func(string) { notes++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(header) == 0 || header[0] != "|G|" {
		t.Errorf("header = %v", header)
	}
	if rows != 6 || notes == 0 {
		t.Errorf("rows = %d (want 6), notes = %d (want > 0)", rows, notes)
	}
}

// TestRunCancellationStopsStream cancels an epoch-chained scenario after
// its first row: the stream must stop early with the context error.
func TestRunCancellationStopsStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows := 0
	err := Default().Run(ctx, "e4", Options{Quick: true, Seed: 1}, HandlerFuncs{
		OnRow: func([]string) { rows++; cancel() },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rows != 1 {
		t.Errorf("stream emitted %d rows after cancellation, want 1", rows)
	}
}

// TestRenderMatchesExperimentTable: the buffered Render output equals the
// aligned table of the underlying experiment plus its notes.
func TestRenderMatchesExperimentTable(t *testing.T) {
	var b strings.Builder
	if err := Default().Render(context.Background(), "e13", Options{Quick: true, Seed: 1}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "behavior") {
		t.Errorf("rendered table missing header:\n%s", out)
	}
	if !strings.Contains(out, "note: ") {
		t.Errorf("rendered output missing notes:\n%s", out)
	}
	// Streaming and buffered forms must agree row for row.
	var streamed [][]string
	if err := Default().Run(context.Background(), "e13", Options{Quick: true, Seed: 1}, HandlerFuncs{
		OnRow: func(cells []string) { streamed = append(streamed, append([]string(nil), cells...)) },
	}); err != nil {
		t.Fatal(err)
	}
	for _, row := range streamed {
		for _, cell := range row {
			if !strings.Contains(out, cell) {
				t.Fatalf("rendered output missing streamed cell %q", cell)
			}
		}
	}
}

// TestZeroValueRegistry: the zero value must be usable, not panic.
func TestZeroValueRegistry(t *testing.T) {
	var reg Registry
	if _, ok := reg.Lookup("x"); ok {
		t.Error("empty registry resolved an ID")
	}
	if err := reg.Run(context.Background(), "x", Options{}, HandlerFuncs{}); !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("Run on empty registry: %v", err)
	}
	if err := reg.Register(Scenario{ID: "x", Title: "t",
		Stream: func(context.Context, Options, Handler) error { return nil }}); err != nil {
		t.Fatalf("Register on zero value: %v", err)
	}
	if _, ok := reg.Lookup("x"); !ok {
		t.Error("registered scenario not found")
	}
}
