package tinygroups

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// countdownCtx is a context whose Err() flips to Canceled after a fixed
// number of polls — a deterministic way to cancel AdvanceEpoch at a chosen
// depth inside the construction, without racing a timer.
type countdownCtx struct {
	remaining atomic.Int64
}

var neverDone = make(chan struct{})

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return neverDone }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestAdvanceEpochCancelledMidConstruction is the acceptance check for
// context-aware epochs: cancellation fires *between per-ID construction
// batches* (after the entry checks pass), the epoch aborts with a
// context error, the generation never swaps, and the system keeps
// serving.
func TestAdvanceEpochCancelledMidConstruction(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 512, 0.05, WithSeed(11))
	// Three successful polls: AdvanceEpoch entry, placement, first
	// construction batch. The second batch's poll cancels — mid-way
	// through the per-ID fan-out of a 512-ID generation.
	cd := &countdownCtx{}
	cd.remaining.Store(3)
	_, err := s.AdvanceEpoch(cd)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in its chain", err)
	}
	if cd.remaining.Load() >= 0 {
		t.Fatalf("cancellation never reached the construction (remaining %d)", cd.remaining.Load())
	}
	if s.Epoch() != 0 {
		t.Fatalf("aborted epoch advanced the counter to %d", s.Epoch())
	}
	// The system must remain fully serviceable after the abort.
	if _, err := s.Lookup(ctx, "still-alive"); err != nil && !errors.Is(err, ErrUnreachable) {
		t.Fatalf("post-abort lookup: %v", err)
	}
	st, err := s.AdvanceEpoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || st.Searches == 0 {
		t.Errorf("post-abort epoch malformed: %+v", st)
	}
	if st.SearchFailRate > 0.15 {
		t.Errorf("post-abort epoch degraded: fail rate %.3f", st.SearchFailRate)
	}
}

// TestAdvanceEpochPreCancelled: an already-cancelled context aborts before
// any work.
func TestAdvanceEpochPreCancelled(t *testing.T) {
	s := newTest(t, 256, 0.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.AdvanceEpoch(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Epoch() != 0 {
		t.Errorf("epoch advanced to %d", s.Epoch())
	}
}

// TestOperationsHonorContext: the keyed operations fail fast on a
// cancelled context without touching the store.
func TestOperationsHonorContext(t *testing.T) {
	s := newTest(t, 256, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Put(ctx, "k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Errorf("Put: %v", err)
	}
	if _, _, err := s.Get(context.Background(), "k"); !errors.Is(err, ErrNotFound) {
		t.Error("cancelled Put still stored the value")
	}
	if _, err := s.Lookup(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Errorf("Lookup: %v", err)
	}
	if _, err := s.LookupBatch(ctx, []string{"k"}); !errors.Is(err, context.Canceled) {
		t.Errorf("LookupBatch: %v", err)
	}
}
