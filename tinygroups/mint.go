package tinygroups

import (
	"context"
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/pow"
	"repro/internal/ring"
)

// MintResult is one solved identity puzzle: the ID admitted for the
// current epoch, the pre-image σ that backs it, and the solve cost.
type MintResult struct {
	// ID is f(g(σ⊕r)) — uniform in the ID space even for an adversary that
	// cherry-picks inputs (§IV-A's two-hash composition).
	ID Point
	// Sigma is the pre-image to present for verification. It stays valid
	// only while the epoch string that minted it is current.
	Sigma []byte
	// Epoch is the epoch the ID was minted against.
	Epoch int
	// Attempts is the number of hash attempts the solve consumed.
	Attempts int
}

// MintClaim pairs a claimed ID with its pre-image for VerifyMints.
type MintClaim struct {
	ID    Point
	Sigma []byte
}

// Mint solves the §IV identity puzzle against the current epoch string and
// returns the resulting ID. The solve runs on the caller's goroutine plus
// the configured worker fan-out (WithWorkers), entirely on the lock-free
// read path: it never blocks writers and writers never block it, though an
// epoch advance that lands mid-solve leaves the result minted against the
// epoch that started it (verification against the new string then fails —
// exactly the expiry the paper wants).
//
// With retargeting disabled (the default), the result is a pure function
// of (system seed, epoch, miner): byte-identical at every worker count.
// ctx cancellation aborts the solve at chunk granularity.
func (s *System) Mint(ctx context.Context, miner string) (MintResult, error) {
	out, err := s.MintBatch(ctx, miner, 1)
	if err != nil {
		return MintResult{}, err
	}
	return out[0], nil
}

// MintBatch mints count distinct IDs for one miner in a single call. Each
// item solves an independent puzzle — item k's solver stream is derived
// from (seed, epoch, miner, k) — so a batch costs count full solves, and
// the batch is the same pure function of its coordinates as count single
// Mints. Items are returned in index order.
func (s *System) MintBatch(ctx context.Context, miner string, count int) ([]MintResult, error) {
	if count < 1 {
		return nil, fmt.Errorf("%w: mint count %d (need ≥ 1)", ErrBadConfig, count)
	}
	if s.closed.Load() {
		return nil, ErrClosed
	}
	snap := s.snap.Load()
	m := &snap.mint
	// Budget: 64× the expected attempts per solution leaves a no-solution
	// probability of e^-64 per item; floor it so tiny difficulties still
	// get a real search space.
	budget := int(m.work * 64)
	if budget < 1<<16 {
		budget = 1 << 16
	}
	minerSeed := engine.TrialSeed(m.seed, miner, 0)
	out := make([]MintResult, 0, count)
	start := time.Now()
	for k := 0; k < count; k++ {
		sol, ok, err := pow.SolveShardedContext(ctx, m.r, m.p, engine.TrialSeed(minerSeed, "item", k), budget, s.cfg.workers)
		s.mintAttempts.Add(int64(sol.Attempts))
		if err != nil {
			return out, err
		}
		if !ok {
			return out, fmt.Errorf("%w: no solution in %d attempts at work %g", ErrMintFailed, budget, m.work)
		}
		out = append(out, MintResult{
			ID: Point(sol.ID), Sigma: sol.Sigma, Epoch: snap.gen.Epoch, Attempts: sol.Attempts,
		})
	}
	// One batch = count solves for the retargeting telemetry; recording
	// after the loop keeps the mean solve time exact per item.
	s.mintSolves.Add(int64(count))
	s.mintNanos.Add(int64(time.Since(start)))
	return out, nil
}

// VerifyMints checks claimed identities against the current epoch string
// on the configured worker fan-out and returns per-claim verdicts in input
// order. Claims minted in an earlier epoch fail — the paper's ID expiry.
// Like Mint it runs entirely on the lock-free read path.
func (s *System) VerifyMints(ctx context.Context, claims []MintClaim) ([]bool, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	snap := s.snap.Load()
	pc := make([]pow.Claim, len(claims))
	for i, c := range claims {
		pc[i] = pow.Claim{ID: ring.Point(c.ID), Sigma: c.Sigma}
	}
	return pow.VerifyBatch(pc, snap.mint.r, snap.mint.p, s.cfg.workers), nil
}

// MintWork returns the current mint difficulty in expected hash attempts
// per ID — fixed at WithMintWork, or the retargeted value once
// WithMintRetarget is enabled. Lock-free.
func (s *System) MintWork() float64 { return s.snap.Load().mint.work }
