package tinygroups

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// KV is one key/value pair of a PutBatch.
type KV struct {
	Key   string
	Value []byte
}

// BatchResult is one key's outcome within a batch operation: Err is nil,
// ErrUnreachable, or a context error, and Info carries the routing cost
// either way.
type BatchResult struct {
	Info LookupInfo
	Err  error
}

// batchChunk bounds how many keys are fanned out between context polls.
const batchChunk = 1024

// searchBatch fans one routed search per key across short-lived reader
// goroutines, all resolving against the same pinned snapshot, and fills
// results by key index. Per-key randomness is the same hash-derived
// (epoch, key) stream single-key reads use, so out[i] is byte-identical
// to Lookup(keys[i]) and independent of the fan-out width; observer
// events are emitted in key order afterwards.
func (s *System) searchBatch(ctx context.Context, op Op, keys []string) ([]BatchResult, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	snap := s.snap.Load()
	workers := s.cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for lo := 0; lo < len(keys); lo += batchChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+batchChunk, len(keys))
		w := min(workers, hi-lo)
		if w == 1 {
			sc := s.getScratch()
			for idx := lo; idx < hi; idx++ {
				info, err := snap.lookupAt(keys[idx], sc)
				out[idx] = BatchResult{Info: info, Err: err}
			}
			s.putScratch(sc)
			continue
		}
		var next atomic.Int64
		next.Store(int64(lo))
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sc := s.getScratch()
				defer s.putScratch(sc)
				for {
					idx := int(next.Add(1)) - 1
					if idx >= hi {
						return
					}
					info, err := snap.lookupAt(keys[idx], sc)
					out[idx] = BatchResult{Info: info, Err: err}
				}
			}()
		}
		wg.Wait()
	}
	if obs := s.cfg.observer; obs != nil {
		for i, br := range out {
			obs.ObserveSearch(SearchEvent{
				Op: op, Key: keys[i], OK: br.Err == nil,
				Owner: br.Info.Owner, Hops: br.Info.Hops, Messages: br.Info.Messages,
			})
		}
	}
	return out, nil
}

// LookupBatch routes every key concurrently against one pinned epoch
// snapshot and returns per-key results in key order. It is lock-free like
// Lookup — safe from any goroutine, including during a live AdvanceEpoch —
// and each out[i] equals what Lookup(keys[i]) would return against the
// same epoch. The call-level error is non-nil only for ErrClosed or
// context cancellation.
func (s *System) LookupBatch(ctx context.Context, keys []string) ([]BatchResult, error) {
	return s.searchBatch(ctx, OpLookup, keys)
}

// PutBatch stores every pair whose owner is securely reachable, routing
// all keys concurrently. Per-key results report which puts landed;
// semantics per key match Put. PutBatch is a write: concurrent calls are
// safe but serialize on the writer mutex.
func (s *System) PutBatch(ctx context.Context, pairs []KV) ([]BatchResult, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	keys := make([]string, len(pairs))
	for i, kv := range pairs {
		keys[i] = kv.Key
	}
	out, err := s.searchBatch(ctx, OpPut, keys)
	if err != nil {
		return nil, err
	}
	for i, br := range out {
		if br.Err != nil {
			continue
		}
		v := make([]byte, len(pairs[i].Value))
		copy(v, pairs[i].Value)
		if err := s.appendOpLocked(pairs[i].Key, v); err != nil {
			return nil, err
		}
		s.store.Store(pairs[i].Key, v)
	}
	return out, nil
}
