package tinygroups

import (
	"context"

	"repro/internal/engine"
	"repro/internal/groups"
)

// KV is one key/value pair of a PutBatch.
type KV struct {
	Key   string
	Value []byte
}

// BatchResult is one key's outcome within a batch operation: Err is nil,
// ErrUnreachable, or a context error, and Info carries the routing cost
// either way.
type BatchResult struct {
	Info LookupInfo
	Err  error
}

// batchChunk bounds how many keys are fanned out between context polls.
const batchChunk = 1024

// searchBatch fans one routed search per key across the system's
// persistent worker pool and fills results by key index. Per-key
// randomness comes from a hash-derived stream (one root draw from the
// system rng per batch), so results are deterministic and independent of
// the worker count; observer events are emitted in key order afterwards.
func (s *System) searchBatch(ctx context.Context, op Op, keys []string) ([]BatchResult, error) {
	if s.closed {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]BatchResult, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	batchSeed := s.rng.Int63()
	pool := s.dyn.Pool()
	if len(s.batchSc) < pool.Workers() {
		s.batchSc = make([]groups.SearchScratch, pool.Workers())
	}
	g := s.dyn.Graphs()[0]
	r := g.Overlay().Ring()
	for lo := 0; lo < len(keys); lo += batchChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+batchChunk, len(keys))
		pool.ForEach(hi-lo, func(worker, i int) {
			idx := lo + i
			rng := engine.NewStream(engine.TrialSeed(batchSeed, "batch", idx))
			src := r.At(rng.Intn(r.Len()))
			p := keyHash.PointString(keys[idx])
			res := g.SearchOutcome(src, p, &s.batchSc[worker])
			info := LookupInfo{Hops: res.Hops, Messages: res.Messages}
			if !res.OK {
				out[idx] = BatchResult{Info: info, Err: ErrUnreachable}
				return
			}
			oi := res.LastRank
			if oi < 0 {
				oi = r.SuccessorIndex(p)
			}
			info.Owner = Point(r.At(oi))
			out[idx] = BatchResult{Info: info}
		})
	}
	if obs := s.cfg.observer; obs != nil {
		for i, br := range out {
			obs.ObserveSearch(SearchEvent{
				Op: op, Key: keys[i], OK: br.Err == nil,
				Owner: br.Info.Owner, Hops: br.Info.Hops, Messages: br.Info.Messages,
			})
		}
	}
	return out, nil
}

// LookupBatch routes every key concurrently over the system's worker pool
// and returns per-key results in key order. It amortizes the fan-out cost
// of many lookups; semantics per key match Lookup. The call-level error is
// non-nil only for ErrClosed or context cancellation.
func (s *System) LookupBatch(ctx context.Context, keys []string) ([]BatchResult, error) {
	return s.searchBatch(ctx, OpLookup, keys)
}

// PutBatch stores every pair whose owner is securely reachable, routing
// all keys concurrently over the worker pool. Per-key results report which
// puts landed; semantics per key match Put.
func (s *System) PutBatch(ctx context.Context, pairs []KV) ([]BatchResult, error) {
	keys := make([]string, len(pairs))
	for i, kv := range pairs {
		keys[i] = kv.Key
	}
	out, err := s.searchBatch(ctx, OpPut, keys)
	if err != nil {
		return nil, err
	}
	for i, br := range out {
		if br.Err != nil {
			continue
		}
		v := make([]byte, len(pairs[i].Value))
		copy(v, pairs[i].Value)
		s.store[pairs[i].Key] = v
	}
	return out, nil
}
