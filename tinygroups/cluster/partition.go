// Package cluster partitions the tinygroups ID ring across shard daemons
// and routes requests to the shard that owns each key.
//
// # Partitioning
//
// The ring [0, 2^64) splits into K contiguous equal ranges, one per shard:
// shard i owns the points p with floor(p·K / 2^64) = i. Placement is a
// pure function of the key — no lookup tables, no rebalancing state — so
// every router instance, every shard, and every test derives the same
// owner independently.
//
// # Determinism
//
// Every shard runs the full deterministic construction on the same
// (n, seed): the epoch generations — and therefore lookup, get, and mint
// answers — are byte-identical replicas, which is what lets a router
// forward a key to exactly one shard and still return the answer the
// single-process system would give. What the cluster partitions is the
// serving plane: each shard answers only for its ring range, holds only
// its range's stored values, and the router scatter-gathers batches
// across ranges. The coordinated two-phase epoch advance (Router.Advance)
// keeps the replicas in lockstep: all shards build the upcoming
// generation first, and flip together only once every build succeeded —
// an abort leaves the old generation live everywhere, and the epoch
// layer's rng rewind makes the retried build byte-identical on every
// shard.
package cluster

import (
	"math/bits"

	"repro/tinygroups"
)

// ShardOf returns the index of the shard that owns point p in a cluster
// of `shards` shards: floor(p·shards / 2^64), the contiguous equal
// partition of the ring. It is a pure function — every caller everywhere
// agrees on the owner. shards must be positive; a one-shard cluster owns
// everything.
func ShardOf(p tinygroups.Point, shards int) int {
	if shards <= 1 {
		return 0
	}
	hi, _ := bits.Mul64(uint64(p), uint64(shards))
	return int(hi)
}

// OwnerOf returns the index of the shard that owns key, resolving the
// key's ring point with the same hash every keyed System operation uses.
func OwnerOf(key string, shards int) int {
	return ShardOf(tinygroups.KeyPoint(key), shards)
}

// RangeOf returns the inclusive point range [lo, hi] owned by shard in a
// cluster of `shards` shards. It inverts ShardOf: ShardOf(p, shards) ==
// shard exactly when lo <= p <= hi.
func RangeOf(shard, shards int) (lo, hi tinygroups.Point) {
	if shards <= 1 {
		return 0, tinygroups.Point(^uint64(0))
	}
	lo = rangeStart(shard, shards)
	if shard == shards-1 {
		hi = tinygroups.Point(^uint64(0))
	} else {
		hi = rangeStart(shard+1, shards) - 1
	}
	return lo, hi
}

// rangeStart returns the smallest point of shard's range:
// ceil(shard·2^64 / shards).
func rangeStart(shard, shards int) tinygroups.Point {
	q, r := bits.Div64(uint64(shard), 0, uint64(shards))
	if r > 0 {
		q++
	}
	return tinygroups.Point(q)
}
