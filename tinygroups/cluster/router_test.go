package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/tinygroups"
	"repro/tinygroups/cluster"
)

// newShard boots one shard daemon of a K-cluster around a fresh
// deterministic system and returns its base URL.
func newShard(t *testing.T, index, count int) (*serve.Server, *httptest.Server) {
	t.Helper()
	sys, err := tinygroups.New(256, tinygroups.WithSeed(1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s := serve.New(sys, serve.Config{ShardIndex: index, ShardCount: count})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shard %d Shutdown: %v", index, err)
		}
	})
	return s, ts
}

// newCluster boots K shards plus a router over them.
func newCluster(t *testing.T, k int) (*cluster.Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		_, ts := newShard(t, i, k)
		urls[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.Config{Shards: urls})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

// post POSTs v and returns (status, raw body).
func post(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// get GETs and returns (status, raw body).
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func healthOf(t *testing.T, base string) (status string, epoch int64, fingerprint string) {
	t.Helper()
	_, body := get(t, base+"/healthz")
	var h struct {
		Status      string `json:"status"`
		Epoch       int64  `json:"epoch"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	return h.Status, h.Epoch, h.Fingerprint
}

// TestClusterDeterminismGate is the headline acceptance check: a K-shard
// cluster on seed S, driven through the router, answers byte-identically
// to a single standalone daemon on the same seed — lookups, gets, batch
// tables, and epoch fingerprints — across coordinated epoch advances, for
// K = 1, 2, 4.
func TestClusterDeterminismGate(t *testing.T) {
	keys := make([]string, 48)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}

	for _, k := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			_, ref := newShard(t, 0, 1) // standalone reference daemon
			_, rts := newCluster(t, k)

			type kv struct {
				Key   string `json:"key"`
				Value []byte `json:"value,omitempty"`
			}
			pairs := make([]kv, len(keys))
			for i, key := range keys {
				pairs[i] = kv{Key: key, Value: []byte("v-" + key)}
			}

			for round := 0; round < 3; round++ {
				// Writes: half through singles, half through the batch form.
				// At later epochs a key can become legitimately unreachable
				// (its search path hits a red group); determinism demands the
				// standalone daemon and the cluster refuse identically, not
				// that every put succeeds.
				for _, p := range pairs[:len(pairs)/2] {
					stR, bodyR := post(t, ref.URL+"/v1/put", p)
					stC, bodyC := post(t, rts.URL+"/v1/put", p)
					if stR != stC || !bytes.Equal(bodyR, bodyC) {
						t.Fatalf("round %d put %q: standalone (%d) %s vs cluster (%d) %s",
							round, p.Key, stR, bodyR, stC, bodyC)
					}
				}
				batch := map[string]any{"pairs": pairs[len(pairs)/2:]}
				stR, bodyR := post(t, ref.URL+"/v1/put/batch", batch)
				stC, bodyC := post(t, rts.URL+"/v1/put/batch", batch)
				if stR != http.StatusOK || stC != http.StatusOK || !bytes.Equal(bodyR, bodyC) {
					t.Fatalf("round %d put/batch diverged:\nstandalone (%d): %s\ncluster    (%d): %s",
						round, stR, bodyR, stC, bodyC)
				}

				// Reads must agree byte for byte.
				for _, key := range keys {
					stR, bodyR := post(t, ref.URL+"/v1/lookup", kv{Key: key})
					stC, bodyC := post(t, rts.URL+"/v1/lookup", kv{Key: key})
					if stR != stC || !bytes.Equal(bodyR, bodyC) {
						t.Fatalf("round %d lookup %q: standalone (%d) %s vs cluster (%d) %s",
							round, key, stR, bodyR, stC, bodyC)
					}
					stR, bodyR = get(t, ref.URL+"/v1/get?key="+key)
					stC, bodyC = get(t, rts.URL+"/v1/get?key="+key)
					if stR != stC || !bytes.Equal(bodyR, bodyC) {
						t.Fatalf("round %d get %q: standalone (%d) %s vs cluster (%d) %s",
							round, key, stR, bodyR, stC, bodyC)
					}
				}
				// The scatter-gathered batch table merges back into request
				// order, so the whole document is byte-identical too.
				stR, bodyR = post(t, ref.URL+"/v1/lookup/batch", map[string]any{"keys": keys})
				stC, bodyC = post(t, rts.URL+"/v1/lookup/batch", map[string]any{"keys": keys})
				if stR != http.StatusOK || stC != http.StatusOK || !bytes.Equal(bodyR, bodyC) {
					t.Fatalf("round %d lookup/batch diverged:\nstandalone (%d): %s\ncluster    (%d): %s",
						round, stR, bodyR, stC, bodyC)
				}

				// Epoch fingerprints agree before advancing...
				_, epochR, fpR := healthOf(t, ref.URL)
				statusC, epochC, fpC := healthOf(t, rts.URL)
				if statusC != "ok" {
					t.Fatalf("round %d cluster health %q, want ok", round, statusC)
				}
				if epochR != epochC || fpR != fpC || fpR == "" {
					t.Fatalf("round %d fingerprints: standalone (%d, %s) vs cluster (%d, %s)",
						round, epochR, fpR, epochC, fpC)
				}

				// ...and the coordinated two-phase advance lands every shard on
				// the exact generation the standalone daemon's advance builds.
				var stats struct {
					Epoch int `json:"epoch"`
				}
				st, body := post(t, ref.URL+"/v1/epoch/advance", struct{}{})
				if st != http.StatusOK {
					t.Fatalf("round %d standalone advance: %d %s", round, st, body)
				}
				st, body = post(t, rts.URL+"/v1/epoch/advance", struct{}{})
				if st != http.StatusOK {
					t.Fatalf("round %d cluster advance: %d %s", round, st, body)
				}
				if err := json.Unmarshal(body, &stats); err != nil || stats.Epoch != round+1 {
					t.Fatalf("round %d cluster advance stats %s (err %v), want epoch %d",
						round, body, err, round+1)
				}
			}
			_, epochR, fpR := healthOf(t, ref.URL)
			statusC, epochC, fpC := healthOf(t, rts.URL)
			if statusC != "ok" || epochR != epochC || fpR != fpC {
				t.Fatalf("final fingerprints: standalone (%d, %s) vs cluster (%q, %d, %s)",
					epochR, fpR, statusC, epochC, fpC)
			}
		})
	}
}

// TestRouterForwardsKeyedEndpoints pins that the router lands every keyed
// request on the owning shard: no daemon ever answers 421 through the
// router, and mint/verify round-trip.
func TestRouterForwardsKeyedEndpoints(t *testing.T) {
	const k = 2
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		_, ts := newShard(t, i, k)
		urls[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.Config{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	// One miner per shard: both mints must reach their owning shard.
	miners := make([]string, k)
	found := 0
	for i := 0; found < k; i++ {
		m := fmt.Sprintf("miner-%04d", i)
		if s := cluster.OwnerOf(m, k); miners[s] == "" {
			miners[s] = m
			found++
		}
	}
	for _, m := range miners {
		st, body := post(t, rts.URL+"/v1/mint", map[string]any{"miner": m, "count": 1})
		if st != http.StatusOK {
			t.Fatalf("mint %q via router: %d %s", m, st, body)
		}
		var mr struct {
			Results []struct {
				ID    string `json:"id"`
				Sigma []byte `json:"sigma"`
			} `json:"results"`
		}
		if err := json.Unmarshal(body, &mr); err != nil || len(mr.Results) != 1 {
			t.Fatalf("mint %q response %s", m, body)
		}
		// The claim verifies through the router (forwarded to shard 0 —
		// verification is a pure function of the shared epoch state).
		st, body = post(t, rts.URL+"/v1/verify", map[string]any{"claims": []any{mr.Results[0]}})
		var vr struct {
			Verdicts []bool `json:"verdicts"`
			Valid    int    `json:"valid"`
		}
		if err := json.Unmarshal(body, &vr); err != nil {
			t.Fatal(err)
		}
		if st != http.StatusOK || vr.Valid != 1 || len(vr.Verdicts) != 1 || !vr.Verdicts[0] {
			t.Fatalf("verify via router: %d %s", st, body)
		}
	}

	// Shard-side wrong_shard counters must stay zero: the router never
	// misroutes.
	for i, u := range urls {
		_, body := get(t, u+"/metrics")
		var ms struct {
			WrongShard int64 `json:"wrong_shard"`
		}
		if err := json.Unmarshal(body, &ms); err != nil {
			t.Fatal(err)
		}
		if ms.WrongShard != 0 {
			t.Fatalf("shard %d wrong_shard = %d after routed traffic", i, ms.WrongShard)
		}
	}

	// Aggregated metrics: totals sum the per-shard mint counters.
	_, body := get(t, rts.URL+"/metrics")
	var agg struct {
		Shards int `json:"shards"`
		Totals struct {
			Requests struct {
				Mint float64 `json:"mint"`
			} `json:"requests"`
		} `json:"totals"`
		Members []struct {
			Shard int `json:"shard"`
		} `json:"members"`
	}
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Shards != k || len(agg.Members) != k || agg.Totals.Requests.Mint != float64(k) {
		t.Fatalf("aggregated metrics = %s", body)
	}
}

// TestShardDownTyped502 pins the failure path: with the owning shard
// down, keyed requests answer a typed 502 shard_unreachable, batch items
// degrade per key, and the aggregated health reports degraded.
func TestShardDownTyped502(t *testing.T) {
	const k = 2
	servers := make([]*httptest.Server, k)
	urls := make([]string, k)
	for i := 0; i < k; i++ {
		_, ts := newShard(t, i, k)
		servers[i] = ts
		urls[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.Config{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	// One key per shard, then kill shard 1.
	keys := make([]string, k)
	found := 0
	for i := 0; found < k; i++ {
		key := fmt.Sprintf("key-%04d", i)
		if s := cluster.OwnerOf(key, k); keys[s] == "" {
			keys[s] = key
			found++
		}
	}
	servers[1].Close()

	st, body := post(t, rts.URL+"/v1/lookup", map[string]any{"key": keys[1]})
	var er struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if st != http.StatusBadGateway || er.Code != "shard_unreachable" {
		t.Fatalf("lookup on dead shard = (%d, %q), want (502, shard_unreachable)", st, er.Code)
	}

	// The surviving shard still answers through the router.
	if st, body := post(t, rts.URL+"/v1/lookup", map[string]any{"key": keys[0]}); st != http.StatusOK {
		t.Fatalf("lookup on live shard = %d %s", st, body)
	}

	// Batches degrade per item: live keys resolve, dead-shard keys carry
	// the typed code.
	st, body = post(t, rts.URL+"/v1/lookup/batch", map[string]any{"keys": keys})
	if st != http.StatusOK {
		t.Fatalf("mixed batch status %d", st)
	}
	var br struct {
		Results []struct {
			Key  string `json:"key"`
			Code string `json:"code"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Code != "ok" || br.Results[1].Code != "shard_unreachable" {
		t.Fatalf("mixed batch codes = %q, %q", br.Results[0].Code, br.Results[1].Code)
	}

	// Aggregated health: degraded, with the dead member called out.
	st, body = get(t, rts.URL+"/healthz")
	var h struct {
		Status  string `json:"status"`
		Members []struct {
			Status string `json:"status"`
		} `json:"members"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if st != http.StatusServiceUnavailable || h.Status != "degraded" ||
		h.Members[0].Status != "ok" || h.Members[1].Status != "unreachable" {
		t.Fatalf("health with dead shard = (%d) %s", st, body)
	}
}

// TestBuildFailureAbortsEverywhere pins the two-phase safety property: a
// phase-1 build failure on one shard means NO shard flips — every shard
// keeps serving the old generation — and after the fault clears, the
// retried coordinated advance lands on exactly the epoch a never-faulted
// daemon builds (the abort rewound the construction randomness).
func TestBuildFailureAbortsEverywhere(t *testing.T) {
	const k = 2
	_, healthy := newShard(t, 0, k)

	// Shard 1 sits behind a fault injector that 500s /v1/epoch/build while
	// failBuild is set and passes everything else through.
	shard1, _ := newShard(t, 1, k)
	var failBuild atomic.Bool
	faulty := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failBuild.Load() && r.URL.Path == "/v1/epoch/build" {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"injected build fault","code":"internal"}`)
			return
		}
		shard1.Handler().ServeHTTP(w, r)
	}))
	defer faulty.Close()

	rt, err := cluster.NewRouter(cluster.Config{Shards: []string{healthy.URL, faulty.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	_, epoch0, fp0 := healthOf(t, healthy.URL)

	failBuild.Store(true)
	st, body := post(t, rts.URL+"/v1/epoch/advance", struct{}{})
	var er struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if st != http.StatusBadGateway || er.Code != "epoch_build_failed" {
		t.Fatalf("faulted advance = (%d, %q), want (502, epoch_build_failed)", st, er.Code)
	}

	// No shard flipped: both still serve the old epoch, nothing pending.
	for i, u := range []string{healthy.URL, faulty.URL} {
		_, body := get(t, u+"/healthz")
		var h struct {
			Epoch        int64  `json:"epoch"`
			Fingerprint  string `json:"fingerprint"`
			PendingEpoch bool   `json:"pending_epoch"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		if h.Epoch != epoch0 || h.Fingerprint != fp0 || h.PendingEpoch {
			t.Fatalf("shard %d after failed advance = %s; must keep serving epoch %d", i, body, epoch0)
		}
	}

	// Fault clears; the retry must converge on the standalone daemon's
	// epoch-1 generation byte for byte (rewind ⇒ identical replay).
	failBuild.Store(false)
	if st, body := post(t, rts.URL+"/v1/epoch/advance", struct{}{}); st != http.StatusOK {
		t.Fatalf("retried advance = %d %s", st, body)
	}
	_, refTS := newShard(t, 0, 1)
	if st, body := post(t, refTS.URL+"/v1/epoch/advance", struct{}{}); st != http.StatusOK {
		t.Fatalf("reference advance = %d %s", st, body)
	}
	_, refEpoch, refFP := healthOf(t, refTS.URL)
	statusC, epochC, fpC := healthOf(t, rts.URL)
	if statusC != "ok" || epochC != refEpoch || fpC != refFP {
		t.Fatalf("post-retry cluster (%q, %d, %s) diverged from reference (%d, %s)",
			statusC, epochC, fpC, refEpoch, refFP)
	}
}
