package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/tinygroups"
)

// Typed errors of the coordinated epoch advance; Advance returns errors
// wrapping one of these, and the router's HTTP surface maps them onto the
// same machine-readable codes the shard daemons use.
var (
	// ErrShardUnreachable is returned when a shard cannot be reached (or
	// answers with a non-JSON failure) for a forwarded or coordinated call.
	ErrShardUnreachable = errors.New("cluster: shard unreachable")
	// ErrBuildFailed is returned by Advance when phase 1 failed on at
	// least one shard: every shard was told to abort and NO shard flipped —
	// the old generation is still serving everywhere.
	ErrBuildFailed = errors.New("cluster: epoch build failed; no shard flipped")
	// ErrFlipFailed is returned by Advance when phase 2 failed on at least
	// one shard after every build succeeded. Shards that flipped serve the
	// new epoch; a shard that missed the flip still holds its built
	// generation and catches up on the next advance.
	ErrFlipFailed = errors.New("cluster: epoch flip failed on a shard")
)

// maxRouterBody bounds forwarded request bodies, mirroring the shard
// daemons' own limit.
const maxRouterBody = 1 << 20

// Config tunes a Router. Shards is required; everything else defaults.
type Config struct {
	// Shards lists the member daemons' base URLs in shard order:
	// Shards[i] must be the daemon started with -shard-index i. The ring
	// partition is derived from len(Shards).
	Shards []string
	// Client is the HTTP client for shard calls; defaults to a client
	// with RequestTimeout as its overall timeout.
	Client *http.Client
	// RequestTimeout bounds each forwarded shard call. Default 10s.
	RequestTimeout time.Duration
	// AdvanceTimeout bounds each per-shard phase call (build, flip,
	// abort) of a coordinated epoch advance. Builds run a full §III
	// construction, so this is the long one. Default 60s.
	AdvanceTimeout time.Duration
	// Version, when non-empty, is reported in the aggregated /healthz so
	// harness logs identify the router build.
	Version string
	// Logf, when non-nil, receives one line per lifecycle event
	// (coordinated advances, aborts). Requests are not logged.
	Logf func(format string, args ...any)
}

// Router fans a tinygroups HTTP API across a cluster of shard daemons: it
// forwards each keyed request to the shard owning the key's ring range,
// scatter-gathers batches, aggregates health and metrics, and drives the
// coordinated two-phase epoch advance. Create one with NewRouter and
// mount Handler on an http.Server.
//
// A Router is stateless apart from telemetry: placement is the pure
// ShardOf function, so any number of router instances can front the same
// shards — but concurrent coordinated advances serialize per Router only,
// so run exactly one advance driver (one router's ticker, or explicit
// /v1/epoch/advance calls against one router) per cluster.
type Router struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux
	start  time.Time

	// advMu serializes coordinated advances through this router.
	advMu sync.Mutex
}

// NewRouter validates cfg and builds a Router.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.AdvanceTimeout <= 0 {
		cfg.AdvanceTimeout = 60 * time.Second
	}
	r := &Router{cfg: cfg, client: cfg.Client, start: time.Now()}
	if r.client == nil {
		r.client = &http.Client{Timeout: cfg.RequestTimeout}
	}
	r.mux = r.routes()
	return r, nil
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Shards returns the cluster size K.
func (rt *Router) Shards() int { return len(rt.cfg.Shards) }

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

func (rt *Router) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lookup", rt.keyedForward(keyOfBody))
	mux.HandleFunc("/v1/put", rt.keyedForward(keyOfBody))
	mux.HandleFunc("/v1/compute", rt.keyedForward(keyOfBody))
	mux.HandleFunc("/v1/mint", rt.keyedForward(minerOfBody))
	mux.HandleFunc("/v1/get", rt.handleGet)
	mux.HandleFunc("/v1/verify", rt.handleVerify)
	mux.HandleFunc("/v1/lookup/batch", rt.handleLookupBatch)
	mux.HandleFunc("/v1/put/batch", rt.handlePutBatch)
	mux.HandleFunc("/v1/epoch/advance", rt.handleAdvance)
	mux.HandleFunc("/healthz", rt.handleHealth)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// routerError is the router's error envelope — the same {"error","code"}
// shape the shard daemons answer with, so clients see one taxonomy.
type routerError struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeUnreachable(w http.ResponseWriter, shard int, err error) {
	writeJSON(w, http.StatusBadGateway, routerError{
		Error: fmt.Sprintf("shard %d: %v", shard, err),
		Code:  "shard_unreachable",
	})
}

// keyOfBody extracts the routing key of a {"key": ...} body.
func keyOfBody(body []byte) (string, error) {
	var v struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return "", err
	}
	return v.Key, nil
}

// minerOfBody extracts the routing key of a {"miner": ...} body: mint
// load follows the miner's ring point, matching the shard-side guard.
func minerOfBody(body []byte) (string, error) {
	var v struct {
		Miner string `json:"miner"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return "", err
	}
	return v.Miner, nil
}

// keyedForward builds a handler that reads the request body, extracts the
// routing key with extract, and proxies the request to the owning shard.
// An empty key is forwarded to shard 0, which answers with the daemon's
// own validation error.
func (rt *Router) keyedForward(extract func([]byte) (string, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouterBody))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, routerError{Error: "read body: " + err.Error(), Code: "bad_request"})
			return
		}
		key, err := extract(body)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, routerError{Error: "bad JSON body: " + err.Error(), Code: "bad_request"})
			return
		}
		shard := 0
		if key != "" {
			shard = OwnerOf(key, rt.Shards())
		}
		rt.proxy(w, r, shard, body)
	}
}

// handleGet routes /v1/get by its key query parameter.
func (rt *Router) handleGet(w http.ResponseWriter, r *http.Request) {
	shard := 0
	if key := r.URL.Query().Get("key"); key != "" {
		shard = OwnerOf(key, rt.Shards())
	}
	rt.proxy(w, r, shard, nil)
}

// handleVerify forwards claim verification to shard 0: verification is a
// pure function of the shared epoch state, so every shard answers
// identically and no split is needed.
func (rt *Router) handleVerify(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRouterBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, routerError{Error: "read body: " + err.Error(), Code: "bad_request"})
		return
	}
	rt.proxy(w, r, 0, body)
}

// proxy forwards r (with body, when non-nil) to the given shard and
// copies the shard's response verbatim — status, content type, body — so
// the client sees exactly what the owning daemon answered. Transport
// failures map to the typed 502 shard_unreachable.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request, shard int, body []byte) {
	url := rt.cfg.Shards[shard] + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		rt.writeUnreachable(w, shard, err)
		return
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.writeUnreachable(w, shard, err)
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// postShard POSTs a JSON body to one shard and decodes the response into
// out. Non-2xx answers decode the shard's error envelope and surface as
// an error wrapping ErrShardUnreachable (transport) or carrying the
// shard's code (typed refusal).
func (rt *Router) postShard(ctx context.Context, shard int, path string, in, out any) error {
	var rd io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rt.cfg.Shards[shard]+path, rd)
	if err != nil {
		return fmt.Errorf("%w: shard %d: %v", ErrShardUnreachable, shard, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: shard %d: %v", ErrShardUnreachable, shard, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRouterBody))
	if err != nil {
		return fmt.Errorf("%w: shard %d: %v", ErrShardUnreachable, shard, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e routerError
		if json.Unmarshal(data, &e) == nil && e.Code != "" {
			return fmt.Errorf("shard %d: %s (%s)", shard, e.Error, e.Code)
		}
		return fmt.Errorf("%w: shard %d: status %d", ErrShardUnreachable, shard, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("%w: shard %d: bad response: %v", ErrShardUnreachable, shard, err)
		}
	}
	return nil
}

// eachShard runs fn(shard) concurrently for every shard and returns the
// per-shard errors (nil entries for successes).
func (rt *Router) eachShard(fn func(shard int) error) []error {
	errs := make([]error, rt.Shards())
	var wg sync.WaitGroup
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errs
}

// Advance drives one coordinated two-phase epoch advance across every
// shard. Phase 1 tells all shards concurrently to build their upcoming
// generation — reads keep serving the pinned old epoch everywhere. Only
// if every build succeeds does phase 2 flip all shards together. On any
// phase-1 failure every shard is told to abort (rewinding its build
// randomness, so the retried round replays identically) and Advance
// returns an error wrapping ErrBuildFailed: no shard flipped, the old
// generation is live everywhere. Each per-shard phase call is bounded by
// Config.AdvanceTimeout.
//
// The returned Stats are the committed epoch's construction statistics
// (identical on every shard — the generations are replicas).
func (rt *Router) Advance(ctx context.Context) (tinygroups.Stats, error) {
	rt.advMu.Lock()
	defer rt.advMu.Unlock()

	phase := func(path string, outs []tinygroups.Stats) []error {
		return rt.eachShard(func(i int) error {
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.AdvanceTimeout)
			defer cancel()
			// out must stay an untyped nil when no stats are wanted — a
			// typed-nil *Stats inside the any parameter would make postShard
			// try to unmarshal into it.
			var out any
			if outs != nil {
				out = &outs[i]
			}
			return rt.postShard(pctx, i, path, struct{}{}, out)
		})
	}

	// Phase 1: build everywhere.
	if errs := phase("/v1/epoch/build", nil); anyErr(errs) != nil {
		first := anyErr(errs)
		rt.logf("cluster: epoch build failed (%v); aborting all shards", first)
		// Best-effort coordinated abort: every shard discards its parked
		// build (a no-op on shards whose build already failed), so the next
		// round replays identically everywhere.
		abortErrs := rt.eachShard(func(i int) error {
			pctx, cancel := context.WithTimeout(context.Background(), rt.cfg.AdvanceTimeout)
			defer cancel()
			return rt.postShard(pctx, i, "/v1/epoch/abort", struct{}{}, nil)
		})
		if aerr := anyErr(abortErrs); aerr != nil {
			rt.logf("cluster: abort incomplete: %v", aerr)
		}
		return tinygroups.Stats{}, fmt.Errorf("%w: %v", ErrBuildFailed, first)
	}

	// Phase 2: flip everywhere.
	stats := make([]tinygroups.Stats, rt.Shards())
	if errs := phase("/v1/epoch/flip", stats); anyErr(errs) != nil {
		first := anyErr(errs)
		rt.logf("cluster: epoch flip failed: %v", first)
		return tinygroups.Stats{}, fmt.Errorf("%w: %v", ErrFlipFailed, first)
	}
	rt.logf("cluster: epoch %d flipped on %d shards (n=%d)", stats[0].Epoch, rt.Shards(), stats[0].N)
	return stats[0], nil
}

// handleAdvance exposes the coordinated advance at the router, replacing
// the shard-local /v1/epoch/advance for cluster clients.
func (rt *Router) handleAdvance(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, routerError{Error: "use POST", Code: "method_not_allowed"})
		return
	}
	st, err := rt.Advance(r.Context())
	if err != nil {
		code := "shard_unreachable"
		if errors.Is(err, ErrBuildFailed) {
			code = "epoch_build_failed"
		} else if errors.Is(err, ErrFlipFailed) {
			code = "epoch_flip_failed"
		}
		writeJSON(w, http.StatusBadGateway, routerError{Error: err.Error(), Code: code})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// anyErr returns the first non-nil error, joined with how many failed.
func anyErr(errs []error) error {
	var first error
	failed := 0
	for _, e := range errs {
		if e != nil {
			failed++
			if first == nil {
				first = e
			}
		}
	}
	if first == nil {
		return nil
	}
	if failed > 1 {
		return fmt.Errorf("%d shards failed; first: %w", failed, first)
	}
	return first
}
