package cluster

import (
	"testing"

	"repro/tinygroups"
)

// TestShardOfPartitions pins that ShardOf is a total partition into K
// contiguous ranges and that RangeOf inverts it exactly at the borders.
func TestShardOfPartitions(t *testing.T) {
	max := tinygroups.Point(^uint64(0))
	for _, k := range []int{1, 2, 3, 4, 7, 16} {
		if got := ShardOf(0, k); got != 0 {
			t.Fatalf("ShardOf(0, %d) = %d", k, got)
		}
		if got := ShardOf(max, k); got != k-1 {
			t.Fatalf("ShardOf(max, %d) = %d; want %d", k, got, k-1)
		}
		for s := 0; s < k; s++ {
			lo, hi := RangeOf(s, k)
			if ShardOf(lo, k) != s || ShardOf(hi, k) != s {
				t.Fatalf("k=%d shard %d: range [%d,%d] not owned by itself", k, s, lo, hi)
			}
			if lo > 0 && ShardOf(lo-1, k) != s-1 {
				t.Fatalf("k=%d shard %d: point below lo owned by %d", k, s, ShardOf(lo-1, k))
			}
			if hi < max && ShardOf(hi+1, k) != s+1 {
				t.Fatalf("k=%d shard %d: point above hi owned by %d", k, s, ShardOf(hi+1, k))
			}
		}
		// Ranges tile the whole ring with no gaps.
		var covered uint64
		for s := 0; s < k; s++ {
			lo, hi := RangeOf(s, k)
			covered += uint64(hi) - uint64(lo) + 1
		}
		if covered != 0 { // 2^64 wraps to 0
			t.Fatalf("k=%d: ranges cover %d points, want 2^64", k, covered)
		}
	}
}

// TestShardOfBalance pins that the equal partition really is equal: range
// sizes differ by at most one point.
func TestShardOfBalance(t *testing.T) {
	for _, k := range []int{2, 3, 5, 8} {
		var minSz, maxSz uint64
		for s := 0; s < k; s++ {
			lo, hi := RangeOf(s, k)
			sz := uint64(hi) - uint64(lo) + 1
			if s == 0 || sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if maxSz-minSz > 1 {
			t.Fatalf("k=%d: range sizes differ by %d", k, maxSz-minSz)
		}
	}
}

// TestOwnerOfMatchesKeyPoint pins OwnerOf against the key-hash convention.
func TestOwnerOfMatchesKeyPoint(t *testing.T) {
	for _, key := range []string{"", "a", "k00000042", "the-quick-brown-fox"} {
		for _, k := range []int{1, 2, 4} {
			if got, want := OwnerOf(key, k), ShardOf(tinygroups.KeyPoint(key), k); got != want {
				t.Fatalf("OwnerOf(%q, %d) = %d, want %d", key, k, got, want)
			}
		}
	}
}
