package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// This file is the router's scatter-gather plane: batches split per
// owning shard and merge back in request order; health and metrics
// aggregate across every member.

// wireBatchItem mirrors the shard daemons' per-key batch result.
type wireBatchItem struct {
	Key      string `json:"key"`
	Code     string `json:"code"`
	Owner    string `json:"owner,omitempty"`
	Hops     int    `json:"hops,omitempty"`
	Messages int64  `json:"messages,omitempty"`
	Error    string `json:"error,omitempty"`
}

// wireBatchResponse mirrors the shard daemons' batch envelope.
type wireBatchResponse struct {
	Results []wireBatchItem `json:"results"`
}

// wireKV is one pair of a put batch on the wire.
type wireKV struct {
	Key   string `json:"key"`
	Value []byte `json:"value,omitempty"`
}

// scatter fans per-shard sub-batches out concurrently and merges the
// per-key results back into request order. keys[i] decides the owning
// shard of item i; send(shard, indexes) posts that shard's sub-batch and
// returns its items in sub-batch order. A failed shard marks its items
// shard_unreachable instead of failing the whole batch — per-key degraded
// results, matching the daemons' own per-item error model.
func (rt *Router) scatter(keys []string, send func(shard int, idx []int) ([]wireBatchItem, error)) []wireBatchItem {
	byShard := make([][]int, rt.Shards())
	for i, k := range keys {
		s := OwnerOf(k, rt.Shards())
		byShard[s] = append(byShard[s], i)
	}
	out := make([]wireBatchItem, len(keys))
	rt.eachShard(func(s int) error {
		idx := byShard[s]
		if len(idx) == 0 {
			return nil
		}
		items, err := send(s, idx)
		if err != nil || len(items) != len(idx) {
			for _, i := range idx {
				msg := "sub-batch size mismatch"
				if err != nil {
					msg = err.Error()
				}
				out[i] = wireBatchItem{Key: keys[i], Code: "shard_unreachable", Error: msg}
			}
			return nil
		}
		for j, i := range idx {
			out[i] = items[j]
		}
		return nil
	})
	return out
}

func (rt *Router) handleLookupBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Keys []string `json:"keys"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouterBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, routerError{Error: "bad JSON body: " + err.Error(), Code: "bad_request"})
		return
	}
	if len(req.Keys) == 0 {
		writeJSON(w, http.StatusBadRequest, routerError{Error: `missing "keys"`, Code: "bad_request"})
		return
	}
	ctx := r.Context()
	out := rt.scatter(req.Keys, func(shard int, idx []int) ([]wireBatchItem, error) {
		sub := make([]string, len(idx))
		for j, i := range idx {
			sub[j] = req.Keys[i]
		}
		var resp wireBatchResponse
		if err := rt.postShard(ctx, shard, "/v1/lookup/batch",
			map[string]any{"keys": sub}, &resp); err != nil {
			return nil, err
		}
		return resp.Results, nil
	})
	writeJSON(w, http.StatusOK, wireBatchResponse{Results: out})
}

func (rt *Router) handlePutBatch(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Pairs []wireKV `json:"pairs"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRouterBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, routerError{Error: "bad JSON body: " + err.Error(), Code: "bad_request"})
		return
	}
	if len(req.Pairs) == 0 {
		writeJSON(w, http.StatusBadRequest, routerError{Error: `missing "pairs"`, Code: "bad_request"})
		return
	}
	keys := make([]string, len(req.Pairs))
	for i, kv := range req.Pairs {
		keys[i] = kv.Key
	}
	ctx := r.Context()
	out := rt.scatter(keys, func(shard int, idx []int) ([]wireBatchItem, error) {
		sub := make([]wireKV, len(idx))
		for j, i := range idx {
			sub[j] = req.Pairs[i]
		}
		var resp wireBatchResponse
		if err := rt.postShard(ctx, shard, "/v1/put/batch",
			map[string]any{"pairs": sub}, &resp); err != nil {
			return nil, err
		}
		return resp.Results, nil
	})
	writeJSON(w, http.StatusOK, wireBatchResponse{Results: out})
}

// memberHealth is one shard's health as seen by the aggregator.
type memberHealth struct {
	Shard       int    `json:"shard"`
	Status      string `json:"status"`
	Version     string `json:"version,omitempty"`
	Epoch       int64  `json:"epoch"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Pending     bool   `json:"pending_epoch"`
	Error       string `json:"error,omitempty"`
}

// clusterHealth is the router's aggregated /healthz body. Status is "ok"
// only when every shard answered ok AND all shards agree on epoch and
// fingerprint — the serving-state equality the determinism gate relies
// on; otherwise it is "degraded" with per-member detail.
type clusterHealth struct {
	Status      string         `json:"status"`
	Version     string         `json:"version,omitempty"`
	Shards      int            `json:"shards"`
	Epoch       int64          `json:"epoch"`
	Fingerprint string         `json:"fingerprint,omitempty"`
	Members     []memberHealth `json:"members"`
	UptimeS     float64        `json:"uptime_s"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	members := make([]memberHealth, rt.Shards())
	rt.eachShard(func(i int) error {
		members[i].Shard = i
		var h struct {
			Status       string `json:"status"`
			Version      string `json:"version"`
			Epoch        int64  `json:"epoch"`
			Fingerprint  string `json:"fingerprint"`
			PendingEpoch bool   `json:"pending_epoch"`
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.cfg.Shards[i]+"/healthz", nil)
		if err == nil {
			var resp *http.Response
			resp, err = rt.client.Do(req)
			if err == nil {
				err = json.NewDecoder(io.LimitReader(resp.Body, maxRouterBody)).Decode(&h)
				resp.Body.Close()
			}
		}
		if err != nil {
			members[i].Status = "unreachable"
			members[i].Error = err.Error()
			return nil
		}
		members[i].Status = h.Status
		members[i].Version = h.Version
		members[i].Epoch = h.Epoch
		members[i].Fingerprint = h.Fingerprint
		members[i].Pending = h.PendingEpoch
		return nil
	})

	out := clusterHealth{
		Status:  "ok",
		Version: rt.cfg.Version,
		Shards:  rt.Shards(),
		Members: members,
		UptimeS: time.Since(rt.start).Seconds(),
	}
	for i, m := range members {
		if m.Status != "ok" || (i > 0 && (m.Epoch != members[0].Epoch || m.Fingerprint != members[0].Fingerprint)) {
			out.Status = "degraded"
		}
	}
	if out.Status == "ok" {
		out.Epoch = members[0].Epoch
		out.Fingerprint = members[0].Fingerprint
		writeJSON(w, http.StatusOK, out)
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, out)
}

// memberMetrics is one shard's raw /metrics document plus its index.
type memberMetrics struct {
	Shard   int             `json:"shard"`
	Error   string          `json:"error,omitempty"`
	Metrics json.RawMessage `json:"metrics,omitempty"`
}

// clusterMetrics is the router's aggregated /metrics body: the per-shard
// raw documents plus totals summed over every numeric leaf of the shard
// documents (epoch and uptime_s take the max instead — they are levels,
// not counters).
type clusterMetrics struct {
	Shards  int             `json:"shards"`
	Totals  map[string]any  `json:"totals"`
	Members []memberMetrics `json:"members"`
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	members := make([]memberMetrics, rt.Shards())
	docs := make([]map[string]any, rt.Shards())
	rt.eachShard(func(i int) error {
		members[i].Shard = i
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rt.cfg.Shards[i]+"/metrics", nil)
		var raw []byte
		if err == nil {
			var resp *http.Response
			resp, err = rt.client.Do(req)
			if err == nil {
				raw, err = io.ReadAll(io.LimitReader(resp.Body, maxRouterBody))
				resp.Body.Close()
			}
		}
		if err != nil {
			members[i].Error = err.Error()
			return nil
		}
		var doc map[string]any
		if err := json.Unmarshal(raw, &doc); err != nil {
			members[i].Error = "bad metrics document: " + err.Error()
			return nil
		}
		members[i].Metrics = raw
		docs[i] = doc
		return nil
	})

	totals := map[string]any{}
	for _, doc := range docs {
		if doc != nil {
			mergeNumeric(totals, doc, "")
		}
	}
	writeJSON(w, http.StatusOK, clusterMetrics{
		Shards:  rt.Shards(),
		Totals:  totals,
		Members: members,
	})
}

// mergeNumeric folds src into dst, summing numeric leaves and recursing
// into nested objects. The level-style fields epoch and uptime_s take the
// max across shards instead of a meaningless sum; non-numeric leaves keep
// the first value seen.
func mergeNumeric(dst, src map[string]any, path string) {
	for k, v := range src {
		p := path + k
		switch sv := v.(type) {
		case map[string]any:
			sub, ok := dst[k].(map[string]any)
			if !ok {
				sub = map[string]any{}
				dst[k] = sub
			}
			mergeNumeric(sub, sv, p+".")
		case float64:
			prev, ok := dst[k].(float64)
			if !ok {
				dst[k] = sv
				continue
			}
			if p == "epoch" || p == "uptime_s" {
				dst[k] = max(prev, sv)
			} else {
				dst[k] = prev + sv
			}
		default:
			if _, ok := dst[k]; !ok {
				dst[k] = v
			}
		}
	}
}
