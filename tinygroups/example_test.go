package tinygroups_test

import (
	"context"
	"errors"
	"fmt"

	"repro/tinygroups"
)

// ExampleNew builds a small deterministic system, exercises the keyed
// store, and releases it.
func ExampleNew() {
	sys, err := tinygroups.New(256,
		tinygroups.WithBeta(0.05),
		tinygroups.WithOverlay("chord"),
		tinygroups.WithSeed(1),
	)
	if err != nil {
		fmt.Println("config rejected:", errors.Is(err, tinygroups.ErrBadConfig))
		return
	}
	defer sys.Close()
	fmt.Println("n:", sys.N())
	fmt.Println("epoch:", sys.Epoch())

	// Invalid configurations fail with the typed ErrBadConfig.
	_, err = tinygroups.New(4)
	fmt.Println("n=4 rejected:", errors.Is(err, tinygroups.ErrBadConfig))
	// Output:
	// n: 256
	// epoch: 0
	// n=4 rejected: true
}

// ExampleSystem_LookupBatch routes a batch of keys concurrently over the
// system's worker pool; per-key outcomes come back in key order, and the
// results are identical at every worker count.
func ExampleSystem_LookupBatch() {
	sys, err := tinygroups.New(256, tinygroups.WithSeed(1))
	if err != nil {
		panic(err)
	}
	defer sys.Close()

	keys := []string{"alice", "bob", "carol", "dave"}
	results, err := sys.LookupBatch(context.Background(), keys)
	if err != nil {
		panic(err) // only ErrClosed or context cancellation
	}
	fmt.Println("results:", len(results))
	for i, r := range results {
		// A per-key ErrUnreachable is the ε-fraction Theorem 3 concedes.
		if r.Err != nil && !errors.Is(r.Err, tinygroups.ErrUnreachable) {
			fmt.Println(keys[i], "failed:", r.Err)
		}
	}
	// Output:
	// results: 4
}
