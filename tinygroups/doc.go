// Package tinygroups is the public library surface of the "Tiny Groups
// Tackle Byzantine Adversaries" reproduction (Jaiyeola, Patron, Saia,
// Young, Zhou — IPDPS 2018): an ε-robust decentralized system built from
// proof-of-work-secured groups of size Θ(log log n) instead of the classic
// Θ(log n).
//
// A System exposes the three applications the paper's introduction
// motivates — a robust key→owner Lookup (secure routing through tiny
// groups), a replicated Put/Get store over it, and Compute, which runs
// Byzantine agreement inside the group responsible for a job so each group
// "simulates a reliable processor" — plus AdvanceEpoch, which turns the
// whole population over through the §III two-group-graph construction.
//
// # Usage
//
//	sys, err := tinygroups.New(4096,
//		tinygroups.WithBeta(0.05),
//		tinygroups.WithSeed(1),
//	)
//	if err != nil { ... }
//	defer sys.Close()
//
//	ctx := context.Background()
//	info, err := sys.Put(ctx, "alice", []byte("v"))    // typed errors: errors.Is(err, tinygroups.ErrUnreachable)
//	st, err := sys.AdvanceEpoch(ctx)                   // cancellable mid-construction
//
// Construction is parameterized by functional options (WithBeta,
// WithOverlay, WithWorkers, WithObserver, ...), validated together at New;
// invalid combinations fail with an error wrapping ErrBadConfig.
//
// # Contexts and lifecycle
//
// Every operation takes a context. AdvanceEpoch polls it between per-ID
// construction batches: on cancellation the epoch aborts cleanly (the
// generation swap never happens) and the System keeps serving the old
// generation. Close releases the construction worker pool; operations on
// a closed System fail with ErrClosed, except reads through a Snapshot
// pinned before the close.
//
// # Concurrency
//
// A System is safe for concurrent use, with a one-writer/many-readers
// contract:
//
//   - Reads — Lookup, Get, LookupBatch, Snapshot, Epoch, N, GroupSize —
//     are lock-free. Each call atomically loads the current epoch
//     snapshot (an immutable view of one generation's graphs, ring and
//     rank tables) and resolves entirely against it, so reads scale
//     linearly with reader goroutines and never block behind a write.
//   - Writes — Put, PutBatch, Compute, AdvanceEpoch, Robustness, Close —
//     serialize on an internal writer mutex. Concurrent calls are safe;
//     they simply queue.
//
// A read racing an epoch flip has snapshot semantics: AdvanceEpoch builds
// the upcoming generation entirely off to the side and publishes it by
// swapping one atomic pointer, so every read is answered by exactly one
// generation — whichever the call loaded — never a mix, and no read ever
// stalls behind an in-flight construction. Callers that need several
// reads answered by one consistent generation pin it explicitly with
// System.Snapshot.
//
// # Observability
//
// WithObserver streams telemetry — per-operation search outcomes, epoch
// construction Stats, PoW minting counts — through the Observer interface.
// A nil observer (the default) costs nothing: the hot paths stay zero
// allocations per operation, enforced by AllocsPerRun regression tests.
//
// # Determinism
//
// Two Systems built with the same options execute identical operation
// sequences identically: all randomness derives from WithSeed, and worker
// counts (WithWorkers, batch operations) affect wall-clock only. Reads
// draw their search randomness from a hash-derived stream keyed on
// (seed, epoch, key) — a read's result is a pure function of those three,
// so it is also byte-identical at any reader count, in or out of a batch,
// and under any interleaving with other operations.
//
// # Stability
//
// This package and tinygroups/scenario are the repository's stable
// surface: exported symbols are only added, never renamed or removed
// without a deprecation note, and the checked-in API.txt listing is
// diffed in CI so any surface change is an explicit, reviewed artifact.
// Packages under internal/ carry no such guarantee.
package tinygroups
