package tinygroups

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/overlay"
)

// Strategy selects how the adversary places the ≈βn u.a.r. IDs that PoW
// lets it mint (it cannot choose the values — only which subset to inject).
type Strategy int

const (
	// Uniform injects all of the adversary's u.a.r. IDs (the baseline).
	Uniform Strategy = iota
	// Clustered injects only IDs landing in a contiguous arc.
	Clustered
	// NearKey injects the IDs closest to a victim key.
	NearKey
)

// String returns the strategy name.
func (s Strategy) String() string { return adversary.Strategy(s).String() }

// config collects the options of New; the zero value is completed by
// defaults() before options apply.
type config struct {
	n                  int
	beta               float64
	overlayName        string
	strategy           Strategy
	seed               int64
	workers            int
	singleGraph        bool
	noVerify           bool
	spamFactor         int
	midEpochDepartures float64
	sizeDrift          float64
	observer           Observer
	mintWork           float64
	mintTarget         time.Duration
	dataDir            string
	snapshotKeep       int
}

func defaults(n int) config {
	// Beta defaults to 0.05 — the paper's "sufficiently small" β for which
	// the dynamic construction is stable at Θ(log log n) group sizes.
	// mintWork defaults to 2^14 expected attempts — DefaultParams difficulty.
	return config{n: n, beta: 0.05, overlayName: "chord", strategy: Uniform, seed: 1, mintWork: 1 << 14, snapshotKeep: 3}
}

// Option configures a System at construction; options are applied in
// order and validated together by New.
type Option func(*config)

// WithBeta sets the adversary's computational-power fraction (must stay
// below 1/2; realistically ≤ 0.15 for tiny groups at simulable n).
func WithBeta(beta float64) Option { return func(c *config) { c.beta = beta } }

// WithOverlay selects the input-graph construction: "chord" (default),
// "debruijn" or "viceroy".
func WithOverlay(name string) Option { return func(c *config) { c.overlayName = name } }

// WithStrategy sets the adversary's ID-injection strategy.
func WithStrategy(s Strategy) Option { return func(c *config) { c.strategy = s } }

// WithSeed makes the run deterministic: every random draw the system ever
// makes derives from this seed.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithWorkers caps the construction worker pool used by AdvanceEpoch and
// the reader fan-out width of the batch operations; 0 (the default) means
// GOMAXPROCS. It affects wall-clock only — results are identical at every
// setting.
func WithWorkers(workers int) Option { return func(c *config) { c.workers = workers } }

// WithSingleGraph switches to the naive single-group-graph protocol the
// paper argues against (the E5 ablation): per-step corruption compounds
// epoch over epoch. The default is the §III two-graph construction.
func WithSingleGraph() Option { return func(c *config) { c.singleGraph = true } }

// WithVerifyRequests toggles the §III-A request-verification step.
// Disabling it exposes the state-blowup spam attack of Lemma 10; it is on
// by default.
func WithVerifyRequests(on bool) Option { return func(c *config) { c.noVerify = !on } }

// WithSpamFactor sets how many bogus group-membership requests each bad ID
// issues per epoch (Lemma 10 / E12; default 0).
func WithSpamFactor(requestsPerBadID int) Option {
	return func(c *config) { c.spamFactor = requestsPerBadID }
}

// WithMidEpochDepartures sets the fraction of good IDs that go offline
// during each epoch after construction (§III churn model; default 0).
func WithMidEpochDepartures(frac float64) Option {
	return func(c *config) { c.midEpochDepartures = frac }
}

// WithSizeDrift oscillates the population by ±frac per epoch (the §III
// "system size is Θ(n)" remark; default 0 keeps it constant).
func WithSizeDrift(frac float64) Option { return func(c *config) { c.sizeDrift = frac } }

// WithObserver streams telemetry to obs; see Observer. A nil observer
// (the default) is free: no events are constructed.
func WithObserver(obs Observer) Option { return func(c *config) { c.observer = obs } }

// WithMintWork sets the PoW difficulty of the Mint path in expected hash
// attempts per minted ID (default 2^14; must be ≥ 2). With retargeting
// enabled this is the starting point of the controller.
func WithMintWork(work float64) Option { return func(c *config) { c.mintWork = work } }

// WithMintRetarget enables adaptive difficulty: after each epoch advance
// the mint difficulty is retargeted so the mean observed solve time tracks
// target (clamped to a 4× step per epoch). The zero default keeps the
// difficulty fixed at WithMintWork — and keeps minted IDs a pure function
// of (seed, epoch, miner), which retargeting necessarily trades away since
// it feeds wall-clock measurements back into τ.
func WithMintRetarget(target time.Duration) Option {
	return func(c *config) { c.mintTarget = target }
}

// validate checks everything the epoch layer does not, wrapping each
// failure in ErrBadConfig.
func (c *config) validate() error {
	if c.n < 8 {
		return fmt.Errorf("%w: population n = %d too small (need ≥ 8)", ErrBadConfig, c.n)
	}
	known := false
	names := make([]string, 0, 4)
	for _, b := range overlay.Builders() {
		names = append(names, b.Name)
		known = known || b.Name == c.overlayName
	}
	if !known {
		return fmt.Errorf("%w: unknown overlay %q (have %v)", ErrBadConfig, c.overlayName, names)
	}
	if c.strategy < Uniform || c.strategy > NearKey {
		return fmt.Errorf("%w: unknown strategy %d", ErrBadConfig, int(c.strategy))
	}
	if c.spamFactor < 0 {
		return fmt.Errorf("%w: negative spam factor %d", ErrBadConfig, c.spamFactor)
	}
	if c.midEpochDepartures < 0 || c.midEpochDepartures >= 1 {
		return fmt.Errorf("%w: mid-epoch departure fraction %v outside [0, 1)", ErrBadConfig, c.midEpochDepartures)
	}
	if c.sizeDrift < 0 || c.sizeDrift >= 1 {
		return fmt.Errorf("%w: size drift %v outside [0, 1)", ErrBadConfig, c.sizeDrift)
	}
	if c.mintWork < 2 {
		return fmt.Errorf("%w: mint work %v too low (need ≥ 2 expected attempts)", ErrBadConfig, c.mintWork)
	}
	if c.mintTarget < 0 {
		return fmt.Errorf("%w: negative mint retarget %v", ErrBadConfig, c.mintTarget)
	}
	if c.snapshotKeep < 1 {
		return fmt.Errorf("%w: snapshot retention %d too low (need ≥ 1)", ErrBadConfig, c.snapshotKeep)
	}
	return nil
}
