package tinygroups

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

func batchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("doc-%04d", i)
	}
	return keys
}

// TestLookupBatchMatchesSequentialOwners: batch routing must resolve every
// reachable key to the same owner the sequential path does (owners are a
// pure function of the key within an epoch).
func TestLookupBatchMatchesSequentialOwners(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 512, 0, WithSeed(21), WithWorkers(4))
	keys := batchKeys(64)
	res, err := s.LookupBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(keys) {
		t.Fatalf("%d results for %d keys", len(res), len(keys))
	}
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("key %s unreachable at β=0: %v", keys[i], br.Err)
		}
		seq, err := s.Lookup(ctx, keys[i])
		if err != nil {
			t.Fatal(err)
		}
		if br.Info.Owner != seq.Owner {
			t.Fatalf("key %s: batch owner %v != sequential owner %v", keys[i], br.Info.Owner, seq.Owner)
		}
		if br.Info.Hops <= 0 || br.Info.Messages <= 0 {
			t.Errorf("key %s: routing cost missing: %+v", keys[i], br.Info)
		}
	}
}

// TestPutBatchRoundTrip: batched puts land in the store and read back.
func TestPutBatchRoundTrip(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 512, 0, WithSeed(22))
	pairs := make([]KV, 40)
	for i := range pairs {
		pairs[i] = KV{Key: fmt.Sprintf("k%d", i), Value: []byte(fmt.Sprintf("v%d", i))}
	}
	res, err := s.PutBatch(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range res {
		if br.Err != nil {
			t.Fatalf("put %s failed at β=0: %v", pairs[i].Key, br.Err)
		}
		got, _, err := s.Get(ctx, pairs[i].Key)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pairs[i].Value) {
			t.Fatalf("key %s: got %q want %q", pairs[i].Key, got, pairs[i].Value)
		}
	}
	// Stored values must be copies, not aliases of the caller's slices.
	pairs[0].Value[0] = 'X'
	if got, _, _ := s.Get(ctx, pairs[0].Key); got[0] == 'X' {
		t.Error("PutBatch stored the caller's slice instead of a copy")
	}
}

// TestPutBatchSkipsUnreachable: under attack, failed keys are reported
// per-key and not stored, while the call itself succeeds.
func TestPutBatchSkipsUnreachable(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 1024, 0.10, WithSeed(23))
	pairs := make([]KV, 200)
	for i := range pairs {
		pairs[i] = KV{Key: fmt.Sprintf("k%d", i), Value: []byte{byte(i)}}
	}
	res, err := s.PutBatch(ctx, pairs)
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for i, br := range res {
		if br.Err == nil {
			continue
		}
		failed++
		if !errors.Is(br.Err, ErrUnreachable) {
			t.Errorf("key %d: err = %v, want ErrUnreachable", i, br.Err)
		}
		if _, _, err := s.Get(ctx, pairs[i].Key); !errors.Is(err, ErrNotFound) && !errors.Is(err, ErrUnreachable) {
			t.Errorf("unreachable key %d was stored anyway", i)
		}
	}
	if failed == 0 {
		t.Log("no unreachable keys at this seed (fine: ε is small)")
	}
	if float64(failed)/float64(len(pairs)) > 0.10 {
		t.Errorf("%d/%d batch puts failed at β=0.10", failed, len(pairs))
	}
}

// TestBatchWorkerInvariance: batch results are bit-identical at every
// worker count — the engine's determinism contract extended to the public
// batch surface.
func TestBatchWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	run := func(workers int) []BatchResult {
		s := newTest(t, 512, 0.08, WithSeed(24), WithWorkers(workers))
		res, err := s.LookupBatch(ctx, batchKeys(100))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		for i := range ref {
			if got[i].Info != ref[i].Info || (got[i].Err == nil) != (ref[i].Err == nil) {
				t.Fatalf("workers=%d: result %d diverged: %+v vs %+v", w, i, got[i], ref[i])
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	s := newTest(t, 256, 0)
	res, err := s.LookupBatch(context.Background(), nil)
	if err != nil || len(res) != 0 {
		t.Errorf("empty batch: %v, %d results", err, len(res))
	}
}
