package tinygroups

import (
	"context"
	"fmt"
	"testing"
)

// recorder collects every event in arrival order.
type recorder struct {
	searches []SearchEvent
	epochs   []EpochEvent
	mints    []MintEvent
}

func (r *recorder) ObserveSearch(e SearchEvent) { r.searches = append(r.searches, e) }
func (r *recorder) ObserveEpoch(e EpochEvent)   { r.epochs = append(r.epochs, e) }
func (r *recorder) ObserveMint(e MintEvent)     { r.mints = append(r.mints, e) }

func TestObserverStreamsEvents(t *testing.T) {
	ctx := context.Background()
	rec := &recorder{}
	s := newTest(t, 512, 0.05, WithSeed(3), WithObserver(rec))

	if _, err := s.Put(ctx, "a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Lookup(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compute(ctx, "job", 1); err != nil {
		t.Fatal(err)
	}
	if len(rec.searches) != 4 {
		t.Fatalf("%d search events, want 4", len(rec.searches))
	}
	for i, wantOp := range []Op{OpPut, OpGet, OpLookup, OpCompute} {
		ev := rec.searches[i]
		if ev.Op != wantOp {
			t.Errorf("event %d op = %v, want %v", i, ev.Op, wantOp)
		}
		if !ev.OK || ev.Owner == 0 || ev.Hops <= 0 || ev.Messages <= 0 {
			t.Errorf("event %d incomplete: %+v", i, ev)
		}
	}

	st, err := s.AdvanceEpoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.epochs) != 1 || len(rec.mints) != 1 {
		t.Fatalf("epoch/mint events = %d/%d, want 1/1", len(rec.epochs), len(rec.mints))
	}
	if rec.epochs[0].Stats != st {
		t.Error("EpochEvent stats differ from AdvanceEpoch's return")
	}
	mint := rec.mints[0]
	if mint.Epoch != 1 || mint.Minted != 512 {
		t.Errorf("mint event malformed: %+v", mint)
	}
	beta := 0.05
	wantBad := int(beta * 512)
	if mint.Bad != wantBad {
		t.Errorf("mint.Bad = %d, want βn = %d", mint.Bad, wantBad)
	}
}

// TestObserverBatchOrder: batch operations report one event per key, in
// key order, regardless of the parallel execution order.
func TestObserverBatchOrder(t *testing.T) {
	ctx := context.Background()
	rec := &recorder{}
	s := newTest(t, 512, 0, WithSeed(4), WithObserver(rec), WithWorkers(4))
	keys := make([]string, 50)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	if _, err := s.LookupBatch(ctx, keys); err != nil {
		t.Fatal(err)
	}
	if len(rec.searches) != len(keys) {
		t.Fatalf("%d events for %d keys", len(rec.searches), len(keys))
	}
	for i, ev := range rec.searches {
		if ev.Key != keys[i] {
			t.Fatalf("event %d is for key %q, want %q (order broken)", i, ev.Key, keys[i])
		}
	}
}

// TestObserverDoesNotChangeResults: attaching an observer must not perturb
// a single random draw.
func TestObserverDoesNotChangeResults(t *testing.T) {
	ctx := context.Background()
	run := func(obs Observer) []Point {
		opts := []Option{WithSeed(6)}
		if obs != nil {
			opts = append(opts, WithObserver(obs))
		}
		s := newTest(t, 512, 0.05, opts...)
		var owners []Point
		for i := 0; i < 10; i++ {
			info, _ := s.Lookup(ctx, fmt.Sprintf("k%d", i))
			owners = append(owners, info.Owner)
		}
		if _, err := s.AdvanceEpoch(ctx); err != nil {
			t.Fatal(err)
		}
		info, _ := s.Lookup(ctx, "after")
		return append(owners, info.Owner)
	}
	bare := run(nil)
	observed := run(&recorder{})
	for i := range bare {
		if bare[i] != observed[i] {
			t.Fatalf("observer changed results at step %d", i)
		}
	}
}

func TestMultiObserver(t *testing.T) {
	ctx := context.Background()
	a, b := &recorder{}, &recorder{}
	s := newTest(t, 256, 0, WithObserver(MultiObserver(a, nil, b)))
	if _, err := s.Lookup(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AdvanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*recorder{"a": a, "b": b} {
		if len(r.searches) != 1 || len(r.epochs) != 1 || len(r.mints) != 1 {
			t.Errorf("observer %s missed events: %d/%d/%d", name, len(r.searches), len(r.epochs), len(r.mints))
		}
	}
}
