package tinygroups

import (
	"context"
	"fmt"
	"testing"
)

// TestLookupAllocFreeNilObserver gates the tentpole's zero-cost-hooks
// promise: with a nil observer, the keyed routing hot path — key hashing,
// source draw, path-free search, owner resolution, event gating — runs at
// 0 allocs/op once the scratch is warm.
func TestLookupAllocFreeNilObserver(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; the pooled scratch path cannot stay 0 allocs/op")
	}
	ctx := context.Background()
	s := newTest(t, 512, 0.05, WithSeed(13))
	key := "steady-state-key"
	for i := 0; i < 8; i++ { // warm the search scratch
		if _, err := s.Lookup(ctx, key); err != nil && err != ErrUnreachable {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		_, _ = s.Lookup(ctx, key)
	}); allocs != 0 {
		t.Errorf("Lookup with nil observer allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkLookup(b *testing.B) {
	s, err := New(4096, WithBeta(0.05), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = s.Lookup(ctx, "bench-key")
	}
}

func BenchmarkLookupBatch(b *testing.B) {
	s, err := New(4096, WithBeta(0.05), WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("bench-%03d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.LookupBatch(ctx, keys); err != nil {
			b.Fatal(err)
		}
	}
}
