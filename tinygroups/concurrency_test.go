package tinygroups

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadsDuringAdvance is the tentpole's race-detector stress:
// many goroutines hammer Lookup/Get/LookupBatch and Snapshot reads while
// the writer runs live AdvanceEpoch flips underneath them. Run under
// `go test -race`, this is the proof that the read path shares no mutable
// state with the construction: every read must be answered by exactly one
// generation, with no torn results and no stalls into an error state other
// than the conceded ErrUnreachable.
func TestConcurrentReadsDuringAdvance(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 512, 0.05, WithSeed(21))
	if _, err := s.Put(ctx, "stress-stored", []byte("v")); err != nil && !errors.Is(err, ErrUnreachable) {
		t.Fatal(err)
	}

	const (
		readers = 8
		epochs  = 3
	)
	stop := make(chan struct{})
	var badErr atomic.Value
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			keys := []string{"a", "b", "c", "d"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("stress-%d-%d", r, i%64)
				switch i % 4 {
				case 0:
					if _, err := s.Lookup(ctx, key); err != nil && !errors.Is(err, ErrUnreachable) {
						badErr.Store(fmt.Errorf("Lookup: %w", err))
						return
					}
				case 1:
					_, _, err := s.Get(ctx, "stress-stored")
					if err != nil && !errors.Is(err, ErrUnreachable) && !errors.Is(err, ErrNotFound) {
						badErr.Store(fmt.Errorf("Get: %w", err))
						return
					}
				case 2:
					if _, err := s.LookupBatch(ctx, keys); err != nil {
						badErr.Store(fmt.Errorf("LookupBatch: %w", err))
						return
					}
				case 3:
					// A pinned snapshot must answer from one epoch even as
					// flips land: epoch observed before and after the read
					// through the handle must match the handle itself.
					sn := s.Snapshot()
					e := sn.Epoch()
					if _, err := sn.Lookup(ctx, key); err != nil && !errors.Is(err, ErrUnreachable) {
						badErr.Store(fmt.Errorf("Snapshot.Lookup: %w", err))
						return
					}
					if sn.Epoch() != e {
						badErr.Store(fmt.Errorf("pinned snapshot changed epoch %d -> %d", e, sn.Epoch()))
						return
					}
				}
			}
		}(r)
	}

	for e := 0; e < epochs; e++ {
		if _, err := s.AdvanceEpoch(ctx); err != nil {
			close(stop)
			wg.Wait()
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := badErr.Load(); err != nil {
		t.Fatal(err)
	}
	if got := s.Epoch(); got != epochs {
		t.Fatalf("epoch = %d after %d advances", got, epochs)
	}
}

// TestReaderCountInvariance is the read-path half of the determinism
// contract: because every read draws its randomness from a hash-derived
// (seed, epoch, key) stream — never from shared rng state — the full
// result set over a key list is byte-identical whether it is collected by
// 1, 4 or 16 concurrent readers, and identical again to a LookupBatch of
// the same keys.
func TestReaderCountInvariance(t *testing.T) {
	ctx := context.Background()
	keys := make([]string, 96)
	for i := range keys {
		keys[i] = fmt.Sprintf("inv-%03d", i)
	}
	row := func(info LookupInfo, err error) string {
		return fmt.Sprintf("%v/%d/%d/%v", info.Owner, info.Hops, info.Messages, err)
	}

	collect := func(readers int) []string {
		s := newTest(t, 512, 0.08, WithSeed(33))
		out := make([]string, len(keys))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < readers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(keys) {
						return
					}
					info, err := s.Lookup(ctx, keys[i])
					out[i] = row(info, err)
				}
			}()
		}
		wg.Wait()
		return out
	}

	base := collect(1)
	for _, readers := range []int{4, 16} {
		got := collect(readers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("key %s: %d readers produced %s, 1 reader produced %s",
					keys[i], readers, got[i], base[i])
			}
		}
	}

	// The same keys through LookupBatch must also match: batching is a
	// throughput tool, never a semantic one.
	s := newTest(t, 512, 0.08, WithSeed(33))
	batch, err := s.LookupBatch(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range batch {
		if got := row(br.Info, br.Err); got != base[i] {
			t.Fatalf("key %s: batch produced %s, single lookup produced %s", keys[i], got, base[i])
		}
	}
}

// TestSnapshotPinsEpochAcrossFlips checks the pinned read handle: a
// Snapshot taken at epoch e keeps answering from e's generation across
// subsequent AdvanceEpoch flips and even after Close, while the System
// itself moves on.
func TestSnapshotPinsEpochAcrossFlips(t *testing.T) {
	ctx := context.Background()
	s, err := New(512, WithBeta(0.05), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	if sn.Epoch() != 0 || sn.N() != 512 {
		t.Fatalf("fresh snapshot epoch/N = %d/%d", sn.Epoch(), sn.N())
	}
	pinned := make(map[string]string)
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("pin-%d", i)
		info, err := sn.Lookup(ctx, key)
		pinned[key] = fmt.Sprintf("%v/%v", info.Owner, err)
	}
	if _, err := s.AdvanceEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != 1 || sn.Epoch() != 0 {
		t.Fatalf("system/snapshot epochs = %d/%d, want 1/0", s.Epoch(), sn.Epoch())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// The pinned generation outlives Close; replies stay byte-identical.
	for key, want := range pinned {
		info, err := sn.Lookup(ctx, key)
		if got := fmt.Sprintf("%v/%v", info.Owner, err); got != want {
			t.Fatalf("pinned lookup %s drifted: %s -> %s", key, want, got)
		}
	}
	// The closed System itself refuses reads.
	if _, err := s.Lookup(ctx, "pin-0"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Lookup on closed system: %v", err)
	}
}
