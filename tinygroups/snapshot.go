package tinygroups

import (
	"context"
	"sync"

	"repro/internal/engine"
	"repro/internal/epoch"
	"repro/internal/groups"
	"repro/internal/pow"
)

// snapshot is the immutable read state of one epoch generation: everything
// a routed read needs, resolved once at the swap and never mutated. The
// System holds the current snapshot in an atomic pointer; readers load it
// once per operation and work against a consistent generation no matter
// how many epoch flips happen underneath them.
type snapshot struct {
	gen *epoch.Generation
	// readSeed is the epoch's lookup-randomness root: every read of key k
	// in this generation draws its search source from the hash-derived
	// stream TrialSeed(readSeed, "lookup", h(k)) — a pure function of
	// (system seed, epoch, key), so results are byte-identical regardless
	// of reader count, batching, or interleaving with other operations.
	readSeed int64
	// mint is the epoch's PoW surface: the puzzle parameters and epoch
	// string every Mint and VerifyMints of this generation resolve against.
	// Like the rest of the snapshot it is immutable — an epoch flip swaps
	// in a fresh one (rotating the string and, under retargeting, τ), which
	// is exactly how the paper expires minted IDs.
	mint mintState
}

// mintState fixes one epoch's puzzle: solve against r at difficulty p.Tau.
type mintState struct {
	p pow.Params
	r []byte
	// seed roots the per-(miner, index) solver streams of this epoch.
	seed int64
	// work is p.Tau expressed as expected attempts per solution — the
	// retargeting currency.
	work float64
}

// newSnapshot captures gen as the system's read state, deriving the
// epoch's read-randomness root and mint puzzle from the configured seed
// and the current mint difficulty.
func newSnapshot(seed int64, gen *epoch.Generation, mintWork float64) *snapshot {
	p := pow.Params{Tau: pow.TauForWork(mintWork), StringLen: 32}
	return &snapshot{
		gen:      gen,
		readSeed: engine.TrialSeed(seed, "tinygroups/read-epoch", gen.Epoch),
		mint: mintState{
			p:    p,
			r:    pow.EpochString(seed, gen.Epoch, p.StringLen),
			seed: engine.TrialSeed(seed, "tinygroups/mint-epoch", gen.Epoch),
			work: mintWork,
		},
	}
}

// lookupAt routes from a deterministically-drawn source ID to the owner of
// key through the snapshot's group graph — the lock-free core of every
// keyed read. sc must be private to the caller (pooled via scratchPool).
func (sn *snapshot) lookupAt(key string, sc *groups.SearchScratch) (LookupInfo, error) {
	g := sn.gen.Graphs[0]
	r := g.Overlay().Ring()
	p := keyHash.PointString(key)
	rng := engine.NewStream(engine.TrialSeed(sn.readSeed, "lookup", int(p)))
	src := r.At(rng.Intn(r.Len()))
	res := g.SearchOutcome(src, p, sc)
	info := LookupInfo{Hops: res.Hops, Messages: res.Messages}
	if !res.OK {
		return info, ErrUnreachable
	}
	oi := res.LastRank
	if oi < 0 {
		oi = r.SuccessorIndex(p)
	}
	info.Owner = Point(r.At(oi))
	return info, nil
}

// Snapshot is a pinned, immutable read handle onto one epoch generation.
// Obtain one with System.Snapshot; it stays valid — and keeps answering
// against the same generation — across any number of AdvanceEpoch flips on
// the owning System, and even after the System is closed (the generation
// data it references is immutable and self-contained). A Snapshot is safe
// for concurrent use by any number of goroutines.
type Snapshot struct {
	snap *snapshot
	sys  *System
}

// Snapshot pins the current epoch generation as an immutable read handle.
// The returned Snapshot observes none of the System's subsequent epoch
// flips: it is the read-side anchor for callers that need several lookups
// answered by one consistent generation.
func (s *System) Snapshot() *Snapshot {
	return &Snapshot{snap: s.snap.Load(), sys: s}
}

// Epoch returns the epoch index of the pinned generation.
func (sn *Snapshot) Epoch() int { return sn.snap.gen.Epoch }

// N returns the population size of the pinned generation.
func (sn *Snapshot) N() int { return sn.snap.gen.Ring.Len() }

// Lookup routes key to its owner through the pinned generation's group
// graph, with the exact semantics of System.Lookup — except that the
// answer always comes from this snapshot's epoch, never a later one. It
// never fails with ErrClosed: the pinned generation outlives Close.
func (sn *Snapshot) Lookup(ctx context.Context, key string) (LookupInfo, error) {
	if err := ctx.Err(); err != nil {
		return LookupInfo{}, err
	}
	sc := sn.sys.getScratch()
	info, err := sn.snap.lookupAt(key, sc)
	sn.sys.putScratch(sc)
	sn.sys.observeSearch(OpLookup, key, err == nil, info.Owner, info.Hops, info.Messages)
	return info, err
}

// scratchPool pools *groups.SearchScratch route buffers for the lock-free
// read path: each read borrows one for the duration of a single search, so
// steady-state lookups stay allocation-free at any reader count.
type scratchPool struct{ p sync.Pool }

func (sp *scratchPool) get() *groups.SearchScratch {
	if sc, ok := sp.p.Get().(*groups.SearchScratch); ok {
		return sc
	}
	return &groups.SearchScratch{}
}

func (sp *scratchPool) put(sc *groups.SearchScratch) { sp.p.Put(sc) }
