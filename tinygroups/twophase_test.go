package tinygroups

import (
	"context"
	"errors"
	"testing"
)

// TestBuildCommitMatchesAdvance pins the public two-phase split against
// the one-shot AdvanceEpoch: same Stats, same serving fingerprint, same
// lookup answers, epoch after epoch.
func TestBuildCommitMatchesAdvance(t *testing.T) {
	one := newTest(t, 256, 0.05, WithSeed(7))
	two := newTest(t, 256, 0.05, WithSeed(7))
	ctx := context.Background()

	for e := 1; e <= 3; e++ {
		stOne, err := one.AdvanceEpoch(ctx)
		if err != nil {
			t.Fatal(err)
		}

		preFP := two.Fingerprint()
		stBuild, err := two.BuildEpoch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !two.HasPendingEpoch() {
			t.Fatalf("epoch %d: nothing pending after BuildEpoch", e)
		}
		if two.Epoch() != e-1 || two.Fingerprint() != preFP {
			t.Fatalf("epoch %d: BuildEpoch changed the serving generation", e)
		}
		stCommit, err := two.CommitEpoch()
		if err != nil {
			t.Fatal(err)
		}
		if stBuild != stCommit {
			t.Fatalf("epoch %d: build stats != commit stats", e)
		}
		if stOne != stCommit {
			t.Fatalf("epoch %d: one-shot stats %+v != two-phase stats %+v", e, stOne, stCommit)
		}
		if one.Fingerprint() != two.Fingerprint() {
			t.Fatalf("epoch %d: two-phase fingerprint diverged from AdvanceEpoch", e)
		}
		for _, key := range []string{"alpha", "beta", "gamma"} {
			a, errA := one.Lookup(ctx, key)
			b, errB := two.Lookup(ctx, key)
			if a != b || (errA == nil) != (errB == nil) {
				t.Fatalf("epoch %d: lookup(%q) diverged: %+v/%v vs %+v/%v", e, key, a, errA, b, errB)
			}
		}
	}
}

// TestAbortEpochReplaysIdentical pins the cluster-lockstep property at the
// public layer: build, abort, then one-shot advance must land on the exact
// generation a never-aborted system lands on.
func TestAbortEpochReplaysIdentical(t *testing.T) {
	plain := newTest(t, 256, 0.05, WithSeed(11))
	aborted := newTest(t, 256, 0.05, WithSeed(11))
	ctx := context.Background()

	stPlain, err := plain.AdvanceEpoch(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := aborted.BuildEpoch(ctx); err != nil {
		t.Fatal(err)
	}
	ok, err := aborted.AbortEpoch()
	if err != nil || !ok {
		t.Fatalf("AbortEpoch = %v, %v; want true, nil", ok, err)
	}
	if aborted.HasPendingEpoch() {
		t.Fatal("build still pending after AbortEpoch")
	}
	st, err := aborted.AdvanceEpoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st != stPlain {
		t.Fatalf("post-abort stats %+v != never-aborted stats %+v", st, stPlain)
	}
	if aborted.Fingerprint() != plain.Fingerprint() {
		t.Fatal("post-abort fingerprint diverged from never-aborted system")
	}
}

// TestCommitEpochNoPending pins the ErrNoPending contract, and that a
// bare abort is a reported no-op.
func TestCommitEpochNoPending(t *testing.T) {
	s := newTest(t, 256, 0.05)
	if _, err := s.CommitEpoch(); !errors.Is(err, ErrNoPending) {
		t.Fatalf("CommitEpoch with nothing pending = %v; want ErrNoPending", err)
	}
	ok, err := s.AbortEpoch()
	if err != nil || ok {
		t.Fatalf("AbortEpoch with nothing pending = %v, %v; want false, nil", ok, err)
	}
	if s.Epoch() != 0 {
		t.Fatalf("bare commit/abort advanced the epoch to %d", s.Epoch())
	}
}

// TestTwoPhaseClosed pins ErrClosed on every two-phase entry point.
func TestTwoPhaseClosed(t *testing.T) {
	s := newTest(t, 256, 0.05)
	s.Close()
	if _, err := s.BuildEpoch(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("BuildEpoch on closed system = %v; want ErrClosed", err)
	}
	if _, err := s.CommitEpoch(); !errors.Is(err, ErrClosed) {
		t.Fatalf("CommitEpoch on closed system = %v; want ErrClosed", err)
	}
	if _, err := s.AbortEpoch(); !errors.Is(err, ErrClosed) {
		t.Fatalf("AbortEpoch on closed system = %v; want ErrClosed", err)
	}
}

// TestFingerprintIdentifiesGeneration pins that fingerprints separate
// epochs and seeds but agree across independently-built equal systems.
func TestFingerprintIdentifiesGeneration(t *testing.T) {
	a := newTest(t, 256, 0.05, WithSeed(3))
	b := newTest(t, 256, 0.05, WithSeed(3))
	c := newTest(t, 256, 0.05, WithSeed(4))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same-seed systems disagree at epoch 0")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different seeds collide at epoch 0")
	}
	fp0 := a.Fingerprint()
	if _, err := a.AdvanceEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == fp0 {
		t.Fatal("fingerprint unchanged across an epoch advance")
	}
}
