package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Config tunes a closed-loop run. The zero value is completed by defaults:
// 4 workers, 1000 ops, seed 1.
type Config struct {
	// Concurrency is the number of closed-loop clients: each repeatedly
	// claims the next op index off a shared counter, executes it, and
	// records the latency — so offered load tracks service capacity
	// instead of overrunning it.
	Concurrency int
	// Ops is the total operation count of the run.
	Ops int
	// Seed drives the workload's op stream; two runs with equal seeds send
	// identical operations.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is one workload's measured service level, the unit of
// BENCH_service.json. Latencies are milliseconds.
type Result struct {
	Workload    string  `json:"workload"`
	Ops         int     `json:"ops"`
	OK          int     `json:"ok"`
	Unreachable int     `json:"unreachable"`
	NotFound    int     `json:"not_found"`
	Errors      int     `json:"errors"`
	Seconds     float64 `json:"seconds"`
	Throughput  float64 `json:"throughput_ops_per_s"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
	MeanMillis  float64 `json:"mean_ms"`
	MaxMillis   float64 `json:"max_ms"`
	// ReadOps / ReadP50Millis / ReadP99Millis cover only the lookup and
	// get operations of the workload. For workloads that mix reads with
	// epoch advances (churn-heavy, epoch-storm) the overall quantiles are
	// dominated by the advances; the read-only quantiles are what show
	// whether reads stay fast while an advance is in flight. Zero when
	// the workload issued no reads.
	ReadOps       int     `json:"read_ops,omitempty"`
	ReadP50Millis float64 `json:"read_p50_ms,omitempty"`
	ReadP99Millis float64 `json:"read_p99_ms,omitempty"`
	// MintOps / MintP50Millis / MintP99Millis cover only the mint
	// operations — each is a full PoW solve, so its quantiles sit far from
	// the routing ops and would otherwise be invisible inside the overall
	// distribution. Zero when the workload minted nothing.
	MintOps       int     `json:"mint_ops,omitempty"`
	MintP50Millis float64 `json:"mint_p50_ms,omitempty"`
	MintP99Millis float64 `json:"mint_p99_ms,omitempty"`
	// SuccessRate is OK/Ops — the headline number of an attack run: the
	// fraction of operations the system answered successfully under
	// whatever pressure the workload applied.
	SuccessRate float64 `json:"success_rate"`
	// ByStatus breaks every non-OK operation down by its cause:
	// "unreachable" and "not_found" for the semantic outcomes, "http_NNN"
	// for transport-level statuses (429 saturation, 503 draining, 504
	// write timeouts), "error" for everything else. Empty when every op
	// succeeded.
	ByStatus map[string]int `json:"by_status,omitempty"`
	// Retries counts transport-level retry attempts the target performed
	// (see WithRetry). A retried-then-successful op counts once in OK and
	// once per extra attempt here — retries never inflate success.
	Retries int64 `json:"retries,omitempty"`
}

// workerTally is one worker's private accounting, merged after the run so
// the hot loop shares nothing.
type workerTally struct {
	lat                                metrics.Summary
	readLat                            metrics.Summary
	mintLat                            metrics.Summary
	ok, unreachable, notFound, errored int
	byStatus                           map[string]int
}

// count records one non-OK cause in the worker's by-status breakdown.
func (t *workerTally) count(key string) {
	if t.byStatus == nil {
		t.byStatus = make(map[string]int)
	}
	t.byStatus[key]++
}

// statusKey classifies one non-OK result for the ByStatus breakdown.
func statusKey(out Outcome, err error) string {
	if err == nil {
		return out.String()
	}
	var se *StatusError
	if errors.As(err, &se) {
		return fmt.Sprintf("http_%d", se.Status)
	}
	return "error"
}

// Run drives gen against target closed-loop and returns the measured
// service level. Workers claim op indices off a shared counter: which
// worker runs which op is scheduling-dependent, but the op *content* is a
// pure function of (seed, index), so the executed operation set is
// identical across runs and concurrency levels. Run stops early (with
// ctx.Err()) when ctx cancels; the partial result is still returned.
func Run(ctx context.Context, target Target, gen Generator, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	tallies := make([]workerTally, cfg.Concurrency)
	var retriesBefore int64
	if rc, ok := target.(RetryCounter); ok {
		retriesBefore = rc.Retries()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(t *workerTally) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= cfg.Ops {
					return
				}
				op := gen.Op(cfg.Seed, i)
				t0 := time.Now()
				out, err := target.Do(ctx, op)
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				t.lat.Add(ms)
				if op.Kind == KindLookup || op.Kind == KindGet {
					t.readLat.Add(ms)
				}
				if op.Kind == KindMint {
					t.mintLat.Add(ms)
				}
				switch {
				case err != nil:
					t.errored++
					t.count(statusKey(out, err))
				case out == OK:
					t.ok++
				case out == Unreachable:
					t.unreachable++
					t.count(statusKey(out, nil))
				case out == NotFound:
					t.notFound++
					t.count(statusKey(out, nil))
				}
			}
		}(&tallies[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lat, readLat, mintLat metrics.Summary
	res := Result{Workload: gen.Name(), Seconds: elapsed.Seconds()}
	for i := range tallies {
		t := &tallies[i]
		lat.Merge(&t.lat)
		readLat.Merge(&t.readLat)
		mintLat.Merge(&t.mintLat)
		res.OK += t.ok
		res.Unreachable += t.unreachable
		res.NotFound += t.notFound
		res.Errors += t.errored
		for k, c := range t.byStatus {
			if res.ByStatus == nil {
				res.ByStatus = make(map[string]int)
			}
			res.ByStatus[k] += c
		}
	}
	if rc, ok := target.(RetryCounter); ok {
		res.Retries = rc.Retries() - retriesBefore
	}
	res.Ops = lat.N()
	if res.Ops > 0 {
		res.SuccessRate = float64(res.OK) / float64(res.Ops)
	}
	if res.Seconds > 0 {
		res.Throughput = float64(res.Ops) / res.Seconds
	}
	res.P50Millis = lat.Quantile(0.50)
	res.P99Millis = lat.Quantile(0.99)
	res.MeanMillis = lat.Mean()
	res.MaxMillis = lat.Max()
	if res.ReadOps = readLat.N(); res.ReadOps > 0 {
		res.ReadP50Millis = readLat.Quantile(0.50)
		res.ReadP99Millis = readLat.Quantile(0.99)
	}
	if res.MintOps = mintLat.N(); res.MintOps > 0 {
		res.MintP50Millis = mintLat.Quantile(0.50)
		res.MintP99Millis = mintLat.Quantile(0.99)
	}
	return res, ctx.Err()
}

// Report is the BENCH_service.json document: one Result per workload of a
// sweep, plus the run's shape.
type Report struct {
	Target         string   `json:"target"`
	Concurrency    int      `json:"concurrency"`
	OpsPerWorkload int      `json:"ops_per_workload"`
	Seed           int64    `json:"seed"`
	Workloads      []Result `json:"workloads"`
}

// RunSuite runs every generator in order under one Config and collects the
// results into a Report (Target is left for the caller to stamp). It stops
// at the first context cancellation; transport errors within a workload do
// not abort the sweep — they surface in that workload's Errors count.
func RunSuite(ctx context.Context, target Target, gens []Generator, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rep := Report{
		Concurrency:    cfg.Concurrency,
		OpsPerWorkload: cfg.Ops,
		Seed:           cfg.Seed,
		Workloads:      make([]Result, 0, len(gens)),
	}
	for _, g := range gens {
		res, err := Run(ctx, target, g, cfg)
		rep.Workloads = append(rep.Workloads, res)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// WriteJSON writes the report as indented JSON — the format committed as
// BENCH_service.json, alongside the BENCH_*.json files cmd/benchjson
// produces.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
