// Package loadgen generates deterministic, reproducible workloads against
// a tinygroups deployment and drives them closed-loop while recording
// latency quantiles — the traffic half of the tinygroupsd serving layer.
//
// Workloads are pure functions of (seed, op index): every operation's
// kind, key and value derive from engine.TrialSeed(seed, workload, i), the
// same hash-derived substream convention the experiment engine and the
// epoch pipeline use. The op stream is therefore identical regardless of
// client concurrency or scheduling — two load runs with the same seed send
// exactly the same operations, no matter how the closed-loop workers
// interleave — which is what makes service-level results comparable across
// runs and machines.
//
//	gen := loadgen.Uniform(1024)
//	res, err := loadgen.Run(ctx, loadgen.NewHTTPTarget(addr), gen, loadgen.Config{
//		Concurrency: 8, Ops: 10000, Seed: 1,
//	})
//	fmt.Println(res.Throughput, res.P50Millis, res.P99Millis)
//
// The built-in generators cover six canonical traffic shapes: uniform
// reads, Zipf-like hotspot reads, a read/write mix, churn-heavy traffic
// that interleaves epoch turnovers with lookups, epoch-storm — reads
// sustained while epoch advances fire near-continuously, the probe for
// the lock-free snapshot read path — and mint-storm, sustained PoW
// identity minting across epoch rotations, the probe for the mint path.
// Suite returns all six for the standard sweep recorded in
// BENCH_service.json.
package loadgen

import (
	"fmt"
	"math"

	"repro/internal/engine"
)

// Kind is the operation class of one generated Op.
type Kind uint8

// The operation classes a workload can emit, mapping 1:1 onto the daemon's
// endpoints (lookup, put, get, epoch advance).
const (
	KindLookup Kind = iota
	KindPut
	KindGet
	KindAdvance
	KindMint
	KindBulkLookup
)

// String returns the op-kind name.
func (k Kind) String() string {
	switch k {
	case KindLookup:
		return "lookup"
	case KindPut:
		return "put"
	case KindGet:
		return "get"
	case KindAdvance:
		return "advance"
	case KindMint:
		return "mint"
	case KindBulkLookup:
		return "bulk-lookup"
	}
	return "unknown"
}

// Op is one generated operation. Advance ops carry no key; put ops carry a
// generated value; bulk-lookup ops carry Keys instead of Key.
type Op struct {
	Kind  Kind
	Key   string
	Value []byte
	// Keys is the key set of a KindBulkLookup op — one amortized
	// /v1/lookup/batch call (scatter-gathered across shards by a cluster
	// router).
	Keys []string
}

// Generator deterministically produces the i-th operation of a workload.
// Implementations must derive all randomness from (seed, i) — never from
// shared mutable state — so the op stream is independent of which client
// executes which index.
type Generator interface {
	// Name identifies the workload in reports and flag values.
	Name() string
	// Op returns operation i of the stream identified by seed. It must be
	// safe for concurrent use.
	Op(seed int64, i int) Op
}

// valueBytes is the size of generated put values.
const valueBytes = 16

// keyOf formats key index k of a keyspace; zero-padding keeps keys
// fixed-width so value sizes do not vary with the draw.
func keyOf(k int) string { return fmt.Sprintf("k%08d", k) }

// stream derives the private randomness stream of op i of the named
// workload — one TrialSeed hash, exactly the engine's per-trial contract.
func stream(scope string, seed int64, i int) engine.Stream {
	return engine.NewStream(engine.TrialSeed(seed, scope, i))
}

// clampKeys floors a keyspace size at 1 so a zero or negative size
// degenerates to a single hot key instead of panicking inside the
// closed-loop workers (Stream.Intn rejects non-positive bounds).
func clampKeys(keys int) int {
	if keys < 1 {
		return 1
	}
	return keys
}

// genValue fills a fresh value from the op's private stream.
func genValue(rng *engine.Stream) []byte {
	v := make([]byte, valueBytes)
	for i := range v {
		v[i] = byte(rng.Uint64())
	}
	return v
}

// uniform is the Uniform generator.
type uniform struct {
	keys  int
	scope string
}

// Uniform returns a workload of lookups with keys drawn uniformly from a
// keyspace of the given size — the unskewed read baseline.
func Uniform(keys int) Generator {
	return &uniform{keys: clampKeys(keys), scope: "loadgen/uniform"}
}

// Name implements Generator.
func (g *uniform) Name() string { return "uniform" }

// Op implements Generator.
func (g *uniform) Op(seed int64, i int) Op {
	rng := stream(g.scope, seed, i)
	return Op{Kind: KindLookup, Key: keyOf(rng.Intn(g.keys))}
}

// zipf is the ZipfHotspot generator.
type zipf struct {
	keys  int
	skew  float64
	scope string
}

// ZipfHotspot returns a workload of lookups with power-law key popularity:
// key index ⌊K·u^skew⌋ for uniform u, which concentrates mass on the
// low-index keys the way a Zipf tail does (skew 1 degenerates to uniform;
// the default suite uses skew 4, putting ≈32% of traffic on the hottest 1%
// of keys and ≈56% on the hottest 10%). The inverse-CDF form keeps the
// draw a single uniform variate per op, preserving the pure-(seed,i)
// determinism contract.
func ZipfHotspot(keys int, skew float64) Generator {
	if skew < 1 {
		skew = 1
	}
	return &zipf{keys: clampKeys(keys), skew: skew, scope: "loadgen/zipf"}
}

// Name implements Generator.
func (g *zipf) Name() string { return "zipf-hotspot" }

// Op implements Generator.
func (g *zipf) Op(seed int64, i int) Op {
	rng := stream(g.scope, seed, i)
	idx := int(float64(g.keys) * math.Pow(rng.Float64(), g.skew))
	if idx >= g.keys {
		idx = g.keys - 1
	}
	return Op{Kind: KindLookup, Key: keyOf(idx)}
}

// readwrite is the ReadWriteMix generator.
type readwrite struct {
	keys      int
	writeFrac float64
	scope     string
}

// ReadWriteMix returns a workload mixing puts (with generated values) and
// gets over a uniform keyspace; writeFrac ∈ [0,1] is the put share
// (default suite: 0.1). Gets of keys never written surface as the
// not_found outcome — the driver counts them separately from errors.
func ReadWriteMix(keys int, writeFrac float64) Generator {
	return &readwrite{keys: clampKeys(keys), writeFrac: writeFrac, scope: "loadgen/readwrite"}
}

// Name implements Generator.
func (g *readwrite) Name() string { return "readwrite-mix" }

// Op implements Generator.
func (g *readwrite) Op(seed int64, i int) Op {
	rng := stream(g.scope, seed, i)
	key := keyOf(rng.Intn(g.keys))
	if rng.Float64() < g.writeFrac {
		return Op{Kind: KindPut, Key: key, Value: genValue(&rng)}
	}
	return Op{Kind: KindGet, Key: key}
}

// churn is the ChurnHeavy generator.
type churn struct {
	keys         int
	advanceEvery int
	scope        string
}

// ChurnHeavy returns a workload of uniform lookups with one epoch advance
// every advanceEvery ops — sustained traffic over a population that keeps
// turning over, the serving-layer analogue of the dynamic experiments.
// The advance positions are fixed by index (i ≡ advanceEvery−1 mod
// advanceEvery), so the turnover schedule is part of the deterministic
// stream.
func ChurnHeavy(keys, advanceEvery int) Generator {
	if advanceEvery <= 0 {
		advanceEvery = 500
	}
	return &churn{keys: clampKeys(keys), advanceEvery: advanceEvery, scope: "loadgen/churn"}
}

// Name implements Generator.
func (g *churn) Name() string { return "churn-heavy" }

// Op implements Generator.
func (g *churn) Op(seed int64, i int) Op {
	if i%g.advanceEvery == g.advanceEvery-1 {
		return Op{Kind: KindAdvance}
	}
	rng := stream(g.scope, seed, i)
	return Op{Kind: KindLookup, Key: keyOf(rng.Intn(g.keys))}
}

// storm is the EpochStorm generator.
type storm struct {
	keys         int
	advanceEvery int
	scope        string
}

// EpochStorm returns a workload of sustained uniform lookups with epoch
// advances fired far more often than churn-heavy — one per advanceEvery
// ops, default 100 — so that under a concurrent closed-loop driver the
// reads overlap live epoch constructions almost continuously. It is the
// serving-layer probe for the lock-free read path: with reads resolving
// against the atomically-swapped epoch snapshot, read p99 should stay
// within ~2x of the steady-state workloads instead of stalling behind
// each construction. The advance positions are fixed by index, so the
// storm schedule is part of the deterministic stream.
func EpochStorm(keys, advanceEvery int) Generator {
	if advanceEvery <= 0 {
		advanceEvery = 100
	}
	return &storm{keys: clampKeys(keys), advanceEvery: advanceEvery, scope: "loadgen/epochstorm"}
}

// Name implements Generator.
func (g *storm) Name() string { return "epoch-storm" }

// Op implements Generator.
func (g *storm) Op(seed int64, i int) Op {
	if i%g.advanceEvery == g.advanceEvery-1 {
		return Op{Kind: KindAdvance}
	}
	rng := stream(g.scope, seed, i)
	return Op{Kind: KindLookup, Key: keyOf(rng.Intn(g.keys))}
}

// mintstorm is the MintStorm generator.
type mintstorm struct {
	advanceEvery int
	scope        string
}

// MintStorm returns a workload of sustained identity minting — every op
// solves a full PoW puzzle for a fresh miner identity — punctuated by one
// epoch advance per advanceEvery ops (default 500) so the mints keep
// crossing string rotations. It is the probe for the mint serving path:
// mints run outside the write queue, so the advances should not stall
// behind the solves or vice versa. The miner name of op i derives from
// (seed, i), keeping the stream a pure function of its coordinates.
func MintStorm(advanceEvery int) Generator {
	if advanceEvery <= 0 {
		advanceEvery = 500
	}
	return &mintstorm{advanceEvery: advanceEvery, scope: "loadgen/mintstorm"}
}

// Name implements Generator.
func (g *mintstorm) Name() string { return "mint-storm" }

// Op implements Generator. The miner identity rides in Key.
func (g *mintstorm) Op(seed int64, i int) Op {
	if i%g.advanceEvery == g.advanceEvery-1 {
		return Op{Kind: KindAdvance}
	}
	rng := stream(g.scope, seed, i)
	return Op{Kind: KindMint, Key: fmt.Sprintf("m%016x", rng.Uint64())}
}

// bulkread is the BulkRead generator.
type bulkread struct {
	keys  int
	batch int
	scope string
}

// BulkRead returns a workload of batched lookups: every op carries batch
// uniformly-drawn keys and resolves as one /v1/lookup/batch call. It is
// the probe for the amortized read path — and, through a cluster router,
// for the scatter-gather plane, since a batch of uniform keys splits
// across every shard. All keys of op i derive from the op's one private
// stream, keeping the pure-(seed,i) determinism contract.
func BulkRead(keys, batch int) Generator {
	if batch < 1 {
		batch = 16
	}
	return &bulkread{keys: clampKeys(keys), batch: batch, scope: "loadgen/bulkread"}
}

// Name implements Generator.
func (g *bulkread) Name() string { return "bulk-read" }

// Op implements Generator.
func (g *bulkread) Op(seed int64, i int) Op {
	rng := stream(g.scope, seed, i)
	ks := make([]string, g.batch)
	for j := range ks {
		ks[j] = keyOf(rng.Intn(g.keys))
	}
	return Op{Kind: KindBulkLookup, Keys: ks}
}

// Suite returns the standard 6-workload sweep — uniform, zipf-hotspot
// (skew 4), readwrite-mix (10% writes), churn-heavy (one advance per
// advanceEvery ops), epoch-storm (one advance per advanceEvery/5 ops,
// floored at 1) and mint-storm (one advance per advanceEvery ops) — over
// a keyspace of the given size. This is the sweep cmd/loadgen runs and
// BENCH_service.json records.
func Suite(keys, advanceEvery int) []Generator {
	return []Generator{
		Uniform(keys),
		ZipfHotspot(keys, 4),
		ReadWriteMix(keys, 0.1),
		ChurnHeavy(keys, advanceEvery),
		EpochStorm(keys, max(advanceEvery/5, 1)),
		MintStorm(advanceEvery),
	}
}
