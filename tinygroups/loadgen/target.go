package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/tinygroups"
)

// Outcome is the semantic result of one executed operation. Unreachable
// and NotFound are expected system behaviors (the conceded ε of Theorem 3,
// and reads of never-written keys), not failures — the driver tallies them
// separately from transport errors.
type Outcome uint8

// The semantic outcomes a Target reports.
const (
	OK Outcome = iota
	Unreachable
	NotFound
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Unreachable:
		return "unreachable"
	case NotFound:
		return "not_found"
	}
	return "unknown"
}

// Target executes generated operations against a system under test. Do
// returns the semantic outcome; the error is non-nil only for transport or
// system failures, which the driver counts as errors and does not retry.
// Implementations must be safe for concurrent use.
type Target interface {
	Do(ctx context.Context, op Op) (Outcome, error)
}

// RetryCounter is the optional interface of targets that retry failed
// attempts internally (see WithRetry). Run reads it before and after a
// workload to attribute the delta to that workload's Result.Retries —
// retries are accounted separately and never inflate the success count.
type RetryCounter interface {
	// Retries returns the cumulative retry count of the target.
	Retries() int64
}

// StatusError reports an HTTP response status the target has no semantic
// mapping for. The driver's per-status breakdown (Result.ByStatus) keys
// off Status, so saturation 429s, draining 503s and write-timeout 504s
// stay distinguishable in attack reports.
type StatusError struct {
	Method string
	Path   string
	Status int
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("loadgen: %s %s: unexpected status %d", e.Method, e.Path, e.Status)
}

// defaultRequestTimeout bounds each HTTP attempt unless WithRequestTimeout
// overrides it. 10s is far above any healthy endpoint's p99 (mints
// included) while letting chaos runs fail fast instead of hanging a
// closed-loop worker on a killed daemon.
const defaultRequestTimeout = 10 * time.Second

// TargetOption configures an HTTPTarget.
type TargetOption func(*HTTPTarget)

// WithRequestTimeout bounds each HTTP attempt (the http.Client timeout).
// Non-positive values keep the default.
func WithRequestTimeout(d time.Duration) TargetOption {
	return func(t *HTTPTarget) {
		if d > 0 {
			t.client.Timeout = d
		}
	}
}

// WithRetry enables bounded retries of attempts answered 429 (write queue
// saturated) or 503 (draining/restarting): up to max extra attempts per
// op, spaced by decorrelated-jitter backoff growing from base. Retries are
// counted on the Retries counter — the driver reports them separately, so
// a retried success never hides the rejection that preceded it. The
// backoff jitter is timing-only: it cannot affect which operations run or
// what they contain.
func WithRetry(max int, base time.Duration) TargetOption {
	return func(t *HTTPTarget) {
		if max < 0 {
			max = 0
		}
		if base <= 0 {
			base = 25 * time.Millisecond
		}
		t.maxRetries = max
		t.backoffBase = base
	}
}

// HTTPTarget drives a tinygroupsd daemon over its /v1 endpoints.
type HTTPTarget struct {
	base   string
	client *http.Client

	maxRetries  int
	backoffBase time.Duration
	retries     atomic.Int64
	backoffSeed atomic.Uint64 // per-sleep jitter stream; timing-only
}

// NewHTTPTarget returns a target for the daemon at baseURL (e.g.
// "http://127.0.0.1:8477"). Connections are pooled and reused across the
// closed-loop workers. By default each attempt is bounded by a 10s timeout
// and nothing retries; see WithRequestTimeout and WithRetry.
func NewHTTPTarget(baseURL string, opts ...TargetOption) *HTTPTarget {
	t := &HTTPTarget{
		base:   baseURL,
		client: &http.Client{Timeout: defaultRequestTimeout},
	}
	for _, opt := range opts {
		opt(t)
	}
	return t
}

// Retries implements RetryCounter.
func (t *HTTPTarget) Retries() int64 { return t.retries.Load() }

// WaitReady polls /healthz until the daemon answers 200, ctx cancels, or
// timeout elapses — the startup handshake of cmd/loadgen and the smoke
// gate.
func (t *HTTPTarget) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := t.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s/healthz not ready after %s (last: %v)", t.base, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// jsonBody marshals v for a request body.
func jsonBody(v any) ([]byte, error) {
	return json.Marshal(v)
}

// backoff sleeps one decorrelated-jitter step: uniform in [base, 3·prev],
// capped at 32× base. The jitter stream is a private splitmix sequence —
// deterministic per target, but purely a wall-clock knob; op content never
// depends on it.
func (t *HTTPTarget) backoff(ctx context.Context, prev time.Duration) time.Duration {
	lo := t.backoffBase
	hi := 3 * prev
	if hi < lo {
		hi = lo
	}
	if ceil := 32 * t.backoffBase; hi > ceil {
		hi = ceil
	}
	d := lo
	if hi > lo {
		rng := engine.NewStream(int64(t.backoffSeed.Add(1)))
		d = lo + time.Duration(rng.Uint64n(uint64(hi-lo)))
	}
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
	return d
}

// Do implements Target by mapping op kinds onto the daemon's endpoints and
// HTTP statuses back onto outcomes (200 → OK, 502 → Unreachable, 404 →
// NotFound; anything else is a *StatusError). Attempts answered 429 or 503
// are retried with backoff when WithRetry is configured.
func (t *HTTPTarget) Do(ctx context.Context, op Op) (Outcome, error) {
	var (
		method = http.MethodPost
		path   string
		body   []byte
		err    error
	)
	switch op.Kind {
	case KindLookup:
		path = "/v1/lookup"
		body, err = jsonBody(map[string]any{"key": op.Key})
	case KindPut:
		path = "/v1/put"
		body, err = jsonBody(map[string]any{"key": op.Key, "value": op.Value})
	case KindGet:
		method = http.MethodGet
		path = "/v1/get?key=" + url.QueryEscape(op.Key)
	case KindAdvance:
		path = "/v1/epoch/advance"
	case KindMint:
		path = "/v1/mint"
		body, err = jsonBody(map[string]any{"miner": op.Key, "count": 1})
	case KindBulkLookup:
		// One amortized batch call; per-key outcomes ride inside the 200
		// body, so the op-level outcome is the call's own.
		path = "/v1/lookup/batch"
		body, err = jsonBody(map[string]any{"keys": op.Keys})
	default:
		return OK, fmt.Errorf("loadgen: unknown op kind %d", op.Kind)
	}
	if err != nil {
		return OK, err
	}
	prev := t.backoffBase
	for attempt := 0; ; attempt++ {
		status, err := t.attempt(ctx, method, path, body)
		if err != nil {
			return OK, err
		}
		switch status {
		case http.StatusOK:
			return OK, nil
		case http.StatusBadGateway:
			return Unreachable, nil
		case http.StatusNotFound:
			return NotFound, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if attempt < t.maxRetries && ctx.Err() == nil {
				t.retries.Add(1)
				prev = t.backoff(ctx, prev)
				continue
			}
		}
		return OK, &StatusError{Method: method, Path: path, Status: status}
	}
}

// attempt issues one HTTP request and returns the response status.
func (t *HTTPTarget) attempt(ctx context.Context, method, path string, body []byte) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// SystemTarget drives an in-process tinygroups.System directly — the
// no-network baseline, and the target unit tests use. A System is safe
// for concurrent use (reads are lock-free against the epoch snapshot;
// writes serialize on the System's own writer mutex), so the closed-loop
// workers call it directly with no serialization in the target.
type SystemTarget struct {
	sys *tinygroups.System
}

// NewSystemTarget wraps sys. The caller keeps ownership (and Close).
func NewSystemTarget(sys *tinygroups.System) *SystemTarget {
	return &SystemTarget{sys: sys}
}

// Do implements Target over the library API.
func (t *SystemTarget) Do(ctx context.Context, op Op) (Outcome, error) {
	var err error
	switch op.Kind {
	case KindLookup:
		_, err = t.sys.Lookup(ctx, op.Key)
	case KindPut:
		_, err = t.sys.Put(ctx, op.Key, op.Value)
	case KindGet:
		_, _, err = t.sys.Get(ctx, op.Key)
	case KindAdvance:
		_, err = t.sys.AdvanceEpoch(ctx)
	case KindMint:
		_, err = t.sys.Mint(ctx, op.Key)
	case KindBulkLookup:
		// Mirrors the HTTP batch endpoint: per-key routing failures ride in
		// the per-item results, so only a call-level failure is an error.
		_, err = t.sys.LookupBatch(ctx, op.Keys)
	default:
		return OK, fmt.Errorf("loadgen: unknown op kind %d", op.Kind)
	}
	switch {
	case err == nil:
		return OK, nil
	case errors.Is(err, tinygroups.ErrUnreachable):
		return Unreachable, nil
	case errors.Is(err, tinygroups.ErrNotFound):
		return NotFound, nil
	default:
		return OK, err
	}
}
