package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"repro/tinygroups"
)

// Outcome is the semantic result of one executed operation. Unreachable
// and NotFound are expected system behaviors (the conceded ε of Theorem 3,
// and reads of never-written keys), not failures — the driver tallies them
// separately from transport errors.
type Outcome uint8

// The semantic outcomes a Target reports.
const (
	OK Outcome = iota
	Unreachable
	NotFound
)

// String returns the outcome name.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Unreachable:
		return "unreachable"
	case NotFound:
		return "not_found"
	}
	return "unknown"
}

// Target executes generated operations against a system under test. Do
// returns the semantic outcome; the error is non-nil only for transport or
// system failures, which the driver counts as errors and does not retry.
// Implementations must be safe for concurrent use.
type Target interface {
	Do(ctx context.Context, op Op) (Outcome, error)
}

// HTTPTarget drives a tinygroupsd daemon over its /v1 endpoints.
type HTTPTarget struct {
	base   string
	client *http.Client
}

// NewHTTPTarget returns a target for the daemon at baseURL (e.g.
// "http://127.0.0.1:8477"). Connections are pooled and reused across the
// closed-loop workers.
func NewHTTPTarget(baseURL string) *HTTPTarget {
	return &HTTPTarget{
		base:   baseURL,
		client: &http.Client{Timeout: 60 * time.Second},
	}
}

// WaitReady polls /healthz until the daemon answers 200, ctx cancels, or
// timeout elapses — the startup handshake of cmd/loadgen and the smoke
// gate.
func (t *HTTPTarget) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := t.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s/healthz not ready after %s (last: %v)", t.base, timeout, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// jsonBody marshals v for a request body.
func jsonBody(v any) (io.Reader, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(b), nil
}

// Do implements Target by mapping op kinds onto the daemon's endpoints and
// HTTP statuses back onto outcomes (200 → OK, 502 → Unreachable, 404 →
// NotFound; anything else is an error).
func (t *HTTPTarget) Do(ctx context.Context, op Op) (Outcome, error) {
	var (
		method = http.MethodPost
		path   string
		body   io.Reader
		err    error
	)
	switch op.Kind {
	case KindLookup:
		path = "/v1/lookup"
		body, err = jsonBody(map[string]any{"key": op.Key})
	case KindPut:
		path = "/v1/put"
		body, err = jsonBody(map[string]any{"key": op.Key, "value": op.Value})
	case KindGet:
		method = http.MethodGet
		path = "/v1/get?key=" + url.QueryEscape(op.Key)
	case KindAdvance:
		path = "/v1/epoch/advance"
	case KindMint:
		path = "/v1/mint"
		body, err = jsonBody(map[string]any{"miner": op.Key, "count": 1})
	default:
		return OK, fmt.Errorf("loadgen: unknown op kind %d", op.Kind)
	}
	if err != nil {
		return OK, err
	}
	req, err := http.NewRequestWithContext(ctx, method, t.base+path, body)
	if err != nil {
		return OK, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return OK, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return OK, nil
	case http.StatusBadGateway:
		return Unreachable, nil
	case http.StatusNotFound:
		return NotFound, nil
	default:
		return OK, fmt.Errorf("loadgen: %s %s: unexpected status %d", method, path, resp.StatusCode)
	}
}

// SystemTarget drives an in-process tinygroups.System directly — the
// no-network baseline, and the target unit tests use. A System is safe
// for concurrent use (reads are lock-free against the epoch snapshot;
// writes serialize on the System's own writer mutex), so the closed-loop
// workers call it directly with no serialization in the target.
type SystemTarget struct {
	sys *tinygroups.System
}

// NewSystemTarget wraps sys. The caller keeps ownership (and Close).
func NewSystemTarget(sys *tinygroups.System) *SystemTarget {
	return &SystemTarget{sys: sys}
}

// Do implements Target over the library API.
func (t *SystemTarget) Do(ctx context.Context, op Op) (Outcome, error) {
	var err error
	switch op.Kind {
	case KindLookup:
		_, err = t.sys.Lookup(ctx, op.Key)
	case KindPut:
		_, err = t.sys.Put(ctx, op.Key, op.Value)
	case KindGet:
		_, _, err = t.sys.Get(ctx, op.Key)
	case KindAdvance:
		_, err = t.sys.AdvanceEpoch(ctx)
	case KindMint:
		_, err = t.sys.Mint(ctx, op.Key)
	default:
		return OK, fmt.Errorf("loadgen: unknown op kind %d", op.Kind)
	}
	switch {
	case err == nil:
		return OK, nil
	case errors.Is(err, tinygroups.ErrUnreachable):
		return Unreachable, nil
	case errors.Is(err, tinygroups.ErrNotFound):
		return NotFound, nil
	default:
		return OK, err
	}
}
