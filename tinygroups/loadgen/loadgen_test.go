package loadgen

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/tinygroups"
)

// TestGeneratorDeterminism checks the core contract: every built-in
// workload's op stream is a pure function of (seed, index) — recomputing
// an op gives the identical value, and changing the seed changes the
// stream.
func TestGeneratorDeterminism(t *testing.T) {
	for _, g := range append(Suite(256, 50), BulkRead(256, 16)) {
		t.Run(g.Name(), func(t *testing.T) {
			var differs bool
			for i := 0; i < 200; i++ {
				a, b := g.Op(1, i), g.Op(1, i)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("op %d not reproducible: %+v vs %+v", i, a, b)
				}
				if !reflect.DeepEqual(g.Op(1, i), g.Op(2, i)) {
					differs = true
				}
			}
			if !differs {
				t.Fatal("seeds 1 and 2 generated identical 200-op streams")
			}
		})
	}
}

// TestGeneratorShapes spot-checks each workload's distribution promises:
// uniform spread, zipf concentration, the write fraction, and the fixed
// churn schedule.
func TestGeneratorShapes(t *testing.T) {
	const keys, ops = 256, 4000

	t.Run("uniform", func(t *testing.T) {
		g := Uniform(keys)
		seen := map[string]bool{}
		for i := 0; i < ops; i++ {
			op := g.Op(1, i)
			if op.Kind != KindLookup {
				t.Fatalf("op %d: kind %v, want lookup", i, op.Kind)
			}
			seen[op.Key] = true
		}
		if len(seen) < keys*9/10 {
			t.Fatalf("uniform hit only %d/%d keys over %d ops", len(seen), keys, ops)
		}
	})

	t.Run("zipf-hotspot", func(t *testing.T) {
		g := ZipfHotspot(keys, 4)
		hot := 0
		for i := 0; i < ops; i++ {
			if g.Op(1, i).Key < keyOf(keys/10) {
				hot++
			}
		}
		// skew 4 puts P(u < 0.1^(1/4)) ≈ 56% of traffic on the hottest 10%.
		if frac := float64(hot) / ops; frac < 0.45 || frac > 0.70 {
			t.Fatalf("hottest 10%% of keys drew %.2f of traffic, want ≈0.56", frac)
		}
	})

	t.Run("readwrite-mix", func(t *testing.T) {
		g := ReadWriteMix(keys, 0.1)
		puts := 0
		for i := 0; i < ops; i++ {
			switch op := g.Op(1, i); op.Kind {
			case KindPut:
				puts++
				if len(op.Value) != valueBytes {
					t.Fatalf("op %d: value %d bytes, want %d", i, len(op.Value), valueBytes)
				}
			case KindGet:
			default:
				t.Fatalf("op %d: kind %v, want put or get", i, op.Kind)
			}
		}
		if frac := float64(puts) / ops; frac < 0.07 || frac > 0.13 {
			t.Fatalf("write fraction %.3f, want ≈0.10", frac)
		}
	})

	t.Run("churn-heavy", func(t *testing.T) {
		const every = 50
		g := ChurnHeavy(keys, every)
		for i := 0; i < ops; i++ {
			op := g.Op(1, i)
			wantAdvance := i%every == every-1
			if (op.Kind == KindAdvance) != wantAdvance {
				t.Fatalf("op %d: kind %v, advance schedule broken", i, op.Kind)
			}
		}
	})

	t.Run("epoch-storm", func(t *testing.T) {
		const every = 20
		g := EpochStorm(keys, every)
		for i := 0; i < ops; i++ {
			op := g.Op(1, i)
			wantAdvance := i%every == every-1
			if (op.Kind == KindAdvance) != wantAdvance {
				t.Fatalf("op %d: kind %v, storm schedule broken", i, op.Kind)
			}
			if !wantAdvance && op.Kind != KindLookup {
				t.Fatalf("op %d: kind %v, want lookup between advances", i, op.Kind)
			}
		}
	})

	t.Run("mint-storm", func(t *testing.T) {
		const every = 25
		g := MintStorm(every)
		miners := map[string]bool{}
		for i := 0; i < ops; i++ {
			op := g.Op(1, i)
			wantAdvance := i%every == every-1
			if (op.Kind == KindAdvance) != wantAdvance {
				t.Fatalf("op %d: kind %v, mint-storm schedule broken", i, op.Kind)
			}
			if !wantAdvance {
				if op.Kind != KindMint || len(op.Key) != 17 {
					t.Fatalf("op %d: kind %v key %q, want a mint with fixed-width miner", i, op.Kind, op.Key)
				}
				miners[op.Key] = true
			}
		}
		// Fresh 64-bit draws: each op mints for a distinct identity.
		if want := ops - ops/every; len(miners) != want {
			t.Fatalf("mint-storm drew %d distinct miners over %d mints", len(miners), want)
		}
	})
	t.Run("bulk-read", func(t *testing.T) {
		const batch = 16
		g := BulkRead(keys, batch)
		seen := map[string]bool{}
		for i := 0; i < ops/batch; i++ {
			op := g.Op(1, i)
			if op.Kind != KindBulkLookup || op.Key != "" {
				t.Fatalf("op %d: kind %v key %q, want a keyless bulk lookup", i, op.Kind, op.Key)
			}
			if len(op.Keys) != batch {
				t.Fatalf("op %d: %d keys, want %d", i, len(op.Keys), batch)
			}
			for _, k := range op.Keys {
				seen[k] = true
			}
		}
		if len(seen) < keys/2 {
			t.Fatalf("bulk-read hit only %d/%d keys", len(seen), keys)
		}
	})
}

// TestBulkReadTargets drives the bulk workload against both target
// implementations — the in-process System and the HTTP daemon — and
// checks the batch endpoint resolves every call.
func TestBulkReadTargets(t *testing.T) {
	sys, err := tinygroups.New(128, tinygroups.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(sys, serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	for _, tc := range []struct {
		name   string
		target Target
	}{
		{"system", NewSystemTarget(sys)},
		{"http", NewHTTPTarget(ts.URL)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), tc.target, BulkRead(64, 8),
				Config{Concurrency: 4, Ops: 100, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops != 100 || res.Errors != 0 || res.OK != 100 {
				t.Fatalf("bulk-read via %s: %+v", tc.name, res)
			}
		})
	}
}

// TestRunSystemTarget drives the closed loop against an in-process System
// and checks the accounting adds up.
func TestRunSystemTarget(t *testing.T) {
	sys, err := tinygroups.New(128, tinygroups.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := Run(context.Background(), NewSystemTarget(sys), ReadWriteMix(64, 0.3),
		Config{Concurrency: 4, Ops: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 300 {
		t.Fatalf("ops = %d, want 300", res.Ops)
	}
	if sum := res.OK + res.Unreachable + res.NotFound + res.Errors; sum != res.Ops {
		t.Fatalf("outcome sum %d != ops %d (%+v)", sum, res.Ops, res)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (%+v)", res.Errors, res)
	}
	if res.OK == 0 {
		t.Fatal("no op succeeded — implausible at β=0.05")
	}
	if res.Throughput <= 0 || res.P99Millis < res.P50Millis {
		t.Fatalf("implausible latency summary: %+v", res)
	}
}

// TestRunSuiteHTTP is the end-to-end path: the full 6-workload sweep
// against a live serving layer over httptest, exactly what cmd/loadgen
// does against the daemon. Mint work is turned down so the mint-storm leg
// stays a smoke-scale solve.
func TestRunSuiteHTTP(t *testing.T) {
	sys, err := tinygroups.New(128, tinygroups.WithSeed(1), tinygroups.WithMintWork(1<<8))
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(sys, serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	target := NewHTTPTarget(ts.URL)
	if err := target.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err := RunSuite(context.Background(), target, Suite(64, 40),
		Config{Concurrency: 4, Ops: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 6 {
		t.Fatalf("workloads = %d, want 6", len(rep.Workloads))
	}
	for _, r := range rep.Workloads {
		if r.Ops != 120 {
			t.Fatalf("%s: ops = %d, want 120", r.Workload, r.Ops)
		}
		if r.Errors != 0 {
			t.Fatalf("%s: %d transport errors", r.Workload, r.Errors)
		}
	}
	if rep.Workloads[3].Workload != "churn-heavy" || rep.Workloads[4].Workload != "epoch-storm" {
		t.Fatalf("sweep order broken: %v", rep.Workloads)
	}
	mint := rep.Workloads[5]
	if mint.Workload != "mint-storm" || mint.MintOps == 0 || mint.MintP99Millis < mint.MintP50Millis {
		t.Fatalf("mint-storm leg broken: %+v", mint)
	}
}

// TestRunCancellation checks a cancelled context stops the closed loop
// early and surfaces ctx.Err.
func TestRunCancellation(t *testing.T) {
	sys, err := tinygroups.New(128, tinygroups.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, NewSystemTarget(sys), Uniform(64), Config{Concurrency: 2, Ops: 1000})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Ops >= 1000 {
		t.Fatalf("ops = %d, want early stop", res.Ops)
	}
}
