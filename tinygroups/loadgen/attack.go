package loadgen

import (
	"fmt"

	"repro/tinygroups"
)

// The adversarial workloads. Where the six canonical generators model
// friendly traffic, these three model the paper's Byzantine adversary
// hammering the serving path: a join flood saturating the identity-minting
// pipeline before each epoch flip, churn concentrated on one victim's key
// range, and an eclipse-style read storm over a clustered arc. Each is the
// same pure function of (seed, i) the friendly generators are — attack
// runs replay byte-identically at any concurrency — and each emits the
// standard Result row, so BENCH_faults.json slots next to
// BENCH_service.json in the golden machinery.

// pointDist returns the circular ID-space distance between two points —
// the wrap-aware metric the adversary's NearKey strategy minimizes.
func pointDist(a, b tinygroups.Point) uint64 {
	d := uint64(a - b)
	if d2 := uint64(b - a); d2 < d {
		d = d2
	}
	return d
}

// joinflood is the JoinFlood generator.
type joinflood struct {
	keys         int
	advanceEvery int
	burst        int
	scope        string
}

// JoinFlood returns the join-flood attack: sustained uniform lookups, but
// in the `burst` positions immediately before each epoch advance (one per
// advanceEvery ops) the workload floods the join path with identity mints
// for adversarial miners — the §IV join spam an epoch boundary must absorb
// while the PoW gate (Lemma 11) does its work. Burst is clamped below the
// period; miner names derive from (seed, i).
func JoinFlood(keys, advanceEvery, burst int) Generator {
	if advanceEvery <= 0 {
		advanceEvery = 200
	}
	if burst <= 0 {
		burst = 16
	}
	if burst >= advanceEvery {
		burst = advanceEvery - 1
	}
	return &joinflood{
		keys: clampKeys(keys), advanceEvery: advanceEvery, burst: burst,
		scope: "loadgen/joinflood",
	}
}

// Name implements Generator.
func (g *joinflood) Name() string { return "join-flood" }

// Op implements Generator. The adversarial miner identity rides in Key.
func (g *joinflood) Op(seed int64, i int) Op {
	phase := i % g.advanceEvery
	if phase == g.advanceEvery-1 {
		return Op{Kind: KindAdvance}
	}
	rng := stream(g.scope, seed, i)
	if phase >= g.advanceEvery-1-g.burst {
		return Op{Kind: KindMint, Key: fmt.Sprintf("adv%016x", rng.Uint64())}
	}
	return Op{Kind: KindLookup, Key: keyOf(rng.Intn(g.keys))}
}

// targetedchurn is the TargetedChurn generator.
type targetedchurn struct {
	keys         int
	advanceEvery int
	pool         int
	victim       tinygroups.Point
	scope        string
}

// TargetedChurn returns the targeted-churn attack: put/lookup pressure
// concentrated on the key range around one victim key, interleaved with
// epoch advances (one per advanceEvery ops) so the attacked range keeps
// re-homing. Key selection mirrors the adversary's NearKey placement
// strategy: each op draws `pool` candidate keys and keeps the one whose
// hash point lands closest to the victim's, so the pressure concentrates
// the way an adversary who can discard unwanted IDs concentrates. Even
// indices put (with generated values), odd indices look up — both on the
// targeted range.
func TargetedChurn(keys, advanceEvery, pool int, victim string) Generator {
	if advanceEvery <= 0 {
		advanceEvery = 200
	}
	if pool < 1 {
		pool = 8
	}
	return &targetedchurn{
		keys: clampKeys(keys), advanceEvery: advanceEvery, pool: pool,
		victim: tinygroups.KeyPoint(victim),
		scope:  "loadgen/targetedchurn",
	}
}

// Name implements Generator.
func (g *targetedchurn) Name() string { return "targeted-churn" }

// Op implements Generator.
func (g *targetedchurn) Op(seed int64, i int) Op {
	if i%g.advanceEvery == g.advanceEvery-1 {
		return Op{Kind: KindAdvance}
	}
	rng := stream(g.scope, seed, i)
	best, bestDist := 0, ^uint64(0)
	for c := 0; c < g.pool; c++ {
		k := rng.Intn(g.keys)
		if d := pointDist(tinygroups.KeyPoint(keyOf(k)), g.victim); d < bestDist {
			best, bestDist = k, d
		}
	}
	key := keyOf(best)
	if i%2 == 0 {
		return Op{Kind: KindPut, Key: key, Value: genValue(&rng)}
	}
	return Op{Kind: KindLookup, Key: key}
}

// eclipsestorm is the EclipseStorm generator.
type eclipsestorm struct {
	keys         int
	advanceEvery int
	pool         int
	limit        tinygroups.Point
	scope        string
}

// EclipseStorm returns the eclipse-style read storm: sustained lookups of
// keys whose hash points land in the arc [0, span) of the ID space — the
// §III-B region a Clustered adversary concentrates its IDs in — plus one
// epoch advance per advanceEvery ops so the storm crosses group-graph
// rebuilds. Run it against a daemon placed with the clustered strategy and
// the success-rate column reads out how well majority filtering holds
// inside the attacked arc. Each op draws up to `pool` candidate keys and
// keeps the first inside the arc (falling back to the candidate nearest
// it), keeping the stream a pure function of (seed, i).
func EclipseStorm(keys, advanceEvery, pool int, span float64) Generator {
	if advanceEvery <= 0 {
		advanceEvery = 200
	}
	if pool < 1 {
		pool = 8
	}
	if span <= 0 || span >= 1 { // a whole-ring "arc" is no eclipse
		span = 0.125
	}
	return &eclipsestorm{
		keys: clampKeys(keys), advanceEvery: advanceEvery, pool: pool,
		// 1<<64 is not representable; scale by 2^63 then shift, the
		// ring.FromFloat convention, so span 1 saturates instead of
		// overflowing.
		limit: tinygroups.Point(uint64(span*(1<<63)) << 1),
		scope: "loadgen/eclipsestorm",
	}
}

// Name implements Generator.
func (g *eclipsestorm) Name() string { return "eclipse-storm" }

// Op implements Generator.
func (g *eclipsestorm) Op(seed int64, i int) Op {
	if i%g.advanceEvery == g.advanceEvery-1 {
		return Op{Kind: KindAdvance}
	}
	rng := stream(g.scope, seed, i)
	best, bestDist := 0, ^uint64(0)
	for c := 0; c < g.pool; c++ {
		k := rng.Intn(g.keys)
		p := tinygroups.KeyPoint(keyOf(k))
		if p < g.limit {
			best = k
			break
		}
		if d := uint64(p - g.limit); d < bestDist {
			best, bestDist = k, d
		}
	}
	return Op{Kind: KindLookup, Key: keyOf(best)}
}

// AttackSuite returns the three adversarial workloads — join-flood,
// targeted-churn and eclipse-storm — over a keyspace of the given size
// with one epoch advance per advanceEvery ops. This is the sweep `make
// bench-faults` runs and BENCH_faults.json records.
func AttackSuite(keys, advanceEvery int) []Generator {
	return []Generator{
		JoinFlood(keys, advanceEvery, 16),
		TargetedChurn(keys, advanceEvery, 8, "victim"),
		EclipseStorm(keys, advanceEvery, 8, 0.125),
	}
}
