package loadgen_test

import (
	"fmt"

	"repro/tinygroups/loadgen"
)

// ExampleGenerator shows the determinism contract: a workload's op stream
// is a pure function of (seed, index), so any client — at any concurrency
// — regenerates exactly these operations.
func ExampleGenerator() {
	gen := loadgen.ChurnHeavy(64, 3)
	for i := 0; i < 4; i++ {
		op := gen.Op(1, i)
		if op.Key == "" {
			fmt.Println(i, op.Kind)
			continue
		}
		fmt.Println(i, op.Kind, op.Key)
	}
	// Output:
	// 0 lookup k00000001
	// 1 lookup k00000024
	// 2 advance
	// 3 lookup k00000022
}
