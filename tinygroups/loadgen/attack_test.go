package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/tinygroups"
)

// TestAttackGeneratorDeterminism extends the pure-(seed, i) contract to the
// adversarial workloads: attack streams must replay byte-identically and
// differ across seeds, exactly like the friendly six.
func TestAttackGeneratorDeterminism(t *testing.T) {
	for _, g := range AttackSuite(256, 50) {
		t.Run(g.Name(), func(t *testing.T) {
			var differs bool
			for i := 0; i < 200; i++ {
				a, b := g.Op(1, i), g.Op(1, i)
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("op %d not reproducible: %+v vs %+v", i, a, b)
				}
				if !reflect.DeepEqual(g.Op(1, i), g.Op(2, i)) {
					differs = true
				}
			}
			if !differs {
				t.Fatal("seeds 1 and 2 generated identical 200-op streams")
			}
		})
	}
}

// TestAttackGeneratorShapes spot-checks each attack's pressure pattern: the
// join-flood burst schedule, targeted-churn's concentration around the
// victim, and eclipse-storm's concentration inside the clustered arc.
func TestAttackGeneratorShapes(t *testing.T) {
	const keys, ops = 256, 4000

	t.Run("join-flood", func(t *testing.T) {
		const every, burst = 40, 8
		g := JoinFlood(keys, every, burst)
		for i := 0; i < ops; i++ {
			op := g.Op(1, i)
			phase := i % every
			switch {
			case phase == every-1:
				if op.Kind != KindAdvance {
					t.Fatalf("op %d: kind %v, want advance", i, op.Kind)
				}
			case phase >= every-1-burst:
				if op.Kind != KindMint || !strings.HasPrefix(op.Key, "adv") {
					t.Fatalf("op %d: kind %v key %q, want adversarial mint in the burst window", i, op.Kind, op.Key)
				}
			default:
				if op.Kind != KindLookup {
					t.Fatalf("op %d: kind %v, want lookup outside the burst", i, op.Kind)
				}
			}
		}
	})

	t.Run("targeted-churn", func(t *testing.T) {
		const every = 50
		g := TargetedChurn(keys, every, 8, "victim")
		victim := tinygroups.KeyPoint("victim")
		var sumDist, n float64
		for i := 0; i < ops; i++ {
			op := g.Op(1, i)
			if i%every == every-1 {
				if op.Kind != KindAdvance {
					t.Fatalf("op %d: kind %v, want advance", i, op.Kind)
				}
				continue
			}
			want := KindLookup
			if i%2 == 0 {
				want = KindPut
			}
			if op.Kind != want {
				t.Fatalf("op %d: kind %v, want %v", i, op.Kind, want)
			}
			sumDist += float64(pointDist(tinygroups.KeyPoint(op.Key), victim))
			n++
		}
		// A uniform draw averages 2^62 from the victim; keeping the best
		// of 8 candidates must concentrate well below half that.
		if mean := sumDist / n; mean > float64(uint64(1)<<61) {
			t.Fatalf("mean victim distance %.3g, want < 2^61 (no concentration)", mean)
		}
	})

	t.Run("eclipse-storm", func(t *testing.T) {
		const every, span = 50, 0.125
		g := EclipseStorm(keys, every, 8, span)
		limit := tinygroups.Point(uint64(span*(1<<63)) << 1)
		inArc, n := 0, 0
		for i := 0; i < ops; i++ {
			op := g.Op(1, i)
			if i%every == every-1 {
				if op.Kind != KindAdvance {
					t.Fatalf("op %d: kind %v, want advance", i, op.Kind)
				}
				continue
			}
			if op.Kind != KindLookup {
				t.Fatalf("op %d: kind %v, want lookup", i, op.Kind)
			}
			if tinygroups.KeyPoint(op.Key) < limit {
				inArc++
			}
			n++
		}
		// Uniform traffic would land span ≈ 12.5% of reads in the arc;
		// best-of-8 selection must concentrate far beyond that.
		if frac := float64(inArc) / float64(n); frac < 0.4 {
			t.Fatalf("in-arc fraction %.3f, want ≥ 0.4 (uniform is %.3f)", frac, span)
		}
	})
}

// flakyHandler answers every request 429 until `fails` attempts have been
// seen, then 200 — the saturation shape WithRetry exists for.
type flakyHandler struct {
	fails int64
	seen  atomic.Int64
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.seen.Add(1) <= h.fails {
		w.WriteHeader(http.StatusTooManyRequests)
		return
	}
	w.WriteHeader(http.StatusOK)
}

// TestHTTPTargetRetry checks the bounded-retry contract: 429s are retried
// with backoff up to the budget, the retry counter advances, and without
// WithRetry the 429 surfaces as a typed StatusError.
func TestHTTPTargetRetry(t *testing.T) {
	h := &flakyHandler{fails: 2}
	ts := httptest.NewServer(h)
	defer ts.Close()

	target := NewHTTPTarget(ts.URL, WithRetry(3, time.Millisecond))
	out, err := target.Do(context.Background(), Op{Kind: KindLookup, Key: "k"})
	if err != nil || out != OK {
		t.Fatalf("Do = %v, %v; want OK after retries", out, err)
	}
	if got := target.Retries(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}

	h.seen.Store(0)
	bare := NewHTTPTarget(ts.URL)
	_, err = bare.Do(context.Background(), Op{Kind: KindLookup, Key: "k"})
	se, ok := err.(*StatusError)
	if !ok || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want *StatusError{429}", err)
	}

	// A budget smaller than the failure run exhausts and surfaces the 429.
	h.seen.Store(0)
	h.fails = 5
	short := NewHTTPTarget(ts.URL, WithRetry(2, time.Millisecond))
	_, err = short.Do(context.Background(), Op{Kind: KindLookup, Key: "k"})
	if se, ok := err.(*StatusError); !ok || se.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want exhausted-budget *StatusError{429}", err)
	}
}

// TestRunByStatusBreakdown checks the driver's per-status accounting: a
// target answering only 503 yields SuccessRate 0 and an http_503 row, and
// the retry delta lands in Result.Retries without touching OK.
func TestRunByStatusBreakdown(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	target := NewHTTPTarget(ts.URL, WithRetry(1, time.Millisecond))
	res, err := Run(context.Background(), target, Uniform(16),
		Config{Concurrency: 2, Ops: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK != 0 || res.SuccessRate != 0 {
		t.Fatalf("ok = %d, success rate = %v; want 0 against an all-503 target", res.OK, res.SuccessRate)
	}
	if res.ByStatus["http_503"] != 20 {
		t.Fatalf("by_status = %v, want http_503: 20", res.ByStatus)
	}
	if res.Retries != 20 {
		t.Fatalf("retries = %d, want 20 (one per op)", res.Retries)
	}
}
