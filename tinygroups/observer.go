package tinygroups

// Op names the operation behind a SearchEvent.
type Op uint8

// The keyed operations a SearchEvent can report: every routed search is
// triggered by one of these four.
const (
	OpLookup Op = iota
	OpPut
	OpGet
	OpCompute
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpLookup:
		return "lookup"
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpCompute:
		return "compute"
	}
	return "unknown"
}

// SearchEvent reports one routed search: the operation that triggered it,
// its outcome, and its secure-routing cost.
type SearchEvent struct {
	Op       Op
	Key      string
	OK       bool  // false when the search path hit a red group
	Owner    Point // suc(h(key)) on success, 0 otherwise
	Hops     int   // groups traversed
	Messages int64 // all-to-all message cost
}

// EpochEvent reports one completed epoch's construction statistics.
type EpochEvent struct {
	Stats Stats
}

// MintEvent reports the PoW minting outcome behind one epoch's generation
// (Lemma 11): the whole population re-mints, the adversary's computational
// share yields its ≈βn u.a.r. IDs.
type MintEvent struct {
	Epoch  int
	Minted int // IDs minted for the new generation (the population size)
	Bad    int // adversary-held IDs among them
}

// Observer receives system telemetry. Calls are synchronous, on the
// goroutine running the operation — and because reads are lock-free, two
// concurrent readers invoke ObserveSearch concurrently: implementations
// must be safe for concurrent use (atomics or a mutex) and fast. Epoch
// events (ObserveEpoch, ObserveMint) come only from the serialized writer
// and never race each other. Batch operations report their search events
// in key order after the parallel phase completes. A nil observer
// disables all of this at zero cost (no event values are built).
type Observer interface {
	// ObserveSearch is called once per routed operation (Lookup, Put, Get,
	// Compute, and each key of a batch).
	ObserveSearch(SearchEvent)
	// ObserveEpoch is called after each successful AdvanceEpoch.
	ObserveEpoch(EpochEvent)
	// ObserveMint is called after each successful AdvanceEpoch with the
	// minting telemetry of the generation just built.
	ObserveMint(MintEvent)
}

// MultiObserver fans every event out to each observer in order; nil
// entries are skipped.
func MultiObserver(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	return multiObserver(kept)
}

type multiObserver []Observer

func (m multiObserver) ObserveSearch(e SearchEvent) {
	for _, o := range m {
		o.ObserveSearch(e)
	}
}

func (m multiObserver) ObserveEpoch(e EpochEvent) {
	for _, o := range m {
		o.ObserveEpoch(e)
	}
}

func (m multiObserver) ObserveMint(e MintEvent) {
	for _, o := range m {
		o.ObserveMint(e)
	}
}
