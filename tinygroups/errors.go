package tinygroups

import "errors"

// The package's error taxonomy. Every error returned by this package
// wraps (or is) one of these sentinels, so callers branch with errors.Is
// instead of string matching.
var (
	// ErrNotFound is returned by Get for keys never stored.
	ErrNotFound = errors.New("tinygroups: key not found")
	// ErrUnreachable is returned when an operation's search path traverses
	// a red group — the ε-fraction Theorem 3 concedes.
	ErrUnreachable = errors.New("tinygroups: key unreachable (search path hit a red group)")
	// ErrBadConfig wraps every construction-time validation failure: out
	// of range β, unknown overlay, population too small, and so on.
	ErrBadConfig = errors.New("tinygroups: invalid configuration")
	// ErrClosed is returned by operations on a System after Close.
	ErrClosed = errors.New("tinygroups: system closed")
	// ErrMintFailed is returned by Mint when the attempt budget exhausts
	// without a puzzle solution — astronomically unlikely at any configured
	// difficulty, so in practice it signals a miscalibrated work factor.
	ErrMintFailed = errors.New("tinygroups: mint attempt budget exhausted")
	// ErrNoPending is returned by CommitEpoch when no generation is parked
	// awaiting commit — BuildEpoch was never called, or the build aborted.
	ErrNoPending = errors.New("tinygroups: no pending epoch build")
)
