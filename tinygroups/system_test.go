package tinygroups

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
)

func newTest(t *testing.T, n int, beta float64, opts ...Option) *System {
	t.Helper()
	s, err := New(n, append([]Option{WithBeta(beta)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestNewRejectsBadConfig(t *testing.T) {
	cases := []struct {
		name string
		n    int
		opts []Option
	}{
		{"tiny N", 2, nil},
		{"beta ≥ 1/2", 256, []Option{WithBeta(0.6)}},
		{"negative beta", 256, []Option{WithBeta(-0.1)}},
		{"unknown overlay", 256, []Option{WithOverlay("nosuch")}},
		{"unknown strategy", 256, []Option{WithStrategy(Strategy(42))}},
		{"negative spam", 256, []Option{WithSpamFactor(-1)}},
		{"departures ≥ 1", 256, []Option{WithMidEpochDepartures(1.5)}},
		{"drift ≥ 1", 256, []Option{WithSizeDrift(1.0)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := New(c.n, c.opts...)
			if err == nil {
				s.Close()
				t.Fatal("invalid configuration accepted")
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig in its chain", err)
			}
		})
	}
}

func TestOptionsReachTheSystem(t *testing.T) {
	s := newTest(t, 256, 0.05, WithOverlay("debruijn"), WithSeed(9), WithWorkers(2))
	if s.N() != 256 {
		t.Errorf("N = %d", s.N())
	}
	if s.Epoch() != 0 {
		t.Errorf("fresh system at epoch %d", s.Epoch())
	}
	if gs := s.GroupSize(); gs < 4 || gs > 16 {
		t.Errorf("group size %d out of the Θ(log log n) range", gs)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 512, 0)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		if _, err := s.Put(ctx, key, val); err != nil {
			t.Fatalf("Put(%s): %v", key, err)
		}
		got, _, err := s.Get(ctx, key)
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get(%s) = %q, want %q", key, got, val)
		}
	}
}

func TestGetNotFound(t *testing.T) {
	s := newTest(t, 256, 0)
	_, _, err := s.Get(context.Background(), "missing")
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 256, 0)
	if _, err := s.Put(ctx, "k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _, _ := s.Get(ctx, "k")
	got[0] = 'X'
	again, _, _ := s.Get(ctx, "k")
	if string(again) != "abc" {
		t.Error("Get must return a copy, not the stored slice")
	}
}

func TestLookupDeterministicOwner(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 512, 0)
	i1, err := s.Lookup(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	i2, err := s.Lookup(ctx, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if i1.Owner != i2.Owner {
		t.Error("same key must resolve to the same owner within an epoch")
	}
	if i1.Messages <= 0 || i1.Hops <= 0 {
		t.Error("lookup cost missing")
	}
	if i1.Owner != Point(0) && KeyPoint("alpha") == 0 {
		t.Error("KeyPoint degenerate")
	}
}

func TestMostLookupsSucceedUnderAttack(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 1024, 0.08)
	fails := 0
	const total = 300
	for i := 0; i < total; i++ {
		if _, err := s.Lookup(ctx, fmt.Sprintf("k%d", i)); err != nil {
			fails++
		}
	}
	if float64(fails)/total > 0.10 {
		t.Errorf("%d/%d lookups failed at β=0.08 — ε-robustness shape violated", fails, total)
	}
}

func TestComputeOnGoodGroups(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 512, 0.05)
	correct, total := 0, 0
	for i := 0; i < 40; i++ {
		res, err := s.Compute(ctx, fmt.Sprintf("job-%d", i), i%2)
		if err != nil {
			continue // unreachable job: part of the conceded ε
		}
		total++
		if res.Correct {
			correct++
		}
		if res.Messages <= 0 {
			t.Error("compute cost missing")
		}
	}
	if total == 0 {
		t.Fatal("all jobs unreachable")
	}
	if float64(correct)/float64(total) < 0.9 {
		t.Errorf("only %d/%d jobs computed correctly at β=0.05", correct, total)
	}
}

func TestAdvanceEpochKeepsStore(t *testing.T) {
	ctx := context.Background()
	s := newTest(t, 256, 0.05)
	if _, err := s.Put(ctx, "persistent", []byte("v")); err != nil {
		t.Fatal(err)
	}
	st, err := s.AdvanceEpoch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 1 || s.Epoch() != 1 {
		t.Errorf("epoch bookkeeping wrong: %d / %d", st.Epoch, s.Epoch())
	}
	got, _, err := s.Get(ctx, "persistent")
	if err != nil {
		// Re-homing may land on a red group; retry once after another epoch.
		if _, err := s.AdvanceEpoch(ctx); err != nil {
			t.Fatal(err)
		}
		got, _, err = s.Get(ctx, "persistent")
	}
	if err != nil {
		t.Fatalf("value lost across epochs: %v", err)
	}
	if string(got) != "v" {
		t.Errorf("value corrupted: %q", got)
	}
}

func TestGroupSizeIsTiny(t *testing.T) {
	s := newTest(t, 4096, 0.05)
	gs := s.GroupSize()
	if gs < 4 || gs > 16 {
		t.Errorf("group size %d not in the Θ(log log n) range for n=4096", gs)
	}
}

func TestRobustnessReport(t *testing.T) {
	s := newTest(t, 512, 0.05)
	rob, err := s.Robustness(200)
	if err != nil {
		t.Fatal(err)
	}
	if rob.Samples != 200 || rob.N != 512 {
		t.Error("metadata wrong")
	}
	if rob.SearchFailRate > 0.15 {
		t.Errorf("fail rate %.3f too high at β=0.05", rob.SearchFailRate)
	}
}

// TestClosedSystem: every operation on a closed System fails with
// ErrClosed, and Close is idempotent.
func TestClosedSystem(t *testing.T) {
	ctx := context.Background()
	s, err := New(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Lookup(ctx, "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Lookup on closed system: %v", err)
	}
	if _, err := s.Put(ctx, "k", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put on closed system: %v", err)
	}
	if _, _, err := s.Get(ctx, "k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get on closed system: %v", err)
	}
	if _, err := s.Compute(ctx, "k", 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Compute on closed system: %v", err)
	}
	if _, err := s.AdvanceEpoch(ctx); !errors.Is(err, ErrClosed) {
		t.Errorf("AdvanceEpoch on closed system: %v", err)
	}
	if _, err := s.Robustness(10); !errors.Is(err, ErrClosed) {
		t.Errorf("Robustness on closed system: %v", err)
	}
	if _, err := s.LookupBatch(ctx, []string{"k"}); !errors.Is(err, ErrClosed) {
		t.Errorf("LookupBatch on closed system: %v", err)
	}
	if _, err := s.PutBatch(ctx, []KV{{Key: "k"}}); !errors.Is(err, ErrClosed) {
		t.Errorf("PutBatch on closed system: %v", err)
	}
}

// TestDeterministicAcrossInstances: two Systems with identical options
// replay an identical operation sequence identically — the public API
// inherits the engine's determinism contract.
func TestDeterministicAcrossInstances(t *testing.T) {
	ctx := context.Background()
	run := func(workers int) []string {
		s := newTest(t, 512, 0.08, WithSeed(77), WithWorkers(workers))
		var log []string
		for i := 0; i < 20; i++ {
			info, err := s.Lookup(ctx, fmt.Sprintf("k%d", i))
			log = append(log, fmt.Sprintf("%v/%v/%d", info.Owner, err, info.Messages))
		}
		st, err := s.AdvanceEpoch(ctx)
		if err != nil {
			t.Fatal(err)
		}
		log = append(log, fmt.Sprintf("%+v", st))
		return log
	}
	a, b, c := run(1), run(1), run(4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-options replay diverged at step %d: %s vs %s", i, a[i], b[i])
		}
		if a[i] != c[i] {
			t.Fatalf("worker count leaked into results at step %d: %s vs %s", i, a[i], c[i])
		}
	}
}

// TestSingleGraphAblationDrifts: the WithSingleGraph arm must accumulate
// error across epochs while the default two-graph arm stays flat — the
// paper's §III argument, through the public API.
func TestSingleGraphAblationDrifts(t *testing.T) {
	ctx := context.Background()
	last := func(opts ...Option) float64 {
		s := newTest(t, 512, 0.05, opts...)
		var fail float64
		for e := 0; e < 4; e++ {
			st, err := s.AdvanceEpoch(ctx)
			if err != nil {
				t.Fatal(err)
			}
			fail = st.SearchFailRate
		}
		return fail
	}
	two := last(WithSeed(5))
	one := last(WithSeed(5), WithSingleGraph())
	if one < two {
		t.Errorf("ablation inverted: single-graph fail %.4f < two-graph %.4f", one, two)
	}
}
