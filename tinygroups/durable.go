package tinygroups

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/adversary"
	"repro/internal/epoch"
	"repro/internal/groups"
	"repro/internal/pow"
	"repro/internal/ring"
	disk "repro/internal/snapshot"
)

// This file wires the internal/snapshot durability layer into the System.
// With WithDataDir, every committed epoch boundary is persisted as an
// atomic, checksummed snapshot; puts between boundaries append to an op
// log; and New recovers by loading the newest valid snapshot and replaying
// the log instead of cold-bootstrapping. Determinism makes the recovery
// verifiable end to end: the restored generation must report the exact
// fingerprint the saver recorded, or the boot fails loudly rather than
// serve a subtly different universe.

// WithDataDir enables durability: snapshots and the op log live under dir
// (created if absent). When the directory already holds a valid snapshot
// whose configuration echo matches, New restores from it — byte-identical
// state, replayed puts — instead of bootstrapping from scratch.
func WithDataDir(dir string) Option { return func(c *config) { c.dataDir = dir } }

// WithSnapshotKeep sets how many epoch snapshots are retained on disk
// (default 3, minimum 1). Only meaningful with WithDataDir.
func WithSnapshotKeep(keep int) Option { return func(c *config) { c.snapshotKeep = keep } }

// DurabilityInfo reports the durability layer's state and counters; see
// System.Durability.
type DurabilityInfo struct {
	// Enabled is true when the System was built with WithDataDir.
	Enabled bool
	// Dir is the data directory path.
	Dir string
	// Recovered is true when New restored state from disk rather than
	// bootstrapping fresh.
	Recovered bool
	// SnapshotEpoch is the epoch of the newest snapshot written or loaded;
	// -1 when none.
	SnapshotEpoch int
	// SnapshotsWritten / OplogAppends / ReplayedOps count durable writes
	// since New. SkippedSnapshots and DiscardedLogBytes report what
	// recovery had to pass over (corrupt snapshot files, torn log tail).
	SnapshotsWritten  int64
	OplogAppends      int64
	ReplayedOps       int64
	SkippedSnapshots  int64
	DiscardedLogBytes int64
	// SnapshotFailures counts epoch-boundary persists that failed; LastErr
	// is the most recent failure message ("" when healthy).
	SnapshotFailures int64
	LastErr          string
}

// durableState is the System's handle on its data directory; nil when
// durability is off.
type durableState struct {
	dir  *disk.Dir
	keep int

	// oplog is the live op log for the current snapshot epoch; guarded by
	// the System's wmu like every other write-path mutation.
	oplog *disk.Log

	recovered         bool
	snapshotEpoch     atomic.Int64
	snapshotsWritten  atomic.Int64
	oplogAppends      atomic.Int64
	replayedOps       atomic.Int64
	skippedSnapshots  atomic.Int64
	discardedLogBytes atomic.Int64
	snapshotFailures  atomic.Int64
	lastErr           atomic.Value // string
}

// Durability reports whether the System persists state and what the
// durability layer has done so far. Safe from any goroutine.
func (s *System) Durability() DurabilityInfo {
	d := s.durable
	if d == nil {
		return DurabilityInfo{SnapshotEpoch: -1}
	}
	info := DurabilityInfo{
		Enabled:           true,
		Dir:               d.dir.Path(),
		Recovered:         d.recovered,
		SnapshotEpoch:     int(d.snapshotEpoch.Load()),
		SnapshotsWritten:  d.snapshotsWritten.Load(),
		OplogAppends:      d.oplogAppends.Load(),
		ReplayedOps:       d.replayedOps.Load(),
		SkippedSnapshots:  d.skippedSnapshots.Load(),
		DiscardedLogBytes: d.discardedLogBytes.Load(),
		SnapshotFailures:  d.snapshotFailures.Load(),
	}
	if e, ok := d.lastErr.Load().(string); ok {
		info.LastErr = e
	}
	return info
}

// configKey echoes every determinism-relevant setting into the snapshot's
// config guard. Workers, observers and retarget wiring are deliberately
// absent: a snapshot must load identically at any worker count, and the
// restore-equivalence gate checks exactly that.
func (c *config) configKey() disk.ConfigKey {
	return disk.ConfigKey{
		N:              c.n,
		Seed:           c.seed,
		BetaBits:       math.Float64bits(c.beta),
		Overlay:        c.overlayName,
		TwoGraphs:      !c.singleGraph,
		VerifyRequests: !c.noVerify,
		Strategy:       int(c.strategy),
		SpamFactor:     c.spamFactor,
		DepartBits:     math.Float64bits(c.midEpochDepartures),
		DriftBits:      math.Float64bits(c.sizeDrift),
	}
}

// epochConfig translates the public option set into the epoch layer's
// config — the single source both the bootstrap and restore paths build
// from, so they cannot drift apart.
func (c *config) epochConfig() (epoch.Config, error) {
	ecfg := epoch.DefaultConfig(c.n)
	ecfg.Params.Beta = c.beta
	ecfg.Overlay = c.overlayName
	ecfg.Strategy = adversary.Strategy(c.strategy)
	ecfg.Seed = c.seed
	ecfg.Workers = c.workers
	ecfg.TwoGraphs = !c.singleGraph
	ecfg.VerifyRequests = !c.noVerify
	ecfg.SpamFactor = c.spamFactor
	ecfg.MidEpochDepartures = c.midEpochDepartures
	ecfg.SizeDrift = c.sizeDrift
	if err := ecfg.Params.Validate(); err != nil {
		return epoch.Config{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return ecfg, nil
}

// buildSnapshot assembles the durable image of the serving state. Callers
// hold wmu (the epoch layer's single-writer discipline).
func (s *System) buildSnapshot() *disk.Snapshot {
	st := s.dyn.Persist()
	sn := &disk.Snapshot{
		Config:      s.cfg.configKey(),
		Epoch:       st.Epoch,
		RNGCount:    st.RNGCount,
		MintWork:    s.snap.Load().mint.work,
		Fingerprint: s.Fingerprint(),
		Ring:        pointsToU64(st.Ring),
		BadList:     pointsToU64(st.BadList),
	}
	if s.retarget != nil {
		sn.RetargetWork = s.retarget.Work()
	}
	for _, pg := range st.Graphs {
		g := make([]disk.Group, len(pg))
		for i, grp := range pg {
			members := make([]disk.Member, len(grp.Members))
			for j, m := range grp.Members {
				members[j] = disk.Member{ID: uint64(m.ID), Bad: m.Bad}
			}
			g[i] = disk.Group{Members: members, Bad: grp.Bad, Confused: grp.Confused}
		}
		sn.Graphs = append(sn.Graphs, g)
	}
	s.store.Range(func(k, v any) bool {
		sn.Keys = append(sn.Keys, disk.KV{Key: k.(string), Value: v.([]byte)})
		return true
	})
	sort.Slice(sn.Keys, func(i, j int) bool { return sn.Keys[i].Key < sn.Keys[j].Key })
	return sn
}

// persistLocked writes the current boundary's snapshot, rotates the op log
// to the new epoch, and prunes old files. Callers hold wmu.
func (s *System) persistLocked() error {
	d := s.durable
	sn := s.buildSnapshot()
	if err := d.dir.WriteSnapshot(sn); err != nil {
		return fmt.Errorf("write snapshot e%d: %w", sn.Epoch, err)
	}
	d.snapshotsWritten.Add(1)
	d.snapshotEpoch.Store(int64(sn.Epoch))
	if d.oplog != nil {
		d.oplog.Close()
	}
	lg, err := disk.CreateLog(d.dir.LogPath(sn.Epoch), sn.Epoch)
	if err != nil {
		return fmt.Errorf("rotate op log e%d: %w", sn.Epoch, err)
	}
	d.oplog = lg
	if err := d.dir.Prune(d.keep); err != nil {
		return fmt.Errorf("prune: %w", err)
	}
	return nil
}

// persistBoundaryLocked is persistLocked with failure telemetry instead of
// an error return: the in-memory flip has already committed, so a failed
// durable write degrades durability (counted, surfaced in Durability and
// /metrics) without failing the epoch advance. Callers hold wmu.
func (s *System) persistBoundaryLocked() {
	d := s.durable
	if d == nil {
		return
	}
	if err := s.persistLocked(); err != nil {
		d.snapshotFailures.Add(1)
		d.lastErr.Store(err.Error())
		return
	}
	d.lastErr.Store("")
}

// SaveSnapshot forces a durable snapshot of the current serving state —
// the same write an epoch boundary performs, on demand (operational
// checkpoint before shutdown, tests). It fails with ErrClosed after Close
// and with ErrBadConfig when the System has no data directory.
func (s *System) SaveSnapshot() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return ErrClosed
	}
	if s.durable == nil {
		return fmt.Errorf("%w: SaveSnapshot needs WithDataDir", ErrBadConfig)
	}
	if err := s.persistLocked(); err != nil {
		s.durable.snapshotFailures.Add(1)
		s.durable.lastErr.Store(err.Error())
		return err
	}
	s.durable.lastErr.Store("")
	return nil
}

// appendOpLocked logs one acknowledged put. Callers hold wmu. An append
// failure is returned to the writer — a durable System must not
// acknowledge a write it cannot replay.
func (s *System) appendOpLocked(key string, value []byte) error {
	d := s.durable
	if d == nil || d.oplog == nil {
		return nil
	}
	if err := d.oplog.Append(disk.Op{Key: key, Value: value}); err != nil {
		d.snapshotFailures.Add(1)
		d.lastErr.Store(err.Error())
		return fmt.Errorf("tinygroups: op log append: %w", err)
	}
	d.oplogAppends.Add(1)
	return nil
}

// openDurable attaches a data directory to a freshly-built System and
// either recovers from its newest valid snapshot or initializes it with
// the bootstrap state. Returns the restored *epoch.System (nil when the
// directory held nothing usable and the caller's bootstrap stands).
func openDurable(c *config) (*durableState, *disk.LoadResult, error) {
	dir, err := disk.Open(c.dataDir)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: data dir: %v", ErrBadConfig, err)
	}
	d := &durableState{dir: dir, keep: c.snapshotKeep}
	d.snapshotEpoch.Store(-1)
	d.lastErr.Store("")
	res, err := dir.LoadLatest()
	if err != nil {
		if err == disk.ErrNoSnapshot {
			return d, nil, nil
		}
		return nil, nil, fmt.Errorf("%w: data dir: %v", ErrBadConfig, err)
	}
	return d, res, nil
}

// restoreSystem rebuilds the epoch layer from a loaded snapshot.
func restoreSystem(c *config, sn *disk.Snapshot) (*epoch.System, error) {
	if sn.Config != c.configKey() {
		return nil, fmt.Errorf("%w: snapshot was written under a different configuration", disk.ErrConfigMismatch)
	}
	ecfg, err := c.epochConfig()
	if err != nil {
		return nil, err
	}
	st := epoch.PersistedState{
		Epoch:    sn.Epoch,
		RNGCount: sn.RNGCount,
		Ring:     u64ToPoints(sn.Ring),
		BadList:  u64ToPoints(sn.BadList),
	}
	for _, g := range sn.Graphs {
		pg := make([]epoch.PersistedGroup, len(g))
		for i, grp := range g {
			members := make([]groups.Member, len(grp.Members))
			for j, m := range grp.Members {
				members[j] = groups.Member{ID: ring.Point(m.ID), Bad: m.Bad}
			}
			pg[i] = epoch.PersistedGroup{Members: members, Bad: grp.Bad, Confused: grp.Confused}
		}
		st.Graphs = append(st.Graphs, pg)
	}
	dyn, err := epoch.Restore(ecfg, st)
	if err != nil {
		return nil, fmt.Errorf("%w: restore: %v", disk.ErrCorrupt, err)
	}
	return dyn, nil
}

// finishRecovery populates the restored System's read state: the store
// from the snapshot's keys plus the replayed op log, the mint surface from
// the persisted work, and the end-to-end fingerprint check. Called from
// New before the System is published anywhere.
func (s *System) finishRecovery(res *disk.LoadResult) error {
	sn := res.Snapshot
	for _, kv := range sn.Keys {
		v := make([]byte, len(kv.Value))
		copy(v, kv.Value)
		s.store.Store(kv.Key, v)
	}
	for _, op := range res.Ops {
		v := make([]byte, len(op.Value))
		copy(v, op.Value)
		s.store.Store(op.Key, v)
	}
	if s.retarget != nil && sn.RetargetWork > 0 {
		s.retarget = pow.NewRetargeter(sn.RetargetWork, pow.RetargetConfig{TargetSolve: s.cfg.mintTarget})
	}
	s.snap.Store(newSnapshot(s.cfg.seed, s.dyn.Generation(), sn.MintWork))
	if got := s.Fingerprint(); got != sn.Fingerprint {
		return fmt.Errorf("%w: restored generation fingerprint %s != saved %s", disk.ErrCorrupt, got, sn.Fingerprint)
	}
	d := s.durable
	d.recovered = true
	d.snapshotEpoch.Store(int64(sn.Epoch))
	d.replayedOps.Add(int64(len(res.Ops)))
	d.skippedSnapshots.Add(int64(res.SkippedSnapshots))
	d.discardedLogBytes.Add(int64(res.DiscardedLogBytes))
	// Fold the replayed ops into a fresh checkpoint of the same epoch: the
	// rewritten snapshot subsumes the log, and the rotated (empty) log
	// rules out unbounded log growth across repeated crashes. Replay is
	// idempotent, so a crash between the two writes is harmless.
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if err := s.persistLocked(); err != nil {
		return fmt.Errorf("recovery checkpoint: %w", err)
	}
	return nil
}

func pointsToU64(pts []ring.Point) []uint64 {
	out := make([]uint64, len(pts))
	for i, p := range pts {
		out[i] = uint64(p)
	}
	return out
}

func u64ToPoints(v []uint64) []ring.Point {
	out := make([]ring.Point, len(v))
	for i, p := range v {
		out[i] = ring.Point(p)
	}
	return out
}
