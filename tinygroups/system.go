package tinygroups

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ba"
	"repro/internal/epoch"
	"repro/internal/groups"
	"repro/internal/hashes"
	"repro/internal/pow"
	"repro/internal/ring"
	disk "repro/internal/snapshot"
)

// Point is a location in the system's circular ID space [0,1), encoded as
// a 64-bit fixed-point value (the paper's hash-range convention).
type Point uint64

// keyHash maps application keys into the ID space (the "globally-known
// hash function" applied to resource names, Appendix VI).
var keyHash = hashes.NewFunc("tinygroups.key")

// KeyPoint returns the ID-space point a key hashes to.
func KeyPoint(key string) Point { return Point(keyHash.PointString(key)) }

// LookupInfo describes one routed lookup.
type LookupInfo struct {
	Owner    Point // suc(h(key)): the ID responsible for the key
	Hops     int   // groups traversed
	Messages int64 // secure-routing message cost (all-to-all per hop)
}

// Stats reports one epoch's construction outcome (the public mirror of
// the epoch layer's statistics; see AdvanceEpoch).
type Stats struct {
	Epoch int
	// N is the population size of the generation built this epoch
	// (differs from the configured n only under WithSizeDrift).
	N int
	// QfSingle / QfDual are the measured failure probabilities of a single
	// old-graph search and of the both-graphs-fail event (≈ q_f and q_f²).
	QfSingle, QfDual float64
	// RedFraction is the red-group fraction of each new graph.
	RedFraction [2]float64
	// SearchFailRate is the post-construction search failure rate.
	SearchFailRate float64
	// ForcedBadMembers counts member slots the adversary captured because
	// both location searches failed.
	ForcedBadMembers int
	// ErroneousRejects counts good IDs that wrongly rejected a valid
	// membership/neighbor request.
	ErroneousRejects int
	// SpamAccepted counts bogus requests that slipped past verification.
	SpamAccepted int
	// MeanMemberships is the mean number of groups a good serving ID
	// belongs to (Lemma 10: O(log log n)).
	MeanMemberships float64
	// DepartedMembers / MajoritiesLost report mid-epoch departure erosion.
	DepartedMembers int
	MajoritiesLost  int
	// SearchMessages / Searches total the construction's secure-routing
	// message cost and search count.
	SearchMessages int64
	Searches       int64
}

func statsFrom(st epoch.Stats) Stats {
	return Stats{
		Epoch:            st.Epoch,
		N:                st.N,
		QfSingle:         st.QfSingle,
		QfDual:           st.QfDual,
		RedFraction:      st.RedFraction,
		SearchFailRate:   st.SearchFailRate,
		ForcedBadMembers: st.ForcedBadMembers,
		ErroneousRejects: st.ErroneousRejects,
		SpamAccepted:     st.SpamAccepted,
		MeanMemberships:  st.MeanMemberships,
		DepartedMembers:  st.DepartedMembers,
		MajoritiesLost:   st.MajoritiesLost,
		SearchMessages:   st.SearchMessages,
		Searches:         st.Searches,
	}
}

// Robustness aggregates the ε-robustness measurements of Theorem 3.
type Robustness struct {
	N              int
	GroupSize      int
	RedFraction    float64 // fraction of red groups (1 − first bullet of Thm 3)
	SearchFailRate float64 // fraction of failed searches (1 − second bullet)
	MeanRouteLen   float64 // groups traversed per successful search
	MeanMessages   float64 // messages per search (secure-routing cost)
	Samples        int
}

// ComputeResult reports one group-simulated computation (BA execution).
type ComputeResult struct {
	Group    Point // leader of the executing group
	Correct  bool  // the group was good and agreement held on the input
	Agreed   bool  // honest members agreed (vacuous in a bad group)
	Value    int
	Messages int64
}

// System is a running ε-robust deployment: a dynamic two-group-graph
// construction plus a replicated store keyed into its ID space. Create
// one with New, release it with Close.
//
// A System is safe for concurrent use. Reads — Lookup, Get, LookupBatch,
// Snapshot, Epoch, N, GroupSize — are lock-free: they resolve against the
// current epoch snapshot (an immutable generation view swapped atomically
// by AdvanceEpoch) and scale with reader goroutines. Writes — Put,
// PutBatch, Compute, AdvanceEpoch, Robustness, Close — serialize on an
// internal writer mutex; see the package documentation for the full
// contract.
type System struct {
	cfg config
	dyn *epoch.System

	// snap is the atomically-swapped epoch snapshot every read resolves
	// against: written only at construction and by AdvanceEpoch (under
	// wmu), loaded lock-free by any reader.
	snap atomic.Pointer[snapshot]
	// scratch pools the per-call search buffers of the lock-free read
	// path; see scratchPool.
	scratch scratchPool
	// closed gates every operation after Close. Reads load it lock-free.
	closed atomic.Bool

	// wmu serializes the writers. It is never taken on the read path.
	wmu sync.Mutex
	// rng is the writer-side randomness (Robustness sampling); guarded by
	// wmu. Reads never touch it — their randomness is hash-derived per
	// (epoch, key), which is what makes results independent of reader
	// interleaving.
	rng *rand.Rand
	// store replicates values at the group of each key's owner, keyed
	// string → []byte. Values survive churn (they are re-homed when the
	// ring turns over, exactly like resources in a DHT). Writers replace
	// whole value slices under wmu and never mutate one in place, so
	// lock-free readers always observe a complete value.
	store sync.Map

	// retarget adapts the mint difficulty from observed solve times; nil
	// unless WithMintRetarget. Guarded by wmu (AdvanceEpoch is its only
	// caller). mintSolves/mintNanos/mintAttempts are the lock-free
	// telemetry Mint feeds it: solve count, summed solve wall-clock, and
	// summed hash attempts since the last epoch advance.
	retarget     *pow.Retargeter
	mintSolves   atomic.Int64
	mintNanos    atomic.Int64
	mintAttempts atomic.Int64

	// durable is the data-directory handle when WithDataDir is set; nil
	// otherwise. Its op log is guarded by wmu like every other write.
	durable *durableState
}

// New builds a System of n IDs with trusted initialization (Appendix X)
// and the paper's two-group-graph dynamics, configured by opts. Invalid
// configurations fail with an error wrapping ErrBadConfig.
func New(n int, opts ...Option) (*System, error) {
	c := defaults(n)
	for _, opt := range opts {
		opt(&c)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	ecfg, err := c.epochConfig()
	if err != nil {
		return nil, err
	}
	// With a data dir, recovery runs first: the newest valid snapshot (if
	// any, and if its config echo matches) replaces the cold bootstrap.
	var (
		durable *durableState
		loaded  *disk.LoadResult
	)
	if c.dataDir != "" {
		durable, loaded, err = openDurable(&c)
		if err != nil {
			return nil, err
		}
	}
	var dyn *epoch.System
	if loaded != nil {
		dyn, err = restoreSystem(&c, loaded.Snapshot)
		if err != nil {
			return nil, err
		}
	} else {
		dyn, err = epoch.New(ecfg)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	s := &System{
		cfg:     c,
		dyn:     dyn,
		rng:     rand.New(rand.NewSource(c.seed + 0x5eed)),
		durable: durable,
	}
	if c.mintTarget > 0 {
		s.retarget = pow.NewRetargeter(c.mintWork, pow.RetargetConfig{TargetSolve: c.mintTarget})
	}
	if loaded != nil {
		if err := s.finishRecovery(loaded); err != nil {
			dyn.Close()
			return nil, err
		}
		return s, nil
	}
	s.snap.Store(newSnapshot(c.seed, dyn.Generation(), c.mintWork))
	if durable != nil {
		// Persist the bootstrap state immediately so a crash before the
		// first epoch flip still restarts from disk.
		s.wmu.Lock()
		err := s.persistLocked()
		s.wmu.Unlock()
		if err != nil {
			dyn.Close()
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return s, nil
}

// Close releases the system's construction worker pool. It is idempotent;
// every other operation on a closed System fails with ErrClosed, except
// reads through a Snapshot pinned before the close (immutable generation
// data needs no pool).
func (s *System) Close() error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.CompareAndSwap(false, true) {
		s.dyn.Close()
		if d := s.durable; d != nil && d.oplog != nil {
			d.oplog.Close()
			d.oplog = nil
		}
	}
	return nil
}

// N returns the configured system size.
func (s *System) N() int { return s.cfg.n }

// Epoch returns the current epoch index. It reads the epoch snapshot
// lock-free, so it is safe from any goroutine — including concurrently
// with an in-flight AdvanceEpoch, which it observes only once the swap
// commits.
func (s *System) Epoch() int { return s.snap.Load().gen.Epoch }

// GroupSize returns the tiny-group size Θ(log log n) in force.
func (s *System) GroupSize() int { return s.snap.Load().gen.Graphs[0].GroupSize() }

// getScratch borrows a search-scratch buffer for one lock-free read.
func (s *System) getScratch() *groups.SearchScratch { return s.scratch.get() }

// putScratch returns a borrowed scratch to the pool.
func (s *System) putScratch(sc *groups.SearchScratch) { s.scratch.put(sc) }

// observeSearch forwards one search outcome to the observer, if any. With
// concurrent readers, observer calls happen on the reading goroutines —
// see the Observer documentation for the concurrency contract.
func (s *System) observeSearch(op Op, key string, ok bool, owner Point, hops int, msgs int64) {
	if s.cfg.observer == nil {
		return
	}
	s.cfg.observer.ObserveSearch(SearchEvent{
		Op: op, Key: key, OK: ok, Owner: owner, Hops: hops, Messages: msgs,
	})
}

// lookup routes key to its owner against the current epoch snapshot — the
// zero-allocation, lock-free core of every keyed operation. The search
// source is drawn from a hash-derived per-(epoch, key) stream, so the
// result is a pure function of (seed, epoch, key): byte-identical at any
// reader count and under any interleaving with other operations.
func (s *System) lookup(ctx context.Context, op Op, key string) (LookupInfo, error) {
	if s.closed.Load() {
		return LookupInfo{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return LookupInfo{}, err
	}
	snap := s.snap.Load()
	sc := s.getScratch()
	info, err := snap.lookupAt(key, sc)
	s.putScratch(sc)
	s.observeSearch(op, key, err == nil, info.Owner, info.Hops, info.Messages)
	return info, err
}

// Lookup routes from a deterministically-drawn ID to the owner of key
// through the group graph. It fails with ErrUnreachable when the search
// path traverses a red group (the ε-fraction Theorem 3 concedes). Lookup
// is lock-free and safe to call from any number of goroutines; a call
// racing an epoch flip is answered entirely by one generation — the one
// whose snapshot it loaded — never a mix.
func (s *System) Lookup(ctx context.Context, key string) (LookupInfo, error) {
	return s.lookup(ctx, OpLookup, key)
}

// Put stores a value under key at the owner group (replicated across its
// members). It fails if the owner cannot be reached securely. Put is a
// write: concurrent calls are safe but serialize on the writer mutex.
func (s *System) Put(ctx context.Context, key string, value []byte) (LookupInfo, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	info, err := s.lookup(ctx, OpPut, key)
	if err != nil {
		return info, err
	}
	v := make([]byte, len(value))
	copy(v, value)
	// Log before acknowledging: a durable System must be able to replay
	// every put it accepted.
	if err := s.appendOpLocked(key, v); err != nil {
		return info, err
	}
	s.store.Store(key, v)
	return info, nil
}

// Get retrieves a value. It fails with ErrUnreachable if the route is
// insecure, or with ErrNotFound if the key was never stored. Get is
// lock-free and safe from any goroutine; racing a Put of the same key it
// returns either the complete old value or the complete new one.
func (s *System) Get(ctx context.Context, key string) ([]byte, LookupInfo, error) {
	info, err := s.lookup(ctx, OpGet, key)
	if err != nil {
		return nil, info, err
	}
	v, ok := s.store.Load(key)
	if !ok {
		return nil, info, ErrNotFound
	}
	stored := v.([]byte)
	out := make([]byte, len(stored))
	copy(out, stored)
	return out, info, nil
}

// Compute runs the job identified by jobKey on the group responsible for
// it: the members execute phase-king Byzantine agreement on the job's
// input bit. A good group always computes correctly (the paper's
// "reliable processor"); a bad group may not. Compute is an exclusive
// operation: concurrent calls are safe but serialize on the writer mutex.
func (s *System) Compute(ctx context.Context, jobKey string, input int) (ComputeResult, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	info, err := s.lookup(ctx, OpCompute, jobKey)
	if err != nil {
		return ComputeResult{}, err
	}
	g := s.snap.Load().gen.Graphs[0]
	grp := g.Group(ring.Point(info.Owner))
	if grp == nil {
		return ComputeResult{}, fmt.Errorf("tinygroups: owner %v leads no group", info.Owner)
	}
	n := grp.Size()
	tFaults := (n - 1) / 4
	byz := map[int]bool{}
	for i, m := range grp.Members {
		if m.Bad {
			byz[i] = true
		}
	}
	prefs := make([]int, n)
	for i := range prefs {
		prefs[i] = input
	}
	res := ba.Run(n, tFaults, prefs, byz, "equivocate")
	out := ComputeResult{
		Group:    info.Owner,
		Agreed:   res.Agreed,
		Value:    res.Value,
		Messages: res.Messages + info.Messages,
	}
	// Correct = the group is good (bad ≤ t) and honest members agreed on
	// the submitted input.
	out.Correct = !grp.Red() && len(byz) <= tFaults && res.Agreed && res.Value == input
	return out, nil
}

// AdvanceEpoch turns the population over through the §III two-graph
// construction and returns the epoch's construction statistics. Stored
// values persist (they re-home to the new owners).
//
// The upcoming generation is built entirely off to the side — reads keep
// resolving against the current snapshot, lock-free, for the whole
// construction — and the snapshot pointer flips in O(1) once the swap
// commits. Concurrent AdvanceEpoch calls are safe but serialize on the
// writer mutex.
//
// ctx is polled between per-ID construction batches: on cancellation the
// epoch aborts cleanly — the returned error wraps ctx.Err(), the snapshot
// never flips, and the System keeps serving the old generation.
func (s *System) AdvanceEpoch(ctx context.Context) (Stats, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return Stats{}, ErrClosed
	}
	est, err := s.dyn.RunEpochContext(ctx)
	if err != nil {
		return Stats{}, fmt.Errorf("tinygroups: epoch %d aborted: %w", s.dyn.Epoch()+1, err)
	}
	return s.publishLocked(est), nil
}

// publishLocked flips the read snapshot to the generation the epoch layer
// just committed and fires the epoch observers. It owns the mint-difficulty
// retarget: the closing epoch's observed solve times feed the retargeter
// before the epoch string rotates, and the telemetry counters reset either
// way so a later enablement never sees stale history. Callers hold wmu.
func (s *System) publishLocked(est epoch.Stats) Stats {
	work := s.snap.Load().mint.work
	solves, nanos := s.mintSolves.Swap(0), s.mintNanos.Swap(0)
	s.mintAttempts.Store(0)
	if s.retarget != nil {
		if solves > 0 {
			work = s.retarget.Observe(time.Duration(nanos / solves))
		} else {
			work = s.retarget.Work()
		}
	}
	s.snap.Store(newSnapshot(s.cfg.seed, s.dyn.Generation(), work))
	s.persistBoundaryLocked()
	st := statsFrom(est)
	if obs := s.cfg.observer; obs != nil {
		obs.ObserveMint(MintEvent{Epoch: st.Epoch, Minted: st.N, Bad: s.dyn.BadCount()})
		obs.ObserveEpoch(EpochEvent{Stats: st})
	}
	return st
}

// Robustness measures Theorem 3's two bullets on the current graphs over
// the given number of sampled searches. It consumes the system's writer
// rng, so it counts as a write: concurrent calls are safe but serialize
// on the writer mutex.
func (s *System) Robustness(samples int) (Robustness, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	if s.closed.Load() {
		return Robustness{}, ErrClosed
	}
	rob := s.snap.Load().gen.Graphs[0].MeasureRobustness(samples, s.rng)
	return Robustness{
		N:              rob.N,
		GroupSize:      rob.GroupSize,
		RedFraction:    rob.RedFraction,
		SearchFailRate: rob.SearchFailRate,
		MeanRouteLen:   rob.MeanRouteLen,
		MeanMessages:   rob.MeanMessages,
		Samples:        rob.Samples,
	}, nil
}
