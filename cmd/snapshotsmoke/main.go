// Command snapshotsmoke is the minimal durability gate: boot tinygroupsd
// with a data dir, drive a few epochs and puts over HTTP, SIGKILL the
// process, restart it on the same dir, and require the restarted daemon to
// report recovered=true with the pre-kill epoch fingerprint and every
// acknowledged key served back from disk. It is the CI-sized cousin of
// cmd/chaos: no adversarial load, no timing games — just the crash shape
// the snapshot + op-log layer exists for, in a couple of seconds.
//
// Usage:
//
//	snapshotsmoke -daemon PATH [-addr HOST:PORT] [-n N] [-seed S]
//	              [-epochs E] [-keys K] [-timeout D]
//
// A clean run exits 0; any assertion failing exits 1.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"syscall"
	"time"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// health is the slice of /healthz the assertions read.
type health struct {
	Epoch         int64  `json:"epoch"`
	Fingerprint   string `json:"fingerprint"`
	Durable       bool   `json:"durable"`
	Recovered     bool   `json:"recovered"`
	SnapshotEpoch int    `json:"snapshot_epoch"`
}

// client wraps the daemon's HTTP surface for the handful of calls the
// smoke needs.
type client struct {
	base string
	http *http.Client
}

func (c *client) waitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, err := c.health(); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("daemon not ready after %s: %w", timeout, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func (c *client) health() (health, error) {
	var h health
	resp, err := c.http.Get(c.base + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

func (c *client) advance() error {
	resp, err := c.http.Post(c.base+"/v1/epoch/advance", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("advance status %d", resp.StatusCode)
	}
	return nil
}

func (c *client) put(key string, value []byte) bool {
	body, _ := json.Marshal(map[string]any{"key": key, "value": value})
	resp, err := c.http.Post(c.base+"/v1/put", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (c *client) get(key string) ([]byte, bool) {
	resp, err := c.http.Get(c.base + "/v1/get?key=" + key)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	var out struct {
		Value []byte `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, false
	}
	return out.Value, true
}

// startDaemon launches the daemon binary; readiness is the caller's
// waitReady.
func startDaemon(bin string, stderr io.Writer, args ...string) (*exec.Cmd, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = stderr
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("snapshotsmoke: start %s: %w", bin, err)
	}
	return cmd, nil
}

// run executes the smoke and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snapshotsmoke", flag.ContinueOnError)
	fs.SetOutput(stderr)
	daemon := fs.String("daemon", "", "path to the tinygroupsd binary (required)")
	addr := fs.String("addr", "127.0.0.1:8482", "listen address handed to the daemon")
	n := fs.Int("n", 256, "population size of the served system")
	seed := fs.Int64("seed", 1, "determinism seed handed to the daemon")
	epochs := fs.Int("epochs", 3, "epoch advances to drive before the kill")
	keys := fs.Int("keys", 16, "keys to put (spread across the epochs)")
	timeout := fs.Duration("timeout", 60*time.Second, "whole-run deadline")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *daemon == "" {
		fmt.Fprintln(stderr, "snapshotsmoke: -daemon is required")
		return 2
	}
	// The whole-run deadline is a blunt backstop: a wedged daemon fails the
	// smoke rather than hanging CI.
	watchdog := time.AfterFunc(*timeout, func() {
		fmt.Fprintf(stderr, "snapshotsmoke: watchdog fired after %s\n", *timeout)
		os.Exit(1)
	})
	defer watchdog.Stop()

	dir, err := os.MkdirTemp("", "snapshotsmoke-*")
	if err != nil {
		fmt.Fprintf(stderr, "snapshotsmoke: mkdir: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	daemonArgs := []string{
		"-addr", *addr,
		"-n", fmt.Sprint(*n),
		"-seed", fmt.Sprint(*seed),
		"-data-dir", dir,
		"-epoch-interval", "0",
	}
	c := &client{base: "http://" + *addr, http: &http.Client{Timeout: 2 * time.Second}}

	// Boot, then interleave epoch advances with puts so both the snapshot
	// (epoch state) and the op log (between-boundary writes) carry data.
	d, err := startDaemon(*daemon, stderr, daemonArgs...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() {
		if d.ProcessState == nil {
			_ = d.Process.Kill()
		}
	}()
	if err := c.waitReady(30 * time.Second); err != nil {
		fmt.Fprintf(stderr, "snapshotsmoke: boot: %v\n", err)
		return 1
	}
	stored := make(map[string][]byte)
	ki := 0
	for e := 0; e < *epochs; e++ {
		for ; ki < (e+1)*(*keys) / *epochs; ki++ {
			key := fmt.Sprintf("smoke-key-%03d", ki)
			val := []byte(fmt.Sprintf("smoke-val-%03d", ki))
			if c.put(key, val) {
				stored[key] = val
			}
		}
		if err := c.advance(); err != nil {
			fmt.Fprintf(stderr, "snapshotsmoke: advance %d: %v\n", e, err)
			return 1
		}
	}
	// A final unsnapshotted put exercises op-log replay on recovery.
	if c.put("smoke-key-tail", []byte("smoke-val-tail")) {
		stored["smoke-key-tail"] = []byte("smoke-val-tail")
	}
	if len(stored) == 0 {
		fmt.Fprintln(stderr, "snapshotsmoke: FAIL — no put acknowledged")
		return 1
	}
	before, err := c.health()
	if err != nil {
		fmt.Fprintf(stderr, "snapshotsmoke: pre-kill healthz: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "snapshotsmoke: pre-kill epoch %d fingerprint %s, %d keys acknowledged\n",
		before.Epoch, before.Fingerprint, len(stored))

	// The crash: SIGKILL, no drain, no warning.
	_ = d.Process.Kill()
	_ = d.Wait()
	fmt.Fprintln(stdout, "snapshotsmoke: daemon SIGKILLed")

	// Restart on the same dir and assert disk recovery: recovered=true,
	// same epoch, same fingerprint, every acknowledged key intact. A fresh
	// bootstrap would reproduce the fingerprint (determinism) but 404 the
	// keys — the keys are what prove the state came from disk.
	d2, err := startDaemon(*daemon, stderr, daemonArgs...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer func() {
		if d2.ProcessState == nil {
			_ = d2.Process.Kill()
		}
	}()
	if err := c.waitReady(30 * time.Second); err != nil {
		fmt.Fprintf(stderr, "snapshotsmoke: restart: %v\n", err)
		return 1
	}
	after, err := c.health()
	if err != nil {
		fmt.Fprintf(stderr, "snapshotsmoke: post-restart healthz: %v\n", err)
		return 1
	}
	if !after.Durable || !after.Recovered {
		fmt.Fprintf(stderr, "snapshotsmoke: FAIL — not recovered from disk (durable=%v recovered=%v)\n",
			after.Durable, after.Recovered)
		return 1
	}
	if after.Epoch != before.Epoch || after.Fingerprint != before.Fingerprint {
		fmt.Fprintf(stderr, "snapshotsmoke: FAIL — recovered epoch %d/%s, want %d/%s\n",
			after.Epoch, after.Fingerprint, before.Epoch, before.Fingerprint)
		return 1
	}
	for key, want := range stored {
		got, ok := c.get(key)
		if !ok || !bytes.Equal(got, want) {
			fmt.Fprintf(stderr, "snapshotsmoke: FAIL — key %q lost across the kill (ok=%v)\n", key, ok)
			return 1
		}
	}

	// Graceful drain of the survivor.
	if err := d2.Process.Signal(syscall.SIGTERM); err != nil {
		fmt.Fprintf(stderr, "snapshotsmoke: signal daemon: %v\n", err)
		return 1
	}
	if err := d2.Wait(); err != nil {
		fmt.Fprintf(stderr, "snapshotsmoke: daemon drain exited dirty: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "snapshotsmoke: PASS — epoch %d recovered, %d/%d keys intact, clean drain\n",
		after.Epoch, len(stored), len(stored))
	return 0
}
