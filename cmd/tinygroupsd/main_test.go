package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"positional args", []string{"extra"}},
		{"population too small", []string{"-n", "4"}},
		{"unknown overlay", []string{"-overlay", "torus"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			if code := run(context.Background(), c.args, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
		})
	}
}

func TestRunBadListenAddr(t *testing.T) {
	var stderr bytes.Buffer
	code := run(context.Background(), []string{"-n", "64", "-addr", "256.256.256.256:0"}, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "serve") {
		t.Fatalf("stderr missing serve error: %s", stderr.String())
	}
}

// TestRunCleanShutdown drives the daemon's full lifecycle: start, serve,
// signal (via context cancellation — the same path SIGTERM takes), drain,
// exit 0.
func TestRunCleanShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var stderr bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-n", "64", "-addr", "127.0.0.1:0", "-epoch-interval", "20ms"}, &stderr)
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("exit code = %d, want 0 (stderr: %s)", code, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of the signal")
	}
	if !strings.Contains(stderr.String(), "clean exit") {
		t.Fatalf("stderr missing clean-exit line: %s", stderr.String())
	}
}
