// Command tinygroupsd serves a tinygroups.System over HTTP/JSON — the
// long-lived process that owns epoch advancement while a fleet of clients
// reads through the API surface.
//
// Usage:
//
//	tinygroupsd [-addr HOST:PORT] [-n N] [-beta B] [-overlay NAME]
//	            [-seed S] [-workers W] [-epoch-interval D]
//	            [-max-batch K] [-queue Q] [-write-timeout D]
//	            [-mint-work W] [-mint-target D]
//	            [-data-dir PATH] [-snapshot-keep K]
//	            [-shard-index I -shard-count K] [-version]
//
// With -data-dir the daemon is durable: every committed epoch boundary is
// written as an atomic, checksummed snapshot under the directory, puts
// between boundaries append to an op log, and a restart with the same
// -data-dir restores the exact pre-crash state (byte-identical epoch
// fingerprint, all acknowledged puts) instead of re-bootstrapping.
// -snapshot-keep bounds the on-disk retention. Changing a
// determinism-relevant flag (-n, -seed, -beta, -overlay, ...) against an
// existing data dir fails at startup; wipe the directory to start over.
//
// In cluster mode (-shard-count K > 1) the daemon serves only the keys
// whose ring point falls in shard I's contiguous range, answering a typed
// 421 wrong_shard for the rest; a tinygroupsrouter in front maps keys to
// shards. Every shard of a cluster must share -n and -seed — the
// generations are deterministic replicas, only the serving plane is
// partitioned.
//
// Endpoints (all JSON):
//
//	POST /v1/lookup         {"key":K}            route to the owner of K
//	POST /v1/put            {"key":K,"value":V}  store V (base64) under K
//	GET  /v1/get?key=K                           fetch the stored value
//	POST /v1/compute        {"key":K,"input":I}  BA inside the owner group
//	POST /v1/mint           {"miner":M,"count":C} solve C §IV identity puzzles
//	POST /v1/verify         {"claims":[{"id","sigma"}]} batch-verify claims
//	POST /v1/epoch/advance                       one §III population turnover
//	GET  /healthz                                liveness + current epoch
//	GET  /metrics                                request/batch/epoch/mint counters
//
// Concurrent lookups and puts are coalesced through a bounded batching
// queue into pool-amortized LookupBatch/PutBatch calls (see
// internal/serve). SIGINT/SIGTERM trigger a graceful shutdown: the
// listener stops accepting, in-flight requests drain, a mid-construction
// epoch aborts cooperatively, and the system closes. A clean drain exits 0.
package main

import (
	"context"
	"flag"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/serve"
	"repro/tinygroups"
)

// shutdownTimeout bounds the drain on SIGTERM; a healthy server drains in
// milliseconds, so hitting this means something is wedged.
const shutdownTimeout = 30 * time.Second

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stderr))
}

// run parses flags, builds the system and serves until ctx cancels (the
// signal path) or the listener fails. It returns the process exit code.
// All logging funnels through one log.Logger: the epoch ticker and the
// listener goroutine log concurrently with the main goroutine, and the
// logger's internal mutex is what keeps those writes serialized.
func run(ctx context.Context, args []string, stderr io.Writer) int {
	lg := log.New(stderr, "", 0)
	fs := flag.NewFlagSet("tinygroupsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8477", "listen address")
	n := fs.Int("n", 2048, "population size of the served system")
	beta := fs.Float64("beta", 0.05, "adversary's computational-power fraction")
	overlay := fs.String("overlay", "chord", "input graph: chord | debruijn | viceroy")
	seed := fs.Int64("seed", 1, "root seed; the served system is fully deterministic per seed")
	workers := fs.Int("workers", 0, "construction/batch worker pool size (0 = GOMAXPROCS)")
	epochEvery := fs.Duration("epoch-interval", 0, "advance the epoch on this period in the background (0 = only via /v1/epoch/advance)")
	maxBatch := fs.Int("max-batch", 256, "max queued lookups (or puts) coalesced into one batch call")
	queueCap := fs.Int("queue", 1024, "bounded request queue capacity; a full queue answers 429")
	writeTimeout := fs.Duration("write-timeout", 10*time.Second, "bound on how long an accepted write may wait on the dispatcher before answering 504 (0 = unbounded)")
	mintWork := fs.Float64("mint-work", 1<<14, "PoW difficulty of /v1/mint in expected hash attempts per ID")
	mintTarget := fs.Duration("mint-target", 0, "retarget mint difficulty toward this mean solve time at each epoch advance (0 = fixed difficulty)")
	dataDir := fs.String("data-dir", "", "durable state directory: snapshot each epoch boundary, op-log puts, restore on restart (empty = in-memory only)")
	snapshotKeep := fs.Int("snapshot-keep", 3, "how many epoch snapshots to retain in -data-dir")
	shardIndex := fs.Int("shard-index", 0, "this daemon's shard number in a cluster (0-based; requires -shard-count)")
	shardCount := fs.Int("shard-count", 1, "cluster size; >1 serves only this shard's ring range and 421s the rest")
	showVersion := fs.Bool("version", false, "print the build version and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		lg.Printf("tinygroupsd %s", buildinfo.String())
		return 0
	}
	if len(fs.Args()) != 0 {
		lg.Printf("tinygroupsd: unexpected arguments %v", fs.Args())
		return 2
	}
	if *shardCount < 1 || *shardIndex < 0 || *shardIndex >= *shardCount {
		lg.Printf("tinygroupsd: -shard-index %d out of range for -shard-count %d", *shardIndex, *shardCount)
		return 2
	}

	opts := []tinygroups.Option{
		tinygroups.WithBeta(*beta),
		tinygroups.WithOverlay(*overlay),
		tinygroups.WithSeed(*seed),
		tinygroups.WithWorkers(*workers),
		tinygroups.WithMintWork(*mintWork),
		tinygroups.WithMintRetarget(*mintTarget),
	}
	if *dataDir != "" {
		opts = append(opts, tinygroups.WithDataDir(*dataDir), tinygroups.WithSnapshotKeep(*snapshotKeep))
	}
	sys, err := tinygroups.New(*n, opts...)
	if err != nil {
		lg.Printf("tinygroupsd: %v", err)
		return 2
	}
	if dur := sys.Durability(); dur.Enabled {
		if dur.Recovered {
			lg.Printf("tinygroupsd: recovered epoch %d from %s (%d ops replayed, %d corrupt snapshots skipped, %d torn log bytes discarded)",
				dur.SnapshotEpoch, dur.Dir, dur.ReplayedOps, dur.SkippedSnapshots, dur.DiscardedLogBytes)
		} else {
			lg.Printf("tinygroupsd: durable in %s (no prior state)", dur.Dir)
		}
	}

	logf := lg.Printf
	srv := serve.New(sys, serve.Config{
		MaxBatch:     *maxBatch,
		QueueCap:     *queueCap,
		EpochEvery:   *epochEvery,
		WriteTimeout: *writeTimeout,
		ShardIndex:   *shardIndex,
		ShardCount:   *shardCount,
		Version:      buildinfo.String(),
		Logf:         logf,
	})
	logf("tinygroupsd %s: n=%d beta=%v overlay=%s seed=%d workers=%d epoch-interval=%s mint-work=%v mint-target=%s shard=%d/%d data-dir=%q",
		buildinfo.String(), *n, *beta, *overlay, *seed, *workers, *epochEvery, *mintWork, *mintTarget, *shardIndex, *shardCount, *dataDir)

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()

	select {
	case err := <-errc:
		// The listener failed before any signal — bad address, port in use.
		lg.Printf("tinygroupsd: serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	logf("tinygroupsd: signal received, draining")
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		lg.Printf("tinygroupsd: shutdown: %v", err)
		return 1
	}
	if err := <-errc; err != nil {
		lg.Printf("tinygroupsd: serve: %v", err)
		return 1
	}
	logf("tinygroupsd: clean exit")
	return 0
}
