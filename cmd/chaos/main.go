// Command chaos is the kill/restart drill of the fault model: it boots a
// tinygroupsd daemon, drives the adversarial workload suite against it,
// SIGKILLs the process mid-epoch, restarts it, and asserts recovery — the
// restarted daemon answers /healthz and serves a friendly lookup tail at a
// success rate above the floor. A clean run exits 0; any phase failing, or
// the whole-run watchdog expiring, exits 1 (the watchdog SIGQUITs the
// daemon first so its goroutine dump lands in the log, then dumps the
// harness's own stacks).
//
// Both boots share a -data-dir, so the restart is a durability test, not a
// re-bootstrap: the harness records the epoch→fingerprint trail the first
// daemon serves and stores a set of acknowledged keys before the kill, then
// requires the restarted daemon to report recovered=true, resume at an
// epoch no older than the last observed boundary with a matching
// fingerprint, and return every acknowledged key from disk — a fresh
// bootstrap would answer those gets with 404.
//
// Usage:
//
//	chaos -daemon PATH [-addr HOST:PORT] [-n N] [-mint-work W]
//	      [-ops N] [-concurrency C] [-keys K] [-seed S]
//	      [-advance-every N] [-success-floor F] [-timeout D]
//	      [-data-dir DIR]
//
// The op streams are the deterministic attack generators of
// tinygroups/loadgen, so two chaos runs with equal seeds apply identical
// pressure; only the kill timing is wall-clock.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/tinygroups/loadgen"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// daemonProc is one tinygroupsd process under torture.
type daemonProc struct {
	cmd *exec.Cmd
}

// startDaemon launches the daemon binary and returns once the process is
// spawned (readiness is the caller's WaitReady).
func startDaemon(bin string, stderr io.Writer, args ...string) (*daemonProc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = stderr
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: start %s: %w", bin, err)
	}
	return &daemonProc{cmd: cmd}, nil
}

// kill SIGKILLs the daemon — the crash under test — and reaps it. The
// non-zero exit is the point, so the wait error is discarded. cmd.Wait
// (not Process.Wait) also joins the stdout/stderr copier goroutines, so
// the dead daemon's log pipes never race the restarted one's.
func (d *daemonProc) kill() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
}

// stop asks for a graceful drain (SIGTERM) and requires a clean exit
// within timeout — a botched drain fails the harness.
func (d *daemonProc) stop(timeout time.Duration) error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("chaos: signal daemon: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("chaos: daemon drain exited dirty: %w", err)
		}
		return nil
	case <-time.After(timeout):
		_ = d.cmd.Process.Kill()
		return fmt.Errorf("chaos: daemon did not drain within %s", timeout)
	}
}

// health is the slice of the /healthz body the durability assertions read.
type health struct {
	Epoch         int64  `json:"epoch"`
	Fingerprint   string `json:"fingerprint"`
	Durable       bool   `json:"durable"`
	Recovered     bool   `json:"recovered"`
	SnapshotEpoch int    `json:"snapshot_epoch"`
}

// fetchHealth reads and decodes /healthz.
func fetchHealth(client *http.Client, base string) (health, error) {
	var h health
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return h, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return h, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return h, json.NewDecoder(resp.Body).Decode(&h)
}

// fingerprintTrail polls /healthz until stop is closed, recording every
// (epoch, fingerprint) pair the daemon serves. The 10ms cadence against the
// 100ms epoch ticker makes the trail effectively gapless, so the epoch the
// restarted daemon recovers to is almost always in the map.
func fingerprintTrail(client *http.Client, base string, stop <-chan struct{}) (map[int64]string, *sync.Mutex) {
	trail := make(map[int64]string)
	var mu sync.Mutex
	go func() {
		t := time.NewTicker(10 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if h, err := fetchHealth(client, base); err == nil {
					mu.Lock()
					trail[h.Epoch] = h.Fingerprint
					mu.Unlock()
				}
			}
		}
	}()
	return trail, &mu
}

// putKey stores key=value via /v1/put, reporting whether the daemon
// acknowledged the write (only acknowledged keys are asserted after the
// restart — an unacknowledged put is allowed to be lost).
func putKey(client *http.Client, base, key string, value []byte) bool {
	body, _ := json.Marshal(map[string]any{"key": key, "value": value})
	resp, err := client.Post(base+"/v1/put", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// getKey fetches a stored value via /v1/get; ok reports a 200 with a body.
func getKey(client *http.Client, base, key string) (value []byte, ok bool) {
	resp, err := client.Get(base + "/v1/get?key=" + key)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	var out struct {
		Value []byte `json:"value"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, false
	}
	return out.Value, true
}

// run executes the chaos sequence and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	daemon := fs.String("daemon", "", "path to the tinygroupsd binary to torture (required)")
	addr := fs.String("addr", "127.0.0.1:8479", "listen address handed to the daemon")
	n := fs.Int("n", 512, "population size of the served system")
	mintWork := fs.Float64("mint-work", 64, "PoW difficulty handed to the daemon (kept low so join-flood mints are cheap)")
	ops := fs.Int("ops", 400, "operations per workload phase")
	concurrency := fs.Int("concurrency", 4, "closed-loop client count")
	keys := fs.Int("keys", 128, "keyspace size")
	seed := fs.Int64("seed", 1, "workload seed; equal seeds apply identical op streams")
	advanceEvery := fs.Int("advance-every", 50, "one epoch advance per this many ops in the attack phases")
	floor := fs.Float64("success-floor", 0.99, "minimum friendly-tail success rate after the restart")
	timeout := fs.Duration("timeout", 120*time.Second, "whole-run watchdog; expiry dumps goroutines and exits 1")
	dataDir := fs.String("data-dir", "", "data directory shared by both daemon boots (default: fresh temp dir, removed on success)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "chaos: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *daemon == "" {
		fmt.Fprintln(stderr, "chaos: -daemon is required")
		return 2
	}
	dir := *dataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-data-*")
		if err != nil {
			fmt.Fprintf(stderr, "chaos: mkdir data dir: %v\n", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	// The watchdog is the harness's own liveness bound: if any phase wedges
	// (a hung drain, a daemon that never comes back), SIGQUIT the daemon so
	// its goroutine dump lands in the log, dump our own stacks, and fail.
	var current atomic.Pointer[exec.Cmd]
	wd := time.AfterFunc(*timeout, func() {
		fmt.Fprintf(stderr, "chaos: watchdog fired after %s — dumping goroutines\n", *timeout)
		if c := current.Load(); c != nil && c.Process != nil {
			_ = c.Process.Signal(syscall.SIGQUIT)
			time.Sleep(2 * time.Second) // let the daemon's dump flush
		}
		_ = pprof.Lookup("goroutine").WriteTo(stderr, 1)
		os.Exit(1)
	})
	defer wd.Stop()

	baseArgs := []string{
		"-addr", *addr,
		"-n", fmt.Sprint(*n),
		"-seed", fmt.Sprint(*seed),
		"-mint-work", fmt.Sprint(*mintWork),
		"-data-dir", dir,
	}
	// The first boot churns epochs in the background; the restart holds the
	// epoch still (0 = advance only on request) so the recovery assertions
	// compare against a stable generation.
	bootArgs := append(append([]string{}, baseArgs...), "-epoch-interval", "100ms")
	restartArgs := append(append([]string{}, baseArgs...), "-epoch-interval", "0")
	ctx := context.Background()
	base := "http://" + *addr
	target := loadgen.NewHTTPTarget(base,
		loadgen.WithRequestTimeout(2*time.Second),
		loadgen.WithRetry(3, 10*time.Millisecond),
	)
	httpc := &http.Client{Timeout: 2 * time.Second}
	cfg := loadgen.Config{Concurrency: *concurrency, Ops: *ops, Seed: *seed}

	// Phase 1: boot.
	d, err := startDaemon(*daemon, stderr, bootArgs...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	current.Store(d.cmd)
	defer func() {
		if c := current.Load(); c != nil && c.Process != nil {
			_ = c.Process.Kill()
		}
	}()
	if err := target.WaitReady(ctx, 30*time.Second); err != nil {
		fmt.Fprintf(stderr, "chaos: boot: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "chaos: daemon up at %s (n=%d, data-dir=%s)\n", *addr, *n, dir)

	// The trail poller shadows the first daemon's whole life, recording the
	// fingerprint of every epoch it serves; the restart is checked against
	// this record.
	stopTrail := make(chan struct{})
	trail, trailMu := fingerprintTrail(httpc, base, stopTrail)

	// Phase 2: adversarial pressure — the three attack workloads, with the
	// background epoch ticker churning underneath. Failures are tolerated
	// here (that is what the attacks are for); transport-level hangs are
	// not, which the per-attempt timeout enforces.
	for _, g := range loadgen.AttackSuite(*keys, *advanceEvery) {
		res, err := loadgen.Run(ctx, target, g, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "chaos: attack %s: %v\n", g.Name(), err)
			return 1
		}
		fmt.Fprintf(stdout, "chaos: attack %-14s ops=%d ok=%d success=%.3f retries=%d by_status=%v\n",
			res.Workload, res.Ops, res.OK, res.SuccessRate, res.Retries, res.ByStatus)
	}

	// Phase 2.5: store keys the restart must serve back. Only acknowledged
	// puts count — the op log's contract covers exactly the writes the
	// daemon confirmed.
	durable := make(map[string][]byte)
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("chaos-durable-%02d", i)
		val := []byte(fmt.Sprintf("survives-the-kill-%02d", i))
		if putKey(httpc, base, key, val) {
			durable[key] = val
		}
	}
	if len(durable) == 0 {
		fmt.Fprintln(stderr, "chaos: FAIL — no durable put was acknowledged before the kill")
		return 1
	}
	fmt.Fprintf(stdout, "chaos: %d durable keys acknowledged pre-kill\n", len(durable))

	// Phase 3: SIGKILL mid-epoch. An explicit advance is fired and the
	// process killed while it is in flight — between the ticker and this,
	// the crash lands inside an epoch construction with high probability.
	advCtx, advCancel := context.WithTimeout(ctx, 10*time.Second)
	go func() {
		defer advCancel()
		_, _ = target.Do(advCtx, loadgen.Op{Kind: loadgen.KindAdvance})
	}()
	time.Sleep(25 * time.Millisecond)
	d.kill()
	advCancel()
	close(stopTrail)
	fmt.Fprintln(stdout, "chaos: daemon SIGKILLed mid-epoch")

	// Phase 4: restart on the same data dir and require /healthz green.
	d2, err := startDaemon(*daemon, stderr, restartArgs...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	current.Store(d2.cmd)
	if err := target.WaitReady(ctx, 30*time.Second); err != nil {
		fmt.Fprintf(stderr, "chaos: restart: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "chaos: daemon restarted, healthz green")

	// Phase 4.5: the restart must be a recovery from disk, not a fresh
	// bootstrap. recovered=true plus the acknowledged keys are the proof
	// (same-seed re-bootstrap reproduces fingerprints but not stored keys);
	// the fingerprint trail pins the recovered epoch to the exact
	// generation the first daemon served at that boundary.
	h, err := fetchHealth(httpc, base)
	if err != nil {
		fmt.Fprintf(stderr, "chaos: post-restart healthz: %v\n", err)
		return 1
	}
	if !h.Durable || !h.Recovered {
		fmt.Fprintf(stderr, "chaos: FAIL — restarted daemon did not recover from disk (durable=%v recovered=%v)\n",
			h.Durable, h.Recovered)
		return 1
	}
	trailMu.Lock()
	var maxSeen int64 = -1
	for e := range trail {
		if e > maxSeen {
			maxSeen = e
		}
	}
	wantFP, sampled := trail[h.Epoch]
	trailMu.Unlock()
	if h.Epoch < maxSeen {
		fmt.Fprintf(stderr, "chaos: FAIL — recovered epoch %d older than last observed boundary %d\n",
			h.Epoch, maxSeen)
		return 1
	}
	if sampled && h.Fingerprint != wantFP {
		fmt.Fprintf(stderr, "chaos: FAIL — epoch %d fingerprint %s != pre-kill %s\n",
			h.Epoch, h.Fingerprint, wantFP)
		return 1
	}
	recoveredKeys := 0
	for key, want := range durable {
		got, ok := getKey(httpc, base, key)
		if !ok || !bytes.Equal(got, want) {
			fmt.Fprintf(stderr, "chaos: FAIL — durable key %q lost across the kill (ok=%v)\n", key, ok)
			return 1
		}
		recoveredKeys++
	}
	fmt.Fprintf(stdout, "chaos: recovery verified — epoch %d (snapshot %d, fingerprint %s, sampled=%v), %d/%d keys intact\n",
		h.Epoch, h.SnapshotEpoch, h.Fingerprint, sampled, recoveredKeys, len(durable))

	// Phase 5: friendly tail — uniform lookups against the restarted
	// daemon must clear the success floor (the conceded ε of Theorem 3 is
	// well under 1% at these sizes).
	tail, err := loadgen.Run(ctx, target, loadgen.Uniform(*keys), cfg)
	if err != nil {
		fmt.Fprintf(stderr, "chaos: friendly tail: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "chaos: tail ops=%d ok=%d success=%.4f retries=%d by_status=%v\n",
		tail.Ops, tail.OK, tail.SuccessRate, tail.Retries, tail.ByStatus)
	if tail.SuccessRate < *floor {
		fmt.Fprintf(stderr, "chaos: FAIL — post-restart success %.4f below floor %.4f\n",
			tail.SuccessRate, *floor)
		return 1
	}

	// Phase 6: graceful drain of the survivor.
	current.Store(nil)
	if err := d2.stop(30 * time.Second); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "chaos: PASS — recovered at %.4f success (floor %.2f), clean drain\n",
		tail.SuccessRate, *floor)
	return 0
}
