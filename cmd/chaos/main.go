// Command chaos is the kill/restart drill of the fault model: it boots a
// tinygroupsd daemon, drives the adversarial workload suite against it,
// SIGKILLs the process mid-epoch, restarts it, and asserts recovery — the
// restarted daemon answers /healthz and serves a friendly lookup tail at a
// success rate above the floor. A clean run exits 0; any phase failing, or
// the whole-run watchdog expiring, exits 1 (the watchdog SIGQUITs the
// daemon first so its goroutine dump lands in the log, then dumps the
// harness's own stacks).
//
// Usage:
//
//	chaos -daemon PATH [-addr HOST:PORT] [-n N] [-mint-work W]
//	      [-ops N] [-concurrency C] [-keys K] [-seed S]
//	      [-advance-every N] [-success-floor F] [-timeout D]
//
// The op streams are the deterministic attack generators of
// tinygroups/loadgen, so two chaos runs with equal seeds apply identical
// pressure; only the kill timing is wall-clock.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"repro/tinygroups/loadgen"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// daemonProc is one tinygroupsd process under torture.
type daemonProc struct {
	cmd *exec.Cmd
}

// startDaemon launches the daemon binary and returns once the process is
// spawned (readiness is the caller's WaitReady).
func startDaemon(bin string, stderr io.Writer, args ...string) (*daemonProc, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stdout = stderr
	cmd.Stderr = stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("chaos: start %s: %w", bin, err)
	}
	return &daemonProc{cmd: cmd}, nil
}

// kill SIGKILLs the daemon — the crash under test — and reaps it. The
// non-zero exit is the point, so the wait error is discarded. cmd.Wait
// (not Process.Wait) also joins the stdout/stderr copier goroutines, so
// the dead daemon's log pipes never race the restarted one's.
func (d *daemonProc) kill() {
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
}

// stop asks for a graceful drain (SIGTERM) and requires a clean exit
// within timeout — a botched drain fails the harness.
func (d *daemonProc) stop(timeout time.Duration) error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("chaos: signal daemon: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("chaos: daemon drain exited dirty: %w", err)
		}
		return nil
	case <-time.After(timeout):
		_ = d.cmd.Process.Kill()
		return fmt.Errorf("chaos: daemon did not drain within %s", timeout)
	}
}

// run executes the chaos sequence and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	daemon := fs.String("daemon", "", "path to the tinygroupsd binary to torture (required)")
	addr := fs.String("addr", "127.0.0.1:8479", "listen address handed to the daemon")
	n := fs.Int("n", 512, "population size of the served system")
	mintWork := fs.Float64("mint-work", 64, "PoW difficulty handed to the daemon (kept low so join-flood mints are cheap)")
	ops := fs.Int("ops", 400, "operations per workload phase")
	concurrency := fs.Int("concurrency", 4, "closed-loop client count")
	keys := fs.Int("keys", 128, "keyspace size")
	seed := fs.Int64("seed", 1, "workload seed; equal seeds apply identical op streams")
	advanceEvery := fs.Int("advance-every", 50, "one epoch advance per this many ops in the attack phases")
	floor := fs.Float64("success-floor", 0.99, "minimum friendly-tail success rate after the restart")
	timeout := fs.Duration("timeout", 120*time.Second, "whole-run watchdog; expiry dumps goroutines and exits 1")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "chaos: unexpected arguments %v\n", fs.Args())
		return 2
	}
	if *daemon == "" {
		fmt.Fprintln(stderr, "chaos: -daemon is required")
		return 2
	}

	// The watchdog is the harness's own liveness bound: if any phase wedges
	// (a hung drain, a daemon that never comes back), SIGQUIT the daemon so
	// its goroutine dump lands in the log, dump our own stacks, and fail.
	var current atomic.Pointer[exec.Cmd]
	wd := time.AfterFunc(*timeout, func() {
		fmt.Fprintf(stderr, "chaos: watchdog fired after %s — dumping goroutines\n", *timeout)
		if c := current.Load(); c != nil && c.Process != nil {
			_ = c.Process.Signal(syscall.SIGQUIT)
			time.Sleep(2 * time.Second) // let the daemon's dump flush
		}
		_ = pprof.Lookup("goroutine").WriteTo(stderr, 1)
		os.Exit(1)
	})
	defer wd.Stop()

	daemonArgs := []string{
		"-addr", *addr,
		"-n", fmt.Sprint(*n),
		"-seed", fmt.Sprint(*seed),
		"-mint-work", fmt.Sprint(*mintWork),
		"-epoch-interval", "100ms",
	}
	ctx := context.Background()
	target := loadgen.NewHTTPTarget("http://"+*addr,
		loadgen.WithRequestTimeout(2*time.Second),
		loadgen.WithRetry(3, 10*time.Millisecond),
	)
	cfg := loadgen.Config{Concurrency: *concurrency, Ops: *ops, Seed: *seed}

	// Phase 1: boot.
	d, err := startDaemon(*daemon, stderr, daemonArgs...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	current.Store(d.cmd)
	defer func() {
		if c := current.Load(); c != nil && c.Process != nil {
			_ = c.Process.Kill()
		}
	}()
	if err := target.WaitReady(ctx, 30*time.Second); err != nil {
		fmt.Fprintf(stderr, "chaos: boot: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "chaos: daemon up at %s (n=%d)\n", *addr, *n)

	// Phase 2: adversarial pressure — the three attack workloads, with the
	// background epoch ticker churning underneath. Failures are tolerated
	// here (that is what the attacks are for); transport-level hangs are
	// not, which the per-attempt timeout enforces.
	for _, g := range loadgen.AttackSuite(*keys, *advanceEvery) {
		res, err := loadgen.Run(ctx, target, g, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "chaos: attack %s: %v\n", g.Name(), err)
			return 1
		}
		fmt.Fprintf(stdout, "chaos: attack %-14s ops=%d ok=%d success=%.3f retries=%d by_status=%v\n",
			res.Workload, res.Ops, res.OK, res.SuccessRate, res.Retries, res.ByStatus)
	}

	// Phase 3: SIGKILL mid-epoch. An explicit advance is fired and the
	// process killed while it is in flight — between the ticker and this,
	// the crash lands inside an epoch construction with high probability.
	advCtx, advCancel := context.WithTimeout(ctx, 10*time.Second)
	go func() {
		defer advCancel()
		_, _ = target.Do(advCtx, loadgen.Op{Kind: loadgen.KindAdvance})
	}()
	time.Sleep(25 * time.Millisecond)
	d.kill()
	advCancel()
	fmt.Fprintln(stdout, "chaos: daemon SIGKILLed mid-epoch")

	// Phase 4: restart and require /healthz green again.
	d2, err := startDaemon(*daemon, stderr, daemonArgs...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	current.Store(d2.cmd)
	if err := target.WaitReady(ctx, 30*time.Second); err != nil {
		fmt.Fprintf(stderr, "chaos: restart: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "chaos: daemon restarted, healthz green")

	// Phase 5: friendly tail — uniform lookups against the restarted
	// daemon must clear the success floor (the conceded ε of Theorem 3 is
	// well under 1% at these sizes).
	tail, err := loadgen.Run(ctx, target, loadgen.Uniform(*keys), cfg)
	if err != nil {
		fmt.Fprintf(stderr, "chaos: friendly tail: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "chaos: tail ops=%d ok=%d success=%.4f retries=%d by_status=%v\n",
		tail.Ops, tail.OK, tail.SuccessRate, tail.Retries, tail.ByStatus)
	if tail.SuccessRate < *floor {
		fmt.Fprintf(stderr, "chaos: FAIL — post-restart success %.4f below floor %.4f\n",
			tail.SuccessRate, *floor)
		return 1
	}

	// Phase 6: graceful drain of the survivor.
	current.Store(nil)
	if err := d2.stop(30 * time.Second); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	fmt.Fprintf(stdout, "chaos: PASS — recovered at %.4f success (floor %.2f), clean drain\n",
		tail.SuccessRate, *floor)
	return 0
}
