package main

import (
	"bytes"
	"net"
	"os/exec"
	"path/filepath"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"positional args", []string{"-daemon", "x", "extra"}},
		{"missing daemon", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(c.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
		})
	}
}

func TestRunMissingBinary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-daemon", filepath.Join(t.TempDir(), "nope")}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}

// freeAddr reserves an ephemeral port and releases it for the daemon —
// racy in principle, fine for a test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestChaosKillRestart is the harness's own end-to-end drill at small
// scale: build the real daemon, run the full boot → attack → SIGKILL →
// restart → friendly-tail sequence, and require a PASS.
func TestChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping kill/restart drill in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "tinygroupsd")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/tinygroupsd")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build tinygroupsd: %v\n%s", err, out)
	}

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-daemon", bin,
		"-addr", freeAddr(t),
		"-n", "256",
		"-ops", "120",
		"-keys", "64",
		"-concurrency", "2",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("chaos run exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("chaos: PASS")) {
		t.Fatalf("missing PASS line\nstdout:\n%s", stdout.String())
	}
}
