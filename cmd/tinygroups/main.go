// Command tinygroups regenerates the paper-reproduction tables.
//
// Usage:
//
//	tinygroups [-quick] [-seed N] [-parallel N] [-trials N] <experiment>...
//	tinygroups list
//	tinygroups all
//
// Experiments are e1..e20; see DESIGN.md §6 for the claim each regenerates.
// Trials within each experiment fan across a worker pool (-parallel, default
// GOMAXPROCS); tables are bit-identical at every parallelism level because
// every trial's randomness is derived from the root seed by hashing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/engine"
	"repro/internal/experiments"
)

func main() {
	a := &app{stdout: os.Stdout, stderr: os.Stderr, registry: experiments.All()}
	os.Exit(a.run(os.Args[1:]))
}

// app carries the CLI's dependencies so tests can substitute writers and a
// stub experiment registry.
type app struct {
	stdout, stderr io.Writer
	registry       []experiments.Experiment
}

// run parses args, executes the selected experiments, and returns the
// process exit code.
func (a *app) run(args []string) int {
	fs := flag.NewFlagSet("tinygroups", flag.ContinueOnError)
	fs.SetOutput(a.stderr)
	quick := fs.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	seed := fs.Int64("seed", 1, "root seed; per-trial seeds are derived from it by hashing")
	parallel := fs.Int("parallel", 0, "max concurrent trials per experiment (0 = GOMAXPROCS); results are identical at every setting")
	trials := fs.Int("trials", 1, "repetitions behind each sampled table cell, averaged (e1, e2, e8, e13)")
	fs.Usage = func() { a.usage(fs) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		a.usage(fs)
		return 2
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed, Parallel: *parallel, Trials: *trials}
	var selected []experiments.Experiment
	switch rest[0] {
	case "list":
		for _, e := range a.registry {
			fmt.Fprintf(a.stdout, "%-5s %s\n", e.ID, e.Title)
		}
		return 0
	case "all":
		selected = a.registry
	default:
		for _, id := range rest {
			e, ok := a.lookup(id)
			if !ok {
				fmt.Fprintf(a.stderr, "unknown experiment %q (try `tinygroups list`)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}
	start := time.Now()
	for _, e := range selected {
		a.runOne(e, opts)
	}
	workers := engine.Config{Parallel: opts.Parallel}.Workers()
	fmt.Fprintf(a.stdout, "total wall-clock: %.1fs (%d experiments, %d workers)\n",
		time.Since(start).Seconds(), len(selected), workers)
	return 0
}

// lookup finds an experiment by ID in this app's registry.
func (a *app) lookup(id string) (experiments.Experiment, bool) {
	for _, e := range a.registry {
		if e.ID == id {
			return e, true
		}
	}
	return experiments.Experiment{}, false
}

func (a *app) runOne(e experiments.Experiment, opts experiments.Options) {
	start := time.Now()
	res := e.Run(opts)
	fmt.Fprintf(a.stdout, "== %s: %s (%.1fs)\n\n", res.ID, res.Title, time.Since(start).Seconds())
	fmt.Fprint(a.stdout, res.Table.String())
	for _, n := range res.Notes {
		fmt.Fprintf(a.stdout, "  note: %s\n", n)
	}
	fmt.Fprintln(a.stdout)
}

func (a *app) usage(fs *flag.FlagSet) {
	fmt.Fprintf(a.stderr, `tinygroups — reproduction harness for "Tiny Groups Tackle Byzantine Adversaries" (IPDPS 2018)

usage:
  tinygroups [flags] <experiment>...   run specific experiments (e1..e20)
  tinygroups [flags] all               run everything
  tinygroups list                      list experiments

flags:
`)
	fs.PrintDefaults()
}
