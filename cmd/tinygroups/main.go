// Command tinygroups regenerates the paper-reproduction tables.
//
// Usage:
//
//	tinygroups [-quick] [-seed N] <experiment>...
//	tinygroups list
//	tinygroups all
//
// Experiments are e1..e13; see DESIGN.md §6 for the claim each regenerates.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	seed := flag.Int64("seed", 1, "random seed for all experiments")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	opts := experiments.Options{Quick: *quick, Seed: *seed}
	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-5s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		for _, e := range experiments.All() {
			run(e, opts)
		}
		return
	}
	for _, id := range args {
		e, ok := experiments.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try `tinygroups list`)\n", id)
			os.Exit(2)
		}
		run(e, opts)
	}
}

func run(e experiments.Experiment, opts experiments.Options) {
	start := time.Now()
	res := e.Run(opts)
	fmt.Printf("== %s: %s (%.1fs)\n\n", res.ID, res.Title, time.Since(start).Seconds())
	fmt.Print(res.Table.String())
	for _, n := range res.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	fmt.Println()
}

func usage() {
	fmt.Fprintf(os.Stderr, `tinygroups — reproduction harness for "Tiny Groups Tackle Byzantine Adversaries" (IPDPS 2018)

usage:
  tinygroups [-quick] [-seed N] <experiment>...   run specific experiments (e1..e13)
  tinygroups list                                 list experiments
  tinygroups all                                  run everything

flags:
`)
	flag.PrintDefaults()
}
