// Command tinygroups regenerates the paper-reproduction tables through the
// public scenario API.
//
// Usage:
//
//	tinygroups [-quick] [-seed N] [-parallel N] [-trials N] [-stream] <scenario>...
//	tinygroups list
//	tinygroups all
//
// Scenarios are e1..e20; see DESIGN.md §6 for the claim each regenerates.
// Trials within each scenario fan across a worker pool (-parallel, default
// GOMAXPROCS); tables are bit-identical at every parallelism level because
// every trial's randomness is derived from the root seed by hashing.
//
// -stream prints rows the moment they are measured (epoch-chained
// scenarios like e4/e5 produce one row per epoch); the default buffers
// each table for aligned output. Ctrl-C cancels cleanly between rows.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"repro/internal/engine"
	"repro/tinygroups/scenario"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Batch scenarios only poll ctx at row boundaries, so the first ^C may
	// take a while to land. Restoring default signal handling as soon as
	// the context cancels keeps a second ^C as a hard kill.
	go func() {
		<-ctx.Done()
		stop()
	}()
	a := &app{stdout: os.Stdout, stderr: os.Stderr, registry: scenario.Default()}
	os.Exit(a.run(ctx, os.Args[1:]))
}

// app carries the CLI's dependencies so tests can substitute writers and a
// stub scenario registry.
type app struct {
	stdout, stderr io.Writer
	registry       *scenario.Registry
}

// run parses args, executes the selected scenarios, and returns the
// process exit code.
func (a *app) run(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("tinygroups", flag.ContinueOnError)
	fs.SetOutput(a.stderr)
	quick := fs.Bool("quick", false, "run reduced sweeps (seconds instead of minutes)")
	seed := fs.Int64("seed", 1, "root seed; per-trial seeds are derived from it by hashing")
	parallel := fs.Int("parallel", 0, "max concurrent trials per scenario (0 = GOMAXPROCS); results are identical at every setting")
	trials := fs.Int("trials", 1, "repetitions behind each sampled table cell, averaged (e1, e2, e8, e13)")
	stream := fs.Bool("stream", false, "print rows as they are produced instead of buffering aligned tables")
	fs.Usage = func() { a.usage(fs) }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		a.usage(fs)
		return 2
	}
	opts := scenario.Options{Quick: *quick, Seed: *seed, Parallel: *parallel, Trials: *trials}
	var selected []scenario.Scenario
	switch rest[0] {
	case "list":
		for _, s := range a.registry.List() {
			fmt.Fprintf(a.stdout, "%-5s %s\n", s.ID, s.Title)
		}
		return 0
	case "all":
		selected = a.registry.List()
	default:
		for _, id := range rest {
			s, ok := a.registry.Lookup(id)
			if !ok {
				fmt.Fprintf(a.stderr, "unknown scenario %q (try `tinygroups list`)\n", id)
				return 2
			}
			selected = append(selected, s)
		}
	}
	start := time.Now()
	for _, s := range selected {
		if err := a.runOne(ctx, s, opts, *stream); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(a.stderr, "cancelled")
				return 130
			}
			fmt.Fprintf(a.stderr, "%s: %v\n", s.ID, err)
			return 1
		}
	}
	workers := engine.Config{Parallel: opts.Parallel}.Workers()
	fmt.Fprintf(a.stdout, "total wall-clock: %.1fs (%d scenarios, %d workers)\n",
		time.Since(start).Seconds(), len(selected), workers)
	return 0
}

func (a *app) runOne(ctx context.Context, s scenario.Scenario, opts scenario.Options, stream bool) error {
	start := time.Now()
	if stream {
		fmt.Fprintf(a.stdout, "== %s: %s\n\n", s.ID, s.Title)
		if err := a.registry.Run(ctx, s.ID, opts, &liveHandler{w: a.stdout}); err != nil {
			return err
		}
		fmt.Fprintf(a.stdout, "\n  (%.1fs)\n\n", time.Since(start).Seconds())
		return nil
	}
	var buf bytes.Buffer
	if err := a.registry.Render(ctx, s.ID, opts, &buf); err != nil {
		return err
	}
	fmt.Fprintf(a.stdout, "== %s: %s (%.1fs)\n\n", s.ID, s.Title, time.Since(start).Seconds())
	if _, err := io.Copy(a.stdout, &buf); err != nil {
		return err
	}
	fmt.Fprintln(a.stdout)
	return nil
}

// liveHandler prints rows as they arrive, padding cells to the header
// widths (wide cells stay readable, just unaligned — the price of not
// buffering).
type liveHandler struct {
	w      io.Writer
	widths []int
}

func (h *liveHandler) Header(cols ...string) {
	h.widths = make([]int, len(cols))
	for i, c := range cols {
		h.widths[i] = len(c)
	}
	h.line(cols)
}

func (h *liveHandler) Row(cells ...string) { h.line(cells) }

func (h *liveHandler) Note(text string) { fmt.Fprintf(h.w, "  note: %s\n", text) }

func (h *liveHandler) line(cells []string) {
	for i, c := range cells {
		w := len(c)
		if i < len(h.widths) && h.widths[i] > w {
			w = h.widths[i]
		}
		fmt.Fprintf(h.w, "%-*s  ", w, c)
	}
	fmt.Fprintln(h.w)
}

func (a *app) usage(fs *flag.FlagSet) {
	fmt.Fprintf(a.stderr, `tinygroups — reproduction harness for "Tiny Groups Tackle Byzantine Adversaries" (IPDPS 2018)

usage:
  tinygroups [flags] <scenario>...   run specific scenarios (e1..e20)
  tinygroups [flags] all             run everything
  tinygroups list                    list scenarios

flags:
`)
	fs.PrintDefaults()
}
