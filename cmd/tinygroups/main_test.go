package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/tinygroups/scenario"
)

// stubApp returns an app with a two-scenario stub registry that records
// the Options each run received.
func stubApp(t *testing.T, got *[]scenario.Options) *app {
	t.Helper()
	reg := scenario.NewRegistry()
	mk := func(id, title string) scenario.Scenario {
		return scenario.Scenario{
			ID: id, Title: title,
			Stream: func(ctx context.Context, o scenario.Options, h scenario.Handler) error {
				*got = append(*got, o)
				h.Header("k", "v")
				h.Row(id, "1")
				h.Note("stub")
				return nil
			},
		}
	}
	for _, s := range []scenario.Scenario{mk("x1", "first stub"), mk("x2", "second stub")} {
		if err := reg.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	return &app{stdout: &bytes.Buffer{}, stderr: &bytes.Buffer{}, registry: reg}
}

func run(a *app, args ...string) int {
	return a.run(context.Background(), args)
}

func TestListPrintsRegistry(t *testing.T) {
	var got []scenario.Options
	a := stubApp(t, &got)
	if code := run(a, "list"); code != 0 {
		t.Fatalf("list exit code %d", code)
	}
	out := a.stdout.(*bytes.Buffer).String()
	for _, want := range []string{"x1", "first stub", "x2", "second stub"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
	if len(got) != 0 {
		t.Errorf("list ran %d scenarios", len(got))
	}
}

func TestAllRunsEveryScenario(t *testing.T) {
	var got []scenario.Options
	a := stubApp(t, &got)
	if code := run(a, "all"); code != 0 {
		t.Fatalf("all exit code %d", code)
	}
	if len(got) != 2 {
		t.Fatalf("all ran %d scenarios, want 2", len(got))
	}
	out := a.stdout.(*bytes.Buffer).String()
	for _, want := range []string{"== x1", "== x2", "total wall-clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownScenarioFails(t *testing.T) {
	var got []scenario.Options
	a := stubApp(t, &got)
	if code := run(a, "x1", "nope"); code != 2 {
		t.Fatalf("unknown id exit code %d, want 2", code)
	}
	errOut := a.stderr.(*bytes.Buffer).String()
	if !strings.Contains(errOut, `unknown scenario "nope"`) {
		t.Errorf("stderr missing unknown-scenario message: %s", errOut)
	}
	if len(got) != 0 {
		t.Errorf("ran %d scenarios before rejecting the bad id", len(got))
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	var got []scenario.Options
	a := stubApp(t, &got)
	if code := run(a); code != 2 {
		t.Fatalf("no-args exit code %d, want 2", code)
	}
	if !strings.Contains(a.stderr.(*bytes.Buffer).String(), "usage:") {
		t.Error("usage not printed")
	}
}

func TestBadFlagFails(t *testing.T) {
	var got []scenario.Options
	a := stubApp(t, &got)
	if code := run(a, "-bogus", "x1"); code != 2 {
		t.Fatalf("bad flag exit code %d, want 2", code)
	}
}

func TestFlagsReachScenarios(t *testing.T) {
	var got []scenario.Options
	a := stubApp(t, &got)
	if code := run(a, "-quick", "-seed", "42", "-parallel", "3", "-trials", "5", "x2"); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if len(got) != 1 {
		t.Fatalf("ran %d scenarios, want 1", len(got))
	}
	want := scenario.Options{Quick: true, Seed: 42, Parallel: 3, Trials: 5}
	if got[0] != want {
		t.Errorf("scenario received %+v, want %+v", got[0], want)
	}
}

// TestStreamMode prints rows live: banner first, then header, rows and
// notes.
func TestStreamMode(t *testing.T) {
	var got []scenario.Options
	a := stubApp(t, &got)
	if code := run(a, "-stream", "x1"); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	out := a.stdout.(*bytes.Buffer).String()
	for _, want := range []string{"== x1: first stub", "k", "x1", "note: stub"} {
		if !strings.Contains(out, want) {
			t.Errorf("stream output missing %q:\n%s", want, out)
		}
	}
}

// TestCancelledContextExits: a cancelled context stops the run with the
// interrupt exit code.
func TestCancelledContextExits(t *testing.T) {
	var got []scenario.Options
	a := stubApp(t, &got)
	reg := scenario.NewRegistry()
	if err := reg.Register(scenario.Scenario{
		ID: "slow", Title: "ctx-aware stub",
		Stream: func(ctx context.Context, _ scenario.Options, _ scenario.Handler) error {
			return ctx.Err()
		},
	}); err != nil {
		t.Fatal(err)
	}
	a.registry = reg
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if code := a.run(ctx, []string{"slow"}); code != 130 {
		t.Fatalf("cancelled run exit code %d, want 130", code)
	}
	if !strings.Contains(a.stderr.(*bytes.Buffer).String(), "cancelled") {
		t.Error("cancellation not reported")
	}
}

// TestRealRegistryQuickRun drives one cheap real scenario end to end
// through the CLI layer, in both output modes.
func TestRealRegistryQuickRun(t *testing.T) {
	for _, mode := range [][]string{{"-quick", "e13"}, {"-quick", "-stream", "e13"}} {
		a := &app{stdout: &bytes.Buffer{}, stderr: &bytes.Buffer{}, registry: scenario.Default()}
		if code := run(a, mode...); code != 0 {
			t.Fatalf("%v: exit code %d, stderr: %s", mode, code, a.stderr.(*bytes.Buffer).String())
		}
		out := a.stdout.(*bytes.Buffer).String()
		if !strings.Contains(out, "== e13: Byzantine agreement inside groups") {
			t.Errorf("%v: missing scenario banner:\n%s", mode, out)
		}
		if !strings.Contains(out, "behavior") {
			t.Errorf("%v: missing table header:\n%s", mode, out)
		}
	}
}

// TestRealRegistryListMatchesAll asserts the registry the CLI ships is the
// full e1..e20 set.
func TestRealRegistryListMatchesAll(t *testing.T) {
	a := &app{stdout: &bytes.Buffer{}, stderr: &bytes.Buffer{}, registry: scenario.Default()}
	if code := run(a, "list"); code != 0 {
		t.Fatalf("list exit code %d", code)
	}
	out := a.stdout.(*bytes.Buffer).String()
	all := scenario.Default().List()
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != len(all) {
		t.Errorf("list printed %d lines, registry has %d scenarios", n, len(all))
	}
	for _, s := range all {
		if !strings.Contains(out, s.ID) {
			t.Errorf("list missing %s", s.ID)
		}
	}
}
