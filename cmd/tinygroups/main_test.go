package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

// stubApp returns an app with a two-experiment stub registry that records
// the Options each run received.
func stubApp(got *[]experiments.Options) *app {
	mk := func(id, title string) experiments.Experiment {
		return experiments.Experiment{
			ID: id, Title: title,
			Run: func(o experiments.Options) experiments.Result {
				*got = append(*got, o)
				tab := &metrics.Table{Header: []string{"k", "v"}}
				tab.Append(id, "1")
				return experiments.Result{ID: id, Title: title, Table: tab, Notes: []string{"stub"}}
			},
		}
	}
	return &app{
		stdout:   &bytes.Buffer{},
		stderr:   &bytes.Buffer{},
		registry: []experiments.Experiment{mk("x1", "first stub"), mk("x2", "second stub")},
	}
}

func TestListPrintsRegistry(t *testing.T) {
	var got []experiments.Options
	a := stubApp(&got)
	if code := a.run([]string{"list"}); code != 0 {
		t.Fatalf("list exit code %d", code)
	}
	out := a.stdout.(*bytes.Buffer).String()
	for _, want := range []string{"x1", "first stub", "x2", "second stub"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q:\n%s", want, out)
		}
	}
	if len(got) != 0 {
		t.Errorf("list ran %d experiments", len(got))
	}
}

func TestAllRunsEveryExperiment(t *testing.T) {
	var got []experiments.Options
	a := stubApp(&got)
	if code := a.run([]string{"all"}); code != 0 {
		t.Fatalf("all exit code %d", code)
	}
	if len(got) != 2 {
		t.Fatalf("all ran %d experiments, want 2", len(got))
	}
	out := a.stdout.(*bytes.Buffer).String()
	for _, want := range []string{"== x1", "== x2", "total wall-clock"} {
		if !strings.Contains(out, want) {
			t.Errorf("all output missing %q:\n%s", want, out)
		}
	}
}

func TestUnknownExperimentFails(t *testing.T) {
	var got []experiments.Options
	a := stubApp(&got)
	if code := a.run([]string{"x1", "nope"}); code != 2 {
		t.Fatalf("unknown id exit code %d, want 2", code)
	}
	errOut := a.stderr.(*bytes.Buffer).String()
	if !strings.Contains(errOut, `unknown experiment "nope"`) {
		t.Errorf("stderr missing unknown-experiment message: %s", errOut)
	}
	if len(got) != 0 {
		t.Errorf("ran %d experiments before rejecting the bad id", len(got))
	}
}

func TestNoArgsPrintsUsage(t *testing.T) {
	var got []experiments.Options
	a := stubApp(&got)
	if code := a.run(nil); code != 2 {
		t.Fatalf("no-args exit code %d, want 2", code)
	}
	if !strings.Contains(a.stderr.(*bytes.Buffer).String(), "usage:") {
		t.Error("usage not printed")
	}
}

func TestBadFlagFails(t *testing.T) {
	var got []experiments.Options
	a := stubApp(&got)
	if code := a.run([]string{"-bogus", "x1"}); code != 2 {
		t.Fatalf("bad flag exit code %d, want 2", code)
	}
}

func TestFlagsReachExperiments(t *testing.T) {
	var got []experiments.Options
	a := stubApp(&got)
	if code := a.run([]string{"-quick", "-seed", "42", "-parallel", "3", "-trials", "5", "x2"}); code != 0 {
		t.Fatalf("exit code %d", code)
	}
	if len(got) != 1 {
		t.Fatalf("ran %d experiments, want 1", len(got))
	}
	want := experiments.Options{Quick: true, Seed: 42, Parallel: 3, Trials: 5}
	if got[0] != want {
		t.Errorf("experiment received %+v, want %+v", got[0], want)
	}
}

// TestRealRegistryQuickRun drives one cheap real experiment end to end
// through the CLI layer.
func TestRealRegistryQuickRun(t *testing.T) {
	a := &app{stdout: &bytes.Buffer{}, stderr: &bytes.Buffer{}, registry: experiments.All()}
	if code := a.run([]string{"-quick", "e13"}); code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, a.stderr.(*bytes.Buffer).String())
	}
	out := a.stdout.(*bytes.Buffer).String()
	if !strings.Contains(out, "== e13: Byzantine agreement inside groups") {
		t.Errorf("missing experiment banner:\n%s", out)
	}
	if !strings.Contains(out, "behavior") {
		t.Errorf("missing table header:\n%s", out)
	}
}

// TestRealRegistryListMatchesAll asserts the registry the CLI ships is the
// full e1..e20 set.
func TestRealRegistryListMatchesAll(t *testing.T) {
	a := &app{stdout: &bytes.Buffer{}, stderr: &bytes.Buffer{}, registry: experiments.All()}
	if code := a.run([]string{"list"}); code != 0 {
		t.Fatalf("list exit code %d", code)
	}
	out := a.stdout.(*bytes.Buffer).String()
	if n := len(strings.Split(strings.TrimSpace(out), "\n")); n != len(experiments.All()) {
		t.Errorf("list printed %d lines, registry has %d experiments", n, len(experiments.All()))
	}
	for _, e := range experiments.All() {
		if !strings.Contains(out, e.ID) {
			t.Errorf("list missing %s", e.ID)
		}
	}
}
