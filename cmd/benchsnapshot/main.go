// Command benchsnapshot measures what the durability layer buys at boot
// and records the result as BENCH_snapshot.json: the wall time to cold-boot
// a system to epoch E (bootstrap + E epoch builds + re-putting the
// keyspace) against the wall time to restore the same state from a
// snapshot (one generation rebuild from persisted placement, verified
// against the saved fingerprint). The restored system is checked to be
// byte-identical — the benchmark is invalid if the fingerprints differ.
//
// Usage:
//
//	benchsnapshot [-out FILE] [-n N] [-seed S] [-epochs E] [-keys K] [-trials T]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/tinygroups"
)

// report is the BENCH_snapshot.json document.
type report struct {
	Config struct {
		N      int   `json:"n"`
		Seed   int64 `json:"seed"`
		Epochs int   `json:"epochs"`
		Keys   int   `json:"keys"`
		Trials int   `json:"trials"`
	} `json:"config"`
	// ColdBoot is bootstrap-from-config: New + epochs×AdvanceEpoch + keys
	// re-put. SnapshotBoot is New with a data dir holding the equivalent
	// state: load + one generation rebuild + op replay.
	ColdBoot struct {
		BestMs   float64   `json:"best_ms"`
		TrialsMs []float64 `json:"trials_ms"`
	} `json:"cold_boot"`
	SnapshotBoot struct {
		BestMs        float64   `json:"best_ms"`
		TrialsMs      []float64 `json:"trials_ms"`
		SnapshotBytes int64     `json:"snapshot_bytes"`
		ReplayedOps   int64     `json:"replayed_ops"`
	} `json:"snapshot_boot"`
	// Speedup is cold best_ms / snapshot best_ms; the acceptance gate is
	// simply > 1 — restoring must beat recomputing.
	Speedup     float64 `json:"speedup"`
	Fingerprint string  `json:"fingerprint"`
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// coldBoot builds the target state from nothing and returns the system.
func coldBoot(ctx context.Context, n int, seed int64, epochs, keys int) (*tinygroups.System, error) {
	s, err := tinygroups.New(n, tinygroups.WithSeed(seed))
	if err != nil {
		return nil, err
	}
	for k := 0; k < keys; k++ {
		if _, err := s.Put(ctx, fmt.Sprintf("bench-key-%05d", k), []byte(fmt.Sprintf("bench-val-%05d", k))); err != nil {
			s.Close()
			return nil, err
		}
	}
	for e := 0; e < epochs; e++ {
		if _, err := s.AdvanceEpoch(ctx); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchsnapshot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "write the JSON report here (default stdout)")
	n := fs.Int("n", 2048, "population size")
	seed := fs.Int64("seed", 1, "determinism seed")
	epochs := fs.Int("epochs", 5, "epoch advances in the target state")
	keys := fs.Int("keys", 256, "stored keys in the target state")
	trials := fs.Int("trials", 3, "timed repetitions per boot mode (best is reported)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx := context.Background()

	var r report
	r.Config.N = *n
	r.Config.Seed = *seed
	r.Config.Epochs = *epochs
	r.Config.Keys = *keys
	r.Config.Trials = *trials

	// Seed the data dir once: one durable system driven to the target
	// state, closed cleanly so its newest snapshot holds everything.
	dir, err := os.MkdirTemp("", "benchsnapshot-*")
	if err != nil {
		fmt.Fprintf(stderr, "benchsnapshot: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)
	saver, err := tinygroups.New(*n, tinygroups.WithSeed(*seed), tinygroups.WithDataDir(dir))
	if err != nil {
		fmt.Fprintf(stderr, "benchsnapshot: seed data dir: %v\n", err)
		return 1
	}
	for k := 0; k < *keys; k++ {
		if _, err := saver.Put(ctx, fmt.Sprintf("bench-key-%05d", k), []byte(fmt.Sprintf("bench-val-%05d", k))); err != nil {
			fmt.Fprintf(stderr, "benchsnapshot: put: %v\n", err)
			return 1
		}
	}
	for e := 0; e < *epochs; e++ {
		if _, err := saver.AdvanceEpoch(ctx); err != nil {
			fmt.Fprintf(stderr, "benchsnapshot: advance: %v\n", err)
			return 1
		}
	}
	wantFP := saver.Fingerprint()
	saver.Close()
	_ = filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(info.Name()) == ".tgsnap" {
			if info.Size() > r.SnapshotBoot.SnapshotBytes {
				r.SnapshotBoot.SnapshotBytes = info.Size()
			}
		}
		return nil
	})

	// Timed cold boots: recompute the state from config alone.
	for t := 0; t < *trials; t++ {
		start := time.Now()
		s, err := coldBoot(ctx, *n, *seed, *epochs, *keys)
		if err != nil {
			fmt.Fprintf(stderr, "benchsnapshot: cold boot: %v\n", err)
			return 1
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		if got := s.Fingerprint(); got != wantFP {
			fmt.Fprintf(stderr, "benchsnapshot: cold boot fingerprint %s != saved %s\n", got, wantFP)
			s.Close()
			return 1
		}
		s.Close()
		r.ColdBoot.TrialsMs = append(r.ColdBoot.TrialsMs, ms)
		if r.ColdBoot.BestMs == 0 || ms < r.ColdBoot.BestMs {
			r.ColdBoot.BestMs = ms
		}
	}

	// Timed snapshot boots: restore the identical state from the data dir.
	for t := 0; t < *trials; t++ {
		start := time.Now()
		s, err := tinygroups.New(*n, tinygroups.WithSeed(*seed), tinygroups.WithDataDir(dir))
		if err != nil {
			fmt.Fprintf(stderr, "benchsnapshot: snapshot boot: %v\n", err)
			return 1
		}
		ms := float64(time.Since(start).Microseconds()) / 1e3
		d := s.Durability()
		if !d.Recovered {
			fmt.Fprintln(stderr, "benchsnapshot: snapshot boot did not recover from disk")
			s.Close()
			return 1
		}
		if got := s.Fingerprint(); got != wantFP {
			fmt.Fprintf(stderr, "benchsnapshot: restored fingerprint %s != saved %s\n", got, wantFP)
			s.Close()
			return 1
		}
		r.SnapshotBoot.ReplayedOps = d.ReplayedOps
		s.Close()
		r.SnapshotBoot.TrialsMs = append(r.SnapshotBoot.TrialsMs, ms)
		if r.SnapshotBoot.BestMs == 0 || ms < r.SnapshotBoot.BestMs {
			r.SnapshotBoot.BestMs = ms
		}
	}

	r.Speedup = r.ColdBoot.BestMs / r.SnapshotBoot.BestMs
	r.Fingerprint = wantFP

	enc, _ := json.MarshalIndent(&r, "", "  ")
	enc = append(enc, '\n')
	if *out == "" {
		_, _ = stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(stderr, "benchsnapshot: write %s: %v\n", *out, err)
		return 1
	}
	fmt.Fprintf(stderr, "benchsnapshot: cold %.1fms vs snapshot %.1fms (%.2fx) at n=%d epochs=%d keys=%d\n",
		r.ColdBoot.BestMs, r.SnapshotBoot.BestMs, r.Speedup, *n, *epochs, *keys)
	if r.Speedup <= 1 {
		fmt.Fprintln(stderr, "benchsnapshot: FAIL — snapshot boot is not faster than cold boot")
		return 1
	}
	return 0
}
