package main

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

func TestParseSizes(t *testing.T) {
	good := map[string][]int{
		"1":     {1},
		"1,2":   {1, 2},
		" 1, 4": {1, 4},
	}
	for in, want := range good {
		got, err := parseSizes(in)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Errorf("parseSizes(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "0", "x", "2,-1"} {
		if _, err := parseSizes(in); err == nil {
			t.Errorf("parseSizes(%q) did not fail", in)
		}
	}
}

func TestRunFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-definitely-not-a-flag"},
		{"extra"},
		{"-sizes", "zero"},
	} {
		var stderr bytes.Buffer
		if code := run(context.Background(), args, &stderr, &stderr); code != 2 {
			t.Fatalf("run(%v) = %d, want 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

// TestRunSmallSweep is the end-to-end path at smoke scale: K=1 and K=2
// clusters on loopback, the sweep through the router, a parseable
// document on stdout.
func TestRunSmallSweep(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(),
		[]string{"-sizes", "1,2", "-n", "128", "-ops", "60", "-concurrency", "2", "-keys", "64", "-out", "-"},
		&stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}
	var doc document
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("bad document: %v\n%s", err, stdout.String())
	}
	if len(doc.Clusters) != 2 || doc.Clusters[0].Shards != 1 || doc.Clusters[1].Shards != 2 {
		t.Fatalf("cluster rows = %+v", doc.Clusters)
	}
	for _, row := range doc.Clusters {
		if len(row.Report.Workloads) != 4 {
			t.Fatalf("K=%d: %d workloads, want 4", row.Shards, len(row.Report.Workloads))
		}
		for _, res := range row.Report.Workloads {
			if res.Ops != 60 || res.Errors != 0 {
				t.Fatalf("K=%d %s: %+v", row.Shards, res.Workload, res)
			}
		}
	}
}
