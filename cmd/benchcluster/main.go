// Command benchcluster measures cluster-mode serving: for each requested
// cluster size K it boots K in-process shard servers plus a router on
// loopback listeners — the same serve and cluster packages tinygroupsd
// and tinygroupsrouter wrap — drives the workload sweep through the
// router, and records the per-K comparison as BENCH_cluster.json.
//
// Usage:
//
//	benchcluster [-sizes 1,2] [-n N] [-ops N] [-concurrency C]
//	             [-seed S] [-keys K] [-bulk-size B] [-out FILE]
//
// Every shard of every cluster runs the same (n, seed) system — the
// generations are deterministic replicas — so the K=1 and K=2 rows
// answer the identical op stream and differ only in how the serving
// plane is partitioned. Epoch advances go through the router's
// coordinated two-phase path; reads and writes scatter by ring range.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/serve"
	"repro/tinygroups"
	"repro/tinygroups/cluster"
	"repro/tinygroups/loadgen"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// clusterRow is one cluster size's measured service level.
type clusterRow struct {
	Shards int            `json:"shards"`
	Report loadgen.Report `json:"report"`
}

// document is the BENCH_cluster.json shape.
type document struct {
	GeneratedBy string       `json:"generated_by"`
	Version     string       `json:"version"`
	Population  int          `json:"population"`
	Clusters    []clusterRow `json:"clusters"`
}

// run executes the sweep and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	sizes := fs.String("sizes", "1,2", "comma-separated cluster sizes to measure")
	n := fs.Int("n", 1024, "population size of every shard's system")
	ops := fs.Int("ops", 2000, "operations per workload")
	concurrency := fs.Int("concurrency", 4, "closed-loop client count")
	seed := fs.Int64("seed", 1, "system + workload seed")
	keys := fs.Int("keys", 512, "keyspace size")
	bulkSize := fs.Int("bulk-size", 16, "keys per bulk-read batch call")
	out := fs.String("out", "BENCH_cluster.json", `report file ("-" = stdout)`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if len(fs.Args()) != 0 {
		fmt.Fprintf(stderr, "benchcluster: unexpected arguments %v\n", fs.Args())
		return 2
	}
	ks, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintf(stderr, "benchcluster: %v\n", err)
		return 2
	}

	doc := document{GeneratedBy: "cmd/benchcluster", Version: buildinfo.String(), Population: *n}
	for _, k := range ks {
		rep, err := measure(ctx, k, *n, *seed, *ops, *concurrency, *keys, *bulkSize, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "benchcluster: K=%d: %v\n", k, err)
			return 1
		}
		doc.Clusters = append(doc.Clusters, clusterRow{Shards: k, Report: rep})
	}

	w := stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "benchcluster: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := writeJSON(w, doc); err != nil {
		fmt.Fprintf(stderr, "benchcluster: %v\n", err)
		return 1
	}
	if *out != "-" {
		fmt.Fprintf(stdout, "benchcluster: wrote %s (%d cluster sizes)\n", *out, len(doc.Clusters))
	}
	return 0
}

// measure boots one K-shard cluster with a router in front, runs the
// sweep through the router, and tears everything down.
func measure(ctx context.Context, k, n int, seed int64, ops, concurrency, keys, bulkSize int, stderr io.Writer) (loadgen.Report, error) {
	var (
		shards []*serve.Server
		httpds []*http.Server
		urls   []string
	)
	defer func() {
		for _, hs := range httpds {
			_ = hs.Close()
		}
		for _, s := range shards {
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			_ = s.Shutdown(sctx)
			cancel()
		}
	}()

	for i := 0; i < k; i++ {
		sys, err := tinygroups.New(n, tinygroups.WithSeed(seed))
		if err != nil {
			return loadgen.Report{}, err
		}
		s := serve.New(sys, serve.Config{
			ShardIndex: i, ShardCount: k, Version: buildinfo.String(),
		})
		shards = append(shards, s)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return loadgen.Report{}, err
		}
		go func() { _ = s.Serve(l) }()
		urls = append(urls, "http://"+l.Addr().String())
	}

	rt, err := cluster.NewRouter(cluster.Config{Shards: urls, Version: buildinfo.String()})
	if err != nil {
		return loadgen.Report{}, err
	}
	rl, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return loadgen.Report{}, err
	}
	rhs := &http.Server{Handler: rt.Handler()}
	httpds = append(httpds, rhs)
	go func() { _ = rhs.Serve(rl) }()
	routerURL := "http://" + rl.Addr().String()

	target := loadgen.NewHTTPTarget(routerURL)
	if err := target.WaitReady(ctx, 30*time.Second); err != nil {
		return loadgen.Report{}, err
	}
	fmt.Fprintf(stderr, "benchcluster: K=%d up (%s -> %s)\n", k, routerURL, strings.Join(urls, ", "))

	// The sweep: baseline reads, a write mix, churn through the router's
	// coordinated two-phase advance, and the scatter-gathered bulk reads.
	gens := []loadgen.Generator{
		loadgen.Uniform(keys),
		loadgen.ReadWriteMix(keys, 0.1),
		loadgen.ChurnHeavy(keys, 500),
		loadgen.BulkRead(keys, bulkSize),
	}
	rep, err := loadgen.RunSuite(ctx, target, gens, loadgen.Config{
		Concurrency: concurrency, Ops: ops, Seed: seed,
	})
	rep.Target = fmt.Sprintf("router(K=%d)", k)
	return rep, err
}

// parseSizes parses the -sizes list.
func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f == "" {
			continue
		}
		k, err := strconv.Atoi(f)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad cluster size %q", f)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cluster sizes selected")
	}
	return out, nil
}

// writeJSON writes the document as indented JSON.
func writeJSON(w io.Writer, doc document) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
