package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writePkg materializes a one-file package in a temp dir and returns the
// dir.
func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestDoclintFindings(t *testing.T) {
	dir := writePkg(t, `package p

func Undocumented() {}

type AlsoUndocumented struct{}

// Documented is fine.
func Documented() {}

// unexported needs nothing.
func unexported() {}

const Loose = 1
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"no package comment", "Undocumented", "AlsoUndocumented", "Loose",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("findings missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "Documented is fine") || strings.Contains(out, "unexported") {
		t.Errorf("false positive:\n%s", out)
	}
}

func TestDoclintCleanPackage(t *testing.T) {
	dir := writePkg(t, `// Package p is documented.
package p

// Kind is documented.
type Kind int

// The kinds, documented as a block.
const (
	A Kind = iota
	B
)

// F is documented.
func F() {}

// M is documented.
func (Kind) M() {}

// internal methods need nothing.
type hidden int

func (hidden) m() {}
`)
	var stdout, stderr bytes.Buffer
	if code := run([]string{dir}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nfindings:\n%s", code, stdout.String())
	}
}

func TestDoclintUsageAndErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing")}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad-dir exit = %d, want 2", code)
	}
}
