// Command doclint enforces doc comments on the exported surface of the
// stable packages — the repository's stdlib-only equivalent of revive's
// exported rule, wired into CI so the godoc pass cannot regress.
//
// Usage:
//
//	doclint ./tinygroups ./tinygroups/scenario ./tinygroups/loadgen
//
// For each package directory it requires:
//
//   - a package comment on at least one file;
//   - a doc comment on every exported function and method (methods only
//     when the receiver type is itself exported);
//   - a doc comment on every exported type, const and var — either on the
//     individual spec or on its enclosing grouped declaration (a documented
//     const block covers its members, matching godoc's rendering).
//
// Test files are ignored. Findings print one per line as
// file:line: exported NAME is undocumented; any finding exits 1.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run lints every directory argument and returns the process exit code.
func run(dirs []string, stdout, stderr io.Writer) int {
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "usage: doclint <package-dir>...")
		return 2
	}
	var findings []string
	for _, dir := range dirs {
		f, err := lintDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "doclint: %v\n", err)
			return 2
		}
		findings = append(findings, f...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "doclint: %d undocumented exported symbols\n", len(findings))
		return 1
	}
	return 0
}

// lintDir parses one package directory (tests excluded) and returns its
// findings.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		findings = append(findings, lintPkg(fset, dir, pkg)...)
	}
	return findings, nil
}

// lintPkg checks one parsed package: package comment plus every exported
// declaration.
func lintPkg(fset *token.FileSet, dir string, pkg *ast.Package) []string {
	var findings []string
	hasPkgDoc := false
	for _, f := range pkg.Files {
		if f.Doc != nil {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc {
		findings = append(findings, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			findings = append(findings, lintDecl(fset, decl)...)
		}
	}
	return findings
}

// lintDecl checks one top-level declaration.
func lintDecl(fset *token.FileSet, decl ast.Decl) []string {
	var findings []string
	complain := func(pos token.Pos, name string) {
		findings = append(findings,
			fmt.Sprintf("%s: exported %s is undocumented", fset.Position(pos), name))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil && !exportedRecv(d.Recv) {
			return nil
		}
		if d.Doc == nil {
			complain(d.Pos(), d.Name.Name)
		}
	case *ast.GenDecl:
		if d.Tok == token.IMPORT {
			return nil
		}
		blockDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if sp.Name.IsExported() && sp.Doc == nil && !blockDoc {
					complain(sp.Pos(), sp.Name.Name)
				}
			case *ast.ValueSpec:
				if blockDoc || sp.Doc != nil || sp.Comment != nil {
					continue
				}
				for _, n := range sp.Names {
					if n.IsExported() {
						complain(n.Pos(), n.Name)
					}
				}
			}
		}
	}
	return findings
}

// exportedRecv reports whether a method's receiver names an exported type
// (methods on unexported types are not part of the surface godoc renders).
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr: // generic receiver T[P1, P2]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
