package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/tinygroups"
	"repro/tinygroups/loadgen"
)

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-definitely-not-a-flag"}},
		{"positional args", []string{"extra"}},
		{"unknown workload", []string{"-workloads", "tsunami"}},
		{"empty workloads", []string{"-workloads", ","}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := run(context.Background(), c.args, &stdout, &stderr); code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr.String())
			}
		})
	}
}

func TestRunNoDaemon(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", "http://127.0.0.1:1", "-ready-timeout", "100ms",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr.String())
	}
}

// TestRunAgainstDaemon is the zero-to-report path: a live serving layer,
// the full default sweep, and a parseable BENCH_service.json on disk.
func TestRunAgainstDaemon(t *testing.T) {
	sys, err := tinygroups.New(128, tinygroups.WithSeed(1), tinygroups.WithMintWork(1<<8))
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(sys, serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-addr", ts.URL, "-ops", "80", "-concurrency", "3",
		"-keys", "64", "-advance-every", "40", "-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d (stderr: %s)", code, stderr.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Target != ts.URL || rep.OpsPerWorkload != 80 || len(rep.Workloads) != 6 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	for _, r := range rep.Workloads {
		if r.Ops != 80 || r.Errors != 0 {
			t.Fatalf("%s: ops=%d errors=%d, want 80/0", r.Workload, r.Ops, r.Errors)
		}
		if r.Throughput <= 0 {
			t.Fatalf("%s: throughput %v", r.Workload, r.Throughput)
		}
	}
	if !bytes.Contains(stdout.Bytes(), []byte("zipf-hotspot")) ||
		!bytes.Contains(stdout.Bytes(), []byte("mint-storm")) {
		t.Fatalf("summary table missing workloads:\n%s", stdout.String())
	}
}
